// Package config holds the system configuration for the MemScale
// simulator: the Table 2 parameters of the paper (DDR3 timing and
// currents, memory geometry, CPU parameters), the memory-frequency
// ladder, and the energy-management policy settings.
//
// All simulated time is expressed in Time (picoseconds), which keeps
// timing arithmetic exact across the ten bus frequencies.
package config

import "fmt"

// Time is a simulated instant or duration in picoseconds.
//
// Picosecond resolution lets every bus period in the frequency ladder
// (200–800 MHz) be represented as an integer with at most 0.04% error,
// and an int64 still covers over 100 days of simulated time.
type Time int64

// Time unit constants.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds converts t to floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds converts t to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders the time with an adaptive unit, for logs and tables.
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.4fs", t.Seconds())
	}
}

// FromNanoseconds builds a Time from a floating-point nanosecond count,
// rounding to the nearest picosecond.
func FromNanoseconds(ns float64) Time {
	if ns < 0 {
		return -FromNanoseconds(-ns)
	}
	return Time(ns*1000 + 0.5)
}

// FromSeconds builds a Time from floating-point seconds.
func FromSeconds(s float64) Time { return FromNanoseconds(s * 1e9) }

// MinTime returns the smaller of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxTime returns the larger of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
