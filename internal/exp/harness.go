// Package exp reproduces the paper's evaluation: one driver per table
// and figure (Table 1-2, Figures 2, 5-15, and the Section 4.2.4 extra
// studies). Each driver runs the relevant workload x policy grid on
// the simulator and renders the same rows/series the paper reports,
// as ASCII tables and optional CSV.
//
// The grids execute on the internal/runner engine: jobs of one figure
// run concurrently on a worker pool, and the unmanaged baseline runs
// they share are simulated once and memoized across figures.
package exp

import (
	"context"
	"fmt"
	"io"

	"memscale/internal/config"
	"memscale/internal/core"
	"memscale/internal/policies"
	"memscale/internal/runner"
	"memscale/internal/sim"
	"memscale/internal/stats"
	"memscale/internal/workload"
)

// Params scale the experiments. The defaults run each (mix, policy)
// pair for 10 OS quanta (50 ms of simulated time), long enough for the
// slack controller to settle while keeping the full reproduction under
// an hour of host time; the paper's trends are stable at this scale.
type Params struct {
	// Epochs is the number of OS quanta per run.
	Epochs int

	// TimelineEpochs is the run length of the Figure 7/8 timelines.
	TimelineEpochs int

	// Gamma is the allowed performance degradation (default 0.10).
	Gamma float64

	// Workers bounds the number of concurrently executing runs per
	// grid; zero means GOMAXPROCS. Parallelism never changes results:
	// each simulation is single-threaded and deterministic, and grid
	// results are ordered by submission, not completion.
	Workers int

	// Shards, when > 1, requests the sharded event engine for every
	// run in the grids (runner.Job.Shards). Results are bit-identical
	// at any count; eligibility falls back per run.
	Shards int

	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer

	// Ctx, when non-nil, cancels in-flight simulations; drivers return
	// its error once it fires.
	Ctx context.Context

	// cache memoizes baseline runs across figures: many experiments
	// share the exact same unmanaged run (the baseline is independent
	// of policy and of gamma), so re-simulating it per pair would
	// dominate the harness run time.
	cache *runner.BaselineCache
}

// DefaultParams returns the standard experiment scale.
func DefaultParams() Params {
	return Params{
		Epochs:         10,
		TimelineEpochs: 20,
		Gamma:          0.10,
		cache:          runner.NewBaselineCache(),
	}
}

func (p Params) ctx() context.Context {
	if p.Ctx != nil {
		return p.Ctx
	}
	return context.Background()
}

// engine builds the sweep engine for one grid, sharing the baseline
// cache across all grids run from this Params (copies included:
// sensitivity drivers derive variants with `q := p`, and the pointer
// travels with them).
func (p Params) engine() *runner.Engine {
	var onResult func(runner.Progress)
	if p.Progress != nil {
		onResult = func(pr runner.Progress) {
			if pr.Err != nil {
				p.logf("  %-8s %-20s error: %v", pr.Job.Mix.Name, pr.Job.Spec.Name, pr.Err)
				return
			}
			out := pr.Outcome
			p.logf("  %-8s %-20s mem %-7s sys %-7s", out.Mix.Name, out.Policy,
				stats.Pct(out.MemorySavings()), stats.Pct(out.SystemSavings()))
		}
	}
	return runner.New(runner.Options{
		Workers:  p.Workers,
		Cache:    p.cache,
		OnResult: onResult,
	})
}

// job assembles one engine job at this Params' scale.
func (p Params) job(mutate func(*config.Config), mix workload.Mix, spec policies.Spec) runner.Job {
	return runner.Job{
		Mix:    mix,
		Spec:   spec,
		Epochs: p.Epochs,
		Gamma:  p.Gamma,
		Shards: p.Shards,
		Mutate: mutate,
	}
}

// runGrid executes a batch of jobs concurrently, returning outcomes in
// job order.
func (p Params) runGrid(jobs []runner.Job) ([]runner.Outcome, error) {
	return p.engine().RunAll(p.ctx(), jobs)
}

func (p Params) runDuration(cfg *config.Config) config.Time {
	return config.Time(p.Epochs) * cfg.Policy.EpochLength
}

func (p Params) logf(format string, args ...any) {
	if p.Progress != nil {
		fmt.Fprintf(p.Progress, format+"\n", args...)
	}
}

// Report is one rendered experiment.
type Report struct {
	ID    string // e.g. "figure5"
	Title string
	Table stats.Table
}

// Render writes the report's table to w.
func (r Report) Render(w io.Writer) { r.Table.Render(w) }

// Outcome is one (mix, policy) run paired with its baseline; see
// runner.Outcome for the savings/CPI metrics.
type Outcome = runner.Outcome

// runBaseline runs the mix with the unmanaged memory system and
// derives the rest-of-system power from its average DIMM power.
// Results are memoized in the shared baseline cache: the baseline
// depends only on the configuration and mix (gamma is irrelevant — no
// governor runs), and many experiments revisit the same pair.
func (p Params) runBaseline(cfg config.Config, mix workload.Mix) (sim.Result, float64, error) {
	cache := p.cache
	if cache == nil {
		cache = runner.NewBaselineCache()
	}
	return cache.Baseline(p.ctx(), cfg, mix, p.Epochs, p.Shards)
}

// runPair runs (mix, spec) against its baseline under a possibly
// mutated configuration and returns the paired outcome.
func (p Params) runPair(mutate func(*config.Config), mix workload.Mix, spec policies.Spec) (Outcome, error) {
	out, err := p.engine().Run(p.ctx(), p.job(mutate, mix, spec))
	if err != nil {
		return Outcome{}, err
	}
	p.logf("  %-8s %-20s mem %-7s sys %-7s", mix.Name, spec.Name,
		stats.Pct(out.MemorySavings()), stats.Pct(out.SystemSavings()))
	return out, nil
}

// memScaleSpec returns the MemScale spec with the harness gamma.
func (p Params) memScaleSpec() policies.Spec {
	spec := policies.MemScale
	gamma := p.Gamma
	spec.Governor = func(cfg *config.Config, nonMem float64) sim.Governor {
		return core.NewPolicy(cfg, core.Options{NonMemPower: nonMem, Gamma: gamma})
	}
	return spec
}
