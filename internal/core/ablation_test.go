package core

import (
	"testing"

	"memscale/internal/config"
	"memscale/internal/memctrl"
	"memscale/internal/sim"
)

func TestAblationNames(t *testing.T) {
	want := map[Ablation]string{
		AblateNothing:    "full",
		AblateProfiling:  "no-profiling",
		AblateQueueModel: "no-queue-model",
		AblateSlack:      "no-slack-carryover",
		Ablation(99):     "unknown",
	}
	for a, name := range want {
		if a.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), name)
		}
	}
	cfg := config.Default()
	ap := NewAblatedPolicy(&cfg, Options{NonMemPower: 40}, AblateQueueModel)
	if ap.Name() != "memscale/no-queue-model" {
		t.Errorf("Name() = %q", ap.Name())
	}
}

func TestAblateNothingMatchesFullPolicy(t *testing.T) {
	nonMem := calibrate(t, "MID1")
	cfgA := config.Default()
	full := NewPolicy(&cfgA, Options{NonMemPower: nonMem})
	cfgB := config.Default()
	same := NewAblatedPolicy(&cfgB, Options{NonMemPower: nonMem}, AblateNothing)

	rFull := runMix(t, "MID1", full, 20*config.Millisecond, nonMem)
	rSame := runMix(t, "MID1", same, 20*config.Millisecond, nonMem)
	if rFull.Memory != rSame.Memory {
		t.Error("AblateNothing must behave identically to the full policy")
	}
}

func TestNoQueueModelUnderestimatesCPI(t *testing.T) {
	// Without the xi terms the model predicts lower CPI at low
	// frequency, so on a contended MEM mix the variant scales deeper
	// (weakly more aggressive frequency choices).
	nonMem := calibrate(t, "MEM3")
	cfgA := config.Default()
	full := NewPolicy(&cfgA, Options{NonMemPower: nonMem})
	cfgB := config.Default()
	noQ := NewAblatedPolicy(&cfgB, Options{NonMemPower: nonMem}, AblateQueueModel)

	rFull := runMix(t, "MEM3", full, 25*config.Millisecond, nonMem)
	rNoQ := runMix(t, "MEM3", noQ, 25*config.Millisecond, nonMem)

	meanFreq := func(r sim.Result) float64 {
		var num, den float64
		for f, tm := range r.FreqTime {
			num += float64(f) * tm.Seconds()
			den += tm.Seconds()
		}
		return num / den
	}
	if meanFreq(rNoQ) > meanFreq(rFull)+1 {
		t.Errorf("no-queue variant ran faster (%.0f MHz) than full (%.0f MHz); expected deeper scaling",
			meanFreq(rNoQ), meanFreq(rFull))
	}
}

func TestNoQueueModelPredictsLessMemoryTime(t *testing.T) {
	// Model-level property: with identical counter fits, dropping the
	// xi terms can only shrink the predicted memory time (it removes
	// non-negative contention factors).
	cfg := config.Default()
	full := NewPerfModel(&cfg)
	bare := NewPerfModel(&cfg)
	bare.noQueue = true

	prof := syntheticProfile(&cfg, 2.0, 1.5) // xi_bank=3, xi_bus=2.5
	full.Fit(prof)
	bare.Fit(prof)
	for _, f := range config.BusFrequencies {
		if bare.TPIMem(f) > full.TPIMem(f) {
			t.Errorf("at %v: no-queue TPIMem %.3g above full %.3g", f, bare.TPIMem(f), full.TPIMem(f))
		}
	}
	if bare.XiBank != 1 || bare.XiBus != 1 {
		t.Errorf("no-queue xi = %g/%g, want 1/1", bare.XiBank, bare.XiBus)
	}
}

func TestNoProfilingReactsOneEpochLate(t *testing.T) {
	// The variant keeps nominal frequency through the whole first
	// epoch (no previous-epoch data), where the full policy already
	// scales after the first 300 us profile.
	nonMem := calibrate(t, "ILP2")
	cfgA := config.Default()
	full := NewPolicy(&cfgA, Options{NonMemPower: nonMem})
	cfgB := config.Default()
	lazy := NewAblatedPolicy(&cfgB, Options{NonMemPower: nonMem}, AblateProfiling)

	rFull := runMix(t, "ILP2", full, 15*config.Millisecond, nonMem)
	rLazy := runMix(t, "ILP2", lazy, 15*config.Millisecond, nonMem)

	if rLazy.FreqTime[config.MaxBusFreq] <= rFull.FreqTime[config.MaxBusFreq] {
		t.Errorf("no-profiling spent %v at nominal, full spent %v; expected a slower start",
			rLazy.FreqTime[config.MaxBusFreq], rFull.FreqTime[config.MaxBusFreq])
	}
	// But from the second epoch on it still converges to the bottom of
	// the ladder on an ILP mix.
	if rLazy.FreqTime[config.Freq200] <= 0 {
		t.Error("no-profiling never reached the lowest frequency")
	}
	// The lost first epoch costs energy relative to the full policy.
	if rLazy.Memory.Memory() <= rFull.Memory.Memory() {
		t.Errorf("no-profiling used less memory energy (%.3f J) than full (%.3f J)?",
			rLazy.Memory.Memory(), rFull.Memory.Memory())
	}
}

// syntheticProfile builds a hand-written profiling window with the
// given queue-depth counter ratios (BTO/BTC and CTO/CTC).
func syntheticProfile(cfg *config.Config, bankDepth, busDepth float64) sim.Profile {
	c := memctrl.Counters{TLM: make([]uint64, cfg.Cores)}
	c.BTC = 1000
	c.BTO = uint64(bankDepth * 1000)
	c.CTC = 1000
	c.CTO = uint64(busDepth * 1000)
	c.CBMC = 900
	c.RBHC = 50
	c.OBMC = 50
	for i := range c.TLM {
		c.TLM[i] = 100
	}
	instr := make([]float64, cfg.Cores)
	for i := range instr {
		instr[i] = 100_000
	}
	return sim.Profile{
		End:      300 * config.Microsecond,
		BusFreq:  config.MaxBusFreq,
		Counters: c,
		Instr:    instr,
	}
}

func TestNoSlackResetsEveryEpoch(t *testing.T) {
	nonMem := calibrate(t, "ILP2")
	cfg := config.Default()
	pol := NewAblatedPolicy(&cfg, Options{NonMemPower: nonMem}, AblateSlack)
	runMix(t, "ILP2", pol, 20*config.Millisecond, nonMem)
	for i, s := range pol.Slack() {
		if s != 0 {
			t.Errorf("core %d slack = %v after epoch end, want 0", i, s)
		}
	}
}
