// Package event implements the discrete-event simulation engine that
// drives the MemScale memory-system simulator.
//
// The engine is a deterministic single-threaded priority queue of
// timestamped callbacks. Events scheduled for the same instant fire in
// the order they were scheduled, which keeps every simulation run
// exactly reproducible.
//
// The queue is built for a zero-allocation steady state: event nodes
// live in a pooled arena and are recycled through a free list after
// they fire or are cancelled, the priority queue is a flat 4-ary
// min-heap of (time, seq) keys with no interface boxing, and the
// ScheduleBound form lets callers attach a pre-bound callback plus
// inline arguments so that scheduling never captures a closure. Handles
// carry a generation counter, so a stale handle can never cancel an
// event that recycled its slot.
package event

import (
	"fmt"

	"memscale/internal/config"
)

// Handler is a callback invoked when an event fires.
type Handler func(now config.Time)

// Bound is the pre-bound callback form: the environment pointer and two
// integer arguments are stored inline in the event node, so scheduling
// a Bound callback allocates nothing in steady state. Typical use binds
// a method value once at construction time and passes per-event state
// through env/a/b.
type Bound func(now config.Time, env any, a, b int32)

// Handle identifies a scheduled event. It is a small value (no heap
// pointer): the index of the pooled node plus the generation the node
// had when the event was scheduled. The zero Handle is never valid.
type Handle struct {
	idx int32
	gen uint32
}

// entry is one element of the flat 4-ary min-heap: the ordering key
// (time, then schedule sequence for same-instant FIFO) plus the index
// of the pooled node carrying the callback.
type entry struct {
	at  config.Time
	seq uint64
	idx int32
}

func entryLess(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// node is one pooled event. pos is the node's current heap position
// (-1 when free or fired); gen increments every time the slot is
// recycled, invalidating old handles.
type node struct {
	fn   Handler
	bfn  Bound
	env  any
	a, b int32
	gen  uint32
	pos  int32
}

// Queue is the event priority queue and simulation clock.
// The zero value is ready to use.
type Queue struct {
	heap  []entry
	nodes []node
	free  []int32
	now   config.Time
	seq   uint64

	fired     uint64
	scheduled uint64
}

// Now returns the current simulated time.
func (q *Queue) Now() config.Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Fired returns the number of events executed so far.
func (q *Queue) Fired() uint64 { return q.fired }

// ScheduledTotal returns the number of events ever scheduled.
func (q *Queue) ScheduledTotal() uint64 { return q.scheduled }

// PoolSize returns the number of node slots ever allocated — the
// high-water mark of concurrently pending events.
func (q *Queue) PoolSize() int { return len(q.nodes) }

// FreeNodes returns the number of pooled slots currently on the free
// list, available for recycling.
func (q *Queue) FreeNodes() int { return len(q.free) }

// alloc takes a node slot from the free list, growing the arena only
// when no recycled slot is available.
func (q *Queue) alloc() int32 {
	if n := len(q.free); n > 0 {
		idx := q.free[n-1]
		q.free = q.free[:n-1]
		return idx
	}
	q.nodes = append(q.nodes, node{gen: 1, pos: -1})
	return int32(len(q.nodes) - 1)
}

// release recycles a node slot: callback references are dropped so the
// pool retains nothing, and the generation bump invalidates every
// handle issued for the previous occupant.
func (q *Queue) release(idx int32) {
	n := &q.nodes[idx]
	n.fn = nil
	n.bfn = nil
	n.env = nil
	n.gen++
	n.pos = -1
	q.free = append(q.free, idx)
}

func (q *Queue) add(at config.Time, fn Handler, bfn Bound, env any, a, b int32) Handle {
	if at < q.now {
		panic(fmt.Sprintf("event: scheduling at %v before now %v", at, q.now))
	}
	q.seq++
	q.scheduled++
	idx := q.alloc()
	n := &q.nodes[idx]
	n.fn, n.bfn, n.env, n.a, n.b = fn, bfn, env, a, b
	h := Handle{idx: idx, gen: n.gen}
	q.heapPush(entry{at: at, seq: q.seq, idx: idx})
	return h
}

// Schedule queues fn to run at time at. Scheduling in the past (before
// Now) panics: that is always a simulator bug, and silently clamping
// would corrupt causality.
func (q *Queue) Schedule(at config.Time, fn Handler) Handle {
	if fn == nil {
		panic("event: nil handler")
	}
	return q.add(at, fn, nil, nil, 0, 0)
}

// ScheduleBound queues a pre-bound callback: fn(at, env, a, b) runs at
// time at. env and the integer arguments are stored inline in the
// pooled node, so the call allocates nothing once the pool is warm.
func (q *Queue) ScheduleBound(at config.Time, fn Bound, env any, a, b int32) Handle {
	if fn == nil {
		panic("event: nil handler")
	}
	return q.add(at, nil, fn, env, a, b)
}

// After queues fn to run d after the current time.
func (q *Queue) After(d config.Time, fn Handler) Handle {
	if d < 0 {
		panic(fmt.Sprintf("event: negative delay %v", d))
	}
	return q.Schedule(q.now+d, fn)
}

// AfterBound queues a pre-bound callback d after the current time.
func (q *Queue) AfterBound(d config.Time, fn Bound, env any, a, b int32) Handle {
	if d < 0 {
		panic(fmt.Sprintf("event: negative delay %v", d))
	}
	return q.ScheduleBound(q.now+d, fn, env, a, b)
}

// live returns the node for h if h still names a pending event.
func (q *Queue) live(h Handle) *node {
	if h.idx < 0 || int(h.idx) >= len(q.nodes) {
		return nil
	}
	n := &q.nodes[h.idx]
	if n.gen != h.gen || n.pos < 0 {
		return nil
	}
	return n
}

// Pending reports whether the event named by h is still queued.
func (q *Queue) Pending(h Handle) bool { return q.live(h) != nil }

// EventAt returns the fire time of the pending event named by h, and
// whether h still names a pending event.
func (q *Queue) EventAt(h Handle) (config.Time, bool) {
	n := q.live(h)
	if n == nil {
		return 0, false
	}
	return q.heap[n.pos].at, true
}

// Cancel removes a pending event eagerly: the node leaves the heap and
// returns to the pool immediately, so long-lived cancellations (relock
// or refresh reschedules) cannot bloat the queue. Cancelling a fired,
// already cancelled, or recycled handle is a no-op; the generation
// check guarantees a stale handle can never cancel the slot's next
// occupant. It reports whether an event was actually cancelled.
func (q *Queue) Cancel(h Handle) bool {
	n := q.live(h)
	if n == nil {
		return false
	}
	q.heapRemove(int(n.pos))
	q.release(h.idx)
	return true
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It returns false when no events remain. The node is
// recycled before the callback runs, so a callback scheduling a new
// event may reuse the slot; the generation bump keeps old handles
// inert.
func (q *Queue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	e := q.popRoot()
	n := &q.nodes[e.idx]
	fn, bfn, env, a, b := n.fn, n.bfn, n.env, n.a, n.b
	q.release(e.idx)
	q.now = e.at
	q.fired++
	if bfn != nil {
		bfn(e.at, env, a, b)
	} else {
		fn(e.at)
	}
	return true
}

// RunUntil executes events in order until the next event would fire
// after the deadline (or no events remain), then advances the clock to
// exactly the deadline. Events at the deadline itself do fire.
func (q *Queue) RunUntil(deadline config.Time) {
	if deadline < q.now {
		panic(fmt.Sprintf("event: RunUntil(%v) before now %v", deadline, q.now))
	}
	for len(q.heap) > 0 && q.heap[0].at <= deadline {
		q.Step()
	}
	q.now = deadline
}

// Run executes events until the queue is empty or limit events have
// fired; limit <= 0 means no limit. It returns the number of events
// executed.
func (q *Queue) Run(limit uint64) uint64 {
	var n uint64
	for limit <= 0 || n < limit {
		if !q.Step() {
			break
		}
		n++
	}
	return n
}

// NextAt returns the timestamp of the next pending event and whether
// one exists.
func (q *Queue) NextAt() (config.Time, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].at, true
}

// The heap is 4-ary: parent of i is (i-1)/4, children are 4i+1..4i+4.
// A wider node trades deeper comparisons per level for half the levels
// and better cache behaviour on the flat entry slice — the classic
// d-ary win for queues dominated by inserts that stay near the leaves.

// heapPush appends e and restores the heap property upward.
func (q *Queue) heapPush(e entry) {
	q.heap = append(q.heap, e)
	q.siftUp(len(q.heap) - 1)
}

// popRoot removes and returns the minimum entry.
func (q *Queue) popRoot() entry {
	root := q.heap[0]
	n := len(q.heap) - 1
	last := q.heap[n]
	q.heap[n] = entry{}
	q.heap = q.heap[:n]
	if n > 0 {
		q.heap[0] = last
		q.nodes[last.idx].pos = 0
		q.siftDown(0)
	}
	return root
}

// heapRemove deletes the entry at heap position i (eager cancellation).
func (q *Queue) heapRemove(i int) {
	n := len(q.heap) - 1
	last := q.heap[n]
	q.heap[n] = entry{}
	q.heap = q.heap[:n]
	if i == n {
		return
	}
	q.heap[i] = last
	q.nodes[last.idx].pos = int32(i)
	q.siftDown(i)
	if q.heap[i].idx == last.idx {
		q.siftUp(i)
	}
}

func (q *Queue) siftUp(i int) {
	h := q.heap
	e := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !entryLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		q.nodes[h[i].idx].pos = int32(i)
		i = p
	}
	h[i] = e
	q.nodes[e.idx].pos = int32(i)
}

func (q *Queue) siftDown(i int) {
	h := q.heap
	n := len(h)
	e := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if entryLess(h[j], h[m]) {
				m = j
			}
		}
		if !entryLess(h[m], e) {
			break
		}
		h[i] = h[m]
		q.nodes[h[i].idx].pos = int32(i)
		i = m
	}
	h[i] = e
	q.nodes[e.idx].pos = int32(i)
}
