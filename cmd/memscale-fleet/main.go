// Command memscale-fleet simulates a cluster of MemScale servers
// under a global memory-power budget. Each node is a full paired
// simulation (managed run vs unmanaged baseline) driven by an
// open-loop arrival process; every fleet epoch a FastCap-style
// coordinator redistributes the budget across nodes as per-node
// frequency caps.
//
// Usage:
//
//	memscale-fleet -nodes 1000 -mix MID1 -budget 20000
//	memscale-fleet -group web:600:MID1:MemScale:diurnal -group cache:400:MEM2:MemScale:bursty -budget 18000
//	memscale-fleet -nodes 64 -json fleet.json -nodes-csv nodes.csv -caps-csv caps.csv
//
// The -group flag (repeatable) takes name:nodes:mix[:policy[:arrival]]
// and overrides the single-group -nodes/-mix/-policy/-arrival
// shortcut. A -json/-nodes-csv/-caps-csv path of "-" writes stdout.
// The run is deterministic for a fixed -seed on any -workers count.
//
// Chaos and self-healing: the -crash-rate/-straggler-rate/
// -ckpt-corrupt-rate/-loss-rate flags inject fleet-scope faults into
// every node; -recover arms the checkpoint-restart supervisor
// (-max-retries restarts per window, snapshots every -ckpt-every
// epochs) that recovers them transparently — surviving-node metrics
// are bit-identical to the undisturbed same-seed run.
//
// SIGINT/SIGTERM handling: with -checkpoint-out set, the first signal
// stops the fleet at its next window boundary, writes every live
// node's state to the bundle file, and exits with code 3; a second
// signal cancels hard. Without -checkpoint-out the first signal
// cancels promptly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"memscale"
)

// exitInterrupted is the exit code of a fleet stopped by
// SIGINT/SIGTERM after writing its checkpoint bundle — distinct from 1
// (failure) so supervisors can tell "resume me" from "fix me".
const exitInterrupted = 3

// groupFlags collects repeated -group specs.
type groupFlags []string

func (g *groupFlags) String() string     { return strings.Join(*g, " ") }
func (g *groupFlags) Set(s string) error { *g = append(*g, s); return nil }

func main() {
	var groups groupFlags
	flag.Var(&groups, "group",
		"node group as name:nodes:mix[:policy[:arrival]] (repeatable; overrides -nodes/-mix/-policy/-arrival)")
	nodes := flag.Int("nodes", 8, "node count of the default group")
	mix := flag.String("mix", "MID1", "workload mix of the default group ("+strings.Join(memscale.Mixes(), ", ")+")")
	policy := flag.String("policy", "MemScale", "policy of the default group ("+strings.Join(memscale.Policies(), ", ")+")")
	arrival := flag.String("arrival", "poisson", "arrival process: steady, poisson, bursty, diurnal")
	epochs := flag.Int("epochs", 10, "OS epochs (5 ms each) per node")
	budget := flag.Float64("budget", 0, "global memory-power budget in watts (0 = uncapped)")
	capEvery := flag.Int("cap-every", 1, "coordinator period in epochs")
	gamma := flag.Float64("gamma", 0.10, "maximum allowed per-node performance degradation")
	shards := flag.Int("shards", 1, "event-engine shards per node (1 = serial; >1 engages the parallel engine on partitioned or interleaved mixes, e.g. MEM1/part, MEM1/ilv2)")
	coreSplit := flag.String("core-split", "", "core-split policy between node workers and per-node shards: auto, nodes, or shards (default auto)")
	seed := flag.Uint64("seed", 0, "fleet seed (decorrelates nodes; fixes the whole run)")
	workers := flag.Int("workers", 0, "node-level parallelism (0 = GOMAXPROCS); results are worker-count independent")
	jsonOut := flag.String("json", "", "write the full fleet summary JSON to this path")
	nodesCSV := flag.String("nodes-csv", "", "write the per-node outcome CSV to this path")
	capsCSV := flag.String("caps-csv", "", "write the cap-convergence trace CSV to this path")
	quiet := flag.Bool("q", false, "suppress the human-readable digest")

	faultSeed := flag.Uint64("fault-seed", 0, "seed of the deterministic fleet fault schedule")
	crashRate := flag.Float64("crash-rate", 0, "per-epoch probability a node crashes mid-window")
	stragglerRate := flag.Float64("straggler-rate", 0, "per-epoch probability a node stalls in host time")
	corruptRate := flag.Float64("ckpt-corrupt-rate", 0, "per-snapshot probability a checkpoint write is corrupted")
	lossRate := flag.Float64("loss-rate", 0, "per-epoch probability a coordinator-visible loss window opens")
	selfHeal := flag.Bool("recover", false, "arm the self-healing supervisor (checkpoint restarts)")
	maxRetries := flag.Int("max-retries", 0, "restart budget per fleet window (0 = default 3)")
	ckptEvery := flag.Int("ckpt-every", 0, "snapshot cadence in epochs (0 = default 1)")
	stepTimeout := flag.Duration("step-timeout", 0, "per-window watchdog in host time (0 = disabled)")
	checkpointOut := flag.String("checkpoint-out", "",
		"on SIGINT/SIGTERM, write every live node's state to this bundle file and exit 3")
	flag.Parse()

	fc := memscale.FleetConfig{
		Epochs:            *epochs,
		PowerBudgetW:      *budget,
		CapIntervalEpochs: *capEvery,
		Seed:              *seed,
		Workers:           *workers,
		CoreSplit:         *coreSplit,
	}
	if *selfHeal || *maxRetries > 0 || *ckptEvery > 0 || *stepTimeout > 0 {
		fc.Recovery = &memscale.FleetRecoveryConfig{
			MaxRetries:      *maxRetries,
			CheckpointEvery: *ckptEvery,
			StepTimeout:     *stepTimeout,
		}
	}
	var chaos *memscale.FaultConfig
	if *crashRate > 0 || *stragglerRate > 0 || *corruptRate > 0 || *lossRate > 0 {
		chaos = &memscale.FaultConfig{
			Seed:                  *faultSeed,
			NodeCrashRate:         *crashRate,
			StragglerRate:         *stragglerRate,
			CheckpointCorruptRate: *corruptRate,
			NodeLossRate:          *lossRate,
		}
	}
	if len(groups) == 0 {
		groups = groupFlags{fmt.Sprintf("fleet:%d:%s:%s:%s", *nodes, *mix, *policy, *arrival)}
	}
	for _, spec := range groups {
		g, err := parseGroup(spec)
		if err != nil {
			fatal(err)
		}
		g.Gamma = *gamma
		g.Shards = *shards
		if chaos != nil {
			f := *chaos
			g.Faults = &f
		}
		fc.Groups = append(fc.Groups, g)
	}
	if err := fc.Validate(); err != nil {
		fatal(err)
	}

	// Signal wiring: with a bundle target, the first SIGINT/SIGTERM
	// soft-stops the fleet at its next window boundary; only a second
	// one cancels hard. Otherwise the first signal cancels.
	var sum memscale.FleetSummary
	var err error
	if *checkpointOut != "" {
		sigs := make(chan os.Signal, 2)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		softStop := make(chan struct{})
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			<-sigs
			close(softStop)
			<-sigs
			cancel()
		}()
		var bundle *memscale.FleetCheckpointBundle
		sum, bundle, err = memscale.RunFleetInterruptible(ctx, fc, softStop)
		cancel()
		if errors.Is(err, memscale.ErrInterrupted) && bundle != nil {
			if werr := writeBundle(*checkpointOut, bundle); werr != nil {
				fatal(werr)
			}
			fmt.Fprintf(os.Stderr, "memscale-fleet: interrupted at epoch %d/%d; bundle written to %s\n",
				sum.EpochsCompleted, fc.Epochs, *checkpointOut)
			os.Exit(exitInterrupted)
		}
	} else {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		sum, err = memscale.RunFleet(ctx, fc)
		stop()
	}
	if err != nil && sum.Nodes == 0 {
		fatal(err) // total failure: nothing to report
	}

	type view struct {
		path  string
		write func(io.Writer, memscale.FleetSummary) error
	}
	for _, v := range []view{
		{*jsonOut, memscale.WriteFleetSummary},
		{*nodesCSV, memscale.WriteFleetNodesCSV},
		{*capsCSV, memscale.WriteFleetCapsCSV},
	} {
		if v.path == "" {
			continue
		}
		if err := emit(v.path, sum, v.write); err != nil {
			fatal(err)
		}
	}

	if !*quiet {
		digest(os.Stdout, fc, sum)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "memscale-fleet: partial failure:", err)
		os.Exit(1)
	}
}

// parseGroup decodes name:nodes:mix[:policy[:arrival]].
func parseGroup(spec string) (memscale.NodeGroup, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 3 || len(parts) > 5 {
		return memscale.NodeGroup{}, fmt.Errorf("group %q: want name:nodes:mix[:policy[:arrival]]", spec)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return memscale.NodeGroup{}, fmt.Errorf("group %q: bad node count: %v", spec, err)
	}
	g := memscale.NodeGroup{Name: parts[0], Nodes: n, Mix: parts[2]}
	if len(parts) > 3 {
		g.Policy = parts[3]
	}
	if len(parts) > 4 {
		g.Arrival = memscale.ArrivalConfig{Kind: memscale.ArrivalKind(parts[4])}
	}
	return g, nil
}

func digest(w io.Writer, fc memscale.FleetConfig, sum memscale.FleetSummary) {
	engine := "serial"
	if len(fc.Groups) > 0 && fc.Groups[0].Shards > 1 {
		engine = fmt.Sprintf("%d shards/node", fc.Groups[0].Shards)
	}
	fmt.Fprintf(w, "fleet: %d nodes, %d groups, %d epochs; event engine: %s\n",
		sum.Nodes, len(sum.Groups), sum.Epochs, engine)
	fmt.Fprintf(w, "  system-energy ratio (SER): %.4f  (%.1f%% fleet energy savings)\n",
		sum.SER, (1-sum.SER)*100)
	fmt.Fprintf(w, "  CPI increase: avg %+.2f%%  p99 %+.2f%%  p999 %+.2f%%\n",
		sum.AvgCPIIncrease*100, sum.P99CPIIncrease*100, sum.P999CPIIncrease*100)
	fmt.Fprintf(w, "  memory power: %.1f W", sum.MemAvgPowerW)
	if fc.PowerBudgetW > 0 {
		over := ""
		if sum.BudgetExceeded {
			over = "  [EXCEEDED]"
		}
		fmt.Fprintf(w, " of %.1f W budget%s; %.1f%% of node-epochs cap-constrained",
			fc.PowerBudgetW, over, sum.ConstrainedFrac*100)
	}
	fmt.Fprintln(w)
	if len(sum.CapTrace) > 0 {
		if sum.Converged {
			fmt.Fprintf(w, "  cap assignment: converged at fleet epoch %d (%d decisions)\n",
				sum.ConvergedAtEpoch, len(sum.CapTrace))
		} else {
			last := sum.CapTrace[len(sum.CapTrace)-1]
			fmt.Fprintf(w, "  cap assignment: still churning after %d decisions (last epoch changed %d caps)\n",
				len(sum.CapTrace), last.CapChanges)
		}
	}
	for _, g := range sum.Groups {
		fmt.Fprintf(w, "  group %-12s %4d nodes  SER %.4f  CPI avg %+.2f%% p99 %+.2f%%\n",
			g.Name, g.Nodes, g.SER, g.AvgCPIIncrease*100, g.P99CPIIncrease*100)
	}
	if sum.Recoveries > 0 {
		fmt.Fprintf(w, "  self-healing: %d checkpoint restarts across %d degraded nodes\n",
			sum.Recoveries, len(sum.DegradedNodes))
	}
	if len(sum.LostNodes) > 0 {
		fmt.Fprintf(w, "  lost nodes (restart budget exhausted): %v\n", sum.LostNodes)
	}
	if sum.DeadNodes > 0 {
		fmt.Fprintf(w, "  dead nodes: %d\n", sum.DeadNodes)
	}
}

func emit(path string, sum memscale.FleetSummary,
	write func(io.Writer, memscale.FleetSummary) error) error {
	if path == "-" {
		return write(os.Stdout, sum)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, sum); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeBundle(path string, b *memscale.FleetCheckpointBundle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := memscale.WriteFleetCheckpoint(f, b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memscale-fleet:", err)
	os.Exit(1)
}
