package exp

import (
	"fmt"

	"memscale/internal/config"
	"memscale/internal/runner"
	"memscale/internal/stats"
	"memscale/internal/workload"
)

// sensitivityRow runs MemScale on the MID mixes (concurrently) under a
// configuration variant and returns (system savings mean, worst CPI
// increase).
func (p Params) sensitivityRow(mutate func(*config.Config)) (float64, float64, error) {
	spec := p.memScaleSpec()
	mixes := workload.ByClass(workload.ClassMID)
	jobs := make([]runner.Job, 0, len(mixes))
	for _, mix := range mixes {
		jobs = append(jobs, p.job(mutate, mix, spec))
	}
	outs, err := p.runGrid(jobs)
	if err != nil {
		return 0, 0, err
	}
	var sys stats.Series
	worst := 0.0
	for _, out := range outs {
		sys.Add(out.SystemSavings())
		if _, w := out.CPIIncrease(); w > worst {
			worst = w
		}
	}
	return sys.Mean(), worst, nil
}

// Figure12 sweeps the maximum allowed performance degradation
// (1, 5, 10, 15%) on the MID mixes.
func (p Params) Figure12() (Report, error) {
	t := stats.Table{
		Title:   "Figure 12: impact of CPI bound (MID workloads)",
		Columns: []string{"Bound", "System Energy Reduction", "Worst-case CPI Increase"},
		Notes:   []string{"beyond ~10-15% the energy-optimal frequency stops falling"},
	}
	for _, gamma := range []float64{0.01, 0.05, 0.10, 0.15} {
		q := p
		q.Gamma = gamma
		sys, worst, err := q.sensitivityRow(nil)
		if err != nil {
			return Report{}, err
		}
		t.AddRow(fmt.Sprintf("%.0f%% bound", gamma*100), stats.Pct(sys), stats.Pct(worst))
	}
	return Report{ID: "figure12", Title: "CPI bound sensitivity", Table: t}, nil
}

// Figure13 sweeps the channel count (2, 3, 4).
func (p Params) Figure13() (Report, error) {
	t := stats.Table{
		Title:   "Figure 13: impact of number of channels (MID workloads)",
		Columns: []string{"Channels", "System Energy Reduction", "Worst-case CPI Increase"},
		Notes:   []string{"fewer channels approximate greater per-channel traffic"},
	}
	for _, ch := range []int{4, 3, 2} {
		ch := ch
		sys, worst, err := p.sensitivityRow(func(c *config.Config) { c.Channels = ch })
		if err != nil {
			return Report{}, err
		}
		t.AddRow(fmt.Sprintf("%d channels", ch), stats.Pct(sys), stats.Pct(worst))
	}
	return Report{ID: "figure13", Title: "Channel-count sensitivity", Table: t}, nil
}

// Figure14 sweeps the DIMM share of total server power (30, 40, 50%).
func (p Params) Figure14() (Report, error) {
	t := stats.Table{
		Title:   "Figure 14: impact of fraction of memory power (MID workloads)",
		Columns: []string{"Memory fraction", "System Energy Reduction", "Worst-case CPI Increase"},
	}
	for _, frac := range []float64{0.30, 0.40, 0.50} {
		frac := frac
		sys, worst, err := p.sensitivityRow(func(c *config.Config) { c.MemPowerFraction = frac })
		if err != nil {
			return Report{}, err
		}
		t.AddRow(fmt.Sprintf("%.0f%% Mem", frac*100), stats.Pct(sys), stats.Pct(worst))
	}
	return Report{ID: "figure14", Title: "Memory power fraction sensitivity", Table: t}, nil
}

// Figure15 sweeps the power proportionality of the MC and DIMM
// registers: idle power at 0, 50, and 100% of peak.
func (p Params) Figure15() (Report, error) {
	t := stats.Table{
		Title:   "Figure 15: impact of MC/register power proportionality (MID workloads)",
		Columns: []string{"Idle power", "System Energy Reduction", "Worst-case CPI Increase"},
		Notes:   []string{"less proportional components leave MemScale more power to scale away"},
	}
	for _, idle := range []float64{0.0, 0.5, 1.0} {
		idle := idle
		sys, worst, err := p.sensitivityRow(func(c *config.Config) {
			c.Power.MCIdleW = idle * c.Power.MCPeakW
			c.Power.RegisterIdleW = idle * c.Power.RegisterPeakW
		})
		if err != nil {
			return Report{}, err
		}
		t.AddRow(fmt.Sprintf("%.0f%% Idle Power", idle*100), stats.Pct(sys), stats.Pct(worst))
	}
	return Report{ID: "figure15", Title: "Power proportionality sensitivity", Table: t}, nil
}

// SensitivityExtra reproduces the remaining Section 4.2.4 studies:
// a 32-core configuration and the epoch/profiling length sweeps.
func (p Params) SensitivityExtra() (Report, error) {
	t := stats.Table{
		Title:   "Section 4.2.4 extras (MID workloads)",
		Columns: []string{"Variant", "System Energy Reduction", "Worst-case CPI Increase"},
	}
	add := func(label string, mutate func(*config.Config)) error {
		sys, worst, err := p.sensitivityRow(mutate)
		if err != nil {
			return err
		}
		t.AddRow(label, stats.Pct(sys), stats.Pct(worst))
		return nil
	}
	if err := add("32 cores, 4 channels", func(c *config.Config) { c.Cores = 32 }); err != nil {
		return Report{}, err
	}
	for _, ms := range []int{1, 5, 10} {
		ms := ms
		label := fmt.Sprintf("epoch %d ms", ms)
		// Keep total simulated time comparable across epoch lengths.
		q := p
		q.Epochs = p.Epochs * 5 / ms
		if q.Epochs < 2 {
			q.Epochs = 2
		}
		sys, worst, err := q.sensitivityRow(func(c *config.Config) {
			c.Policy.EpochLength = config.Time(ms) * config.Millisecond
		})
		if err != nil {
			return Report{}, err
		}
		t.AddRow(label, stats.Pct(sys), stats.Pct(worst))
	}
	for _, us := range []int{100, 300, 500} {
		us := us
		if err := add(fmt.Sprintf("profiling %d us", us), func(c *config.Config) {
			c.Policy.ProfilingLength = config.Time(us) * config.Microsecond
		}); err != nil {
			return Report{}, err
		}
	}
	return Report{ID: "sensitivity-extra", Title: "Epoch/profiling/core-count sensitivity", Table: t}, nil
}

// ByClassSummary runs MemScale on all mixes of the named class and
// summarizes savings; used by the All() driver for per-class averages
// corresponding to the text of Section 4.2.1.
func (p Params) ByClassSummary(class workload.Class) (Report, error) {
	t := stats.Table{
		Title:   fmt.Sprintf("MemScale summary for %s workloads", class),
		Columns: []string{"Workload", "System", "Memory", "Avg CPI inc", "Worst CPI inc"},
	}
	spec := p.memScaleSpec()
	var jobs []runner.Job
	for _, mix := range workload.ByClass(class) {
		jobs = append(jobs, p.job(nil, mix, spec))
	}
	outs, err := p.runGrid(jobs)
	if err != nil {
		return Report{}, err
	}
	for _, out := range outs {
		a, w := out.CPIIncrease()
		t.AddRow(out.Mix.Name, stats.Pct(out.SystemSavings()), stats.Pct(out.MemorySavings()),
			stats.Pct(a), stats.Pct(w))
	}
	return Report{ID: "class-" + class.String(), Title: t.Title, Table: t}, nil
}
