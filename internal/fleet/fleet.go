package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"

	"memscale/internal/config"
	"memscale/internal/faults"
	"memscale/internal/invariant"
	"memscale/internal/policies"
	"memscale/internal/runner"
	"memscale/internal/telemetry"
	"memscale/internal/workload"
)

// GroupSpec describes one homogeneous slice of the fleet: Nodes
// servers all running the same workload mix under the same policy and
// arrival process.
type GroupSpec struct {
	Name  string
	Nodes int

	Mix  workload.Mix
	Spec policies.Spec

	// Gamma, Cores, Channels scale each node (zero selects the
	// single-node defaults: 0.10, 16, 4).
	Gamma           float64
	Cores, Channels int

	// Shards selects the sharded event engine for every node of the
	// group — managed runs and their paired baselines alike (0 or 1 =
	// serial). Results are bit-identical to the serial engine. The
	// effective per-node count is bounded by the fleet's core split
	// (Config.CoreSplit): node-level workers and per-node shards share
	// one GOMAXPROCS pool.
	Shards int

	Arrival ArrivalSpec

	// Faults, when non-nil, injects the disturbance plane into every
	// node of the group, with per-node decorrelated schedules. The
	// fleet-scope rates (node crashes, stragglers, checkpoint
	// corruption, loss windows) drive the self-healing plane.
	Faults *faults.Config

	// Recovery overrides the fleet-level RecoverySpec for this group's
	// nodes (nil inherits Config.Recovery).
	Recovery *RecoverySpec
}

// Config drives one fleet run.
type Config struct {
	Groups []GroupSpec

	// Epochs is the horizon in OS epochs per node (default 10).
	Epochs int

	// BudgetW is the global memory-power budget in watts shared by
	// every node; 0 disables cluster capping (nodes run pure
	// MemScale).
	BudgetW float64

	// CapEvery is the coordinator period in epochs (default 1: caps
	// are reassigned at every OS epoch boundary).
	CapEvery int

	// Seed decorrelates traces, arrivals, and fault schedules across
	// nodes while keeping the whole fleet reproducible.
	Seed uint64

	// Workers bounds node-level parallelism (0 = GOMAXPROCS). Results
	// are bit-identical on any worker count.
	Workers int

	// CoreSplit names the policy dividing the core pool between
	// node-level workers and per-node event-engine shards when groups
	// request Shards > 1: "" or "auto" (work-conserving: saturate
	// node-level first, leftover cores shard), "nodes" (all cores to
	// workers, nodes serial), "shards" (shard requests first). Results
	// are bit-identical under every policy; only wall-clock changes.
	CoreSplit string

	// Recovery, when non-nil, arms the self-healing supervisor on every
	// node: periodic snapshots, watchdog-bounded window attempts, and
	// bounded checkpoint restarts. Nil disables recovery (an injected
	// crash loses the node immediately).
	Recovery *RecoverySpec

	// Telemetry, when non-nil, receives the fleet-level event stream
	// (node losses, recoveries) and counters. The recorder is used only
	// from the serial coordinator, in node order, so the stream is
	// deterministic.
	Telemetry *telemetry.Recorder

	// Interrupt, when non-nil, requests a graceful stop: the run halts
	// at the next window boundary, reports the completed epochs, and
	// returns ErrInterrupted (plus a checkpoint bundle through
	// RunWithCheckpoint). Nil means run to completion.
	Interrupt <-chan struct{}
}

func (c Config) withDefaults() Config {
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.CapEvery == 0 {
		c.CapEvery = 1
	}
	for i := range c.Groups {
		if c.Groups[i].Gamma == 0 {
			c.Groups[i].Gamma = 0.10
		}
	}
	return c
}

// NodeSummary is one node's paired outcome.
type NodeSummary struct {
	Node  int    `json:"node"`
	Group string `json:"group"`

	MemoryEnergyJ float64 `json:"memory_energy_j"`
	SystemEnergyJ float64 `json:"system_energy_j"`
	BaselineSysJ  float64 `json:"baseline_system_energy_j"`
	SER           float64 `json:"ser"`
	CPIIncrease   float64 `json:"cpi_increase"`
	MeanIntensity float64 `json:"mean_intensity"`
	CappedEpochs  int     `json:"capped_epochs"`
	FinalCapMHz   int     `json:"final_cap_mhz"`
	Dead          bool    `json:"dead,omitempty"`
	Err           string  `json:"error,omitempty"`

	// Self-healing plane outcome: checkpoint restarts performed,
	// crashes (injected plus watchdog timeouts) absorbed, epochs
	// replayed during recovery, snapshots lost to write corruption,
	// coordinator loss windows entered, and whether the node ended
	// lost (restart budget exhausted — implies Dead).
	Attempts           int  `json:"attempts,omitempty"`
	Crashes            int  `json:"crashes,omitempty"`
	RecoveryEpochs     int  `json:"recovery_epochs,omitempty"`
	CorruptCheckpoints int  `json:"corrupt_checkpoints,omitempty"`
	LossWindows        int  `json:"loss_windows,omitempty"`
	Lost               bool `json:"lost,omitempty"`
}

// GroupSummary rolls one group up.
type GroupSummary struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`

	SER            float64 `json:"ser"`
	AvgCPIIncrease float64 `json:"avg_cpi_increase"`
	P99CPIIncrease float64 `json:"p99_cpi_increase"`

	// Rollup aggregates the group's per-node telemetry (totals,
	// frequency residency) through the standard rollup machinery.
	Rollup *telemetry.Rollup `json:"rollup,omitempty"`
}

// SchemaVersion is the fleet-summary interchange format version
// ("MAJOR.MINOR") stamped on every summary WriteFleetSummary encodes.
// Minor bumps only add fields, which older readers ignore; a major
// bump means the summary shape changed incompatibly. Readers accept
// any summary whose major version matches their own (including
// unversioned pre-1.1 summaries, which read as "1.0") and reject the
// rest with a *SchemaVersionError.
//
// 1.2 added the self-healing plane fields (per-node recovery stats,
// lost/degraded node sets, invariant check counts, interruption).
const SchemaVersion = "1.2"

// SchemaVersionError reports a fleet summary written by an
// incompatible (different-major) schema version; match with errors.As.
type SchemaVersionError struct {
	Version string // the summary's schema_version
}

// Error implements error.
func (e *SchemaVersionError) Error() string {
	return fmt.Sprintf("fleet summary schema version %q is incompatible with reader version %q",
		e.Version, SchemaVersion)
}

// CheckSchemaVersion validates a summary's recorded version against
// this reader. An empty version is a pre-1.1 summary and reads as
// "1.0" — same major, accepted.
func CheckSchemaVersion(version string) error {
	if version == "" {
		return nil
	}
	if major(version) != major(SchemaVersion) {
		return &SchemaVersionError{Version: version}
	}
	return nil
}

// major returns the MAJOR component of a version string; the whole
// string when there is no dot.
func major(v string) string {
	if i := strings.IndexByte(v, '.'); i >= 0 {
		return v[:i]
	}
	return v
}

// Summary is the fleet-level outcome.
type Summary struct {
	// SchemaVersion records the interchange format version the summary
	// was written with (stamped by WriteFleetSummary; empty on
	// summaries built in memory and on pre-1.1 files).
	SchemaVersion string `json:"schema_version,omitempty"`

	Nodes  int `json:"nodes"`
	Epochs int `json:"epochs"`

	// SER is the fleet system-energy ratio: total managed system
	// energy over total baseline system energy (< 1 means the fleet
	// saved energy; the paper's per-node SER generalized to the
	// cluster).
	SER float64 `json:"ser"`

	// Tail CPI degradation across nodes (nearest-rank quantiles of
	// the per-node CPI increase vs each node's own baseline).
	AvgCPIIncrease  float64 `json:"avg_cpi_increase"`
	P99CPIIncrease  float64 `json:"p99_cpi_increase"`
	P999CPIIncrease float64 `json:"p999_cpi_increase"`

	// Energy totals (joules).
	MemoryEnergyJ float64 `json:"memory_energy_j"`
	SystemEnergyJ float64 `json:"system_energy_j"`
	BaselineSysJ  float64 `json:"baseline_system_energy_j"`

	// MemAvgPowerW is the fleet-aggregate average memory power: total
	// managed memory energy over the wall-clock span of the run (nodes
	// run concurrently), directly comparable to BudgetW.
	MemAvgPowerW    float64 `json:"mem_avg_power_w"`
	BudgetW         float64 `json:"budget_w,omitempty"`
	BudgetExceeded  bool    `json:"budget_exceeded,omitempty"`
	ConstrainedFrac float64 `json:"constrained_frac"`

	// CapTrace is the per-fleet-epoch coordinator trace; Converged
	// reports whether the assignment reached a fixed point (a suffix
	// of decisions with zero cap churn), and ConvergedAtEpoch the
	// fleet epoch the fixed point was entered (-1 when never).
	CapTrace         []CapStep `json:"cap_trace,omitempty"`
	Converged        bool      `json:"converged"`
	ConvergedAtEpoch int       `json:"converged_at_epoch"`

	Groups  []GroupSummary `json:"groups"`
	PerNode []NodeSummary  `json:"per_node,omitempty"`

	// DeadNodes counts nodes lost to panics, faults, or timeouts; the
	// survivors' statistics are still reported.
	DeadNodes int `json:"dead_nodes,omitempty"`

	// Self-healing plane rollups: total checkpoint restarts performed
	// fleet-wide, the nodes that ended lost (restart budget exhausted,
	// a subset of the dead set), and the nodes that crashed but
	// recovered and survived to the end (degraded, not dead).
	Recoveries    int   `json:"recoveries,omitempty"`
	LostNodes     []int `json:"lost_nodes,omitempty"`
	DegradedNodes []int `json:"degraded_nodes,omitempty"`

	// InvariantChecks counts runtime invariant checks that passed
	// across the fleet (per-node simulation checks, baselines included,
	// plus the coordinator's own); a violated invariant aborts with a
	// typed *invariant.Violation instead of counting.
	InvariantChecks uint64 `json:"invariant_checks,omitempty"`

	// Interrupted marks a run stopped through Config.Interrupt;
	// EpochsCompleted is the boundary it stopped at.
	Interrupted     bool `json:"interrupted,omitempty"`
	EpochsCompleted int  `json:"epochs_completed,omitempty"`

	// Events is the total simulation events fired across the fleet
	// (managed runs plus baselines). Recovery replays re-fire events,
	// so a run with crashes reports more of them than the same-seed
	// undisturbed run even when every simulated metric is identical.
	Events uint64 `json:"events"`
}

// Run executes the fleet: per-node paired baselines (parallel), then
// the managed runs stepped in lockstep fleet epochs with the FastCap
// coordinator redistributing the budget between steps. Deterministic:
// the same Config yields a bit-identical Summary on any worker count —
// parallelism is across nodes only, every reduction runs in node
// order on the caller's goroutine, and the coordinator is serial.
//
// Node failures (injected panics, transient faults, exhausted restart
// budgets) kill only that node: it is excluded from subsequent epochs
// and the tail statistics, and its error is joined into the returned
// error alongside the valid Summary (mirroring Sweep's partial-failure
// contract).
func Run(ctx context.Context, c Config) (Summary, error) {
	sum, _, err := run(ctx, c, false)
	return sum, err
}

// RunWithCheckpoint is Run with an interrupt-checkpoint contract: when
// c.Interrupt fires, the fleet stops at the next window boundary and
// the returned bundle carries every live node's full checkpoint at
// that boundary, alongside the partial summary and ErrInterrupted.
// The bundle is nil on an uninterrupted run.
func RunWithCheckpoint(ctx context.Context, c Config) (Summary, *CheckpointBundle, error) {
	return run(ctx, c, true)
}

func run(ctx context.Context, c Config, wantBundle bool) (Summary, *CheckpointBundle, error) {
	c = c.withDefaults()
	nodes, err := buildNodes(c)
	if err != nil {
		return Summary{}, nil, err
	}
	if len(nodes) == 0 {
		return Summary{}, nil, errors.New("fleet: no nodes configured")
	}

	// Two-level core split: divide the worker pool between node-level
	// parallelism and per-node event-engine shards. The split touches
	// only wall-clock — each node's effective shard count changes no
	// bits (the sharded engine is exact), so determinism on any worker
	// count is preserved.
	procs := c.Workers
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	maxShards := 1
	for _, n := range nodes {
		if n.shards > maxShards {
			maxShards = n.shards
		}
	}
	workers, shardsPer, err := runner.SplitCores(c.CoreSplit, procs, len(nodes), maxShards)
	if err != nil {
		return Summary{}, nil, fmt.Errorf("fleet: %w", err)
	}
	for _, n := range nodes {
		n.effShards = n.shards
		if n.effShards > shardsPer {
			n.effShards = shardsPer
		}
	}

	// Phase 1: paired baselines, parallel across nodes. The baseline
	// also calibrates each node's rest-of-system power, which the
	// managed governor needs before it can be built.
	baseErrs := runner.ForEach(ctx, workers, len(nodes), func(ctx context.Context, i int) error {
		return nodes[i].runBaseline(ctx)
	}, nil)
	for i, err := range baseErrs {
		if err != nil {
			nodes[i].dead, nodes[i].err = true, err
		}
	}
	if err := ctx.Err(); err != nil {
		return Summary{}, nil, err
	}

	// Phase 2: build the managed systems (cheap, serial).
	for _, n := range nodes {
		if n.dead {
			continue
		}
		if err := n.buildManaged(); err != nil {
			n.dead, n.err = true, err
		}
	}

	// Phase 3: lockstep fleet epochs. Every step advances all live
	// nodes by CapEvery OS epochs in parallel — each node under its own
	// self-healing supervisor — then the serial coordinator absorbs
	// losses and recoveries and reassigns caps from the step's
	// measurements.
	tel := c.Telemetry
	epochLen := config.Default().Policy.EpochLength
	var capTrace []CapStep
	var caps []config.FreqMHz
	var fleetChecks uint64
	capping := c.BudgetW > 0
	interrupted := false
	done := 0
	for done < c.Epochs {
		select {
		case <-c.Interrupt:
			interrupted = true
		default:
		}
		if interrupted {
			break
		}
		k := c.CapEvery
		if done+k > c.Epochs {
			k = c.Epochs - done
		}
		stepErrs := runner.ForEach(ctx, workers, len(nodes), func(ctx context.Context, i int) error {
			if nodes[i].dead {
				return nil
			}
			return nodes[i].stepWindow(ctx, k)
		}, nil)
		now := config.Time(done+k) * epochLen
		for i, err := range stepErrs {
			if err != nil && !nodes[i].dead {
				nodes[i].dead, nodes[i].err = true, err
				tel.NodeLost(now, nodes[i].global, false, nodes[i].restarts)
			}
		}
		if err := ctx.Err(); err != nil {
			return Summary{}, nil, err
		}
		// Serial recovery bookkeeping, in node order: crash recoveries
		// that succeeded inside the window, then coordinator-visible
		// loss windows opening and closing. A lost node keeps
		// simulating — the coordinator just cannot see or steer it until
		// the window closes and it is re-admitted.
		for _, n := range nodes {
			if n.dead {
				continue
			}
			if n.windowRestarts > 0 {
				tel.NodeRecovered(now, n.global, false, n.attempt)
			}
			wasLost := n.lost
			n.lost = n.chaos.LostAt(done + k)
			switch {
			case n.lost && !wasLost:
				n.lossWindows++
				tel.NodeLost(now, n.global, true, n.restarts)
			case !n.lost && wasLost:
				tel.NodeRecovered(now, n.global, true, n.attempt)
			}
		}
		if capping && done+k < c.Epochs {
			obs := make([]nodeObs, len(nodes))
			for i, n := range nodes {
				obs[i] = n.observe()
			}
			newCaps, step := planCaps(done+k, c.BudgetW, obs, caps)
			// Coordinator invariant: the planner never estimates above
			// the budget without declaring the deficit.
			if err := invariant.Check("cap_within_budget",
				step.DeficitW > 0 || step.EstimatedW <= c.BudgetW*(1+1e-9),
				"epoch %d: estimated fleet power %.6f W exceeds budget %.6f W with no declared deficit",
				done+k, step.EstimatedW, c.BudgetW); err != nil {
				return Summary{}, nil, err
			}
			fleetChecks++
			for i, n := range nodes {
				if n.dead || newCaps[i] == 0 {
					continue
				}
				if err := n.applyCap(newCaps[i]); err != nil {
					return Summary{}, nil, err
				}
			}
			caps = newCaps
			capTrace = append(capTrace, step)
		}
		done += k
	}

	// The interrupt bundle must be captured on the quiescent window
	// boundary, before finalize.
	var bundle *CheckpointBundle
	if interrupted && wantBundle {
		if bundle, err = bundleNodes(c, nodes, done); err != nil {
			return Summary{}, nil, err
		}
	}

	// Phase 4: finalize and reduce, strictly in node order. A node
	// interrupted before its first epoch has nothing to finalize.
	for _, n := range nodes {
		if !n.dead && n.epochs > 0 {
			n.res = n.sys.Finalize()
		}
	}
	sum := summarize(c, nodes, caps, capTrace)
	sum.InvariantChecks += fleetChecks
	errOut := joinNodeErrors(nodes)
	if interrupted {
		sum.Interrupted = true
		sum.EpochsCompleted = done
		errOut = errors.Join(ErrInterrupted, errOut)
	}
	return sum, bundle, errOut
}

// buildNodes expands the group specs into the flat node list, with
// stable global indices (group order, then node order) and precomputed
// arrival schedules.
func buildNodes(c Config) ([]*node, error) {
	var nodes []*node
	epochSec := config.Default().Policy.EpochLength.Seconds()
	for gi, g := range c.Groups {
		if g.Nodes <= 0 {
			return nil, fmt.Errorf("fleet: group %d (%s): node count must be positive, got %d", gi, g.Name, g.Nodes)
		}
		arr := g.Arrival.withDefaults(c.Epochs)
		if err := arr.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: group %d (%s): arrival %w", gi, g.Name, err)
		}
		cfg := config.Default()
		cfg.Policy.Gamma = g.Gamma
		if g.Cores > 0 {
			cfg.Cores = g.Cores
		}
		if g.Channels > 0 {
			cfg.Channels = g.Channels
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: group %d (%s): %w", gi, g.Name, err)
		}
		rec := c.Recovery
		if g.Recovery != nil {
			rec = g.Recovery
		}
		var recEff *RecoverySpec
		if rec != nil {
			if err := rec.Validate(); err != nil {
				return nil, fmt.Errorf("fleet: group %d (%s): recovery: %w", gi, g.Name, err)
			}
			r := rec.withDefaults()
			recEff = &r
		}
		for ni := 0; ni < g.Nodes; ni++ {
			n := &node{
				group:     gi,
				inGroup:   ni,
				global:    len(nodes),
				cfg:       cfg,
				mix:       g.Mix,
				spec:      g.Spec,
				faultsCfg: g.Faults,
				recovery:  recEff,
				seed:      c.Seed,
				shards:    g.Shards,
			}
			n.schedule = arr.schedule(c.Seed, n.global, c.Epochs, epochSec)
			nodes = append(nodes, n)
		}
	}
	return nodes, nil
}

// summarize reduces the fleet, in node order, into the public summary.
func summarize(c Config, nodes []*node, caps []config.FreqMHz, capTrace []CapStep) Summary {
	sum := Summary{
		Nodes:    len(nodes),
		Epochs:   c.Epochs,
		BudgetW:  c.BudgetW,
		CapTrace: capTrace,
	}

	groups := make([]GroupSummary, len(c.Groups))
	groupSys := make([]float64, len(c.Groups))
	groupBase := make([]float64, len(c.Groups))
	groupCPI := make([][]float64, len(c.Groups))
	for gi, g := range c.Groups {
		groups[gi] = GroupSummary{Name: g.Name, Nodes: g.Nodes, Rollup: telemetry.NewRollup()}
	}

	var cpis []float64
	var totalEpochs, constrainedEpochs int
	var wallSec float64
	for _, n := range nodes {
		ns := NodeSummary{Node: n.global, Group: c.Groups[n.group].Name}
		if caps != nil && n.global < len(caps) {
			ns.FinalCapMHz = int(caps[n.global])
		}
		var meanIntensity float64
		for _, m := range n.schedule {
			meanIntensity += m
		}
		if len(n.schedule) > 0 {
			ns.MeanIntensity = meanIntensity / float64(len(n.schedule))
		}
		ns.Attempts = n.restarts
		ns.Crashes = n.crashes
		ns.RecoveryEpochs = n.recoveryEpochs
		ns.CorruptCheckpoints = n.corruptCkpts
		ns.LossWindows = n.lossWindows
		sum.Recoveries += n.restarts
		sum.InvariantChecks += n.res.InvariantChecks + n.baseRes.InvariantChecks
		if n.dead {
			ns.Dead = true
			if n.err != nil {
				ns.Err = n.err.Error()
			}
			if errors.Is(n.err, ErrNodeLost) {
				ns.Lost = true
				sum.LostNodes = append(sum.LostNodes, n.global)
			}
			sum.DeadNodes++
			sum.PerNode = append(sum.PerNode, ns)
			continue
		}
		if n.restarts > 0 {
			sum.DegradedNodes = append(sum.DegradedNodes, n.global)
		}
		sys := n.systemEnergy(n.res)
		base := n.systemEnergy(n.baseRes)
		cpi := n.cpiIncrease()

		ns.MemoryEnergyJ = n.res.Memory.Memory()
		ns.SystemEnergyJ = sys
		ns.BaselineSysJ = base
		if base > 0 {
			ns.SER = sys / base
		}
		ns.CPIIncrease = cpi
		ns.CappedEpochs = n.constrained
		sum.PerNode = append(sum.PerNode, ns)

		sum.MemoryEnergyJ += n.res.Memory.Memory()
		sum.SystemEnergyJ += sys
		sum.BaselineSysJ += base
		sum.Events += n.res.Events + n.baseRes.Events
		// Nodes run concurrently: the fleet draws the sum of the
		// per-node powers over one wall-clock span, not the serial
		// concatenation of node runtimes. A dead node's shorter
		// duration does not shrink the span the survivors cover.
		wallSec = math.Max(wallSec, n.res.Duration.Seconds())
		totalEpochs += n.epochs
		constrainedEpochs += n.constrained
		cpis = append(cpis, cpi)

		gi := n.group
		groupSys[gi] += sys
		groupBase[gi] += base
		groupCPI[gi] = append(groupCPI[gi], cpi)
		groups[gi].Rollup.Add(nodeExport(c, n))
	}

	if sum.BaselineSysJ > 0 {
		sum.SER = sum.SystemEnergyJ / sum.BaselineSysJ
	}
	if wallSec > 0 {
		sum.MemAvgPowerW = sum.MemoryEnergyJ / wallSec
	}
	if totalEpochs > 0 {
		sum.ConstrainedFrac = float64(constrainedEpochs) / float64(totalEpochs)
	}
	if c.BudgetW > 0 && sum.MemAvgPowerW > c.BudgetW {
		sum.BudgetExceeded = true
	}
	sum.AvgCPIIncrease = mean(cpis)
	sum.P99CPIIncrease = quantile(cpis, 0.99)
	sum.P999CPIIncrease = quantile(cpis, 0.999)

	for gi := range groups {
		if groupBase[gi] > 0 {
			groups[gi].SER = groupSys[gi] / groupBase[gi]
		}
		groups[gi].AvgCPIIncrease = mean(groupCPI[gi])
		groups[gi].P99CPIIncrease = quantile(groupCPI[gi], 0.99)
	}
	sum.Groups = groups

	sum.ConvergedAtEpoch = -1
	for i := len(capTrace) - 1; i >= 0; i-- {
		if capTrace[i].CapChanges != 0 {
			break
		}
		sum.Converged = true
		sum.ConvergedAtEpoch = capTrace[i].Epoch
	}
	return sum
}

// nodeExport packages one node's managed totals as a run export so
// group aggregation reuses the standard telemetry rollup.
func nodeExport(c Config, n *node) *telemetry.RunExport {
	g := c.Groups[n.group]
	freqSeconds := make(map[int]float64, len(n.res.FreqTime))
	for f, t := range n.res.FreqTime {
		freqSeconds[int(f)] = t.Seconds()
	}
	return &telemetry.RunExport{
		Meta: telemetry.RunMeta{
			Mix:          g.Mix.Name,
			Policy:       g.Spec.Name,
			Gamma:        g.Gamma,
			Cores:        n.cfg.Cores,
			Channels:     n.cfg.Channels,
			NonMemPowerW: n.nonMem,
		},
		DurationSeconds: n.res.Duration.Seconds(),
		Energy:          n.res.Memory.Export(),
		Residency:       n.res.Residency,
		FreqSeconds:     freqSeconds,
	}
}

func joinNodeErrors(nodes []*node) error {
	var errs []error
	for _, n := range nodes {
		if n.err != nil {
			errs = append(errs, fmt.Errorf("node %d: %w", n.global, n.err))
		}
	}
	return errors.Join(errs...)
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// quantile is the nearest-rank quantile over a copy of v (v itself is
// never reordered, preserving node-order determinism elsewhere).
// Small populations clamp to the maximum, so p999 of a 100-node fleet
// is its worst node.
func quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
