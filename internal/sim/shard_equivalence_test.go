package sim

import (
	"math"
	"reflect"
	"testing"

	"memscale/internal/config"
	"memscale/internal/faults"
	"memscale/internal/trace"
)

// buildConfinedStreams is buildStreams with OS page placement confining
// core i to channel i mod Channels — the partitioned workload shape the
// channel-sharded event engine requires.
func buildConfinedStreams(t *testing.T, cfg *config.Config, profiles []trace.Profile, seed uint64) []*trace.Stream {
	t.Helper()
	mapper := config.NewAddressMapper(cfg)
	streams := make([]*trace.Stream, len(profiles))
	for i, p := range profiles {
		s, err := trace.NewStreamOnChannels(p, mapper, seed+uint64(i)*0x9e3779b97f4a7c15,
			[]int{i % cfg.Channels})
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = s
	}
	return streams
}

// buildInterleavedStreams is buildStreams with OS page placement
// striping core i across its own 2-channel group (channels [g*2, g*2+2)
// with g = i mod Channels/2) — the interleaved shape whose confinement
// groups the bank-granularity analysis discovers. No stream is
// channel-confined, so the strict per-channel rule refuses it.
func buildInterleavedStreams(t *testing.T, cfg *config.Config, profiles []trace.Profile, seed uint64) []*trace.Stream {
	t.Helper()
	if cfg.Channels%2 != 0 {
		t.Fatalf("%d channels not divisible by interleave width 2", cfg.Channels)
	}
	groups := cfg.Channels / 2
	mapper := config.NewAddressMapper(cfg)
	streams := make([]*trace.Stream, len(profiles))
	for i, p := range profiles {
		g := i % groups
		s, err := trace.NewStreamOnChannels(p, mapper, seed+uint64(i)*0x9e3779b97f4a7c15,
			[]int{g * 2, g*2 + 1})
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = s
	}
	return streams
}

// TestShardSerialFallback pins the engine's eligibility rules: a
// workload whose channel-affinity sets collapse into one confinement
// group (any stream roaming every channel does it), or a per-channel
// governor, must silently run serially even when Shards > 1 (zero
// lookahead between shards makes those cases impossible to run
// bit-identically in parallel), and ParallelShards reports the engine
// actually in use. Telemetry is NOT a fallback cause: the recorder's
// per-channel cells are shard-local and merge at window edges.
func TestShardSerialFallback(t *testing.T) {
	cfg := config.Default()
	cfg.Cores = 4
	profile := trace.Profile{Name: "fallback", Phases: []trace.Phase{
		{BaseCPI: 1, MPKI: 20, WPKI: 5, RowLocality: 0.5},
	}}
	profiles := make([]trace.Profile, cfg.Cores)
	for i := range profiles {
		profiles[i] = profile
	}

	t.Run("interleaved workload", func(t *testing.T) {
		s, err := New(cfg, buildStreams(t, &cfg, profiles, 1), Options{
			Governor: &ladderGovernor{}, Shards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.ParallelShards(); got != 1 {
			t.Errorf("ParallelShards() = %d for interleaved streams, want 1", got)
		}
	})
	t.Run("confined workload engages", func(t *testing.T) {
		s, err := New(cfg, buildConfinedStreams(t, &cfg, profiles, 1), Options{
			Governor: &ladderGovernor{}, Shards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.ParallelShards(); got != 4 {
			t.Errorf("ParallelShards() = %d for confined streams, want 4", got)
		}
	})
	t.Run("group-interleaved workload engages at group count", func(t *testing.T) {
		s, err := New(cfg, buildInterleavedStreams(t, &cfg, profiles, 1), Options{
			Governor: &ladderGovernor{}, Shards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.ParallelShards(); got != 2 {
			t.Errorf("ParallelShards() = %d for 2-channel groups, want 2", got)
		}
	})
	t.Run("channel granularity refuses group-interleaved", func(t *testing.T) {
		s, err := New(cfg, buildInterleavedStreams(t, &cfg, profiles, 1), Options{
			Governor: &ladderGovernor{}, Shards: 4, ShardGranularity: ShardByChannel,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.ParallelShards(); got != 1 {
			t.Errorf("ParallelShards() = %d under ShardByChannel, want 1", got)
		}
	})
	t.Run("shards clamp to channels", func(t *testing.T) {
		cfg := cfg
		cfg.Channels = 2
		s, err := New(cfg, buildConfinedStreams(t, &cfg, profiles, 1), Options{
			Governor: &ladderGovernor{}, Shards: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.ParallelShards(); got != 2 {
			t.Errorf("ParallelShards() = %d with 2 channels, want 2", got)
		}
	})
	t.Run("DisableParallel wins", func(t *testing.T) {
		s, err := New(cfg, buildConfinedStreams(t, &cfg, profiles, 1), Options{
			Governor: &ladderGovernor{}, Shards: 4, DisableParallel: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.ParallelShards(); got != 1 {
			t.Errorf("ParallelShards() = %d with DisableParallel, want 1", got)
		}
	})
}

// FuzzShardEquivalence is the parallel engine's core contract under
// adversarial inputs: for any channel-partitioned or group-interleaved
// workload shape, shard count, and refresh-storm schedule, the sharded
// run must be equivalent to the serial run request for request —
// identical MC counters (every request saw the same bank state, queue
// depth, and row-buffer outcome), identical per-core CPI, energy,
// residency, fault counts, and fired-event total. GOMAXPROCS does not
// matter for the property: the window protocol is deterministic, not
// scheduling-dependent. The low bit of the placement byte picks
// channel-confined (PR 9's shape) or 2-channel group-interleaved
// streams (the §4l shape, where no stream has a home channel).
func FuzzShardEquivalence(f *testing.F) {
	f.Add(uint64(1), 30.0, 0.2, 8.0, 0.7, uint8(2), uint8(1), uint8(0))
	f.Add(uint64(42), 55.0, 0.0, 20.0, 0.2, uint8(4), uint8(3), uint8(0))
	f.Add(uint64(7), 5.0, 4.9, 0.1, 0.95, uint8(3), uint8(0), uint8(1))
	f.Add(uint64(1789), 25.0, 1.5, 4.0, 0.5, uint8(2), uint8(2), uint8(1))

	f.Fuzz(func(t *testing.T, seed uint64, burstMPKI, idleMPKI, wbFrac, rowLoc float64,
		shards, storms, placement uint8) {

		clamp := func(v, lo, hi float64) float64 {
			if math.IsNaN(v) || v < lo {
				return lo
			}
			if v > hi {
				return hi
			}
			return v
		}
		burstMPKI = clamp(burstMPKI, 1, 80)
		idleMPKI = clamp(idleMPKI, 0.01, 5)
		rowLoc = clamp(rowLoc, 0, 0.99)
		wbFrac = clamp(wbFrac, 0, 1)

		cfg := config.Default()
		cfg.Cores = 4
		cfg.Policy.EpochLength = 2 * config.Millisecond

		profile := trace.Profile{Name: "fuzz", Phases: []trace.Phase{
			{Instructions: 10_000 + seed%50_000, BaseCPI: 1, MPKI: burstMPKI,
				WPKI: burstMPKI * wbFrac, RowLocality: rowLoc},
			{Instructions: 40_000, BaseCPI: 0.7, MPKI: idleMPKI,
				WPKI: idleMPKI * wbFrac, RowLocality: rowLoc},
			{BaseCPI: 1, MPKI: burstMPKI / 2, WPKI: burstMPKI / 2 * wbFrac,
				RowLocality: 0.99 - rowLoc},
		}}
		profiles := make([]trace.Profile, cfg.Cores)
		for i := range profiles {
			profiles[i] = profile
		}

		// Cross-shard traffic: a storm schedule that fires inside the run,
		// so the window protocol's ticket reservation is exercised.
		fc := faults.Config{
			Seed:               seed,
			RefreshStormRate:   1,
			RefreshStormBursts: 1 + int(storms)%4,
		}

		build := buildConfinedStreams
		if placement%2 == 1 {
			build = buildInterleavedStreams
		}
		run := func(n int) (Result, interface{}) {
			inj, err := faults.New(fc, 0)
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(cfg, build(t, &cfg, profiles, seed), Options{
				Governor: &ladderGovernor{},
				Faults:   inj,
				Shards:   n,
			})
			if err != nil {
				t.Fatal(err)
			}
			res := s.RunFor(2 * cfg.Policy.EpochLength)
			return res, s.MC.Counters()
		}

		serial, serialCtr := run(1)
		n := 2 + int(shards)%(cfg.Channels-1) // 2..Channels
		sharded, shardedCtr := run(n)

		requireSameResult(t, serial, sharded)
		if !reflect.DeepEqual(serialCtr, shardedCtr) {
			t.Errorf("MC counters diverged at %d shards:\nserial:  %+v\nsharded: %+v",
				n, serialCtr, shardedCtr)
		}
		if serial.Faults != sharded.Faults {
			t.Errorf("fault counts diverged: %+v != %+v", serial.Faults, sharded.Faults)
		}
		if serial.Events != sharded.Events {
			t.Errorf("sharded run fired %d events, serial fired %d", sharded.Events, serial.Events)
		}
	})
}
