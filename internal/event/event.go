// Package event implements the discrete-event simulation engine that
// drives the MemScale memory-system simulator.
//
// The engine is a deterministic single-threaded priority queue of
// timestamped callbacks. Events scheduled for the same instant fire in
// the order they were scheduled, which keeps every simulation run
// exactly reproducible.
package event

import (
	"container/heap"
	"fmt"

	"memscale/internal/config"
)

// Handler is a callback invoked when an event fires.
type Handler func(now config.Time)

// Event is a scheduled occurrence. It is returned by Schedule so the
// caller can cancel it later.
type Event struct {
	at      config.Time
	seq     uint64
	fn      Handler
	index   int // heap index; -1 when not queued
	cancel  bool
	comment string
}

// At returns the time the event is scheduled for.
func (e *Event) At() config.Time { return e.at }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e != nil && e.index >= 0 && !e.cancel }

// Queue is the event priority queue and simulation clock.
// The zero value is ready to use.
type Queue struct {
	h   eventHeap
	now config.Time
	seq uint64

	fired     uint64
	scheduled uint64
}

// Now returns the current simulated time.
func (q *Queue) Now() config.Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Fired returns the number of events executed so far.
func (q *Queue) Fired() uint64 { return q.fired }

// ScheduledTotal returns the number of events ever scheduled.
func (q *Queue) ScheduledTotal() uint64 { return q.scheduled }

// Schedule queues fn to run at time at. Scheduling in the past (before
// Now) panics: that is always a simulator bug, and silently clamping
// would corrupt causality.
func (q *Queue) Schedule(at config.Time, fn Handler) *Event {
	if at < q.now {
		panic(fmt.Sprintf("event: scheduling at %v before now %v", at, q.now))
	}
	if fn == nil {
		panic("event: nil handler")
	}
	q.seq++
	q.scheduled++
	e := &Event{at: at, seq: q.seq, fn: fn, index: -1}
	heap.Push(&q.h, e)
	return e
}

// After queues fn to run d after the current time.
func (q *Queue) After(d config.Time, fn Handler) *Event {
	if d < 0 {
		panic(fmt.Sprintf("event: negative delay %v", d))
	}
	return q.Schedule(q.now+d, fn)
}

// Cancel removes a pending event. Cancelling a fired or already
// cancelled event is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.cancel || e.index < 0 {
		return
	}
	e.cancel = true
	heap.Remove(&q.h, e.index)
	e.index = -1
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
func (q *Queue) Step() bool {
	for len(q.h) > 0 {
		e := heap.Pop(&q.h).(*Event)
		e.index = -1
		if e.cancel {
			continue
		}
		q.now = e.at
		q.fired++
		e.fn(q.now)
		return true
	}
	return false
}

// RunUntil executes events in order until the next event would fire
// after the deadline (or no events remain), then advances the clock to
// exactly the deadline. Events at the deadline itself do fire.
func (q *Queue) RunUntil(deadline config.Time) {
	if deadline < q.now {
		panic(fmt.Sprintf("event: RunUntil(%v) before now %v", deadline, q.now))
	}
	for len(q.h) > 0 && q.h[0].at <= deadline {
		if !q.Step() {
			break
		}
	}
	q.now = deadline
}

// Run executes events until the queue is empty or limit events have
// fired; limit <= 0 means no limit. It returns the number of events
// executed.
func (q *Queue) Run(limit uint64) uint64 {
	var n uint64
	for limit <= 0 || n < limit {
		if !q.Step() {
			break
		}
		n++
	}
	return n
}

// NextAt returns the timestamp of the next pending event and whether
// one exists.
func (q *Queue) NextAt() (config.Time, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

// eventHeap orders by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
