package core

import (
	"memscale/internal/config"
	"memscale/internal/dram"
	"memscale/internal/power"
	"memscale/internal/sim"
)

// ChannelPerfModel extends the Equation 2-9 model to per-channel
// frequencies: every channel carries its own queueing factors and
// device time, and every core's memory time decomposes over the
// channels its misses land on. This supports the paper's Section 6
// future work ("selecting different frequencies for different
// channels"), which becomes profitable once OS page placement skews
// per-channel load.
type ChannelPerfModel struct {
	cfg     *config.Config
	timings map[config.FreqMHz]dram.Resolved

	// Per-channel window quantities.
	XiBank  []float64
	XiBus   []float64
	TDevice []config.Time
	FitFreq []config.FreqMHz // per-channel profiling frequencies

	// AlphaCh[i][ch]: core i's misses per instruction on channel ch.
	AlphaCh [][]float64
	TPICpu  []float64
	CPIObs  []float64
}

// NewChannelPerfModel precomputes the timing tables.
func NewChannelPerfModel(cfg *config.Config) *ChannelPerfModel {
	m := &ChannelPerfModel{
		cfg:     cfg,
		timings: make(map[config.FreqMHz]dram.Resolved, len(config.BusFrequencies)),
	}
	for _, f := range config.BusFrequencies {
		m.timings[f] = dram.Resolve(cfg.Timing, f, f)
	}
	return m
}

// Fit extracts the model inputs from a profiling window. Channel
// frequencies in force during the window come from the interval's
// slices.
func (m *ChannelPerfModel) Fit(p sim.Profile) {
	nCh := len(p.Counters.PerChannel)
	nCore := len(p.Instr)
	m.XiBank = make([]float64, nCh)
	m.XiBus = make([]float64, nCh)
	m.TDevice = make([]config.Time, nCh)
	m.AlphaCh = make([][]float64, nCore)
	m.TPICpu = make([]float64, nCore)
	m.CPIObs = make([]float64, nCore)

	m.FitFreq = make([]config.FreqMHz, nCh)
	profFreq := m.FitFreq
	for ch := 0; ch < nCh; ch++ {
		cc := p.Counters.PerChannel[ch]
		m.XiBank[ch] = 1 + cc.BankQueueDepth()
		m.XiBus[ch] = 1 + cc.ChannelQueueDepth()
		f := p.BusFreq
		if ch < len(p.Interval.Channels) && p.Interval.Channels[ch].BusFreq != 0 {
			f = p.Interval.Channels[ch].BusFreq
		}
		profFreq[ch] = f
		at := m.timings[f]
		if n := cc.AccessCount(); n == 0 {
			m.TDevice[ch] = at.TRCD + at.TCL
		} else {
			hit := float64(at.TCL) * float64(cc.RBHC)
			cb := float64(at.TRCD+at.TCL) * float64(cc.CBMC)
			ob := float64(at.TRP+at.TRCD+at.TCL) * float64(cc.OBMC)
			pd := float64(at.TXP) * float64(cc.EPDC)
			m.TDevice[ch] = config.Time((hit + cb + ob + pd) / float64(n))
		}
	}

	cycles := m.cfg.TimeToCPUCycles(p.Elapsed())
	for i := 0; i < nCore; i++ {
		m.AlphaCh[i] = make([]float64, nCh)
		instr := p.Instr[i]
		if instr <= 0 {
			continue
		}
		m.CPIObs[i] = cycles / instr
		memTPI := 0.0
		for ch := 0; ch < nCh; ch++ {
			m.AlphaCh[i][ch] = float64(p.Counters.PerChannel[ch].TLM[i]) / instr
			memTPI += m.AlphaCh[i][ch] * m.TPIMemCh(ch, profFreq[ch])
		}
		tpi := p.Elapsed().Seconds() / instr
		cpuPart := tpi - memTPI
		if cpuPart < 0 {
			cpuPart = 0
		}
		m.TPICpu[i] = cpuPart
	}
}

// TPIMemCh evaluates Equation 9 for one channel at frequency f, with
// the same queue-depth interpolation as the uniform model (Section 3.3
// deep-queue modification).
func (m *ChannelPerfModel) TPIMemCh(ch int, f config.FreqMHz) float64 {
	at := m.timings[f]
	ratio := 1.0
	if ch < len(m.FitFreq) && m.FitFreq[ch] != 0 && f != m.FitFreq[ch] {
		ratio = queueGrowth(float64(at.Burst) / float64(m.timings[m.FitFreq[ch]].Burst))
	}
	xiBank := 1 + (m.XiBank[ch]-1)*ratio
	xiBus := 1 + (m.XiBus[ch]-1)*ratio
	sBank := (at.MC + m.TDevice[ch]).Seconds()
	sBus := at.Burst.Seconds()
	return xiBank * (sBank + xiBus*sBus)
}

// CPI predicts core i's CPI under the per-channel frequency vector.
func (m *ChannelPerfModel) CPI(i int, freqs []config.FreqMHz) float64 {
	tpi := m.TPICpu[i]
	for ch, f := range freqs {
		tpi += m.AlphaCh[i][ch] * m.TPIMemCh(ch, f)
	}
	return tpi * m.cfg.CPUFreqMHz.Hz()
}

// RelTime predicts run time under freqs relative to the uniform base
// vector.
func (m *ChannelPerfModel) RelTime(freqs, base []config.FreqMHz) float64 {
	var sum float64
	n := 0
	for i := range m.CPIObs {
		if m.CPIObs[i] <= 0 {
			continue
		}
		sum += m.CPI(i, freqs) / m.CPI(i, base)
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// PerChannelPolicy is the future-work governor: greedy per-channel
// frequency descent under the shared slack constraint.
type PerChannelPolicy struct {
	cfg   *config.Config
	model *ChannelPerfModel
	emod  *power.Model
	opts  Options
	gamma float64

	slack []config.Time

	decisions int
}

// NewPerChannelPolicy builds the per-channel governor.
func NewPerChannelPolicy(cfg *config.Config, opts Options) *PerChannelPolicy {
	g := opts.Gamma
	if g == 0 {
		g = cfg.Policy.Gamma
	}
	return &PerChannelPolicy{
		cfg:   cfg,
		model: NewChannelPerfModel(cfg),
		emod:  power.NewModel(cfg),
		opts:  opts,
		gamma: g,
		slack: make([]config.Time, cfg.Cores),
	}
}

// Name implements sim.Governor.
func (p *PerChannelPolicy) Name() string { return "memscale-perchannel" }

// Gamma returns the performance-degradation bound.
func (p *PerChannelPolicy) Gamma() float64 { return p.gamma }

// Decisions returns how many epoch decisions were made.
func (p *PerChannelPolicy) Decisions() int { return p.decisions }

// ProfileComplete implements sim.Governor; per-channel governors never
// use the uniform path, but the interface requires it.
func (p *PerChannelPolicy) ProfileComplete(prof sim.Profile) config.FreqMHz {
	freqs := p.ProfileCompletePerChannel(prof)
	best := config.MinBusFreq
	for _, f := range freqs {
		if f > best {
			best = f
		}
	}
	return best
}

// ladderIndex returns f's position in the descending frequency ladder.
func ladderIndex(f config.FreqMHz) int {
	for i, g := range config.BusFrequencies {
		if g == f {
			return i
		}
	}
	return 0
}

// ProfileCompletePerChannel implements sim.PerChannelGovernor: greedy
// coordinate descent from the all-nominal vector, lowering whichever
// channel yields the largest predicted-energy improvement while every
// core's slack projection stays non-negative.
func (p *PerChannelPolicy) ProfileCompletePerChannel(prof sim.Profile) []config.FreqMHz {
	p.model.Fit(prof)
	p.decisions++
	nCh := len(prof.Counters.PerChannel)
	cur := make([]config.FreqMHz, nCh)
	base := make([]config.FreqMHz, nCh)
	for i := range cur {
		cur[i] = config.MaxBusFreq
		base[i] = config.MaxBusFreq
	}
	curScore := p.score(prof, cur, base)

	for {
		bestCh, bestScore := -1, curScore
		var bestFreq config.FreqMHz
		for ch := 0; ch < nCh; ch++ {
			idx := ladderIndex(cur[ch])
			if idx+1 >= len(config.BusFrequencies) {
				continue
			}
			trial := append([]config.FreqMHz(nil), cur...)
			trial[ch] = config.BusFrequencies[idx+1]
			if !p.feasible(trial, base) {
				continue
			}
			if s := p.score(prof, trial, base); s < bestScore {
				bestCh, bestScore, bestFreq = ch, s, trial[ch]
			}
		}
		if bestCh < 0 {
			break
		}
		cur[bestCh] = bestFreq
		curScore = bestScore
	}
	return cur
}

// feasible projects the slack constraint one epoch forward for a
// frequency vector.
func (p *PerChannelPolicy) feasible(freqs, base []config.FreqMHz) bool {
	epoch := p.cfg.Policy.EpochLength
	for i := range p.slack {
		if p.model.CPIObs[i] <= 0 {
			continue
		}
		cpiMax := p.model.CPI(i, base)
		cpiF := p.model.CPI(i, freqs)
		if cpiF <= 0 {
			continue
		}
		gain := config.Time(float64(epoch) * ((1 + p.gamma) * cpiMax / cpiF))
		if p.slack[i]+gain-epoch < 0 {
			return false
		}
	}
	return true
}

// score predicts the system (or memory) energy of the profiled work
// under the frequency vector.
func (p *PerChannelPolicy) score(prof sim.Profile, freqs, base []config.FreqMHz) float64 {
	relTime := p.model.RelTime(freqs, base)
	iv := prof.Interval

	maxF := config.MinBusFreq
	for _, f := range freqs {
		if f > maxF {
			maxF = f
		}
	}
	pred := power.Interval{
		Duration:  scaleT(iv.Duration, relTime),
		MCBusFreq: maxF,
		Channels:  make([]power.ChannelSlice, len(iv.Channels)),
	}
	for ch := range iv.Channels {
		profF := iv.Channels[ch].BusFreq
		burstRatio := float64(p.model.timings[freqs[ch]].Burst) / float64(p.model.timings[profF].Burst)
		pred.Channels[ch] = predictChannelSlice(iv.Channels[ch], freqs[ch], relTime, burstRatio)
	}
	mem := p.emod.Energy(pred).Memory()
	if p.opts.Objective == MinimizeMemoryEnergy {
		return mem
	}
	return mem + p.opts.NonMemPower*config.Time(float64(iv.Duration)*relTime).Seconds()
}

// EpochEnd implements sim.Governor: slack update with the epoch's
// actual outcome, as in the base policy.
func (p *PerChannelPolicy) EpochEnd(prof sim.Profile) {
	p.model.Fit(prof)
	elapsed := prof.Elapsed()
	nCh := len(prof.Counters.PerChannel)
	base := make([]config.FreqMHz, nCh)
	for i := range base {
		base[i] = config.MaxBusFreq
	}
	for i := range p.slack {
		instr := prof.Instr[i]
		if instr <= 0 || p.model.CPIObs[i] <= 0 {
			continue
		}
		tpiMax := p.model.TPICpu[i]
		for ch := 0; ch < nCh; ch++ {
			tpiMax += p.model.AlphaCh[i][ch] * p.model.TPIMemCh(ch, config.MaxBusFreq)
		}
		target := config.FromSeconds(instr * tpiMax * (1 + p.gamma))
		p.slack[i] += target - elapsed
	}
}

// Slack returns the accumulated per-core slack.
func (p *PerChannelPolicy) Slack() []config.Time {
	return append([]config.Time(nil), p.slack...)
}
