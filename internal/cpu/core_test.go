package cpu

import (
	"math"
	"testing"

	"memscale/internal/config"
	"memscale/internal/event"
	"memscale/internal/memctrl"
	"memscale/internal/trace"
)

type rig struct {
	cfg   config.Config
	q     *event.Queue
	mc    *memctrl.Controller
	cores []*Core
}

func newRig(tb testing.TB, profile trace.Profile, n int) *rig {
	tb.Helper()
	cfg := config.Default()
	cfg.Cores = n
	q := &event.Queue{}
	mc := memctrl.New(&cfg, q)
	mc.Start()
	mapper := config.NewAddressMapper(&cfg)
	r := &rig{cfg: cfg, q: q, mc: mc}
	for i := 0; i < n; i++ {
		s, err := trace.NewStream(profile, mapper, trace.Seed("cpu-test", i))
		if err != nil {
			tb.Fatalf("NewStream: %v", err)
		}
		c := New(i, &cfg, q, mc, s)
		c.Start(0)
		r.cores = append(r.cores, c)
	}
	return r
}

func prof(baseCPI, mpki, wpki float64) trace.Profile {
	return trace.Profile{Name: "p", Phases: []trace.Phase{
		{BaseCPI: baseCPI, MPKI: mpki, WPKI: wpki, RowLocality: 0.3},
	}}
}

func TestCPIMatchesAnalyticModel(t *testing.T) {
	// Single core, no contention: CPI should be
	// BaseCPI + alpha * memLatency * Fcpu.
	r := newRig(t, prof(1.0, 5.0, 0), 1)
	horizon := 20 * config.Millisecond
	r.q.RunUntil(horizon)
	core := r.cores[0]
	instr := core.Instructions(horizon)
	if instr < 1e6 {
		t.Fatalf("only %.0f instructions retired", instr)
	}
	gotCPI := core.CPI(horizon)

	// Uncontended memory latency: MC + tRCD + tCL + burst (closed
	// page, almost every access is a closed miss).
	tm := r.mc.Timing()
	lat := (tm.MC + tm.TRCD + tm.TCL + tm.Burst).Seconds()
	alpha := 5.0 / 1000
	wantCPI := 1.0 + alpha*lat*r.cfg.CPUFreqMHz.Hz()
	if math.Abs(gotCPI-wantCPI)/wantCPI > 0.10 {
		t.Errorf("CPI = %.3f, want ~%.3f (within 10%%)", gotCPI, wantCPI)
	}

	// Stall accounting closes the Equation 2 identity:
	// total time = compute + stall.
	compute := config.Time(instr * 1.0 * float64(r.cfg.CPUFreqMHz.Period()))
	gap := horizon - compute - core.StallTime()
	if math.Abs(float64(gap)) > 0.02*float64(horizon) {
		t.Errorf("time identity broken: compute %v + stall %v != %v",
			compute, core.StallTime(), horizon)
	}
}

func TestInstructionInterpolation(t *testing.T) {
	// With a very low miss rate the core is almost always computing;
	// sampled instruction counts must advance smoothly.
	r := newRig(t, prof(2.0, 0.01, 0), 1)
	core := r.cores[0]
	var prev float64
	for i := 1; i <= 10; i++ {
		at := config.Time(i) * 100 * config.Microsecond
		r.q.RunUntil(at)
		got := core.Instructions(at)
		if got <= prev {
			t.Fatalf("instructions did not advance at %v: %f -> %f", at, prev, got)
		}
		// 2.0 CPI at 4 GHz -> 2e9 instr/s -> 200k per 100 us.
		want := float64(i) * 200_000
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("instructions at %v = %.0f, want ~%.0f", at, got, want)
		}
		prev = got
	}
}

func TestWritebacksIssued(t *testing.T) {
	r := newRig(t, prof(1.0, 10.0, 5.0), 1)
	r.q.RunUntil(5 * config.Millisecond)
	core := r.cores[0]
	if core.Writebacks() == 0 {
		t.Fatal("no writebacks issued")
	}
	ratio := float64(core.Writebacks()) / float64(core.Reads())
	if math.Abs(ratio-0.5) > 0.1 {
		t.Errorf("WB/read ratio = %.2f, want ~0.5", ratio)
	}
	ctr := r.mc.Counters()
	if ctr.Writebacks == 0 {
		t.Error("controller saw no writebacks")
	}
}

func TestMultiCoreContentionRaisesCPI(t *testing.T) {
	solo := newRig(t, prof(0.8, 20.0, 0), 1)
	loaded := newRig(t, prof(0.8, 20.0, 0), 16)
	horizon := 10 * config.Millisecond
	solo.q.RunUntil(horizon)
	loaded.q.RunUntil(horizon)
	soloCPI := solo.cores[0].CPI(horizon)
	var worst float64
	for _, c := range loaded.cores {
		if cpi := c.CPI(horizon); cpi > worst {
			worst = cpi
		}
	}
	if worst <= soloCPI {
		t.Errorf("16-core contention (%.3f) not above solo CPI (%.3f)", worst, soloCPI)
	}
}

func TestTLMMatchesCoreReads(t *testing.T) {
	r := newRig(t, prof(1.0, 2.0, 0), 4)
	r.q.RunUntil(5 * config.Millisecond)
	ctr := r.mc.Counters()
	for i, c := range r.cores {
		// TLM counts misses that reached memory; the core may have one
		// in flight.
		if d := int64(c.Reads()) - int64(ctr.TLM[i]); d < 0 || d > 1 {
			t.Errorf("core %d: reads %d vs TLM %d", i, c.Reads(), ctr.TLM[i])
		}
	}
}

func TestDoubleStartPanics(t *testing.T) {
	r := newRig(t, prof(1.0, 1.0, 0), 1)
	defer func() {
		if recover() == nil {
			t.Error("second Start must panic")
		}
	}()
	r.cores[0].Start(0)
}
