// Command memscale-sim runs a single (workload, policy) pair against
// the unmanaged baseline and prints the paired outcome: energy
// savings, CPI degradation, and the frequency residency.
//
// Usage:
//
//	memscale-sim -mix MID1 [-policy MemScale] [-epochs 10]
//	             [-gamma 0.10] [-cores 16] [-channels 4] [-timeline]
//
// Ctrl-C cancels the simulation promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"memscale"
)

func main() {
	mix := flag.String("mix", "MID1", "workload mix ("+strings.Join(memscale.Mixes(), ", ")+")")
	policy := flag.String("policy", "MemScale", "policy ("+strings.Join(memscale.Policies(), ", ")+")")
	epochs := flag.Int("epochs", 10, "OS quanta (5 ms each) to simulate")
	gamma := flag.Float64("gamma", 0.10, "maximum allowed performance degradation")
	cores := flag.Int("cores", 0, "core count override (default 16)")
	channels := flag.Int("channels", 0, "channel count override (default 4)")
	timeline := flag.Bool("timeline", false, "print the per-epoch frequency/CPI timeline")
	telemetryOut := flag.String("telemetry-out", "",
		"collect full telemetry (with events) and write it as JSONL to this file; read it with memscale-report")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rc := memscale.RunConfig{
		Mix:      *mix,
		Policy:   *policy,
		Epochs:   *epochs,
		Gamma:    *gamma,
		Cores:    *cores,
		Channels: *channels,
		Timeline: *timeline,
	}
	if *telemetryOut != "" {
		rc.Telemetry = &memscale.TelemetryConfig{Events: true}
	}
	sum, err := memscale.RunContext(ctx, rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memscale-sim:", err)
		os.Exit(1)
	}
	if *telemetryOut != "" {
		f, err := os.Create(*telemetryOut)
		if err == nil {
			err = memscale.WriteTelemetry(f, sum)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "memscale-sim: telemetry:", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry written to %s\n", *telemetryOut)
	}

	fmt.Println(sum)
	fmt.Printf("simulated %.0f ms; memory energy %.3f J; system energy %.3f J\n",
		sum.DurationSeconds*1000, sum.MemoryEnergyJ, sum.SystemEnergyJ)

	freqs := make([]int, 0, len(sum.FreqSeconds))
	for f := range sum.FreqSeconds {
		freqs = append(freqs, f)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	fmt.Println("frequency residency:")
	for _, f := range freqs {
		fmt.Printf("  %4d MHz  %5.1f%%\n", f, sum.FreqSeconds[f]/sum.DurationSeconds*100)
	}

	if *timeline {
		fmt.Println("timeline (per 5 ms epoch):")
		for _, ep := range sum.Timeline {
			var cpiMin, cpiMax float64
			for i, c := range ep.CoreCPI {
				if i == 0 || c < cpiMin {
					cpiMin = c
				}
				if c > cpiMax {
					cpiMax = c
				}
			}
			var util float64
			for _, u := range ep.ChannelUtil {
				util += u
			}
			if len(ep.ChannelUtil) > 0 {
				util /= float64(len(ep.ChannelUtil))
			}
			fmt.Printf("  t=%6.1fms  %4d MHz  CPI %.2f-%.2f  chan util %4.1f%%\n",
				ep.EndMs(), ep.BusFreqMHz(), cpiMin, cpiMax, util*100)
		}
	}
}
