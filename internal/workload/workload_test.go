package workload

import (
	"math"
	"testing"

	"memscale/internal/config"
)

func TestAllAppsValid(t *testing.T) {
	for _, name := range AppNames() {
		p, err := App(name)
		if err != nil {
			t.Fatalf("App(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile %q has Name %q", name, p.Name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("profile %q invalid: %v", name, err)
		}
	}
	if _, err := App("nosuchapp"); err == nil {
		t.Error("unknown app must error")
	}
}

func TestMixesCoverTable1(t *testing.T) {
	if len(Mixes) != 12 {
		t.Fatalf("have %d mixes, want 12", len(Mixes))
	}
	wantOrder := []string{
		"ILP1", "ILP2", "ILP3", "ILP4",
		"MID1", "MID2", "MID3", "MID4",
		"MEM1", "MEM2", "MEM3", "MEM4",
	}
	for i, name := range Names() {
		if name != wantOrder[i] {
			t.Errorf("mix %d = %s, want %s", i, name, wantOrder[i])
		}
	}
	for _, m := range Mixes {
		for _, a := range m.Apps {
			if _, err := App(a); err != nil {
				t.Errorf("mix %s references unknown app %q", m.Name, a)
			}
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("MID3")
	if err != nil {
		t.Fatal(err)
	}
	if m.Apps != [4]string{"apsi", "bzip2", "ammp", "gap"} {
		t.Errorf("MID3 apps = %v", m.Apps)
	}
	if _, err := ByName("MEM9"); err == nil {
		t.Error("unknown mix must error")
	}
}

func TestByClass(t *testing.T) {
	for class, want := range map[Class]int{ClassILP: 4, ClassMID: 4, ClassMEM: 4} {
		got := ByClass(class)
		if len(got) != want {
			t.Errorf("class %v has %d mixes", class, len(got))
		}
		for _, m := range got {
			if m.Class != class {
				t.Errorf("mix %s in wrong class bucket", m.Name)
			}
		}
	}
	if ClassILP.String() != "ILP" || ClassMID.String() != "MID" || ClassMEM.String() != "MEM" {
		t.Error("class names wrong")
	}
}

// TestMixRPKIMatchesTable1 checks that the calibrated profiles
// reproduce the Table 1 aggregate miss rates. The paper's RPKI/WPKI
// come from real traces with slightly unequal instruction counts, so
// tolerances are loose but meaningful: RPKI within 20%, and the
// class ordering must be strict (ILP << MID << MEM).
func TestMixRPKIMatchesTable1(t *testing.T) {
	for _, m := range Mixes {
		got := m.ExpectedRPKI()
		rel := math.Abs(got-m.PaperRPKI) / m.PaperRPKI
		if rel > 0.20 {
			t.Errorf("%s: expected RPKI %.2f vs paper %.2f (%.0f%% off)",
				m.Name, got, m.PaperRPKI, rel*100)
		}
	}
	// Class separation.
	maxILP, maxMID := 0.0, 0.0
	minMID, minMEM := math.Inf(1), math.Inf(1)
	for _, m := range Mixes {
		r := m.ExpectedRPKI()
		switch m.Class {
		case ClassILP:
			maxILP = math.Max(maxILP, r)
		case ClassMID:
			maxMID = math.Max(maxMID, r)
			minMID = math.Min(minMID, r)
		case ClassMEM:
			minMEM = math.Min(minMEM, r)
		}
	}
	if maxILP >= minMID || maxMID >= minMEM {
		t.Errorf("class RPKI ordering broken: ILP max %.2f, MID [%.2f,%.2f], MEM min %.2f",
			maxILP, minMID, maxMID, minMEM)
	}
}

// TestGeneratedRPKIMatchesExpected drives the real generators and
// verifies the streams deliver the calibrated rates.
func TestGeneratedRPKIMatchesExpected(t *testing.T) {
	cfg := config.Default()
	for _, name := range []string{"ILP2", "MID1", "MEM1"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		streams, err := m.Streams(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(streams) != cfg.Cores {
			t.Fatalf("%s: %d streams, want %d", name, len(streams), cfg.Cores)
		}
		// Every core retires the same instruction budget, as in the
		// simulator, so the aggregate is the arithmetic mean of the
		// per-app rates.
		const perCoreInstr = 40_000_000
		var instr, reads uint64
		for _, s := range streams {
			for {
				s.Next()
				if in, _, _ := s.Stats(); in >= perCoreInstr {
					break
				}
			}
			in, rd, _ := s.Stats()
			instr += in
			reads += rd
		}
		got := float64(reads) / float64(instr) * 1000
		want := m.ExpectedRPKIOver(perCoreInstr)
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("%s: generated RPKI %.3f, calibrated %.3f", name, got, want)
		}
	}
}

func TestAssignmentStripes(t *testing.T) {
	m, _ := ByName("MEM1")
	counts := map[string]int{}
	for core := 0; core < 16; core++ {
		counts[m.Assignment(core)]++
	}
	for _, a := range m.Apps {
		if counts[a] != 4 {
			t.Errorf("app %s on %d cores, want 4", a, counts[a])
		}
	}
	// 8-core machines get two instances of each.
	counts = map[string]int{}
	for core := 0; core < 8; core++ {
		counts[m.Assignment(core)]++
	}
	for _, a := range m.Apps {
		if counts[a] != 2 {
			t.Errorf("8-core: app %s on %d cores, want 2", a, counts[a])
		}
	}
}

func TestStreamsDeterministicAcrossCalls(t *testing.T) {
	cfg := config.Default()
	m, _ := ByName("MID2")
	s1, err := m.Streams(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := m.Streams(&cfg)
	for core := range s1 {
		for i := 0; i < 50; i++ {
			if s1[core].Next() != s2[core].Next() {
				t.Fatalf("core %d stream not reproducible", core)
			}
		}
	}
	// Different cores running the same app must differ.
	m3, _ := ByName("MEM1")
	s3, _ := m3.Streams(&cfg)
	a, b := s3[0], s3[4] // both run "swim"
	if a.Name() != b.Name() {
		t.Fatal("cores 0 and 4 should run the same app")
	}
	same := 0
	for i := 0; i < 50; i++ {
		if a.Next().Line == b.Next().Line {
			same++
		}
	}
	if same > 5 {
		t.Errorf("replicated app instances too correlated: %d/50 identical lines", same)
	}
}

func TestApsiHasPhaseChange(t *testing.T) {
	p, err := App("apsi")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Phases) != 2 {
		t.Fatalf("apsi has %d phases, want 2", len(p.Phases))
	}
	if p.Phases[1].MPKI <= 5*p.Phases[0].MPKI {
		t.Error("apsi phase 2 must be much more memory intensive")
	}
}

func TestUniqueApps(t *testing.T) {
	m, _ := ByName("ILP1")
	got := m.UniqueApps()
	if len(got) != 4 {
		t.Errorf("ILP1 unique apps = %v", got)
	}
}
