package runner

import (
	"context"
	"errors"
	"sync"
	"testing"

	"memscale/internal/config"
	"memscale/internal/policies"
	"memscale/internal/workload"
)

// smallJob keeps runner tests fast: 4 cores, 2 channels, one quantum.
func smallJob(t testing.TB, mixName string, spec policies.Spec) Job {
	t.Helper()
	mix, err := workload.ByName(mixName)
	if err != nil {
		t.Fatal(err)
	}
	return Job{Mix: mix, Spec: spec, Epochs: 1, Cores: 4, Channels: 2}
}

func TestBaselineExecutesExactlyOncePerConfig(t *testing.T) {
	// 3 policies x 2 mixes = 6 jobs sharing 2 distinct baselines.
	specs := []policies.Spec{policies.FastPD, policies.SlowPD, policies.StaticBest}
	var jobs []Job
	for _, spec := range specs {
		for _, mixName := range []string{"ILP2", "MID1"} {
			jobs = append(jobs, smallJob(t, mixName, spec))
		}
	}
	eng := New(Options{Workers: 4})
	outs, err := eng.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(jobs) {
		t.Fatalf("%d outcomes for %d jobs", len(outs), len(jobs))
	}
	hits, misses := eng.Cache().Stats()
	if misses != 2 {
		t.Errorf("baseline simulated %d times, want exactly 2 (one per distinct config)", misses)
	}
	if hits != len(jobs)-2 {
		t.Errorf("cache hits = %d, want %d", hits, len(jobs)-2)
	}
}

func TestGammaSweepSharesOneBaseline(t *testing.T) {
	// The baseline runs no governor, so gamma must not split the key.
	mix, err := workload.ByName("ILP2")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	for _, gamma := range []float64{0.01, 0.05, 0.10} {
		jobs = append(jobs, Job{
			Mix: mix, Spec: policies.FastPD,
			Epochs: 1, Gamma: gamma, Cores: 4, Channels: 2,
		})
	}
	eng := New(Options{Workers: 2})
	if _, err := eng.RunAll(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if _, misses := eng.Cache().Stats(); misses != 1 {
		t.Errorf("gamma sweep simulated %d baselines, want 1", misses)
	}
}

func TestRunEachOrderingAndProgress(t *testing.T) {
	mixNames := []string{"ILP2", "MID1", "ILP3", "MID4"}
	var jobs []Job
	for _, name := range mixNames {
		jobs = append(jobs, smallJob(t, name, policies.FastPD))
	}
	var mu sync.Mutex
	var dones []int
	eng := New(Options{Workers: 4, OnResult: func(pr Progress) {
		mu.Lock()
		defer mu.Unlock()
		dones = append(dones, pr.Done)
		if pr.Total != len(jobs) {
			t.Errorf("progress total = %d, want %d", pr.Total, len(jobs))
		}
		if pr.Err == nil && pr.Outcome.Mix.Name != jobs[pr.Index].Mix.Name {
			t.Errorf("progress index %d carries outcome for %s", pr.Index, pr.Outcome.Mix.Name)
		}
	}})
	outs, errs := eng.RunEach(context.Background(), jobs)
	for i, out := range outs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if out.Mix.Name != mixNames[i] {
			t.Errorf("outs[%d] = %s, want %s (submission-order results)", i, out.Mix.Name, mixNames[i])
		}
	}
	if len(dones) != len(jobs) {
		t.Fatalf("%d progress callbacks for %d jobs", len(dones), len(jobs))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Errorf("progress Done sequence %v not monotonically complete", dones)
			break
		}
	}
}

func TestRunEachCollectsPerJobErrors(t *testing.T) {
	good := smallJob(t, "ILP2", policies.FastPD)
	bad := good
	bad.Epochs = 0 // rejected by the engine
	outs, errs := New(Options{Workers: 2}).RunEach(context.Background(), []Job{good, bad, good})
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("good jobs failed: %v, %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Error("bad job must error")
	}
	if outs[0].Res.Duration <= 0 || outs[2].Res.Duration <= 0 {
		t.Error("good jobs must still produce outcomes")
	}
}

func TestRunAllCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []Job{smallJob(t, "ILP2", policies.FastPD), smallJob(t, "MID1", policies.FastPD)}
	_, err := New(Options{Workers: 2}).RunAll(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestOutcomeMetricGuards(t *testing.T) {
	mix, err := workload.ByName("MID1")
	if err != nil {
		t.Fatal(err)
	}
	// Zero-energy, zero-CPI baseline must not produce NaN/Inf.
	var out Outcome
	out.Mix = mix
	out.Res.CPI = []float64{1, 1, 1, 1}
	out.Base.CPI = []float64{0, 0, 0, 0}
	if got := out.MemorySavings(); got != 0 {
		t.Errorf("MemorySavings with zero baseline = %g, want 0", got)
	}
	if got := out.SystemSavings(); got != 0 {
		t.Errorf("SystemSavings with zero baseline = %g, want 0", got)
	}
	avg, worst := out.CPIIncrease()
	if avg != 0 || worst != 0 {
		t.Errorf("CPIIncrease with zero baseline = %g/%g, want 0/0", avg, worst)
	}
}

func TestMutateAffectsBothRunsAndKey(t *testing.T) {
	mix, err := workload.ByName("ILP2")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(channels int) Job {
		return Job{
			Mix: mix, Spec: policies.FastPD, Epochs: 1, Cores: 4,
			Mutate: func(c *config.Config) { c.Channels = channels },
		}
	}
	eng := New(Options{Workers: 2})
	outs, err := eng.RunAll(context.Background(), []Job{mk(2), mk(1), mk(2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := eng.Cache().Stats(); misses != 2 {
		t.Errorf("distinct mutations share %d baselines, want 2", misses)
	}
	if outs[0].Base.Memory.Memory() == outs[1].Base.Memory.Memory() {
		t.Error("different channel counts must produce different baselines")
	}
}
