package workload

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"memscale/internal/config"
	"memscale/internal/trace"
)

// Sentinel errors for name lookups. Lookup failures wrap these with
// %w, so callers can match with errors.Is regardless of the message
// detail. The public memscale package re-exports them.
var (
	// ErrUnknownMix reports a mix name outside Table 1.
	ErrUnknownMix = errors.New("unknown workload mix")

	// ErrUnknownApp reports an application name outside the profiled
	// SPEC set.
	ErrUnknownApp = errors.New("unknown application")
)

// Class partitions the Table 1 mixes by memory intensity.
type Class int

// Workload classes (Table 1).
const (
	ClassILP Class = iota // computation-intensive
	ClassMID              // balanced
	ClassMEM              // memory-intensive
)

// String names the class as the paper does.
func (c Class) String() string {
	switch c {
	case ClassILP:
		return "ILP"
	case ClassMID:
		return "MID"
	case ClassMEM:
		return "MEM"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Mix is one Table 1 multiprogrammed workload: four applications, each
// replicated across a quarter of the cores.
type Mix struct {
	Name  string
	Class Class
	Apps  [4]string

	// PaperRPKI and PaperWPKI are the Table 1 reference values, kept
	// so the Table 1 experiment can print paper-vs-generated.
	PaperRPKI float64
	PaperWPKI float64

	// Partitioned selects OS page placement that confines each
	// application to its own memory channel (PartitionedStreams instead
	// of Streams). Partitioned variants are named "<base>/part" and
	// resolvable through ByName, so the name alone round-trips the
	// placement through caches and checkpoints.
	Partitioned bool

	// Interleave, when K > 1, selects OS page placement that stripes
	// each application across a K-channel group (InterleavedStreams):
	// application i owns channels [g*K, g*K+K) with g = i mod
	// (Channels/K). The accesses interleave freely inside the group —
	// no stream is channel-confined — yet the groups never share a
	// channel, so the sharded engine's confinement-group analysis
	// (DESIGN.md §4l) still parallelizes the mix. Variants are named
	// "<base>/ilv<K>" and resolvable through ByName.
	Interleave int
}

// PartitionedSuffix distinguishes the channel-partitioned variant of a
// mix in its name.
const PartitionedSuffix = "/part"

// InterleavePrefix introduces the group width in an interleaved
// variant's name: "<base>/ilv<K>".
const InterleavePrefix = "/ilv"

// Partition returns the channel-partitioned variant of the mix: same
// applications and traces, page placement confining application i to
// channel i mod Channels. Partitioning an already partitioned mix is a
// no-op.
func (m Mix) Partition() Mix {
	if m.Partitioned {
		return m
	}
	m.Partitioned = true
	m.Name += PartitionedSuffix
	return m
}

// Interleaved returns the K-channel group-interleaved variant of the
// mix: same applications and traces, page placement striping each
// application across its own K-wide channel group. K must be at least
// 2 (K = 1 is Partition). Interleaving an already placed mix is
// rejected at stream instantiation.
func (m Mix) Interleaved(k int) Mix {
	if m.Interleave == k {
		return m
	}
	m.Name = strings.TrimSuffix(m.Name, PartitionedSuffix)
	if m.Interleave > 1 {
		m.Name = strings.TrimSuffix(m.Name, fmt.Sprintf("%s%d", InterleavePrefix, m.Interleave))
	}
	m.Partitioned = false
	m.Interleave = k
	m.Name += fmt.Sprintf("%s%d", InterleavePrefix, k)
	return m
}

// Mixes is Table 1 in program form.
var Mixes = []Mix{
	{"ILP1", ClassILP, [4]string{"vortex", "gcc", "sixtrack", "mesa"}, 0.37, 0.06, false, 0},
	{"ILP2", ClassILP, [4]string{"perlbmk", "crafty", "gzip", "eon"}, 0.16, 0.01, false, 0},
	{"ILP3", ClassILP, [4]string{"sixtrack", "mesa", "perlbmk", "crafty"}, 0.27, 0.01, false, 0},
	{"ILP4", ClassILP, [4]string{"vortex", "mesa", "perlbmk", "crafty"}, 0.24, 0.06, false, 0},
	{"MID1", ClassMID, [4]string{"ammp", "gap", "wupwise", "vpr"}, 1.72, 0.01, false, 0},
	{"MID2", ClassMID, [4]string{"astar", "parser", "twolf", "facerec"}, 2.61, 0.09, false, 0},
	{"MID3", ClassMID, [4]string{"apsi", "bzip2", "ammp", "gap"}, 2.41, 0.16, false, 0},
	{"MID4", ClassMID, [4]string{"wupwise", "vpr", "astar", "parser"}, 2.11, 0.07, false, 0},
	{"MEM1", ClassMEM, [4]string{"swim", "applu", "art", "lucas"}, 17.03, 3.03, false, 0},
	{"MEM2", ClassMEM, [4]string{"fma3d", "mgrid", "galgel", "equake"}, 8.62, 0.25, false, 0},
	{"MEM3", ClassMEM, [4]string{"swim", "applu", "galgel", "equake"}, 15.6, 3.71, false, 0},
	{"MEM4", ClassMEM, [4]string{"art", "lucas", "mgrid", "fma3d"}, 8.96, 0.33, false, 0},
}

// ByName returns the named mix. A "<base>/part" name resolves to the
// channel-partitioned variant of the base mix, a "<base>/ilv<K>" name
// to the K-channel group-interleaved variant.
func ByName(name string) (Mix, error) {
	if base, ok := strings.CutSuffix(name, PartitionedSuffix); ok {
		m, err := ByName(base)
		if err != nil {
			return Mix{}, err
		}
		return m.Partition(), nil
	}
	if i := strings.LastIndex(name, InterleavePrefix); i >= 0 {
		k, err := strconv.Atoi(name[i+len(InterleavePrefix):])
		if err != nil || k < 2 {
			return Mix{}, fmt.Errorf("workload: %w %q (interleave width must be an integer >= 2)", ErrUnknownMix, name)
		}
		m, err := ByName(name[:i])
		if err != nil {
			return Mix{}, err
		}
		return m.Interleaved(k), nil
	}
	for _, m := range Mixes {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: %w %q", ErrUnknownMix, name)
}

// Names returns the names of all mixes in Table 1 order.
func Names() []string {
	names := make([]string, len(Mixes))
	for i, m := range Mixes {
		names[i] = m.Name
	}
	return names
}

// ByClass returns the mixes of one class, in Table 1 order.
func ByClass(c Class) []Mix {
	var out []Mix
	for _, m := range Mixes {
		if m.Class == c {
			out = append(out, m)
		}
	}
	return out
}

// Assignment reports which application runs on a given core for a mix:
// cores are striped so core i runs Apps[i % 4], giving every
// application cores on every quarter of the machine and matching the
// paper's "x4 each" replication on 16 cores (or x2 on 8 cores).
func (m Mix) Assignment(core int) string { return m.Apps[core%len(m.Apps)] }

// Streams instantiates the per-core access streams for this mix on a
// machine with the given number of cores. Each (mix, app, core) tuple
// gets a stable seed so runs are reproducible and policies see
// identical traces.
func (m Mix) Streams(cfg *config.Config) ([]*trace.Stream, error) {
	if m.Partitioned {
		return m.PartitionedStreams(cfg)
	}
	if m.Interleave > 1 {
		return m.InterleavedStreams(cfg)
	}
	mapper := config.NewAddressMapper(cfg)
	streams := make([]*trace.Stream, cfg.Cores)
	for core := 0; core < cfg.Cores; core++ {
		name := m.Assignment(core)
		p, err := App(name)
		if err != nil {
			return nil, fmt.Errorf("mix %s: %w", m.Name, err)
		}
		s, err := trace.NewStream(p, mapper, trace.Seed(m.Name, name, core))
		if err != nil {
			return nil, fmt.Errorf("mix %s core %d: %w", m.Name, core, err)
		}
		streams[core] = s
	}
	return streams, nil
}

// Table1Instructions is the per-application trace length of the paper
// (the best 100M-instruction SimPoint), over which the Table 1
// RPKI/WPKI values are measured.
const Table1Instructions = 100_000_000

// appRateOver integrates an application's phase-dependent rate (per
// kilo-instruction) over a run of the given instruction count.
func appRateOver(p trace.Profile, instructions uint64, rate func(trace.Phase) float64) float64 {
	var done uint64
	var weighted float64
	for i, ph := range p.Phases {
		n := ph.Instructions
		if i == len(p.Phases)-1 || done+n > instructions {
			n = instructions - done
		}
		weighted += float64(n) * rate(ph)
		done += n
		if done >= instructions {
			break
		}
	}
	return weighted / float64(instructions)
}

// PartitionedStreams instantiates the mix with OS page placement that
// confines each application to its own memory channel (application i
// of the mix maps to channel i mod Channels). This is the workload
// shape for the paper's Section 6 future work: with heterogeneous
// per-channel load, per-channel frequency selection has room that
// uniform scaling does not.
func (m Mix) PartitionedStreams(cfg *config.Config) ([]*trace.Stream, error) {
	mapper := config.NewAddressMapper(cfg)
	// Seed from the base name so a mix and its Partition() variant draw
	// identical traces — placement, not content, is what differs.
	base := strings.TrimSuffix(m.Name, PartitionedSuffix)
	streams := make([]*trace.Stream, cfg.Cores)
	for core := 0; core < cfg.Cores; core++ {
		appIdx := core % len(m.Apps)
		name := m.Apps[appIdx]
		p, err := App(name)
		if err != nil {
			return nil, fmt.Errorf("mix %s: %w", m.Name, err)
		}
		channels := []int{appIdx % cfg.Channels}
		s, err := trace.NewStreamOnChannels(p, mapper, trace.Seed(base, "part", name, core), channels)
		if err != nil {
			return nil, fmt.Errorf("mix %s core %d: %w", m.Name, core, err)
		}
		streams[core] = s
	}
	return streams, nil
}

// InterleavedStreams instantiates the mix with OS page placement that
// stripes each application across its own K-wide channel group:
// application i of the mix owns channels [g*K, g*K+K) with
// g = i mod (Channels/K), and its accesses interleave freely across
// all K. No stream is channel-confined (the /part precondition), yet
// the groups partition the channels, so the confinement-group shard
// analysis still splits the run into Channels/K parallel shards. The
// channel count must be a multiple of K.
func (m Mix) InterleavedStreams(cfg *config.Config) ([]*trace.Stream, error) {
	k := m.Interleave
	if k < 2 {
		return nil, fmt.Errorf("mix %s: interleave width %d must be >= 2", m.Name, k)
	}
	if cfg.Channels%k != 0 {
		return nil, fmt.Errorf("mix %s: %d channels not divisible by interleave width %d", m.Name, cfg.Channels, k)
	}
	groups := cfg.Channels / k
	mapper := config.NewAddressMapper(cfg)
	// Seed from the base name with an "ilv"/K namespace so the variant
	// draws its own trace realization, distinct from /part's.
	base := strings.TrimSuffix(m.Name, fmt.Sprintf("%s%d", InterleavePrefix, k))
	streams := make([]*trace.Stream, cfg.Cores)
	for core := 0; core < cfg.Cores; core++ {
		appIdx := core % len(m.Apps)
		name := m.Apps[appIdx]
		p, err := App(name)
		if err != nil {
			return nil, fmt.Errorf("mix %s: %w", m.Name, err)
		}
		g := appIdx % groups
		channels := make([]int, k)
		for j := range channels {
			channels[j] = g*k + j
		}
		s, err := trace.NewStreamOnChannels(p, mapper, trace.Seed(base, "ilv", k, name, core), channels)
		if err != nil {
			return nil, fmt.Errorf("mix %s core %d: %w", m.Name, core, err)
		}
		streams[core] = s
	}
	return streams, nil
}

// ExpectedRPKI returns the mix's aggregate read-miss rate over the
// Table 1 measurement window (equal instruction counts per core,
// phase-weighted), for comparison with the paper's RPKI column.
func (m Mix) ExpectedRPKI() float64 { return m.ExpectedRPKIOver(Table1Instructions) }

// ExpectedRPKIOver returns the aggregate read-miss rate when each core
// retires the given number of instructions.
func (m Mix) ExpectedRPKIOver(instructions uint64) float64 {
	var sum float64
	for _, name := range m.Apps {
		sum += appRateOver(apps[name], instructions, func(ph trace.Phase) float64 { return ph.MPKI })
	}
	return sum / float64(len(m.Apps))
}

// ExpectedWPKI returns the corresponding writeback rate over the
// Table 1 window.
func (m Mix) ExpectedWPKI() float64 {
	var sum float64
	for _, name := range m.Apps {
		sum += appRateOver(apps[name], Table1Instructions, func(ph trace.Phase) float64 { return ph.WPKI })
	}
	return sum / float64(len(m.Apps))
}

// UniqueApps returns the distinct application names of the mix, sorted.
func (m Mix) UniqueApps() []string {
	set := map[string]bool{}
	for _, a := range m.Apps {
		set[a] = true
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
