package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// Sink receives batches of drained events. The recorder calls Emit
// from the simulation goroutine whenever its ring fills, and once more
// at export time with the remainder; a sink therefore sees every event
// exactly once, in order. Implementations need not be concurrency-safe
// unless one sink instance is shared across runs.
type Sink interface {
	Emit(events []Event) error
}

// MemorySink retains every event in memory — the test sink.
type MemorySink struct {
	Events []Event
}

// Emit implements Sink.
func (m *MemorySink) Emit(events []Event) error {
	m.Events = append(m.Events, events...)
	return nil
}

// CSVSink streams events as CSV rows. The header is written before the
// first event.
type CSVSink struct {
	W      io.Writer
	wroteH bool
}

// EventCSVHeader is the column layout of CSVSink rows.
const EventCSVHeader = "kind,t_ps,epoch,channel,rank,core,a,b,c,f1,f2"

// Emit implements Sink.
func (s *CSVSink) Emit(events []Event) error {
	if !s.wroteH {
		if _, err := fmt.Fprintln(s.W, EventCSVHeader); err != nil {
			return err
		}
		s.wroteH = true
	}
	for _, ev := range events {
		_, err := fmt.Fprintf(s.W, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%g,%g\n",
			ev.Kind, int64(ev.Time), ev.Epoch, ev.Channel, ev.Rank, ev.Core,
			ev.A, ev.B, ev.C, ev.F1, ev.F2)
		if err != nil {
			return err
		}
	}
	return nil
}

// JSONLSink streams events as one JSON object per line.
type JSONLSink struct {
	W io.Writer
}

// Emit implements Sink.
func (s *JSONLSink) Emit(events []Event) error {
	enc := json.NewEncoder(s.W)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
