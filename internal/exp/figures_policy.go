package exp

import (
	"memscale/internal/policies"
	"memscale/internal/runner"
	"memscale/internal/stats"
	"memscale/internal/workload"
)

// PolicyComparison runs every Section 4.2.3 scheme on the MID mixes
// and returns the outcomes grouped by scheme, in presentation order.
// Figures 9, 10, and 11 all render from this one grid. The whole
// scheme x mix grid executes concurrently on the sweep engine; all
// schemes share the four memoized MID baselines.
func (p Params) PolicyComparison() (map[string][]Outcome, []string, error) {
	specs := policies.Alternatives()
	// Swap in the harness-configured MemScale variants so gamma
	// propagates.
	for i, s := range specs {
		if s.Name == policies.MemScale.Name {
			specs[i] = p.memScaleSpec()
		}
	}
	mixes := workload.ByClass(workload.ClassMID)
	names := make([]string, len(specs))
	jobs := make([]runner.Job, 0, len(specs)*len(mixes))
	for i, spec := range specs {
		names[i] = spec.Name
		for _, mix := range mixes {
			jobs = append(jobs, p.job(nil, mix, spec))
		}
	}
	outs, err := p.runGrid(jobs)
	if err != nil {
		return nil, nil, err
	}
	grid := map[string][]Outcome{}
	for i, spec := range specs {
		grid[spec.Name] = outs[i*len(mixes) : (i+1)*len(mixes)]
	}
	return grid, names, nil
}

// Figure9 reports average energy savings per scheme over the MID
// mixes.
func Figure9(grid map[string][]Outcome, names []string) Report {
	t := stats.Table{
		Title:   "Figure 9: energy savings by policy (MID workload average)",
		Columns: []string{"Policy", "Full System Energy", "Memory System Energy"},
	}
	for _, name := range names {
		var sys, mem stats.Series
		for _, out := range grid[name] {
			sys.Add(out.SystemSavings())
			mem.Add(out.MemorySavings())
		}
		t.AddRow(name, stats.Pct(sys.Mean()), stats.Pct(mem.Mean()))
	}
	return Report{ID: "figure9", Title: "Policy energy savings", Table: t}
}

// Figure10 reports the system energy breakdown per scheme, normalized
// to the baseline system's energy.
func Figure10(grid map[string][]Outcome, names []string) Report {
	t := stats.Table{
		Title:   "Figure 10: system energy breakdown by policy (normalized to baseline)",
		Columns: []string{"Policy", "DRAM", "PLL/Reg", "MC", "Rest of system", "Total"},
	}
	addRow := func(name string, outs []Outcome, useBase bool) {
		var dram, pll, mc, rest stats.Series
		for _, out := range outs {
			baseTotal := out.SystemEnergy(out.Base)
			r := out.Res
			if useBase {
				r = out.Base
			}
			dram.Add(r.Memory.DRAM() / baseTotal)
			pll.Add(r.Memory.PLLReg / baseTotal)
			mc.Add(r.Memory.MC / baseTotal)
			rest.Add(out.NonMem * r.Duration.Seconds() / baseTotal)
		}
		total := dram.Mean() + pll.Mean() + mc.Mean() + rest.Mean()
		t.AddRow(name, stats.F3(dram.Mean()), stats.F3(pll.Mean()),
			stats.F3(mc.Mean()), stats.F3(rest.Mean()), stats.F3(total))
	}
	if len(names) > 0 {
		addRow("Baseline", grid[names[0]], true)
	}
	for _, name := range names {
		addRow(name, grid[name], false)
	}
	return Report{ID: "figure10", Title: "Energy breakdown by policy", Table: t}
}

// Figure11 reports CPI overheads per scheme over the MID mixes.
func Figure11(grid map[string][]Outcome, names []string) Report {
	t := stats.Table{
		Title:   "Figure 11: CPI overhead by policy (MID workloads)",
		Columns: []string{"Policy", "Multiprogram Average", "Worst Program in Mix"},
	}
	for _, name := range names {
		var avg stats.Series
		worst := 0.0
		for _, out := range grid[name] {
			a, w := out.CPIIncrease()
			avg.Add(a)
			if w > worst {
				worst = w
			}
		}
		t.AddRow(name, stats.Pct(avg.Mean()), stats.Pct(worst))
	}
	return Report{ID: "figure11", Title: "CPI overhead by policy", Table: t}
}

// Figures9To11 runs the policy-comparison grid and renders all three
// figures from it.
func (p Params) Figures9To11() ([]Report, error) {
	grid, names, err := p.PolicyComparison()
	if err != nil {
		return nil, err
	}
	return []Report{Figure9(grid, names), Figure10(grid, names), Figure11(grid, names)}, nil
}
