package telemetry

// Typed collectors: counters, gauges, and fixed-bucket histograms.
// They are deliberately plain structs with value-receiver snapshots —
// a run's recorder is confined to the single goroutine driving its
// simulation, so no collector needs atomics or locks. Cross-run
// aggregation happens after the runs complete (see Rollup).

// Counter is a monotonically increasing event count.
type Counter struct {
	Name string
	N    uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.N += n }

// Gauge is a last-value-wins instantaneous measurement.
type Gauge struct {
	Name string
	V    float64
	Set_ bool
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) { g.V, g.Set_ = v, true }

// Histogram is a fixed-bucket histogram. Bounds are upper bucket
// boundaries (inclusive); one implicit overflow bucket catches values
// above the last bound, so len(Counts) == len(Bounds)+1. Bounds are
// fixed at construction: merging two histograms of the same name is a
// plain element-wise count addition.
type Histogram struct {
	Name   string
	Unit   string // display unit of observed values ("ns", "us", ...)
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
	Min    float64
	Max    float64
}

// NewHistogram builds a histogram over the given upper bounds, which
// must be sorted ascending.
func NewHistogram(name, unit string, bounds []float64) *Histogram {
	return &Histogram{
		Name:   name,
		Unit:   unit,
		Bounds: bounds,
		Counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if h.Count == 0 || v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	for i, b := range h.Bounds {
		if v <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// Mean returns the average observed value.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0..1):
// the bound of the bucket where the cumulative count crosses q. The
// overflow bucket reports the observed maximum.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// Merge adds o's counts into h. Histograms merge only when their
// bucket layout matches; mismatched layouts report false and leave h
// unchanged.
func (h *Histogram) Merge(o *Histogram) bool {
	if len(h.Bounds) != len(o.Bounds) {
		return false
	}
	for i := range h.Bounds {
		if h.Bounds[i] != o.Bounds[i] {
			return false
		}
	}
	if o.Count > 0 {
		if h.Count == 0 || o.Min < h.Min {
			h.Min = o.Min
		}
		if h.Count == 0 || o.Max > h.Max {
			h.Max = o.Max
		}
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
	return true
}

// Reset zeroes the histogram's observations, keeping its layout. Used
// by the per-channel staging replicas after a window-edge merge.
func (h *Histogram) Reset() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	h.Count, h.Sum, h.Min, h.Max = 0, 0, 0, 0
}

// Clone returns a deep copy of h.
func (h *Histogram) Clone() *Histogram {
	out := *h
	out.Bounds = append([]float64(nil), h.Bounds...)
	out.Counts = append([]uint64(nil), h.Counts...)
	return &out
}

// Standard bucket layouts. Fixed layouts keep per-observation cost at
// a short linear scan and make cross-run merges exact.
var (
	// ReadLatencyBoundsNs covers DDR3 access latencies from an open-row
	// hit (~30 ns) through deep queueing (~µs).
	ReadLatencyBoundsNs = []float64{50, 75, 100, 150, 200, 300, 500, 750, 1000, 2000, 5000}

	// QueueDepthBounds covers the controller's outstanding-request
	// count at request arrival.
	QueueDepthBounds = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}

	// EpochHostBoundsUs covers the host wall-clock cost of simulating
	// one 5 ms OS quantum.
	EpochHostBoundsUs = []float64{100, 300, 1000, 3000, 10000, 30000, 100000, 300000, 1e6}
)
