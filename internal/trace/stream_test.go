package trace

import (
	"math"
	"testing"
	"testing/quick"

	"memscale/internal/config"
)

func testMapper() *config.AddressMapper {
	c := config.Default()
	return config.NewAddressMapper(&c)
}

// mustStream builds a stream from a profile the test knows is valid.
func mustStream(tb testing.TB, p Profile, m *config.AddressMapper, seed uint64) *Stream {
	tb.Helper()
	s, err := NewStream(p, m, seed)
	if err != nil {
		tb.Fatalf("NewStream(%q): %v", p.Name, err)
	}
	return s
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give identical sequences")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds too correlated: %d collisions", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(9)
	seen := make([]bool, 10)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("value %d never drawn", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const mean = 100.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Errorf("Exp mean = %.2f, want ~%.0f", got, mean)
	}
}

func TestSeedStability(t *testing.T) {
	a := Seed("MID3", "apsi", 4)
	b := Seed("MID3", "apsi", 4)
	if a != b {
		t.Error("Seed must be deterministic")
	}
	if Seed("MID3", "apsi", 4) == Seed("MID3", "apsi", 5) {
		t.Error("different cores must get different seeds")
	}
	if Seed("a", "bc") == Seed("ab", "c") {
		t.Error("string concatenation must not collide")
	}
	defer func() {
		if recover() == nil {
			t.Error("Seed with unsupported type must panic")
		}
	}()
	Seed(3.14)
}

func validProfile() Profile {
	return Profile{
		Name: "test",
		Phases: []Phase{
			{BaseCPI: 1.0, MPKI: 2.0, WPKI: 0.5, RowLocality: 0.5},
		},
	}
}

func TestProfileValidate(t *testing.T) {
	if err := validProfile().Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	bad := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.Phases = nil },
		func(p *Profile) { p.Phases[0].BaseCPI = 0 },
		func(p *Profile) { p.Phases[0].MPKI = 0 },
		func(p *Profile) { p.Phases[0].WPKI = -1 },
		func(p *Profile) { p.Phases[0].WPKI = 99 },
		func(p *Profile) { p.Phases[0].RowLocality = 1.0 },
		func(p *Profile) { p.Phases[0].HotRows = -1 },
		func(p *Profile) {
			p.Phases = []Phase{
				{BaseCPI: 1, MPKI: 1}, // non-final with zero length
				{BaseCPI: 1, MPKI: 1},
			}
		},
	}
	for i, mutate := range bad {
		p := validProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestStreamDeterminism(t *testing.T) {
	m := testMapper()
	p := validProfile()
	a := mustStream(t, p, m, 123)
	b := mustStream(t, p, m, 123)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("streams with identical seeds diverged")
		}
	}
}

func TestStreamMPKICalibration(t *testing.T) {
	m := testMapper()
	for _, mpki := range []float64{0.2, 2.5, 17.0} {
		p := Profile{Name: "cal", Phases: []Phase{
			{BaseCPI: 1, MPKI: mpki, WPKI: mpki / 4, RowLocality: 0.3},
		}}
		s := mustStream(t, p, m, 99)
		const n = 50000
		for i := 0; i < n; i++ {
			s.Next()
		}
		instr, reads, wbs := s.Stats()
		gotMPKI := float64(reads) / float64(instr) * 1000
		if math.Abs(gotMPKI-mpki)/mpki > 0.05 {
			t.Errorf("MPKI %.2f: generated %.3f (%.1f%% off)", mpki, gotMPKI,
				100*math.Abs(gotMPKI-mpki)/mpki)
		}
		gotWPKI := float64(wbs) / float64(instr) * 1000
		if math.Abs(gotWPKI-mpki/4)/(mpki/4) > 0.10 {
			t.Errorf("WPKI: generated %.3f, want %.3f", gotWPKI, mpki/4)
		}
	}
}

func TestStreamPhaseTransition(t *testing.T) {
	m := testMapper()
	p := Profile{Name: "phased", Phases: []Phase{
		{Instructions: 100000, BaseCPI: 1, MPKI: 1, RowLocality: 0},
		{BaseCPI: 5, MPKI: 20, RowLocality: 0},
	}}
	s := mustStream(t, p, m, 5)
	var instrPhase0 uint64
	for s.PhaseIndex() == 0 {
		a := s.Next()
		if s.PhaseIndex() == 0 {
			instrPhase0 += a.Gap
			if a.BaseCPI != 1 {
				t.Fatal("phase 0 access with wrong BaseCPI")
			}
		}
	}
	if instrPhase0 > 100000 {
		t.Errorf("phase 0 ran %d instructions, want <= 100000", instrPhase0)
	}
	// After the boundary, accesses must carry phase-1 parameters.
	a := s.Next()
	if a.BaseCPI != 5 {
		t.Errorf("phase 1 BaseCPI = %g, want 5", a.BaseCPI)
	}
	// Phase-1 miss rate must be much higher: compare mean gaps.
	var gapSum uint64
	const n = 2000
	for i := 0; i < n; i++ {
		gapSum += s.Next().Gap
	}
	meanGap := float64(gapSum) / n
	if meanGap > 70 { // 1000/20 = 50 expected
		t.Errorf("phase 1 mean gap = %.1f, want ~50", meanGap)
	}
}

func TestStreamAddressesInRange(t *testing.T) {
	m := testMapper()
	p := Profile{Name: "addr", Phases: []Phase{
		{BaseCPI: 1, MPKI: 10, WPKI: 5, RowLocality: 0.8, HotRows: 16},
	}}
	s := mustStream(t, p, m, 77)
	f := func(_ uint8) bool {
		a := s.Next()
		loc := m.Map(a.Line)
		if loc.Row >= 16 {
			return false
		}
		if a.Writeback {
			if wl := m.Map(a.WBLine); wl.Row >= 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Errorf("footprint violated: %v", err)
	}
}

func TestStreamRowLocality(t *testing.T) {
	m := testMapper()
	p := Profile{Name: "loc", Phases: []Phase{
		{BaseCPI: 1, MPKI: 10, RowLocality: 0.9, HotRows: 64},
	}}
	s := mustStream(t, p, m, 3)
	sameRow := 0
	prev := m.Map(s.Next().Line)
	const n = 5000
	for i := 0; i < n; i++ {
		cur := m.Map(s.Next().Line)
		if cur.Channel == prev.Channel && cur.Rank == prev.Rank &&
			cur.Bank == prev.Bank && cur.Row == prev.Row {
			sameRow++
		}
		prev = cur
	}
	// With locality 0.9 and 128-line rows, most consecutive accesses
	// share a row (the stream wraps rows occasionally).
	if frac := float64(sameRow) / n; frac < 0.75 {
		t.Errorf("same-row fraction = %.2f, want > 0.75", frac)
	}
}

func TestStreamZeroLocalityJumps(t *testing.T) {
	m := testMapper()
	p := Profile{Name: "jump", Phases: []Phase{
		{BaseCPI: 1, MPKI: 10, RowLocality: 0},
	}}
	s := mustStream(t, p, m, 8)
	channels := map[int]int{}
	for i := 0; i < 2000; i++ {
		channels[m.Map(s.Next().Line).Channel]++
	}
	if len(channels) != 4 {
		t.Errorf("random jumps hit %d channels, want 4", len(channels))
	}
	for ch, n := range channels {
		if n < 300 {
			t.Errorf("channel %d only got %d of 2000 accesses", ch, n)
		}
	}
}

func TestNewStreamRejectsInvalid(t *testing.T) {
	m := testMapper()
	p := validProfile()
	p.Phases[0].MPKI = 0
	if _, err := NewStream(p, m, 1); err == nil {
		t.Error("NewStream must reject invalid profiles")
	}
	p.Phases[0].MPKI = math.NaN()
	if _, err := NewStream(p, m, 1); err == nil {
		t.Error("NewStream must reject NaN rates")
	}
}

func BenchmarkStreamNext(b *testing.B) {
	m := testMapper()
	s := mustStream(b, validProfile(), m, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}
