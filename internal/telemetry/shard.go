package telemetry

import "memscale/internal/config"

// Sharded recording (DESIGN.md §4l). The memory controller's telemetry
// is per-channel by construction: every latency sample, queue-depth
// observation, powerdown transition, refresh, and relock names exactly
// one channel. Under the sharded engine each channel is advanced by
// one shard at a time, so giving every channel its own ChannelCell —
// private staged events plus histogram/counter replicas — lets shards
// record lock-free inside conservative windows with no shared state.
//
// At every window edge (and only there — the shards sit quiescent at
// the edge) the recorder folds the cells back into the run-wide
// collectors in channel-index order: counters add, histograms merge
// element-wise, and staged events k-way merge into the ring by
// (time, channel index). Both the serial and the sharded engine route
// per-channel telemetry through the cells and merge at the same
// edges, so the merged stream — and every derived export — is
// byte-identical between the two engines: the §4k restriction theorem
// makes each channel's staged sequence identical, and the merge rule
// is a pure function of those sequences.

// ChannelCell is one channel's private telemetry staging area. All
// methods are single-goroutine per cell (the channel's owning shard);
// a nil cell no-ops, mirroring the nil-Recorder convention.
type ChannelCell struct {
	ch     int
	events bool

	staged []Event
	pos    int // merge cursor, meaningful only inside MergeChannels

	readLatencyNs *Histogram
	queueDepth    *Histogram

	freqTransitions uint64
	powerdownEnters uint64
	powerdownExits  uint64
	refreshes       uint64
}

// ChannelCells returns the recorder's n per-channel cells, creating
// them on first use. Safe on nil (returns nil, so an untelemetered
// controller holds no cells).
func (r *Recorder) ChannelCells(n int) []*ChannelCell {
	if r == nil {
		return nil
	}
	if len(r.cells) != n {
		r.cells = make([]*ChannelCell, n)
		for i := range r.cells {
			r.cells[i] = &ChannelCell{
				ch:            i,
				events:        r.opts.Events,
				readLatencyNs: NewHistogram("read_latency", "ns", ReadLatencyBoundsNs),
				queueDepth:    NewHistogram("queue_depth", "reqs", QueueDepthBounds),
			}
		}
	}
	return r.cells
}

// MergeChannels folds every channel cell into the run-wide collectors
// and the event ring. Call only at window edges, with every shard
// quiescent. Cells merge in channel-index order and staged events in
// (time, channel) order, so the result is independent of how many
// shards recorded them. Safe on nil.
func (r *Recorder) MergeChannels() {
	if r == nil || len(r.cells) == 0 {
		return
	}
	staged := false
	for _, c := range r.cells {
		r.FreqTransitions.Add(c.freqTransitions)
		r.PowerdownEnters.Add(c.powerdownEnters)
		r.PowerdownExits.Add(c.powerdownExits)
		r.Refreshes.Add(c.refreshes)
		c.freqTransitions, c.powerdownEnters, c.powerdownExits, c.refreshes = 0, 0, 0, 0
		r.ReadLatencyNs.Merge(c.readLatencyNs)
		c.readLatencyNs.Reset()
		r.QueueDepth.Merge(c.queueDepth)
		c.queueDepth.Reset()
		c.pos = 0
		staged = staged || len(c.staged) > 0
	}
	if !staged {
		return
	}
	// K-way merge of the staged streams. Each cell's stream is
	// time-nondecreasing (events fire in time order within a channel),
	// and the strict < keeps the lowest channel index on ties.
	for {
		best := -1
		for i, c := range r.cells {
			if c.pos >= len(c.staged) {
				continue
			}
			if best == -1 || c.staged[c.pos].Time < r.cells[best].staged[r.cells[best].pos].Time {
				best = i
			}
		}
		if best == -1 {
			break
		}
		c := r.cells[best]
		r.push(c.staged[c.pos])
		c.pos++
	}
	for _, c := range r.cells {
		c.staged = c.staged[:0]
		c.pos = 0
	}
}

// stage buffers one event for the window-edge merge; the event stream
// must have been enabled on the parent recorder.
func (c *ChannelCell) stage(ev Event) {
	if c.events {
		c.staged = append(c.staged, ev)
	}
}

// FreqTransition records this channel's relock.
func (c *ChannelCell) FreqTransition(t config.Time, from, to config.FreqMHz, penalty config.Time) {
	if c == nil {
		return
	}
	c.freqTransitions++
	c.stage(Event{Kind: EvFreqTransition, Time: t, Channel: c.ch, Rank: -1, Core: -1,
		A: int64(from), B: int64(to), C: int64(penalty)})
}

// PowerdownEnter records a rank on this channel dropping CKE.
func (c *ChannelCell) PowerdownEnter(t config.Time, rank int, slow bool) {
	if c == nil {
		return
	}
	c.powerdownEnters++
	var a int64
	if slow {
		a = 1
	}
	c.stage(Event{Kind: EvPowerdownEnter, Time: t, Channel: c.ch, Rank: rank, Core: -1, A: a})
}

// PowerdownExit records a rank on this channel waking to serve a
// request.
func (c *ChannelCell) PowerdownExit(t config.Time, rank int) {
	if c == nil {
		return
	}
	c.powerdownExits++
	c.stage(Event{Kind: EvPowerdownExit, Time: t, Channel: c.ch, Rank: rank, Core: -1})
}

// Refresh records a refresh on this channel spanning dur.
func (c *ChannelCell) Refresh(t config.Time, rank int, dur config.Time) {
	if c == nil {
		return
	}
	c.refreshes++
	c.stage(Event{Kind: EvRefresh, Time: t, Channel: c.ch, Rank: rank, Core: -1, C: int64(dur)})
}

// ObserveReadLatency records one read's arrival-to-data latency on
// this channel.
func (c *ChannelCell) ObserveReadLatency(d config.Time) {
	if c == nil {
		return
	}
	c.readLatencyNs.Observe(d.Nanoseconds())
}

// ObserveQueueDepth records the channel's outstanding request count
// seen by an arriving request.
func (c *ChannelCell) ObserveQueueDepth(depth int) {
	if c == nil {
		return
	}
	c.queueDepth.Observe(float64(depth))
}
