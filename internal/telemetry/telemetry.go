// Package telemetry is the simulator's metrics-and-tracing subsystem:
// typed collectors (counters, gauges, fixed-bucket histograms), a
// structured event stream behind a drop-oldest ring buffer with
// pluggable sinks, per-epoch snapshots, and per-run exports that
// aggregate into cross-run rollups.
//
// Design constraints, in order:
//
//   - Zero overhead when disabled. Every instrumented layer holds a
//     *Recorder that is nil when telemetry is off; all Recorder
//     methods are nil-receiver-safe, and hot paths additionally guard
//     with a nil check so no argument is even materialized.
//   - Zero interference. Telemetry observes the simulation and never
//     feeds back into it: an instrumented run's event sequence is
//     bit-identical to an uninstrumented one.
//   - One recorder per run, merged at window edges. The recorder's
//     run-wide collectors are single-goroutine (the sweep engine gives
//     every job its own recorder, aggregating exports only after the
//     jobs finish). Per-channel telemetry is staged in ChannelCells —
//     one per memory channel, each written by exactly one goroutine at
//     a time even under the sharded engine — and folded back into the
//     run-wide collectors deterministically at window edges
//     (MergeChannels), so sharded and serial runs export byte-identical
//     streams.
//
// The package sits below power/memctrl/sim in the import graph
// (it imports only config and dram), so every layer can emit into it.
package telemetry

import (
	"memscale/internal/config"
	"memscale/internal/dram"
)

// Options configure a Recorder.
type Options struct {
	// Events enables the structured event stream. Collectors
	// (histograms, counters, gauges) and epoch snapshots are always on
	// for an existing recorder; the event stream is the high-volume
	// part and opts in separately.
	Events bool

	// RingSize bounds the in-memory event buffer (default 4096).
	// Without a sink the ring keeps the newest events, counting
	// drops; with a sink it drains wholesale whenever it fills.
	RingSize int

	// Sink, when non-nil, receives every drained event batch.
	Sink Sink
}

// DefaultRingSize is the event-ring capacity when Options.RingSize is
// zero.
const DefaultRingSize = 4096

// Recorder collects one run's telemetry. The zero value is not usable;
// build with NewRecorder. A nil *Recorder is the disabled state: every
// method no-ops.
type Recorder struct {
	opts  Options
	epoch int

	ring    *eventRing
	sinkErr error

	// Histograms (always on).
	ReadLatencyNs *Histogram
	QueueDepth    *Histogram
	EpochHostUs   *Histogram

	// Counters (always on).
	FreqTransitions Counter
	PowerdownEnters Counter
	PowerdownExits  Counter
	Refreshes       Counter
	Decisions       Counter
	SlackUpdates    Counter
	PowerIntervals  Counter
	FaultsInjected  Counter
	DegradedEpochs  Counter
	NodesLost       Counter
	NodesRecovered  Counter

	// Gauges (set by the run harness).
	NonMemPowerW Gauge
	GammaBound   Gauge

	// Per-run rollup state fed by the power layer.
	duration  config.Time
	energy    Energy
	residency dram.Account

	// cells are the per-channel staging replicas the memory controller
	// records into; MergeChannels folds them back at window edges.
	cells []*ChannelCell

	epochs []EpochSnapshot
}

// NewRecorder builds a recorder.
func NewRecorder(opts Options) *Recorder {
	if opts.RingSize <= 0 {
		opts.RingSize = DefaultRingSize
	}
	r := &Recorder{
		opts:          opts,
		ReadLatencyNs: NewHistogram("read_latency", "ns", ReadLatencyBoundsNs),
		QueueDepth:    NewHistogram("queue_depth", "reqs", QueueDepthBounds),
		EpochHostUs:   NewHistogram("epoch_host", "us", EpochHostBoundsUs),
	}
	r.FreqTransitions.Name = "freq_transitions"
	r.PowerdownEnters.Name = "powerdown_enters"
	r.PowerdownExits.Name = "powerdown_exits"
	r.Refreshes.Name = "refreshes"
	r.Decisions.Name = "decisions"
	r.SlackUpdates.Name = "slack_updates"
	r.PowerIntervals.Name = "power_intervals"
	r.FaultsInjected.Name = "faults_injected"
	r.DegradedEpochs.Name = "degraded_epochs"
	r.NodesLost.Name = "nodes_lost"
	r.NodesRecovered.Name = "nodes_recovered"
	r.NonMemPowerW.Name = "nonmem_power_w"
	r.GammaBound.Name = "gamma_bound"
	if opts.Events {
		r.ring = newEventRing(opts.RingSize)
	}
	return r
}

// EventsEnabled reports whether the recorder captures the event
// stream. Safe on nil.
func (r *Recorder) EventsEnabled() bool { return r != nil && r.opts.Events }

// SetEpoch stamps subsequent events with the given epoch index. Safe
// on nil.
func (r *Recorder) SetEpoch(i int) {
	if r == nil {
		return
	}
	r.epoch = i
}

// push buffers one event, draining to the sink when the ring fills.
func (r *Recorder) push(ev Event) {
	if r == nil || r.ring == nil {
		return
	}
	ev.Epoch = r.epoch
	full := r.ring.push(ev)
	if full && r.opts.Sink != nil {
		r.flushToSink()
	}
}

func (r *Recorder) flushToSink() {
	batch := r.ring.drain()
	if len(batch) == 0 {
		return
	}
	if err := r.opts.Sink.Emit(batch); err != nil && r.sinkErr == nil {
		r.sinkErr = err
	}
}

// SinkErr returns the first error a sink reported, if any. Safe on
// nil.
func (r *Recorder) SinkErr() error {
	if r == nil {
		return nil
	}
	return r.sinkErr
}

// FreqTransition records a channel relock.
func (r *Recorder) FreqTransition(t config.Time, ch int, from, to config.FreqMHz, penalty config.Time) {
	if r == nil {
		return
	}
	r.FreqTransitions.Add(1)
	r.push(Event{Kind: EvFreqTransition, Time: t, Channel: ch, Rank: -1, Core: -1,
		A: int64(from), B: int64(to), C: int64(penalty)})
}

// PowerdownEnter records a rank dropping CKE.
func (r *Recorder) PowerdownEnter(t config.Time, ch, rank int, slow bool) {
	if r == nil {
		return
	}
	r.PowerdownEnters.Add(1)
	var a int64
	if slow {
		a = 1
	}
	r.push(Event{Kind: EvPowerdownEnter, Time: t, Channel: ch, Rank: rank, Core: -1, A: a})
}

// PowerdownExit records a rank waking to serve a request.
func (r *Recorder) PowerdownExit(t config.Time, ch, rank int) {
	if r == nil {
		return
	}
	r.PowerdownExits.Add(1)
	r.push(Event{Kind: EvPowerdownExit, Time: t, Channel: ch, Rank: rank, Core: -1})
}

// Refresh records a rank refresh spanning dur.
func (r *Recorder) Refresh(t config.Time, ch, rank int, dur config.Time) {
	if r == nil {
		return
	}
	r.Refreshes.Add(1)
	r.push(Event{Kind: EvRefresh, Time: t, Channel: ch, Rank: rank, Core: -1, C: int64(dur)})
}

// Slack records one core's slack credit (delta > 0) or debit at an
// epoch boundary, plus the new accumulated slack, both in seconds.
func (r *Recorder) Slack(t config.Time, core int, delta, total float64) {
	if r == nil {
		return
	}
	r.SlackUpdates.Add(1)
	r.push(Event{Kind: EvSlack, Time: t, Channel: -1, Rank: -1, Core: core, F1: delta, F2: total})
}

// Decision records one completed governor decision: the frequency in
// force during profiling, the chosen frequency, the model-predicted
// mean CPI at the choice (0 when unavailable), and the mean CPI the
// epoch actually measured.
func (r *Recorder) Decision(t config.Time, from, chosen config.FreqMHz, predicted, actual float64) {
	if r == nil {
		return
	}
	r.Decisions.Add(1)
	r.push(Event{Kind: EvDecision, Time: t, Channel: -1, Rank: -1, Core: -1,
		A: int64(from), B: int64(chosen), F1: predicted, F2: actual})
}

// Fault records one injected fault instance. kind is the single
// faults.Kind class bit, detail and dur are class-specific (see
// EvFault). The invariant the fault tests lean on: exactly one Fault
// call per applied disturbance, so FaultsInjected reconciles with the
// run's fault counts.
func (r *Recorder) Fault(t config.Time, kind uint8, detail int64, dur config.Time) {
	if r == nil {
		return
	}
	r.FaultsInjected.Add(1)
	r.push(Event{Kind: EvFault, Time: t, Channel: -1, Rank: -1, Core: -1,
		A: int64(kind), B: detail, C: int64(dur)})
}

// DegradedEpoch records an epoch that ended degraded under the given
// fault-class mask, running at freq.
func (r *Recorder) DegradedEpoch(t config.Time, mask uint8, freq config.FreqMHz) {
	if r == nil {
		return
	}
	r.DegradedEpochs.Add(1)
	r.push(Event{Kind: EvDegraded, Time: t, Channel: -1, Rank: -1, Core: -1,
		A: int64(mask), B: int64(freq)})
}

// NodeLost records the fleet supervisor giving node up (lossWindow
// false, attempts = retries spent) or the coordinator losing sight of
// it (lossWindow true).
func (r *Recorder) NodeLost(t config.Time, node int, lossWindow bool, attempts int) {
	if r == nil {
		return
	}
	r.NodesLost.Add(1)
	var a int64
	if lossWindow {
		a = 1
	}
	r.push(Event{Kind: EvNodeLost, Time: t, Channel: -1, Rank: -1, Core: node,
		A: a, B: int64(attempts)})
}

// NodeRecovered records a node coming back: a checkpoint restart that
// replayed it to the epoch boundary (rejoin false, attempt = the
// restart ordinal that succeeded) or a loss window closing (rejoin
// true).
func (r *Recorder) NodeRecovered(t config.Time, node int, rejoin bool, attempt int) {
	if r == nil {
		return
	}
	r.NodesRecovered.Add(1)
	var a int64
	if rejoin {
		a = 1
	}
	r.push(Event{Kind: EvRecovered, Time: t, Channel: -1, Rank: -1, Core: node,
		A: a, B: int64(attempt)})
}

// ObserveReadLatency records one read's arrival-to-data latency.
func (r *Recorder) ObserveReadLatency(d config.Time) {
	if r == nil {
		return
	}
	r.ReadLatencyNs.Observe(d.Nanoseconds())
}

// ObserveQueueDepth records an outstanding-request count seen by an
// arriving request. The controller feeds the per-channel depth through
// its ChannelCells; this run-wide entry point remains for direct use.
func (r *Recorder) ObserveQueueDepth(depth int) {
	if r == nil {
		return
	}
	r.QueueDepth.Observe(float64(depth))
}

// ObserveEpochHost records the host wall-clock nanoseconds one epoch
// took to simulate.
func (r *Recorder) ObserveEpochHost(hostNs int64) {
	if r == nil {
		return
	}
	r.EpochHostUs.Observe(float64(hostNs) / 1e3)
}

// PowerInterval accumulates one metered power interval into the run
// rollup: its duration, its DRAM state-residency account (summed over
// ranks), and its energy breakdown. The power layer calls this from
// Meter.Record, so the recorder's totals reconcile with the
// simulator's own energy accounting by construction.
func (r *Recorder) PowerInterval(dur config.Time, res dram.Account, e Energy) {
	if r == nil {
		return
	}
	r.PowerIntervals.Add(1)
	r.duration += dur
	r.residency.Add(res)
	r.energy.Add(e)
}

// AddEpoch appends one epoch snapshot.
func (r *Recorder) AddEpoch(s EpochSnapshot) {
	if r == nil {
		return
	}
	r.epochs = append(r.epochs, s)
}

// Epochs returns the snapshots recorded so far. Safe on nil.
func (r *Recorder) Epochs() []EpochSnapshot {
	if r == nil {
		return nil
	}
	return r.epochs
}

// Residency returns the accumulated DRAM state-residency account.
// Safe on nil.
func (r *Recorder) Residency() dram.Account {
	if r == nil {
		return dram.Account{}
	}
	return r.residency
}

// EnergyTotal returns the accumulated energy breakdown. Safe on nil.
func (r *Recorder) EnergyTotal() Energy {
	if r == nil {
		return Energy{}
	}
	return r.energy
}
