package memscale

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// requireInvalid asserts err is ErrInvalidConfig naming the given
// field path.
func requireInvalid(t *testing.T, err error, path string) {
	t.Helper()
	if !errors.Is(err, ErrInvalidConfig) || !strings.Contains(err.Error(), path) {
		t.Fatalf("err = %v, want ErrInvalidConfig naming %s", err, path)
	}
}

// shardCounts are the shard counts the parity suite runs against the
// serial reference: 2, 4 (one shard per default channel), and — when it
// is distinct and usable — GOMAXPROCS, so CI exercises the engine at
// the width it actually runs benchmarks at. Counts above the default
// channel count are clamped (Validate rejects shards > channels).
func shardCounts() []int {
	counts := []int{2, 4}
	g := runtime.GOMAXPROCS(0)
	if g > 4 {
		g = 4
	}
	if g > 1 && g != 2 && g != 4 {
		counts = append(counts, g)
	}
	return counts
}

// TestShardParity is the parallel engine's acceptance gate at the
// public API: every golden determinism config — including the
// fault-injected one, whose refresh storms are cross-shard events —
// run on its channel-partitioned variant must produce Float64bits-
// identical summaries on the serial engine and on every shard count.
// The differential covers the whole stack: partitioned trace
// placement, per-channel controller ownership, the conservative window
// loop, storm ticket reservation, and the paired-baseline runner.
func TestShardParity(t *testing.T) {
	ctx := context.Background()
	for _, base := range goldenConfigs() {
		rc := base
		rc.Partitioned = true
		t.Run(rc.Mix+"/"+rc.Policy, func(t *testing.T) {
			t.Parallel()
			serial, err := RunContext(ctx, rc)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range shardCounts() {
				src := rc
				src.Shards = n
				got, err := RunContext(ctx, src)
				if err != nil {
					t.Fatalf("shards=%d: %v", n, err)
				}
				sameBits(t, fmt.Sprintf("shards=%d", n), serial, got)
			}
		})
	}
}

// canonicalTelemetry renders a summary's telemetry export as JSONL
// with the host-clock observations zeroed: HostNs on every epoch
// snapshot and the epoch_host histogram record host wall time, which
// differs between any two runs by nature. Everything else in the
// stream is simulated state, and the sharded engine must reproduce it
// byte for byte.
func canonicalTelemetry(t *testing.T, sum RunSummary) string {
	t.Helper()
	if sum.Telemetry == nil {
		t.Fatal("run carries no telemetry export")
	}
	for i := range sum.Telemetry.Epochs {
		sum.Telemetry.Epochs[i].HostNs = 0
	}
	if h := sum.Telemetry.Histogram("epoch_host"); h != nil {
		h.Reset()
	}
	var buf bytes.Buffer
	if err := WriteTelemetry(&buf, sum); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// firstDiffLine reports the 1-based line at which two JSONL streams
// first diverge, for failure messages.
func firstDiffLine(a, b string) int {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return i + 1
		}
	}
	return min(len(la), len(lb)) + 1
}

// TestShardTelemetryParity is the sharded-telemetry acceptance gate:
// every golden config, instrumented with full telemetry (events on),
// must produce Float64bits-identical summaries AND byte-identical
// JSONL exports on the serial engine and on every shard count. The
// per-channel telemetry cells record lock-free inside conservative
// windows; the deterministic window-edge merge must reconstruct
// exactly the stream a serial instrumented run writes — same event
// order, same histogram counts, same epoch snapshots.
func TestShardTelemetryParity(t *testing.T) {
	ctx := context.Background()
	for _, base := range goldenConfigs() {
		rc := base
		rc.Partitioned = true
		rc.Telemetry = &TelemetryConfig{Events: true}
		t.Run(rc.Mix+"/"+rc.Policy, func(t *testing.T) {
			t.Parallel()
			serial, err := RunContext(ctx, rc)
			if err != nil {
				t.Fatal(err)
			}
			if serial.EngineShards != 1 {
				t.Errorf("serial run reports EngineShards = %d, want 1", serial.EngineShards)
			}
			want := canonicalTelemetry(t, serial)
			for _, n := range append([]int{1}, shardCounts()...) {
				src := rc
				src.Shards = n
				got, err := RunContext(ctx, src)
				if err != nil {
					t.Fatalf("shards=%d: %v", n, err)
				}
				sameBits(t, fmt.Sprintf("shards=%d", n), serial, got)
				if n > 1 && got.EngineShards != n {
					t.Errorf("shards=%d: EngineShards = %d, want %d (partitioned golden mixes must engage fully)",
						n, got.EngineShards, n)
				}
				if gotTel := canonicalTelemetry(t, got); gotTel != want {
					t.Errorf("shards=%d: telemetry JSONL diverged from the serial run (%d vs %d bytes; first difference at line %d)",
						n, len(gotTel), len(want), firstDiffLine(want, gotTel))
				}
			}
		})
	}
}

// TestBankShardParity covers the confinement-group analysis on
// unpartitioned workloads. The "/ilv2" interleaved variants stripe
// each application across a 2-channel group — no stream is
// channel-confined, so PR 9's strict rule would refuse them — yet the
// groups never share a channel, so the engine finds two confinement
// groups and shards at their boundary, bit-identical to serial. The
// plain mixes interleave every stream across all channels (one
// component) and must fall back to serial with identical results.
func TestBankShardParity(t *testing.T) {
	ctx := context.Background()
	for _, base := range goldenConfigs() {
		rc := base
		rc.Mix += InterleavePrefix + "2"
		t.Run(rc.Mix+"/"+rc.Policy, func(t *testing.T) {
			t.Parallel()
			serial, err := RunContext(ctx, rc)
			if err != nil {
				t.Fatal(err)
			}
			if serial.EngineShards != 1 {
				t.Errorf("serial run reports EngineShards = %d, want 1", serial.EngineShards)
			}
			for _, n := range shardCounts() {
				src := rc
				src.Shards = n
				got, err := RunContext(ctx, src)
				if err != nil {
					t.Fatalf("shards=%d: %v", n, err)
				}
				sameBits(t, fmt.Sprintf("shards=%d", n), serial, got)
				// Four default channels in 2-channel groups: two
				// confinement groups cap the effective count.
				if want := min(n, 2); got.EngineShards != want {
					t.Errorf("shards=%d: EngineShards = %d, want %d", n, got.EngineShards, want)
				}
			}
		})
	}
	t.Run("plain interleaved falls back to serial", func(t *testing.T) {
		t.Parallel()
		base := RunConfig{Mix: "MEM1", Policy: "MemScale", Epochs: 2}
		serial, err := RunContext(ctx, base)
		if err != nil {
			t.Fatal(err)
		}
		src := base
		src.Shards = 4
		got, err := RunContext(ctx, src)
		if err != nil {
			t.Fatal(err)
		}
		if got.EngineShards != 1 {
			t.Errorf("EngineShards = %d, want 1 (fully interleaved placement has one confinement group)", got.EngineShards)
		}
		sameBits(t, "fallback", serial, got)
	})
	t.Run("granularity channel refuses interleaved", func(t *testing.T) {
		t.Parallel()
		rc := RunConfig{Mix: "MEM1/ilv2", Policy: "MemScale", Epochs: 2,
			Shards: 2, ShardGranularity: "channel"}
		got, err := RunContext(ctx, rc)
		if err != nil {
			t.Fatal(err)
		}
		if got.EngineShards != 1 {
			t.Errorf("EngineShards = %d, want 1 (strict per-channel rule requires channel-confined streams)", got.EngineShards)
		}
	})
	t.Run("granularity bank engages interleaved", func(t *testing.T) {
		t.Parallel()
		rc := RunConfig{Mix: "MEM1/ilv2", Policy: "MemScale", Epochs: 2,
			Shards: 2, ShardGranularity: "bank"}
		got, err := RunContext(ctx, rc)
		if err != nil {
			t.Fatal(err)
		}
		if got.EngineShards != 2 {
			t.Errorf("EngineShards = %d, want 2", got.EngineShards)
		}
	})
}

// TestShardValidate pins the shards field's validation paths: negatives
// and counts above the channel count are rejected with ErrInvalidConfig
// naming the field, for both the single-run and fleet configs.
func TestShardValidate(t *testing.T) {
	cases := []struct {
		name string
		rc   RunConfig
		path string
	}{
		{"negative", RunConfig{Mix: "MID1", Shards: -1}, "shards"},
		{"exceeds default channels", RunConfig{Mix: "MID1", Shards: 5}, "shards"},
		{"exceeds explicit channels", RunConfig{Mix: "MID1", Channels: 2, Shards: 3}, "shards"},
		{"unknown granularity", RunConfig{Mix: "MID1", ShardGranularity: "rank"}, "shard_granularity"},
		{"misspelled granularity", RunConfig{Mix: "MID1", ShardGranularity: "Channel"}, "shard_granularity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			requireInvalid(t, tc.rc.Validate(), tc.path)
		})
	}
	t.Run("fleet negative", func(t *testing.T) {
		fc := FleetConfig{Groups: []NodeGroup{{Nodes: 1, Mix: "MID1", Shards: -1}}}
		requireInvalid(t, fc.Validate(), "groups[0].shards")
	})
	t.Run("fleet exceeds channels", func(t *testing.T) {
		fc := FleetConfig{Groups: []NodeGroup{{Nodes: 1, Mix: "MID1", Channels: 2, Shards: 4}}}
		requireInvalid(t, fc.Validate(), "groups[0].shards")
	})
	t.Run("shards equal to channels is valid", func(t *testing.T) {
		rc := RunConfig{Mix: "MID1", Shards: 4}
		if err := rc.Validate(); err != nil {
			t.Fatalf("Validate() = %v, want nil", err)
		}
	})
	t.Run("known granularities are valid", func(t *testing.T) {
		for _, g := range []string{"", "channel", "bank"} {
			rc := RunConfig{Mix: "MID1", Shards: 2, ShardGranularity: g}
			if err := rc.Validate(); err != nil {
				t.Fatalf("granularity %q: Validate() = %v, want nil", g, err)
			}
		}
	})
	t.Run("fleet unknown core split", func(t *testing.T) {
		fc := FleetConfig{CoreSplit: "ranks", Groups: []NodeGroup{{Nodes: 1, Mix: "MID1"}}}
		requireInvalid(t, fc.Validate(), "core_split")
	})
	t.Run("fleet known core splits are valid", func(t *testing.T) {
		for _, cs := range []string{"", "auto", "nodes", "shards"} {
			fc := FleetConfig{CoreSplit: cs, Groups: []NodeGroup{{Nodes: 1, Mix: "MID1"}}}
			if err := fc.Validate(); err != nil {
				t.Fatalf("core split %q: Validate() = %v, want nil", cs, err)
			}
		}
	})
}

// TestFleetShardIdentity extends the fleet's worker-count determinism
// contract to the event engine: the same fleet on serial nodes and on
// 4-shard nodes yields a bit-identical summary, under capping and
// chaos-free conditions alike.
func TestFleetShardIdentity(t *testing.T) {
	ctx := context.Background()
	base := FleetConfig{
		Epochs:       3,
		Seed:         11,
		PowerBudgetW: 400,
		Groups: []NodeGroup{
			{Name: "mem", Nodes: 2, Mix: "MEM1/part", Cores: 4},
			{Name: "mid", Nodes: 2, Mix: "MID1/part", Cores: 4},
		},
	}
	serial, err := RunFleet(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	for i := range sharded.Groups {
		sharded.Groups[i].Shards = 4
	}
	got, err := RunFleet(ctx, sharded)
	if err != nil {
		t.Fatal(err)
	}
	if serial.SER != got.SER || serial.AvgCPIIncrease != got.AvgCPIIncrease ||
		serial.MemAvgPowerW != got.MemAvgPowerW {
		t.Errorf("fleet summary diverged across shard counts:\nserial:  SER=%v CPI=%v P=%v\nsharded: SER=%v CPI=%v P=%v",
			serial.SER, serial.AvgCPIIncrease, serial.MemAvgPowerW,
			got.SER, got.AvgCPIIncrease, got.MemAvgPowerW)
	}
}
