// Package workload defines the synthetic stand-ins for the SPEC 2000 /
// SPEC 2006 applications used by the paper and assembles them into the
// twelve Table 1 multiprogrammed mixes (ILP1-4, MID1-4, MEM1-4).
//
// Per-application parameters (compute CPI, miss and writeback rates,
// row locality, footprint) were chosen so that each mix reproduces the
// Table 1 aggregate RPKI/WPKI to within a few percent while keeping
// every application's parameters identical across the mixes it appears
// in, exactly as a shared trace would. `apsi` carries the large phase
// change the paper highlights in the MID3 timeline (Figure 7).
package workload

import (
	"fmt"
	"sort"

	"memscale/internal/trace"
)

// apps maps application name to its synthetic profile.
//
// MPKI values solve the Table 1 mix equations (each mix's RPKI is the
// mean of its four applications' MPKI, since all cores retire the same
// instruction target). BaseCPI reflects each application's
// compute-boundedness; RowLocality and HotRows shape the row-buffer
// and bank behaviour (streaming scientific codes are row-friendly,
// pointer-chasing integer codes are not).
var apps = map[string]trace.Profile{
	// SPEC CPU integer / ILP-heavy applications.
	"vortex":   app(1.05, 0.50, 0.10, 0.30, 2048),
	"gcc":      app(1.10, 0.11, 0.03, 0.35, 4096),
	"sixtrack": app(0.85, 0.62, 0.02, 0.55, 1024),
	"mesa":     app(0.90, 0.25, 0.04, 0.50, 1024),
	"perlbmk":  app(1.15, 0.09, 0.01, 0.25, 2048),
	"crafty":   app(1.00, 0.12, 0.01, 0.20, 512),
	"gzip":     app(0.95, 0.35, 0.02, 0.60, 512),
	"eon":      app(1.10, 0.08, 0.01, 0.30, 512),

	// Balanced (MID) applications.
	"ammp":    app(1.20, 1.80, 0.02, 0.30, 4096),
	"gap":     app(1.00, 1.40, 0.02, 0.40, 4096),
	"wupwise": app(0.95, 2.20, 0.03, 0.60, 2048),
	"vpr":     app(1.10, 1.48, 0.02, 0.25, 1024),
	"astar":   app(1.15, 2.80, 0.10, 0.20, 4096),
	"parser":  app(1.10, 1.96, 0.06, 0.25, 2048),
	"twolf":   app(1.20, 2.40, 0.08, 0.15, 1024),
	"facerec": app(0.90, 3.28, 0.12, 0.65, 2048),
	"bzip2":   app(1.00, 1.40, 0.30, 0.45, 1024),

	// apsi: a mildly memory-bound first phase, then a strongly
	// memory-intensive phase — the Figure 7 phase change. Phase 1 is
	// 80M instructions, which at its ~1.7 CPI on a 4 GHz core puts
	// the transition near 40 ms of the MID3 timeline. Weighted over
	// the paper's 100M-instruction trace window the average MPKI is
	// (80*2.0 + 20*17.0)/100 = 5.0, which closes the Table 1 MID3
	// RPKI equation.
	"apsi": {Name: "apsi", Phases: []trace.Phase{
		{Instructions: 80_000_000, BaseCPI: 1.20, MPKI: 2.00, WPKI: 0.20, RowLocality: 0.40, HotRows: 2048},
		{BaseCPI: 1.50, MPKI: 17.0, WPKI: 0.70, RowLocality: 0.35, HotRows: 8192},
	}},

	// Memory-intensive (MEM) applications.
	"swim":   app(0.75, 20.0, 4.00, 0.80, 8192),
	"applu":  app(0.80, 14.0, 2.80, 0.75, 8192),
	"art":    app(0.70, 18.0, 1.00, 0.55, 2048),
	"lucas":  app(0.80, 12.0, 0.80, 0.45, 4096),
	"fma3d":  app(0.90, 4.00, 0.40, 0.50, 4096),
	"mgrid":  app(0.80, 5.00, 0.50, 0.85, 8192),
	"galgel": app(0.85, 13.0, 0.30, 0.60, 4096),
	"equake": app(0.90, 14.0, 0.35, 0.40, 4096),
}

// app builds a single-phase profile. The name is filled in by init.
func app(baseCPI, mpki, wpki, locality float64, hotRows int) trace.Profile {
	return trace.Profile{Phases: []trace.Phase{{
		BaseCPI:     baseCPI,
		MPKI:        mpki,
		WPKI:        wpki,
		RowLocality: locality,
		HotRows:     hotRows,
	}}}
}

func init() {
	for name, p := range apps {
		p.Name = name
		if err := p.Validate(); err != nil {
			panic(fmt.Sprintf("workload: bad builtin profile: %v", err))
		}
		apps[name] = p
	}
}

// App returns the profile for a named application.
func App(name string) (trace.Profile, error) {
	p, ok := apps[name]
	if !ok {
		return trace.Profile{}, fmt.Errorf("workload: %w %q", ErrUnknownApp, name)
	}
	return p, nil
}

// AppNames returns all known application names, sorted.
func AppNames() []string {
	names := make([]string, 0, len(apps))
	for n := range apps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
