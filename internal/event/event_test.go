package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"memscale/internal/config"
)

func TestFIFOAtSameInstant(t *testing.T) {
	var q Queue
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(100, func(config.Time) { order = append(order, i) })
	}
	q.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", order)
		}
	}
	if q.Now() != 100 {
		t.Errorf("clock = %v, want 100", q.Now())
	}
}

func TestTimeOrdering(t *testing.T) {
	var q Queue
	times := []config.Time{50, 10, 30, 20, 40, 10, 50}
	var fired []config.Time
	for _, at := range times {
		q.Schedule(at, func(now config.Time) { fired = append(fired, now) })
	}
	q.Run(0)
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatalf("events fired out of time order: %v", fired)
	}
	if len(fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(fired), len(times))
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	ran := false
	e := q.Schedule(10, func(config.Time) { ran = true })
	if !e.Scheduled() {
		t.Error("event should report scheduled")
	}
	q.Cancel(e)
	if e.Scheduled() {
		t.Error("cancelled event still reports scheduled")
	}
	q.Run(0)
	if ran {
		t.Error("cancelled event ran")
	}
	q.Cancel(e) // double cancel is a no-op
	q.Cancel(nil)
}

func TestCancelFromHandler(t *testing.T) {
	var q Queue
	ran := false
	victim := q.Schedule(20, func(config.Time) { ran = true })
	q.Schedule(10, func(config.Time) { q.Cancel(victim) })
	q.Run(0)
	if ran {
		t.Error("event cancelled from an earlier handler still ran")
	}
}

func TestScheduleFromHandler(t *testing.T) {
	var q Queue
	var seen []config.Time
	q.Schedule(10, func(now config.Time) {
		seen = append(seen, now)
		q.After(5, func(now config.Time) { seen = append(seen, now) })
	})
	q.Run(0)
	if len(seen) != 2 || seen[0] != 10 || seen[1] != 15 {
		t.Fatalf("nested scheduling: %v", seen)
	}
}

func TestRunUntil(t *testing.T) {
	var q Queue
	var fired []config.Time
	for _, at := range []config.Time{5, 10, 15, 20} {
		q.Schedule(at, func(now config.Time) { fired = append(fired, now) })
	}
	q.RunUntil(10)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(10) fired %d events, want 2 (inclusive)", len(fired))
	}
	if q.Now() != 10 {
		t.Errorf("clock = %v after RunUntil(10)", q.Now())
	}
	q.RunUntil(100)
	if len(fired) != 4 {
		t.Errorf("fired %d total, want 4", len(fired))
	}
	if q.Now() != 100 {
		t.Errorf("clock must land on the deadline, got %v", q.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var q Queue
	q.Schedule(10, func(config.Time) {})
	q.Run(0)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past must panic")
		}
	}()
	q.Schedule(5, func(config.Time) {})
}

func TestNegativeAfterPanics(t *testing.T) {
	var q Queue
	defer func() {
		if recover() == nil {
			t.Error("negative After delay must panic")
		}
	}()
	q.After(-1, func(config.Time) {})
}

func TestNilHandlerPanics(t *testing.T) {
	var q Queue
	defer func() {
		if recover() == nil {
			t.Error("nil handler must panic")
		}
	}()
	q.Schedule(1, nil)
}

func TestCounters(t *testing.T) {
	var q Queue
	for i := 0; i < 5; i++ {
		q.Schedule(config.Time(i), func(config.Time) {})
	}
	e := q.Schedule(99, func(config.Time) {})
	q.Cancel(e)
	q.Run(0)
	if q.ScheduledTotal() != 6 {
		t.Errorf("ScheduledTotal = %d, want 6", q.ScheduledTotal())
	}
	if q.Fired() != 5 {
		t.Errorf("Fired = %d, want 5", q.Fired())
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d, want 0", q.Len())
	}
}

func TestNextAt(t *testing.T) {
	var q Queue
	if _, ok := q.NextAt(); ok {
		t.Error("empty queue should have no next event")
	}
	q.Schedule(42, func(config.Time) {})
	if at, ok := q.NextAt(); !ok || at != 42 {
		t.Errorf("NextAt = %v, %v", at, ok)
	}
}

// TestRandomizedOrdering is a property test: for any batch of events
// with random times and random cancellations, the survivors fire in
// nondecreasing time order and cancelled events never fire.
func TestRandomizedOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		count := int(n%64) + 1
		type rec struct {
			ev        *Event
			cancelled bool
		}
		recs := make([]*rec, count)
		firedAt := make([]config.Time, 0, count)
		for i := 0; i < count; i++ {
			r := &rec{}
			recs[i] = r
			at := config.Time(rng.Intn(1000))
			r.ev = q.Schedule(at, func(now config.Time) {
				if r.cancelled {
					t.Errorf("cancelled event fired at %v", now)
				}
				firedAt = append(firedAt, now)
			})
		}
		survivors := count
		for _, r := range recs {
			if rng.Intn(3) == 0 {
				r.cancelled = true
				q.Cancel(r.ev)
				survivors--
			}
		}
		q.Run(0)
		if len(firedAt) != survivors {
			return false
		}
		return sort.SliceIsSorted(firedAt, func(i, j int) bool { return firedAt[i] < firedAt[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	var q Queue
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Schedule(q.Now()+config.Time(i%128), func(config.Time) {})
		if q.Len() > 1024 {
			for q.Len() > 512 {
				q.Step()
			}
		}
	}
	q.Run(0)
}
