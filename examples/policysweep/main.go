// Policysweep: compare every energy-management scheme of the paper's
// Section 4.2.3 on one workload — the unmanaged baseline, the
// powerdown-based controllers, Decoupled DIMMs, the best static
// frequency, and the MemScale variants — reproducing the Figure 9/11
// comparison for a single mix.
//
// The grid goes through memscale.Sweep: the schemes run concurrently
// on a worker pool, and all of them pair against one shared baseline
// simulation instead of re-running it per scheme.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"memscale"
)

func main() {
	mix := flag.String("mix", "MID2", "workload mix to sweep")
	epochs := flag.Int("epochs", 8, "OS quanta per run")
	workers := flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	grid := memscale.Grid(
		memscale.RunConfig{Epochs: *epochs},
		[]string{*mix},
		memscale.Policies(),
	)
	sums, err := memscale.Sweep(ctx, memscale.SweepConfig{
		Runs:    grid,
		Workers: *workers,
		Progress: func(p memscale.SweepProgress) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s/%s done\n",
				p.Completed, p.Total, p.Run.Mix, p.Run.Policy)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy comparison on %s (gamma = 10%%)\n\n", *mix)
	fmt.Printf("%-22s %14s %14s %12s %12s\n",
		"policy", "system energy", "memory energy", "avg CPI", "worst CPI")
	for _, sum := range sums {
		fmt.Printf("%-22s %+13.1f%% %+13.1f%% %+11.1f%% %+11.1f%%\n",
			sum.Policy, sum.SystemSavings*100, sum.MemorySavings*100,
			sum.AvgCPIIncrease*100, sum.WorstCPIIncrease*100)
	}
	fmt.Println("\n(positive energy = savings vs baseline; positive CPI = slowdown)")
}
