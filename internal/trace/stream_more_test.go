package trace

import (
	"math"
	"testing"

	"memscale/internal/config"
)

func TestZeroWPKINeverWritesBack(t *testing.T) {
	m := testMapper()
	p := Profile{Name: "ro", Phases: []Phase{{BaseCPI: 1, MPKI: 5, WPKI: 0, RowLocality: 0.2}}}
	s := mustStream(t, p, m, 4)
	for i := 0; i < 5000; i++ {
		if s.Next().Writeback {
			t.Fatal("writeback generated with WPKI = 0")
		}
	}
	_, _, wbs := s.Stats()
	if wbs != 0 {
		t.Errorf("writeback counter = %d", wbs)
	}
}

func TestHotRowsZeroUsesWholeBank(t *testing.T) {
	m := testMapper()
	p := Profile{Name: "wide", Phases: []Phase{{BaseCPI: 1, MPKI: 10, RowLocality: 0}}}
	s := mustStream(t, p, m, 6)
	maxRow := 0
	for i := 0; i < 20000; i++ {
		if row := m.Map(s.Next().Line).Row; row > maxRow {
			maxRow = row
		}
	}
	cfg := config.Default()
	// With the whole bank available, rows well beyond any typical
	// HotRows bound must appear.
	if maxRow < cfg.RowsPerBank/4 {
		t.Errorf("max row touched = %d of %d; footprint seems clamped", maxRow, cfg.RowsPerBank)
	}
}

func TestGapDistributionIsExponentialish(t *testing.T) {
	m := testMapper()
	p := Profile{Name: "exp", Phases: []Phase{{BaseCPI: 1, MPKI: 10, RowLocality: 0}}}
	s := mustStream(t, p, m, 10)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		g := float64(s.Next().Gap)
		sum += g
		sumSq += g * g
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	// Exponential: std dev ~= mean (coefficient of variation ~1).
	cv := math.Sqrt(variance) / mean
	if cv < 0.8 || cv > 1.2 {
		t.Errorf("gap coefficient of variation = %.2f, want ~1 (exponential)", cv)
	}
}

func TestMultiPhaseBoundariesExact(t *testing.T) {
	m := testMapper()
	p := Profile{Name: "tri", Phases: []Phase{
		{Instructions: 50_000, BaseCPI: 1, MPKI: 10},
		{Instructions: 50_000, BaseCPI: 2, MPKI: 1},
		{BaseCPI: 3, MPKI: 20},
	}}
	s := mustStream(t, p, m, 12)
	var seen [3]uint64
	for seen[2] < 10_000 {
		a := s.Next()
		// Clamped draws never cross boundaries, so each access belongs
		// entirely to one phase, identified by its BaseCPI.
		switch a.BaseCPI {
		case 1:
			seen[0] += a.Gap
		case 2:
			seen[1] += a.Gap
		case 3:
			seen[2] += a.Gap
		default:
			t.Fatalf("unexpected BaseCPI %g", a.BaseCPI)
		}
	}
	if seen[0] != 50_000 {
		t.Errorf("phase 0 ran %d instructions, want exactly 50000 (clamped)", seen[0])
	}
	if seen[1] != 50_000 {
		t.Errorf("phase 1 ran %d instructions, want exactly 50000", seen[1])
	}
}

func TestStreamIndependentOfReadOrder(t *testing.T) {
	// Interleaving two streams must not change either sequence
	// (no shared state).
	m := testMapper()
	p := validProfile()
	a1 := mustStream(t, p, m, 100)
	b1 := mustStream(t, p, m, 200)
	var aSeq, bSeq []Access
	for i := 0; i < 100; i++ {
		aSeq = append(aSeq, a1.Next())
		bSeq = append(bSeq, b1.Next())
	}
	a2 := mustStream(t, p, m, 100)
	b2 := mustStream(t, p, m, 200)
	for i := 0; i < 100; i++ {
		if bSeq[i] != b2.Next() {
			t.Fatal("stream b changed under different interleaving")
		}
	}
	for i := 0; i < 100; i++ {
		if aSeq[i] != a2.Next() {
			t.Fatal("stream a changed under different interleaving")
		}
	}
}
