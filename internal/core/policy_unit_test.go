package core

import (
	"testing"
	"testing/quick"

	"memscale/internal/config"
	"memscale/internal/dram"
	"memscale/internal/memctrl"
	"memscale/internal/power"
	"memscale/internal/sim"
)

// mkProfile builds a synthetic profiling window with uniform per-core
// miss rates and an idle-ish power interval, suitable for unit tests
// of the decision logic.
func mkProfile(cfg *config.Config, mpki float64, xiBank, xiBus float64) sim.Profile {
	const instrPerCore = 1_000_000
	c := memctrl.Counters{TLM: make([]uint64, cfg.Cores)}
	c.PerChannel = make([]memctrl.ChannelCounters, cfg.Channels)
	for ch := range c.PerChannel {
		c.PerChannel[ch].TLM = make([]uint64, cfg.Cores)
	}
	misses := uint64(mpki * instrPerCore / 1000)
	var totalMisses uint64
	for i := range c.TLM {
		c.TLM[i] = misses
		totalMisses += misses
	}
	c.CBMC = totalMisses
	c.BTC = totalMisses
	c.BTO = uint64(float64(totalMisses) * (xiBank - 1))
	c.CTC = totalMisses
	c.CTO = uint64(float64(totalMisses) * (xiBus - 1))

	instr := make([]float64, cfg.Cores)
	for i := range instr {
		instr[i] = instrPerCore
	}

	elapsed := 300 * config.Microsecond
	interval := power.Uniform(elapsed, config.MaxBusFreq, config.MaxBusFreq,
		idleAccount(cfg, elapsed), make([]config.Time, cfg.Channels))

	return sim.Profile{
		End:      elapsed,
		BusFreq:  config.MaxBusFreq,
		Counters: c,
		Instr:    instr,
		Interval: interval,
	}
}

func idleAccount(cfg *config.Config, d config.Time) (a dram.Account) {
	a.PrechargeStandby = config.Time(cfg.TotalRanks()) * d
	return a
}

func TestPolicyPrefersMinFreqWhenIdle(t *testing.T) {
	cfg := config.Default()
	pol := NewPolicy(&cfg, Options{NonMemPower: 45})
	p := mkProfile(&cfg, 0.05, 1, 1) // nearly no misses
	got := pol.ProfileComplete(p)
	if got != config.MinBusFreq {
		t.Errorf("idle profile chose %v, want %v", got, config.MinBusFreq)
	}
}

func TestPolicyStaysFastUnderLoad(t *testing.T) {
	cfg := config.Default()
	pol := NewPolicy(&cfg, Options{NonMemPower: 45})
	p := mkProfile(&cfg, 25, 3.0, 2.5) // very memory bound with queueing
	got := pol.ProfileComplete(p)
	if got < config.Freq533 {
		t.Errorf("memory-bound profile chose %v, want >= 533 MHz", got)
	}
}

func TestPolicyAlwaysReturnsLadderFrequency(t *testing.T) {
	cfg := config.Default()
	f := func(mpkiSeed, xiSeed uint8) bool {
		pol := NewPolicy(&cfg, Options{NonMemPower: 45})
		mpki := 0.05 + float64(mpkiSeed)/8 // 0.05 .. ~32
		xi := 1 + float64(xiSeed%40)/10    // 1 .. 4.9
		p := mkProfile(&cfg, mpki, xi, xi)
		got := pol.ProfileComplete(p)
		return config.ValidBusFrequency(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPolicyMonotoneInMissRate(t *testing.T) {
	// Higher miss rate can only keep the frequency equal or higher.
	cfg := config.Default()
	prev := config.FreqMHz(0)
	for _, mpki := range []float64{0.05, 0.5, 2, 8, 20, 40} {
		pol := NewPolicy(&cfg, Options{NonMemPower: 45})
		got := pol.ProfileComplete(mkProfile(&cfg, mpki, 1.5, 1.3))
		if got < prev {
			t.Errorf("frequency fell from %v to %v as MPKI rose to %g", prev, got, mpki)
		}
		prev = got
	}
}

func TestNegativeSlackForcesRecovery(t *testing.T) {
	cfg := config.Default()
	pol := NewPolicy(&cfg, Options{NonMemPower: 45})
	// Put every core deep in debt.
	for i := range pol.slack {
		pol.slack[i] = -50 * config.Millisecond
	}
	p := mkProfile(&cfg, 2.0, 1.5, 1.3)
	got := pol.ProfileComplete(p)
	if got != config.MaxBusFreq {
		t.Errorf("with negative slack the policy chose %v, want max frequency", got)
	}
}

func TestAccumulatedSlackAllowsDeeperScaling(t *testing.T) {
	cfg := config.Default()
	rich := NewPolicy(&cfg, Options{NonMemPower: 45})
	for i := range rich.slack {
		rich.slack[i] = 50 * config.Millisecond
	}
	poor := NewPolicy(&cfg, Options{NonMemPower: 45})

	p := mkProfile(&cfg, 12, 2.0, 1.6)
	fRich := rich.ProfileComplete(p)
	fPoor := poor.ProfileComplete(p)
	if fRich > fPoor {
		t.Errorf("slack-rich policy chose %v, faster than slack-poor %v", fRich, fPoor)
	}
}

func TestEpochEndSlackSign(t *testing.T) {
	cfg := config.Default()
	pol := NewPolicy(&cfg, Options{NonMemPower: 45})
	// An epoch run at max frequency with gamma headroom accrues
	// positive slack: the work's max-frequency time estimate times
	// 1+gamma exceeds the elapsed time when CPI matched the model.
	p := mkProfile(&cfg, 2.0, 1.5, 1.3)
	p.End = cfg.Policy.EpochLength
	// Scale instruction counts so measured CPI is plausible (~1).
	cycles := cfg.TimeToCPUCycles(p.End - p.Start)
	for i := range p.Instr {
		p.Instr[i] = cycles / 1.2
	}
	pol.EpochEnd(p)
	for i, s := range pol.Slack() {
		if s == 0 {
			t.Errorf("core %d slack unchanged after epoch end", i)
		}
	}
}
