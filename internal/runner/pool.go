package runner

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
)

// ForEach executes fn(ctx, i) for every index in [0, n) on a pool of
// at most workers goroutines (zero or negative means
// runtime.GOMAXPROCS(0)) and returns the per-index errors, indexed by
// submission order regardless of completion order.
//
// It is the shared fan-out primitive under Engine.RunEach and the
// fleet layer's node sharding, with the pool invariants both need:
//
//   - Panic isolation: a panicking fn surfaces as a *PanicError at its
//     index instead of unwinding the pool; the other indices keep
//     running.
//   - Prompt drain on cancellation: once ctx is cancelled, indices not
//     yet started record ctx.Err() without invoking fn.
//   - Serialized completion callback: onDone (when non-nil) is invoked
//     once per finished index, in completion order, from one goroutine
//     at a time, with done counting finishes so far. Watchdog
//     deadlines belong inside fn (wrap ctx with a timeout there); the
//     pool itself never abandons a running fn.
//
// Determinism note: fn writes results into caller-owned, index-slotted
// storage, so outputs are positionally identical on any worker count;
// only onDone observes completion order.
func ForEach(ctx context.Context, workers, n int, fn func(context.Context, int) error, onDone func(done, index int, err error)) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var (
		mu   sync.Mutex // guards next and done; serializes onDone
		next int
		done int
		wg   sync.WaitGroup
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		i := next
		next++
		return i
	}
	finish := func(i int) {
		mu.Lock()
		defer mu.Unlock()
		done++
		if onDone != nil {
			onDone(done, i, errs[i])
		}
	}
	run := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		return fn(ctx, i)
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					// Drain the remaining indices without running them.
					errs[i] = err
				} else {
					errs[i] = run(i)
				}
				finish(i)
			}
		}()
	}
	wg.Wait()
	return errs
}
