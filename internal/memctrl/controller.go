// Package memctrl implements the integrated memory controller: per-bank
// request queues with closed-page row management, FCFS reads with
// writeback draining, the transfer-blocking bank/bus interaction of the
// paper's queueing model (Figure 4), rank powerdown management, refresh
// scheduling, the Section 3.1 performance counters, and the
// PLL/DLL-relock frequency-switching mechanism that MemScale adds.
//
// Frequencies are tracked per channel: the paper's base scheme always
// drives all channels together (SetBusFrequency), while the Section 6
// future-work extension can relock channels independently
// (SetChannelFrequency). The MC clock follows the fastest channel.
package memctrl

import (
	"fmt"
	"math"

	"memscale/internal/config"
	"memscale/internal/dram"
	"memscale/internal/event"
	"memscale/internal/power"
	"memscale/internal/telemetry"
)

// Request is one memory transaction in flight through the controller.
type Request struct {
	Loc   config.Location
	Write bool
	Core  int

	// Done is invoked when the data transfer completes (reads only;
	// writebacks are fire-and-forget).
	Done func(now config.Time)

	Arrived config.Time
	ready   config.Time // device data ready for the bus
}

// noDeferral is the defAts sentinel for a bank with no deferred close;
// it compares after every real instant.
const noDeferral = config.Time(math.MaxInt64)

// bankID flattens (rank, bank) within one channel.
type bankID int

func (c *Controller) bankID(rank, bank int) bankID {
	return bankID(rank*c.cfg.BanksPerRank + bank)
}

type bank struct {
	queue      reqRing // FIFO of reads waiting for this bank
	wb         reqRing // FIFO of writebacks targeting this bank
	dispatched bool    // a request occupies MC pipeline/bank/bus-wait

	// Deferred auto-precharge close (DESIGN.md §4g): when a grant leaves
	// the bank idle — or leaves it with a forced next dispatch — inside
	// the quiesce horizon, the precharge-done event is elided.
	// prechAt/prechSeq record the instant and the reserved ordering
	// ticket of the event that would have fired; settleRank replays or
	// materializes it on the rank's next touch. With defDispatch set,
	// the elided event's dispatch of defReq (the unambiguous queue head)
	// rides the deferred-schedule plane: its start-bank event
	// materializes at the ticket's exact position, and settlement
	// replays only the pop and the bookkeeping.
	prechDeferred bool
	defDispatch   bool
	prechAt       config.Time
	prechSeq      event.Seq
	defReq        *Request
}

type channel struct {
	banks   []bank
	wbCount int // writebacks queued across all banks

	busFreeAt config.Time
	busQueue  reqRing // bank-service-complete, waiting for the bus

	// grantArmed tracks whether a bus-grant event is pending at
	// busFreeAt. The grant event is armed lazily — only when a request
	// is actually waiting for a busy bus — so the uncontended common
	// case (the bus frees before the next request's data is ready)
	// schedules no wakeup at all. grantSeq holds the ordering ticket
	// reserved where the eager formulation scheduled its
	// grant-at-busEnd event, so a lazily armed grant fires at exactly
	// the same position among same-instant events. See DESIGN.md §4g.
	grantArmed bool
	grantSeq   event.Seq

	busBusy config.Time // accumulated burst occupancy since last flush

	outstanding []int // per bank: queued + dispatched requests

	// defAts/defSeqs mirror banks[i].prechAt/prechSeq for banks holding
	// a deferred close (noDeferral sentinel otherwise), packed flat so
	// settleRank's earliest-deferral scan reads two cache lines instead
	// of eight scattered bank structs.
	defAts  []config.Time
	defSeqs []uint64

	timing      dram.Resolved // operating point of this channel
	relocking   bool
	relockUntil config.Time
}

// Controller is the memory controller for all channels.
type Controller struct {
	cfg    *config.Config
	q      *event.Queue
	mapper *config.AddressMapper

	// qs[chIdx] is the event queue that owns channel chIdx. Serially
	// every entry aliases q; under the sharded engine each channel
	// schedules on its shard's queue, so all controller event traffic —
	// per-channel by construction — stays shard-local.
	qs       []*event.Queue
	parallel bool

	channels []*channel
	ranks    [][]*dram.Rank // [channel][rank]

	// MC clock: double the fastest channel's bus frequency.
	mcBusFreq config.FreqMHz
	mcTime    config.Time

	// mcTimes[chIdx] replicates mcTime per channel for the sharded
	// engine: a relock completing inside a window may not scan the
	// other channels' operating points (their shards own them), so each
	// shard refreshes its own copy. The engine only runs under the
	// uniform governor, where every channel's frequency — and hence
	// every copy — is the global value.
	mcTimes []config.Time

	ranksPerCh int // cached cfg.RanksPerChannel(), for the defGate index

	// Per-rank dispatch bookkeeping for refresh/powerdown decisions.
	dispatched [][]int // requests dispatched but not yet through the bus
	pending    [][]int // requests queued or dispatched per rank
	defPrech   [][]int // deferred precharge closes outstanding per rank

	// defGate is a lower bound on the earliest prechAt among a rank's
	// deferred closes (noDeferral when none are outstanding), flattened
	// to [chIdx*ranksPerChannel+rankIdx] so settleRank's hot gate — a
	// touch strictly before the bound settles nothing — is one load and
	// one compare, and the wrapper stays inlineable. Removing a deferral
	// may leave it stale-low; harmless, the next touch rescans and
	// tightens it.
	defGate []config.Time

	counters Counters

	flushedAt config.Time // start of the current power interval

	// tel, when non-nil, receives latency/queue-depth samples and
	// powerdown/refresh/relock events. Purely observational: no
	// scheduling decision reads it. All per-channel emissions route
	// through telCh — one staging cell per channel, each written only
	// by the channel's owning shard — so recording is lock-free under
	// the sharded engine; the recorder folds the cells back at window
	// edges (telemetry.Recorder.MergeChannels).
	tel   *telemetry.Recorder
	telCh []*telemetry.ChannelCell

	// quiesce is the coalescing horizon: the caller's promise that no
	// external sampling (counter window, power flush, instruction
	// readout) happens strictly before this time. Completions whose bus
	// transfer ends at or before the horizon may be delivered inline at
	// grant time instead of through a separate event — the closed-form
	// fast path of DESIGN.md §4g. Zero disables every fast path.
	quiesce config.Time

	// reqFree recycles Request objects per channel: every transaction
	// that clears the bus returns its Request to its channel's pool, so
	// the steady state allocates none and concurrent shards never share
	// a pool.
	reqFree [][]*Request

	// Pre-bound event callbacks, created once so the hot path schedules
	// without capturing a closure (see event.Bound).
	onStartBank   event.Bound
	onBusReady    event.Bound
	onBankKick    event.Bound
	onPrecharge   event.Bound
	onGrantBus    event.Bound
	onRefreshTick event.Bound
	onRefreshDone event.Bound
	onRelockDone  event.Bound
	onRelockKick  event.Bound
	onDone        event.Bound
}

// New builds a controller for cfg, scheduling on q. Every channel
// boots at the nominal maximum frequency.
func New(cfg *config.Config, q *event.Queue) *Controller {
	c := &Controller{
		cfg:       cfg,
		q:         q,
		mapper:    config.NewAddressMapper(cfg),
		mcBusFreq: config.MaxBusFreq,
	}
	c.mcTime = cfg.Timing.MCTime(config.MaxBusFreq)
	c.mcTimes = make([]config.Time, cfg.Channels)
	for i := range c.mcTimes {
		c.mcTimes[i] = c.mcTime
	}
	c.qs = make([]*event.Queue, cfg.Channels)
	for i := range c.qs {
		c.qs[i] = q
	}
	c.reqFree = make([][]*Request, cfg.Channels)
	c.ranksPerCh = cfg.RanksPerChannel()
	c.onStartBank = c.startBankServiceEvent
	c.onBusReady = c.busReadyEvent
	c.onBankKick = c.bankKickEvent
	c.onPrecharge = c.prechargeEvent
	c.onGrantBus = c.grantBusEvent
	c.onRefreshTick = c.refreshTickEvent
	c.onRefreshDone = c.refreshDoneEvent
	c.onRelockDone = c.onRelockDoneEvent
	c.onRelockKick = c.onRelockKickEvent
	c.onDone = c.onDoneEvent

	banksPerChannel := cfg.RanksPerChannel() * cfg.BanksPerRank
	c.channels = make([]*channel, cfg.Channels)
	c.ranks = make([][]*dram.Rank, cfg.Channels)
	c.dispatched = make([][]int, cfg.Channels)
	c.pending = make([][]int, cfg.Channels)
	c.defPrech = make([][]int, cfg.Channels)
	c.defGate = make([]config.Time, cfg.Channels*cfg.RanksPerChannel())
	for i := range c.defGate {
		c.defGate[i] = noDeferral
	}
	for chIdx := range c.channels {
		ch := &channel{
			banks:       make([]bank, banksPerChannel),
			outstanding: make([]int, banksPerChannel),
			defAts:      make([]config.Time, banksPerChannel),
			defSeqs:     make([]uint64, banksPerChannel),
			timing:      dram.Resolve(cfg.Timing, config.MaxBusFreq, c.devFreqFor(config.MaxBusFreq)),
		}
		for i := range ch.defAts {
			ch.defAts[i] = noDeferral
		}
		c.channels[chIdx] = ch
		c.ranks[chIdx] = make([]*dram.Rank, cfg.RanksPerChannel())
		c.dispatched[chIdx] = make([]int, cfg.RanksPerChannel())
		c.pending[chIdx] = make([]int, cfg.RanksPerChannel())
		c.defPrech[chIdx] = make([]int, cfg.RanksPerChannel())
		for r := range c.ranks[chIdx] {
			c.ranks[chIdx][r] = dram.NewRank(cfg.BanksPerRank, &ch.timing)
		}
	}
	c.counters.TLM = make([]uint64, cfg.Cores)
	c.counters.PerChannel = make([]ChannelCounters, cfg.Channels)
	for i := range c.counters.PerChannel {
		c.counters.PerChannel[i].TLM = make([]uint64, cfg.Cores)
	}
	return c
}

// devFreqFor returns the DRAM device frequency paired with a bus
// frequency (lower and fixed under Decoupled DIMMs).
func (c *Controller) devFreqFor(bus config.FreqMHz) config.FreqMHz {
	if c.cfg.DecoupledDevFreq != 0 {
		return c.cfg.DecoupledDevFreq
	}
	return bus
}

// Start arms the per-rank refresh timers, staggered so ranks refresh
// round-robin across the tREFI interval as real controllers do.
func (c *Controller) Start() {
	interval := c.cfg.Timing.RefreshInterval()
	n := config.Time(c.cfg.TotalRanks())
	i := config.Time(0)
	for ch := range c.ranks {
		q := c.qs[ch]
		for r := range c.ranks[ch] {
			first := q.Now() + interval*(i+1)/n
			i++
			q.ScheduleBound(first, c.onRefreshTick, nil, int32(ch), int32(r))
			// Ranks that never see traffic still power down under the
			// powerdown policies.
			c.maybePowerdown(q.Now(), ch, r)
		}
	}
}

// BusFreq returns channel 0's bus frequency — the system frequency
// when all channels scale together, as in the paper's base scheme.
func (c *Controller) BusFreq() config.FreqMHz { return c.channels[0].timing.BusFreq }

// ChannelFreq returns one channel's bus frequency.
func (c *Controller) ChannelFreq(ch int) config.FreqMHz { return c.channels[ch].timing.BusFreq }

// MCBusFreq returns the bus frequency that currently sets the MC
// clock (the fastest channel).
func (c *Controller) MCBusFreq() config.FreqMHz { return c.mcBusFreq }

// DevFreq returns channel 0's DRAM device frequency.
func (c *Controller) DevFreq() config.FreqMHz { return c.channels[0].timing.DevFreq }

// SetTelemetry attaches a recorder. Pass nil to detach.
func (c *Controller) SetTelemetry(tel *telemetry.Recorder) {
	c.tel = tel
	c.telCh = tel.ChannelCells(len(c.channels))
}

// SetQuiesceHorizon declares that nothing outside the event queue will
// observe controller or core state strictly before t: no counter
// snapshot, power flush, or instruction readout. Until the horizon the
// controller may collapse request completions into closed-form inline
// updates rather than discrete events. The caller (the epoch loop)
// must re-declare the horizon before each drain; it never moves
// backwards within a run. Zero — the default — keeps every completion
// on the fully event-driven path.
func (c *Controller) SetQuiesceHorizon(t config.Time) { c.quiesce = t }

// SetShardQueues hands each channel to the event queue of its owning
// shard: qs[chIdx] receives all of channel chIdx's event traffic. The
// caller (the sharded engine) guarantees the channels of one queue are
// advanced by one goroutine at a time and that the controller runs
// under the uniform governor.
func (c *Controller) SetShardQueues(qs []*event.Queue) {
	if len(qs) != len(c.channels) {
		panic(fmt.Sprintf("memctrl: %d shard queues for %d channels", len(qs), len(c.channels)))
	}
	copy(c.qs, qs)
	c.parallel = true
}

// mcTimeAt returns the MC pipeline time as seen by a channel: the
// shared clock serially, the shard-local replica under the sharded
// engine.
func (c *Controller) mcTimeAt(chIdx int) config.Time {
	if c.parallel {
		return c.mcTimes[chIdx]
	}
	return c.mcTime
}

// Counters returns a snapshot of the performance counters. The hot
// paths accumulate only the per-channel replicas (shard-local under
// the sharded engine); the aggregate set is derived here by summation,
// which is exact — integer sums are order-independent — so serial and
// sharded runs read identical values.
func (c *Controller) Counters() Counters {
	out := Counters{
		TLM:        make([]uint64, len(c.counters.TLM)),
		PerChannel: make([]ChannelCounters, len(c.counters.PerChannel)),
	}
	for i := range c.counters.PerChannel {
		pc := &c.counters.PerChannel[i]
		out.PerChannel[i] = pc.clone()
		out.BTO += pc.BTO
		out.BTC += pc.BTC
		out.CTO += pc.CTO
		out.CTC += pc.CTC
		out.RBHC += pc.RBHC
		out.OBMC += pc.OBMC
		out.CBMC += pc.CBMC
		out.EPDC += pc.EPDC
		out.POCC += pc.POCC
		out.Reads += pc.Reads
		out.Writebacks += pc.Writebacks
		for core, v := range pc.TLM {
			out.TLM[core] += v
		}
	}
	return out
}

// Timing returns the resolved timing of channel 0 (the system timing
// under uniform scaling).
func (c *Controller) Timing() dram.Resolved { return c.channels[0].timing }

// getRequest takes a recycled Request from a channel's pool, or
// allocates one while the pool warms up.
func (c *Controller) getRequest(chIdx int) *Request {
	pool := c.reqFree[chIdx]
	if n := len(pool); n > 0 {
		req := pool[n-1]
		c.reqFree[chIdx] = pool[:n-1]
		return req
	}
	return &Request{}
}

// putRequest recycles a completed Request into its channel's pool. The
// struct is zeroed so the pool retains no callback or location from
// the previous transaction.
func (c *Controller) putRequest(req *Request) {
	chIdx := req.Loc.Channel
	*req = Request{}
	c.reqFree[chIdx] = append(c.reqFree[chIdx], req)
}

// Enqueue submits a memory transaction. Reads invoke done when their
// data transfer completes; writebacks ignore done.
func (c *Controller) Enqueue(now config.Time, line uint64, write bool, core int, done func(config.Time)) {
	loc := c.mapper.Map(line)
	c.settleRank(now, loc.Channel, loc.Rank, false)
	ch := c.channels[loc.Channel]
	b := c.bankID(loc.Rank, loc.Bank)
	if bk := &ch.banks[b]; bk.defDispatch &&
		(write || (bk.prechAt == now && uint64(bk.prechSeq) > c.qs[loc.Channel].FiringSeq())) {
		// Two ways an arrival can invalidate the bank's deferred
		// dispatch: a competing writeback un-forces the choice, and an
		// arrival at the close instant — ahead of the elided event's
		// ticket — dispatches the head itself (the bank is free at that
		// instant), leaving the close with nothing to dispatch. Either
		// way, put the decision back on a live event.
		c.reviveDispatch(loc.Channel, b)
	}
	req := c.getRequest(loc.Channel)
	*req = Request{Loc: loc, Write: write, Core: core, Done: done, Arrived: now}
	pc := &c.counters.PerChannel[loc.Channel]

	// Section 3.1 accumulators: outstanding work seen by the arrival.
	// Only the per-channel replicas are written on the hot path — they
	// are shard-local under the sharded engine — and the aggregate set
	// is derived by summation when read (Counters).
	pc.BTC++
	pc.BTO += uint64(ch.outstanding[b])
	pc.CTC++
	busOut := ch.busQueue.Len()
	if ch.busFreeAt > now {
		busOut++
	}
	pc.CTO += uint64(busOut)
	if !write {
		pc.TLM[core]++
	}

	if c.tel != nil {
		// Channel-local depth: the count an arrival sees on its own
		// channel's queues. Reading only this channel's bookkeeping
		// keeps the observation shard-local under the sharded engine.
		depth := 0
		for _, p := range c.pending[loc.Channel] {
			depth += p
		}
		c.telCh[loc.Channel].ObserveQueueDepth(depth)
	}

	ch.outstanding[b]++
	c.pending[loc.Channel][loc.Rank]++

	if write {
		ch.banks[b].wb.Push(req)
		ch.wbCount++
	} else {
		ch.banks[b].queue.Push(req)
	}
	c.tryDispatch(now, loc.Channel, b)
}

// nextFor selects the next request to dispatch to a bank, applying the
// paper's scheduling rule: reads have priority over writebacks until
// the writeback queue is half full (Section 4.1). Writebacks are queued
// per bank, so taking the oldest writeback for this bank is O(1)
// instead of a scan-and-shift of one channel-wide slice.
func (c *Controller) nextFor(ch *channel, b bankID) *Request {
	bk := &ch.banks[b]
	wbFirst := ch.wbCount >= c.cfg.WritebackQueueCap/2
	if wbFirst && bk.wb.Len() > 0 {
		ch.wbCount--
		return bk.wb.Pop()
	}
	if bk.queue.Len() > 0 {
		return bk.queue.Pop()
	}
	if !wbFirst && bk.wb.Len() > 0 {
		ch.wbCount--
		return bk.wb.Pop()
	}
	return nil
}

// tryDispatch starts the next request for a bank if the bank, its
// rank, and the controller allow it.
func (c *Controller) tryDispatch(now config.Time, chIdx int, b bankID) {
	ch := c.channels[chIdx]
	if ch.relocking || ch.banks[b].dispatched {
		return
	}
	rankIdx := int(b) / c.cfg.BanksPerRank
	rank := c.ranks[chIdx][rankIdx]
	if rank.RefreshBlocked() {
		return
	}
	free, ok := rank.BankFreeAt(int(b) % c.cfg.BanksPerRank)
	if !ok {
		return // in service; FinishAccess will re-kick
	}
	if free > now {
		// A precharge or refresh window is still closing. An elided
		// close that now has work can stay elided if the dispatch choice
		// is forced — the arrival becomes the queue head the close will
		// dispatch — by upgrading to a dispatching deferral; otherwise
		// revive it so its firing re-decides live. Real events that set
		// freeAt, and dispatching deferrals, re-kick on their own.
		if bk := &ch.banks[b]; bk.prechDeferred && !bk.defDispatch {
			if bk.queue.Len() > 0 && bk.wb.Len() == 0 {
				bk.defDispatch = true
				bk.defReq = bk.queue.Peek()
				c.qs[chIdx].ScheduleViaSeq(bk.prechAt, bk.prechSeq, bk.prechAt+c.mcTimeAt(chIdx),
					c.onStartBank, bk.defReq, int32(chIdx), int32(b))
			} else {
				c.materializePrecharge(bk, chIdx, rankIdx, b)
			}
		}
		return
	}
	req := c.nextFor(ch, b)
	if req == nil {
		c.maybePowerdown(now, chIdx, rankIdx)
		return
	}
	ch.banks[b].dispatched = true
	c.dispatched[chIdx][rankIdx]++
	// The MC pipeline spends mcTime per request before the device
	// sees it (five MC cycles, Section 3.3).
	c.qs[chIdx].ScheduleBound(now+c.mcTimeAt(chIdx), c.onStartBank, req, int32(chIdx), int32(b))
}

func (c *Controller) startBankServiceEvent(now config.Time, env any, a, b int32) {
	c.startBankService(now, int(a), bankID(b), env.(*Request))
}

// startBankService issues the request to the DRAM bank.
func (c *Controller) startBankService(now config.Time, chIdx int, b bankID, req *Request) {
	ch := c.channels[chIdx]
	if ch.relocking {
		// The relock began after dispatch; resume when it ends.
		c.qs[chIdx].ScheduleBound(ch.relockUntil, c.onStartBank, req, int32(chIdx), int32(b))
		return
	}
	rankIdx := int(b) / c.cfg.BanksPerRank
	c.settleRank(now, chIdx, rankIdx, false)
	rank := c.ranks[chIdx][rankIdx]
	ready, kind, pdExit := rank.StartAccess(now, int(b)%c.cfg.BanksPerRank, req.Loc.Row)

	pc := &c.counters.PerChannel[chIdx]
	switch kind {
	case dram.RowHit:
		pc.RBHC++
	case dram.ClosedMiss:
		pc.CBMC++
	case dram.OpenMiss:
		pc.OBMC++
	}
	if kind != dram.RowHit {
		pc.POCC++
	}
	if pdExit {
		pc.EPDC++
		if c.tel != nil {
			c.telCh[chIdx].PowerdownExit(now, rankIdx)
		}
	}

	// Decoupled DIMMs: the device-side transfer into the
	// synchronization buffer runs at the slower device clock; the
	// channel burst cannot begin until it completes.
	if extra := ch.timing.DevBurst - ch.timing.Burst; extra > 0 {
		ready += extra
	}
	req.ready = ready
	c.qs[chIdx].ScheduleBound(ready, c.onBusReady, req, int32(chIdx), 0)
}

// busReadyEvent queues a bank-service-complete request for the channel
// bus and tries to grant it.
func (c *Controller) busReadyEvent(now config.Time, env any, a, _ int32) {
	chIdx := int(a)
	c.channels[chIdx].busQueue.Push(env.(*Request))
	c.tryGrantBus(now, chIdx)
}

// tryGrantBus gives the channel bus to the oldest ready request. The
// bank stays blocked until its request is accepted here — the
// transfer-blocking behaviour of the Figure 4 queueing model.
func (c *Controller) tryGrantBus(now config.Time, chIdx int) {
	ch := c.channels[chIdx]
	if ch.relocking || ch.busQueue.Len() == 0 {
		return
	}
	if ch.busFreeAt > now {
		// The bus is busy and a request is waiting: arm the grant for
		// the instant the bus frees, unless one is already pending. The
		// reserved ticket puts it exactly where the eager formulation's
		// unconditional grant event would have fired.
		if !ch.grantArmed {
			ch.grantArmed = true
			c.qs[chIdx].ScheduleBoundSeq(ch.busFreeAt, ch.grantSeq, c.onGrantBus, nil, int32(chIdx), 0)
		}
		return
	}
	req := ch.busQueue.Pop()
	c.settleRank(now, chIdx, req.Loc.Rank, false)

	busStart := now
	busEnd := busStart + ch.timing.Burst
	ch.busFreeAt = busEnd
	ch.busBusy += busEnd - busStart

	b := c.bankID(req.Loc.Rank, req.Loc.Bank)
	rankIdx := req.Loc.Rank
	rank := c.ranks[chIdx][rankIdx]

	// Closed-page management: keep the row open only if the next
	// request already queued for this bank targets the same row
	// (Section 4.1); otherwise auto-precharge.
	keepOpen := false
	if q := &ch.banks[b].queue; q.Len() > 0 && q.Peek().Loc.Row == req.Loc.Row && !rank.RefreshBlocked() {
		keepOpen = true
	}

	prechargeDone := rank.FinishAccess(int(b)%c.cfg.BanksPerRank, busStart, busEnd, req.Write, keepOpen)

	// Termination on the channel's other ranks (Section 2.1).
	for r, other := range c.ranks[chIdx] {
		if r != rankIdx {
			other.AccountTermination(busEnd - busStart)
		}
	}

	ch.banks[b].dispatched = false
	c.dispatched[chIdx][rankIdx]--
	ch.outstanding[b]--
	c.pending[chIdx][rankIdx]--
	pc := &c.counters.PerChannel[chIdx]
	if req.Write {
		pc.Writebacks++
	} else {
		pc.Reads++
		if c.tel != nil {
			c.telCh[chIdx].ObserveReadLatency(busEnd - req.Arrived)
		}
	}

	if keepOpen {
		c.qs[chIdx].ScheduleBound(busEnd, c.onBankKick, nil, int32(chIdx), int32(b))
	} else if c.tel == nil && prechargeDone <= c.quiesce && ch.outstanding[b] == 0 {
		// Deferred precharge close: the bank has no queued work, so the
		// event's only effects would be the row close (a pure state
		// transition at a known time) and the powerdown check. Elide the
		// event, reserving its ordering ticket; the rank's next touch
		// settles it retroactively, or revives it as a real event if
		// work arrives before the instant passes. Inside the quiesce
		// horizon nothing samples the rank before settlement, and with
		// no telemetry attached no observer sees the transition late.
		bk := &ch.banks[b]
		bk.prechDeferred = true
		bk.prechAt = prechargeDone
		bk.prechSeq = c.qs[chIdx].ReserveSeq()
		ch.defAts[b] = prechargeDone
		ch.defSeqs[b] = uint64(bk.prechSeq)
		c.deferAdded(chIdx, rankIdx, prechargeDone)
	} else if bk := &ch.banks[b]; c.tel == nil && prechargeDone <= c.quiesce &&
		bk.queue.Len() > 0 && bk.wb.Len() == 0 && !rank.RefreshBlocked() {
		// Deferred dispatching precharge: reads are queued and no
		// writeback competes, so the elided event's dispatch choice is
		// forced — the queue head, whatever arrives later. The head's
		// start-bank event rides the deferred-schedule plane, activating
		// at the elided event's exact ticket position; settlement
		// replays the row close, the pop, and the bookkeeping. A
		// writeback arrival or a refresh obligation before the instant
		// un-forces the choice and revives the real event instead.
		bk.prechDeferred = true
		bk.defDispatch = true
		bk.prechAt = prechargeDone
		bk.prechSeq = c.qs[chIdx].ReserveSeq()
		bk.defReq = bk.queue.Peek()
		ch.defAts[b] = prechargeDone
		ch.defSeqs[b] = uint64(bk.prechSeq)
		c.deferAdded(chIdx, rankIdx, prechargeDone)
		c.qs[chIdx].ScheduleViaSeq(prechargeDone, bk.prechSeq, prechargeDone+c.mcTimeAt(chIdx),
			c.onStartBank, bk.defReq, int32(chIdx), int32(b))
	} else {
		c.qs[chIdx].ScheduleBound(prechargeDone, c.onPrecharge, nil, int32(chIdx), int32(b))
	}

	if req.Done != nil && !req.Write && busEnd > c.quiesce {
		// The completion event carries the Request itself so a
		// checkpoint can name it; onDone recycles it after delivering.
		c.qs[chIdx].ScheduleBound(busEnd, c.onDone, req, 0, 0)
	} else {
		if req.Done != nil && !req.Write {
			// Closed-form completion: the transfer's end time is already
			// known, and inside the quiesce horizon nobody can observe
			// the core before busEnd, so deliver the data inline instead
			// of scheduling a wakeup. The callback begins the core's next
			// compute segment, whose issue event consumes the one
			// ordering ticket the eager formulation spent right here —
			// so every event scheduled between now and busEnd keeps its
			// exact same-instant position.
			req.Done(busEnd)
		}
		// The transaction is through: recycle its Request. Everything
		// that still needs to run (completion callback, precharge, bus
		// grant) was captured into events above.
		c.putRequest(req)
	}

	c.refreshKick(now, chIdx, rankIdx)

	// The bus frees at busEnd; if another request is already waiting,
	// grant it then. With an empty queue no event is scheduled — only
	// the ordering ticket is taken, so that a request becoming ready
	// mid-burst can arm the grant from its busReadyEvent at the exact
	// same-instant position, while one that becomes ready after busEnd
	// takes the free bus immediately with no wakeup at all.
	// Exactly one ordering ticket is consumed per grant either way, so
	// the schedule counter — and with it every same-instant FIFO
	// tie-break downstream — advances in lockstep with the eager
	// formulation.
	if ch.busQueue.Len() > 0 && !ch.grantArmed {
		ch.grantArmed = true
		c.qs[chIdx].ScheduleBound(busEnd, c.onGrantBus, nil, int32(chIdx), 0)
	} else {
		ch.grantSeq = c.qs[chIdx].ReserveSeq()
	}
}

// bankKickEvent re-attempts dispatch on one bank (after a kept-open row
// finished its burst).
func (c *Controller) bankKickEvent(now config.Time, _ any, a, b int32) {
	c.settleRank(now, int(a), int(b)/c.cfg.BanksPerRank, false)
	c.tryDispatch(now, int(a), bankID(b))
}

// prechargeEvent completes a bank's auto-precharge, re-kicks dispatch,
// and reconsiders powerdown.
func (c *Controller) prechargeEvent(now config.Time, _ any, a, b int32) {
	chIdx, bk := int(a), bankID(b)
	rankIdx := int(bk) / c.cfg.BanksPerRank
	c.settleRank(now, chIdx, rankIdx, false)
	c.ranks[chIdx][rankIdx].PrechargeDone(now, int(bk)%c.cfg.BanksPerRank)
	c.tryDispatch(now, chIdx, bk)
	c.maybePowerdown(now, chIdx, rankIdx)
}

// settleRank applies any deferred precharge closes for a rank whose
// instant has been reached, exactly as the elided events would have,
// in the (time, ticket) order those events would have fired in. It is
// called at the top of every path that reads or mutates rank state or
// the rank's pending/dispatched bookkeeping, so between a deferred
// instant and its settlement the rank is provably untouched and the
// retroactive evaluation sees exactly the state the event would have
// seen. boundary is true when settling at a drain deadline
// (FlushInterval), where every event at the deadline has already
// fired, so deferred work due exactly now is retroactive rather than
// still pending in the queue.
// deferAdded records a new deferred close for the rank, tightening the
// earliest-instant bound.
func (c *Controller) deferAdded(chIdx, rankIdx int, at config.Time) {
	g := chIdx*c.cfg.RanksPerChannel() + rankIdx
	if at < c.defGate[g] {
		c.defGate[g] = at
	}
	c.defPrech[chIdx][rankIdx]++
}

// settleRank settles every deferred close of the rank that is due at or
// before now; the inlineable gate makes the no-deferral-due common case
// a single compare at each rank-touch site.
func (c *Controller) settleRank(now config.Time, chIdx, rankIdx int, boundary bool) {
	if c.defGate[chIdx*c.ranksPerCh+rankIdx] > now {
		return
	}
	c.settleRankSlow(now, chIdx, rankIdx, boundary)
}

func (c *Controller) settleRankSlow(now config.Time, chIdx, rankIdx int, boundary bool) {
	ch := c.channels[chIdx]
	base := rankIdx * c.cfg.BanksPerRank
	for c.defPrech[chIdx][rankIdx] > 0 {
		best := base
		bestAt := ch.defAts[base]
		for i := base + 1; i < base+c.cfg.BanksPerRank; i++ {
			if at := ch.defAts[i]; at < bestAt ||
				(at == bestAt && ch.defSeqs[i] < ch.defSeqs[best]) {
				best, bestAt = i, at
			}
		}
		b := bankID(best)
		bk := &ch.banks[b]
		if bk.prechAt > now {
			c.defGate[chIdx*c.ranksPerCh+rankIdx] = bk.prechAt // exact again
			return                                             // still in the future; revival on arrival handles it
		}
		if !boundary && bk.prechAt == now && uint64(bk.prechSeq) > c.qs[chIdx].FiringSeq() {
			if bk.defDispatch {
				// The dispatching close fires later this instant; its
				// start-bank activation is still queued in the deferred
				// plane, and a later same-instant touch (at the latest,
				// the start-bank fire itself) settles the bookkeeping.
				return
			}
			// The elided event's same-instant position hasn't been passed
			// yet: make it real so it fires in place.
			c.materializePrecharge(bk, chIdx, rankIdx, b)
			continue
		}
		// The instant is behind us: replay the close at its own
		// timestamp. The rank was untouched since, so the retroactive
		// evaluation sees exactly the state the event would have seen.
		at := bk.prechAt
		bk.prechDeferred = false
		ch.defAts[b] = noDeferral
		c.defPrech[chIdx][rankIdx]--
		c.ranks[chIdx][rankIdx].PrechargeDone(at, int(b)%c.cfg.BanksPerRank)
		if bk.defDispatch {
			// Replay the forced dispatch: the head is popped and the
			// bank marked busy; the start-bank event itself already
			// materialized at the elided event's exact position.
			bk.defDispatch = false
			if popped := bk.queue.Pop(); popped != bk.defReq {
				panic("memctrl: deferred dispatch head changed before settlement")
			}
			bk.defReq = nil
			bk.dispatched = true
			c.dispatched[chIdx][rankIdx]++
		} else {
			// The bank had no queued work at prechAt (an arrival would
			// have settled or materialized first), so the elided event's
			// dispatch attempt reduces to the powerdown check.
			c.maybePowerdown(at, chIdx, rankIdx)
		}
	}
	c.defGate[chIdx*c.ranksPerCh+rankIdx] = noDeferral
}

// materializePrecharge converts a deferred precharge close back into a
// real event at its reserved (time, ticket) position.
func (c *Controller) materializePrecharge(bk *bank, chIdx, rankIdx int, b bankID) {
	bk.prechDeferred = false
	c.channels[chIdx].defAts[b] = noDeferral
	c.defPrech[chIdx][rankIdx]--
	c.qs[chIdx].ScheduleBoundSeq(bk.prechAt, bk.prechSeq, c.onPrecharge, nil, int32(chIdx), int32(b))
}

// reviveDispatch converts a deferred dispatching close back into a real
// precharge event: its forced-choice premise broke (a writeback arrived
// for the bank, or the rank acquired a refresh obligation), so the
// dispatch decision must be re-made live at the elided event's own
// position. The start-bank activation is withdrawn from the deferred
// plane; the revived event re-runs the full dispatch path.
func (c *Controller) reviveDispatch(chIdx int, b bankID) {
	ch := c.channels[chIdx]
	bk := &ch.banks[b]
	if !c.qs[chIdx].CancelDeferred(bk.prechSeq) {
		panic("memctrl: deferred dispatch activation already materialized")
	}
	bk.prechDeferred = false
	bk.defDispatch = false
	bk.defReq = nil
	ch.defAts[b] = noDeferral
	c.defPrech[chIdx][int(b)/c.cfg.BanksPerRank]--
	c.qs[chIdx].ScheduleBoundSeq(bk.prechAt, bk.prechSeq, c.onPrecharge, nil, int32(chIdx), int32(b))
}

// reviveRankDispatches revives every deferred dispatching close of a
// rank. Called after settleRank on the refresh paths: a refresh
// obligation blocks dispatch, so any not-yet-due forced dispatch must
// be re-decided by a live event.
func (c *Controller) reviveRankDispatches(chIdx, rankIdx int) {
	if c.defPrech[chIdx][rankIdx] == 0 {
		return
	}
	ch := c.channels[chIdx]
	base := rankIdx * c.cfg.BanksPerRank
	for i := 0; i < c.cfg.BanksPerRank; i++ {
		if ch.banks[base+i].defDispatch {
			c.reviveDispatch(chIdx, bankID(base+i))
		}
	}
}

// grantBusEvent grants the freed channel bus to the next ready request.
func (c *Controller) grantBusEvent(now config.Time, _ any, a, _ int32) {
	c.channels[int(a)].grantArmed = false
	c.tryGrantBus(now, int(a))
}

// maybePowerdown drops an idle rank into the configured powerdown
// state, as today's aggressive controllers do (Section 4.2.3).
func (c *Controller) maybePowerdown(now config.Time, chIdx, rankIdx int) {
	if c.cfg.Powerdown == config.PowerdownNone || c.channels[chIdx].relocking {
		return
	}
	if c.pending[chIdx][rankIdx] > 0 || c.dispatched[chIdx][rankIdx] > 0 {
		return
	}
	rank := c.ranks[chIdx][rankIdx]
	slow := c.cfg.Powerdown == config.PowerdownSlow
	if rank.EnterPowerdown(now, slow) && c.tel != nil {
		c.telCh[chIdx].PowerdownEnter(now, rankIdx, slow)
	}
}

// refreshTickEvent is the bound form of refreshTimer.
func (c *Controller) refreshTickEvent(now config.Time, _ any, a, b int32) {
	c.refreshTimer(now, int(a), int(b))
}

// refreshTimer fires every tREFI per rank.
func (c *Controller) refreshTimer(now config.Time, chIdx, rankIdx int) {
	c.settleRank(now, chIdx, rankIdx, false)
	c.reviveRankDispatches(chIdx, rankIdx)
	c.qs[chIdx].ScheduleBound(now+c.cfg.Timing.RefreshInterval(), c.onRefreshTick, nil, int32(chIdx), int32(rankIdx))
	c.ranks[chIdx][rankIdx].SetRefreshPending()
	c.refreshKick(now, chIdx, rankIdx)
}

// refreshKick attempts to issue a pending refresh once the rank's
// pipeline has drained.
func (c *Controller) refreshKick(now config.Time, chIdx, rankIdx int) {
	rank := c.ranks[chIdx][rankIdx]
	if !rank.RefreshBlocked() || c.dispatched[chIdx][rankIdx] > 0 {
		return
	}
	until, ok := rank.TryStartRefresh(now)
	if !ok {
		return // still in service; the next FinishAccess re-kicks
	}
	if c.tel != nil {
		c.telCh[chIdx].Refresh(now, rankIdx, until-now)
	}
	c.qs[chIdx].ScheduleBound(until, c.onRefreshDone, nil, int32(chIdx), int32(rankIdx))
}

// refreshDoneEvent completes a running refresh: a round that became
// pending mid-refresh starts now, before any dispatch or powerdown
// decision.
func (c *Controller) refreshDoneEvent(now config.Time, _ any, a, b int32) {
	chIdx, rankIdx := int(a), int(b)
	c.settleRank(now, chIdx, rankIdx, false)
	c.ranks[chIdx][rankIdx].RefreshDone(now)
	c.refreshKick(now, chIdx, rankIdx)
	c.kickRank(now, chIdx, rankIdx)
	c.maybePowerdown(now, chIdx, rankIdx)
}

// kickRank re-attempts dispatch on every bank of a rank (after a
// refresh or relock released it).
func (c *Controller) kickRank(now config.Time, chIdx, rankIdx int) {
	for bank := 0; bank < c.cfg.BanksPerRank; bank++ {
		c.tryDispatch(now, chIdx, c.bankID(rankIdx, bank))
	}
}

// FlushInterval closes the power-accounting interval at now and
// returns it: per-channel rank accounts, bus occupancies, and
// operating points, plus the MC reference frequency. Call before every
// frequency change and at reporting boundaries.
func (c *Controller) FlushInterval(now config.Time) power.Interval {
	if c.parallel {
		// Relocks completing inside a window refresh only their shard's
		// clock replica; settle the shared MC clock now that every shard
		// sits at the window edge.
		c.updateMCClock()
	}
	iv := power.Interval{
		Duration:  now - c.flushedAt,
		MCBusFreq: c.mcBusFreq,
		Channels:  make([]power.ChannelSlice, len(c.channels)),
	}
	for chIdx, ch := range c.channels {
		slice := power.ChannelSlice{
			BusFreq: ch.timing.BusFreq,
			DevFreq: ch.timing.DevFreq,
			Busy:    ch.busBusy,
		}
		ch.busBusy = 0
		for rankIdx, rank := range c.ranks[chIdx] {
			c.settleRank(now, chIdx, rankIdx, true)
			slice.DRAM.Add(rank.Flush(now))
		}
		iv.Channels[chIdx] = slice
	}
	c.flushedAt = now
	return iv
}

// RelockPenalty returns the halt duration of a switch to bus frequency
// f: 512 cycles at the new frequency plus 28 ns (Section 4.1).
func (c *Controller) RelockPenalty(f config.FreqMHz) config.Time {
	return f.Cycles(int64(c.cfg.Policy.RelockCycles)) + c.cfg.Policy.RelockExtra
}

// SetBusFrequency initiates a frequency switch of every channel — the
// paper's base mechanism. Memory dispatch halts for the relock
// penalty; queued requests wait and resume at the new operating point.
// The caller must flush the power interval first. It returns the time
// the new frequency becomes active. Switching to the current frequency
// is a no-op.
func (c *Controller) SetBusFrequency(now config.Time, f config.FreqMHz) config.Time {
	return c.SetBusFrequencyStalled(now, f, 0)
}

// SetBusFrequencyStalled is SetBusFrequency with an extra halt added
// to every channel's relock window — the fault plane's model of
// PLL/DLL relock attempts that fail and are retried with backoff
// before the lock finally takes. The frequency still lands; the
// channels just stay dark longer.
func (c *Controller) SetBusFrequencyStalled(now config.Time, f config.FreqMHz, extra config.Time) config.Time {
	applied := now
	for ch := range c.channels {
		if at := c.setChannelFrequency(now, ch, f, extra); at > applied {
			applied = at
		}
	}
	return applied
}

// SetChannelFrequency relocks a single channel to bus frequency f (the
// Section 6 future-work mechanism). Requirements are as for
// SetBusFrequency. Returns when the channel resumes.
func (c *Controller) SetChannelFrequency(now config.Time, chIdx int, f config.FreqMHz) config.Time {
	return c.setChannelFrequency(now, chIdx, f, 0)
}

func (c *Controller) setChannelFrequency(now config.Time, chIdx int, f config.FreqMHz, extra config.Time) config.Time {
	if !config.ValidBusFrequency(f) {
		panic(fmt.Sprintf("memctrl: invalid bus frequency %v", f))
	}
	if extra < 0 {
		panic(fmt.Sprintf("memctrl: negative relock stall %v", extra))
	}
	ch := c.channels[chIdx]
	if f == ch.timing.BusFreq {
		return now
	}
	if ch.relocking {
		panic(fmt.Sprintf("memctrl: channel %d frequency change while already relocking", chIdx))
	}
	if c.flushedAt != now {
		panic(fmt.Sprintf("memctrl: frequency change at %v without flush (last flush %v)", now, c.flushedAt))
	}
	halt := c.RelockPenalty(f) + extra
	ch.relocking = true
	ch.relockUntil = now + halt
	if c.tel != nil {
		c.telCh[chIdx].FreqTransition(now, ch.timing.BusFreq, f, halt)
	}
	c.qs[chIdx].ScheduleBound(ch.relockUntil, c.onRelockDone, nil, int32(chIdx), int32(f))
	return ch.relockUntil
}

// StallChannels halts dispatch on every channel until now+stall
// without changing any operating point — the fault plane's abandoned
// relock, where every bounded retry failed and the old frequency
// stays. Queued requests wait out the stall and resume unchanged.
// Channels must not already be relocking.
func (c *Controller) StallChannels(now config.Time, stall config.Time) {
	if stall <= 0 {
		return
	}
	for chIdx, ch := range c.channels {
		if ch.relocking {
			panic(fmt.Sprintf("memctrl: channel %d stall while already relocking", chIdx))
		}
		ch.relocking = true
		ch.relockUntil = now + stall
		// b == 0 marks a pure stall: the operating point is unchanged,
		// so onRelockDone skips the timing/MC-clock update.
		c.qs[chIdx].ScheduleBound(ch.relockUntil, c.onRelockDone, nil, int32(chIdx), 0)
	}
}

// onRelockDoneEvent completes a channel's relock window. b carries the
// new bus frequency, or 0 for the fault plane's abandoned-relock stall
// (the old operating point stays). Dispatch resumes via a same-instant
// kick event so that when several channels finish relocking at the
// same timestamp (the uniform switch), the MC clock settles before any
// request re-dispatches.
func (c *Controller) onRelockDoneEvent(now config.Time, _ any, a, b int32) {
	ch := c.channels[a]
	if b != 0 {
		f := config.FreqMHz(b)
		ch.timing = dram.Resolve(c.cfg.Timing, f, c.devFreqFor(f))
		ch.relocking = false
		if c.parallel {
			// Other channels belong to other shards mid-window, so only
			// the shard-local clock replica is refreshed here. Parallel
			// runs use the uniform governor: every channel relocks to the
			// same frequency, so the local value is the global one; the
			// shared clock is re-derived at the next window edge
			// (FlushInterval).
			c.mcTimes[a] = c.cfg.Timing.MCTime(f)
		} else {
			c.updateMCClock()
		}
	} else {
		ch.relocking = false
	}
	c.qs[a].AfterBound(0, c.onRelockKick, nil, a, 0)
}

// onRelockKickEvent re-kicks every rank and the bus of a channel whose
// relock window just closed.
func (c *Controller) onRelockKickEvent(now config.Time, _ any, a, _ int32) {
	for rankIdx := range c.ranks[a] {
		c.kickRank(now, int(a), rankIdx)
	}
	c.tryGrantBus(now, int(a))
}

// onDoneEvent delivers a read completion to its core and recycles the
// Request that carried it.
func (c *Controller) onDoneEvent(now config.Time, env any, _, _ int32) {
	req := env.(*Request)
	done := req.Done
	c.putRequest(req)
	done(now)
}

// ForceRefresh models a retention emergency: every rank immediately
// owes an all-bank refresh on top of its tREFI schedule. It returns
// how many ranks were newly marked — ranks that already owed a refresh
// absorb the emergency into the outstanding obligation.
func (c *Controller) ForceRefresh(now config.Time) (marked int) {
	for chIdx := range c.ranks {
		for rankIdx, rank := range c.ranks[chIdx] {
			c.settleRank(now, chIdx, rankIdx, false)
			c.reviveRankDispatches(chIdx, rankIdx)
			if rank.SetRefreshPending() {
				marked++
			}
			c.refreshKick(now, chIdx, rankIdx)
		}
	}
	return marked
}

// updateMCClock re-derives the MC clock from the fastest channel.
func (c *Controller) updateMCClock() {
	max := config.MinBusFreq
	for _, ch := range c.channels {
		if ch.timing.BusFreq > max {
			max = ch.timing.BusFreq
		}
	}
	c.mcBusFreq = max
	c.mcTime = c.cfg.Timing.MCTime(max)
	for i := range c.mcTimes {
		c.mcTimes[i] = c.mcTime
	}
}

// Relocking reports whether any channel's frequency switch is in
// progress.
func (c *Controller) Relocking() bool {
	for _, ch := range c.channels {
		if ch.relocking {
			return true
		}
	}
	return false
}

// QueuedRequests returns the number of requests queued or in flight.
func (c *Controller) QueuedRequests() int {
	n := 0
	for _, pend := range c.pending {
		for _, p := range pend {
			n += p
		}
	}
	return n
}
