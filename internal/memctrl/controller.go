// Package memctrl implements the integrated memory controller: per-bank
// request queues with closed-page row management, FCFS reads with
// writeback draining, the transfer-blocking bank/bus interaction of the
// paper's queueing model (Figure 4), rank powerdown management, refresh
// scheduling, the Section 3.1 performance counters, and the
// PLL/DLL-relock frequency-switching mechanism that MemScale adds.
//
// Frequencies are tracked per channel: the paper's base scheme always
// drives all channels together (SetBusFrequency), while the Section 6
// future-work extension can relock channels independently
// (SetChannelFrequency). The MC clock follows the fastest channel.
package memctrl

import (
	"fmt"

	"memscale/internal/config"
	"memscale/internal/dram"
	"memscale/internal/event"
	"memscale/internal/power"
	"memscale/internal/telemetry"
)

// Request is one memory transaction in flight through the controller.
type Request struct {
	Loc   config.Location
	Write bool
	Core  int

	// Done is invoked when the data transfer completes (reads only;
	// writebacks are fire-and-forget).
	Done func(now config.Time)

	Arrived config.Time
	ready   config.Time // device data ready for the bus
}

// bankID flattens (rank, bank) within one channel.
type bankID int

func (c *Controller) bankID(rank, bank int) bankID {
	return bankID(rank*c.cfg.BanksPerRank + bank)
}

type bank struct {
	queue      reqRing // FIFO of reads waiting for this bank
	wb         reqRing // FIFO of writebacks targeting this bank
	dispatched bool    // a request occupies MC pipeline/bank/bus-wait
}

type channel struct {
	banks   []bank
	wbCount int // writebacks queued across all banks

	busFreeAt config.Time
	busQueue  reqRing // bank-service-complete, waiting for the bus

	busBusy config.Time // accumulated burst occupancy since last flush

	outstanding []int // per bank: queued + dispatched requests

	timing      dram.Resolved // operating point of this channel
	relocking   bool
	relockUntil config.Time
}

// Controller is the memory controller for all channels.
type Controller struct {
	cfg    *config.Config
	q      *event.Queue
	mapper *config.AddressMapper

	channels []*channel
	ranks    [][]*dram.Rank // [channel][rank]

	// MC clock: double the fastest channel's bus frequency.
	mcBusFreq config.FreqMHz
	mcTime    config.Time

	// Per-rank dispatch bookkeeping for refresh/powerdown decisions.
	dispatched [][]int // requests dispatched but not yet through the bus
	pending    [][]int // requests queued or dispatched per rank

	counters Counters

	flushedAt config.Time // start of the current power interval

	// tel, when non-nil, receives latency/queue-depth samples and
	// powerdown/refresh/relock events. Purely observational: no
	// scheduling decision reads it.
	tel *telemetry.Recorder

	// reqFree recycles Request objects: every transaction that clears
	// the bus returns its Request here, so the steady state allocates
	// none.
	reqFree []*Request

	// Pre-bound event callbacks, created once so the hot path schedules
	// without capturing a closure (see event.Bound).
	onStartBank   event.Bound
	onBusReady    event.Bound
	onBankKick    event.Bound
	onPrecharge   event.Bound
	onGrantBus    event.Bound
	onRefreshTick event.Bound
	onRefreshDone event.Bound
}

// New builds a controller for cfg, scheduling on q. Every channel
// boots at the nominal maximum frequency.
func New(cfg *config.Config, q *event.Queue) *Controller {
	c := &Controller{
		cfg:       cfg,
		q:         q,
		mapper:    config.NewAddressMapper(cfg),
		mcBusFreq: config.MaxBusFreq,
	}
	c.mcTime = cfg.Timing.MCTime(config.MaxBusFreq)
	c.onStartBank = c.startBankServiceEvent
	c.onBusReady = c.busReadyEvent
	c.onBankKick = c.bankKickEvent
	c.onPrecharge = c.prechargeEvent
	c.onGrantBus = c.grantBusEvent
	c.onRefreshTick = c.refreshTickEvent
	c.onRefreshDone = c.refreshDoneEvent

	banksPerChannel := cfg.RanksPerChannel() * cfg.BanksPerRank
	c.channels = make([]*channel, cfg.Channels)
	c.ranks = make([][]*dram.Rank, cfg.Channels)
	c.dispatched = make([][]int, cfg.Channels)
	c.pending = make([][]int, cfg.Channels)
	for chIdx := range c.channels {
		ch := &channel{
			banks:       make([]bank, banksPerChannel),
			outstanding: make([]int, banksPerChannel),
			timing:      dram.Resolve(cfg.Timing, config.MaxBusFreq, c.devFreqFor(config.MaxBusFreq)),
		}
		c.channels[chIdx] = ch
		c.ranks[chIdx] = make([]*dram.Rank, cfg.RanksPerChannel())
		c.dispatched[chIdx] = make([]int, cfg.RanksPerChannel())
		c.pending[chIdx] = make([]int, cfg.RanksPerChannel())
		for r := range c.ranks[chIdx] {
			c.ranks[chIdx][r] = dram.NewRank(cfg.BanksPerRank, &ch.timing)
		}
	}
	c.counters.TLM = make([]uint64, cfg.Cores)
	c.counters.PerChannel = make([]ChannelCounters, cfg.Channels)
	for i := range c.counters.PerChannel {
		c.counters.PerChannel[i].TLM = make([]uint64, cfg.Cores)
	}
	return c
}

// devFreqFor returns the DRAM device frequency paired with a bus
// frequency (lower and fixed under Decoupled DIMMs).
func (c *Controller) devFreqFor(bus config.FreqMHz) config.FreqMHz {
	if c.cfg.DecoupledDevFreq != 0 {
		return c.cfg.DecoupledDevFreq
	}
	return bus
}

// Start arms the per-rank refresh timers, staggered so ranks refresh
// round-robin across the tREFI interval as real controllers do.
func (c *Controller) Start() {
	interval := c.cfg.Timing.RefreshInterval()
	n := config.Time(c.cfg.TotalRanks())
	i := config.Time(0)
	for ch := range c.ranks {
		for r := range c.ranks[ch] {
			first := c.q.Now() + interval*(i+1)/n
			i++
			c.q.ScheduleBound(first, c.onRefreshTick, nil, int32(ch), int32(r))
			// Ranks that never see traffic still power down under the
			// powerdown policies.
			c.maybePowerdown(c.q.Now(), ch, r)
		}
	}
}

// BusFreq returns channel 0's bus frequency — the system frequency
// when all channels scale together, as in the paper's base scheme.
func (c *Controller) BusFreq() config.FreqMHz { return c.channels[0].timing.BusFreq }

// ChannelFreq returns one channel's bus frequency.
func (c *Controller) ChannelFreq(ch int) config.FreqMHz { return c.channels[ch].timing.BusFreq }

// MCBusFreq returns the bus frequency that currently sets the MC
// clock (the fastest channel).
func (c *Controller) MCBusFreq() config.FreqMHz { return c.mcBusFreq }

// DevFreq returns channel 0's DRAM device frequency.
func (c *Controller) DevFreq() config.FreqMHz { return c.channels[0].timing.DevFreq }

// SetTelemetry attaches a recorder. Pass nil to detach.
func (c *Controller) SetTelemetry(tel *telemetry.Recorder) { c.tel = tel }

// Counters returns a snapshot of the performance counters.
func (c *Controller) Counters() Counters { return c.counters.Clone() }

// Timing returns the resolved timing of channel 0 (the system timing
// under uniform scaling).
func (c *Controller) Timing() dram.Resolved { return c.channels[0].timing }

// getRequest takes a recycled Request from the pool, or allocates one
// while the pool warms up.
func (c *Controller) getRequest() *Request {
	if n := len(c.reqFree); n > 0 {
		req := c.reqFree[n-1]
		c.reqFree = c.reqFree[:n-1]
		return req
	}
	return &Request{}
}

// putRequest recycles a completed Request. The struct is zeroed so the
// pool retains no callback or location from the previous transaction.
func (c *Controller) putRequest(req *Request) {
	*req = Request{}
	c.reqFree = append(c.reqFree, req)
}

// Enqueue submits a memory transaction. Reads invoke done when their
// data transfer completes; writebacks ignore done.
func (c *Controller) Enqueue(now config.Time, line uint64, write bool, core int, done func(config.Time)) {
	loc := c.mapper.Map(line)
	req := c.getRequest()
	*req = Request{Loc: loc, Write: write, Core: core, Done: done, Arrived: now}
	ch := c.channels[loc.Channel]
	b := c.bankID(loc.Rank, loc.Bank)
	pc := &c.counters.PerChannel[loc.Channel]

	// Section 3.1 accumulators: outstanding work seen by the arrival.
	c.counters.BTC++
	c.counters.BTO += uint64(ch.outstanding[b])
	c.counters.CTC++
	busOut := ch.busQueue.Len()
	if ch.busFreeAt > now {
		busOut++
	}
	c.counters.CTO += uint64(busOut)
	pc.BTC++
	pc.BTO += uint64(ch.outstanding[b])
	pc.CTC++
	pc.CTO += uint64(busOut)
	if !write {
		c.counters.TLM[core]++
		pc.TLM[core]++
	}

	if c.tel != nil {
		c.tel.ObserveQueueDepth(c.QueuedRequests())
	}

	ch.outstanding[b]++
	c.pending[loc.Channel][loc.Rank]++

	if write {
		ch.banks[b].wb.Push(req)
		ch.wbCount++
	} else {
		ch.banks[b].queue.Push(req)
	}
	c.tryDispatch(now, loc.Channel, b)
}

// nextFor selects the next request to dispatch to a bank, applying the
// paper's scheduling rule: reads have priority over writebacks until
// the writeback queue is half full (Section 4.1). Writebacks are queued
// per bank, so taking the oldest writeback for this bank is O(1)
// instead of a scan-and-shift of one channel-wide slice.
func (c *Controller) nextFor(ch *channel, b bankID) *Request {
	bk := &ch.banks[b]
	wbFirst := ch.wbCount >= c.cfg.WritebackQueueCap/2
	if wbFirst && bk.wb.Len() > 0 {
		ch.wbCount--
		return bk.wb.Pop()
	}
	if bk.queue.Len() > 0 {
		return bk.queue.Pop()
	}
	if !wbFirst && bk.wb.Len() > 0 {
		ch.wbCount--
		return bk.wb.Pop()
	}
	return nil
}

// tryDispatch starts the next request for a bank if the bank, its
// rank, and the controller allow it.
func (c *Controller) tryDispatch(now config.Time, chIdx int, b bankID) {
	ch := c.channels[chIdx]
	if ch.relocking || ch.banks[b].dispatched {
		return
	}
	rankIdx := int(b) / c.cfg.BanksPerRank
	rank := c.ranks[chIdx][rankIdx]
	if rank.RefreshBlocked() {
		return
	}
	free, ok := rank.BankFreeAt(int(b) % c.cfg.BanksPerRank)
	if !ok {
		return // in service; FinishAccess will re-kick
	}
	if free > now {
		// A precharge or refresh window is still closing; the events
		// that set it re-kick dispatch, so nothing to do yet.
		return
	}
	req := c.nextFor(ch, b)
	if req == nil {
		c.maybePowerdown(now, chIdx, rankIdx)
		return
	}
	ch.banks[b].dispatched = true
	c.dispatched[chIdx][rankIdx]++
	// The MC pipeline spends mcTime per request before the device
	// sees it (five MC cycles, Section 3.3).
	c.q.ScheduleBound(now+c.mcTime, c.onStartBank, req, int32(chIdx), int32(b))
}

func (c *Controller) startBankServiceEvent(now config.Time, env any, a, b int32) {
	c.startBankService(now, int(a), bankID(b), env.(*Request))
}

// startBankService issues the request to the DRAM bank.
func (c *Controller) startBankService(now config.Time, chIdx int, b bankID, req *Request) {
	ch := c.channels[chIdx]
	if ch.relocking {
		// The relock began after dispatch; resume when it ends.
		c.q.ScheduleBound(ch.relockUntil, c.onStartBank, req, int32(chIdx), int32(b))
		return
	}
	rankIdx := int(b) / c.cfg.BanksPerRank
	rank := c.ranks[chIdx][rankIdx]
	ready, kind, pdExit := rank.StartAccess(now, int(b)%c.cfg.BanksPerRank, req.Loc.Row)

	pc := &c.counters.PerChannel[chIdx]
	switch kind {
	case dram.RowHit:
		c.counters.RBHC++
		pc.RBHC++
	case dram.ClosedMiss:
		c.counters.CBMC++
		pc.CBMC++
	case dram.OpenMiss:
		c.counters.OBMC++
		pc.OBMC++
	}
	if kind != dram.RowHit {
		c.counters.POCC++
	}
	if pdExit {
		c.counters.EPDC++
		pc.EPDC++
		if c.tel != nil {
			c.tel.PowerdownExit(now, chIdx, rankIdx)
		}
	}

	// Decoupled DIMMs: the device-side transfer into the
	// synchronization buffer runs at the slower device clock; the
	// channel burst cannot begin until it completes.
	if extra := ch.timing.DevBurst - ch.timing.Burst; extra > 0 {
		ready += extra
	}
	req.ready = ready
	c.q.ScheduleBound(ready, c.onBusReady, req, int32(chIdx), 0)
}

// busReadyEvent queues a bank-service-complete request for the channel
// bus and tries to grant it.
func (c *Controller) busReadyEvent(now config.Time, env any, a, _ int32) {
	chIdx := int(a)
	c.channels[chIdx].busQueue.Push(env.(*Request))
	c.tryGrantBus(now, chIdx)
}

// tryGrantBus gives the channel bus to the oldest ready request. The
// bank stays blocked until its request is accepted here — the
// transfer-blocking behaviour of the Figure 4 queueing model.
func (c *Controller) tryGrantBus(now config.Time, chIdx int) {
	ch := c.channels[chIdx]
	if ch.relocking || ch.busQueue.Len() == 0 || ch.busFreeAt > now {
		return
	}
	req := ch.busQueue.Pop()

	busStart := now
	busEnd := busStart + ch.timing.Burst
	ch.busFreeAt = busEnd
	ch.busBusy += busEnd - busStart

	b := c.bankID(req.Loc.Rank, req.Loc.Bank)
	rankIdx := req.Loc.Rank
	rank := c.ranks[chIdx][rankIdx]

	// Closed-page management: keep the row open only if the next
	// request already queued for this bank targets the same row
	// (Section 4.1); otherwise auto-precharge.
	keepOpen := false
	if q := &ch.banks[b].queue; q.Len() > 0 && q.Peek().Loc.Row == req.Loc.Row && !rank.RefreshBlocked() {
		keepOpen = true
	}

	prechargeDone := rank.FinishAccess(int(b)%c.cfg.BanksPerRank, busStart, busEnd, req.Write, keepOpen)

	// Termination on the channel's other ranks (Section 2.1).
	for r, other := range c.ranks[chIdx] {
		if r != rankIdx {
			other.AccountTermination(busEnd - busStart)
		}
	}

	ch.banks[b].dispatched = false
	c.dispatched[chIdx][rankIdx]--
	ch.outstanding[b]--
	c.pending[chIdx][rankIdx]--
	pc := &c.counters.PerChannel[chIdx]
	if req.Write {
		c.counters.Writebacks++
		pc.Writebacks++
	} else {
		c.counters.Reads++
		pc.Reads++
		if c.tel != nil {
			c.tel.ObserveReadLatency(busEnd - req.Arrived)
		}
	}

	if keepOpen {
		c.q.ScheduleBound(busEnd, c.onBankKick, nil, int32(chIdx), int32(b))
	} else {
		c.q.ScheduleBound(prechargeDone, c.onPrecharge, nil, int32(chIdx), int32(b))
	}

	if req.Done != nil && !req.Write {
		c.q.Schedule(busEnd, req.Done)
	}

	// The transaction is through: recycle its Request. Everything that
	// still needs to run (completion callback, precharge, bus grant)
	// was captured into events above.
	c.putRequest(req)

	c.refreshKick(now, chIdx, rankIdx)

	// The bus frees at busEnd; grant the next ready request then.
	c.q.ScheduleBound(busEnd, c.onGrantBus, nil, int32(chIdx), 0)
}

// bankKickEvent re-attempts dispatch on one bank (after a kept-open row
// finished its burst).
func (c *Controller) bankKickEvent(now config.Time, _ any, a, b int32) {
	c.tryDispatch(now, int(a), bankID(b))
}

// prechargeEvent completes a bank's auto-precharge, re-kicks dispatch,
// and reconsiders powerdown.
func (c *Controller) prechargeEvent(now config.Time, _ any, a, b int32) {
	chIdx, bk := int(a), bankID(b)
	rankIdx := int(bk) / c.cfg.BanksPerRank
	c.ranks[chIdx][rankIdx].PrechargeDone(now, int(bk)%c.cfg.BanksPerRank)
	c.tryDispatch(now, chIdx, bk)
	c.maybePowerdown(now, chIdx, rankIdx)
}

// grantBusEvent grants the freed channel bus to the next ready request.
func (c *Controller) grantBusEvent(now config.Time, _ any, a, _ int32) {
	c.tryGrantBus(now, int(a))
}

// maybePowerdown drops an idle rank into the configured powerdown
// state, as today's aggressive controllers do (Section 4.2.3).
func (c *Controller) maybePowerdown(now config.Time, chIdx, rankIdx int) {
	if c.cfg.Powerdown == config.PowerdownNone || c.channels[chIdx].relocking {
		return
	}
	if c.pending[chIdx][rankIdx] > 0 || c.dispatched[chIdx][rankIdx] > 0 {
		return
	}
	rank := c.ranks[chIdx][rankIdx]
	slow := c.cfg.Powerdown == config.PowerdownSlow
	if rank.EnterPowerdown(now, slow) && c.tel != nil {
		c.tel.PowerdownEnter(now, chIdx, rankIdx, slow)
	}
}

// refreshTickEvent is the bound form of refreshTimer.
func (c *Controller) refreshTickEvent(now config.Time, _ any, a, b int32) {
	c.refreshTimer(now, int(a), int(b))
}

// refreshTimer fires every tREFI per rank.
func (c *Controller) refreshTimer(now config.Time, chIdx, rankIdx int) {
	c.q.ScheduleBound(now+c.cfg.Timing.RefreshInterval(), c.onRefreshTick, nil, int32(chIdx), int32(rankIdx))
	c.ranks[chIdx][rankIdx].SetRefreshPending()
	c.refreshKick(now, chIdx, rankIdx)
}

// refreshKick attempts to issue a pending refresh once the rank's
// pipeline has drained.
func (c *Controller) refreshKick(now config.Time, chIdx, rankIdx int) {
	rank := c.ranks[chIdx][rankIdx]
	if !rank.RefreshBlocked() || c.dispatched[chIdx][rankIdx] > 0 {
		return
	}
	until, ok := rank.TryStartRefresh(now)
	if !ok {
		return // still in service; the next FinishAccess re-kicks
	}
	if c.tel != nil {
		c.tel.Refresh(now, chIdx, rankIdx, until-now)
	}
	c.q.ScheduleBound(until, c.onRefreshDone, nil, int32(chIdx), int32(rankIdx))
}

// refreshDoneEvent completes a running refresh: a round that became
// pending mid-refresh starts now, before any dispatch or powerdown
// decision.
func (c *Controller) refreshDoneEvent(now config.Time, _ any, a, b int32) {
	chIdx, rankIdx := int(a), int(b)
	c.ranks[chIdx][rankIdx].RefreshDone(now)
	c.refreshKick(now, chIdx, rankIdx)
	c.kickRank(now, chIdx, rankIdx)
	c.maybePowerdown(now, chIdx, rankIdx)
}

// kickRank re-attempts dispatch on every bank of a rank (after a
// refresh or relock released it).
func (c *Controller) kickRank(now config.Time, chIdx, rankIdx int) {
	for bank := 0; bank < c.cfg.BanksPerRank; bank++ {
		c.tryDispatch(now, chIdx, c.bankID(rankIdx, bank))
	}
}

// FlushInterval closes the power-accounting interval at now and
// returns it: per-channel rank accounts, bus occupancies, and
// operating points, plus the MC reference frequency. Call before every
// frequency change and at reporting boundaries.
func (c *Controller) FlushInterval(now config.Time) power.Interval {
	iv := power.Interval{
		Duration:  now - c.flushedAt,
		MCBusFreq: c.mcBusFreq,
		Channels:  make([]power.ChannelSlice, len(c.channels)),
	}
	for chIdx, ch := range c.channels {
		slice := power.ChannelSlice{
			BusFreq: ch.timing.BusFreq,
			DevFreq: ch.timing.DevFreq,
			Busy:    ch.busBusy,
		}
		ch.busBusy = 0
		for _, rank := range c.ranks[chIdx] {
			slice.DRAM.Add(rank.Flush(now))
		}
		iv.Channels[chIdx] = slice
	}
	c.flushedAt = now
	return iv
}

// RelockPenalty returns the halt duration of a switch to bus frequency
// f: 512 cycles at the new frequency plus 28 ns (Section 4.1).
func (c *Controller) RelockPenalty(f config.FreqMHz) config.Time {
	return f.Cycles(int64(c.cfg.Policy.RelockCycles)) + c.cfg.Policy.RelockExtra
}

// SetBusFrequency initiates a frequency switch of every channel — the
// paper's base mechanism. Memory dispatch halts for the relock
// penalty; queued requests wait and resume at the new operating point.
// The caller must flush the power interval first. It returns the time
// the new frequency becomes active. Switching to the current frequency
// is a no-op.
func (c *Controller) SetBusFrequency(now config.Time, f config.FreqMHz) config.Time {
	return c.SetBusFrequencyStalled(now, f, 0)
}

// SetBusFrequencyStalled is SetBusFrequency with an extra halt added
// to every channel's relock window — the fault plane's model of
// PLL/DLL relock attempts that fail and are retried with backoff
// before the lock finally takes. The frequency still lands; the
// channels just stay dark longer.
func (c *Controller) SetBusFrequencyStalled(now config.Time, f config.FreqMHz, extra config.Time) config.Time {
	applied := now
	for ch := range c.channels {
		if at := c.setChannelFrequency(now, ch, f, extra); at > applied {
			applied = at
		}
	}
	return applied
}

// SetChannelFrequency relocks a single channel to bus frequency f (the
// Section 6 future-work mechanism). Requirements are as for
// SetBusFrequency. Returns when the channel resumes.
func (c *Controller) SetChannelFrequency(now config.Time, chIdx int, f config.FreqMHz) config.Time {
	return c.setChannelFrequency(now, chIdx, f, 0)
}

func (c *Controller) setChannelFrequency(now config.Time, chIdx int, f config.FreqMHz, extra config.Time) config.Time {
	if !config.ValidBusFrequency(f) {
		panic(fmt.Sprintf("memctrl: invalid bus frequency %v", f))
	}
	if extra < 0 {
		panic(fmt.Sprintf("memctrl: negative relock stall %v", extra))
	}
	ch := c.channels[chIdx]
	if f == ch.timing.BusFreq {
		return now
	}
	if ch.relocking {
		panic(fmt.Sprintf("memctrl: channel %d frequency change while already relocking", chIdx))
	}
	if c.flushedAt != now {
		panic(fmt.Sprintf("memctrl: frequency change at %v without flush (last flush %v)", now, c.flushedAt))
	}
	halt := c.RelockPenalty(f) + extra
	ch.relocking = true
	ch.relockUntil = now + halt
	if c.tel != nil {
		c.tel.FreqTransition(now, chIdx, ch.timing.BusFreq, f, halt)
	}
	c.q.Schedule(ch.relockUntil, func(config.Time) {
		ch.timing = dram.Resolve(c.cfg.Timing, f, c.devFreqFor(f))
		ch.relocking = false
		c.updateMCClock()
		// Kick via a same-instant event so that when several channels
		// finish relocking at the same timestamp (the uniform switch),
		// the MC clock settles before any request re-dispatches.
		c.q.After(0, func(at config.Time) {
			for rankIdx := range c.ranks[chIdx] {
				c.kickRank(at, chIdx, rankIdx)
			}
			c.tryGrantBus(at, chIdx)
		})
	})
	return ch.relockUntil
}

// StallChannels halts dispatch on every channel until now+stall
// without changing any operating point — the fault plane's abandoned
// relock, where every bounded retry failed and the old frequency
// stays. Queued requests wait out the stall and resume unchanged.
// Channels must not already be relocking.
func (c *Controller) StallChannels(now config.Time, stall config.Time) {
	if stall <= 0 {
		return
	}
	for chIdx, ch := range c.channels {
		if ch.relocking {
			panic(fmt.Sprintf("memctrl: channel %d stall while already relocking", chIdx))
		}
		chIdx := chIdx
		ch := ch
		ch.relocking = true
		ch.relockUntil = now + stall
		c.q.Schedule(ch.relockUntil, func(config.Time) {
			ch.relocking = false
			c.q.After(0, func(at config.Time) {
				for rankIdx := range c.ranks[chIdx] {
					c.kickRank(at, chIdx, rankIdx)
				}
				c.tryGrantBus(at, chIdx)
			})
		})
	}
}

// ForceRefresh models a retention emergency: every rank immediately
// owes an all-bank refresh on top of its tREFI schedule. It returns
// how many ranks were newly marked — ranks that already owed a refresh
// absorb the emergency into the outstanding obligation.
func (c *Controller) ForceRefresh(now config.Time) (marked int) {
	for chIdx := range c.ranks {
		for rankIdx, rank := range c.ranks[chIdx] {
			if rank.SetRefreshPending() {
				marked++
			}
			c.refreshKick(now, chIdx, rankIdx)
		}
	}
	return marked
}

// updateMCClock re-derives the MC clock from the fastest channel.
func (c *Controller) updateMCClock() {
	max := config.MinBusFreq
	for _, ch := range c.channels {
		if ch.timing.BusFreq > max {
			max = ch.timing.BusFreq
		}
	}
	c.mcBusFreq = max
	c.mcTime = c.cfg.Timing.MCTime(max)
}

// Relocking reports whether any channel's frequency switch is in
// progress.
func (c *Controller) Relocking() bool {
	for _, ch := range c.channels {
		if ch.relocking {
			return true
		}
	}
	return false
}

// QueuedRequests returns the number of requests queued or in flight.
func (c *Controller) QueuedRequests() int {
	n := 0
	for _, pend := range c.pending {
		for _, p := range pend {
			n += p
		}
	}
	return n
}
