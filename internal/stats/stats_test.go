package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.N() != 0 {
		t.Error("empty series defaults wrong")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Error("empty min/max should be infinities")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.N() != 4 || s.Sum() != 10 || s.Mean() != 2.5 || s.Min() != 1 || s.Max() != 4 {
		t.Errorf("series stats wrong: %+v", s)
	}
	vals := s.Values()
	vals[0] = 99
	if s.Min() == 99 {
		t.Error("Values must return a copy")
	}
}

func TestSeriesInvariants(t *testing.T) {
	f := func(vals []float64) bool {
		var s Series
		ok := true
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue // keep the sum finite so the invariant is meaningful
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		mean := s.Mean()
		ok = ok && s.Min() <= mean+1e-9 && mean <= s.Max()+1e-9
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:   "Figure X",
		Columns: []string{"Workload", "Savings"},
		Notes:   []string{"synthetic"},
	}
	tb.AddRow("ILP1", "30.0%")
	tb.AddRow("MEM1", "6.0%")
	var b strings.Builder
	tb.Render(&b)
	out := b.String()
	for _, want := range []string{"Figure X", "Workload", "ILP1", "30.0%", "note: synthetic"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Columns: []string{"a", "b"}}
	tb.AddRow("x,y", `quo"te`)
	tb.AddRow("plain")
	var b strings.Builder
	tb.CSV(&b)
	got := b.String()
	want := "a,b\n\"x,y\",\"quo\"\"te\"\nplain,\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.183) != "18.3%" {
		t.Errorf("Pct = %q", Pct(0.183))
	}
	if F2(1.005) != "1.00" && F2(1.005) != "1.01" {
		t.Errorf("F2 = %q", F2(1.005))
	}
	if F3(2.0) != "2.000" {
		t.Errorf("F3 = %q", F3(2.0))
	}
}

func TestAddRowPadding(t *testing.T) {
	tb := Table{Columns: []string{"a", "b", "c"}}
	tb.AddRow("1")
	tb.AddRow("1", "2", "3", "4") // extra dropped
	if len(tb.Rows[0]) != 3 || tb.Rows[0][1] != "" {
		t.Errorf("padding wrong: %v", tb.Rows[0])
	}
	if len(tb.Rows[1]) != 3 || tb.Rows[1][2] != "3" {
		t.Errorf("truncation wrong: %v", tb.Rows[1])
	}
}
