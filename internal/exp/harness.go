// Package exp reproduces the paper's evaluation: one driver per table
// and figure (Table 1-2, Figures 2, 5-15, and the Section 4.2.4 extra
// studies). Each driver runs the relevant workload x policy grid on
// the simulator and renders the same rows/series the paper reports,
// as ASCII tables and optional CSV.
package exp

import (
	"fmt"
	"io"

	"memscale/internal/config"
	"memscale/internal/core"
	"memscale/internal/policies"
	"memscale/internal/power"
	"memscale/internal/sim"
	"memscale/internal/stats"
	"memscale/internal/workload"
)

// Params scale the experiments. The defaults run each (mix, policy)
// pair for 10 OS quanta (50 ms of simulated time), long enough for the
// slack controller to settle while keeping the full reproduction under
// an hour of host time; the paper's trends are stable at this scale.
type Params struct {
	// Epochs is the number of OS quanta per run.
	Epochs int

	// TimelineEpochs is the run length of the Figure 7/8 timelines.
	TimelineEpochs int

	// Gamma is the allowed performance degradation (default 0.10).
	Gamma float64

	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer

	// baselines caches baseline runs across figures: many experiments
	// share the exact same unmanaged run (the baseline is independent
	// of policy and of gamma), so re-simulating it per pair would
	// dominate the harness run time.
	baselines *baselineCache
}

type baselineCache struct {
	entries map[string]baselineEntry
}

type baselineEntry struct {
	res    sim.Result
	nonMem float64
}

// DefaultParams returns the standard experiment scale.
func DefaultParams() Params {
	return Params{
		Epochs:         10,
		TimelineEpochs: 20,
		Gamma:          0.10,
		baselines:      &baselineCache{entries: map[string]baselineEntry{}},
	}
}

func (p Params) runDuration(cfg *config.Config) config.Time {
	return config.Time(p.Epochs) * cfg.Policy.EpochLength
}

func (p Params) logf(format string, args ...any) {
	if p.Progress != nil {
		fmt.Fprintf(p.Progress, format+"\n", args...)
	}
}

// Report is one rendered experiment.
type Report struct {
	ID    string // e.g. "figure5"
	Title string
	Table stats.Table
}

// Render writes the report's table to w.
func (r Report) Render(w io.Writer) { r.Table.Render(w) }

// Outcome is one (mix, policy) run paired with its baseline.
type Outcome struct {
	Mix    workload.Mix
	Policy string
	NonMem float64 // rest-of-system watts used for both runs
	Base   sim.Result
	Res    sim.Result
}

func (o Outcome) systemEnergy(r sim.Result) float64 {
	return r.Memory.Memory() + o.NonMem*r.Duration.Seconds()
}

// MemorySavings returns the memory-subsystem energy savings vs the
// baseline.
func (o Outcome) MemorySavings() float64 {
	return 1 - o.Res.Memory.Memory()/o.Base.Memory.Memory()
}

// SystemSavings returns the full-system energy savings vs the baseline.
func (o Outcome) SystemSavings() float64 {
	return 1 - o.systemEnergy(o.Res)/o.systemEnergy(o.Base)
}

// CPIIncrease returns the multiprogram-average and worst-application
// CPI increases vs the baseline (the Figure 6 metrics). Application
// CPI is the mean over its replicated instances.
func (o Outcome) CPIIncrease() (avg, worst float64) {
	perApp := map[string]*stats.Series{}
	basePerApp := map[string]*stats.Series{}
	for i := range o.Res.CPI {
		app := o.Mix.Assignment(i)
		if perApp[app] == nil {
			perApp[app] = &stats.Series{}
			basePerApp[app] = &stats.Series{}
		}
		perApp[app].Add(o.Res.CPI[i])
		basePerApp[app].Add(o.Base.CPI[i])
	}
	var s stats.Series
	for app, cur := range perApp {
		inc := cur.Mean()/basePerApp[app].Mean() - 1
		s.Add(inc)
	}
	return s.Mean(), s.Max()
}

// runBaseline runs the mix with the unmanaged memory system and
// derives the rest-of-system power from its average DIMM power.
// Results are cached: the baseline depends only on the configuration
// and mix (gamma is irrelevant — no governor runs), and many
// experiments revisit the same pair.
func (p Params) runBaseline(cfg config.Config, mix workload.Mix) (sim.Result, float64, error) {
	var key string
	if p.baselines != nil {
		norm := cfg
		norm.Policy.Gamma = 0
		key = fmt.Sprintf("%s|%d|%+v", mix.Name, p.Epochs, norm)
		if e, ok := p.baselines.entries[key]; ok {
			return e.res, e.nonMem, nil
		}
	}
	streams, err := mix.Streams(&cfg)
	if err != nil {
		return sim.Result{}, 0, err
	}
	s, err := sim.New(cfg, streams, sim.Options{})
	if err != nil {
		return sim.Result{}, 0, err
	}
	res := s.RunFor(p.runDuration(&cfg))
	nonMem := power.NewModel(&cfg).RestOfSystemPower(res.DIMMAvgWatts)
	if p.baselines != nil {
		p.baselines.entries[key] = baselineEntry{res: res, nonMem: nonMem}
	}
	return res, nonMem, nil
}

// runPair runs (mix, spec) against its baseline under a possibly
// mutated configuration and returns the paired outcome.
func (p Params) runPair(mutate func(*config.Config), mix workload.Mix, spec policies.Spec) (Outcome, error) {
	baseCfg := config.Default()
	if p.Gamma > 0 {
		baseCfg.Policy.Gamma = p.Gamma
	}
	if mutate != nil {
		mutate(&baseCfg)
	}

	base, nonMem, err := p.runBaseline(baseCfg, mix)
	if err != nil {
		return Outcome{}, err
	}

	cfg := baseCfg
	if spec.Configure != nil {
		spec.Configure(&cfg)
	}
	streams, err := mix.Streams(&cfg)
	if err != nil {
		return Outcome{}, err
	}
	var gov sim.Governor
	if spec.Governor != nil {
		gov = spec.Governor(&cfg, nonMem)
	}
	s, err := sim.New(cfg, streams, sim.Options{Governor: gov, NonMemPower: nonMem})
	if err != nil {
		return Outcome{}, err
	}
	res := s.RunFor(p.runDuration(&cfg))
	p.logf("  %-8s %-20s mem %-7s sys %-7s", mix.Name, spec.Name,
		stats.Pct(1-res.Memory.Memory()/base.Memory.Memory()),
		stats.Pct(1-(res.Memory.Memory()+nonMem*res.Duration.Seconds())/
			(base.Memory.Memory()+nonMem*base.Duration.Seconds())))
	return Outcome{Mix: mix, Policy: spec.Name, NonMem: nonMem, Base: base, Res: res}, nil
}

// memScaleSpec returns the MemScale spec with the harness gamma.
func (p Params) memScaleSpec() policies.Spec {
	spec := policies.MemScale
	gamma := p.Gamma
	spec.Governor = func(cfg *config.Config, nonMem float64) sim.Governor {
		return core.NewPolicy(cfg, core.Options{NonMemPower: nonMem, Gamma: gamma})
	}
	return spec
}
