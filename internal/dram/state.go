package dram

import (
	"fmt"

	"memscale/internal/config"
)

// BankCheckpoint is the pure-data image of one bank.
type BankCheckpoint struct {
	OpenRow   int         `json:"open_row"`
	FreeAt    config.Time `json:"free_at"`
	ActAt     config.Time `json:"act_at"`
	InService bool        `json:"in_service,omitempty"`
}

// RankState is the pure-data checkpoint image of a Rank: every mutable
// field except the shared timing pointer, which the owning controller
// re-points on restore (it is part of the controller's operating-point
// state, not the rank's).
type RankState struct {
	Banks       []BankCheckpoint `json:"banks"`
	ActiveBanks int              `json:"active_banks"`
	InService   int              `json:"in_service"`

	LastAct config.Time    `json:"last_act"`
	FAW     [4]config.Time `json:"faw"`
	FAWIdx  int            `json:"faw_idx"`

	PD             PDState     `json:"pd"`
	Refreshing     bool        `json:"refreshing,omitempty"`
	RefreshPending bool        `json:"refresh_pending,omitempty"`
	RefreshUntil   config.Time `json:"refresh_until"`

	Acct   Account     `json:"acct"`
	AcctAt config.Time `json:"acct_at"`
}

// Save captures the rank's full mutable state.
func (r *Rank) Save() RankState {
	st := RankState{
		Banks:          make([]BankCheckpoint, len(r.banks)),
		ActiveBanks:    r.activeBanks,
		InService:      r.inService,
		LastAct:        r.lastAct,
		FAW:            r.faw,
		FAWIdx:         r.fawIdx,
		PD:             r.pd,
		Refreshing:     r.refreshing,
		RefreshPending: r.refreshPending,
		RefreshUntil:   r.refreshUntil,
		Acct:           r.acct,
		AcctAt:         r.acctAt,
	}
	for i, b := range r.banks {
		st.Banks[i] = BankCheckpoint{OpenRow: b.openRow, FreeAt: b.freeAt, ActAt: b.actAt, InService: b.inService}
	}
	return st
}

// Load replaces the rank's mutable state with st. The bank count must
// match the rank's construction; the timing pointer is untouched.
func (r *Rank) Load(st RankState) error {
	if len(st.Banks) != len(r.banks) {
		return fmt.Errorf("dram: rank state has %d banks, rank has %d", len(st.Banks), len(r.banks))
	}
	if st.FAWIdx < 0 || st.FAWIdx >= len(r.faw) {
		return fmt.Errorf("dram: rank state faw index %d out of range", st.FAWIdx)
	}
	if st.PD < PDNone || st.PD > PDSlow {
		return fmt.Errorf("dram: rank state powerdown state %d unknown", st.PD)
	}
	for i, b := range st.Banks {
		r.banks[i] = bankState{openRow: b.OpenRow, freeAt: b.FreeAt, actAt: b.ActAt, inService: b.InService}
	}
	r.activeBanks = st.ActiveBanks
	r.inService = st.InService
	r.lastAct = st.LastAct
	r.faw = st.FAW
	r.fawIdx = st.FAWIdx
	r.pd = st.PD
	r.refreshing = st.Refreshing
	r.refreshPending = st.RefreshPending
	r.refreshUntil = st.RefreshUntil
	r.acct = st.Acct
	r.acctAt = st.AcctAt
	return nil
}
