package config

// DDR3Timing holds the JEDEC device timing parameters of Table 2.
//
// Parameters whose physical origin is the DRAM array (row decode,
// sense, restore, precharge) are stored as wall-clock durations: they
// do not change when the interface frequency is scaled (paper,
// Section 2.2). Parameters that are interface cycles (burst length,
// MC processing) are stored as cycle counts and therefore stretch as
// the bus slows down.
type DDR3Timing struct {
	TRCD Time // activate -> column access
	TRP  Time // precharge
	TCL  Time // column access (CAS) latency
	TRAS Time // activate -> precharge minimum
	TRTP Time // read -> precharge minimum
	TRRD Time // activate -> activate, same rank
	TFAW Time // four-activation window, per rank
	TRFC Time // refresh cycle time (rank blocked)

	TXP    Time // exit fast (precharge) powerdown
	TXPDLL Time // exit slow powerdown (DLL off)

	RefreshPeriod Time // full-array retention period (tREF)
	RefreshRows   int  // refresh commands per retention period (8k)

	BurstCycles int // bus cycles per 64B cache-line transfer (BL8/2, DDR)
	MCCycles    int // MC cycles of processing per request
}

// DefaultDDR3Timing returns the Table 2 timing parameters. Cycle-valued
// entries in the table (tFAW = 20 cycles, tRTP = 5, tRAS = 28, tRRD = 4)
// are specified at the nominal 800 MHz bus clock; they are device
// constraints, so we convert them to wall-clock durations here.
func DefaultDDR3Timing() DDR3Timing {
	nominal := MaxBusFreq.Period() // 1250 ps
	return DDR3Timing{
		TRCD: 15 * Nanosecond,
		TRP:  15 * Nanosecond,
		TCL:  15 * Nanosecond,
		TRAS: 28 * nominal, // 35 ns
		TRTP: 5 * nominal,  // 6.25 ns
		TRRD: 4 * nominal,  // 5 ns
		TFAW: 20 * nominal, // 25 ns
		TRFC: 160 * Nanosecond,

		TXP:    6 * Nanosecond,
		TXPDLL: 24 * Nanosecond,

		RefreshPeriod: 64 * Millisecond,
		RefreshRows:   8192,

		BurstCycles: 4, // 64B line over a 64-bit DDR channel
		MCCycles:    5, // Section 3.3: five MC clock cycles per request
	}
}

// RefreshInterval returns tREFI, the average interval between refresh
// commands to one rank (7.8125 us for the default parameters).
func (t DDR3Timing) RefreshInterval() Time {
	return t.RefreshPeriod / Time(t.RefreshRows)
}

// BurstTime returns the data-transfer (burst) time of one cache line at
// bus frequency f. Data moves on both clock edges, so BurstCycles
// already accounts for the DDR factor.
func (t DDR3Timing) BurstTime(f FreqMHz) Time {
	return f.Cycles(int64(t.BurstCycles))
}

// MCTime returns the memory-controller processing latency per request
// at bus frequency f. The MC clock is double the bus clock.
func (t DDR3Timing) MCTime(f FreqMHz) Time {
	return MCFreq(f).Cycles(int64(t.MCCycles))
}

// DDR3Currents holds the Table 2 DRAM chip current draws (mA) used by
// the Micron-style power model, plus the supply voltage.
type DDR3Currents struct {
	IDDReadWrite        float64 // row-buffer read/write burst
	IDDActPre           float64 // activation-precharge, averaged over tRC
	IDDActiveStandby    float64 // some bank open, CKE high
	IDDActivePowerdown  float64 // some bank open, CKE low
	IDDPrechargeStandby float64 // all banks closed, CKE high
	IDDPrechargePD      float64 // all banks closed, CKE low, DLL on (fast exit)
	IDDPrechargeSlowPD  float64 // all banks closed, CKE low, DLL off (slow exit)
	IDDRefresh          float64 // during tRFC
	VDD                 float64 // volts
}

// DefaultDDR3Currents returns the Table 2 current parameters, which
// correspond to devices running at the nominal 800 MHz.
func DefaultDDR3Currents() DDR3Currents {
	return DDR3Currents{
		IDDReadWrite:        250,
		IDDActPre:           120,
		IDDActiveStandby:    67,
		IDDActivePowerdown:  45,
		IDDPrechargeStandby: 70,
		IDDPrechargePD:      45,
		// Table 2 lists a single precharge-powerdown current that
		// covers both the fast-exit (DLL-on) and slow-exit (DLL-off)
		// states. Keeping them equal is what makes the paper's
		// Slow-PD policy strictly worse than Fast-PD: same power,
		// longer exit latency (Section 4.2.3).
		IDDPrechargeSlowPD: 45,
		IDDRefresh:         240,
		VDD:                1.575,
	}
}
