package invariant

import (
	"errors"
	"math"
	"testing"
)

func TestViolationTyping(t *testing.T) {
	err := Violated("slack_nonnegative", "core %d slack %.3g", 2, -0.5)
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("violation does not wrap ErrInvariant: %v", err)
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("violation not extractable with errors.As: %v", err)
	}
	if v.Name != "slack_nonnegative" {
		t.Fatalf("name = %q, want slack_nonnegative", v.Name)
	}
	if got := v.Error(); got == "" || got == v.Detail {
		t.Fatalf("Error() should combine name and detail, got %q", got)
	}
}

func TestCheck(t *testing.T) {
	if err := Check("cap_within_budget", true, "unused"); err != nil {
		t.Fatalf("passing check returned error: %v", err)
	}
	err := Check("cap_within_budget", false, "est %.1f > budget %.1f", 120.0, 100.0)
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("failing check not typed: %v", err)
	}
}

func TestCloseRel(t *testing.T) {
	cases := []struct {
		name   string
		a, b   float64
		tol    float64
		agrees bool
	}{
		{"exact", 1.5, 1.5, 0, true},
		{"both zero", 0, 0, 1e-9, true},
		{"within", 1.0, 1.0 + 1e-12, 1e-9, true},
		{"beyond", 1.0, 1.0 + 1e-6, 1e-9, false},
		{"nan left", math.NaN(), 1.0, 1e-3, false},
		{"nan both", math.NaN(), math.NaN(), 1e-3, false},
		{"inf", math.Inf(1), 1.0, 1e-3, false},
		{"large scale", 1e12, 1e12 + 1, 1e-9, true},
		{"zero vs tiny", 0, 1e-300, 1e-9, false},
	}
	for _, tc := range cases {
		if got := CloseRel(tc.a, tc.b, tc.tol); got != tc.agrees {
			t.Errorf("%s: CloseRel(%g,%g,%g) = %v, want %v", tc.name, tc.a, tc.b, tc.tol, got, tc.agrees)
		}
	}
	if err := CheckCloseRel("energy_witness", 1.0, 2.0, 1e-9); !errors.Is(err, ErrInvariant) {
		t.Fatalf("CheckCloseRel mismatch not typed: %v", err)
	}
	if err := CheckCloseRel("energy_witness", 3.25, 3.25, 0); err != nil {
		t.Fatalf("CheckCloseRel exact match errored: %v", err)
	}
}
