package memctrl

import (
	"fmt"

	"memscale/internal/config"
	"memscale/internal/dram"
	"memscale/internal/event"
)

// This file is the checkpoint plane of the memory controller. All
// controller state is pure data except the in-flight Requests, which
// are referenced both from the controller's rings and from pending
// events; a RequestTable interns them into dense ids so both planes
// serialize references to the same table, and restore rebuilds one
// Request object per id so pointer identity (the defReq head check)
// survives the round trip.

// RequestState is the serializable image of one in-flight Request.
// Done is a live callback (the issuing core's completion handler), so
// only its presence is recorded; restore rebinds it from the core
// index.
type RequestState struct {
	Loc     config.Location `json:"loc"`
	Write   bool            `json:"write,omitempty"`
	Core    int             `json:"core"`
	HasDone bool            `json:"has_done,omitempty"`
	Arrived config.Time     `json:"arrived"`
	Ready   config.Time     `json:"ready"`
}

// RequestTable interns in-flight Requests during a save, assigning
// dense ids in encounter order. The controller's rings are interned
// first, then the event queue's save adds any request referenced only
// from a pending event; both walks are deterministic, so the table —
// and the whole checkpoint — is byte-stable for a given simulation
// state.
type RequestTable struct {
	reqs []*Request
	ids  map[*Request]int32
}

// NewRequestTable returns an empty table.
func NewRequestTable() *RequestTable {
	return &RequestTable{ids: map[*Request]int32{}}
}

// ID interns req and returns its dense id.
func (t *RequestTable) ID(req *Request) int32 {
	if id, ok := t.ids[req]; ok {
		return id
	}
	id := int32(len(t.reqs))
	t.reqs = append(t.reqs, req)
	t.ids[req] = id
	return id
}

// EncodeEnv is the event-registry env encoder for request-carrying
// event kinds.
func (t *RequestTable) EncodeEnv(env any) (int32, error) {
	req, ok := env.(*Request)
	if !ok {
		return 0, fmt.Errorf("memctrl: event env is %T, want *Request", env)
	}
	return t.ID(req), nil
}

// States serializes every interned request, in id order.
func (t *RequestTable) States() []RequestState {
	out := make([]RequestState, len(t.reqs))
	for i, req := range t.reqs {
		out[i] = RequestState{
			Loc:     req.Loc,
			Write:   req.Write,
			Core:    req.Core,
			HasDone: req.Done != nil,
			Arrived: req.Arrived,
			Ready:   req.ready,
		}
	}
	return out
}

// BankState is the pure-data image of one bank's controller-side
// state. Queue and WB hold request-table ids in FIFO order; DefReq is
// -1 when no dispatching deferral holds the bank.
type BankState struct {
	Queue         []int32     `json:"queue,omitempty"`
	WB            []int32     `json:"wb,omitempty"`
	Dispatched    bool        `json:"dispatched,omitempty"`
	PrechDeferred bool        `json:"prech_deferred,omitempty"`
	DefDispatch   bool        `json:"def_dispatch,omitempty"`
	PrechAt       config.Time `json:"prech_at,omitempty"`
	PrechSeq      uint64      `json:"prech_seq,omitempty"`
	DefReq        int32       `json:"def_req"`
}

// ChannelState is the pure-data image of one channel: banks, bus
// arbitration, deferral mirrors, and the operating point (from which
// the resolved timing is rebuilt on restore).
type ChannelState struct {
	Banks       []BankState    `json:"banks"`
	WBCount     int            `json:"wb_count"`
	BusFreeAt   config.Time    `json:"bus_free_at"`
	BusQueue    []int32        `json:"bus_queue,omitempty"`
	GrantArmed  bool           `json:"grant_armed,omitempty"`
	GrantSeq    uint64         `json:"grant_seq"`
	BusBusy     config.Time    `json:"bus_busy"`
	Outstanding []int          `json:"outstanding"`
	DefAts      []config.Time  `json:"def_ats"`
	DefSeqs     []uint64       `json:"def_seqs"`
	BusFreq     config.FreqMHz `json:"bus_freq"`
	DevFreq     config.FreqMHz `json:"dev_freq"`
	Relocking   bool           `json:"relocking,omitempty"`
	RelockUntil config.Time    `json:"relock_until"`
}

// ControllerState is the complete serializable image of a Controller.
type ControllerState struct {
	Requests   []RequestState     `json:"requests,omitempty"`
	Channels   []ChannelState     `json:"channels"`
	Ranks      [][]dram.RankState `json:"ranks"`
	Dispatched [][]int            `json:"dispatched"`
	Pending    [][]int            `json:"pending"`
	DefPrech   [][]int            `json:"def_prech"`
	DefGate    []config.Time      `json:"def_gate"`
	Counters   Counters           `json:"counters"`
	FlushedAt  config.Time        `json:"flushed_at"`
	Quiesce    config.Time        `json:"quiesce"`
}

func saveRing(r *reqRing, tbl *RequestTable) []int32 {
	if r.Len() == 0 {
		return nil
	}
	out := make([]int32, r.Len())
	for i := range out {
		out[i] = tbl.ID(r.At(i))
	}
	return out
}

// Save captures the controller's full state, interning every in-flight
// request into tbl. The caller completes the request table (the event
// queue's save may intern more) and then assigns tbl.States() to the
// returned state's Requests field.
func (c *Controller) Save(tbl *RequestTable) *ControllerState {
	st := &ControllerState{
		Channels:   make([]ChannelState, len(c.channels)),
		Ranks:      make([][]dram.RankState, len(c.ranks)),
		Dispatched: copy2D(c.dispatched),
		Pending:    copy2D(c.pending),
		DefPrech:   copy2D(c.defPrech),
		DefGate:    append([]config.Time(nil), c.defGate...),
		Counters:   c.Counters(),
		FlushedAt:  c.flushedAt,
		Quiesce:    c.quiesce,
	}
	for chIdx, ch := range c.channels {
		cs := ChannelState{
			Banks:       make([]BankState, len(ch.banks)),
			WBCount:     ch.wbCount,
			BusFreeAt:   ch.busFreeAt,
			GrantArmed:  ch.grantArmed,
			GrantSeq:    uint64(ch.grantSeq),
			BusBusy:     ch.busBusy,
			Outstanding: append([]int(nil), ch.outstanding...),
			DefAts:      append([]config.Time(nil), ch.defAts...),
			DefSeqs:     append([]uint64(nil), ch.defSeqs...),
			BusFreq:     ch.timing.BusFreq,
			DevFreq:     ch.timing.DevFreq,
			Relocking:   ch.relocking,
			RelockUntil: ch.relockUntil,
		}
		for b := range ch.banks {
			bk := &ch.banks[b]
			bs := BankState{
				Queue:         saveRing(&bk.queue, tbl),
				WB:            saveRing(&bk.wb, tbl),
				Dispatched:    bk.dispatched,
				PrechDeferred: bk.prechDeferred,
				DefDispatch:   bk.defDispatch,
				PrechAt:       bk.prechAt,
				PrechSeq:      uint64(bk.prechSeq),
				DefReq:        -1,
			}
			if bk.defReq != nil {
				bs.DefReq = tbl.ID(bk.defReq)
			}
			cs.Banks[b] = bs
		}
		cs.BusQueue = saveRing(&ch.busQueue, tbl)
		st.Channels[chIdx] = cs
		st.Ranks[chIdx] = make([]dram.RankState, len(c.ranks[chIdx]))
		for r, rank := range c.ranks[chIdx] {
			st.Ranks[chIdx][r] = rank.Save()
		}
	}
	return st
}

// Load replaces the controller's state with st. doneFor returns the
// completion callback of a core's reads, rebinding each restored
// request's Done. It returns the rebuilt request table (id order), for
// decoding request-carrying events. The controller must be freshly
// constructed under the same geometry the state was saved from.
func (c *Controller) Load(st *ControllerState, doneFor func(core int) func(config.Time)) ([]*Request, error) {
	if len(st.Channels) != len(c.channels) || len(st.Ranks) != len(c.ranks) {
		return nil, fmt.Errorf("memctrl: state has %d channels, controller has %d", len(st.Channels), len(c.channels))
	}
	if len(st.Dispatched) != len(c.dispatched) || len(st.Pending) != len(c.pending) ||
		len(st.DefPrech) != len(c.defPrech) || len(st.DefGate) != len(c.defGate) {
		return nil, fmt.Errorf("memctrl: state bookkeeping dimensions do not match controller geometry")
	}
	if len(st.Counters.TLM) != len(c.counters.TLM) || len(st.Counters.PerChannel) != len(c.counters.PerChannel) {
		return nil, fmt.Errorf("memctrl: state counters sized for %d cores / %d channels, controller has %d / %d",
			len(st.Counters.TLM), len(st.Counters.PerChannel), len(c.counters.TLM), len(c.counters.PerChannel))
	}

	reqs := make([]*Request, len(st.Requests))
	for i, rs := range st.Requests {
		req := &Request{Loc: rs.Loc, Write: rs.Write, Core: rs.Core, Arrived: rs.Arrived, ready: rs.Ready}
		if rs.HasDone {
			if rs.Core < 0 || doneFor == nil {
				return nil, fmt.Errorf("memctrl: request %d has a completion callback but no core %d handler", i, rs.Core)
			}
			done := doneFor(rs.Core)
			if done == nil {
				return nil, fmt.Errorf("memctrl: request %d names core %d outside the system", i, rs.Core)
			}
			req.Done = done
		}
		reqs[i] = req
	}
	reqAt := func(id int32) (*Request, error) {
		if id < 0 || int(id) >= len(reqs) {
			return nil, fmt.Errorf("memctrl: request id %d out of range [0,%d)", id, len(reqs))
		}
		return reqs[id], nil
	}
	loadRing := func(r *reqRing, ids []int32) error {
		for _, id := range ids {
			req, err := reqAt(id)
			if err != nil {
				return err
			}
			r.Push(req)
		}
		return nil
	}

	for chIdx, cs := range st.Channels {
		ch := c.channels[chIdx]
		if len(cs.Banks) != len(ch.banks) || len(cs.Outstanding) != len(ch.outstanding) ||
			len(cs.DefAts) != len(ch.defAts) || len(cs.DefSeqs) != len(ch.defSeqs) {
			return nil, fmt.Errorf("memctrl: channel %d state does not match bank geometry", chIdx)
		}
		if !config.ValidBusFrequency(cs.BusFreq) {
			return nil, fmt.Errorf("memctrl: channel %d bus frequency %v not on the ladder", chIdx, cs.BusFreq)
		}
		for b, bs := range cs.Banks {
			bk := &ch.banks[b]
			*bk = bank{
				dispatched:    bs.Dispatched,
				prechDeferred: bs.PrechDeferred,
				defDispatch:   bs.DefDispatch,
				prechAt:       bs.PrechAt,
				prechSeq:      event.Seq(bs.PrechSeq),
			}
			if err := loadRing(&bk.queue, bs.Queue); err != nil {
				return nil, err
			}
			if err := loadRing(&bk.wb, bs.WB); err != nil {
				return nil, err
			}
			if bs.DefReq >= 0 {
				req, err := reqAt(bs.DefReq)
				if err != nil {
					return nil, err
				}
				bk.defReq = req
			}
		}
		ch.wbCount = cs.WBCount
		ch.busFreeAt = cs.BusFreeAt
		ch.busQueue = reqRing{}
		if err := loadRing(&ch.busQueue, cs.BusQueue); err != nil {
			return nil, err
		}
		ch.grantArmed = cs.GrantArmed
		ch.grantSeq = event.Seq(cs.GrantSeq)
		ch.busBusy = cs.BusBusy
		copy(ch.outstanding, cs.Outstanding)
		copy(ch.defAts, cs.DefAts)
		copy(ch.defSeqs, cs.DefSeqs)
		ch.timing = dram.Resolve(c.cfg.Timing, cs.BusFreq, cs.DevFreq)
		ch.relocking = cs.Relocking
		ch.relockUntil = cs.RelockUntil

		if len(st.Ranks[chIdx]) != len(c.ranks[chIdx]) {
			return nil, fmt.Errorf("memctrl: channel %d state has %d ranks, controller has %d",
				chIdx, len(st.Ranks[chIdx]), len(c.ranks[chIdx]))
		}
		for r, rank := range c.ranks[chIdx] {
			if err := rank.Load(st.Ranks[chIdx][r]); err != nil {
				return nil, fmt.Errorf("memctrl: channel %d rank %d: %w", chIdx, r, err)
			}
		}
		if err := copyInto(c.dispatched[chIdx], st.Dispatched, chIdx); err != nil {
			return nil, err
		}
		if err := copyInto(c.pending[chIdx], st.Pending, chIdx); err != nil {
			return nil, err
		}
		if err := copyInto(c.defPrech[chIdx], st.DefPrech, chIdx); err != nil {
			return nil, err
		}
	}
	copy(c.defGate, st.DefGate)
	c.counters = st.Counters.Clone()
	c.flushedAt = st.FlushedAt
	c.quiesce = st.Quiesce
	c.updateMCClock()
	return reqs, nil
}

// RegisterEvents registers the controller's pre-bound callback kinds
// with the checkpoint event registry. On save, reqEnv is the live
// RequestTable's EncodeEnv; on load, reqs indexes the rebuilt request
// list (decode side ignores reqEnv and vice versa — pass the side you
// have and nil/empty for the other).
func (c *Controller) RegisterEvents(reg *event.Registry, reqEnv func(env any) (int32, error), reqs []*Request) {
	reqDec := func(bfn event.Bound) func(owner int32) (event.Bound, any, error) {
		return func(owner int32) (event.Bound, any, error) {
			if owner < 0 || int(owner) >= len(reqs) {
				return nil, nil, fmt.Errorf("memctrl: request id %d out of range [0,%d)", owner, len(reqs))
			}
			return bfn, reqs[owner], nil
		}
	}
	bare := func(bfn event.Bound) func(owner int32) (event.Bound, any, error) {
		return func(int32) (event.Bound, any, error) { return bfn, nil, nil }
	}
	reg.RegisterBound("mc.start_bank", c.onStartBank, reqEnv, reqDec(c.onStartBank))
	reg.RegisterBound("mc.bus_ready", c.onBusReady, reqEnv, reqDec(c.onBusReady))
	reg.RegisterBound("mc.done", c.onDone, reqEnv, reqDec(c.onDone))
	reg.RegisterBound("mc.bank_kick", c.onBankKick, nil, bare(c.onBankKick))
	reg.RegisterBound("mc.precharge", c.onPrecharge, nil, bare(c.onPrecharge))
	reg.RegisterBound("mc.grant_bus", c.onGrantBus, nil, bare(c.onGrantBus))
	reg.RegisterBound("mc.refresh_tick", c.onRefreshTick, nil, bare(c.onRefreshTick))
	reg.RegisterBound("mc.refresh_done", c.onRefreshDone, nil, bare(c.onRefreshDone))
	reg.RegisterBound("mc.relock_done", c.onRelockDone, nil, bare(c.onRelockDone))
	reg.RegisterBound("mc.relock_kick", c.onRelockKick, nil, bare(c.onRelockKick))
}

func copy2D(src [][]int) [][]int {
	out := make([][]int, len(src))
	for i, row := range src {
		out[i] = append([]int(nil), row...)
	}
	return out
}

func copyInto(dst []int, src [][]int, i int) error {
	if len(src[i]) != len(dst) {
		return fmt.Errorf("memctrl: state row %d has %d entries, controller has %d", i, len(src[i]), len(dst))
	}
	copy(dst, src[i])
	return nil
}
