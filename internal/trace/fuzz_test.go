package trace

import (
	"math"
	"testing"
)

// FuzzProfileStream throws arbitrary phase parameters at the profile
// validator and, when a profile is accepted, at the stream generator.
// The contract: Validate never panics and never accepts NaN/Inf rates,
// and every accepted profile yields a stream whose accesses are well
// formed (positive gaps, finite CPI, addresses inside the mapped
// space, writebacks only when WPKI allows them).
func FuzzProfileStream(f *testing.F) {
	f.Add(uint64(0), 1.0, 2.0, 0.5, 0.5, 16, uint64(1))
	f.Add(uint64(100), 0.6, 18.9, 7.3, 0.9, 0, uint64(42))
	f.Add(uint64(0), math.NaN(), math.Inf(1), -1.0, 1.0, -3, uint64(0))
	f.Add(uint64(1), 1e300, 1e-300, 0.0, 0.999, 1, ^uint64(0))

	m := testMapper()
	f.Fuzz(func(t *testing.T, instr uint64, baseCPI, mpki, wpki, rowLoc float64,
		hotRows int, seed uint64) {

		p := Profile{Name: "fuzz", Phases: []Phase{
			{Instructions: instr, BaseCPI: baseCPI, MPKI: mpki, WPKI: wpki,
				RowLocality: rowLoc, HotRows: hotRows},
			{BaseCPI: 1, MPKI: 1},
		}}
		s, err := NewStream(p, m, seed)
		if err != nil {
			return
		}
		for _, v := range []float64{baseCPI, mpki, wpki, rowLoc} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("Validate accepted non-finite value %g", v)
			}
		}
		lines := m.Lines()
		for i := 0; i < 200; i++ {
			a := s.Next()
			if a.Gap == 0 {
				t.Fatal("zero-instruction gap")
			}
			if a.BaseCPI <= 0 || math.IsInf(a.BaseCPI, 0) {
				t.Fatalf("access BaseCPI = %g", a.BaseCPI)
			}
			if a.Line >= lines {
				t.Fatalf("line %d outside the %d-line space", a.Line, lines)
			}
			if a.Writeback {
				if wpki == 0 && s.PhaseIndex() == 0 {
					t.Fatal("writeback generated with WPKI = 0")
				}
				if a.WBLine >= lines {
					t.Fatalf("writeback line %d outside the space", a.WBLine)
				}
			}
		}
	})
}
