package memscale

import (
	"context"
	"errors"
	"fmt"
	"time"

	"memscale/internal/runner"
)

// SweepConfig describes a batch of runs executed by Sweep.
type SweepConfig struct {
	// Runs is the job grid, one RunConfig per paired simulation.
	// Grid builds the common mix x policy cross products.
	Runs []RunConfig

	// Workers bounds the number of concurrently executing jobs;
	// zero means runtime.GOMAXPROCS(0). Parallelism is across jobs
	// only — each simulation stays single-threaded — so results are
	// bit-identical on any worker count.
	Workers int

	// Progress, when non-nil, is invoked once per finished job, in
	// completion order, from one goroutine at a time.
	Progress func(SweepProgress)

	// JobTimeout, when positive, is a per-job watchdog deadline in
	// host wall-clock time: a run that overruns it fails with
	// ErrJobTimeout at its index while the rest of the sweep keeps
	// going. Zero disables the watchdog (ctx still cancels the whole
	// sweep).
	JobTimeout time.Duration

	// WarmStart, when non-nil, forks the grid from shared warm-up
	// prefixes instead of simulating every run from epoch zero: runs
	// with the same mix and machine shape simulate their first
	// PrefixEpochs once (unmanaged — no governor, faults, or
	// telemetry), then each variant restores the snapshot and runs its
	// own policy over the remaining epochs. A gamma or policy sweep
	// over one mix pays for its warm-up once instead of once per
	// variant.
	//
	// Warm-started summaries are an approximation in the gem5
	// fast-forwarding tradition: the governor only steers the
	// post-prefix epochs, so results are not bit-identical to the cold
	// sweep (use CheckpointRun/ResumeRun when exact equivalence is
	// required). Baselines are unaffected — each run still pairs
	// against the cold unmanaged baseline of its full length.
	WarmStart *WarmStartConfig
}

// WarmStartConfig configures warm-start forking for a sweep.
type WarmStartConfig struct {
	// PrefixEpochs is the shared warm-up length in OS quanta; it must
	// be positive and smaller than every run's epoch count.
	PrefixEpochs int
}

// SweepProgress reports one finished sweep job.
type SweepProgress struct {
	// Completed is the number of jobs finished so far (including this
	// one); Total is len(Runs).
	Completed, Total int

	// Index is the job's position in SweepConfig.Runs.
	Index int

	// Run is the job's configuration.
	Run RunConfig

	// Summary is the job's result; only valid when Err is nil.
	Summary RunSummary

	// Err is the job's failure, if any.
	Err error
}

// Grid returns the cross product of mixes x policies over base: every
// returned RunConfig is base with Mix and Policy replaced. Jobs are
// ordered mix-major, matching the figure presentation order.
func Grid(base RunConfig, mixes, policies []string) []RunConfig {
	out := make([]RunConfig, 0, len(mixes)*len(policies))
	for _, m := range mixes {
		for _, p := range policies {
			rc := base
			rc.Mix = m
			rc.Policy = p
			out = append(out, rc)
		}
	}
	return out
}

// Sweep executes every run in the grid on a worker pool, pairing each
// against its unmanaged baseline. The N runs that share one baseline
// configuration simulate it exactly once: baselines are memoized by
// their canonical config (gamma and policy excluded, since the
// baseline runs no governor).
//
// Summaries come back indexed like sc.Runs regardless of completion
// order, and are bit-identical to the same grid run serially. Errors
// are collected per job and joined: a failed or invalid run leaves a
// zero RunSummary at its index and contributes one wrapped error
// (match with errors.Is against ErrUnknownMix, ErrUnknownPolicy,
// ErrInvalidConfig, or ctx.Err()) without stopping the other jobs.
// Cancelling ctx stops the sweep promptly, mid-simulation if needed.
//
// An empty grid is an error, not a silent zero-job success: a Grid
// built from empty mix or policy lists (a typo'd filter, an empty
// flag) surfaces ErrInvalidConfig instead of returning no summaries
// with a nil error.
func Sweep(ctx context.Context, sc SweepConfig) ([]RunSummary, error) {
	if len(sc.Runs) == 0 {
		return nil, fmt.Errorf("%w: runs: sweep has no runs (Grid over empty mixes or policies produces none)",
			ErrInvalidConfig)
	}
	if sc.WarmStart != nil && sc.WarmStart.PrefixEpochs <= 0 {
		return nil, fmt.Errorf("%w: warm_start.prefix_epochs: must be positive, got %d",
			ErrInvalidConfig, sc.WarmStart.PrefixEpochs)
	}
	sums := make([]RunSummary, len(sc.Runs))
	errs := make([]error, len(sc.Runs))

	// Resolve and validate every job up front; invalid jobs are
	// reported without simulating anything.
	var jobs []runner.Job
	var jobIdx []int // jobs[k] corresponds to sc.Runs[jobIdx[k]]
	for i, rc := range sc.Runs {
		if err := rc.Validate(); err != nil {
			errs[i] = err
			continue
		}
		if sc.WarmStart != nil {
			// Warm-start groups are keyed by mix and machine shape; an
			// empty mix name would produce a meaningless zero group key
			// (and fail mix resolution below with a less precise error).
			if rc.Mix == "" {
				errs[i] = fmt.Errorf("%w: mix: warm-start sweep requires a mix name (empty mix yields a zero warm-up group key)",
					ErrInvalidConfig)
				continue
			}
			if epochs := rc.withDefaults().Epochs; sc.WarmStart.PrefixEpochs >= epochs {
				errs[i] = fmt.Errorf("%w: warm_start.prefix_epochs: must be smaller than the run's %d epochs, got %d",
					ErrInvalidConfig, epochs, sc.WarmStart.PrefixEpochs)
				continue
			}
		}
		job, err := rc.withDefaults().job()
		if err != nil {
			errs[i] = err
			continue
		}
		jobs = append(jobs, job)
		jobIdx = append(jobIdx, i)
	}

	invalid := len(sc.Runs) - len(jobs)
	if sc.Progress != nil {
		n := 0
		for i, err := range errs {
			if err != nil {
				n++
				sc.Progress(SweepProgress{
					Completed: n, Total: len(sc.Runs),
					Index: i, Run: sc.Runs[i], Err: err,
				})
			}
		}
	}

	var onResult func(runner.Progress)
	if sc.Progress != nil {
		onResult = func(pr runner.Progress) {
			i := jobIdx[pr.Index]
			sp := SweepProgress{
				Completed: invalid + pr.Done, Total: len(sc.Runs),
				Index: i, Run: sc.Runs[i], Err: pr.Err,
			}
			if pr.Err == nil {
				sp.Summary = summarize(pr.Outcome)
			}
			sc.Progress(sp)
		}
	}

	eng := runner.New(runner.Options{Workers: sc.Workers, JobTimeout: sc.JobTimeout, OnResult: onResult})
	var outs []runner.Outcome
	var runErrs []error
	if sc.WarmStart != nil {
		outs, runErrs = eng.RunEachWarm(ctx, jobs, sc.WarmStart.PrefixEpochs)
	} else {
		outs, runErrs = eng.RunEach(ctx, jobs)
	}
	for k, out := range outs {
		i := jobIdx[k]
		if runErrs[k] != nil {
			errs[i] = runErrs[k]
			continue
		}
		sums[i] = summarize(out)
	}

	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, fmt.Errorf("run %d (%s/%s): %w",
				i, sc.Runs[i].Mix, sc.Runs[i].Policy, err))
		}
	}
	return sums, errors.Join(joined...)
}
