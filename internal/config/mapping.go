package config

// Location identifies the physical placement of one cache line in the
// memory system.
type Location struct {
	Channel int
	Rank    int // rank index within the channel
	Bank    int // bank index within the rank
	Row     int // row index within the bank
	Col     int // line index within the row
}

// AddressMapper translates cache-line addresses to physical locations.
//
// The layout follows the paper's controller (Section 4.1): cache lines
// interleave across channels for bandwidth, consecutive lines within a
// channel fill a row (so streaming accesses enjoy row locality), and
// successive rows interleave across banks and then ranks, which is the
// bank-interleaving the controller exploits.
type AddressMapper struct {
	channels    int
	linesPerRow int
	banks       int
	ranks       int
	rows        int
}

// NewAddressMapper builds a mapper for configuration c.
func NewAddressMapper(c *Config) *AddressMapper {
	return &AddressMapper{
		channels:    c.Channels,
		linesPerRow: c.LinesPerRow(),
		banks:       c.BanksPerRank,
		ranks:       c.RanksPerChannel(),
		rows:        c.RowsPerBank,
	}
}

// Lines returns the total number of distinct cache-line addresses the
// mapper covers before wrapping.
func (m *AddressMapper) Lines() uint64 {
	return uint64(m.channels) * uint64(m.linesPerRow) *
		uint64(m.banks) * uint64(m.ranks) * uint64(m.rows)
}

// Map translates a cache-line address to its location. Addresses beyond
// the configured capacity wrap around.
func (m *AddressMapper) Map(line uint64) Location {
	var loc Location
	loc.Channel = int(line % uint64(m.channels))
	line /= uint64(m.channels)
	loc.Col = int(line % uint64(m.linesPerRow))
	line /= uint64(m.linesPerRow)
	loc.Bank = int(line % uint64(m.banks))
	line /= uint64(m.banks)
	loc.Rank = int(line % uint64(m.ranks))
	line /= uint64(m.ranks)
	loc.Row = int(line % uint64(m.rows))
	return loc
}

// Unmap is the inverse of Map for in-range locations; it reconstructs
// the canonical line address of a location.
func (m *AddressMapper) Unmap(loc Location) uint64 {
	line := uint64(loc.Row)
	line = line*uint64(m.ranks) + uint64(loc.Rank)
	line = line*uint64(m.banks) + uint64(loc.Bank)
	line = line*uint64(m.linesPerRow) + uint64(loc.Col)
	line = line*uint64(m.channels) + uint64(loc.Channel)
	return line
}

// LineForRow returns the address of the col'th line of the given
// (channel, rank, bank, row) tuple; workload generators use it to
// synthesize streams with controlled row locality.
func (m *AddressMapper) LineForRow(channel, rank, bank, row, col int) uint64 {
	return m.Unmap(Location{Channel: channel, Rank: rank, Bank: bank, Row: row, Col: col})
}
