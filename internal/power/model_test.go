package power

import (
	"math"
	"testing"
	"testing/quick"

	"memscale/internal/config"
	"memscale/internal/dram"
)

func newModel() (*Model, config.Config) {
	c := config.Default()
	return NewModel(&c), c
}

// idleInterval returns an interval with all ranks in precharge standby
// for 1 second at frequency f.
func idleInterval(c *config.Config, f config.FreqMHz) Interval {
	return Uniform(config.Second, f, f,
		dram.Account{PrechargeStandby: config.Time(c.TotalRanks()) * config.Second},
		make([]config.Time, c.Channels))
}

func TestIdleBackgroundPower(t *testing.T) {
	m, c := newModel()
	b := m.Energy(idleInterval(&c, config.Freq800))
	// 16 ranks x 9 chips x 70 mA x 1.575 V = 15.88 W for 1 s.
	want := 16 * 9 * 0.070 * 1.575
	if math.Abs(b.Background-want) > 0.01 {
		t.Errorf("background = %.3f J, want %.3f", b.Background, want)
	}
	if b.ActPre != 0 || b.ReadWrite != 0 || b.Refresh != 0 {
		t.Error("idle interval must have no dynamic energy")
	}
}

func TestBackgroundScalesLinearlyWithFrequency(t *testing.T) {
	m, c := newModel()
	b800 := m.Energy(idleInterval(&c, config.Freq800))
	b400 := m.Energy(idleInterval(&c, config.Freq400))
	if math.Abs(b400.Background/b800.Background-0.5) > 0.01 {
		t.Errorf("background at 400 MHz = %.2fx of 800 MHz, want 0.5x",
			b400.Background/b800.Background)
	}
	// PLL/Reg also scale linearly.
	if math.Abs(b400.PLLReg/b800.PLLReg-0.5) > 0.01 {
		t.Errorf("PLL/Reg at 400 MHz = %.2fx, want 0.5x", b400.PLLReg/b800.PLLReg)
	}
}

func TestBackgroundFreqScalingKnob(t *testing.T) {
	c := config.Default()
	c.BackgroundFreqScaling = 0 // fully frequency-independent
	m := NewModel(&c)
	b800 := m.Energy(idleInterval(&c, config.Freq800))
	b200 := m.Energy(idleInterval(&c, config.Freq200))
	if b800.Background != b200.Background {
		t.Error("with scaling 0, background must be frequency independent")
	}
}

func TestPowerdownStatesCheaper(t *testing.T) {
	m, c := newModel()
	mk := func(set func(*dram.Account, config.Time)) float64 {
		iv := Uniform(config.Second, config.Freq800, config.Freq800,
			dram.Account{}, make([]config.Time, c.Channels))
		set(&iv.Channels[0].DRAM, config.Time(c.TotalRanks())*config.Second)
		return m.Energy(iv).Background
	}
	standby := mk(func(a *dram.Account, d config.Time) { a.PrechargeStandby = d })
	fast := mk(func(a *dram.Account, d config.Time) { a.PrechargePD = d })
	slow := mk(func(a *dram.Account, d config.Time) { a.PrechargePDSlow = d })
	// Table 2 gives one precharge-powerdown current, so both PD
	// states draw the same power; both must be cheaper than standby.
	if !(slow <= fast && fast < standby) {
		t.Errorf("background ordering wrong: slow %.2f, fast %.2f, standby %.2f",
			slow, fast, standby)
	}
}

func TestActivationEnergy(t *testing.T) {
	m, c := newModel()
	iv := idleInterval(&c, config.Freq800)
	iv.Channels[0].DRAM.Activations = 1
	b := m.Energy(iv)
	// 9 chips x 120 mA x 1.575 V x 50 ns = 85.05 nJ.
	want := 9 * 0.120 * 1.575 * 50e-9
	if math.Abs(b.ActPre-want)/want > 0.01 {
		t.Errorf("activation energy = %.3g J, want %.3g", b.ActPre, want)
	}
	// Frequency independent.
	iv2 := idleInterval(&c, config.Freq200)
	iv2.Channels[0].DRAM.Activations = 1
	if got := m.Energy(iv2).ActPre; math.Abs(got-want)/want > 0.01 {
		t.Errorf("activation energy at 200 MHz = %.3g, want %.3g", got, want)
	}
}

func TestReadWriteEnergyGrowsAtLowFrequency(t *testing.T) {
	m, c := newModel()
	// Same number of bursts at two frequencies: burst *time* doubles
	// at half frequency, so read/write energy doubles (Section 2.2).
	mk := func(f config.FreqMHz) float64 {
		iv := idleInterval(&c, f)
		iv.Channels[0].DRAM.ReadBurst = 1000 * c.Timing.BurstTime(f)
		return m.Energy(iv).ReadWrite
	}
	e800, e400 := mk(config.Freq800), mk(config.Freq400)
	if math.Abs(e400/e800-2.0) > 0.01 {
		t.Errorf("read energy ratio 400/800 = %.2f, want 2.0", e400/e800)
	}
}

func TestRefreshEnergy(t *testing.T) {
	m, c := newModel()
	iv := idleInterval(&c, config.Freq800)
	iv.Channels[0].DRAM.Refreshing = config.Millisecond
	iv.Channels[0].DRAM.Refreshes = 6400
	b := m.Energy(iv)
	want := 0.001 * 9 * 0.240 * 1.575 // 1 ms at IDD5
	if math.Abs(b.Refresh-want)/want > 0.01 {
		t.Errorf("refresh energy = %.4g, want %.4g", b.Refresh, want)
	}
}

func TestMCPowerRange(t *testing.T) {
	m, _ := newModel()
	if got := m.MCPower(config.Freq800, 1.0); math.Abs(got-15.0) > 1e-9 {
		t.Errorf("MC peak at nominal = %.2f W, want 15", got)
	}
	if got := m.MCPower(config.Freq800, 0.0); math.Abs(got-7.5) > 1e-9 {
		t.Errorf("MC idle at nominal = %.2f W, want 7.5", got)
	}
	// The paper: MC power drops roughly cubically with frequency.
	// V^2*f at the bottom of the ladder: (0.65^2*400)/(1.2^2*1600) of
	// nominal, i.e. ~7.3% -> 0.55 W (a >13x reduction, the paper's
	// "approximately cubic" benefit).
	low := m.MCPower(config.Freq200, 0.0)
	if math.Abs(low-0.55) > 0.01 {
		t.Errorf("MC idle at 200 MHz = %.3f W, want ~0.55 W", low)
	}
	if v := m.MCVoltage(config.Freq200); v != 0.65 {
		t.Errorf("MC voltage at 200 MHz = %.3f, want 0.65", v)
	}
	if v := m.MCVoltage(config.Freq800); v != 1.20 {
		t.Errorf("MC voltage at 800 MHz = %.3f, want 1.2", v)
	}
	if s := m.MCVFScale(config.Freq800); math.Abs(s-1) > 1e-12 {
		t.Errorf("MCVFScale at nominal = %g, want 1", s)
	}
}

func TestMCVFScaleMonotone(t *testing.T) {
	m, _ := newModel()
	prev := math.Inf(1)
	for _, f := range config.BusFrequencies {
		s := m.MCVFScale(f)
		if s >= prev {
			t.Errorf("MCVFScale not strictly decreasing at %v", f)
		}
		prev = s
	}
}

func TestTerminationEnergy(t *testing.T) {
	m, c := newModel()
	iv := idleInterval(&c, config.Freq800)
	iv.Channels[0].DRAM.TermBurst = config.Second
	b := m.Energy(iv)
	if math.Abs(b.Termination-c.Power.TerminationPerRankW) > 1e-9 {
		t.Errorf("termination = %.3f J, want %.3f", b.Termination, c.Power.TerminationPerRankW)
	}
}

func TestRegisterUtilization(t *testing.T) {
	m, c := newModel()
	idle := idleInterval(&c, config.Freq800)
	busy := idleInterval(&c, config.Freq800)
	for i := range busy.Channels {
		busy.Channels[i].Busy = config.Second // 100% utilization
	}
	eIdle, eBusy := m.Energy(idle).PLLReg, m.Energy(busy).PLLReg
	// 8 DIMMs: idle (0.25+0.5) W each vs busy (0.5+0.5) W each.
	if math.Abs(eIdle-8*0.75) > 1e-9 {
		t.Errorf("idle PLL/Reg = %.3f J, want 6.0", eIdle)
	}
	if math.Abs(eBusy-8*1.0) > 1e-9 {
		t.Errorf("busy PLL/Reg = %.3f J, want 8.0", eBusy)
	}
}

func TestRestOfSystemPower(t *testing.T) {
	m, _ := newModel()
	// 40% memory fraction -> rest of system is 1.5x the DIMM average.
	if got := m.RestOfSystemPower(30); math.Abs(got-45) > 1e-9 {
		t.Errorf("RestOfSystemPower(30) = %.2f, want 45", got)
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	b := Breakdown{Background: 1, ActPre: 2, ReadWrite: 3, Termination: 4, Refresh: 5, PLLReg: 6, MC: 7}
	if b.DRAM() != 15 {
		t.Errorf("DRAM() = %g", b.DRAM())
	}
	if b.Memory() != 28 {
		t.Errorf("Memory() = %g", b.Memory())
	}
	c := b
	c.Add(b)
	if c.Memory() != 56 {
		t.Errorf("Add: Memory() = %g", c.Memory())
	}
	if s := b.Scale(2); s.Memory() != 56 {
		t.Errorf("Scale: Memory() = %g", s.Memory())
	}
}

// TestEnergyAdditivity: splitting an interval into two pieces yields
// the same total energy as accounting it at once (the property the
// epoch-boundary flushes rely on).
func TestEnergyAdditivity(t *testing.T) {
	m, c := newModel()
	f := func(split uint8, acts uint16, burstMs uint8) bool {
		frac := float64(split%99+1) / 100
		whole := idleInterval(&c, config.Freq533)
		whole.Channels[0].DRAM.Activations = uint64(acts)
		whole.Channels[0].DRAM.ReadBurst = config.Time(burstMs) * config.Millisecond
		for i := range whole.Channels {
			whole.Channels[i].Busy = config.Time(burstMs) * config.Millisecond / 4
		}

		part := func(k float64) Interval {
			iv := whole
			iv.Duration = config.Time(float64(whole.Duration) * k)
			iv.Channels = make([]ChannelSlice, len(whole.Channels))
			copy(iv.Channels, whole.Channels)
			d0 := &iv.Channels[0].DRAM
			d0.PrechargeStandby = config.Time(float64(whole.Channels[0].DRAM.PrechargeStandby) * k)
			d0.Activations = uint64(float64(acts) * k)
			d0.ReadBurst = config.Time(float64(whole.Channels[0].DRAM.ReadBurst) * k)
			for i := range iv.Channels {
				iv.Channels[i].Busy = config.Time(float64(whole.Channels[i].Busy) * k)
			}
			return iv
		}
		a, b2 := part(frac), part(1-frac)
		// Fix rounding of activation splits.
		b2.Channels[0].DRAM.Activations = uint64(acts) - a.Channels[0].DRAM.Activations

		sum := m.Energy(a)
		sum.Add(m.Energy(b2))
		one := m.Energy(whole)
		// Utilization is a ratio, so equal-rate splits keep it equal;
		// energies must agree to floating-point tolerance.
		return math.Abs(sum.Memory()-one.Memory()) < 1e-6*math.Max(1, one.Memory())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeter(t *testing.T) {
	m, c := newModel()
	mt := NewMeter(m)
	iv := idleInterval(&c, config.Freq800)
	b := mt.Record(iv)
	if b.Memory() <= 0 {
		t.Fatal("recorded interval has no energy")
	}
	mt.Record(iv)
	if mt.Intervals() != 2 {
		t.Errorf("Intervals = %d", mt.Intervals())
	}
	if mt.Duration() != 2*config.Second {
		t.Errorf("Duration = %v", mt.Duration())
	}
	if math.Abs(mt.Total().Memory()-2*b.Memory()) > 1e-9 {
		t.Error("total is not the sum of intervals")
	}
	if mt.AveragePower() <= 0 || mt.AverageDIMMPower() <= 0 {
		t.Error("average powers must be positive")
	}
	if mt.AverageDIMMPower() >= mt.AveragePower() {
		t.Error("DIMM power must exclude the MC")
	}
}

// TestFigure2Shape reproduces the qualitative Figure 2 observations on
// hand-built intervals: for an ILP-like (idle) interval background
// dominates DRAM energy, and MC plus PLL/Reg are a substantial share
// of the memory subsystem.
func TestFigure2Shape(t *testing.T) {
	m, c := newModel()

	ilp := idleInterval(&c, config.Freq800)
	b := m.Energy(ilp)
	if b.Background < 0.8*b.DRAM() {
		t.Errorf("ILP-like: background %.1f%% of DRAM energy, want > 80%%",
			100*b.Background/b.DRAM())
	}
	if share := (b.MC + b.PLLReg) / b.Memory(); share < 0.30 {
		t.Errorf("MC+PLL/Reg share = %.1f%%, want > 30%%", share*100)
	}

	// MEM-like: heavy activation and burst traffic.
	mem := idleInterval(&c, config.Freq800)
	d := &mem.Channels[0].DRAM
	d.ActiveStandby = d.PrechargeStandby / 2
	d.PrechargeStandby /= 2
	d.Activations = 160_000_000 // 160M activations in 1 s
	d.ReadBurst = 800 * config.Millisecond
	d.TermBurst = 2400 * config.Millisecond
	for i := range mem.Channels {
		mem.Channels[i].Busy = 800 * config.Millisecond
	}
	bm := m.Energy(mem)
	if bm.ActPre < 0.15*bm.DRAM() {
		t.Errorf("MEM-like: act/pre share of DRAM = %.1f%%, want > 15%%",
			100*bm.ActPre/bm.DRAM())
	}
	if bm.Memory() <= b.Memory() {
		t.Error("MEM-like interval must consume more than idle")
	}
}
