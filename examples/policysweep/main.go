// Policysweep: compare every energy-management scheme of the paper's
// Section 4.2.3 on one workload — the unmanaged baseline, the
// powerdown-based controllers, Decoupled DIMMs, the best static
// frequency, and the MemScale variants — reproducing the Figure 9/11
// comparison for a single mix.
package main

import (
	"flag"
	"fmt"
	"log"

	"memscale"
)

func main() {
	mix := flag.String("mix", "MID2", "workload mix to sweep")
	epochs := flag.Int("epochs", 8, "OS quanta per run")
	flag.Parse()

	fmt.Printf("policy comparison on %s (gamma = 10%%)\n\n", *mix)
	fmt.Printf("%-22s %14s %14s %12s %12s\n",
		"policy", "system energy", "memory energy", "avg CPI", "worst CPI")

	for _, policy := range memscale.Policies() {
		sum, err := memscale.Run(memscale.RunConfig{
			Mix:    *mix,
			Policy: policy,
			Epochs: *epochs,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %+13.1f%% %+13.1f%% %+11.1f%% %+11.1f%%\n",
			policy, sum.SystemSavings*100, sum.MemorySavings*100,
			sum.AvgCPIIncrease*100, sum.WorstCPIIncrease*100)
	}
	fmt.Println("\n(positive energy = savings vs baseline; positive CPI = slowdown)")
}
