package sim

import (
	"encoding/json"
	"errors"
	"fmt"

	"memscale/internal/config"
	"memscale/internal/cpu"
	"memscale/internal/event"
	"memscale/internal/faults"
	"memscale/internal/memctrl"
	"memscale/internal/power"
	"memscale/internal/trace"
)

// This file is the checkpoint plane of the wired system: every
// stateful layer contributes its pure-data state type, and the system
// composes them — plus the event queue, serialized through the kind
// registry — into one SystemState that restores bit-identically.
//
// Deliberately excluded from state: the telemetry recorder (purely
// observational — the simulated event sequence is identical with or
// without it, so a resumed run re-attaches a fresh recorder), the
// fault injector (a pure function of config and attempt; the schedule
// replays from the epoch index), and everything derivable from the
// Config (timing tables, power model, geometry).

// ErrStateMismatch reports a checkpoint state that does not fit the
// system it is being restored into — wrong geometry, wrong governor,
// or internally inconsistent references. Matched with errors.Is.
var ErrStateMismatch = errors.New("checkpoint state does not match system")

// StatefulGovernor is implemented by governors whose decisions depend
// on accumulated state (slack ledgers, fitted models). Save returns a
// JSON-serializable pure-data image; Load replaces the governor's
// state with a previously saved image. Governors without the interface
// are treated as stateless (the baseline, static-frequency schemes).
type StatefulGovernor interface {
	Governor
	SaveGovernorState() (any, error)
	LoadGovernorState(data []byte) error
}

// ResultState is the accumulating portion of a Result: everything
// finalize() derives is recomputed, these fields grow epoch by epoch.
type ResultState struct {
	FreqTime        map[config.FreqMHz]config.Time `json:"freq_time,omitempty"`
	Faults          faults.Counts                  `json:"faults"`
	Epochs          []EpochRecord                  `json:"epochs,omitempty"`
	InvariantChecks uint64                         `json:"invariant_checks,omitempty"`
}

// SystemState is the complete serializable image of a System at an
// epoch boundary (between stepEpoch calls, with the event queue
// quiescent at the boundary instant).
type SystemState struct {
	Events  *event.State             `json:"events"`
	MC      *memctrl.ControllerState `json:"mc"`
	Cores   []cpu.CoreState          `json:"cores"`
	Streams []trace.StreamState      `json:"streams"`
	Meter   power.MeterState         `json:"meter"`

	Result       ResultState      `json:"result"`
	LastCounters memctrl.Counters `json:"last_counters"`
	LastInstr    []float64        `json:"last_instr"`
	Started      bool             `json:"started"`
	CapFreq      config.FreqMHz   `json:"cap_freq,omitempty"`
	EpochIdx     int              `json:"epoch_idx"`
	PrevSlack    []config.Time    `json:"prev_slack,omitempty"`

	// GovernorName records who governed the saved run (empty for the
	// unmanaged baseline); GovernorState its serialized state when the
	// governor is stateful. A managed checkpoint must be restored under
	// a same-named governor; an unmanaged one may fork into any.
	GovernorName  string          `json:"governor_name,omitempty"`
	GovernorState json.RawMessage `json:"governor_state,omitempty"`
}

// registry assembles the event-kind codec over the system's pre-bound
// callbacks. reqEnv/reqs select the encode or decode side of the
// request-carrying controller kinds.
func (s *System) registry(reqEnv func(env any) (int32, error), reqs []*memctrl.Request) *event.Registry {
	reg := event.NewRegistry()
	s.MC.RegisterEvents(reg, reqEnv, reqs)
	cpu.RegisterEvents(reg, s.Cores)
	reg.RegisterBound("sim.force_refresh", s.onForceRefresh, nil,
		func(int32) (event.Bound, any, error) { return s.onForceRefresh, nil, nil })
	return reg
}

// hasPendingForceRefresh reports whether a saved event state still
// carries a refresh-storm burst.
func hasPendingForceRefresh(st *event.State) bool {
	for i := range st.Nodes {
		if st.Nodes[i].Kind == "sim.force_refresh" {
			return true
		}
	}
	for i := range st.Defers {
		if st.Defers[i].Kind == "sim.force_refresh" {
			return true
		}
	}
	return false
}

// shardOf builds the pending-event classifier that re-partitions a
// canonical checkpoint across the shard set. Every controller and core
// event names its owning channel — directly in its payload, or through
// its request or core — and the channel names the shard.
func (s *System) shardOf(mc *memctrl.ControllerState) event.ShardOf {
	return func(kind string, owner, a, b int32) (int, error) {
		var ch int
		switch kind {
		case "mc.done":
			if owner < 0 || int(owner) >= len(mc.Requests) {
				return 0, fmt.Errorf("sim: %s event names request %d outside [0,%d)", kind, owner, len(mc.Requests))
			}
			ch = mc.Requests[owner].Loc.Channel
		case "mc.start_bank", "mc.bus_ready",
			"mc.bank_kick", "mc.precharge", "mc.grant_bus",
			"mc.refresh_tick", "mc.refresh_done",
			"mc.relock_done", "mc.relock_kick":
			ch = int(a)
		case "cpu.issue":
			if owner < 0 || int(owner) >= len(s.Cores) {
				return 0, fmt.Errorf("sim: cpu.issue event names core %d outside [0,%d)", owner, len(s.Cores))
			}
			// The shard plan bound the core to its confinement group's
			// shard; reuse the binding directly rather than re-deriving
			// it from the stream's placement.
			return s.coreShard[owner], nil
		default:
			return 0, fmt.Errorf("sim: event kind %q has no shard assignment", kind)
		}
		if ch < 0 || ch >= len(s.chShard) {
			return 0, fmt.Errorf("sim: event kind %q names channel %d outside [0,%d)", kind, ch, len(s.chShard))
		}
		return s.chShard[ch], nil
	}
}

// Save captures the system's full simulation state. Call it at an
// epoch boundary — after stepEpoch/StepEpoch returns — so the capture
// is on the quiescent instant every layer's bookkeeping agrees on.
func (s *System) Save() (*SystemState, error) {
	if len(s.pendingStorms) > 0 {
		// A pending burst's per-shard tickets are positions in this
		// run's sequence numbering; they mean nothing to a restored
		// engine. Bursts drain within their epoch, so the next boundary
		// is clean.
		return nil, fmt.Errorf("sim: checkpoint with %d refresh-storm bursts pending; save at a later epoch boundary", len(s.pendingStorms))
	}
	tbl := memctrl.NewRequestTable()
	mcState := s.MC.Save(tbl)
	codec := s.registry(tbl.EncodeEnv, nil)
	var evState *event.State
	var err error
	if s.shards != nil {
		// The canonical merged image: the same serial-queue state a
		// one-shard run would save, so the checkpoint restores under
		// any shard count.
		evState, err = s.shards.Save(codec)
	} else {
		evState, err = s.Q.Save(codec)
	}
	if err != nil {
		return nil, err
	}
	// The event scan may have interned requests referenced only from
	// pending events; the table is complete only now.
	mcState.Requests = tbl.States()

	st := &SystemState{
		Events:  evState,
		MC:      mcState,
		Cores:   make([]cpu.CoreState, len(s.Cores)),
		Streams: make([]trace.StreamState, len(s.Cores)),
		Meter:   s.Meter.Save(),
		Result: ResultState{
			FreqTime:        make(map[config.FreqMHz]config.Time, len(s.result.FreqTime)),
			Faults:          s.result.Faults,
			Epochs:          append([]EpochRecord(nil), s.result.Epochs...),
			InvariantChecks: s.result.InvariantChecks,
		},
		LastCounters: s.lastCounters.Clone(),
		LastInstr:    append([]float64(nil), s.lastInstr...),
		Started:      s.started,
		CapFreq:      s.capFreq,
		EpochIdx:     s.step.idx,
		PrevSlack:    append([]config.Time(nil), s.step.prevSlack...),
	}
	for f, t := range s.result.FreqTime {
		st.Result.FreqTime[f] = t
	}
	for i, c := range s.Cores {
		st.Cores[i] = c.Save()
		st.Streams[i] = c.Stream().Save()
	}
	if s.opts.Governor != nil {
		st.GovernorName = s.opts.Governor.Name()
		if sg, ok := s.opts.Governor.(StatefulGovernor); ok {
			gs, err := sg.SaveGovernorState()
			if err != nil {
				return nil, fmt.Errorf("sim: governor state: %w", err)
			}
			raw, err := json.Marshal(gs)
			if err != nil {
				return nil, fmt.Errorf("sim: governor state: %w", err)
			}
			st.GovernorState = raw
		}
	}
	return st, nil
}

// Restore builds a system from cfg/streams/opts — exactly as New would
// — and loads st into it. The configuration must describe the same
// machine the state was saved from (geometry mismatches are rejected);
// the governor in opts may differ only when the checkpoint was taken
// from an unmanaged run (warm-start forking), otherwise it must carry
// the same name and, for stateful governors, accepts the saved state.
func Restore(cfg config.Config, streams []*trace.Stream, opts Options, st *SystemState) (*System, error) {
	if st != nil && st.Events != nil && hasPendingForceRefresh(st.Events) {
		// A checkpointed refresh-storm burst is a cross-shard event
		// with no reserved tickets (it was saved by an engine predating
		// the sharded one, or a serial run mid-storm); resume it on the
		// serial engine, which replays it exactly as saved.
		opts.DisableParallel = true
	}
	s, err := New(cfg, streams, opts)
	if err != nil {
		return nil, err
	}
	if err := s.load(st); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStateMismatch, err)
	}
	return s, nil
}

func (s *System) load(st *SystemState) error {
	if st == nil || st.Events == nil || st.MC == nil {
		return fmt.Errorf("sim: checkpoint state is incomplete")
	}
	if len(st.Cores) != len(s.Cores) || len(st.Streams) != len(s.Cores) {
		return fmt.Errorf("sim: state has %d cores, system has %d", len(st.Cores), len(s.Cores))
	}
	if len(st.LastInstr) != len(s.Cores) {
		return fmt.Errorf("sim: state instruction baseline sized for %d cores, system has %d", len(st.LastInstr), len(s.Cores))
	}
	if st.GovernorState != nil {
		// A managed checkpoint resumes only under the governor that
		// produced it.
		sg, ok := s.opts.Governor.(StatefulGovernor)
		if !ok || s.opts.Governor.Name() != st.GovernorName {
			name := "<none>"
			if s.opts.Governor != nil {
				name = s.opts.Governor.Name()
			}
			return fmt.Errorf("sim: checkpoint was governed by %q, restore target runs %q without its state", st.GovernorName, name)
		}
		if err := sg.LoadGovernorState(st.GovernorState); err != nil {
			return err
		}
	}

	for i, c := range s.Cores {
		if err := c.Stream().Load(st.Streams[i]); err != nil {
			return fmt.Errorf("sim: core %d stream: %w", i, err)
		}
		c.Load(st.Cores[i])
	}
	s.Meter.Load(st.Meter)
	reqs, err := s.MC.Load(st.MC, func(core int) func(config.Time) {
		if core < 0 || core >= len(s.Cores) {
			return nil
		}
		return s.Cores[core].OnData()
	})
	if err != nil {
		return err
	}
	codec := s.registry(nil, reqs)
	if s.shards != nil {
		if err := s.shards.Load(st.Events, codec, s.shardOf(st.MC)); err != nil {
			return err
		}
	} else if err := s.Q.Load(st.Events, codec); err != nil {
		return err
	}

	s.result.FreqTime = make(map[config.FreqMHz]config.Time, len(st.Result.FreqTime))
	for f, t := range st.Result.FreqTime {
		s.result.FreqTime[f] = t
	}
	s.result.Faults = st.Result.Faults
	s.result.Epochs = append([]EpochRecord(nil), st.Result.Epochs...)
	s.result.InvariantChecks = st.Result.InvariantChecks
	// Re-seed the invariant plane's energy witness from the restored
	// meter so the conservation check continues from the checkpoint's
	// exact total instead of re-accumulating association drift.
	s.invEnergyJ = s.Meter.Total().Memory()
	s.lastCounters = st.LastCounters.Clone()
	s.lastInstr = append([]float64(nil), st.LastInstr...)
	s.capFreq = st.CapFreq
	s.step.idx = st.EpochIdx
	s.step.prevSlack = append([]config.Time(nil), st.PrevSlack...)

	if st.Started {
		// The saved run was already booted: bind the governor hooks
		// without re-running the boot sequence (the pending events and
		// counter baselines are the checkpoint's, not a fresh start's).
		s.started = true
		s.bindGovernor()
		if s.opts.Telemetry != nil && s.step.slacker != nil && s.step.prevSlack == nil {
			s.step.prevSlack = s.step.slacker.Slack()
		}
	}
	return nil
}
