package exp

import (
	"fmt"

	"memscale/internal/config"
	"memscale/internal/runner"
	"memscale/internal/sim"
	"memscale/internal/stats"
	"memscale/internal/workload"
)

// Figure2 reproduces the conventional memory power breakdown: for each
// workload class, the baseline system's memory power split into
// background, activate/precharge, read/write, termination, PLL/REG,
// and MC shares, normalized to the MEM-class average power.
func (p Params) Figure2() (Report, error) {
	t := stats.Table{
		Title: "Figure 2: conventional memory subsystem power breakdown",
		Columns: []string{"Class", "Background", "Act/Pre", "W/R", "Term+Refr",
			"PLL/REG", "MC", "Power vs AVG_MEM"},
		Notes: []string{"baseline (no energy management); shares of memory-subsystem power"},
	}
	type classPower struct {
		shares [6]float64
		watts  float64
	}
	classes := []workload.Class{workload.ClassMEM, workload.ClassMID, workload.ClassILP}
	results := map[workload.Class]classPower{}
	for _, class := range classes {
		var agg classPower
		mixes := workload.ByClass(class)
		for _, mix := range mixes {
			cfg := config.Default()
			res, _, err := p.runBaseline(cfg, mix)
			if err != nil {
				return Report{}, err
			}
			b := res.Memory
			mem := b.Memory()
			agg.shares[0] += b.Background / mem
			agg.shares[1] += b.ActPre / mem
			agg.shares[2] += b.ReadWrite / mem
			agg.shares[3] += (b.Termination + b.Refresh) / mem
			agg.shares[4] += b.PLLReg / mem
			agg.shares[5] += b.MC / mem
			agg.watts += res.MemAvgWatts
			p.logf("  figure2 %s: %.1f W memory", mix.Name, res.MemAvgWatts)
		}
		n := float64(len(mixes))
		for i := range agg.shares {
			agg.shares[i] /= n
		}
		agg.watts /= n
		results[class] = agg
	}
	norm := results[workload.ClassMEM].watts
	for _, class := range classes {
		r := results[class]
		t.AddRow("AVG_"+class.String(),
			stats.Pct(r.shares[0]), stats.Pct(r.shares[1]), stats.Pct(r.shares[2]),
			stats.Pct(r.shares[3]), stats.Pct(r.shares[4]), stats.Pct(r.shares[5]),
			stats.Pct(r.watts/norm))
	}
	return Report{ID: "figure2", Title: "Power breakdown", Table: t}, nil
}

// MemScaleOutcomes runs MemScale on all twelve Table 1 mixes with the
// configured bound and returns the paired outcomes (the data behind
// Figures 5 and 6). The mixes run concurrently on the sweep engine;
// outcomes come back in Table 1 order.
func (p Params) MemScaleOutcomes() ([]Outcome, error) {
	spec := p.memScaleSpec()
	jobs := make([]runner.Job, 0, len(workload.Mixes))
	for _, mix := range workload.Mixes {
		jobs = append(jobs, p.job(nil, mix, spec))
	}
	return p.runGrid(jobs)
}

// Figures5And6 run MemScale on all twelve mixes with the default 10%
// bound and report energy savings (Figure 5) and CPI overheads
// (Figure 6).
func (p Params) Figures5And6() ([]Report, error) {
	f5 := stats.Table{
		Title:   "Figure 5: MemScale energy savings (gamma = 10%)",
		Columns: []string{"Workload", "Full System Energy", "Memory System Energy"},
	}
	f6 := stats.Table{
		Title:   "Figure 6: MemScale CPI overhead (gamma = 10%)",
		Columns: []string{"Workload", "Multiprogram Average", "Worst Program in Mix"},
		Notes:   []string{"CPI degradation bound: 10%"},
	}
	outs, err := p.MemScaleOutcomes()
	if err != nil {
		return nil, err
	}
	var sysAll, memAll, avgAll, worstAll stats.Series
	for _, out := range outs {
		avg, worst := out.CPIIncrease()
		f5.AddRow(out.Mix.Name, stats.Pct(out.SystemSavings()), stats.Pct(out.MemorySavings()))
		f6.AddRow(out.Mix.Name, stats.Pct(avg), stats.Pct(worst))
		sysAll.Add(out.SystemSavings())
		memAll.Add(out.MemorySavings())
		avgAll.Add(avg)
		worstAll.Add(worst)
	}
	f5.AddRow("AVERAGE", stats.Pct(sysAll.Mean()), stats.Pct(memAll.Mean()))
	f6.AddRow("AVERAGE", stats.Pct(avgAll.Mean()), stats.Pct(worstAll.Mean()))
	return []Report{
		{ID: "figure5", Title: "Energy savings", Table: f5},
		{ID: "figure6", Title: "CPI overhead", Table: f6},
	}, nil
}

// timeline runs one mix under MemScale with per-epoch records.
func (p Params) timeline(mixName string, cores int) (*sim.Result, workload.Mix, error) {
	cfg := config.Default()
	cfg.Cores = cores
	if p.Gamma > 0 {
		cfg.Policy.Gamma = p.Gamma
	}
	mix, err := workload.ByName(mixName)
	if err != nil {
		return nil, mix, err
	}
	// Calibrate rest-of-system power on a short baseline run.
	short := p
	short.Epochs = min(p.Epochs, 4)
	_, nonMem, err := short.runBaseline(cfg, mix)
	if err != nil {
		return nil, mix, err
	}
	streams, err := mix.Streams(&cfg)
	if err != nil {
		return nil, mix, err
	}
	spec := p.memScaleSpec()
	s, err := sim.New(cfg, streams, sim.Options{
		Governor:     spec.Governor(&cfg, nonMem),
		NonMemPower:  nonMem,
		KeepTimeline: true,
		MaxDuration:  config.Time(p.TimelineEpochs+1) * cfg.Policy.EpochLength,
	})
	if err != nil {
		return nil, mix, err
	}
	res, err := s.RunForContext(p.ctx(), config.Time(p.TimelineEpochs)*cfg.Policy.EpochLength)
	if err != nil {
		return nil, mix, err
	}
	return &res, mix, nil
}

// Figure7 reproduces the MID3 timeline: per-epoch bus frequency,
// per-application CPI, and scaled channel utilization, showing the
// policy reacting to apsi's phase change.
func (p Params) Figure7() (Report, error) {
	res, mix, err := p.timeline("MID3", config.Default().Cores)
	if err != nil {
		return Report{}, err
	}
	t := stats.Table{
		Title: "Figure 7: timeline of MID3 workload (MemScale)",
		Columns: []string{"t (ms)", "BusFreq", "CPI " + mix.Apps[0], "CPI " + mix.Apps[1],
			"CPI " + mix.Apps[2], "CPI " + mix.Apps[3], "ch0 util", "ch1 util", "ch2 util", "ch3 util"},
		Notes: []string{"apsi's phase change forces the frequency back up mid-run"},
	}
	addTimelineRows(&t, res, mix)
	return Report{ID: "figure7", Title: "MID3 timeline", Table: t}, nil
}

// Figure8 reproduces the MEM4 timeline on an 8-core system, where the
// policy oscillates between two adjacent frequencies, synthesizing a
// "virtual frequency" between ladder points.
func (p Params) Figure8() (Report, error) {
	res, mix, err := p.timeline("MEM4", 8)
	if err != nil {
		return Report{}, err
	}
	t := stats.Table{
		Title: "Figure 8: timeline of MEM4 workload on 8 cores (MemScale)",
		Columns: []string{"t (ms)", "BusFreq", "CPI " + mix.Apps[0], "CPI " + mix.Apps[1],
			"CPI " + mix.Apps[2], "CPI " + mix.Apps[3], "ch0 util", "ch1 util", "ch2 util", "ch3 util"},
		Notes: []string{"adjacent-frequency oscillation approximates a virtual frequency"},
	}
	addTimelineRows(&t, res, mix)
	distinct := map[config.FreqMHz]int{}
	for _, ep := range res.Epochs {
		distinct[ep.Freq]++
	}
	t.Notes = append(t.Notes, fmt.Sprintf("distinct frequencies used: %d", len(distinct)))
	return Report{ID: "figure8", Title: "MEM4 timeline", Table: t}, nil
}

func addTimelineRows(t *stats.Table, res *sim.Result, mix workload.Mix) {
	for _, ep := range res.Epochs {
		// Average CPI across each application's instances.
		perApp := ep.PerAppCPI(mix.Assignment)
		row := []string{
			fmt.Sprintf("%.0f", ep.End.Milliseconds()),
			ep.Freq.String(),
		}
		for _, app := range mix.Apps {
			row = append(row, stats.F2(perApp[app]))
		}
		for _, u := range ep.ChannelUtil {
			row = append(row, stats.Pct(u))
		}
		t.AddRow(row...)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
