package exp

import (
	"strings"
	"testing"

	"memscale/internal/config"
	"memscale/internal/policies"
	"memscale/internal/sim"
	"memscale/internal/workload"
)

// quickParams keeps experiment unit tests fast: two quanta per run.
func quickParams() Params {
	p := DefaultParams()
	p.Epochs = 2
	p.TimelineEpochs = 3
	return p
}

func TestTable2Renders(t *testing.T) {
	r := quickParams().Table2()
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, want := range []string{"Table 2", "tRCD", "15.00ns", "VDD", "800 733"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2 missing %q", want)
		}
	}
}

func TestRunPairBaselineIdentity(t *testing.T) {
	p := quickParams()
	mix, _ := workload.ByName("ILP2")
	out, err := p.runPair(nil, mix, policies.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	// The "policy" is the baseline itself: zero savings, zero CPI
	// change (identical deterministic runs).
	if s := out.SystemSavings(); s != 0 {
		t.Errorf("baseline-vs-baseline system savings = %g", s)
	}
	if s := out.MemorySavings(); s != 0 {
		t.Errorf("baseline-vs-baseline memory savings = %g", s)
	}
	avg, worst := out.CPIIncrease()
	if avg != 0 || worst != 0 {
		t.Errorf("baseline-vs-baseline CPI increase = %g/%g", avg, worst)
	}
	if out.NonMem <= 0 {
		t.Error("calibrated rest-of-system power must be positive")
	}
}

func TestRunPairMemScaleILP(t *testing.T) {
	p := quickParams()
	p.Epochs = 4
	mix, _ := workload.ByName("ILP3")
	out, err := p.runPair(nil, mix, p.memScaleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if s := out.MemorySavings(); s < 0.20 {
		t.Errorf("ILP3 memory savings = %.1f%%, want > 20%%", s*100)
	}
	_, worst := out.CPIIncrease()
	if worst > p.Gamma+0.02 {
		t.Errorf("worst CPI increase %.1f%% exceeds bound", worst*100)
	}
}

func TestPolicySpecsAllRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every policy spec")
	}
	p := quickParams()
	mix, _ := workload.ByName("MID1")
	for _, spec := range policies.All() {
		out, err := p.runPair(nil, mix, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if out.Res.Duration <= 0 {
			t.Errorf("%s: empty run", spec.Name)
		}
	}
}

func TestFigure9To11Rendering(t *testing.T) {
	// Render from a synthetic grid (no simulation).
	mix, _ := workload.ByName("MID1")
	mk := func(memJ, baseMemJ float64) Outcome {
		res := sim.Result{Duration: config.Second}
		res.Memory.Background = memJ
		res.CPI = make([]float64, 16)
		base := sim.Result{Duration: config.Second}
		base.Memory.Background = baseMemJ
		base.CPI = make([]float64, 16)
		for i := range res.CPI {
			res.CPI[i] = 1.05
			base.CPI[i] = 1.0
		}
		return Outcome{Mix: mix, Policy: "X", NonMem: 50, Base: base, Res: res}
	}
	grid := map[string][]Outcome{"X": {mk(20, 40)}}
	names := []string{"X"}
	var b strings.Builder
	Figure9(grid, names).Render(&b)
	Figure10(grid, names).Render(&b)
	Figure11(grid, names).Render(&b)
	out := b.String()
	for _, want := range []string{"Figure 9", "Figure 10", "Figure 11", "Baseline", "5.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figures missing %q:\n%s", want, out)
		}
	}
}

func TestOutcomeMetrics(t *testing.T) {
	mix, _ := workload.ByName("MEM1")
	res := sim.Result{Duration: config.Second}
	res.Memory.Background = 30
	res.CPI = []float64{2.2, 1.1, 1.1, 1.1, 2.2, 1.1, 1.1, 1.1, 2.2, 1.1, 1.1, 1.1, 2.2, 1.1, 1.1, 1.1}
	base := sim.Result{Duration: config.Second}
	base.Memory.Background = 60
	base.CPI = []float64{2.0, 1.0, 1.0, 1.0, 2.0, 1.0, 1.0, 1.0, 2.0, 1.0, 1.0, 1.0, 2.0, 1.0, 1.0, 1.0}
	out := Outcome{Mix: mix, NonMem: 60, Base: base, Res: res}
	if got := out.MemorySavings(); got != 0.5 {
		t.Errorf("memory savings = %g", got)
	}
	// System: (30+60)/(60+60) = 0.75 -> 25% savings.
	if got := out.SystemSavings(); got != 0.25 {
		t.Errorf("system savings = %g", got)
	}
	avg, worst := out.CPIIncrease()
	if avg < 0.099 || avg > 0.101 || worst < 0.099 || worst > 0.101 {
		t.Errorf("CPI increases = %g/%g, want ~0.10", avg, worst)
	}
}
