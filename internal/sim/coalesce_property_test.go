package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"memscale/internal/config"
	"memscale/internal/dram"
	"memscale/internal/telemetry"
	"memscale/internal/trace"
)

// ladderGovernor walks the bus-frequency ladder one step per epoch,
// wrapping around. It is deliberately trivial — the property tests
// need frequency transitions (each one relocks the DLL and reshapes
// idle intervals under the coalescing horizon), not a smart policy.
type ladderGovernor struct{ i int }

func (g *ladderGovernor) Name() string { return "ladder" }

func (g *ladderGovernor) ProfileComplete(Profile) config.FreqMHz {
	f := config.BusFrequencies[g.i%len(config.BusFrequencies)]
	g.i++
	return f
}

func (g *ladderGovernor) EpochEnd(Profile) {}

// randomInterleaving draws a per-core profile that alternates bursty
// traffic with near-idle stretches — the adversarial input for idle
// coalescing, since every burst/idle boundary forces deferred
// precharges, powerdowns, and refreshes to settle retroactively.
func randomInterleaving(rng *rand.Rand, core int) trace.Profile {
	n := 3 + rng.Intn(4)
	phases := make([]trace.Phase, n)
	for i := range phases {
		if i%2 == 0 {
			// Bursty: heavy miss traffic, mixed locality.
			mpki := 15 + 45*rng.Float64()
			phases[i] = trace.Phase{
				Instructions: 20_000 + uint64(rng.Intn(60_000)),
				BaseCPI:      0.8 + 0.7*rng.Float64(),
				MPKI:         mpki,
				WPKI:         mpki * (0.2 + 0.4*rng.Float64()),
				RowLocality:  0.3 + 0.6*rng.Float64(),
			}
		} else {
			// Near-idle: long compute stretches with rare misses, so
			// ranks go quiet and the coalesced paths own the timeline.
			mpki := 0.6 * rng.Float64()
			phases[i] = trace.Phase{
				Instructions: 50_000 + uint64(rng.Intn(150_000)),
				BaseCPI:      0.5 + 0.5*rng.Float64(),
				MPKI:         mpki,
				WPKI:         mpki * rng.Float64(),
				RowLocality:  rng.Float64(),
			}
		}
	}
	return trace.Profile{Name: fmt.Sprintf("rand-core%d", core), Phases: phases}
}

// buildStreams materializes fresh streams for one run. Streams are
// stateful (they advance as the simulation consumes them), so every
// run under comparison must rebuild from the same profiles and seeds.
func buildStreams(t *testing.T, cfg *config.Config, profiles []trace.Profile, seed uint64) []*trace.Stream {
	t.Helper()
	mapper := config.NewAddressMapper(cfg)
	streams := make([]*trace.Stream, len(profiles))
	for i, p := range profiles {
		s, err := trace.NewStream(p, mapper, seed+uint64(i)*0x9e3779b97f4a7c15)
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = s
	}
	return streams
}

func runCase(t *testing.T, cfg config.Config, profiles []trace.Profile, seed uint64, opts Options) Result {
	t.Helper()
	s, err := New(cfg, buildStreams(t, &cfg, profiles, seed), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s.RunFor(2 * cfg.Policy.EpochLength)
}

func f64bitsEq(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("%s: coalesced %v (%#x) != event-driven %v (%#x)",
			what, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

func accountEq(t *testing.T, what string, got, want dram.Account) {
	t.Helper()
	if got != want {
		t.Errorf("%s residency diverged:\ncoalesced:    %+v\nevent-driven: %+v", what, got, want)
	}
}

// requireSameResult asserts bit-identity of every externally visible
// run outcome: energy breakdown, per-core CPI and instruction counts,
// DRAM state residency, and the time-at-frequency histogram.
func requireSameResult(t *testing.T, a, b Result) {
	t.Helper()
	if a.Duration != b.Duration {
		t.Errorf("Duration %v != %v", a.Duration, b.Duration)
	}
	f64bitsEq(t, "Memory.Background", a.Memory.Background, b.Memory.Background)
	f64bitsEq(t, "Memory.ActPre", a.Memory.ActPre, b.Memory.ActPre)
	f64bitsEq(t, "Memory.ReadWrite", a.Memory.ReadWrite, b.Memory.ReadWrite)
	f64bitsEq(t, "Memory.Termination", a.Memory.Termination, b.Memory.Termination)
	f64bitsEq(t, "Memory.Refresh", a.Memory.Refresh, b.Memory.Refresh)
	f64bitsEq(t, "Memory.PLLReg", a.Memory.PLLReg, b.Memory.PLLReg)
	f64bitsEq(t, "Memory.MC", a.Memory.MC, b.Memory.MC)
	f64bitsEq(t, "NonMemEnergy", a.NonMemEnergy, b.NonMemEnergy)
	if len(a.CPI) != len(b.CPI) {
		t.Fatalf("CPI lengths %d != %d", len(a.CPI), len(b.CPI))
	}
	for i := range a.CPI {
		f64bitsEq(t, fmt.Sprintf("CPI[%d]", i), a.CPI[i], b.CPI[i])
		f64bitsEq(t, fmt.Sprintf("Instructions[%d]", i), a.Instructions[i], b.Instructions[i])
	}
	accountEq(t, "run", a.Residency, b.Residency)
	if len(a.FreqTime) != len(b.FreqTime) {
		t.Fatalf("FreqTime %v != %v", a.FreqTime, b.FreqTime)
	}
	for f, d := range a.FreqTime {
		if b.FreqTime[f] != d {
			t.Errorf("FreqTime[%v] %v != %v", f, d, b.FreqTime[f])
		}
	}
}

// TestCoalescingConservationProperty is the conservation property the
// coalescing fast paths are built on: for random idle/traffic
// interleavings, batched refresh/powerdown/completion accounting must
// reconcile Float64bits-exactly with the pure event-driven path
// (Options.DisableCoalescing), and with a telemetry-observed run —
// telemetry pins the controller to the event-driven path, so it
// doubles as a third witness. Residency is integer picoseconds, so
// "exact" there is plain equality; energies and CPIs compare by
// Float64bits. Powerdown modes and frequency transitions both vary
// across cases to cover the batched accounting they trigger.
func TestCoalescingConservationProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test runs several paired simulations")
	}
	pdModes := []config.PowerdownMode{
		config.PowerdownNone, config.PowerdownFast, config.PowerdownSlow,
	}
	for c := 0; c < 3; c++ {
		c := c
		t.Run(fmt.Sprintf("case%d", c), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(0xC0A1E5CE + int64(c)))
			cfg := config.Default()
			cfg.Cores = 4
			cfg.Powerdown = pdModes[c%len(pdModes)]
			profiles := make([]trace.Profile, cfg.Cores)
			for i := range profiles {
				profiles[i] = randomInterleaving(rng, i)
			}
			seed := rng.Uint64()

			coalesced := runCase(t, cfg, profiles, seed,
				Options{Governor: &ladderGovernor{}})
			eventDriven := runCase(t, cfg, profiles, seed,
				Options{Governor: &ladderGovernor{}, DisableCoalescing: true})
			requireSameResult(t, coalesced, eventDriven)

			// Third witness: a telemetry-attached run must agree with
			// both, and its per-epoch residency columns must sum to
			// the run total exactly (epochs tile the run).
			rec := telemetry.NewRecorder(telemetry.Options{})
			observed := runCase(t, cfg, profiles, seed,
				Options{Governor: &ladderGovernor{}, Telemetry: rec})
			requireSameResult(t, coalesced, observed)

			var epochSum dram.Account
			for _, ep := range rec.Epochs() {
				epochSum.Add(ep.Residency)
			}
			accountEq(t, "epoch-sum", epochSum, observed.Residency)
			accountEq(t, "recorder-rollup", rec.Residency(), observed.Residency)
			if want := observed.Duration * config.Time(cfg.Channels*cfg.RanksPerChannel()); epochSum.Total() != want {
				t.Errorf("epoch residency total %v != duration x ranks %v", epochSum.Total(), want)
			}
		})
	}
}
