package event

import (
	"fmt"
	"reflect"
)

// Registry is a Codec assembled from registered callback kinds. Each
// simulator component registers its pre-bound callbacks under stable
// kind names; the registry keys live callbacks by their code pointer —
// method values of the same method share one code pointer across
// receivers, so one registration covers every instance, with the
// receiver recovered from the event's env through the kind's decoder.
type Registry struct {
	byPtr  map[uintptr]*regEntry
	byKind map[string]*regEntry
}

type regEntry struct {
	kind string
	// enc maps a pending event's env to an owner index; nil means the
	// kind carries no env (env must be nil at encode).
	enc func(env any) (int32, error)
	// Exactly one of decB/decH is set, matching the callback form.
	decB func(owner int32) (Bound, any, error)
	decH func(owner int32) (Handler, error)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byPtr: map[uintptr]*regEntry{}, byKind: map[string]*regEntry{}}
}

func (r *Registry) register(kind string, ptr uintptr, e *regEntry) {
	if _, dup := r.byKind[kind]; dup {
		panic(fmt.Sprintf("event: kind %q registered twice", kind))
	}
	if _, dup := r.byPtr[ptr]; dup {
		panic(fmt.Sprintf("event: callback for kind %q already registered under another kind", kind))
	}
	r.byKind[kind] = e
	r.byPtr[ptr] = e
}

// RegisterBound registers a bound-callback kind. sample supplies the
// callback's code pointer; enc maps a pending event's env to an owner
// index (nil enc means the kind schedules with a nil env); dec returns
// the live binding — callback and env — for a decoded owner.
func (r *Registry) RegisterBound(kind string, sample Bound, enc func(env any) (int32, error), dec func(owner int32) (Bound, any, error)) {
	if sample == nil || dec == nil {
		panic("event: RegisterBound needs a sample callback and a decoder")
	}
	r.register(kind, reflect.ValueOf(sample).Pointer(), &regEntry{kind: kind, enc: enc, decB: dec})
}

// RegisterHandler registers a plain-handler kind (events scheduled via
// Schedule/After carry no env or arguments).
func (r *Registry) RegisterHandler(kind string, sample Handler, dec func(owner int32) (Handler, error)) {
	if sample == nil || dec == nil {
		panic("event: RegisterHandler needs a sample callback and a decoder")
	}
	r.register(kind, reflect.ValueOf(sample).Pointer(), &regEntry{kind: kind, decH: dec})
}

// Encode implements Codec.
func (r *Registry) Encode(fn Handler, bfn Bound, env any) (string, int32, error) {
	var ptr uintptr
	switch {
	case bfn != nil:
		ptr = reflect.ValueOf(bfn).Pointer()
	case fn != nil:
		ptr = reflect.ValueOf(fn).Pointer()
	default:
		return "", 0, fmt.Errorf("event: encode of event with no callback")
	}
	e, ok := r.byPtr[ptr]
	if !ok {
		return "", 0, fmt.Errorf("event: callback %v not registered for checkpointing", ptr)
	}
	if e.enc == nil {
		if env != nil {
			return "", 0, fmt.Errorf("event: kind %q carries unexpected env %T", e.kind, env)
		}
		return e.kind, 0, nil
	}
	owner, err := e.enc(env)
	if err != nil {
		return "", 0, fmt.Errorf("event: kind %q: %w", e.kind, err)
	}
	return e.kind, owner, nil
}

// Decode implements Codec.
func (r *Registry) Decode(kind string, owner int32) (Handler, Bound, any, error) {
	e, ok := r.byKind[kind]
	if !ok {
		return nil, nil, nil, fmt.Errorf("event: unknown event kind %q", kind)
	}
	if e.decH != nil {
		fn, err := e.decH(owner)
		return fn, nil, nil, err
	}
	bfn, env, err := e.decB(owner)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("event: kind %q: %w", kind, err)
	}
	return nil, bfn, env, nil
}
