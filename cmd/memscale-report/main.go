// Command memscale-report summarizes exported run telemetry. It loads
// one or more JSONL telemetry files (written by memscale-sim
// -telemetry-out or the library's WriteTelemetry) and prints per-run
// and aggregate digests: state and frequency residency, read-latency
// and queue-depth distributions, and governor decision quality. The
// CSV flags emit figure-ready views instead of (or alongside) the
// digest.
//
// Usage:
//
//	memscale-report run.jsonl [more.jsonl ...]
//	memscale-report -residency fig7.csv -decisions dec.csv run.jsonl
//	memscale-sim -mix MID3 -telemetry-out - | memscale-report -
//
// A path of "-" reads stdin (input) or writes stdout (CSV flags).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"memscale"
)

func main() {
	residency := flag.String("residency", "", "write the figure7-style per-epoch residency CSV to this path")
	latency := flag.String("latency", "", "write the read-latency histogram CSV to this path")
	decisions := flag.String("decisions", "", "write the governor decision trace CSV to this path")
	freq := flag.String("freq", "", "write the per-run frequency residency CSV to this path")
	events := flag.String("events", "", "write the raw event trace CSV to this path")
	quiet := flag.Bool("q", false, "suppress the human-readable summary")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "memscale-report: no input files (use - for stdin)")
		flag.Usage()
		os.Exit(2)
	}

	var exports []*memscale.TelemetryExport
	for _, path := range flag.Args() {
		runs, err := load(path)
		if err != nil {
			fatal(err)
		}
		exports = append(exports, runs...)
	}

	type view struct {
		path  string
		write func(io.Writer, []*memscale.TelemetryExport) error
	}
	for _, v := range []view{
		{*residency, memscale.WriteResidencyCSV},
		{*latency, memscale.WriteLatencyCSV},
		{*decisions, memscale.WriteDecisionsCSV},
		{*freq, memscale.WriteFreqCSV},
		{*events, memscale.WriteEventsCSV},
	} {
		if v.path == "" {
			continue
		}
		if err := emit(v.path, exports, v.write); err != nil {
			fatal(err)
		}
	}

	if !*quiet {
		if err := memscale.WriteTelemetrySummary(os.Stdout, exports); err != nil {
			fatal(err)
		}
	}
}

func load(path string) ([]*memscale.TelemetryExport, error) {
	if path == "-" {
		return memscale.ReadTelemetry(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	runs, err := memscale.ReadTelemetry(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return runs, nil
}

func emit(path string, exports []*memscale.TelemetryExport,
	write func(io.Writer, []*memscale.TelemetryExport) error) error {
	if path == "-" {
		return write(os.Stdout, exports)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, exports); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memscale-report:", err)
	os.Exit(1)
}
