package core

import (
	"encoding/json"
	"fmt"

	"memscale/internal/config"
	"memscale/internal/sim"
)

// This file implements sim.StatefulGovernor for the package's
// governors: the slack ledger, fitted performance model, and decision
// diagnostics are the only mutable state — configuration, timing
// tables, and the power model are rebuilt from the Config on restore.

// PerfModelState is the pure-data image of a fitted PerfModel.
type PerfModelState struct {
	XiBank  float64        `json:"xi_bank"`
	XiBus   float64        `json:"xi_bus"`
	TDevice config.Time    `json:"t_device"`
	FitFreq config.FreqMHz `json:"fit_freq"`
	Alpha   []float64      `json:"alpha,omitempty"`
	TPICpu  []float64      `json:"tpi_cpu,omitempty"`
	CPIObs  []float64      `json:"cpi_obs,omitempty"`
}

// Save captures the model's fitted quantities.
func (m *PerfModel) Save() PerfModelState {
	return PerfModelState{
		XiBank:  m.XiBank,
		XiBus:   m.XiBus,
		TDevice: m.TDevice,
		FitFreq: m.FitFreq,
		Alpha:   append([]float64(nil), m.Alpha...),
		TPICpu:  append([]float64(nil), m.TPICpu...),
		CPIObs:  append([]float64(nil), m.CPIObs...),
	}
}

// Load replaces the model's fitted quantities.
func (m *PerfModel) Load(st PerfModelState) {
	m.XiBank = st.XiBank
	m.XiBus = st.XiBus
	m.TDevice = st.TDevice
	m.FitFreq = st.FitFreq
	m.Alpha = append(m.Alpha[:0], st.Alpha...)
	m.TPICpu = append(m.TPICpu[:0], st.TPICpu...)
	m.CPIObs = append(m.CPIObs[:0], st.CPIObs...)
}

// PolicyState is the pure-data image of the MemScale governor.
type PolicyState struct {
	Gamma      float64                 `json:"gamma"`
	Slack      []config.Time           `json:"slack"`
	Chosen     config.FreqMHz          `json:"chosen"`
	Decisions  int                     `json:"decisions"`
	Degraded   int                     `json:"degraded"`
	TimeAtFreq map[config.FreqMHz]int  `json:"time_at_freq,omitempty"`
	Model      PerfModelState          `json:"model"`
}

// SaveGovernorState implements sim.StatefulGovernor.
func (p *Policy) SaveGovernorState() (any, error) {
	tf := make(map[config.FreqMHz]int, len(p.timeAtFreq))
	for f, n := range p.timeAtFreq {
		tf[f] = n
	}
	return PolicyState{
		Gamma:      p.gamma,
		Slack:      append([]config.Time(nil), p.slack...),
		Chosen:     p.chosen,
		Decisions:  p.decisions,
		Degraded:   p.degraded,
		TimeAtFreq: tf,
		Model:      p.model.Save(),
	}, nil
}

// LoadGovernorState implements sim.StatefulGovernor.
func (p *Policy) LoadGovernorState(data []byte) error {
	var st PolicyState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: policy state: %w", err)
	}
	return p.loadState(st)
}

func (p *Policy) loadState(st PolicyState) error {
	if len(st.Slack) != len(p.slack) {
		return fmt.Errorf("core: policy state has %d cores of slack, policy has %d", len(st.Slack), len(p.slack))
	}
	p.gamma = st.Gamma
	copy(p.slack, st.Slack)
	p.chosen = st.Chosen
	p.decisions = st.Decisions
	p.degraded = st.Degraded
	p.timeAtFreq = make(map[config.FreqMHz]int, len(st.TimeAtFreq))
	for f, n := range st.TimeAtFreq {
		p.timeAtFreq[f] = n
	}
	p.model.Load(st.Model)
	return nil
}

// AblatedPolicyState wraps the base policy state with the stale-profile
// ablation's remembered epoch.
type AblatedPolicyState struct {
	Policy    PolicyState  `json:"policy"`
	LastEpoch *sim.Profile `json:"last_epoch,omitempty"`
}

// SaveGovernorState implements sim.StatefulGovernor.
func (a *AblatedPolicy) SaveGovernorState() (any, error) {
	base, err := a.Policy.SaveGovernorState()
	if err != nil {
		return nil, err
	}
	return AblatedPolicyState{Policy: base.(PolicyState), LastEpoch: a.lastEpoch}, nil
}

// LoadGovernorState implements sim.StatefulGovernor.
func (a *AblatedPolicy) LoadGovernorState(data []byte) error {
	var st AblatedPolicyState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: ablated policy state: %w", err)
	}
	if err := a.Policy.loadState(st.Policy); err != nil {
		return err
	}
	a.lastEpoch = st.LastEpoch
	return nil
}

// PerChannelPolicyState is the pure-data image of the per-channel
// governor.
type PerChannelPolicyState struct {
	Gamma     float64          `json:"gamma"`
	Slack     []config.Time    `json:"slack"`
	Decisions int              `json:"decisions"`
	XiBank    []float64        `json:"xi_bank,omitempty"`
	XiBus     []float64        `json:"xi_bus,omitempty"`
	TDevice   []config.Time    `json:"t_device,omitempty"`
	FitFreq   []config.FreqMHz `json:"fit_freq,omitempty"`
	AlphaCh   [][]float64      `json:"alpha_ch,omitempty"`
	TPICpu    []float64        `json:"tpi_cpu,omitempty"`
	CPIObs    []float64        `json:"cpi_obs,omitempty"`
}

// SaveGovernorState implements sim.StatefulGovernor.
func (p *PerChannelPolicy) SaveGovernorState() (any, error) {
	m := p.model
	alpha := make([][]float64, len(m.AlphaCh))
	for i, row := range m.AlphaCh {
		alpha[i] = append([]float64(nil), row...)
	}
	return PerChannelPolicyState{
		Gamma:     p.gamma,
		Slack:     append([]config.Time(nil), p.slack...),
		Decisions: p.decisions,
		XiBank:    append([]float64(nil), m.XiBank...),
		XiBus:     append([]float64(nil), m.XiBus...),
		TDevice:   append([]config.Time(nil), m.TDevice...),
		FitFreq:   append([]config.FreqMHz(nil), m.FitFreq...),
		AlphaCh:   alpha,
		TPICpu:    append([]float64(nil), m.TPICpu...),
		CPIObs:    append([]float64(nil), m.CPIObs...),
	}, nil
}

// LoadGovernorState implements sim.StatefulGovernor.
func (p *PerChannelPolicy) LoadGovernorState(data []byte) error {
	var st PerChannelPolicyState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: per-channel policy state: %w", err)
	}
	if len(st.Slack) != len(p.slack) {
		return fmt.Errorf("core: per-channel state has %d cores of slack, policy has %d", len(st.Slack), len(p.slack))
	}
	p.gamma = st.Gamma
	copy(p.slack, st.Slack)
	p.decisions = st.Decisions
	m := p.model
	m.XiBank = append(m.XiBank[:0], st.XiBank...)
	m.XiBus = append(m.XiBus[:0], st.XiBus...)
	m.TDevice = append(m.TDevice[:0], st.TDevice...)
	m.FitFreq = append(m.FitFreq[:0], st.FitFreq...)
	m.AlphaCh = m.AlphaCh[:0]
	for _, row := range st.AlphaCh {
		m.AlphaCh = append(m.AlphaCh, append([]float64(nil), row...))
	}
	m.TPICpu = append(m.TPICpu[:0], st.TPICpu...)
	m.CPIObs = append(m.CPIObs[:0], st.CPIObs...)
	return nil
}
