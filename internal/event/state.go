package event

import (
	"fmt"

	"memscale/internal/config"
)

// This file is the checkpoint plane of the event engine. The queue's
// pooled arena, free list, flat heap, and deferred-schedule plane are
// captured verbatim — including free slots, generation counters, and
// the exact heap array layout — so a restored queue reproduces not just
// the pending events but the engine's future behaviour bit-identically:
// slot allocation order, sequence numbering, and same-instant FIFO
// order all continue exactly as they would have in the original run.
//
// Callbacks cannot be serialized directly (they are function values
// bound to live simulator components), so Save translates each pending
// callback through a Codec into a (kind, owner) payload, and Load asks
// the same Codec — built over the freshly reconstructed components —
// to rebind them.

// Codec translates between live callback bindings and serializable
// (kind, owner) payloads. Kind names the registered callback family
// (e.g. a pre-bound controller method); owner identifies which
// component or in-flight object the binding refers to. The inline
// integer arguments a/b are captured separately and pass through
// unchanged.
type Codec interface {
	// Encode maps a pending event's callback binding to a payload.
	// Exactly one of fn/bfn is non-nil, matching how the event was
	// scheduled.
	Encode(fn Handler, bfn Bound, env any) (kind string, owner int32, err error)

	// Decode rebuilds the live callback binding for a payload produced
	// by Encode.
	Decode(kind string, owner int32) (fn Handler, bfn Bound, env any, err error)
}

// NodeState is the serializable image of one pooled event node. Free
// slots carry only their generation counter (Pos < 0); pending slots
// add the encoded callback payload and inline arguments.
type NodeState struct {
	Gen   uint32 `json:"gen"`
	Pos   int32  `json:"pos"`
	Kind  string `json:"kind,omitempty"`
	Owner int32  `json:"owner,omitempty"`
	A     int32  `json:"a,omitempty"`
	B     int32  `json:"b,omitempty"`
}

// EntryState is one heap entry, preserved at its exact array position
// so sift behaviour after restore matches the original run.
type EntryState struct {
	At  config.Time `json:"at"`
	Seq uint64      `json:"seq"`
	Idx int32       `json:"idx"`
}

// DeferredState is one lazily materialized schedule from the deferred
// plane.
type DeferredState struct {
	ActivateAt config.Time `json:"activate_at"`
	Seq        uint64      `json:"seq"`
	FireAt     config.Time `json:"fire_at"`
	Kind       string      `json:"kind"`
	Owner      int32       `json:"owner"`
	A          int32       `json:"a,omitempty"`
	B          int32       `json:"b,omitempty"`
}

// State is the complete serializable image of a Queue.
type State struct {
	Now       config.Time     `json:"now"`
	Seq       uint64          `json:"seq"`
	Fired     uint64          `json:"fired"`
	Scheduled uint64          `json:"scheduled"`
	Coalesced uint64          `json:"coalesced"`
	Firing    uint64          `json:"firing"`
	Nodes     []NodeState     `json:"nodes"`
	Free      []int32         `json:"free"`
	Heap      []EntryState    `json:"heap"`
	Defers    []DeferredState `json:"defers,omitempty"`
}

// Save captures the queue's full state, translating every pending
// callback through codec. The queue is left untouched.
func (q *Queue) Save(codec Codec) (*State, error) {
	st := &State{
		Now:       q.now,
		Seq:       q.seq,
		Fired:     q.fired,
		Scheduled: q.scheduled,
		Coalesced: q.coalesced,
		Firing:    q.firing,
		Nodes:     make([]NodeState, len(q.nodes)),
		Free:      append([]int32(nil), q.free...),
		Heap:      make([]EntryState, len(q.heap)),
	}
	for i := range q.nodes {
		n := &q.nodes[i]
		ns := NodeState{Gen: n.gen, Pos: n.pos}
		if n.pos >= 0 {
			kind, owner, err := codec.Encode(n.fn, n.bfn, n.env)
			if err != nil {
				return nil, fmt.Errorf("event: save node %d: %w", i, err)
			}
			ns.Kind, ns.Owner, ns.A, ns.B = kind, owner, n.a, n.b
		}
		st.Nodes[i] = ns
	}
	for i, e := range q.heap {
		st.Heap[i] = EntryState{At: e.at, Seq: e.seq, Idx: e.idx}
	}
	for i := range q.defers {
		d := &q.defers[i]
		kind, owner, err := codec.Encode(nil, d.bfn, d.env)
		if err != nil {
			return nil, fmt.Errorf("event: save deferred %d: %w", i, err)
		}
		st.Defers = append(st.Defers, DeferredState{
			ActivateAt: d.activateAt, Seq: d.seq, FireAt: d.fireAt,
			Kind: kind, Owner: owner, A: d.a, B: d.b,
		})
	}
	return st, nil
}

// Load replaces the queue's entire state with st, rebinding every
// pending callback through codec. Structural invariants are validated
// so a corrupted state yields an error, never a panic in later queue
// operations: indices must be in range, free slots must not be
// referenced by the heap, and every pending node must appear exactly
// once in the heap array.
func (q *Queue) Load(st *State, codec Codec) error {
	n := len(st.Nodes)
	nodes := make([]node, n)
	for i, ns := range st.Nodes {
		nd := node{gen: ns.Gen, pos: ns.Pos}
		if ns.Pos >= 0 {
			fn, bfn, env, err := codec.Decode(ns.Kind, ns.Owner)
			if err != nil {
				return fmt.Errorf("event: load node %d: %w", i, err)
			}
			nd.fn, nd.bfn, nd.env, nd.a, nd.b = fn, bfn, env, ns.A, ns.B
		}
		nodes[i] = nd
	}
	for i, idx := range st.Free {
		if idx < 0 || int(idx) >= n {
			return fmt.Errorf("event: load: free[%d]=%d out of range [0,%d)", i, idx, n)
		}
		if nodes[idx].pos >= 0 {
			return fmt.Errorf("event: load: free[%d]=%d names a pending node", i, idx)
		}
	}
	refs := make([]int, n)
	for i, e := range st.Heap {
		if e.Idx < 0 || int(e.Idx) >= n {
			return fmt.Errorf("event: load: heap[%d].idx=%d out of range [0,%d)", i, e.Idx, n)
		}
		if nodes[e.Idx].pos < 0 {
			return fmt.Errorf("event: load: heap[%d] references free node %d", i, e.Idx)
		}
		if e.At < st.Now {
			return fmt.Errorf("event: load: heap[%d] fires at %v before now %v", i, e.At, st.Now)
		}
		refs[e.Idx]++
	}
	for i := range nodes {
		if nodes[i].pos >= 0 && refs[i] != 1 {
			return fmt.Errorf("event: load: pending node %d appears %d times in heap", i, refs[i])
		}
	}
	defers := make([]deferred, 0, len(st.Defers))
	for i, ds := range st.Defers {
		if ds.FireAt < ds.ActivateAt {
			return fmt.Errorf("event: load: deferred %d fires at %v before activation %v", i, ds.FireAt, ds.ActivateAt)
		}
		_, bfn, env, err := codec.Decode(ds.Kind, ds.Owner)
		if err != nil {
			return fmt.Errorf("event: load deferred %d: %w", i, err)
		}
		if bfn == nil {
			return fmt.Errorf("event: load deferred %d: kind %q decodes to a plain handler", i, ds.Kind)
		}
		defers = append(defers, deferred{
			activateAt: ds.ActivateAt, seq: ds.Seq, fireAt: ds.FireAt,
			bfn: bfn, env: env, a: ds.A, b: ds.B,
		})
	}

	q.nodes = nodes
	q.free = append(q.free[:0], st.Free...)
	q.heap = q.heap[:0]
	for _, e := range st.Heap {
		q.heap = append(q.heap, entry{at: e.At, seq: e.Seq, idx: e.Idx})
	}
	q.defers = defers
	q.now = st.Now
	q.seq = st.Seq
	q.fired = st.Fired
	q.scheduled = st.Scheduled
	q.coalesced = st.Coalesced
	q.firing = st.Firing
	return nil
}
