package memscale

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
)

// TestFleetSummarySchemaVersion pins the interchange versioning
// contract: writes stamp the current version, unversioned pre-1.1
// summaries still read, and an unknown major version fails with the
// typed error — never a mis-parsed summary.
func TestFleetSummarySchemaVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFleetSummary(&buf, FleetSummary{Nodes: 3}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema_version": "`+FleetSchemaVersion+`"`) {
		t.Errorf("written summary is not stamped with %q:\n%s", FleetSchemaVersion, buf.String())
	}
	back, err := ReadFleetSummary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != FleetSchemaVersion || back.Nodes != 3 {
		t.Errorf("round trip = %+v, want schema %q and 3 nodes", back, FleetSchemaVersion)
	}

	if _, err := ReadFleetSummary(strings.NewReader(`{"nodes":2}`)); err != nil {
		t.Errorf("unversioned pre-1.1 summary rejected: %v", err)
	}
	if _, err := ReadFleetSummary(strings.NewReader(`{"schema_version":"1.9","nodes":2}`)); err != nil {
		t.Errorf("same-major newer minor rejected: %v", err)
	}

	_, err = ReadFleetSummary(strings.NewReader(`{"schema_version":"2.0","nodes":2}`))
	var sve *FleetSchemaVersionError
	if !errors.As(err, &sve) {
		t.Fatalf("unknown major: err = %v, want *FleetSchemaVersionError", err)
	}
	if sve.Version != "2.0" {
		t.Errorf("error carries version %q, want \"2.0\"", sve.Version)
	}
}

func quickFleet(workers int) FleetConfig {
	return FleetConfig{
		Groups: []NodeGroup{
			{Name: "web", Nodes: 3, Mix: "ILP1", Cores: 2, Channels: 1,
				Arrival: ArrivalConfig{Kind: ArrivalPoisson, UsersPerNode: 100, RequestsPerUserHz: 10}},
			{Name: "cache", Nodes: 2, Mix: "MID2", Cores: 2, Channels: 1,
				Arrival: ArrivalConfig{Kind: ArrivalDiurnal}},
		},
		Epochs:       4,
		PowerBudgetW: 30,
		Seed:         11,
		Workers:      workers,
	}
}

// TestRunFleetDeterministicAcrossWorkers is the public-API face of the
// fleet determinism guarantee: the same FleetConfig produces a
// bit-identical FleetSummary regardless of worker count.
func TestRunFleetDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet run")
	}
	a, errA := RunFleet(context.Background(), quickFleet(1))
	b, errB := RunFleet(context.Background(), quickFleet(3))
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v / %v", errA, errB)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("summaries differ across worker counts:\n%s\nvs\n%s", ja, jb)
	}
	if math.Float64bits(a.SER) != math.Float64bits(b.SER) {
		t.Errorf("SER bits differ: %v vs %v", a.SER, b.SER)
	}
}

// TestFleetSummaryInterchange: the JSON and CSV views survive a full
// write/read cycle and carry the rows memscale-report renders.
func TestFleetSummaryInterchange(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet run")
	}
	sum, err := RunFleet(context.Background(), quickFleet(0))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteFleetSummary(&buf, sum); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFleetSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Nodes != sum.Nodes || back.SER != sum.SER || len(back.PerNode) != len(sum.PerNode) {
		t.Errorf("round-trip mangled summary: %+v vs %+v", back, sum)
	}

	var nodes bytes.Buffer
	if err := WriteFleetNodesCSV(&nodes, sum); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(nodes.String()), "\n")
	if len(lines) != 1+sum.Nodes {
		t.Errorf("nodes CSV has %d lines, want header + %d", len(lines), sum.Nodes)
	}
	if !strings.HasPrefix(lines[0], "node,group,") {
		t.Errorf("nodes CSV header = %q", lines[0])
	}

	var caps bytes.Buffer
	if err := WriteFleetCapsCSV(&caps, sum); err != nil {
		t.Fatal(err)
	}
	capLines := strings.Split(strings.TrimSpace(caps.String()), "\n")
	if len(capLines) != 1+len(sum.CapTrace) {
		t.Errorf("caps CSV has %d lines, want header + %d", len(capLines), len(sum.CapTrace))
	}
}

// TestRunFleetScale: a four-digit fleet builds, validates, and resolves
// without touching the simulator (Validate + internal resolution only;
// the full 1000-node run lives in BenchmarkFleet/cmd territory).
func TestRunFleetScaleValidates(t *testing.T) {
	fc := FleetConfig{
		Groups: []NodeGroup{
			{Name: "web", Nodes: 700, Mix: "MID1",
				Arrival: ArrivalConfig{Kind: ArrivalDiurnal}},
			{Name: "batch", Nodes: 300, Mix: "MEM2",
				Arrival: ArrivalConfig{Kind: ArrivalBursty}},
		},
		PowerBudgetW: 20000,
	}
	if err := fc.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err := fc.internal()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range c.Groups {
		total += g.Nodes
	}
	if total != 1000 {
		t.Errorf("resolved fleet has %d nodes, want 1000", total)
	}
}
