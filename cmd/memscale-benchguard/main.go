// Command memscale-benchguard turns `go test -bench` output into a
// machine-readable benchmark report and enforces per-benchmark
// budgets, so a hot-path regression fails CI instead of landing
// silently.
//
// Usage:
//
//	go test -run=NONE -bench='BenchmarkSingleRun$|BenchmarkSweep$' \
//	    -benchmem -benchtime=1x . | memscale-benchguard -out BENCH_5.json
//
// It parses every benchmark result line on stdin — lines with only the
// standard ns/op, B/op, and allocs/op columns are accepted as-is;
// custom metrics such as events/op are picked up when present but are
// never required — writes a JSON report alongside the recorded
// baseline from the previous PR's report (BENCH_4), and exits non-zero
// when a benchmark with a budget exceeds its allocs/op ceiling or its
// events/op ceiling. An events/op budget is only enforced when the run
// actually emitted the metric, so benchmarks that do not report it
// cannot trip the guard.
//
// Besides ceilings, the guard enforces minimum floors on custom
// metrics — e.g. BenchmarkForkedSweep must keep its warm-speedup-x at
// or above 1.8, so losing the warm-start fast path fails CI. A floor
// is only enforced when the run emitted the metric, and every floored
// metric the run did emit is persisted into the report's
// min_metric_values block next to its floor, so the recorded
// BENCH_*.json answers "what speedup did CI actually measure?".
//
// Budgets default to the tables below; override per benchmark with
// -max-allocs 'BenchmarkSingleRun=10000',
// -max-events 'BenchmarkSingleRun=4500000', and
// -min-metrics 'BenchmarkForkedSweep=warm-speedup-x:1.8'.
// -min-speedup-x 'BenchmarkSingleRunParallel=1.4' is shorthand for a
// floor on the "speedup-x" metric the parallel-engine benchmarks emit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// recordedBaselines are the per-benchmark reference points from earlier
// PRs' reports; the report's speedup and event-reduction ratios are
// computed against them. BenchmarkSingleRun is measured against
// results/BENCH_4.json — the zero-allocation event core the coalescing
// fast paths started from. BenchmarkSingleRunParallel carries no
// recorded baseline: its op times the serial coalesced engine (the
// BENCH_5 state of the code) and the channel-sharded engine on
// identical work in-process, and reports the ratio as speedup-x — a
// live serial-vs-parallel comparison instead of a stale recorded one.
var recordedBaselines = map[string]result{
	"BenchmarkSingleRun": {
		NsPerOp:     2487728979,
		AllocsPerOp: 1167,
		BytesPerOp:  153976,
		Metrics:     map[string]float64{"events/op": 7537520},
	},
}

// defaultBudgets are allocs/op ceilings: ~8x the observed steady-state
// cost — loose enough for noise and moderate feature growth, tight
// enough that reintroducing per-event allocations trips the guard
// immediately.
var defaultBudgets = map[string]int64{
	"BenchmarkSingleRun": 10_000,
	// 64-node fleet: ~27k allocs steady state (fleet orchestration is
	// per-node, not per-event); ~8x headroom.
	"BenchmarkFleet": 200_000,
}

// defaultEventBudgets are events/op ceilings, set just above the
// coalesced steady state (~4.18M): losing a coalescing fast path — the
// elided events quietly coming back — is a performance regression the
// wall-clock numbers alone are too noisy to catch.
var defaultEventBudgets = map[string]float64{
	"BenchmarkSingleRun": 4_500_000,
	// 64 paired node runs x 2 epochs fire ~63M events; the ceiling
	// trips if the coalescing fast paths regress fleet-wide.
	"BenchmarkFleet": 70_000_000,
}

// defaultMinMetrics are custom-metric floors keyed by benchmark name:
// a run that reports the metric below its floor is a regression. The
// forked-sweep floor guards the checkpoint subsystem's headline win —
// a 16-variant sweep forked from a shared 50% warm-up prefix has an
// ideal 1.88x speedup over the cold sweep; 1.8x leaves noise headroom
// while catching any loss of prefix sharing.
var defaultMinMetrics = map[string]map[string]float64{
	"BenchmarkForkedSweep": {"warm-speedup-x": 1.8},
	// The channel-sharded event engine must actually pay for its
	// complexity: 1.4x over the serial engine at 4 shards (the ideal is
	// 4x; window-edge synchronization and cross-shard storms eat part of
	// it). The benchmark only emits speedup-x on multi-CPU hosts, so
	// single-core runs cannot trip the floor.
	"BenchmarkSingleRunParallel": {"speedup-x": 1.4},
	// The unpartitioned interleaved mix shards at confinement-group
	// boundaries: MEM1/ilv2 resolves to 2 shards (ideal 2x), so the
	// floor sits lower than the 4-shard partitioned one.
	"BenchmarkSingleRunParallelInterleaved": {"speedup-x": 1.3},
}

type result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Benchmarks   map[string]result             `json:"benchmarks"`
	Baseline     map[string]result             `json:"baseline"`
	Budgets      map[string]int64              `json:"budgets_allocs_per_op"`
	EventBudgets map[string]float64            `json:"budgets_events_per_op,omitempty"`
	MinMetrics   map[string]map[string]float64 `json:"min_metrics,omitempty"`

	// MinMetricValues records the values the run actually achieved for
	// every floored metric that was emitted — the measured speedup-x
	// next to its floor, so the report answers "how much headroom is
	// left?" without re-running the benchmark.
	MinMetricValues map[string]map[string]float64 `json:"min_metric_values,omitempty"`

	Improve     map[string]float64 `json:"speedup_vs_baseline,omitempty"`
	EventsRatio map[string]float64 `json:"events_reduction_vs_baseline,omitempty"`
	Violations  []string           `json:"violations"`
}

// parseLine decodes one `go test -bench` result line, e.g.
//
//	BenchmarkSingleRun-8   3   202072 ns/op   7537 events/op   12 B/op   3 allocs/op
//
// returning the benchmark name (GOMAXPROCS suffix stripped) and the
// parsed result; ok is false for non-benchmark lines. Custom metric
// columns are optional: a plain ns/op-only line parses fine.
func parseLine(line string) (name string, r result, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	name = fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r.Metrics = map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = val
		case "allocs/op":
			r.AllocsPerOp = int64(val)
		case "B/op":
			r.BytesPerOp = int64(val)
		default:
			r.Metrics[fields[i+1]] = val
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return name, r, r.NsPerOp > 0
}

func parseBudgets(spec string, into map[string]int64) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, val, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found {
			return fmt.Errorf("budget %q is not name=allocs", part)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("budget %q: %v", part, err)
		}
		into[name] = n
	}
	return nil
}

func parseEventBudgets(spec string, into map[string]float64) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, val, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found {
			return fmt.Errorf("event budget %q is not name=events", part)
		}
		n, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("event budget %q: %v", part, err)
		}
		into[name] = n
	}
	return nil
}

// parseMinSpeedup decodes 'Name=floor,Name=floor' specs into floors on
// the "speedup-x" metric — sugar over parseMinMetrics for the common
// case of guarding a parallel engine's wall-clock win.
func parseMinSpeedup(spec string, into map[string]map[string]float64) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, val, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found {
			return fmt.Errorf("min speedup %q is not Name=floor", part)
		}
		n, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("min speedup %q: %v", part, err)
		}
		if into[name] == nil {
			into[name] = map[string]float64{}
		}
		into[name]["speedup-x"] = n
	}
	return nil
}

// parseMinMetrics decodes 'Name=metric:floor,Name=metric:floor'
// specs into the floor table.
func parseMinMetrics(spec string, into map[string]map[string]float64) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, rest, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found {
			return fmt.Errorf("min metric %q is not Name=metric:floor", part)
		}
		metric, val, found := strings.Cut(rest, ":")
		if !found {
			return fmt.Errorf("min metric %q is not Name=metric:floor", part)
		}
		n, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("min metric %q: %v", part, err)
		}
		if into[name] == nil {
			into[name] = map[string]float64{}
		}
		into[name][metric] = n
	}
	return nil
}

func main() {
	out := flag.String("out", "BENCH_5.json", "write the JSON benchmark report to this file")
	budgetSpec := flag.String("max-allocs", "",
		"extra allocs/op budgets as 'Name=N,Name=N' (override or extend the defaults)")
	eventSpec := flag.String("max-events", "",
		"extra events/op budgets as 'Name=N,Name=N' (override or extend the defaults)")
	minSpec := flag.String("min-metrics", "",
		"extra custom-metric floors as 'Name=metric:floor,...' (override or extend the defaults)")
	speedupSpec := flag.String("min-speedup-x", "",
		"speedup-x floors as 'Name=floor,Name=floor' (shorthand for -min-metrics 'Name=speedup-x:floor')")
	flag.Parse()

	budgets := make(map[string]int64, len(defaultBudgets))
	for k, v := range defaultBudgets {
		budgets[k] = v
	}
	if err := parseBudgets(*budgetSpec, budgets); err != nil {
		fmt.Fprintln(os.Stderr, "memscale-benchguard:", err)
		os.Exit(2)
	}
	eventBudgets := make(map[string]float64, len(defaultEventBudgets))
	for k, v := range defaultEventBudgets {
		eventBudgets[k] = v
	}
	if err := parseEventBudgets(*eventSpec, eventBudgets); err != nil {
		fmt.Fprintln(os.Stderr, "memscale-benchguard:", err)
		os.Exit(2)
	}
	minMetrics := make(map[string]map[string]float64, len(defaultMinMetrics))
	for name, floors := range defaultMinMetrics {
		minMetrics[name] = map[string]float64{}
		for m, v := range floors {
			minMetrics[name][m] = v
		}
	}
	if err := parseMinMetrics(*minSpec, minMetrics); err != nil {
		fmt.Fprintln(os.Stderr, "memscale-benchguard:", err)
		os.Exit(2)
	}
	if err := parseMinSpeedup(*speedupSpec, minMetrics); err != nil {
		fmt.Fprintln(os.Stderr, "memscale-benchguard:", err)
		os.Exit(2)
	}

	rep := report{
		Benchmarks:      map[string]result{},
		Baseline:        recordedBaselines,
		Budgets:         budgets,
		EventBudgets:    eventBudgets,
		MinMetrics:      minMetrics,
		MinMetricValues: map[string]map[string]float64{},
		Improve:         map[string]float64{},
		EventsRatio:     map[string]float64{},
		Violations:      []string{},
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		fmt.Println(sc.Text()) // pass the raw output through
		name, r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		rep.Benchmarks[name] = r
		if base, have := recordedBaselines[name]; have && r.NsPerOp > 0 {
			rep.Improve[name] = base.NsPerOp / r.NsPerOp
			if be, ne := base.Metrics["events/op"], r.Metrics["events/op"]; be > 0 && ne > 0 {
				rep.EventsRatio[name] = be / ne
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "memscale-benchguard: read:", err)
		os.Exit(2)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "memscale-benchguard: no benchmark results on stdin")
		os.Exit(2)
	}

	for name, budget := range budgets {
		r, ran := rep.Benchmarks[name]
		if !ran {
			continue // guard only what this invocation ran
		}
		if r.AllocsPerOp > budget {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"%s allocated %d allocs/op, budget %d", name, r.AllocsPerOp, budget))
		}
	}
	for name, budget := range eventBudgets {
		r, ran := rep.Benchmarks[name]
		if !ran {
			continue
		}
		ev, reported := r.Metrics["events/op"]
		if !reported {
			continue // the metric is optional; absence is not a violation
		}
		if ev > budget {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"%s fired %.0f events/op, budget %.0f", name, ev, budget))
		}
	}
	for name, floors := range minMetrics {
		r, ran := rep.Benchmarks[name]
		if !ran {
			continue
		}
		for metric, floor := range floors {
			v, reported := r.Metrics[metric]
			if !reported {
				continue // floors only bind when the run emitted the metric
			}
			if rep.MinMetricValues[name] == nil {
				rep.MinMetricValues[name] = map[string]float64{}
			}
			rep.MinMetricValues[name][metric] = v
			if v < floor {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"%s reported %s = %.3f, floor %.3f", name, metric, v, floor))
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "memscale-benchguard:", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "memscale-benchguard:", err)
		os.Exit(2)
	}
	fmt.Printf("memscale-benchguard: report written to %s\n", *out)

	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "memscale-benchguard: BUDGET REGRESSION:", v)
		}
		os.Exit(1)
	}
}
