package faults

import (
	"time"

	"memscale/internal/trace"
)

// Fleet-scope fault classes. These disturb the *execution* of a node
// within a fleet — crashes, stragglers, corrupted recovery checkpoints,
// coordinator-visible losses — rather than the simulated hardware, so
// they live on a separate injector with its own plan type instead of
// widening Kind. The same seeded order-independent draw scheme applies:
// every decision is a pure function of (seed, epoch, class, attempt).
//
// Attempt semantics differ from the hardware classes. Crash, straggler,
// and checkpoint-corruption draws are salted with the node's restart
// attempt so that a node recovered from a checkpoint does not re-hit
// the exact fault that killed it when it replays the same epochs —
// mirroring real fleets, where a restarted process rolls new dice.
// Node-loss windows are attempt-INdependent: they model the
// coordinator's view of the network, which does not care how many
// times the node process restarted.

// Draw salts for the fleet-scope decision streams. They continue the
// hardware-class salts (saltStorm..saltTransient = 1..6) and are chosen
// to stay clear of the saltRelock+7a sequence (4, 11, 18, 25, ...):
// 7..10 are ≢ 4 (mod 7).
const (
	saltNodeCrash   uint64 = 7
	saltStraggler   uint64 = 8
	saltCkptCorrupt uint64 = 9
	saltNodeLoss    uint64 = 10
)

// attemptSalt offsets a fleet-class salt by the restart attempt. The
// multiplier 131 keeps attempt-salted streams disjoint from each other
// (base salts differ by < 131) and from the relock sequence for any
// realistic retry bound.
func attemptSalt(salt uint64, attempt int) uint64 {
	if attempt < 0 {
		attempt = 0
	}
	return salt + uint64(attempt)*131
}

// DefaultNodeLossEpochs is the loss-window length when NodeLossEpochs
// is zero.
const DefaultNodeLossEpochs = 3

// DefaultStragglerDelay is the host-time stall a straggling node
// inserts when StragglerDelay is zero.
const DefaultStragglerDelay = 20 * time.Millisecond

// FleetPlan is the fleet-scope disturbance schedule of one (epoch,
// attempt) pair for one node.
type FleetPlan struct {
	// Crash: the node dies mid-epoch before completing it; the
	// supervisor must restart it from its last good checkpoint.
	Crash bool

	// Straggle: the node stalls in host time (simulated results are
	// unaffected), long enough to trip a per-node watchdog if one is
	// armed tighter than the stall.
	Straggle bool

	// CorruptCheckpoint: the periodic recovery checkpoint written at
	// this epoch is corrupted on the way out, so a later restore from
	// it fails with ErrCorruptCheckpoint and recovery must fall back to
	// an older snapshot (or a from-scratch replay).
	CorruptCheckpoint bool
}

// Any reports whether the plan disturbs anything.
func (p FleetPlan) Any() bool { return p.Crash || p.Straggle || p.CorruptCheckpoint }

// FleetEnabled reports whether any fleet-scope fault class can fire.
func (c Config) FleetEnabled() bool {
	return c.NodeCrashRate > 0 || c.StragglerRate > 0 ||
		c.CheckpointCorruptRate > 0 || c.NodeLossRate > 0
}

// FleetInjector produces deterministic fleet-scope fault plans for one
// node. A nil *FleetInjector is the disabled state: NodePlan returns
// the zero FleetPlan and LostAt reports false. Like Injector it is
// stateless beyond its configuration.
type FleetInjector struct {
	cfg Config
}

// NewFleet builds a fleet-scope injector. Callers give each node its
// own derived seed so the per-node disturbance schedules decorrelate.
// Returns nil (no error) when no fleet-scope class is enabled, so the
// disabled path costs nothing.
func NewFleet(c Config) (*FleetInjector, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if !c.FleetEnabled() {
		return nil, nil
	}
	return &FleetInjector{cfg: c.WithDefaults()}, nil
}

// Config returns the injector's defaulted configuration. Safe on nil.
func (in *FleetInjector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// draw mirrors Injector.draw: uniform [0,1) for (seed, salt, index),
// independent of call order.
func (in *FleetInjector) draw(salt, index uint64) float64 {
	const mix1 = 0x9e3779b97f4a7c15
	const mix2 = 0xd1b54a32d192ed03
	state := in.cfg.Seed ^ (salt+1)*mix1 ^ (index+1)*mix2
	return trace.NewRNG(state).Float64()
}

// NodePlan returns the fleet-scope disturbance schedule of one epoch
// for the given restart attempt. Safe on nil.
func (in *FleetInjector) NodePlan(epoch, attempt int) FleetPlan {
	if in == nil || epoch < 0 {
		return FleetPlan{}
	}
	c := in.cfg
	e := uint64(epoch)
	var p FleetPlan
	if c.NodeCrashRate > 0 && in.draw(attemptSalt(saltNodeCrash, attempt), e) < c.NodeCrashRate {
		p.Crash = true
	}
	if c.StragglerRate > 0 && in.draw(attemptSalt(saltStraggler, attempt), e) < c.StragglerRate {
		p.Straggle = true
	}
	if c.CheckpointCorruptRate > 0 && in.draw(attemptSalt(saltCkptCorrupt, attempt), e) < c.CheckpointCorruptRate {
		p.CorruptCheckpoint = true
	}
	return p
}

// LostAt reports whether a coordinator-visible loss window covers the
// epoch. A window opening at epoch w covers [w, w+NodeLossEpochs);
// like thermal windows, checking the last NodeLossEpochs draws keeps
// the answer a pure function of (seed, epoch). Attempt-independent by
// design. Safe on nil.
func (in *FleetInjector) LostAt(epoch int) bool {
	if in == nil || epoch < 0 || in.cfg.NodeLossRate <= 0 {
		return false
	}
	for w := epoch; w > epoch-in.cfg.NodeLossEpochs && w >= 0; w-- {
		if in.draw(saltNodeLoss, uint64(w)) < in.cfg.NodeLossRate {
			return true
		}
	}
	return false
}

// StragglerDelay returns the host-time stall a straggling node should
// insert. Safe on nil (returns 0).
func (in *FleetInjector) StragglerDelay() time.Duration {
	if in == nil {
		return 0
	}
	return in.cfg.StragglerDelay
}
