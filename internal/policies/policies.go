// Package policies catalogues the energy-management schemes the paper
// compares in Section 4.2.3: the unmanaged baseline, the fast- and
// slow-exit powerdown controllers, Decoupled DIMMs, the best static
// frequency, and the MemScale variants. Each scheme is a Spec bundling
// the configuration changes it needs with the governor that drives it,
// so experiment code can sweep them uniformly.
package policies

import (
	"errors"
	"fmt"

	"memscale/internal/config"
	"memscale/internal/core"
	"memscale/internal/sim"
)

// ErrUnknownPolicy reports a scheme name outside the Section 4.2.3
// catalogue. ByName wraps it with %w so callers can match with
// errors.Is; the public memscale package re-exports it.
var ErrUnknownPolicy = errors.New("unknown policy")

// StaticFreq is the statically selected frequency of the "Static"
// baseline: the highest-saving setting that never violates the
// performance target across workloads (Section 4.1 picks 467 MHz).
const StaticFreq = config.Freq467

// DecoupledDevFreq is the DRAM device frequency of the Decoupled DIMMs
// baseline (channels stay at 800 MHz; Section 4.1 picks 400 MHz).
const DecoupledDevFreq = config.Freq400

// Spec describes one energy-management scheme.
type Spec struct {
	// Name as used in figures ("MemScale", "Fast-PD", ...).
	Name string

	// Description for documentation output.
	Description string

	// Configure mutates the system configuration (powerdown mode,
	// decoupled device frequency). May be nil.
	Configure func(*config.Config)

	// Governor builds the OS policy driving frequency decisions; nil
	// means the memory runs at whatever the configuration boots with.
	Governor func(cfg *config.Config, nonMemPower float64) sim.Governor
}

// Static is a trivial governor pinning one frequency.
type Static struct {
	Freq config.FreqMHz
}

// Name implements sim.Governor.
func (s Static) Name() string { return fmt.Sprintf("static-%d", int(s.Freq)) }

// ProfileComplete implements sim.Governor.
func (s Static) ProfileComplete(sim.Profile) config.FreqMHz { return s.Freq }

// EpochEnd implements sim.Governor.
func (s Static) EpochEnd(sim.Profile) {}

// Named specs, in the Figure 9/10/11 presentation order.
var (
	Baseline = Spec{
		Name:        "Baseline",
		Description: "memory subsystem always at nominal frequency, no powerdown",
	}
	FastPD = Spec{
		Name:        "Fast-PD",
		Description: "immediate fast-exit precharge powerdown when a rank's banks close",
		Configure:   func(c *config.Config) { c.Powerdown = config.PowerdownFast },
	}
	SlowPD = Spec{
		Name:        "Slow-PD",
		Description: "immediate slow-exit precharge powerdown (DLL off)",
		Configure:   func(c *config.Config) { c.Powerdown = config.PowerdownSlow },
	}
	Decoupled = Spec{
		Name:        "Decoupled",
		Description: "Decoupled DIMMs: channel at nominal, DRAM devices at a low static frequency",
		Configure:   func(c *config.Config) { c.DecoupledDevFreq = DecoupledDevFreq },
	}
	StaticBest = Spec{
		Name:        "Static",
		Description: "whole memory subsystem statically at the best fixed frequency",
		Governor: func(*config.Config, float64) sim.Governor {
			return Static{Freq: StaticFreq}
		},
	}
	MemScale = Spec{
		Name:        "MemScale",
		Description: "dynamic DVFS/DFS minimizing full-system energy under the CPI bound",
		Governor: func(cfg *config.Config, nonMem float64) sim.Governor {
			return core.NewPolicy(cfg, core.Options{NonMemPower: nonMem})
		},
	}
	MemScaleMemEnergy = Spec{
		Name:        "MemScale (MemEnergy)",
		Description: "MemScale minimizing memory energy only",
		Governor: func(cfg *config.Config, nonMem float64) sim.Governor {
			return core.NewPolicy(cfg, core.Options{
				NonMemPower: nonMem,
				Objective:   core.MinimizeMemoryEnergy,
			})
		},
	}
	MemScaleFastPD = Spec{
		Name:        "MemScale + Fast-PD",
		Description: "MemScale combined with fast-exit powerdown",
		Configure:   func(c *config.Config) { c.Powerdown = config.PowerdownFast },
		Governor: func(cfg *config.Config, nonMem float64) sim.Governor {
			return core.NewPolicy(cfg, core.Options{NonMemPower: nonMem})
		},
	}
)

// All returns every scheme in presentation order.
func All() []Spec {
	return []Spec{
		Baseline, FastPD, SlowPD, Decoupled, StaticBest,
		MemScale, MemScaleMemEnergy, MemScaleFastPD,
	}
}

// Alternatives returns the Figure 9 comparison set (everything except
// the baseline).
func Alternatives() []Spec { return All()[1:] }

// ByName finds a scheme by its figure name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("policies: %w %q", ErrUnknownPolicy, name)
}

// Names lists the scheme names in order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Name
	}
	return out
}
