package dram

import (
	"testing"
	"testing/quick"

	"memscale/internal/config"
)

func resolved(bus config.FreqMHz) *Resolved {
	r := Resolve(config.DefaultDDR3Timing(), bus, bus)
	return &r
}

func TestResolveAtNominal(t *testing.T) {
	r := resolved(config.Freq800)
	// 15 ns is exactly 12 cycles at 800 MHz: no quantization error.
	if r.TRCD != 15*config.Nanosecond || r.TCL != 15*config.Nanosecond {
		t.Errorf("tRCD/tCL = %v/%v, want 15ns", r.TRCD, r.TCL)
	}
	if r.Burst != 5*config.Nanosecond {
		t.Errorf("burst = %v, want 5ns", r.Burst)
	}
	if r.MC != 3125*config.Picosecond {
		t.Errorf("MC = %v, want 3.125ns", r.MC)
	}
}

func TestResolveQuantization(t *testing.T) {
	// Device-core latencies never fall below their wall-clock spec and
	// quantize up by at most one clock period; the burst and MC times
	// grow strictly as frequency drops.
	spec := config.DefaultDDR3Timing()
	prev := resolved(config.BusFrequencies[0])
	for _, f := range config.BusFrequencies {
		cur := resolved(f)
		period := f.Period()
		for _, p := range []struct {
			name      string
			got, want config.Time
		}{
			{"tRCD", cur.TRCD, spec.TRCD},
			{"tRP", cur.TRP, spec.TRP},
			{"tCL", cur.TCL, spec.TCL},
			{"tRAS", cur.TRAS, spec.TRAS},
			{"tRFC", cur.TRFC, spec.TRFC},
		} {
			if p.got < p.want || p.got >= p.want+period {
				t.Errorf("%v %s = %v, want in [%v, %v)", f, p.name, p.got, p.want, p.want+period)
			}
		}
		if f != config.BusFrequencies[0] {
			if cur.Burst <= prev.Burst {
				t.Errorf("burst did not grow from %v to %v", prev.BusFreq, f)
			}
			if cur.MC <= prev.MC {
				t.Errorf("MC latency did not grow from %v to %v", prev.BusFreq, f)
			}
		}
		prev = cur
	}
}

func TestResolveDecoupled(t *testing.T) {
	r := Resolve(config.DefaultDDR3Timing(), config.Freq800, config.Freq400)
	if r.Burst != 5*config.Nanosecond {
		t.Errorf("channel burst = %v, want 5ns", r.Burst)
	}
	if r.DevBurst != 10*config.Nanosecond {
		t.Errorf("device burst = %v, want 10ns", r.DevBurst)
	}
	// Device timings quantize at the device clock (2.5 ns): 15 ns is
	// exactly 6 cycles.
	if r.TRCD != 15*config.Nanosecond {
		t.Errorf("decoupled tRCD = %v", r.TRCD)
	}
}

func TestAccessKindLatency(t *testing.T) {
	r := resolved(config.Freq800)
	if got := r.Latency(RowHit); got != r.TCL {
		t.Errorf("hit latency = %v", got)
	}
	if got := r.Latency(ClosedMiss); got != r.TRCD+r.TCL {
		t.Errorf("closed-miss latency = %v", got)
	}
	if got := r.Latency(OpenMiss); got != r.TRP+r.TRCD+r.TCL {
		t.Errorf("open-miss latency = %v", got)
	}
	for k, name := range map[AccessKind]string{RowHit: "row-hit", ClosedMiss: "closed-miss", OpenMiss: "open-miss"} {
		if k.String() != name {
			t.Errorf("kind %d string = %q", int(k), k.String())
		}
	}
}

func TestClosedMissAccess(t *testing.T) {
	tm := resolved(config.Freq800)
	r := NewRank(8, tm)
	ready, kind, pdExit := r.StartAccess(1000, 0, 42)
	if kind != ClosedMiss || pdExit {
		t.Fatalf("kind=%v pdExit=%v", kind, pdExit)
	}
	if want := config.Time(1000) + tm.TRCD + tm.TCL; ready != want {
		t.Errorf("ready = %v, want %v", ready, want)
	}
	if r.OpenRow(0) != 42 {
		t.Errorf("row not open after activation")
	}
	busStart := ready
	busEnd := busStart + tm.Burst
	pd := r.FinishAccess(0, busStart, busEnd, false, false)
	// Precharge cannot start before actAt + tRAS = 1000 + 35ns.
	if want := config.MaxTime(busEnd, 1000+tm.TRAS) + tm.TRP; pd != want {
		t.Errorf("prechargeDone = %v, want %v", pd, want)
	}
	r.PrechargeDone(pd, 0)
	if r.OpenRow(0) != -1 {
		t.Error("row still open after precharge")
	}
	if free, ok := r.BankFreeAt(0); !ok || free != pd {
		t.Errorf("bank free at %v/%v, want %v", free, ok, pd)
	}
}

func TestRowHitKeepOpen(t *testing.T) {
	tm := resolved(config.Freq800)
	r := NewRank(8, tm)
	ready, _, _ := r.StartAccess(0, 3, 7)
	busEnd := ready + tm.Burst
	r.FinishAccess(3, ready, busEnd, false, true) // keep open
	if r.OpenRow(3) != 7 {
		t.Fatal("row should remain open")
	}
	ready2, kind, _ := r.StartAccess(busEnd, 3, 7)
	if kind != RowHit {
		t.Fatalf("second access kind = %v, want row-hit", kind)
	}
	if want := busEnd + tm.TCL; ready2 != want {
		t.Errorf("hit ready = %v, want %v", ready2, want)
	}
}

func TestOpenMiss(t *testing.T) {
	tm := resolved(config.Freq800)
	r := NewRank(8, tm)
	ready, _, _ := r.StartAccess(0, 3, 7)
	busEnd := ready + tm.Burst
	r.FinishAccess(3, ready, busEnd, false, true) // row 7 left open
	start := busEnd + 100*config.Nanosecond       // past tRRD/tFAW windows
	ready2, kind, _ := r.StartAccess(start, 3, 9)
	if kind != OpenMiss {
		t.Fatalf("kind = %v, want open-miss", kind)
	}
	if want := start + tm.TRP + tm.TRCD + tm.TCL; ready2 != want {
		t.Errorf("open-miss ready = %v, want %v", ready2, want)
	}
}

func TestTRRDSpacing(t *testing.T) {
	tm := resolved(config.Freq800)
	r := NewRank(8, tm)
	// Two activations to different banks at the same instant: the
	// second must wait tRRD.
	ready0, _, _ := r.StartAccess(0, 0, 1)
	ready1, _, _ := r.StartAccess(0, 1, 1)
	if want := tm.TRRD + tm.TRCD + tm.TCL; ready1 != want {
		t.Errorf("second activation ready = %v, want %v (tRRD-delayed)", ready1, want)
	}
	_ = ready0
}

func TestTFAWWindow(t *testing.T) {
	tm := resolved(config.Freq800)
	r := NewRank(8, tm)
	// Five activations at once: the fifth must wait for the tFAW
	// window of the first four.
	var lastReady config.Time
	for b := 0; b < 5; b++ {
		lastReady, _, _ = r.StartAccess(0, b, 1)
	}
	// Activation 5 (index 4) cannot be earlier than act0 + tFAW.
	minReady := tm.TFAW + tm.TRCD + tm.TCL
	if lastReady < minReady {
		t.Errorf("fifth activation ready = %v, want >= %v", lastReady, minReady)
	}
}

func TestPowerdownCycle(t *testing.T) {
	tm := resolved(config.Freq800)
	r := NewRank(8, tm)
	if !r.Idle(0) {
		t.Fatal("fresh rank should be idle")
	}
	if !r.EnterPowerdown(1000, false) {
		t.Fatal("EnterPowerdown failed on idle rank")
	}
	if r.InPowerdown() != PDFast {
		t.Errorf("pd state = %v", r.InPowerdown())
	}
	if r.EnterPowerdown(1000, false) {
		t.Error("double powerdown must fail")
	}
	now := config.Time(10_000_000) // 10 us in PD
	ready, kind, pdExit := r.StartAccess(now, 0, 5)
	if !pdExit {
		t.Error("access out of PD must flag a powerdown exit")
	}
	if kind != ClosedMiss {
		t.Errorf("kind = %v", kind)
	}
	if want := now + tm.TXP + tm.TRCD + tm.TCL; ready != want {
		t.Errorf("ready = %v, want %v (tXP penalty)", ready, want)
	}
	acct := r.Flush(now)
	if acct.PDExits != 1 {
		t.Errorf("PDExits = %d", acct.PDExits)
	}
	if acct.PrechargePD == 0 {
		t.Error("no precharge-PD time accounted")
	}
}

func TestSlowPowerdownExit(t *testing.T) {
	tm := resolved(config.Freq800)
	r := NewRank(8, tm)
	r.EnterPowerdown(0, true)
	if r.InPowerdown() != PDSlow {
		t.Fatalf("pd state = %v", r.InPowerdown())
	}
	ready, _, _ := r.StartAccess(1000, 0, 5)
	if want := config.Time(1000) + tm.TXPDLL + tm.TRCD + tm.TCL; ready != want {
		t.Errorf("ready = %v, want %v (tXPDLL penalty)", ready, want)
	}
}

func TestPowerdownRefusedWhenBusy(t *testing.T) {
	tm := resolved(config.Freq800)
	r := NewRank(8, tm)
	ready, _, _ := r.StartAccess(0, 0, 1)
	if r.EnterPowerdown(ready, false) {
		t.Error("powerdown with in-service bank must fail")
	}
	busEnd := ready + tm.Burst
	pd := r.FinishAccess(0, ready, busEnd, false, false)
	if r.EnterPowerdown(busEnd, false) {
		t.Error("powerdown with open row must fail")
	}
	r.PrechargeDone(pd, 0)
	if !r.EnterPowerdown(pd, false) {
		t.Error("powerdown after precharge must succeed")
	}
}

func TestRefreshCycle(t *testing.T) {
	tm := resolved(config.Freq800)
	r := NewRank(8, tm)
	r.SetRefreshPending()
	if !r.RefreshBlocked() {
		t.Fatal("pending refresh must block dispatch")
	}
	until, ok := r.TryStartRefresh(1000)
	if !ok {
		t.Fatal("refresh on idle rank must start")
	}
	if want := config.Time(1000) + tm.TRFC; until != want {
		t.Errorf("refresh until %v, want %v", until, want)
	}
	r.RefreshDone(until)
	if r.RefreshBlocked() {
		t.Error("refresh still blocking after completion")
	}
	acct := r.Flush(until)
	if acct.Refreshes != 1 {
		t.Errorf("Refreshes = %d", acct.Refreshes)
	}
	if acct.Refreshing != tm.TRFC {
		t.Errorf("Refreshing time = %v, want %v", acct.Refreshing, tm.TRFC)
	}
}

func TestRefreshWaitsForService(t *testing.T) {
	tm := resolved(config.Freq800)
	r := NewRank(8, tm)
	ready, _, _ := r.StartAccess(0, 0, 1)
	r.SetRefreshPending()
	if _, ok := r.TryStartRefresh(10); ok {
		t.Fatal("refresh must not start while a bank is in service")
	}
	busEnd := ready + tm.Burst
	pdAt := r.FinishAccess(0, ready, busEnd, false, false)
	until, ok := r.TryStartRefresh(busEnd)
	if !ok {
		t.Fatal("refresh must start once service completes")
	}
	// The refresh begins only after the precharge completes, plus a
	// precharge-all for the still-open row is unnecessary here since
	// FinishAccess scheduled an auto-precharge; but the row is still
	// formally open, so TryStartRefresh closes it.
	if until < pdAt {
		t.Errorf("refresh until %v earlier than outstanding precharge %v", until, pdAt)
	}
}

func TestRefreshOutOfPowerdown(t *testing.T) {
	tm := resolved(config.Freq800)
	r := NewRank(8, tm)
	r.EnterPowerdown(0, false)
	r.SetRefreshPending()
	until, ok := r.TryStartRefresh(1000)
	if !ok {
		t.Fatal("refresh out of PD must start")
	}
	if want := config.Time(1000) + tm.TXP + tm.TRFC; until != want {
		t.Errorf("refresh until %v, want %v (tXP first)", until, want)
	}
	if r.InPowerdown() != PDNone {
		t.Error("rank must be awake after refresh start")
	}
}

func TestAccountingPartition(t *testing.T) {
	tm := resolved(config.Freq800)
	r := NewRank(8, tm)
	// Idle 1 us -> precharge standby.
	// Access opens a row; hold it open 1 us -> active standby.
	end := config.Time(config.Microsecond)
	ready, _, _ := r.StartAccess(end, 0, 1)
	busEnd := ready + tm.Burst
	r.FinishAccess(0, ready, busEnd, false, true)
	holdUntil := busEnd + config.Microsecond
	acct := r.Flush(holdUntil)
	if acct.PrechargeStandby < config.Microsecond {
		t.Errorf("precharge standby = %v, want >= 1us", acct.PrechargeStandby)
	}
	if acct.ActiveStandby < config.Microsecond {
		t.Errorf("active standby = %v, want >= 1us", acct.ActiveStandby)
	}
	if got := acct.Total(); got != holdUntil {
		t.Errorf("accounted total = %v, want %v", got, holdUntil)
	}
	if acct.ReadBurst != tm.Burst {
		t.Errorf("read burst = %v, want %v", acct.ReadBurst, tm.Burst)
	}
	if acct.Activations != 1 {
		t.Errorf("activations = %d", acct.Activations)
	}
	// Flush resets.
	again := r.Flush(holdUntil)
	if again.Total() != 0 || again.Activations != 0 {
		t.Error("Flush did not reset the account")
	}
}

func TestAccountFractions(t *testing.T) {
	a := Account{PrechargeStandby: 600, PrechargePD: 200, ActiveStandby: 100, ActivePD: 100}
	if got := a.PrechargedFraction(); got != 0.8 {
		t.Errorf("PrechargedFraction = %g", got)
	}
	if got := a.PrechargePDFraction(); got != 0.2 {
		t.Errorf("PrechargePDFraction = %g", got)
	}
	if got := a.ActivePDFraction(); got != 0.1 {
		t.Errorf("ActivePDFraction = %g", got)
	}
	var zero Account
	if zero.PrechargedFraction() != 1 || zero.PrechargePDFraction() != 0 {
		t.Error("zero account fractions wrong")
	}
}

func TestAccountAdd(t *testing.T) {
	a := Account{ActiveStandby: 1, Activations: 2, ReadBurst: 3}
	b := Account{ActiveStandby: 10, Activations: 20, ReadBurst: 30, PDExits: 1}
	a.Add(b)
	if a.ActiveStandby != 11 || a.Activations != 22 || a.ReadBurst != 33 || a.PDExits != 1 {
		t.Errorf("Add result: %+v", a)
	}
}

// TestAccountingConservation: regardless of the operation sequence,
// flushed state durations always sum to the elapsed time.
func TestAccountingConservation(t *testing.T) {
	tm := resolved(config.Freq800)
	f := func(ops []uint8) bool {
		r := NewRank(8, tm)
		now := config.Time(0)
		inSvc := map[int]config.Time{} // bank -> ready
		var total Account
		for _, op := range ops {
			bank := int(op) % 8
			now += config.Time(op) * config.Nanosecond
			switch {
			case op%5 == 0:
				if len(inSvc) == 0 && r.Idle(now) {
					r.EnterPowerdown(now, op%2 == 0)
				}
			case op%5 == 1 || op%5 == 2:
				if _, busy := inSvc[bank]; !busy {
					if free, ok := r.BankFreeAt(bank); ok && free <= now {
						ready, _, _ := r.StartAccess(now, bank, int(op)/8)
						inSvc[bank] = ready
					}
				}
			default:
				if ready, busy := inSvc[bank]; busy {
					busStart := config.MaxTime(now, ready)
					busEnd := busStart + tm.Burst
					pd := r.FinishAccess(bank, busStart, busEnd, op%2 == 0, false)
					r.PrechargeDone(pd, bank)
					if pd > now {
						now = pd
					}
					delete(inSvc, bank)
				}
			}
		}
		// Drain.
		for bank, ready := range inSvc {
			busStart := config.MaxTime(now, ready)
			busEnd := busStart + tm.Burst
			pd := r.FinishAccess(bank, busStart, busEnd, false, false)
			r.PrechargeDone(pd, bank)
			if pd > now {
				now = pd
			}
		}
		total.Add(r.Flush(now))
		return total.Total() == now
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStartAccessPanics(t *testing.T) {
	tm := resolved(config.Freq800)
	r := NewRank(8, tm)
	r.StartAccess(0, 0, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("StartAccess on in-service bank must panic")
			}
		}()
		r.StartAccess(0, 0, 2)
	}()
	// A pending refresh does not forbid StartAccess (the controller
	// pipeline may still deliver an in-flight request), but a running
	// refresh does.
	r2 := NewRank(8, tm)
	r2.SetRefreshPending()
	r2.TryStartRefresh(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("StartAccess during running refresh must panic")
			}
		}()
		r2.StartAccess(0, 0, 1)
	}()
}
