// Package event implements the discrete-event simulation engine that
// drives the MemScale memory-system simulator.
//
// The engine is a deterministic single-threaded priority queue of
// timestamped callbacks. Events scheduled for the same instant fire in
// the order they were scheduled, which keeps every simulation run
// exactly reproducible.
//
// The queue is built for a zero-allocation steady state: event nodes
// live in a pooled arena and are recycled through a free list after
// they fire or are cancelled, the priority queue is a flat 4-ary
// min-heap of (time, seq) keys with no interface boxing, and the
// ScheduleBound form lets callers attach a pre-bound callback plus
// inline arguments so that scheduling never captures a closure. Handles
// carry a generation counter, so a stale handle can never cancel an
// event that recycled its slot.
package event

import (
	"fmt"

	"memscale/internal/config"
)

// Handler is a callback invoked when an event fires.
type Handler func(now config.Time)

// Bound is the pre-bound callback form: the environment pointer and two
// integer arguments are stored inline in the event node, so scheduling
// a Bound callback allocates nothing in steady state. Typical use binds
// a method value once at construction time and passes per-event state
// through env/a/b.
type Bound func(now config.Time, env any, a, b int32)

// Handle identifies a scheduled event. It is a small value (no heap
// pointer): the index of the pooled node plus the generation the node
// had when the event was scheduled. The zero Handle is never valid.
type Handle struct {
	idx int32
	gen uint32
}

// entry is one element of the flat 4-ary min-heap: the ordering key
// (time, then schedule sequence for same-instant FIFO) plus the index
// of the pooled node carrying the callback.
type entry struct {
	at  config.Time
	seq uint64
	idx int32
}

func entryLess(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// node is one pooled event. pos records only whether the node is
// pending (>= 0) or free/fired (-1) — the exact heap position is not
// maintained, so sift moves are pure entry copies; the rare operations
// that need a position (Cancel, EventAt) scan the small heap for the
// node index instead. gen increments every time the slot is recycled,
// invalidating old handles.
type node struct {
	fn   Handler
	bfn  Bound
	env  any
	a, b int32
	gen  uint32
	pos  int32
}

// deferred is one lazily materialized schedule (see ScheduleVia): at
// the activation point — among same-instant events, exactly where the
// ticket was positioned — the target callback is pushed onto the heap
// with a fresh sequence number, as if a trampoline event had fired
// there and scheduled it.
type deferred struct {
	activateAt config.Time
	seq        uint64
	fireAt     config.Time
	bfn        Bound
	env        any
	a, b       int32
}

func deferredBefore(d *deferred, e entry) bool {
	if d.activateAt != e.at {
		return d.activateAt < e.at
	}
	return d.seq < e.seq
}

// Queue is the event priority queue and simulation clock.
// The zero value is ready to use.
type Queue struct {
	heap  []entry
	nodes []node
	free  []int32
	now   config.Time
	seq   uint64

	// defers is a second 4-ary min-heap, keyed (activateAt, seq), of
	// lazily materialized schedules. Entries migrate to the main heap
	// when processing reaches their activation position.
	defers []deferred

	fired     uint64
	scheduled uint64
	coalesced uint64
	firing    uint64 // seq of the event currently (or most recently) firing

	// stride is the sequence-number increment. Zero behaves as 1 (the
	// serial queue); a shard of a ShardSet uses the shard count so the
	// member queues allocate from disjoint residue classes of one global
	// counter and their merged (time, seq) order is well defined.
	stride uint64
}

// bump advances the sequence counter by one allocation step and
// returns the new value.
func (q *Queue) bump() uint64 {
	s := q.stride
	if s == 0 {
		s = 1
	}
	q.seq += s
	return q.seq
}

// Now returns the current simulated time.
func (q *Queue) Now() config.Time { return q.now }

// Len returns the number of pending events, counting deferred
// schedules that have not yet materialized.
func (q *Queue) Len() int { return len(q.heap) + len(q.defers) }

// Fired returns the number of events executed so far.
func (q *Queue) Fired() uint64 { return q.fired }

// ScheduledTotal returns the number of events ever scheduled.
func (q *Queue) ScheduledTotal() uint64 { return q.scheduled }

// Coalesced returns the number of trampoline events elided through
// ScheduleVia — fires the eager formulation would have executed that
// the deferred-schedule plane absorbed.
func (q *Queue) Coalesced() uint64 { return q.coalesced }

// PoolSize returns the number of node slots ever allocated — the
// high-water mark of concurrently pending events.
func (q *Queue) PoolSize() int { return len(q.nodes) }

// FreeNodes returns the number of pooled slots currently on the free
// list, available for recycling.
func (q *Queue) FreeNodes() int { return len(q.free) }

// alloc takes a node slot from the free list, growing the arena only
// when no recycled slot is available.
func (q *Queue) alloc() int32 {
	if n := len(q.free); n > 0 {
		idx := q.free[n-1]
		q.free = q.free[:n-1]
		return idx
	}
	q.nodes = append(q.nodes, node{gen: 1, pos: -1})
	return int32(len(q.nodes) - 1)
}

// release recycles a node slot: callback references are dropped so the
// pool retains nothing, and the generation bump invalidates every
// handle issued for the previous occupant.
func (q *Queue) release(idx int32) {
	n := &q.nodes[idx]
	n.fn = nil
	n.bfn = nil
	n.env = nil
	n.gen++
	n.pos = -1
	q.free = append(q.free, idx)
}

func (q *Queue) add(at config.Time, fn Handler, bfn Bound, env any, a, b int32) Handle {
	if at < q.now {
		panic(fmt.Sprintf("event: scheduling at %v before now %v", at, q.now))
	}
	seq := q.bump()
	q.scheduled++
	idx := q.alloc()
	n := &q.nodes[idx]
	n.fn, n.bfn, n.env, n.a, n.b = fn, bfn, env, a, b
	n.pos = 0
	h := Handle{idx: idx, gen: n.gen}
	q.heapPush(entry{at: at, seq: seq, idx: idx})
	return h
}

// Schedule queues fn to run at time at. Scheduling in the past (before
// Now) panics: that is always a simulator bug, and silently clamping
// would corrupt causality.
func (q *Queue) Schedule(at config.Time, fn Handler) Handle {
	if fn == nil {
		panic("event: nil handler")
	}
	return q.add(at, fn, nil, nil, 0, 0)
}

// ScheduleBound queues a pre-bound callback: fn(at, env, a, b) runs at
// time at. env and the integer arguments are stored inline in the
// pooled node, so the call allocates nothing once the pool is warm.
func (q *Queue) ScheduleBound(at config.Time, fn Bound, env any, a, b int32) Handle {
	if fn == nil {
		panic("event: nil handler")
	}
	return q.add(at, nil, fn, env, a, b)
}

// Seq is a same-instant ordering ticket. ReserveSeq allocates the next
// ticket without scheduling anything; ScheduleBoundSeq later turns the
// ticket into a real event that fires among same-instant events exactly
// where it would have fired had it been scheduled when the ticket was
// taken. This lets a caller elide an almost-always-no-op event while
// preserving the engine's deterministic same-instant FIFO order in the
// rare case the event turns out to be needed.
type Seq uint64

// ReserveSeq consumes and returns the next schedule-order ticket.
func (q *Queue) ReserveSeq() Seq {
	return Seq(q.bump())
}

// FiringSeq returns the sequence number of the event currently (or
// most recently) firing. A holder of a reserved ticket compares
// against it to learn whether the ticket's same-instant position has
// already been passed.
func (q *Queue) FiringSeq() uint64 { return q.firing }

// ScheduleBoundSeq schedules a pre-bound callback at time at, ordered
// among same-instant events by the reserved ticket rather than by the
// current schedule counter. Scheduling at the current instant is
// allowed only when the ticket's position has not yet been passed
// (seq greater than FiringSeq); the caller owns that guarantee — a
// ticket whose position already fired would be silently late.
func (q *Queue) ScheduleBoundSeq(at config.Time, seq Seq, fn Bound, env any, a, b int32) Handle {
	if fn == nil {
		panic("event: nil handler")
	}
	if at < q.now {
		panic(fmt.Sprintf("event: reserved-seq scheduling at %v before now %v", at, q.now))
	}
	q.scheduled++
	idx := q.alloc()
	n := &q.nodes[idx]
	n.fn, n.bfn, n.env, n.a, n.b = nil, fn, env, a, b
	n.pos = 0
	h := Handle{idx: idx, gen: n.gen}
	q.heapPush(entry{at: at, seq: uint64(seq), idx: idx})
	return h
}

// ScheduleVia is the deferred-schedule fast path: it is semantically
// identical to scheduling, at activateAt, a trampoline event whose
// only action is to schedule fn at fireAt — but the trampoline never
// enters the event heap and never fires. The call consumes one
// ordering ticket (the trampoline's schedule position); when queue
// processing reaches the activation position — after every event that
// precedes (activateAt, ticket) and before every event that follows
// it — the target is pushed with a fresh sequence number, exactly the
// number the eager trampoline's fire would have assigned. Same-instant
// FIFO order is therefore preserved bit-exactly while the trampoline's
// heap traffic, node, and callback dispatch disappear.
//
// The activation must not lie in the past. Deferred schedules cannot
// be cancelled; use a real event when cancellation is needed.
func (q *Queue) ScheduleVia(activateAt, fireAt config.Time, fn Bound, env any, a, b int32) {
	if fn == nil {
		panic("event: nil handler")
	}
	if activateAt < q.now {
		panic(fmt.Sprintf("event: deferred activation at %v before now %v", activateAt, q.now))
	}
	if fireAt < activateAt {
		panic(fmt.Sprintf("event: deferred fire at %v before activation %v", fireAt, activateAt))
	}
	seq := q.bump()
	q.coalesced++
	q.deferPush(deferred{activateAt: activateAt, seq: seq, fireAt: fireAt, bfn: fn, env: env, a: a, b: b})
}

// ScheduleViaSeq is ScheduleVia with the activation position supplied
// by a previously reserved ticket instead of a fresh one: the deferred
// schedule activates exactly where an event scheduled with that ticket
// would have fired, and the target then receives the next sequence
// number at that point in processing order — the number the elided
// event's own schedule call would have consumed. No ticket is taken at
// call time; the caller already reserved it.
func (q *Queue) ScheduleViaSeq(activateAt config.Time, seq Seq, fireAt config.Time, fn Bound, env any, a, b int32) {
	if fn == nil {
		panic("event: nil handler")
	}
	if activateAt < q.now {
		panic(fmt.Sprintf("event: deferred activation at %v before now %v", activateAt, q.now))
	}
	if fireAt < activateAt {
		panic(fmt.Sprintf("event: deferred fire at %v before activation %v", fireAt, activateAt))
	}
	q.coalesced++
	q.deferPush(deferred{activateAt: activateAt, seq: uint64(seq), fireAt: fireAt, bfn: fn, env: env, a: a, b: b})
}

// CancelDeferred removes the deferred schedule holding the given
// ticket before it materializes. It reports whether one was found; a
// ticket whose activation position has already been passed is gone
// from the plane and yields false.
func (q *Queue) CancelDeferred(seq Seq) bool {
	for i := range q.defers {
		if q.defers[i].seq == uint64(seq) {
			q.deferRemove(i)
			return true
		}
	}
	return false
}

// materializeDeferred pops the earliest deferred schedule and turns it
// into a real pending event, assigning the next sequence number — the
// one its trampoline's fire would have assigned at this exact point in
// processing order.
func (q *Queue) materializeDeferred() {
	d := q.deferPop()
	seq := q.bump()
	q.scheduled++
	idx := q.alloc()
	n := &q.nodes[idx]
	n.fn, n.bfn, n.env, n.a, n.b = nil, d.bfn, d.env, d.a, d.b
	n.pos = 0
	q.heapPush(entry{at: d.fireAt, seq: seq, idx: idx})
}

// settleDeferred materializes every deferred schedule whose activation
// position precedes the next pending event.
func (q *Queue) settleDeferred() {
	for len(q.defers) > 0 {
		if len(q.heap) > 0 && !deferredBefore(&q.defers[0], q.heap[0]) {
			break
		}
		q.materializeDeferred()
	}
}

// After queues fn to run d after the current time.
func (q *Queue) After(d config.Time, fn Handler) Handle {
	if d < 0 {
		panic(fmt.Sprintf("event: negative delay %v", d))
	}
	return q.Schedule(q.now+d, fn)
}

// AfterBound queues a pre-bound callback d after the current time.
func (q *Queue) AfterBound(d config.Time, fn Bound, env any, a, b int32) Handle {
	if d < 0 {
		panic(fmt.Sprintf("event: negative delay %v", d))
	}
	return q.ScheduleBound(q.now+d, fn, env, a, b)
}

// live returns the node for h if h still names a pending event.
func (q *Queue) live(h Handle) *node {
	if h.idx < 0 || int(h.idx) >= len(q.nodes) {
		return nil
	}
	n := &q.nodes[h.idx]
	if n.gen != h.gen || n.pos < 0 {
		return nil
	}
	return n
}

// Pending reports whether the event named by h is still queued.
func (q *Queue) Pending(h Handle) bool { return q.live(h) != nil }

// EventAt returns the fire time of the pending event named by h, and
// whether h still names a pending event.
func (q *Queue) EventAt(h Handle) (config.Time, bool) {
	if q.live(h) == nil {
		return 0, false
	}
	return q.heap[q.heapFind(h.idx)].at, true
}

// Cancel removes a pending event eagerly: the node leaves the heap and
// returns to the pool immediately, so long-lived cancellations (relock
// or refresh reschedules) cannot bloat the queue. Cancelling a fired,
// already cancelled, or recycled handle is a no-op; the generation
// check guarantees a stale handle can never cancel the slot's next
// occupant. It reports whether an event was actually cancelled.
func (q *Queue) Cancel(h Handle) bool {
	if q.live(h) == nil {
		return false
	}
	q.heapRemove(q.heapFind(h.idx))
	q.release(h.idx)
	return true
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It returns false when no events remain. The node is
// recycled before the callback runs, so a callback scheduling a new
// event may reuse the slot; the generation bump keeps old handles
// inert.
func (q *Queue) Step() bool {
	// Inline settleDeferred's guard: the per-step common case (no
	// deferred schedule due) must not pay a function call.
	for len(q.defers) > 0 && (len(q.heap) == 0 || deferredBefore(&q.defers[0], q.heap[0])) {
		q.materializeDeferred()
	}
	if len(q.heap) == 0 {
		return false
	}
	e := q.popRoot()
	n := &q.nodes[e.idx]
	fn, bfn, env, a, b := n.fn, n.bfn, n.env, n.a, n.b
	q.release(e.idx)
	q.now = e.at
	q.firing = e.seq
	q.fired++
	if bfn != nil {
		bfn(e.at, env, a, b)
	} else {
		fn(e.at)
	}
	return true
}

// RunUntil executes events in order until the next event would fire
// after the deadline (or no events remain), then advances the clock to
// exactly the deadline. Events at the deadline itself do fire.
func (q *Queue) RunUntil(deadline config.Time) {
	if deadline < q.now {
		panic(fmt.Sprintf("event: RunUntil(%v) before now %v", deadline, q.now))
	}
	for {
		if len(q.heap) > 0 && q.heap[0].at <= deadline {
			q.Step()
			continue
		}
		// With no fireable event left, deferred schedules activating
		// within the deadline still migrate: their trampolines would
		// have fired by now, and the targets they produce may
		// themselves fire before the deadline.
		if len(q.defers) > 0 && q.defers[0].activateAt <= deadline {
			q.materializeDeferred()
			continue
		}
		break
	}
	q.now = deadline
}

// RunUntilExclusive executes events strictly preceding the position
// (t, bound) in global (time, seq) order: every pending event or
// deferred activation with at < t, or at == t and seq < bound, fires;
// everything at or after the position stays queued. The clock then
// advances to exactly t. A ShardSet uses this to drain each shard up
// to — but not past — a cross-shard event's reserved position before
// executing the cross-shard callback serially.
func (q *Queue) RunUntilExclusive(t config.Time, bound Seq) {
	if t < q.now {
		panic(fmt.Sprintf("event: RunUntilExclusive(%v) before now %v", t, q.now))
	}
	before := func(at config.Time, seq uint64) bool {
		return at < t || (at == t && seq < uint64(bound))
	}
	for {
		if len(q.heap) > 0 && before(q.heap[0].at, q.heap[0].seq) {
			q.Step()
			continue
		}
		if len(q.defers) > 0 && before(q.defers[0].activateAt, q.defers[0].seq) {
			q.materializeDeferred()
			continue
		}
		break
	}
	q.now = t
}

// Run executes events until the queue is empty or limit events have
// fired; limit <= 0 means no limit. It returns the number of events
// executed.
func (q *Queue) Run(limit uint64) uint64 {
	var n uint64
	for limit <= 0 || n < limit {
		if !q.Step() {
			break
		}
		n++
	}
	return n
}

// NextAt returns the timestamp of the next event to fire and whether
// one exists. A deferred schedule counts at its fire time (its
// activation alone executes nothing observable).
func (q *Queue) NextAt() (config.Time, bool) {
	ok := len(q.heap) > 0
	at := config.Time(0)
	if ok {
		at = q.heap[0].at
	}
	for i := range q.defers {
		if f := q.defers[i].fireAt; !ok || f < at {
			at, ok = f, true
		}
	}
	return at, ok
}

// The heap is 4-ary: parent of i is (i-1)/4, children are 4i+1..4i+4.
// A wider node trades deeper comparisons per level for half the levels
// and better cache behaviour on the flat entry slice — the classic
// d-ary win for queues dominated by inserts that stay near the leaves.

// heapPush appends e and restores the heap property upward.
func (q *Queue) heapPush(e entry) {
	q.heap = append(q.heap, e)
	q.siftUp(len(q.heap) - 1)
}

// popRoot removes and returns the minimum entry.
func (q *Queue) popRoot() entry {
	root := q.heap[0]
	n := len(q.heap) - 1
	last := q.heap[n]
	q.heap = q.heap[:n] // entries hold no pointers; no need to zero
	if n > 0 {
		q.heap[0] = last
		q.siftDown(0)
	}
	return root
}

// heapRemove deletes the entry at heap position i (eager cancellation).
func (q *Queue) heapRemove(i int) {
	n := len(q.heap) - 1
	last := q.heap[n]
	q.heap[n] = entry{}
	q.heap = q.heap[:n]
	if i == n {
		return
	}
	q.heap[i] = last
	q.siftDown(i)
	if q.heap[i].idx == last.idx {
		q.siftUp(i)
	}
}

// heapFind scans for the heap position of the given node index. The
// heap stays small (tens of entries), and only the cold paths — Cancel
// and EventAt — need a position, so a scan beats maintaining per-node
// positions on every sift move of the hot path.
func (q *Queue) heapFind(idx int32) int {
	for i := range q.heap {
		if q.heap[i].idx == idx {
			return i
		}
	}
	panic("event: pending node missing from heap")
}

// The defers heap mirrors the main heap's 4-ary layout; entries are
// self-contained values, so sifting moves no node bookkeeping.

func (q *Queue) deferPush(d deferred) {
	q.defers = append(q.defers, d)
	h := q.defers
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !deferredLess(&d, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = d
}

func (q *Queue) deferPop() deferred {
	h := q.defers
	root := h[0]
	n := len(h) - 1
	d := h[n]
	h[n] = deferred{} // drop the callback/env references
	q.defers = h[:n]
	h = q.defers
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if deferredLess(&h[j], &h[m]) {
				m = j
			}
		}
		if !deferredLess(&h[m], &d) {
			break
		}
		h[i] = h[m]
		i = m
	}
	if n > 0 {
		h[i] = d
	}
	return root
}

// deferRemove deletes the defers entry at heap position i.
func (q *Queue) deferRemove(i int) {
	h := q.defers
	n := len(h) - 1
	last := h[n]
	h[n] = deferred{}
	q.defers = h[:n]
	if i == n {
		return
	}
	h = q.defers
	h[i] = last
	// Restore the heap property in whichever direction the moved entry
	// violates it.
	q.deferSiftDown(i)
	if h[i].seq == last.seq && h[i].activateAt == last.activateAt {
		for i > 0 {
			p := (i - 1) / 4
			if !deferredLess(&h[i], &h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
}

func (q *Queue) deferSiftDown(i int) {
	h := q.defers
	n := len(h)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if deferredLess(&h[j], &h[m]) {
				m = j
			}
		}
		if !deferredLess(&h[m], &h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func deferredLess(a, b *deferred) bool {
	if a.activateAt != b.activateAt {
		return a.activateAt < b.activateAt
	}
	return a.seq < b.seq
}

func (q *Queue) siftUp(i int) {
	h := q.heap
	e := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !entryLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
}

func (q *Queue) siftDown(i int) {
	h := q.heap
	n := len(h)
	e := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if entryLess(h[j], h[m]) {
				m = j
			}
		}
		if !entryLess(h[m], e) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = e
}
