package fleet

import (
	"context"
	"fmt"

	"memscale/internal/config"
	"memscale/internal/faults"
	"memscale/internal/policies"
	"memscale/internal/power"
	"memscale/internal/sim"
	"memscale/internal/trace"
	"memscale/internal/workload"
)

// node is one simulated server of the fleet: a managed system stepped
// epoch-by-epoch under the coordinator's cap, paired with its own
// fully-run unmanaged baseline (same arrival schedule), which supplies
// the SER denominator, the CPI-degradation reference, and the
// rest-of-system power calibration.
type node struct {
	group   int // index into the fleet's group list
	inGroup int // index within the group
	global  int // index across the fleet (stable identity)

	cfg       config.Config
	mix       workload.Mix
	spec      policies.Spec
	faultsCfg *faults.Config
	seed      uint64

	// schedule is the precomputed per-epoch intensity profile both the
	// baseline and the managed run replay.
	schedule []float64

	// Baseline outputs (phase 1).
	baseRes sim.Result
	nonMem  float64

	// Managed run state (phase 2).
	sys     *sim.System
	streams []*trace.Stream
	epochs  int // managed epochs completed

	// Last-window observations for the coordinator.
	lastRec     sim.EpochRecord
	windowJ     float64 // memory energy over the last fleet window
	windowSec   float64 // simulated seconds of the last fleet window
	windowBgJ   float64 // background energy of the window
	windowRefJ  float64 // refresh energy of the window
	constrained int     // epochs where WantFreq exceeded the applied cap

	res  sim.Result // managed totals (after finalize)
	dead bool
	err  error
}

// streamsFor builds per-core trace streams decorrelated per node: the
// same (mix, app, core) tuple on two different nodes draws different
// address/gap sequences, seeded by the fleet seed and the node's
// stable global index.
func (n *node) streamsFor(cfg *config.Config) ([]*trace.Stream, error) {
	mapper := config.NewAddressMapper(cfg)
	streams := make([]*trace.Stream, cfg.Cores)
	for core := 0; core < cfg.Cores; core++ {
		name := n.mix.Assignment(core)
		p, err := workload.App(name)
		if err != nil {
			return nil, fmt.Errorf("fleet: node %d: %w", n.global, err)
		}
		s, err := trace.NewStream(p, mapper,
			trace.Seed("fleet", int(n.seed), n.global, n.mix.Name, name, core))
		if err != nil {
			return nil, fmt.Errorf("fleet: node %d core %d: %w", n.global, core, err)
		}
		streams[core] = s
	}
	return streams, nil
}

// setIntensity applies the epoch's arrival multiplier to every core
// stream. A multiplier of exactly 1 is skipped so an undriven node is
// bit-identical to a plain run.
func setIntensity(streams []*trace.Stream, m float64) error {
	if m == 1 {
		return nil
	}
	for _, s := range streams {
		if err := s.SetIntensity(m); err != nil {
			return err
		}
	}
	return nil
}

// runBaseline executes the node's unmanaged, uncapped reference run
// over the full horizon, replaying the arrival schedule epoch by
// epoch, and calibrates the rest-of-system power from its average DIMM
// power (the Section 4.1 rule the single-node pipeline uses).
func (n *node) runBaseline(ctx context.Context) error {
	cfg := n.cfg
	streams, err := n.streamsFor(&cfg)
	if err != nil {
		return err
	}
	s, err := sim.New(cfg, streams, sim.Options{MaxDuration: n.horizon(cfg)})
	if err != nil {
		return fmt.Errorf("fleet: node %d baseline: %w", n.global, err)
	}
	for e := 0; e < len(n.schedule); e++ {
		if err := setIntensity(streams, n.schedule[e]); err != nil {
			return err
		}
		if _, err := s.StepEpoch(ctx); err != nil {
			return fmt.Errorf("fleet: node %d baseline epoch %d: %w", n.global, e, err)
		}
	}
	n.baseRes = s.Finalize()
	// Section 4.1 calibration: the rest-of-system power is derived from
	// the unmanaged baseline's average DIMM power.
	n.nonMem = power.NewModel(&cfg).RestOfSystemPower(n.baseRes.DIMMAvgWatts)
	return nil
}

func (n *node) horizon(cfg config.Config) config.Time {
	// One extra epoch of headroom so MaxDuration never truncates the
	// stepped run.
	return config.Time(len(n.schedule)+1) * cfg.Policy.EpochLength
}

// buildManaged constructs the governed system (phase 2; requires the
// baseline's nonMem calibration).
func (n *node) buildManaged() error {
	cfg := n.cfg
	if n.spec.Configure != nil {
		n.spec.Configure(&cfg)
	}
	streams, err := n.streamsFor(&cfg)
	if err != nil {
		return err
	}
	var gov sim.Governor
	if n.spec.Governor != nil {
		gov = n.spec.Governor(&cfg, n.nonMem)
	}
	var inj *faults.Injector
	if n.faultsCfg != nil {
		fc := *n.faultsCfg
		// Decorrelate the disturbance schedules across the fleet while
		// keeping each node's reproducible.
		fc.Seed = trace.Seed("fleet-faults", int(fc.Seed), n.global)
		if inj, err = faults.New(fc, 0); err != nil {
			return fmt.Errorf("fleet: node %d: %w", n.global, err)
		}
	}
	s, err := sim.New(cfg, streams, sim.Options{
		Governor:    gov,
		NonMemPower: n.nonMem,
		Faults:      inj,
		MaxDuration: n.horizon(cfg),
	})
	if err != nil {
		return fmt.Errorf("fleet: node %d: %w", n.global, err)
	}
	n.sys = s
	n.streams = streams
	return nil
}

// stepWindow advances the managed run by k epochs (or to the end of
// the schedule), accumulating the window observations the coordinator
// reads: memory energy, its frequency-independent components, the
// applied and wanted frequencies.
func (n *node) stepWindow(ctx context.Context, k int) error {
	n.windowJ, n.windowSec = 0, 0
	n.windowBgJ, n.windowRefJ = 0, 0
	for i := 0; i < k && n.epochs < len(n.schedule); i++ {
		if err := setIntensity(n.streams, n.schedule[n.epochs]); err != nil {
			return err
		}
		rec, err := n.sys.StepEpoch(ctx)
		if err != nil {
			return fmt.Errorf("fleet: node %d epoch %d: %w", n.global, n.epochs, err)
		}
		n.epochs++
		n.lastRec = rec
		n.windowJ += rec.Energy.Memory()
		n.windowBgJ += rec.Energy.Background
		n.windowRefJ += rec.Energy.Refresh
		n.windowSec += (rec.End - rec.Start).Seconds()
		if rec.WantFreq > rec.Freq {
			n.constrained++
		}
	}
	return nil
}

// observe packages the last window for the cap planner.
func (n *node) observe() nodeObs {
	if n.dead || n.windowSec <= 0 {
		return nodeObs{}
	}
	return nodeObs{
		alive:     true,
		measuredW: n.windowJ / n.windowSec,
		measFreq:  n.lastRec.Freq,
		rho:       rhoOf(n.windowBgJ, n.windowRefJ, n.windowJ),
		want:      n.lastRec.WantFreq,
	}
}

// systemEnergy returns full-system joules for a finished result using
// the node's calibrated rest-of-system power.
func (n *node) systemEnergy(r sim.Result) float64 {
	return r.Memory.Memory() + n.nonMem*r.Duration.Seconds()
}

// cpiIncrease is the node's CPI degradation vs its paired baseline.
func (n *node) cpiIncrease() float64 {
	base := n.baseRes.MeanCPI()
	if base == 0 {
		return 0
	}
	return n.res.MeanCPI()/base - 1
}
