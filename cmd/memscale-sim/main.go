// Command memscale-sim runs a single (workload, policy) pair against
// the unmanaged baseline and prints the paired outcome: energy
// savings, CPI degradation, and the frequency residency.
//
// Usage:
//
//	memscale-sim -mix MID1 [-policy MemScale] [-epochs 10]
//	             [-gamma 0.10] [-cores 16] [-channels 4] [-shards 1]
//	             [-partitioned] [-timeline]
//	             [-checkpoint-out run.ckpt [-checkpoint-epoch K]]
//	             [-restore run.ckpt]
//	             [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	             [-blockprofile block.pprof]
//	             [-fault-seed N -fault-storm-rate P -fault-relock-rate P
//	              -fault-corrupt-rate P -fault-thermal-rate P
//	              -fault-thermal-ceiling MHZ -fault-abort-rate P]
//
// The -fault-* flags enable the deterministic fault-injection plane;
// the same seed and rates reproduce the same disturbance schedule,
// fault counts, and energy totals.
//
// -shards N runs the simulation on the sharded parallel event engine
// (results — telemetry included — are bit-identical to the serial
// engine). The engine partitions the workload into confinement groups
// from its channel placement: "/part" mixes (or -partitioned) shard
// per channel, "/ilvK" interleaved mixes per K-channel group; plain
// fully-interleaved mixes fall back to serial. The printed engine line
// reports the shard count that actually ran.
//
// -checkpoint-out captures the run's full simulation state to a
// container file (at the final epoch by default, or after
// -checkpoint-epoch epochs); -restore continues a checkpointed run to
// -epochs total quanta, bit-identical to the uninterrupted run. A long
// run interrupted by a crash or Ctrl-C resumes from its last written
// container instead of starting over; -restore ignores the workload,
// policy, and fault flags (the container records them).
//
// The -*profile flags write pprof profiles of the simulation for
// `go tool pprof`: CPU samples over the whole run, the live heap at
// exit (after the run, so steady-state retention is visible), and
// blocking events. Profiling never alters the simulated results.
//
// SIGINT/SIGTERM handling: with -checkpoint-out set, the first signal
// is a soft stop — the run finishes its current epoch, writes its
// state to the container file, and exits with code 3 (resume it with
// -restore); a second signal cancels hard. Without -checkpoint-out,
// the first signal cancels the simulation promptly.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"

	"memscale"
)

// exitInterrupted is the exit code of a run stopped by SIGINT/SIGTERM
// after writing its final checkpoint — distinct from 1 (failure) so
// supervisors can tell "resume me" from "fix me".
const exitInterrupted = 3

func main() {
	mix := flag.String("mix", "MID1", "workload mix ("+strings.Join(memscale.Mixes(), ", ")+")")
	policy := flag.String("policy", "MemScale", "policy ("+strings.Join(memscale.Policies(), ", ")+")")
	epochs := flag.Int("epochs", 10, "OS quanta (5 ms each) to simulate")
	gamma := flag.Float64("gamma", 0.10, "maximum allowed performance degradation")
	cores := flag.Int("cores", 0, "core count override (default 16)")
	channels := flag.Int("channels", 0, "channel count override (default 4)")
	shards := flag.Int("shards", 1, "event-engine shards (1 = serial; >1 engages the parallel engine on partitioned or interleaved workloads)")
	partitioned := flag.Bool("partitioned", false, "confine each application of the mix to its own memory channel")
	timeline := flag.Bool("timeline", false, "print the per-epoch frequency/CPI timeline")
	checkpointOut := flag.String("checkpoint-out", "",
		"write the run's full simulation state to this container file (resume it with -restore)")
	checkpointEpoch := flag.Int("checkpoint-epoch", 0,
		"epoch boundary to capture the -checkpoint-out state at (default: the final epoch)")
	restore := flag.String("restore", "",
		"resume a checkpointed run from this container file to -epochs total quanta")
	telemetryOut := flag.String("telemetry-out", "",
		"collect full telemetry (with events) and write it as JSONL to this file; read it with memscale-report")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (at exit) to this file")
	blockProfile := flag.String("blockprofile", "", "write a blocking profile to this file")

	faultSeed := flag.Uint64("fault-seed", 0, "seed of the deterministic fault-injection schedule")
	stormRate := flag.Float64("fault-storm-rate", 0, "per-epoch probability of a refresh storm (retention emergency)")
	relockRate := flag.Float64("fault-relock-rate", 0, "per-attempt probability a PLL/DLL relock fails and is retried")
	corruptRate := flag.Float64("fault-corrupt-rate", 0, "per-epoch probability the profiled counters are corrupted")
	thermalRate := flag.Float64("fault-thermal-rate", 0, "per-epoch probability a thermal-emergency window opens")
	thermalCeil := flag.Int("fault-thermal-ceiling", 0, "frequency ceiling (MHz) during thermal emergencies (default 400)")
	abortRate := flag.Float64("fault-abort-rate", 0, "per-attempt probability of a retryable transient run abort")
	flag.Parse()

	// Signal wiring: with a checkpoint target, the first SIGINT/SIGTERM
	// soft-stops the run (finish the epoch, write the container); only
	// a second one cancels hard. Otherwise the first signal cancels.
	var softStop chan struct{}
	var ctx context.Context
	if *checkpointOut != "" {
		sigs := make(chan os.Signal, 2)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		softStop = make(chan struct{})
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(context.Background())
		defer cancel()
		go func() {
			<-sigs
			close(softStop)
			<-sigs
			cancel()
		}()
	} else {
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
	}

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "memscale-sim:", err)
		os.Exit(1)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(1)
		defer func() {
			f, err := os.Create(*blockProfile)
			if err != nil {
				fatal(err)
			}
			if err := pprof.Lookup("block").WriteTo(f, 0); err != nil {
				fatal(err)
			}
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // report steady-state retention, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}()
	}

	rc := memscale.RunConfig{
		Mix:         *mix,
		Policy:      *policy,
		Epochs:      *epochs,
		Gamma:       *gamma,
		Cores:       *cores,
		Channels:    *channels,
		Shards:      *shards,
		Partitioned: *partitioned,
		Timeline:    *timeline,
	}
	if *telemetryOut != "" {
		rc.Telemetry = &memscale.TelemetryConfig{Events: true}
	}
	if *stormRate > 0 || *relockRate > 0 || *corruptRate > 0 || *thermalRate > 0 || *abortRate > 0 {
		rc.Faults = &memscale.FaultConfig{
			Seed:               *faultSeed,
			RefreshStormRate:   *stormRate,
			RelockFailRate:     *relockRate,
			CounterCorruptRate: *corruptRate,
			ThermalRate:        *thermalRate,
			ThermalCeilingMHz:  *thermalCeil,
			TransientAbortRate: *abortRate,
		}
	}
	var sum memscale.RunSummary
	var err error
	switch {
	case *restore != "":
		var f *os.File
		if f, err = os.Open(*restore); err != nil {
			fatal(err)
		}
		sum, err = memscale.ResumeRunShards(ctx, f, *epochs, *shards)
		f.Close()
		if err == nil {
			fmt.Printf("resumed from %s\n", *restore)
		}
	case *checkpointOut != "":
		var buf bytes.Buffer
		sum, err = memscale.CheckpointRunInterruptible(ctx, rc, *checkpointEpoch, softStop, &buf)
		interrupted := errors.Is(err, memscale.ErrInterrupted)
		if err == nil || interrupted {
			if werr := os.WriteFile(*checkpointOut, buf.Bytes(), 0o644); werr != nil {
				fatal(werr)
			}
			fmt.Printf("checkpoint written to %s\n", *checkpointOut)
		}
		if interrupted {
			fmt.Fprintf(os.Stderr, "memscale-sim: interrupted; resume with -restore %s\n", *checkpointOut)
			os.Exit(exitInterrupted)
		}
	default:
		sum, err = memscale.RunContext(ctx, rc)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "memscale-sim:", err)
		os.Exit(1)
	}
	if *telemetryOut != "" {
		f, err := os.Create(*telemetryOut)
		if err == nil {
			err = memscale.WriteTelemetry(f, sum)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "memscale-sim: telemetry:", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry written to %s\n", *telemetryOut)
	}

	fmt.Println(sum)
	// The engine line reports what actually ran: the summary carries
	// the resolved shard count (1 when the engine fell back to serial —
	// results are bit-identical either way, so nothing else could tell).
	engine := "serial"
	if sum.EngineShards > 1 {
		engine = fmt.Sprintf("%d shards", sum.EngineShards)
	}
	fmt.Printf("simulated %.0f ms; memory energy %.3f J; system energy %.3f J; event engine: %s\n",
		sum.DurationSeconds*1000, sum.MemoryEnergyJ, sum.SystemEnergyJ, engine)

	if rc.Faults != nil {
		fmt.Printf("fault injection: %d degraded epochs, %d attempts\n",
			sum.DegradedEpochs, sum.Attempts)
		names := make([]string, 0, len(sum.FaultCounts))
		for name := range sum.FaultCounts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-20s %d\n", name, sum.FaultCounts[name])
		}
	}

	freqs := make([]int, 0, len(sum.FreqSeconds))
	for f := range sum.FreqSeconds {
		freqs = append(freqs, f)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	fmt.Println("frequency residency:")
	for _, f := range freqs {
		fmt.Printf("  %4d MHz  %5.1f%%\n", f, sum.FreqSeconds[f]/sum.DurationSeconds*100)
	}

	if *timeline {
		fmt.Println("timeline (per 5 ms epoch):")
		for _, ep := range sum.Timeline {
			var cpiMin, cpiMax float64
			for i, c := range ep.CoreCPI {
				if i == 0 || c < cpiMin {
					cpiMin = c
				}
				if c > cpiMax {
					cpiMax = c
				}
			}
			var util float64
			for _, u := range ep.ChannelUtil {
				util += u
			}
			if len(ep.ChannelUtil) > 0 {
				util /= float64(len(ep.ChannelUtil))
			}
			fmt.Printf("  t=%6.1fms  %4d MHz  CPI %.2f-%.2f  chan util %4.1f%%\n",
				ep.EndMs(), ep.BusFreqMHz(), cpiMin, cpiMax, util*100)
		}
	}
}
