// Package runner is the parallel sweep/batch execution engine behind
// the public Run/Sweep API and the experiment harness. It schedules
// (mix, policy, gamma, epochs, cores, channels) jobs onto a bounded
// worker pool, memoizes the unmanaged baseline runs the jobs share,
// and honours context cancellation mid-simulation.
//
// Determinism: parallelism is across jobs only — each simulation is
// the same single-threaded discrete-event run it always was, so one
// job's result is bit-identical whether the batch ran on one worker or
// sixteen. Results come back indexed by submission order, never by
// completion order.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"memscale/internal/config"
	"memscale/internal/faults"
	"memscale/internal/policies"
	"memscale/internal/sim"
	"memscale/internal/stats"
	"memscale/internal/telemetry"
	"memscale/internal/workload"
)

// Sentinel errors, matched with errors.Is.
var (
	// ErrRunPanicked marks a job whose simulation panicked. The worker
	// recovered, so one poisoned job never takes down the batch; the
	// concrete error is a *PanicError carrying the value and stack.
	ErrRunPanicked = errors.New("run panicked")

	// ErrJobTimeout marks a job that exceeded its watchdog deadline
	// (Job.Timeout or Options.JobTimeout) while the surrounding batch
	// was still live.
	ErrJobTimeout = errors.New("job deadline exceeded")
)

// PanicError is the error a recovered job panic is reported as. It
// unwraps to ErrRunPanicked.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // the panicking goroutine's stack
}

// Error implements error.
func (p *PanicError) Error() string { return fmt.Sprintf("runner: run panicked: %v", p.Value) }

// Unwrap lets errors.Is(err, ErrRunPanicked) match.
func (p *PanicError) Unwrap() error { return ErrRunPanicked }

// Job is one paired simulation: a (mix, policy) pair run against the
// memoized unmanaged baseline of the same configuration.
type Job struct {
	Mix  workload.Mix
	Spec policies.Spec

	// Epochs is the run length in OS quanta; it must be positive.
	Epochs int

	// Gamma, when positive, sets the allowed performance degradation.
	Gamma float64

	// Cores and Channels, when positive, override the machine shape.
	Cores, Channels int

	// Shards, when > 1, requests the sharded parallel event engine for
	// both the managed run and its memoized baseline
	// (sim.Options.Shards). Every run is bit-identical to the serial
	// engine at any shard count — telemetry included — and the engine
	// falls back to serial when the workload or governor is ineligible.
	Shards int

	// ShardGranularity selects the engine's confinement analysis
	// (sim.Options.ShardGranularity): "" or "bank" for confinement
	// groups, "channel" for PR 9's strict per-channel rule.
	ShardGranularity string

	// Mutate, when non-nil, edits the configuration after the fields
	// above are applied and before the policy's own Configure hook;
	// both the baseline and the managed run see the mutation.
	Mutate func(*config.Config)

	// Timeline retains per-epoch records in the managed run's Result.
	Timeline bool

	// Telemetry, when non-nil, instruments the managed run with a
	// private recorder (one per job, so parallel sweeps never share
	// mutable state) and attaches its export to the Outcome. The
	// baseline run is never instrumented: it is memoized and shared
	// across jobs.
	Telemetry *telemetry.Options

	// Faults, when non-nil, injects the deterministic disturbance
	// schedule into the managed run. The baseline run is never
	// faulted: it is memoized, shared across jobs, and represents the
	// pristine reference the paired metrics compare against. Attempts
	// aborted by an injected transient fault are retried automatically
	// (up to the config's MaxRunRetries) with the identical hardware
	// fault schedule.
	Faults *faults.Config

	// Timeout, when positive, is this job's watchdog deadline in host
	// wall-clock time; zero falls back to Options.JobTimeout. A job
	// that overruns fails with ErrJobTimeout without disturbing the
	// rest of the batch.
	Timeout time.Duration

	// Warm, when non-nil, is an unmanaged warm-up snapshot the managed
	// run forks from instead of simulating the shared prefix itself
	// (see Engine.WarmPrefix and RunEachWarm). Epochs still counts the
	// total run length including the prefix. The baseline pairing is
	// unchanged: it is the cold unmanaged run of the full length.
	Warm *sim.SystemState

	// Interrupt, when non-nil, is a soft-stop signal honored by
	// checkpoint-driven runs (RunWithCheckpoint): once it fires the run
	// finishes its current epoch, captures the state at that boundary,
	// and returns the partial checkpoint with ErrInterrupted. A nil
	// channel (the zero value) never fires. Plain Run ignores it.
	Interrupt <-chan struct{}
}

// Outcome is one managed run paired with its baseline.
type Outcome struct {
	Mix    workload.Mix
	Policy string
	NonMem float64 // rest-of-system watts used for both runs
	Base   sim.Result
	Res    sim.Result

	// Telemetry is the managed run's export when the job requested it,
	// nil otherwise.
	Telemetry *telemetry.RunExport

	// Attempts is how many times the managed run executed: 1 plus the
	// retries consumed by injected transient faults.
	Attempts int

	// Shards is the shard count the managed run's event engine actually
	// used (sim.System.ParallelShards): 1 for the serial engine —
	// whether by request or by eligibility fallback — and the resolved
	// count under the sharded engine.
	Shards int
}

// SystemEnergy returns the full-system energy of r using the
// outcome's calibrated rest-of-system power.
func (o Outcome) SystemEnergy(r sim.Result) float64 {
	return r.Memory.Memory() + o.NonMem*r.Duration.Seconds()
}

// MemorySavings returns the memory-subsystem energy savings vs the
// baseline. A degenerate zero-energy baseline yields 0, not NaN.
func (o Outcome) MemorySavings() float64 {
	base := o.Base.Memory.Memory()
	if base == 0 {
		return 0
	}
	return 1 - o.Res.Memory.Memory()/base
}

// SystemSavings returns the full-system energy savings vs the
// baseline. A degenerate zero-energy baseline yields 0, not NaN.
func (o Outcome) SystemSavings() float64 {
	base := o.SystemEnergy(o.Base)
	if base == 0 {
		return 0
	}
	return 1 - o.SystemEnergy(o.Res)/base
}

// CPIIncrease returns the multiprogram-average and worst-application
// CPI increases vs the baseline (the Figure 6 metrics). Application
// CPI is the mean over its replicated instances; applications whose
// baseline retired no instructions (zero CPI) are skipped rather than
// producing NaN/Inf.
func (o Outcome) CPIIncrease() (avg, worst float64) {
	perApp := map[string]*stats.Series{}
	basePerApp := map[string]*stats.Series{}
	for i := range o.Res.CPI {
		app := o.Mix.Assignment(i)
		if perApp[app] == nil {
			perApp[app] = &stats.Series{}
			basePerApp[app] = &stats.Series{}
		}
		perApp[app].Add(o.Res.CPI[i])
		basePerApp[app].Add(o.Base.CPI[i])
	}
	var s stats.Series
	for app, cur := range perApp {
		base := basePerApp[app].Mean()
		if base == 0 {
			continue
		}
		s.Add(cur.Mean()/base - 1)
	}
	if s.N() == 0 {
		return 0, 0
	}
	return s.Mean(), s.Max()
}

// Progress reports one finished job to the Options.OnResult callback.
type Progress struct {
	// Done is the number of jobs finished so far (including this one);
	// Total is the batch size. Callbacks arrive in completion order,
	// serialized on one goroutine at a time.
	Done, Total int

	// Index is the job's position in the submitted slice.
	Index int

	Job     Job
	Outcome Outcome // zero when Err != nil
	Err     error
}

// Options configure an Engine.
type Options struct {
	// Workers bounds the number of concurrently executing jobs;
	// zero or negative means runtime.GOMAXPROCS(0).
	Workers int

	// Cache, when non-nil, shares baseline memoization with other
	// engines; nil creates a private cache.
	Cache *BaselineCache

	// JobTimeout, when positive, is the default per-job watchdog
	// deadline (host wall-clock); Job.Timeout overrides it per job.
	JobTimeout time.Duration

	// OnResult, when non-nil, is invoked after every finished batch
	// job (successful or not).
	OnResult func(Progress)
}

// Engine executes jobs on a worker pool with shared baseline
// memoization. An Engine is safe for concurrent use.
type Engine struct {
	workers    int
	cache      *BaselineCache
	jobTimeout time.Duration
	onResult   func(Progress)
}

// New builds an engine.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewBaselineCache()
	}
	return &Engine{workers: w, cache: cache, jobTimeout: opts.JobTimeout, onResult: opts.OnResult}
}

// Workers returns the engine's concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Cache returns the engine's baseline cache.
func (e *Engine) Cache() *BaselineCache { return e.cache }

// Run executes one job: the baseline (through the cache) and the
// managed run, paired into an Outcome. The whole call is panic
// isolated — a panicking simulation (or Mutate hook) surfaces as a
// *PanicError instead of unwinding the caller — and attempts killed
// by an injected transient fault are retried with the same hardware
// fault schedule, up to the fault config's retry budget.
func (e *Engine) Run(ctx context.Context, job Job) (out Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = Outcome{}, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()

	if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}
	if job.Epochs <= 0 {
		return Outcome{}, fmt.Errorf("runner: job epochs must be positive, got %d", job.Epochs)
	}
	retries := 0
	if job.Faults != nil {
		if err := job.Faults.Validate(); err != nil {
			return Outcome{}, fmt.Errorf("runner: %w", err)
		}
		retries = job.Faults.WithDefaults().MaxRunRetries
	}

	cfg, baseCfg := jobConfig(job)
	base, nonMem, err := e.cache.Baseline(ctx, baseCfg, job.Mix, job.Epochs, job.Shards)
	if err != nil {
		return Outcome{}, err
	}

	var aborts uint64
	for attempt := 0; ; attempt++ {
		out, err := e.runAttempt(ctx, job, cfg, nonMem, attempt)
		if err == nil {
			out.Mix, out.Policy = job.Mix, job.Spec.Name
			out.NonMem, out.Base = nonMem, base
			out.Attempts = attempt + 1
			// Aborted attempts discarded their partial state; fold the
			// retries they cost into the surviving run's fault tally.
			out.Res.Faults.TransientAborts += aborts
			return out, nil
		}
		if !errors.Is(err, faults.ErrTransient) || attempt >= retries || ctx.Err() != nil {
			return Outcome{}, err
		}
		aborts++
	}
}

// runAttempt executes one managed-run attempt under the job's
// watchdog deadline, with a fresh governor, recorder, injector, and
// trace streams (all are stateful and must not leak across attempts).
func (e *Engine) runAttempt(ctx context.Context, job Job, cfg config.Config, nonMem float64, attempt int) (Outcome, error) {
	timeout := job.Timeout
	if timeout <= 0 {
		timeout = e.jobTimeout
	}
	parent := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	var inj *faults.Injector
	if job.Faults != nil {
		var err error
		if inj, err = faults.New(*job.Faults, attempt); err != nil {
			return Outcome{}, fmt.Errorf("runner: %w", err)
		}
	}
	streams, err := job.Mix.Streams(&cfg)
	if err != nil {
		return Outcome{}, err
	}
	var gov sim.Governor
	if job.Spec.Governor != nil {
		gov = job.Spec.Governor(&cfg, nonMem)
	}
	var rec *telemetry.Recorder
	if job.Telemetry != nil {
		rec = telemetry.NewRecorder(*job.Telemetry)
		rec.NonMemPowerW.Set(nonMem)
		rec.GammaBound.Set(cfg.Policy.Gamma)
	}
	opts := sim.Options{
		Governor:         gov,
		NonMemPower:      nonMem,
		KeepTimeline:     job.Timeline,
		Telemetry:        rec,
		Faults:           inj,
		Shards:           job.Shards,
		ShardGranularity: job.ShardGranularity,
	}
	var s *sim.System
	if job.Warm != nil {
		// Fork from the shared warm-up snapshot instead of simulating
		// the prefix: the restored system resumes at the prefix's epoch
		// boundary with a fresh governor.
		s, err = sim.Restore(cfg, streams, opts, job.Warm)
	} else {
		s, err = sim.New(cfg, streams, opts)
	}
	if err != nil {
		return Outcome{}, err
	}
	res, err := s.RunForContext(ctx, config.Time(job.Epochs)*cfg.Policy.EpochLength)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil {
			return Outcome{}, fmt.Errorf("runner: job exceeded %v watchdog: %w", timeout, ErrJobTimeout)
		}
		return Outcome{}, err
	}
	out := Outcome{Res: res, Shards: s.ParallelShards()}
	if rec != nil {
		apps := make([]string, cfg.Cores)
		for i := range apps {
			apps[i] = job.Mix.Assignment(i)
		}
		freqSeconds := make(map[int]float64, len(res.FreqTime))
		for f, t := range res.FreqTime {
			freqSeconds[int(f)] = t.Seconds()
		}
		out.Telemetry = rec.Export(telemetry.RunMeta{
			Mix:          job.Mix.Name,
			Policy:       job.Spec.Name,
			Gamma:        cfg.Policy.Gamma,
			Cores:        cfg.Cores,
			Channels:     cfg.Channels,
			CoreApps:     apps,
			NonMemPowerW: nonMem,
		}, freqSeconds)
		if err := rec.SinkErr(); err != nil {
			return Outcome{}, fmt.Errorf("runner: telemetry sink: %w", err)
		}
	}
	return out, nil
}

// RunEach executes every job on the worker pool and returns outcomes
// and errors both indexed like jobs (deterministic ordering regardless
// of completion order). One job's failure does not stop the others;
// cancellation does — jobs not yet started report ctx.Err().
func (e *Engine) RunEach(ctx context.Context, jobs []Job) ([]Outcome, []error) {
	outs := make([]Outcome, len(jobs))
	var onDone func(done, i int, err error)
	if e.onResult != nil {
		onDone = func(done, i int, err error) {
			e.onResult(Progress{
				Done: done, Total: len(jobs), Index: i,
				Job: jobs[i], Outcome: outs[i], Err: err,
			})
		}
	}
	errs := ForEach(ctx, e.workers, len(jobs), func(ctx context.Context, i int) error {
		var err error
		outs[i], err = e.Run(ctx, jobs[i])
		return err
	}, onDone)
	return outs, errs
}

// RunAll is RunEach with the per-job errors joined into one error
// annotated with each failing job's identity; outcomes for failed jobs
// are zero values.
func (e *Engine) RunAll(ctx context.Context, jobs []Job) ([]Outcome, error) {
	outs, errs := e.RunEach(ctx, jobs)
	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, fmt.Errorf("job %d (%s/%s): %w",
				i, jobs[i].Mix.Name, jobs[i].Spec.Name, err))
		}
	}
	return outs, errors.Join(joined...)
}
