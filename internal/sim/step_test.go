package sim_test

import (
	"context"
	"math"
	"testing"

	"memscale/internal/config"
	"memscale/internal/core"
	"memscale/internal/sim"
	"memscale/internal/workload"
)

// newGoverned builds a system running the real MemScale governor over
// mixName — the configuration the fleet layer drives.
func newGoverned(t *testing.T, mixName string, opts sim.Options) *sim.System {
	t.Helper()
	cfg := config.Default()
	mix, err := workload.ByName(mixName)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := mix.Streams(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts.Governor = core.NewPolicy(&cfg, core.Options{NonMemPower: 150, Gamma: 0.10})
	s, err := sim.New(cfg, streams, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStepEpochMatchesRunFor drives one system epoch-by-epoch and
// another with RunFor over the same horizon; results must be
// bit-identical.
func TestStepEpochMatchesRunFor(t *testing.T) {
	const horizon = 25 * config.Millisecond

	ref := newGoverned(t, "MID2", sim.Options{})
	want := ref.RunFor(horizon)

	s := newGoverned(t, "MID2", sim.Options{})
	ctx := context.Background()
	for {
		rec, err := s.StepEpoch(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rec.End >= horizon {
			break
		}
	}
	got := s.Finalize()

	if got.Duration != want.Duration {
		t.Fatalf("duration %v != %v", got.Duration, want.Duration)
	}
	if math.Float64bits(got.Memory.Memory()) != math.Float64bits(want.Memory.Memory()) {
		t.Errorf("memory energy %v != %v", got.Memory.Memory(), want.Memory.Memory())
	}
	if math.Float64bits(got.MeanCPI()) != math.Float64bits(want.MeanCPI()) {
		t.Errorf("mean CPI %v != %v", got.MeanCPI(), want.MeanCPI())
	}
	if got.Events != want.Events {
		t.Errorf("events %d != %d", got.Events, want.Events)
	}
}

// TestFrequencyCapCeilsGovernor runs a memory-bound mix (where
// MemScale wants high frequency) under a cap and checks no epoch body
// ever exceeds it, while WantFreq still reports the uncapped desire
// when the cap binds.
func TestFrequencyCapCeilsGovernor(t *testing.T) {
	s := newGoverned(t, "MEM1", sim.Options{KeepTimeline: true})
	if err := s.SetFrequencyCap(config.Freq533); err != nil {
		t.Fatal(err)
	}
	res := s.RunFor(25 * config.Millisecond)
	if len(res.Epochs) == 0 {
		t.Fatal("no epochs recorded")
	}
	constrained := 0
	for _, ep := range res.Epochs {
		if ep.Freq > config.Freq533 {
			t.Errorf("epoch %d ran at %v above the %v cap", ep.Index, ep.Freq, config.Freq533)
		}
		if ep.WantFreq > ep.Freq {
			constrained++
		}
		if ep.WantFreq < ep.Freq {
			t.Errorf("epoch %d want %v below applied %v", ep.Index, ep.WantFreq, ep.Freq)
		}
	}
	// MEM1 is memory-bound: the cap must bind on at least one epoch for
	// the test to mean anything.
	if constrained == 0 {
		t.Error("cap never bound; WantFreq trace is untested")
	}
}

// TestFrequencyCapValidatesLadder rejects off-ladder caps and lets 0
// clear.
func TestFrequencyCapValidatesLadder(t *testing.T) {
	s := newGoverned(t, "ILP1", sim.Options{})
	if err := s.SetFrequencyCap(123); err == nil {
		t.Error("off-ladder cap accepted")
	}
	if err := s.SetFrequencyCap(config.Freq267); err != nil {
		t.Errorf("ladder cap rejected: %v", err)
	}
	if s.FrequencyCap() != config.Freq267 {
		t.Errorf("cap = %v", s.FrequencyCap())
	}
	if err := s.SetFrequencyCap(0); err != nil {
		t.Errorf("clearing cap failed: %v", err)
	}
	if s.FrequencyCap() != 0 {
		t.Error("cap not cleared")
	}
}

// TestCapZeroIsBitIdentical confirms a cap at nominal frequency leaves
// the simulated event sequence untouched (the golden-preserving
// property).
func TestCapZeroIsBitIdentical(t *testing.T) {
	run := func(cap config.FreqMHz) sim.Result {
		s := newGoverned(t, "MID3", sim.Options{})
		if cap != 0 {
			if err := s.SetFrequencyCap(cap); err != nil {
				t.Fatal(err)
			}
		}
		return s.RunFor(15 * config.Millisecond)
	}
	a, b := run(0), run(config.MaxBusFreq)
	if a.Events != b.Events {
		t.Errorf("cap at nominal changed event count: %d != %d", a.Events, b.Events)
	}
	if math.Float64bits(a.Memory.Memory()) != math.Float64bits(b.Memory.Memory()) {
		t.Errorf("cap at nominal changed energy: %v != %v", a.Memory.Memory(), b.Memory.Memory())
	}
}
