// Phases: reproduce the paper's Figure 7 story. The MID3 mix contains
// apsi, which turns memory-intensive partway through its execution.
// MemScale parks the memory subsystem at the bottom of the frequency
// ladder while apsi is compute-bound, detects the phase change at the
// next OS-quantum boundary, and raises the frequency to protect the
// 10% performance bound.
package main

import (
	"fmt"
	"log"
	"strings"

	"memscale"
)

func main() {
	fmt.Println("MemScale phase adaptation: MID3 (apsi bzip2 ammp gap), 100 ms timeline")
	fmt.Println()

	sum, err := memscale.Run(memscale.RunConfig{
		Mix:      "MID3",
		Policy:   "MemScale",
		Epochs:   20, // 100 ms: long enough to cross apsi's phase change
		Timeline: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("   t(ms)  bus freq   frequency ladder (high <-> low)")
	for _, ep := range sum.Timeline {
		// Draw the frequency as a bar: more # = higher frequency.
		steps := (ep.BusFreqMHz() - 200) / 60
		bar := strings.Repeat("#", 1+steps)
		fmt.Printf("  %6.1f  %4d MHz   %s\n", ep.EndMs(), ep.BusFreqMHz(), bar)
	}
	fmt.Println()

	// Locate the adaptation: the first epoch where frequency rose.
	for i := 1; i < len(sum.Timeline); i++ {
		if sum.Timeline[i].BusFreqMHz() > sum.Timeline[i-1].BusFreqMHz() {
			fmt.Printf("phase change detected: frequency raised %d -> %d MHz at t=%.0f ms\n",
				sum.Timeline[i-1].BusFreqMHz(), sum.Timeline[i].BusFreqMHz(), sum.Timeline[i].StartMs())
			break
		}
	}
	fmt.Printf("result: %s\n", sum)
}
