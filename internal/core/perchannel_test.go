package core

import (
	"testing"

	"memscale/internal/config"
	"memscale/internal/memctrl"
	"memscale/internal/sim"
	"memscale/internal/workload"
)

func TestChannelModelSeparatesChannels(t *testing.T) {
	cfg := config.Default()
	m := NewChannelPerfModel(&cfg)
	p := skewedProfileFull(&cfg)
	m.Fit(p)

	// Channel 0's queueing factors dominate channel 1's.
	if m.XiBank[0] <= m.XiBank[1] {
		t.Errorf("xi_bank: ch0 %.2f <= ch1 %.2f", m.XiBank[0], m.XiBank[1])
	}
	// Core 0's misses are on channel 0 only.
	if m.AlphaCh[0][0] <= 0 || m.AlphaCh[0][1] != 0 {
		t.Errorf("core 0 alpha: %v", m.AlphaCh[0])
	}

	// Lowering the idle channel 1 barely changes core 0's CPI;
	// lowering channel 0 changes it a lot.
	nominal := uniformVec(cfg.Channels, config.MaxBusFreq)
	slow1 := uniformVec(cfg.Channels, config.MaxBusFreq)
	slow1[1] = config.Freq200
	slow0 := uniformVec(cfg.Channels, config.MaxBusFreq)
	slow0[0] = config.Freq200

	base := m.CPI(0, nominal)
	if d := m.CPI(0, slow1) - base; d != 0 {
		t.Errorf("idle-channel slowdown changed core 0 CPI by %g", d)
	}
	if d := m.CPI(0, slow0) - base; d <= 0 {
		t.Errorf("loaded-channel slowdown did not raise core 0 CPI (%g)", d)
	}
}

// skewedProfileFull builds the complete profile including interval
// slices.
func skewedProfileFull(cfg *config.Config) sim.Profile {
	c := memctrl.Counters{TLM: make([]uint64, cfg.Cores)}
	c.PerChannel = make([]memctrl.ChannelCounters, cfg.Channels)
	for ch := range c.PerChannel {
		c.PerChannel[ch].TLM = make([]uint64, cfg.Cores)
	}
	c.PerChannel[0].BTC = 1000
	c.PerChannel[0].BTO = 2500
	c.PerChannel[0].CTC = 1000
	c.PerChannel[0].CTO = 1800
	c.PerChannel[0].CBMC = 2000
	c.PerChannel[0].TLM[0] = 1500
	c.PerChannel[1].BTC = 50
	c.PerChannel[1].CTC = 50
	c.PerChannel[1].CBMC = 50
	c.PerChannel[1].TLM[1] = 50
	c.TLM[0] = 1500
	c.TLM[1] = 50

	instr := make([]float64, cfg.Cores)
	for i := range instr {
		instr[i] = 100_000
	}
	instr[0] = 80_000

	p := sim.Profile{
		End:      300 * config.Microsecond,
		BusFreq:  config.MaxBusFreq,
		Counters: c,
		Instr:    instr,
	}
	return p
}

func uniformVec(n int, f config.FreqMHz) []config.FreqMHz {
	out := make([]config.FreqMHz, n)
	for i := range out {
		out[i] = f
	}
	return out
}

func TestPerChannelPolicyOnPartitionedMix(t *testing.T) {
	cfg := config.Default()
	mix := workload.Mix{Name: "HETT", Class: workload.ClassMID,
		Apps: [4]string{"swim", "eon", "art", "crafty"}}

	run := func(gov sim.Governor, nonMem float64) sim.Result {
		streams, err := mix.PartitionedStreams(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.New(cfg, streams, sim.Options{Governor: gov, NonMemPower: nonMem})
		if err != nil {
			t.Fatal(err)
		}
		return s.RunFor(20 * config.Millisecond)
	}
	base := run(nil, 0)
	nonMem := 1.5 * base.DIMMAvgWatts

	pcCfg := config.Default()
	pol := NewPerChannelPolicy(&pcCfg, Options{NonMemPower: nonMem})
	res := run(pol, nonMem)

	if pol.Decisions() == 0 {
		t.Fatal("per-channel policy made no decisions")
	}
	save := 1 - res.Memory.Memory()/base.Memory.Memory()
	if save < 0.10 {
		t.Errorf("partitioned memory savings = %.1f%%, want > 10%%", save*100)
	}
	// Bound holds per core.
	for i := range res.CPI {
		inc := res.CPI[i]/base.CPI[i] - 1
		if inc > pol.Gamma()+0.02 {
			t.Errorf("core %d CPI increase %.1f%% exceeds bound", i, inc*100)
		}
	}
	if pol.Gamma() != 0.10 {
		t.Errorf("gamma = %g", pol.Gamma())
	}
	if pol.Name() != "memscale-perchannel" {
		t.Errorf("name = %q", pol.Name())
	}
	if len(pol.Slack()) != pcCfg.Cores {
		t.Error("slack vector malformed")
	}
}

func TestPartitionedStreamsConfineChannels(t *testing.T) {
	cfg := config.Default()
	mix := workload.Mix{Name: "HETT2", Class: workload.ClassMID,
		Apps: [4]string{"swim", "eon", "art", "crafty"}}
	streams, err := mix.PartitionedStreams(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	mapper := config.NewAddressMapper(&cfg)
	for core, s := range streams {
		want := core % len(mix.Apps) % cfg.Channels
		for i := 0; i < 200; i++ {
			a := s.Next()
			if got := mapper.Map(a.Line).Channel; got != want {
				t.Fatalf("core %d access on channel %d, want %d", core, got, want)
			}
			if a.Writeback {
				if got := mapper.Map(a.WBLine).Channel; got != want {
					t.Fatalf("core %d writeback on channel %d, want %d", core, got, want)
				}
			}
		}
	}
}

func TestLadderIndex(t *testing.T) {
	for i, f := range config.BusFrequencies {
		if got := ladderIndex(f); got != i {
			t.Errorf("ladderIndex(%v) = %d, want %d", f, got, i)
		}
	}
	if ladderIndex(999) != 0 {
		t.Error("unknown frequency should map to index 0")
	}
}
