package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"memscale/internal/checkpoint"
	"memscale/internal/sim"
)

// This file is the fleet's self-healing plane: the per-node supervisor
// spec (bounded checkpoint restarts with exponential backoff and a
// per-window watchdog), the typed errors the plane surfaces, and the
// interrupt-checkpoint bundle a stopping fleet writes so a run can be
// carried past a SIGTERM.
//
// The recovery contract is transparency: a node that crashes inside a
// fleet window is restored from its last periodic snapshot and
// replayed to the window boundary before the coordinator looks at it,
// so a recovered node's observations — and therefore every surviving
// node's caps and metrics — are bit-identical to the same-seed run
// with no crashes at all.

// ErrNodeLost reports a node whose restart budget ran out: the
// supervisor crashed it MaxRetries+1 times inside one fleet window
// without completing it. The node is marked dead, its budget is
// re-water-filled across the survivors, and the fleet keeps running.
// Matched with errors.Is.
var ErrNodeLost = errors.New("fleet: node lost")

// ErrInterrupted reports a fleet run stopped early through
// Config.Interrupt: the summary covers the epochs completed at the
// stop boundary. Matched with errors.Is (it wraps the checkpoint
// plane's shared checkpoint.ErrInterrupted sentinel).
var ErrInterrupted = fmt.Errorf("fleet: %w", checkpoint.ErrInterrupted)

// RecoverySpec defaults.
const (
	// DefaultMaxRetries is the per-window restart budget when
	// RecoverySpec.MaxRetries is zero.
	DefaultMaxRetries = 3

	// DefaultCheckpointEvery is the periodic snapshot cadence in epochs
	// when RecoverySpec.CheckpointEvery is zero.
	DefaultCheckpointEvery = 1

	// DefaultBackoff is the base restart delay when RecoverySpec.Backoff
	// is zero.
	DefaultBackoff = time.Millisecond
)

// RecoverySpec configures the self-healing supervisor each node runs
// under. A nil spec disables recovery entirely: no periodic snapshots
// are taken, no watchdog runs, and an injected crash loses the node
// immediately.
type RecoverySpec struct {
	// MaxRetries bounds checkpoint restarts per fleet window; when a
	// node crashes more than MaxRetries times inside one window it is
	// given up with ErrNodeLost (0 selects the default 3).
	MaxRetries int

	// CheckpointEvery is the periodic snapshot cadence in epochs
	// (0 selects the default 1: snapshot at every epoch boundary).
	CheckpointEvery int

	// StepTimeout is the per-attempt watchdog over one fleet window of
	// host time; an attempt that exceeds it (a straggler, a wedged
	// node) is treated exactly like a crash and recovered from the last
	// snapshot. 0 disables the watchdog.
	StepTimeout time.Duration

	// Backoff is the base host-time delay before a restart, doubling
	// per retry (0 selects the default 1ms; negative is rejected).
	Backoff time.Duration
}

func (r RecoverySpec) withDefaults() RecoverySpec {
	if r.MaxRetries == 0 {
		r.MaxRetries = DefaultMaxRetries
	}
	if r.CheckpointEvery == 0 {
		r.CheckpointEvery = DefaultCheckpointEvery
	}
	if r.Backoff == 0 {
		r.Backoff = DefaultBackoff
	}
	return r
}

// Validate rejects a malformed spec.
func (r RecoverySpec) Validate() error {
	switch {
	case r.MaxRetries < 0:
		return fmt.Errorf("max retries must be >= 0 (0 selects the default %d), got %d", DefaultMaxRetries, r.MaxRetries)
	case r.CheckpointEvery < 0:
		return fmt.Errorf("checkpoint cadence must be >= 0 epochs (0 selects the default %d), got %d", DefaultCheckpointEvery, r.CheckpointEvery)
	case r.StepTimeout < 0:
		return fmt.Errorf("step timeout must be >= 0 (0 disables the watchdog), got %v", r.StepTimeout)
	case r.Backoff < 0:
		return fmt.Errorf("restart backoff must be >= 0 (0 selects the default %v), got %v", DefaultBackoff, r.Backoff)
	}
	return nil
}

// crashFault is the supervisor-internal marker for a recoverable node
// death: an injected crash or a watchdog timeout. It never escapes
// stepWindow — exhausted retries convert it into ErrNodeLost.
type crashFault struct {
	epoch   int
	timeout bool
}

func (c *crashFault) Error() string {
	if c.timeout {
		return fmt.Sprintf("watchdog timeout at epoch %d", c.epoch)
	}
	return fmt.Sprintf("crash injected at epoch %d", c.epoch)
}

// nodeCheckpoint is one node's periodic in-memory snapshot: the
// encoded container (run through the real checkpoint codec, so
// write-corruption faults are caught by its CRC exactly like a disk
// flip would be) plus the window observation accumulators at the
// snapshot instant, which the container deliberately does not carry.
type nodeCheckpoint struct {
	valid bool
	epoch int    // epochs completed at the snapshot
	data  []byte // encoded checkpoint container

	windowJ    float64
	windowSec  float64
	windowBgJ  float64
	windowRefJ float64
	lastRec    sim.EpochRecord
}

// BundleSchemaVersion is the fleet checkpoint bundle format version
// ("MAJOR.MINOR"); readers accept matching majors only.
const BundleSchemaVersion = "1.0"

const bundleMagic = "memscale-fleet-checkpoint"

// NodeCheckpoint is one node's entry in an interrupt bundle.
type NodeCheckpoint struct {
	Node   int    `json:"node"`
	Group  string `json:"group"`
	Epochs int    `json:"epochs"`

	Checkpoint *checkpoint.Checkpoint `json:"checkpoint"`
}

// CheckpointBundle is the state a fleet writes when interrupted: one
// full checkpoint per live node, captured at the window boundary the
// run stopped on.
type CheckpointBundle struct {
	Magic           string `json:"magic"`
	SchemaVersion   string `json:"schema_version"`
	EpochsCompleted int    `json:"epochs_completed"`
	TotalEpochs     int    `json:"total_epochs"`

	Nodes []NodeCheckpoint `json:"nodes"`
}

// WriteBundle encodes the bundle as JSON with the magic and current
// schema version stamped on it.
func WriteBundle(w io.Writer, b *CheckpointBundle) error {
	stamped := *b
	stamped.Magic = bundleMagic
	stamped.SchemaVersion = BundleSchemaVersion
	return json.NewEncoder(w).Encode(&stamped)
}

// ReadBundle decodes a bundle written by WriteBundle, rejecting
// foreign files and incompatible schema majors.
func ReadBundle(r io.Reader) (*CheckpointBundle, error) {
	var b CheckpointBundle
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("fleet checkpoint bundle: %w", err)
	}
	if b.Magic != bundleMagic {
		return nil, fmt.Errorf("fleet checkpoint bundle: magic %q is not %q", b.Magic, bundleMagic)
	}
	if major(b.SchemaVersion) != major(BundleSchemaVersion) {
		return nil, &SchemaVersionError{Version: b.SchemaVersion}
	}
	return &b, nil
}

// bundleNodes snapshots every live node into an interrupt bundle. It
// must run before Finalize (the capture needs the quiescent epoch
// boundary the lockstep loop stopped on).
func bundleNodes(c Config, nodes []*node, done int) (*CheckpointBundle, error) {
	b := &CheckpointBundle{EpochsCompleted: done, TotalEpochs: c.Epochs}
	for _, n := range nodes {
		if n.dead {
			continue
		}
		st, err := n.sys.Save()
		if err != nil {
			return nil, fmt.Errorf("fleet: node %d checkpoint: %w", n.global, err)
		}
		b.Nodes = append(b.Nodes, NodeCheckpoint{
			Node:   n.global,
			Group:  c.Groups[n.group].Name,
			Epochs: n.epochs,
			Checkpoint: &checkpoint.Checkpoint{
				Meta: checkpoint.Meta{
					Mix:    n.mix.Name,
					Policy: n.spec.Name,
					Gamma:  n.runCfg.Policy.Gamma,
					NonMem: n.nonMem,
					Epochs: n.epochs,
				},
				Config: n.runCfg,
				Base:   n.cfg,
				State:  st,
			},
		})
	}
	return b, nil
}
