package memscale

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// TestRunConfigValidateFieldPaths checks that every rejection names
// the offending field with its snake_case path, so callers can surface
// the exact field without parsing prose.
func TestRunConfigValidateFieldPaths(t *testing.T) {
	cases := []struct {
		name string
		rc   RunConfig
		path string
	}{
		{"negative epochs", RunConfig{Epochs: -1}, "epochs"},
		{"gamma at one", RunConfig{Gamma: 1}, "gamma"},
		{"gamma negative", RunConfig{Gamma: -0.1}, "gamma"},
		{"negative cores", RunConfig{Cores: -4}, "cores"},
		{"negative channels", RunConfig{Channels: -1}, "channels"},
		{"storm rate over one",
			RunConfig{Faults: &FaultConfig{RefreshStormRate: 1.5}}, "faults.storm_rate"},
		{"negative relock rate",
			RunConfig{Faults: &FaultConfig{RelockFailRate: -0.2}}, "faults.relock_rate"},
		{"corrupt rate over one",
			RunConfig{Faults: &FaultConfig{CounterCorruptRate: 2}}, "faults.corrupt_rate"},
		{"thermal rate over one",
			RunConfig{Faults: &FaultConfig{ThermalRate: 7}}, "faults.thermal_rate"},
		{"abort rate over one",
			RunConfig{Faults: &FaultConfig{TransientAbortRate: 1.01}}, "faults.abort_rate"},
		{"negative storm bursts",
			RunConfig{Faults: &FaultConfig{RefreshStormBursts: -1}}, "faults.storm_bursts"},
		{"negative relock retries",
			RunConfig{Faults: &FaultConfig{RelockMaxRetries: -2}}, "faults.relock_max_retries"},
		{"negative relock backoff",
			RunConfig{Faults: &FaultConfig{RelockBackoff: -time.Nanosecond}}, "faults.relock_backoff"},
		{"off-ladder thermal ceiling",
			RunConfig{Faults: &FaultConfig{ThermalCeilingMHz: 123}}, "faults.thermal_ceiling_mhz"},
		{"negative thermal window",
			RunConfig{Faults: &FaultConfig{ThermalWindowEpochs: -1}}, "faults.thermal_window_epochs"},
		{"negative run retries",
			RunConfig{Faults: &FaultConfig{MaxRunRetries: -1}}, "faults.max_run_retries"},
		{"negative panic epoch",
			RunConfig{Faults: &FaultConfig{InjectPanic: true, PanicEpoch: -1}}, "faults.panic_epoch"},
		{"node crash rate over one",
			RunConfig{Faults: &FaultConfig{NodeCrashRate: 1.5}}, "faults.node_crash_rate"},
		{"negative straggler rate",
			RunConfig{Faults: &FaultConfig{StragglerRate: -0.1}}, "faults.straggler_rate"},
		{"negative straggler delay",
			RunConfig{Faults: &FaultConfig{StragglerDelay: -time.Millisecond}}, "faults.straggler_delay"},
		{"checkpoint corrupt rate over one",
			RunConfig{Faults: &FaultConfig{CheckpointCorruptRate: 2}}, "faults.checkpoint_corrupt_rate"},
		{"node loss rate over one",
			RunConfig{Faults: &FaultConfig{NodeLossRate: 1.01}}, "faults.node_loss_rate"},
		{"negative node loss epochs",
			RunConfig{Faults: &FaultConfig{NodeLossEpochs: -1}}, "faults.node_loss_epochs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.rc.Validate()
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("Validate() = %v, want ErrInvalidConfig", err)
			}
			if !strings.Contains(err.Error(), tc.path) {
				t.Errorf("error %q does not name field path %q", err, tc.path)
			}
		})
	}
}

// TestRunConfigValidateAccepts: zero values and sane settings pass.
func TestRunConfigValidateAccepts(t *testing.T) {
	good := []RunConfig{
		{},
		{Mix: "MID1", Policy: "MemScale"},
		{Epochs: 3, Gamma: 0.25, Cores: 4, Channels: 2},
		{Faults: &FaultConfig{RefreshStormRate: 0.5, ThermalCeilingMHz: 400}},
	}
	for i, rc := range good {
		if err := rc.Validate(); err != nil {
			t.Errorf("case %d rejected: %v", i, err)
		}
	}
}

// TestValidateMatchesRunContext: a config Validate rejects must be
// rejected identically by RunContext (Validate is the same gate the
// runners use, not a parallel reimplementation).
func TestValidateMatchesRunContext(t *testing.T) {
	rc := RunConfig{Mix: "MID1", Epochs: -1}
	verr := rc.Validate()
	_, rerr := RunContext(context.Background(), rc)
	if verr == nil || rerr == nil {
		t.Fatalf("Validate = %v, RunContext = %v; both must fail", verr, rerr)
	}
	if verr.Error() != rerr.Error() {
		t.Errorf("Validate error %q != RunContext error %q", verr, rerr)
	}
}

// TestWarmStartValidateFieldPaths extends the field-path contract to
// the checkpoint/warm-start knobs: every rejection wraps
// ErrInvalidConfig and names the offending field before any
// simulation runs.
func TestWarmStartValidateFieldPaths(t *testing.T) {
	ctx := context.Background()
	runs := []RunConfig{{Mix: "MID1", Policy: "MemScale", Epochs: 2}}
	cases := []struct {
		name string
		call func() error
		path string
	}{
		{"zero warm-start prefix", func() error {
			_, err := Sweep(ctx, SweepConfig{Runs: runs, WarmStart: &WarmStartConfig{}})
			return err
		}, "warm_start.prefix_epochs"},
		{"negative warm-start prefix", func() error {
			_, err := Sweep(ctx, SweepConfig{Runs: runs, WarmStart: &WarmStartConfig{PrefixEpochs: -3}})
			return err
		}, "warm_start.prefix_epochs"},
		{"prefix not smaller than epochs", func() error {
			_, err := Sweep(ctx, SweepConfig{Runs: runs, WarmStart: &WarmStartConfig{PrefixEpochs: 2}})
			return err
		}, "warm_start.prefix_epochs"},
		{"empty mix zero group key", func() error {
			_, err := Sweep(ctx, SweepConfig{
				Runs:      []RunConfig{{Policy: "MemScale", Epochs: 2}},
				WarmStart: &WarmStartConfig{PrefixEpochs: 1},
			})
			return err
		}, "zero warm-up group key"},
		{"checkpoint epoch beyond run", func() error {
			_, err := CheckpointRun(ctx, runs[0], 99, io.Discard)
			return err
		}, "checkpoint.at_epoch"},
		{"negative checkpoint epoch", func() error {
			_, err := CheckpointRun(ctx, runs[0], -1, io.Discard)
			return err
		}, "checkpoint.at_epoch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("err = %v, want ErrInvalidConfig", err)
			}
			if !strings.Contains(err.Error(), tc.path) {
				t.Errorf("error %q does not name %q", err, tc.path)
			}
		})
	}
}

// TestFleetConfigValidateFieldPaths mirrors the run-config contract
// for the fleet surface, including indexed group paths.
func TestFleetConfigValidateFieldPaths(t *testing.T) {
	okGroup := NodeGroup{Name: "g", Nodes: 1, Mix: "MID1"}
	cases := []struct {
		name string
		fc   FleetConfig
		path string
	}{
		{"no groups", FleetConfig{}, "groups"},
		{"negative epochs", FleetConfig{Groups: []NodeGroup{okGroup}, Epochs: -1}, "epochs"},
		{"negative budget", FleetConfig{Groups: []NodeGroup{okGroup}, PowerBudgetW: -5}, "power_budget_w"},
		{"negative cap interval",
			FleetConfig{Groups: []NodeGroup{okGroup}, CapIntervalEpochs: -1}, "cap_interval_epochs"},
		{"zero nodes",
			FleetConfig{Groups: []NodeGroup{{Mix: "MID1"}}}, "groups[0].nodes"},
		{"second group bad nodes",
			FleetConfig{Groups: []NodeGroup{okGroup, {Mix: "MID1"}}}, "groups[1].nodes"},
		{"bad gamma",
			FleetConfig{Groups: []NodeGroup{{Nodes: 1, Mix: "MID1", Gamma: 1.2}}}, "groups[0].gamma"},
		{"bad arrival",
			FleetConfig{Groups: []NodeGroup{{Nodes: 1, Mix: "MID1",
				Arrival: ArrivalConfig{Kind: "nope"}}}}, "groups[0].arrival"},
		{"bad burst probability",
			FleetConfig{Groups: []NodeGroup{{Nodes: 1, Mix: "MID1",
				Arrival: ArrivalConfig{Kind: ArrivalBursty, BurstProbability: 2}}}},
			"groups[0].arrival: burst_probability"},
		{"bad fault rate",
			FleetConfig{Groups: []NodeGroup{{Nodes: 1, Mix: "MID1",
				Faults: &FaultConfig{ThermalRate: 9}}}}, "groups[0].faults.thermal_rate"},
		{"bad crash rate",
			FleetConfig{Groups: []NodeGroup{{Nodes: 1, Mix: "MID1",
				Faults: &FaultConfig{NodeCrashRate: -1}}}}, "groups[0].faults.node_crash_rate"},
		{"fleet recovery negative retries",
			FleetConfig{Groups: []NodeGroup{okGroup},
				Recovery: &FleetRecoveryConfig{MaxRetries: -1}}, "recovery.max_retries"},
		{"fleet recovery negative cadence",
			FleetConfig{Groups: []NodeGroup{okGroup},
				Recovery: &FleetRecoveryConfig{CheckpointEvery: -2}}, "recovery.checkpoint_every"},
		{"fleet recovery negative watchdog",
			FleetConfig{Groups: []NodeGroup{okGroup},
				Recovery: &FleetRecoveryConfig{StepTimeout: -time.Second}}, "recovery.step_timeout"},
		{"fleet recovery negative backoff",
			FleetConfig{Groups: []NodeGroup{okGroup},
				Recovery: &FleetRecoveryConfig{Backoff: -time.Millisecond}}, "recovery.backoff"},
		{"group recovery override bad retries",
			FleetConfig{Groups: []NodeGroup{{Nodes: 1, Mix: "MID1",
				Recovery: &FleetRecoveryConfig{MaxRetries: -3}}}}, "groups[0].recovery.max_retries"},
		{"group recovery override bad watchdog",
			FleetConfig{Groups: []NodeGroup{okGroup, {Nodes: 1, Mix: "MID1",
				Recovery: &FleetRecoveryConfig{StepTimeout: -1}}}}, "groups[1].recovery.step_timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.fc.Validate()
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("Validate() = %v, want ErrInvalidConfig", err)
			}
			if !strings.Contains(err.Error(), tc.path) {
				t.Errorf("error %q does not name field path %q", err, tc.path)
			}
		})
	}
}

// TestFleetConfigValidateSentinels: unknown names match their specific
// sentinels as well as ErrInvalidConfig.
func TestFleetConfigValidateSentinels(t *testing.T) {
	err := FleetConfig{Groups: []NodeGroup{{Nodes: 1, Mix: "BOGUS"}}}.Validate()
	if !errors.Is(err, ErrUnknownMix) || !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("unknown mix error %v must match ErrUnknownMix and ErrInvalidConfig", err)
	}
	err = FleetConfig{Groups: []NodeGroup{{Nodes: 1, Mix: "MID1", Policy: "BOGUS"}}}.Validate()
	if !errors.Is(err, ErrUnknownPolicy) || !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("unknown policy error %v must match ErrUnknownPolicy and ErrInvalidConfig", err)
	}
	ok := FleetConfig{Groups: []NodeGroup{{Nodes: 2, Mix: "MID1", Policy: "MemScale",
		Arrival: ArrivalConfig{Kind: ArrivalPoisson}}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid fleet config rejected: %v", err)
	}
}
