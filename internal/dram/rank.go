package dram

import (
	"fmt"
	"math"

	"memscale/internal/config"
)

// PDState is the clock-enable (CKE) state of a rank.
type PDState int

// Powerdown states. Only precharge powerdown is entered by the
// controller policies (as in the paper); active powerdown exists for
// accounting completeness.
const (
	PDNone PDState = iota // CKE high, rank operational
	PDFast                // fast-exit precharge powerdown (tXP to wake)
	PDSlow                // slow-exit precharge powerdown (tXPDLL to wake)
)

// inFlight marks a bank whose final busy time is not yet known (the
// access has started but has not been granted the bus).
const inFlight = config.Time(math.MaxInt64)

type bankState struct {
	openRow   int         // -1 when precharged
	freeAt    config.Time // bank can start its next access at this time
	actAt     config.Time // time of the activation that opened openRow
	inService bool        // between StartAccess and FinishAccess
}

// Rank models one DRAM rank: eight (configurable) banks sharing
// activation windows, powerdown state, and refresh obligations.
// All methods must be called with monotonically nondecreasing times;
// the rank is not safe for concurrent use (the simulator is
// single-threaded by design).
type Rank struct {
	timing *Resolved // shared with the controller; swapped on DVFS
	banks  []bankState

	activeBanks int
	inService   int

	lastAct config.Time
	faw     [4]config.Time // ring of recent activation times
	fawIdx  int

	pd             PDState
	refreshing     bool
	refreshPending bool
	refreshUntil   config.Time

	acct   Account
	acctAt config.Time
}

// NewRank builds a rank with the given bank count, using timing t
// (which the controller may re-point on every frequency change).
func NewRank(banks int, t *Resolved) *Rank {
	if banks <= 0 {
		panic("dram: rank needs at least one bank")
	}
	r := &Rank{timing: t, banks: make([]bankState, banks)}
	for i := range r.banks {
		r.banks[i].openRow = -1
	}
	// Seed the activation history far in the past so a fresh rank
	// imposes no tRRD/tFAW constraint.
	const distantPast = config.Time(math.MinInt64 / 4)
	r.lastAct = distantPast
	for i := range r.faw {
		r.faw[i] = distantPast
	}
	return r
}

// SetTiming swaps the resolved timing (after a frequency relock).
func (r *Rank) SetTiming(t *Resolved) { r.timing = t }

// tick attributes the interval since the last accounting point to the
// rank's current background state.
func (r *Rank) tick(now config.Time) {
	dur := now - r.acctAt
	if dur < 0 {
		panic(fmt.Sprintf("dram: accounting time went backwards: %v -> %v", r.acctAt, now))
	}
	if dur == 0 {
		return
	}
	switch {
	case r.refreshing:
		r.acct.Refreshing += dur
	case r.pd == PDNone && r.activeBanks > 0:
		r.acct.ActiveStandby += dur
	case r.pd == PDNone:
		r.acct.PrechargeStandby += dur
	case r.activeBanks > 0:
		r.acct.ActivePD += dur
	case r.pd == PDSlow:
		r.acct.PrechargePDSlow += dur
	default:
		r.acct.PrechargePD += dur
	}
	r.acctAt = now
}

// Flush closes the current accounting interval at now and returns the
// accumulated account, resetting it.
func (r *Rank) Flush(now config.Time) Account {
	r.tick(now)
	out := r.acct
	r.acct = Account{}
	return out
}

// OpenRow returns the open row of a bank, or -1.
func (r *Rank) OpenRow(bank int) int { return r.banks[bank].openRow }

// BankFreeAt returns when the bank can next start an access; it
// returns (time, false) if the bank is mid-service with an unknown
// completion.
func (r *Rank) BankFreeAt(bank int) (config.Time, bool) {
	b := &r.banks[bank]
	if b.inService {
		return 0, false
	}
	return b.freeAt, true
}

// Idle reports whether no bank is in service or open and no refresh is
// pending or running — the condition for entering powerdown.
func (r *Rank) Idle(now config.Time) bool {
	if r.inService > 0 || r.activeBanks > 0 || r.refreshing || r.refreshPending {
		return false
	}
	for i := range r.banks {
		if r.banks[i].freeAt > now {
			return false // precharge still completing
		}
	}
	return true
}

// InPowerdown reports the rank's CKE-low state.
func (r *Rank) InPowerdown() PDState { return r.pd }

// EnterPowerdown drops CKE if the rank is idle. It reports whether the
// transition happened.
func (r *Rank) EnterPowerdown(now config.Time, slow bool) bool {
	if r.pd != PDNone || !r.Idle(now) {
		return false
	}
	r.tick(now)
	if slow {
		r.pd = PDSlow
	} else {
		r.pd = PDFast
	}
	return true
}

// wake raises CKE and returns the exit latency the next command must
// absorb. Counted as a powerdown exit (EPDC).
func (r *Rank) wake(now config.Time) config.Time {
	if r.pd == PDNone {
		return 0
	}
	r.tick(now)
	exit := r.timing.TXP
	if r.pd == PDSlow {
		exit = r.timing.TXPDLL
	}
	r.pd = PDNone
	r.acct.PDExits++
	return exit
}

// earliestActivate returns the earliest time a new activation may be
// issued, honouring tRRD and the four-activation window tFAW.
func (r *Rank) earliestActivate() config.Time {
	t := r.lastAct + r.timing.TRRD
	if w := r.faw[r.fawIdx] + r.timing.TFAW; w > t {
		t = w // r.faw[r.fawIdx] is the oldest of the last four
	}
	return t
}

func (r *Rank) recordActivation(at config.Time) {
	r.lastAct = at
	r.faw[r.fawIdx] = at
	r.fawIdx = (r.fawIdx + 1) % len(r.faw)
	r.acct.Activations++
}

// StartAccess begins servicing an access to (bank, row) at or after
// now. It returns the time device data is ready for the bus, the
// row-buffer outcome, and whether a powerdown exit was absorbed. The
// bank is held in service until FinishAccess.
//
// The caller must not start an access on a bank that is in service or
// whose freeAt lies in the future, and must not call during a pending
// or running refresh.
func (r *Rank) StartAccess(now config.Time, bank, row int) (ready config.Time, kind AccessKind, pdExit bool) {
	b := &r.banks[bank]
	if b.inService {
		panic("dram: StartAccess on bank already in service")
	}
	// A pending (not yet issued) refresh is tolerated: the controller
	// stops dispatching new requests, but requests already in its
	// pipeline may still reach the rank; the refresh waits for them.
	if r.refreshing {
		panic("dram: StartAccess during refresh")
	}

	start := config.MaxTime(now, b.freeAt)
	if r.pd != PDNone {
		exit := r.wake(now)
		start = config.MaxTime(start, now+exit)
		pdExit = true
	}

	switch {
	case b.openRow == row:
		kind = RowHit
	case b.openRow == -1:
		kind = ClosedMiss
	default:
		kind = OpenMiss
	}

	if kind != RowHit {
		// The activation is issued after any required precharge.
		actAt := start
		if kind == OpenMiss {
			actAt += r.timing.TRP
		}
		actAt = config.MaxTime(actAt, r.earliestActivate())
		r.recordActivation(actAt)
		if kind == OpenMiss {
			start = actAt - r.timing.TRP
		} else {
			start = actAt
		}
		b.actAt = actAt
		if b.openRow == -1 {
			r.tick(now)
			r.activeBanks++
		}
		b.openRow = row
	}

	ready = start + r.timing.Latency(kind)
	b.inService = true
	b.freeAt = inFlight
	r.inService++
	return ready, kind, pdExit
}

// FinishAccess completes the bus transfer of the bank's in-service
// access: the burst occupies [busStart, busEnd]. If keepOpen, the row
// is left open for an already-queued same-row access; otherwise the
// bank precharges and the caller must invoke PrechargeDone at the
// returned time. Write selects read vs write burst accounting.
func (r *Rank) FinishAccess(bank int, busStart, busEnd config.Time, write, keepOpen bool) (prechargeDone config.Time) {
	b := &r.banks[bank]
	if !b.inService {
		panic("dram: FinishAccess on bank not in service")
	}
	b.inService = false
	r.inService--

	if write {
		r.acct.WriteBurst += busEnd - busStart
	} else {
		r.acct.ReadBurst += busEnd - busStart
	}

	if keepOpen {
		b.freeAt = busEnd
		return 0
	}
	prechargeStart := config.MaxTime(busEnd, b.actAt+r.timing.TRAS)
	prechargeDone = prechargeStart + r.timing.TRP
	b.freeAt = prechargeDone
	return prechargeDone
}

// PrechargeDone marks the bank's auto-precharge complete, closing the
// row. Call at the time FinishAccess returned. If a refresh's
// precharge-all already closed the bank, the call is a no-op.
func (r *Rank) PrechargeDone(now config.Time, bank int) {
	b := &r.banks[bank]
	if b.openRow == -1 {
		return
	}
	r.tick(now)
	b.openRow = -1
	r.activeBanks--
}

// AccountTermination charges this rank for terminating a burst driven
// by another rank on the same channel.
func (r *Rank) AccountTermination(dur config.Time) { r.acct.TermBurst += dur }

// SetRefreshPending marks that a refresh is due; the controller stops
// dispatching to the rank until the refresh completes. It reports
// whether the call newly marked the rank — false means an earlier
// obligation is still outstanding and this one is absorbed into it,
// which is how back-to-back retention-emergency rounds coalesce.
func (r *Rank) SetRefreshPending() (newly bool) {
	newly = !r.refreshPending
	r.refreshPending = true
	return newly
}

// RefreshBlocked reports whether dispatch to this rank must wait for a
// refresh to be issued and completed.
func (r *Rank) RefreshBlocked() bool { return r.refreshing || r.refreshPending }

// TryStartRefresh attempts to begin the pending refresh at now. It
// fails while any bank is mid-service. On success it returns the time
// the refresh completes; the caller must invoke RefreshDone then.
func (r *Rank) TryStartRefresh(now config.Time) (until config.Time, ok bool) {
	if !r.refreshPending {
		panic("dram: TryStartRefresh without a pending refresh")
	}
	if r.inService > 0 {
		return 0, false
	}
	if r.refreshing {
		// A refresh obligation arrived while one is running (a
		// retention-emergency round landing mid-refresh); it starts
		// when the running one completes.
		return 0, false
	}
	start := now
	if r.pd != PDNone {
		start += r.wake(now)
	}
	for i := range r.banks {
		start = config.MaxTime(start, r.banks[i].freeAt)
	}
	r.tick(now)
	if r.activeBanks > 0 {
		// Precharge-all before refresh; close every open row.
		for i := range r.banks {
			if r.banks[i].openRow != -1 {
				r.banks[i].openRow = -1
				r.activeBanks--
			}
		}
		start += r.timing.TRP
	}
	r.refreshing = true
	r.refreshPending = false
	r.refreshUntil = start + r.timing.TRFC
	for i := range r.banks {
		r.banks[i].freeAt = r.refreshUntil
	}
	return r.refreshUntil, true
}

// RefreshDone completes the running refresh.
func (r *Rank) RefreshDone(now config.Time) {
	if !r.refreshing {
		panic("dram: RefreshDone without a running refresh")
	}
	r.tick(now)
	r.refreshing = false
	r.acct.Refreshes++
}
