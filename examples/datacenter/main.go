// Datacenter: the energy-proportionality story of the paper's
// introduction. A server's load varies through the day; with
// conventional memory the memory subsystem burns nearly the same
// power at 2 a.m. as at noon. This example walks a diurnal schedule of
// workload intensities (idle-ish overnight, balanced in the morning,
// memory-bound at peak) and compares the energy of an unmanaged
// memory system against MemScale, per period and summed.
package main

import (
	"fmt"
	"log"

	"memscale"
)

// period is one slice of the diurnal schedule: a representative mix
// and how many real hours it stands for.
type period struct {
	label string
	mix   string
	hours float64
}

func main() {
	schedule := []period{
		{"overnight (light)", "ILP2", 8},
		{"morning (mixed)", "MID1", 6},
		{"peak (memory-bound)", "MEM2", 4},
		{"evening (mixed)", "MID4", 6},
	}

	fmt.Println("diurnal schedule, baseline vs MemScale")
	fmt.Printf("%-22s %10s %12s %12s %10s\n", "period", "hours", "base (kJ)", "scaled (kJ)", "saved")

	var baseTotal, scaledTotal float64
	for _, p := range schedule {
		sum, err := memscale.Run(memscale.RunConfig{
			Mix:    p.mix,
			Policy: "MemScale",
			Epochs: 6,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Scale the simulated window's average power to the period's
		// real duration.
		seconds := p.hours * 3600
		scaled := sum.SystemEnergyJ / sum.DurationSeconds * seconds / 1000
		base := scaled / (1 - sum.SystemSavings)
		baseTotal += base
		scaledTotal += scaled
		fmt.Printf("%-22s %10.0f %12.0f %12.0f %9.1f%%\n",
			p.label, p.hours, base, scaled, sum.SystemSavings*100)
	}
	fmt.Printf("%-22s %10s %12.0f %12.0f %9.1f%%\n", "TOTAL", "24",
		baseTotal, scaledTotal, (1-scaledTotal/baseTotal)*100)
	fmt.Println()
	fmt.Println("MemScale saves the most exactly when servers idle — the hours that")
	fmt.Println("dominate a datacenter's day — because its active low-power modes do")
	fmt.Println("not depend on finding rank-level idleness.")
}
