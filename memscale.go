// Package memscale is a library-scale reproduction of "MemScale:
// Active Low-Power Modes for Main Memory" (Deng, Meisner, Ramos,
// Wenisch, Bianchini — ASPLOS 2011).
//
// It bundles a discrete-event DDR3 memory-system simulator (devices,
// controller, counters, power), an in-order multicore front end fed by
// synthetic SPEC-like traces, the MemScale OS energy-management policy
// with its counter-driven performance and energy models, and the
// baseline schemes the paper compares against (Fast-PD, Slow-PD,
// Decoupled DIMMs, Static frequency).
//
// The top-level API runs (workload, policy) pairs against the
// unmanaged baseline and reports paired energy/performance outcomes:
//
//	sum, err := memscale.Run(memscale.RunConfig{Mix: "MID1", Policy: "MemScale"})
//	fmt.Printf("system energy savings: %.1f%%\n", sum.SystemSavings*100)
//
// For the full evaluation (every table and figure of the paper), see
// the Experiments API and cmd/memscale-repro.
package memscale

import (
	"fmt"

	"memscale/internal/config"
	"memscale/internal/policies"
	"memscale/internal/power"
	"memscale/internal/sim"
	"memscale/internal/workload"
)

// Version of the library.
const Version = "1.0.0"

// RunConfig selects and scales one simulation.
type RunConfig struct {
	// Mix is a Table 1 workload name: ILP1-4, MID1-4, MEM1-4.
	Mix string

	// Policy is a scheme name as listed by Policies(): "Baseline",
	// "Fast-PD", "Slow-PD", "Decoupled", "Static", "MemScale",
	// "MemScale (MemEnergy)", "MemScale + Fast-PD".
	Policy string

	// Epochs is the run length in 5 ms OS quanta (default 10).
	Epochs int

	// Gamma is the maximum allowed performance degradation
	// (default 0.10).
	Gamma float64

	// Cores overrides the core count (default 16); Channels overrides
	// the channel count (default 4).
	Cores    int
	Channels int

	// Timeline retains per-epoch frequency/CPI records.
	Timeline bool
}

// EpochSample is one OS quantum of a timeline run.
type EpochSample struct {
	StartMs, EndMs float64
	BusFreqMHz     int
	CoreCPI        []float64
	ChannelUtil    []float64
}

// RunSummary reports one run paired against its baseline.
type RunSummary struct {
	Mix    string
	Policy string

	DurationSeconds float64

	// Energy (joules) of the managed run.
	MemoryEnergyJ float64
	SystemEnergyJ float64

	// Savings relative to the unmanaged baseline.
	MemorySavings float64
	SystemSavings float64

	// CPI degradation relative to the baseline: multiprogram average
	// and worst application (the Figure 6 metrics).
	AvgCPIIncrease   float64
	WorstCPIIncrease float64

	// FreqSeconds is the time spent at each bus frequency (MHz).
	FreqSeconds map[int]float64

	// Timeline, when requested, holds the per-epoch records.
	Timeline []EpochSample
}

// Mixes returns the Table 1 workload names.
func Mixes() []string { return workload.Names() }

// Policies returns the scheme names accepted by RunConfig.Policy.
func Policies() []string { return policies.Names() }

// Run executes one (mix, policy) pair and its baseline, returning the
// paired summary. Runs are deterministic: the same RunConfig always
// produces identical results.
func Run(rc RunConfig) (RunSummary, error) {
	if rc.Epochs <= 0 {
		rc.Epochs = 10
	}
	if rc.Gamma <= 0 {
		rc.Gamma = 0.10
	}
	if rc.Policy == "" {
		rc.Policy = "MemScale"
	}
	mix, err := workload.ByName(rc.Mix)
	if err != nil {
		return RunSummary{}, err
	}
	spec, err := policies.ByName(rc.Policy)
	if err != nil {
		return RunSummary{}, err
	}

	mkCfg := func() config.Config {
		cfg := config.Default()
		cfg.Policy.Gamma = rc.Gamma
		if rc.Cores > 0 {
			cfg.Cores = rc.Cores
		}
		if rc.Channels > 0 {
			cfg.Channels = rc.Channels
		}
		return cfg
	}
	duration := config.Time(rc.Epochs) * mkCfg().Policy.EpochLength

	// Baseline run and rest-of-system calibration (Section 4.1: DIMMs
	// average 40% of server power at the baseline).
	baseCfg := mkCfg()
	baseStreams, err := mix.Streams(&baseCfg)
	if err != nil {
		return RunSummary{}, err
	}
	baseSys, err := sim.New(baseCfg, baseStreams, sim.Options{})
	if err != nil {
		return RunSummary{}, err
	}
	base := baseSys.RunFor(duration)
	nonMem := power.NewModel(&baseCfg).RestOfSystemPower(base.DIMMAvgWatts)

	// Managed run.
	cfg := mkCfg()
	if spec.Configure != nil {
		spec.Configure(&cfg)
	}
	streams, err := mix.Streams(&cfg)
	if err != nil {
		return RunSummary{}, err
	}
	// The MemScale specs read gamma from cfg.Policy.Gamma, which mkCfg
	// already set from rc.Gamma.
	var gov sim.Governor
	if spec.Governor != nil {
		gov = spec.Governor(&cfg, nonMem)
	}
	s, err := sim.New(cfg, streams, sim.Options{
		Governor:     gov,
		NonMemPower:  nonMem,
		KeepTimeline: rc.Timeline,
	})
	if err != nil {
		return RunSummary{}, err
	}
	res := s.RunFor(duration)

	return summarize(mix, spec.Name, nonMem, base, res), nil
}

func summarize(mix workload.Mix, policy string, nonMem float64, base, res sim.Result) RunSummary {
	sysE := func(r sim.Result) float64 {
		return r.Memory.Memory() + nonMem*r.Duration.Seconds()
	}
	out := RunSummary{
		Mix:             mix.Name,
		Policy:          policy,
		DurationSeconds: res.Duration.Seconds(),
		MemoryEnergyJ:   res.Memory.Memory(),
		SystemEnergyJ:   sysE(res),
		MemorySavings:   1 - res.Memory.Memory()/base.Memory.Memory(),
		SystemSavings:   1 - sysE(res)/sysE(base),
		FreqSeconds:     map[int]float64{},
	}

	// Per-application CPI degradation.
	type agg struct{ cur, base, n float64 }
	perApp := map[string]*agg{}
	for i := range res.CPI {
		app := mix.Assignment(i)
		a := perApp[app]
		if a == nil {
			a = &agg{}
			perApp[app] = a
		}
		a.cur += res.CPI[i]
		a.base += base.CPI[i]
		a.n++
	}
	var sum float64
	worst := 0.0
	for _, a := range perApp {
		inc := a.cur/a.base - 1
		sum += inc
		if inc > worst {
			worst = inc
		}
	}
	out.AvgCPIIncrease = sum / float64(len(perApp))
	out.WorstCPIIncrease = worst

	for f, t := range res.FreqTime {
		out.FreqSeconds[int(f)] = t.Seconds()
	}
	for _, ep := range res.Epochs {
		out.Timeline = append(out.Timeline, EpochSample{
			StartMs:     ep.Start.Milliseconds(),
			EndMs:       ep.End.Milliseconds(),
			BusFreqMHz:  int(ep.Freq),
			CoreCPI:     ep.CoreCPI,
			ChannelUtil: ep.ChannelUtil,
		})
	}
	return out
}

// String renders a one-line summary.
func (s RunSummary) String() string {
	return fmt.Sprintf("%s/%s: system %+.1f%%, memory %+.1f%%, CPI +%.1f%% (worst +%.1f%%)",
		s.Mix, s.Policy, s.SystemSavings*100, s.MemorySavings*100,
		s.AvgCPIIncrease*100, s.WorstCPIIncrease*100)
}
