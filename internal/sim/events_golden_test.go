package sim

import (
	"os"
	"testing"

	"memscale/internal/config"
	"memscale/internal/workload"
)

// TestGoldenEventCounts pins the exact number of events fired and
// scheduled over two baseline epochs.
//
// Two-tier golden policy: the energy/CPI/residency goldens in the root
// package's golden_test.go are FROZEN — coalescing fast paths must
// reproduce them Float64bits-exactly, because eliding an event only
// reorganizes when the same arithmetic runs. Event counts, by
// contrast, are EXPECTED to change whenever a new fast path elides
// more of the event population; they are pinned here only to catch
// unintentional drift (an optimization accidentally scheduling more,
// or a refactor silently changing the event sequence). After a
// deliberate coalescing change, regenerate these counts with:
//
//	MEMSCALE_UPDATE_GOLDEN=1 go test -run TestGoldenEventCounts ./internal/sim/
//
// which prints the updated table entries instead of failing.
func TestGoldenEventCounts(t *testing.T) {
	update := os.Getenv("MEMSCALE_UPDATE_GOLDEN") != ""
	golden := []struct {
		mix              string
		fired, scheduled uint64
	}{
		{"MEM1", 9103919, 9103953},
		{"ILP1", 810215, 810248},
		{"MID2", 3521634, 3521667},
	}
	for _, g := range golden {
		g := g
		t.Run(g.mix, func(t *testing.T) {
			if !update {
				t.Parallel()
			}
			cfg := config.Default()
			mix, err := workload.ByName(g.mix)
			if err != nil {
				t.Fatal(err)
			}
			streams, err := mix.Streams(&cfg)
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(cfg, streams, Options{})
			if err != nil {
				t.Fatal(err)
			}
			res := s.RunFor(2 * cfg.Policy.EpochLength)
			if update {
				t.Logf("golden entry: {%q, %d, %d}", g.mix, s.Q.Fired(), s.Q.ScheduledTotal())
				return
			}
			if s.Q.Fired() != g.fired {
				t.Errorf("fired %d events, want %d", s.Q.Fired(), g.fired)
			}
			if s.Q.ScheduledTotal() != g.scheduled {
				t.Errorf("scheduled %d events, want %d", s.Q.ScheduledTotal(), g.scheduled)
			}
			if res.Events != g.fired {
				t.Errorf("Result.Events = %d, want Fired() = %d", res.Events, g.fired)
			}
		})
	}
}
