package exp

import (
	"memscale/internal/config"
	"memscale/internal/core"
	"memscale/internal/power"
	"memscale/internal/sim"
	"memscale/internal/stats"
	"memscale/internal/trace"
	"memscale/internal/workload"
)

// futureMixes are deliberately heterogeneous pairings for the
// per-channel study: with OS page placement pinning each application
// to its own channel, channel loads differ wildly, which is exactly
// where per-channel DFS can beat uniform scaling.
var futureMixes = []workload.Mix{
	{Name: "HET1", Class: workload.ClassMID, Apps: [4]string{"swim", "eon", "art", "crafty"}},
	{Name: "HET2", Class: workload.ClassMID, Apps: [4]string{"equake", "perlbmk", "mgrid", "gzip"}},
}

// futureRun runs one governor over partitioned streams and returns the
// result.
func (p Params) futureRun(mix workload.Mix, mkGov func(*config.Config, float64) sim.Governor, nonMem float64) (sim.Result, error) {
	cfg := config.Default()
	if p.Gamma > 0 {
		cfg.Policy.Gamma = p.Gamma
	}
	streams, err := mix.PartitionedStreams(&cfg)
	if err != nil {
		return sim.Result{}, err
	}
	var gov sim.Governor
	if mkGov != nil {
		gov = mkGov(&cfg, nonMem)
	}
	s, err := sim.New(cfg, streams, sim.Options{Governor: gov, NonMemPower: nonMem})
	if err != nil {
		return sim.Result{}, err
	}
	return s.RunForContext(p.ctx(), p.runDuration(&cfg))
}

// FutureWork reproduces the Section 6 extension study: per-channel
// frequency selection on channel-partitioned workloads, against the
// uniform policy and the unmanaged baseline.
func (p Params) FutureWork() (Report, error) {
	t := stats.Table{
		Title: "Section 6 future work: per-channel DFS on channel-partitioned workloads",
		Columns: []string{"Workload", "Policy", "System Energy Reduction",
			"Memory Energy Reduction", "Worst CPI Increase"},
		Notes: []string{
			"each application's pages are pinned to one channel (OS placement)",
			"per-channel DFS slows lightly loaded channels below the uniform choice",
		},
	}
	for _, mix := range futureMixes {
		base, err := p.futureRun(mix, nil, 0)
		if err != nil {
			return Report{}, err
		}
		cfg := config.Default()
		nonMem := power.NewModel(&cfg).RestOfSystemPower(base.DIMMAvgWatts)

		variants := []struct {
			name string
			mk   func(*config.Config, float64) sim.Governor
		}{
			{"MemScale (uniform)", func(cfg *config.Config, nm float64) sim.Governor {
				return core.NewPolicy(cfg, core.Options{NonMemPower: nm, Gamma: p.Gamma})
			}},
			{"MemScale (per-channel)", func(cfg *config.Config, nm float64) sim.Governor {
				return core.NewPerChannelPolicy(cfg, core.Options{NonMemPower: nm, Gamma: p.Gamma})
			}},
		}
		for _, v := range variants {
			res, err := p.futureRun(mix, v.mk, nonMem)
			if err != nil {
				return Report{}, err
			}
			out := Outcome{Mix: mix, Policy: v.name, NonMem: nonMem, Base: base, Res: res}
			_, worst := out.CPIIncrease()
			t.AddRow(mix.Name, v.name, stats.Pct(out.SystemSavings()),
				stats.Pct(out.MemorySavings()), stats.Pct(worst))
			p.logf("  futurework %s %s: sys %s", mix.Name, v.name, stats.Pct(out.SystemSavings()))
		}
	}
	return Report{ID: "futurework", Title: "Per-channel DFS extension", Table: t}, nil
}

// VerifyPartitioning is a self-check used by tests and docs: it
// confirms partitioned streams confine each application to its
// channel.
func VerifyPartitioning(cfg *config.Config, mix workload.Mix, draws int) (map[string]map[int]int, error) {
	streams, err := mix.PartitionedStreams(cfg)
	if err != nil {
		return nil, err
	}
	mapper := config.NewAddressMapper(cfg)
	spread := map[string]map[int]int{}
	for core, s := range streams {
		app := mix.Assignment(core)
		if spread[app] == nil {
			spread[app] = map[int]int{}
		}
		for i := 0; i < draws; i++ {
			var a trace.Access
			a = s.Next()
			spread[app][mapper.Map(a.Line).Channel]++
			if a.Writeback {
				spread[app][mapper.Map(a.WBLine).Channel]++
			}
		}
	}
	return spread, nil
}
