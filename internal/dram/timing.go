// Package dram models JEDEC DDR3 devices at the fidelity the paper's
// memory-system simulator uses: per-bank state machines with lumped
// activate/CAS/precharge service times, tRRD/tFAW activation windows,
// rank-granularity precharge powerdown, periodic refresh, and the
// state-duration accounting the Micron power model consumes.
//
// The package is passive: the memory controller (internal/memctrl)
// drives every transition and owns event scheduling. That split
// mirrors real hardware, where DRAM devices only obey commands.
package dram

import "memscale/internal/config"

// Resolved holds the device timing parameters quantized to whole
// clock cycles at a specific operating point.
//
// Device-core parameters (tRCD, tRP, tCL, ...) are fixed wall-clock
// durations rounded up to whole DIMM-clock cycles, so they grow
// slightly as the clock slows (quantization), while burst and MC
// processing times are cycle counts and scale linearly with frequency
// — exactly the behaviour Section 2.2 describes.
type Resolved struct {
	BusFreq config.FreqMHz // channel frequency
	DevFreq config.FreqMHz // DRAM/DIMM clock (== BusFreq unless decoupled)

	TRCD   config.Time
	TRP    config.Time
	TCL    config.Time
	TRAS   config.Time
	TRTP   config.Time
	TRRD   config.Time
	TFAW   config.Time
	TRFC   config.Time
	TXP    config.Time
	TXPDLL config.Time

	Burst    config.Time // cache-line transfer on the channel
	DevBurst config.Time // cache-line transfer at the device clock
	MC       config.Time // memory-controller processing per request

	RefreshInterval config.Time // tREFI
}

// Resolve quantizes t at the given bus and device frequencies.
// Pass dev == bus for a conventional (lock-step) memory system; a
// lower dev models Decoupled DIMMs.
func Resolve(t config.DDR3Timing, bus, dev config.FreqMHz) Resolved {
	q := dev.QuantizeCeil
	return Resolved{
		BusFreq: bus,
		DevFreq: dev,

		TRCD:   q(t.TRCD),
		TRP:    q(t.TRP),
		TCL:    q(t.TCL),
		TRAS:   q(t.TRAS),
		TRTP:   q(t.TRTP),
		TRRD:   q(t.TRRD),
		TFAW:   q(t.TFAW),
		TRFC:   q(t.TRFC),
		TXP:    q(t.TXP),
		TXPDLL: q(t.TXPDLL),

		Burst:    t.BurstTime(bus),
		DevBurst: t.BurstTime(dev),
		MC:       t.MCTime(bus),

		RefreshInterval: t.RefreshInterval(),
	}
}

// AccessKind classifies a DRAM access by row-buffer outcome; it maps
// one-to-one onto the paper's RBHC/CBMC/OBMC counters.
type AccessKind int

// Access kinds (Section 3.1 / Equation 6).
const (
	// RowHit: the row was already open (tCL only).
	RowHit AccessKind = iota
	// ClosedMiss: the bank was precharged (tRCD + tCL). Under
	// closed-page management this is the common case.
	ClosedMiss
	// OpenMiss: another row was open and must be precharged first
	// (tRP + tRCD + tCL).
	OpenMiss
)

// String names the access kind.
func (k AccessKind) String() string {
	switch k {
	case RowHit:
		return "row-hit"
	case ClosedMiss:
		return "closed-miss"
	case OpenMiss:
		return "open-miss"
	default:
		return "unknown"
	}
}

// Latency returns the device service latency for an access of kind k
// under timing r, excluding powerdown exit and queueing.
func (r *Resolved) Latency(k AccessKind) config.Time {
	switch k {
	case RowHit:
		return r.TCL
	case ClosedMiss:
		return r.TRCD + r.TCL
	case OpenMiss:
		return r.TRP + r.TRCD + r.TCL
	default:
		panic("dram: unknown access kind")
	}
}
