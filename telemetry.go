package memscale

import (
	"io"

	"memscale/internal/telemetry"
)

// Figure-ready CSV views over telemetry exports, shared by
// cmd/memscale-report and library callers. Each writes a header plus
// one row per epoch/bucket/event/run; nil exports are skipped.

// WriteResidencyCSV writes the figure7-style per-epoch timeline:
// frequency, mean CPI, mean utilization, and DRAM state-residency
// fractions per epoch.
func WriteResidencyCSV(w io.Writer, exports []*TelemetryExport) error {
	return telemetry.WriteResidencyCSV(w, exports)
}

// WriteLatencyCSV writes the read-latency histogram buckets per run.
func WriteLatencyCSV(w io.Writer, exports []*TelemetryExport) error {
	return telemetry.WriteLatencyCSV(w, exports)
}

// WriteDecisionsCSV writes the governor decision trace
// (predicted-vs-actual CPI per epoch). Runs exported without events
// contribute no rows.
func WriteDecisionsCSV(w io.Writer, exports []*TelemetryExport) error {
	return telemetry.WriteDecisionsCSV(w, exports)
}

// WriteFreqCSV writes per-run frequency residency.
func WriteFreqCSV(w io.Writer, exports []*TelemetryExport) error {
	return telemetry.WriteFreqCSV(w, exports)
}

// WriteEventsCSV writes the raw retained event trace per run.
func WriteEventsCSV(w io.Writer, exports []*TelemetryExport) error {
	return telemetry.WriteEventsCSV(w, exports)
}

// WriteTelemetrySummary writes the human-readable digest: one block
// per run plus a cross-run aggregate when several runs are loaded.
func WriteTelemetrySummary(w io.Writer, exports []*TelemetryExport) error {
	return telemetry.WriteSummary(w, exports)
}
