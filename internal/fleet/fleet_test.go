package fleet

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"memscale/internal/config"
	"memscale/internal/faults"
	"memscale/internal/policies"
	"memscale/internal/workload"
)

func testConfig(t *testing.T, workers int) Config {
	t.Helper()
	ilp, err := workload.ByName("ILP1")
	if err != nil {
		t.Fatal(err)
	}
	mid, err := workload.ByName("MID2")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := policies.ByName("MemScale")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Groups: []GroupSpec{
			{Name: "web", Nodes: 4, Mix: ilp, Spec: spec, Cores: 2, Channels: 1,
				Arrival: ArrivalSpec{Kind: ArrivalPoisson, UsersPerNode: 200, RequestsPerUserHz: 10}},
			{Name: "cache", Nodes: 2, Mix: mid, Spec: spec, Cores: 2, Channels: 1,
				Arrival: ArrivalSpec{Kind: ArrivalBursty}},
		},
		Epochs:  6,
		BudgetW: 40,
		Seed:    7,
		Workers: workers,
	}
}

// TestFleetDeterministicAcrossWorkers is the headline guarantee: same
// seed, different worker counts, bit-identical summary.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet run")
	}
	a, errA := Run(context.Background(), testConfig(t, 1))
	b, errB := Run(context.Background(), testConfig(t, 4))
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v / %v", errA, errB)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("summaries differ across worker counts:\n%s\nvs\n%s", ja, jb)
	}
	if math.Float64bits(a.SER) != math.Float64bits(b.SER) {
		t.Errorf("SER bits differ: %v vs %v", a.SER, b.SER)
	}
}

// TestFleetBudgetCapsPower checks the coordinator actually constrains
// the fleet: with a tight budget, nodes end up capped below nominal
// and the trace shows constrained nodes.
func TestFleetBudgetCapsPower(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet run")
	}
	c := testConfig(t, 0)
	c.Groups = c.Groups[1:] // MID nodes want high frequency
	c.Groups[0].Nodes = 3
	c.BudgetW = 18 // well under 3 nodes' uncapped draw
	sum, err := Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.CapTrace) == 0 {
		t.Fatal("no coordinator decisions recorded")
	}
	lowCapped := false
	for _, ns := range sum.PerNode {
		if ns.FinalCapMHz > 0 && ns.FinalCapMHz < int(config.MaxBusFreq) {
			lowCapped = true
		}
	}
	if !lowCapped {
		t.Error("tight budget never capped any node below nominal")
	}
	last := sum.CapTrace[len(sum.CapTrace)-1]
	if last.EstimatedW > c.BudgetW+1e-9 && last.DeficitW == 0 {
		t.Errorf("estimate %.2fW exceeds budget %.2fW without deficit", last.EstimatedW, c.BudgetW)
	}
}

// TestFleetUncappedMatchesGenerousBudget: with no budget the
// coordinator is off; the run still completes and reports SER < 1 for
// MemScale nodes.
func TestFleetUncapped(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet run")
	}
	c := testConfig(t, 0)
	c.BudgetW = 0
	sum, err := Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.CapTrace) != 0 {
		t.Errorf("uncapped run recorded %d cap decisions", len(sum.CapTrace))
	}
	if sum.SER <= 0 || sum.SER >= 1.2 {
		t.Errorf("fleet SER = %.3f, expected in (0, 1.2)", sum.SER)
	}
	if sum.Nodes != 6 || sum.DeadNodes != 0 {
		t.Errorf("nodes %d dead %d", sum.Nodes, sum.DeadNodes)
	}
	if len(sum.Groups) != 2 || sum.Groups[0].Rollup.Runs != 4 {
		t.Errorf("group rollups wrong: %+v", sum.Groups)
	}
}

// TestFleetDeadNodeIsolated: a node with an injected panic dies alone;
// the rest of the fleet finishes and the error names the node.
func TestFleetDeadNodeIsolated(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet run")
	}
	c := testConfig(t, 2)
	c.Groups[0].Faults = &faults.Config{PanicEnabled: true, PanicEpoch: 2}
	sum, err := Run(context.Background(), c)
	if err == nil {
		t.Fatal("expected joined node errors")
	}
	if sum.DeadNodes != c.Groups[0].Nodes {
		t.Errorf("dead nodes = %d, want %d", sum.DeadNodes, c.Groups[0].Nodes)
	}
	if alive := sum.Nodes - sum.DeadNodes; alive != c.Groups[1].Nodes {
		t.Errorf("alive = %d", alive)
	}
	if sum.SER <= 0 {
		t.Error("survivors produced no SER")
	}
}

// --- planner units ---

func obsAt(w float64, f, want config.FreqMHz) nodeObs {
	return nodeObs{alive: true, measuredW: w, measFreq: f, rho: 0.4, want: want}
}

func TestPlanCapsGenerousBudgetUncaps(t *testing.T) {
	obs := []nodeObs{obsAt(10, 800, 800), obsAt(10, 800, 800)}
	caps, step := planCaps(1, 1000, obs, nil)
	for i, cp := range caps {
		if cp != config.MaxBusFreq {
			t.Errorf("node %d capped at %v under a generous budget", i, cp)
		}
	}
	if step.Constrained != 0 || step.DeficitW != 0 {
		t.Errorf("step = %+v", step)
	}
}

func TestPlanCapsTightBudgetWaterFills(t *testing.T) {
	obs := []nodeObs{obsAt(10, 800, 800), obsAt(10, 800, 800)}
	// Budget fits both nodes only well below nominal.
	caps, step := planCaps(1, 14, obs, nil)
	if caps[0] != caps[1] {
		t.Errorf("identical nodes got different caps: %v vs %v", caps[0], caps[1])
	}
	if caps[0] >= config.MaxBusFreq {
		t.Errorf("cap %v not lowered under tight budget", caps[0])
	}
	if step.Constrained != 2 {
		t.Errorf("constrained = %d, want 2", step.Constrained)
	}
	if step.EstimatedW > 14+1e-9 {
		t.Errorf("estimate %.3f exceeds budget", step.EstimatedW)
	}
}

func TestPlanCapsPromotionsSpendLeftover(t *testing.T) {
	// Two hungry nodes, one idle node. The budget puts the uniform
	// level at 733 MHz (fleet estimate 20.095 W) and leaves ~0.505 W —
	// enough to promote exactly one hungry node back to 800 MHz
	// (incremental cost ~0.5025 W). Deterministic order promotes the
	// lower-indexed node.
	obs := []nodeObs{obsAt(10, 800, 800), obsAt(10, 800, 800), obsAt(2, 800, 200)}
	caps, step := planCaps(1, 20.6, obs, nil)
	if step.UniformMHz != 733 {
		t.Fatalf("uniform level = %d, want 733", step.UniformMHz)
	}
	if caps[0] != config.Freq800 || caps[1] != config.Freq733 {
		t.Errorf("caps = %v, want [800 733 ...]", caps)
	}
	if step.Promotions != 1 {
		t.Errorf("promotions = %d, want 1", step.Promotions)
	}
	if step.EstimatedW > 20.6+1e-9 {
		t.Errorf("estimate %.4f exceeds budget", step.EstimatedW)
	}
}

func TestPlanCapsDeficitReported(t *testing.T) {
	obs := []nodeObs{obsAt(20, 800, 800)}
	caps, step := planCaps(1, 1, obs, nil)
	if caps[0] != config.MinBusFreq {
		t.Errorf("cap = %v, want floor %v", caps[0], config.MinBusFreq)
	}
	if step.DeficitW <= 0 {
		t.Error("deficit not reported for impossible budget")
	}
}

func TestPlanCapsChurnAgainstPrev(t *testing.T) {
	obs := []nodeObs{obsAt(10, 800, 800), obsAt(10, 800, 800)}
	caps, _ := planCaps(1, 1000, obs, nil)
	_, step := planCaps(2, 1000, obs, caps)
	if step.CapChanges != 0 {
		t.Errorf("stable assignment reported %d changes", step.CapChanges)
	}
}

func TestPlanCapsDeadNodesDrawNothing(t *testing.T) {
	obs := []nodeObs{obsAt(10, 800, 800), {}}
	caps, step := planCaps(1, 12, obs, nil)
	if caps[1] != 0 {
		t.Errorf("dead node got cap %v", caps[1])
	}
	if step.MeasuredW != 10 {
		t.Errorf("measured %.1f, want 10", step.MeasuredW)
	}
}

// --- arrival units ---

func TestArrivalSteadyIsExactlyOne(t *testing.T) {
	a := ArrivalSpec{}.withDefaults(8)
	for i, m := range a.schedule(1, 0, 8, 0.005) {
		if m != 1 {
			t.Fatalf("steady epoch %d = %g", i, m)
		}
	}
}

func TestArrivalDeterministicPerNode(t *testing.T) {
	a := ArrivalSpec{Kind: ArrivalDiurnal}.withDefaults(50)
	x := a.schedule(9, 3, 50, 0.005)
	y := a.schedule(9, 3, 50, 0.005)
	z := a.schedule(9, 4, 50, 0.005)
	same, diff := true, false
	for i := range x {
		if x[i] != y[i] {
			same = false
		}
		if x[i] != z[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same (seed, node) produced different schedules")
	}
	if !diff {
		t.Error("different nodes produced identical schedules")
	}
}

func TestArrivalPoissonMeanNearOne(t *testing.T) {
	a := ArrivalSpec{Kind: ArrivalPoisson}.withDefaults(200)
	var sum float64
	sched := a.schedule(5, 0, 200, 0.005)
	for _, m := range sched {
		sum += m
		if m < minIntensity || m > maxIntensity {
			t.Fatalf("intensity %g outside clamp", m)
		}
	}
	if mean := sum / float64(len(sched)); mean < 0.9 || mean > 1.1 {
		t.Errorf("poisson mean intensity = %.3f, want ~1", mean)
	}
}

func TestArrivalBurstyExceedsNominal(t *testing.T) {
	a := ArrivalSpec{Kind: ArrivalBursty}.withDefaults(400)
	bursts := 0
	for _, m := range a.schedule(3, 1, 400, 0.005) {
		if m > 2 {
			bursts++
		}
	}
	if bursts == 0 {
		t.Error("bursty schedule never burst over 400 epochs")
	}
}

func TestArrivalValidation(t *testing.T) {
	cases := []ArrivalSpec{
		{Kind: "nope"},
		{Kind: ArrivalPoisson, UsersPerNode: math.NaN()},
		{Kind: ArrivalBursty, BurstProbability: 1.5},
		{Kind: ArrivalDiurnal, DiurnalAmplitude: 1.0},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if err := (ArrivalSpec{}).withDefaults(10).Validate(); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}
