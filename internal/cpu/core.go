// Package cpu models the in-order cores of the evaluation platform:
// one outstanding LLC miss per core (Section 3.3), so a core's runtime
// is exactly compute time plus memory time (Equation 2). Each core
// replays a deterministic synthetic access stream: it retires
// instructions at the stream's compute CPI, blocks on every read miss
// until the memory controller delivers the line, and fires writebacks
// alongside the misses without blocking.
package cpu

import (
	"memscale/internal/config"
	"memscale/internal/event"
	"memscale/internal/memctrl"
	"memscale/internal/trace"
)

// Core is one in-order core.
type Core struct {
	id     int
	cfg    *config.Config
	q      *event.Queue
	mc     *memctrl.Controller
	stream *trace.Stream

	// Compute-segment state: between computeStart and the issue of the
	// next miss, instructions retire at `rate` instructions per
	// picosecond.
	computing    bool
	computeStart config.Time
	rate         float64
	retiredBase  float64 // instructions retired before the segment

	waiting    bool
	stallStart config.Time
	stallTime  config.Time

	reads      uint64
	writebacks uint64
	started    bool

	// pending is the access drawn for the current compute segment; the
	// issue event reads it back instead of capturing it in a closure.
	pending trace.Access

	// Pre-bound callbacks, created once per core so the per-access hot
	// path (issue event, read completion) schedules without allocating.
	onIssue event.Bound
	onData  event.Handler
}

// New builds a core that replays stream through mc.
func New(id int, cfg *config.Config, q *event.Queue, mc *memctrl.Controller, stream *trace.Stream) *Core {
	c := &Core{id: id, cfg: cfg, q: q, mc: mc, stream: stream}
	c.onIssue = c.issueEvent
	c.onData = c.dataReturned
	return c
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// Stream returns the access stream the core replays.
func (c *Core) Stream() *trace.Stream { return c.stream }

// Start begins execution at now.
func (c *Core) Start(now config.Time) {
	if c.started {
		panic("cpu: core started twice")
	}
	c.started = true
	c.beginSegment(now)
}

// beginSegment draws the next access and schedules its issue after the
// compute gap.
func (c *Core) beginSegment(now config.Time) {
	acc := c.stream.Next()
	cpuPeriod := float64(c.cfg.CPUFreqMHz.Period())
	dur := config.Time(float64(acc.Gap)*acc.BaseCPI*cpuPeriod + 0.5)

	c.computing = true
	c.computeStart = now
	if dur > 0 {
		c.rate = float64(acc.Gap) / float64(dur)
	} else {
		c.rate = 0
		c.retiredBase += float64(acc.Gap)
	}

	c.pending = acc
	credit := int32(0)
	if dur > 0 {
		credit = 1
	}
	if now > c.q.Now() {
		// Future-dated inline delivery: the controller's coalesced grant
		// path (DESIGN.md §4g) calls dataReturned at grant time with the
		// transfer's end time, having elided the completion event. The
		// core state above is private until the quiesce horizon, so
		// updating it early is invisible; the issue event, though, must
		// keep the exact same-instant position the eager formulation's
		// completion fire gave it, so its scheduling is deferred to the
		// delivery instant.
		c.q.ScheduleVia(now, now+dur, c.onIssue, c, credit, 0)
	} else {
		c.q.ScheduleBound(now+dur, c.onIssue, c, credit, 0)
	}
}

// issueEvent is the bound form of issue: the access is read back from
// the core (one issue event is outstanding per core at a time).
func (c *Core) issueEvent(now config.Time, _ any, credit, _ int32) {
	c.issue(now, c.pending, credit != 0)
}

// issue sends the segment's miss (and any writeback) to memory and
// blocks the core.
func (c *Core) issue(now config.Time, acc trace.Access, credit bool) {
	if credit {
		c.retiredBase += float64(now-c.computeStart) * c.rate
	}
	c.computing = false
	c.waiting = true
	c.stallStart = now

	if acc.Writeback {
		c.writebacks++
		c.mc.Enqueue(now, acc.WBLine, true, c.id, nil)
	}
	c.reads++
	c.mc.Enqueue(now, acc.Line, false, c.id, c.onData)
}

// dataReturned unblocks the core when the memory controller delivers
// the missed line, and starts the next compute segment.
func (c *Core) dataReturned(at config.Time) {
	c.waiting = false
	c.stallTime += at - c.stallStart
	c.beginSegment(at)
}

// Instructions returns the (fractional) instructions retired by time
// now; during a compute segment it interpolates linearly, exactly as a
// hardware TIC counter sampled mid-segment would appear.
func (c *Core) Instructions(now config.Time) float64 {
	if c.computing && now > c.computeStart {
		return c.retiredBase + float64(now-c.computeStart)*c.rate
	}
	return c.retiredBase
}

// CPI returns the average cycles per instruction over [0, now].
func (c *Core) CPI(now config.Time) float64 {
	instr := c.Instructions(now)
	if instr <= 0 {
		return 0
	}
	return c.cfg.TimeToCPUCycles(now) / instr
}

// Waiting reports whether the core is blocked on a miss.
func (c *Core) Waiting() bool { return c.waiting }

// StallTime returns the cumulative time spent blocked on misses.
func (c *Core) StallTime() config.Time { return c.stallTime }

// Reads returns the number of read misses issued.
func (c *Core) Reads() uint64 { return c.reads }

// Writebacks returns the number of writebacks issued.
func (c *Core) Writebacks() uint64 { return c.writebacks }
