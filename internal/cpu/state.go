package cpu

import (
	"fmt"

	"memscale/internal/config"
	"memscale/internal/event"
	"memscale/internal/trace"
)

// CoreState is the pure-data checkpoint image of a Core: the
// compute-segment interpolation state, the stall accounting, and the
// access drawn for the current segment. The stream's own cursor is
// checkpointed separately (trace.StreamState); pending events naming
// the core are captured by the event queue's state.
type CoreState struct {
	Computing    bool        `json:"computing"`
	ComputeStart config.Time `json:"compute_start"`
	Rate         float64     `json:"rate"`
	RetiredBase  float64     `json:"retired_base"`

	Waiting    bool        `json:"waiting"`
	StallStart config.Time `json:"stall_start"`
	StallTime  config.Time `json:"stall_time"`

	Reads      uint64 `json:"reads"`
	Writebacks uint64 `json:"writebacks"`
	Started    bool   `json:"started"`

	Pending trace.Access `json:"pending"`
}

// Save captures the core's full mutable state.
func (c *Core) Save() CoreState {
	return CoreState{
		Computing:    c.computing,
		ComputeStart: c.computeStart,
		Rate:         c.rate,
		RetiredBase:  c.retiredBase,
		Waiting:      c.waiting,
		StallStart:   c.stallStart,
		StallTime:    c.stallTime,
		Reads:        c.reads,
		Writebacks:   c.writebacks,
		Started:      c.started,
		Pending:      c.pending,
	}
}

// Load replaces the core's mutable state with st.
func (c *Core) Load(st CoreState) {
	c.computing = st.Computing
	c.computeStart = st.ComputeStart
	c.rate = st.Rate
	c.retiredBase = st.RetiredBase
	c.waiting = st.Waiting
	c.stallStart = st.StallStart
	c.stallTime = st.StallTime
	c.reads = st.Reads
	c.writebacks = st.Writebacks
	c.started = st.Started
	c.pending = st.Pending
}

// OnData returns the core's pre-bound read-completion handler, for
// rebinding a checkpointed request's Done callback on restore. It is
// the identical function value the core passes to the controller on
// every read, so a restored request completes exactly as the original
// would have.
func (c *Core) OnData() event.Handler { return c.onData }

// RegisterEvents registers the cores' issue-event kind with the
// checkpoint event registry. All cores share one code pointer (the
// issue callback is a method value), so a single kind covers every
// core; the owning core is recovered from the event's env.
func RegisterEvents(reg *event.Registry, cores []*Core) {
	if len(cores) == 0 {
		return
	}
	reg.RegisterBound("cpu.issue", cores[0].onIssue,
		func(env any) (int32, error) {
			c, ok := env.(*Core)
			if !ok {
				return 0, fmt.Errorf("cpu: issue event env is %T, want *Core", env)
			}
			return int32(c.id), nil
		},
		func(owner int32) (event.Bound, any, error) {
			if owner < 0 || int(owner) >= len(cores) {
				return nil, nil, fmt.Errorf("cpu: issue event names core %d outside [0,%d)", owner, len(cores))
			}
			c := cores[owner]
			return c.onIssue, c, nil
		})
}
