// Package faults is the simulator's deterministic fault-injection
// plane. It models the hardware disturbances the paper's machinery is
// most exposed to — retention emergencies forcing extra all-bank
// refreshes, transient PLL/DLL relock failures at the memory
// controller, corruption of the profiled performance counters, and
// thermal-emergency windows that cap the selectable frequency ceiling
// — plus two run-level disturbances for hardening the execution
// pipeline: transient run aborts (retryable) and injected panics.
//
// Determinism is the load-bearing property: every decision is a pure
// function of (seed, epoch, fault class), drawn through an
// order-independent hash, so the same seed reproduces the exact same
// disturbance schedule regardless of how (or how often) the plan is
// queried, which worker ran the job, or whether earlier attempts were
// retried. Epoch plans do not depend on the attempt number; only the
// transient-abort draw does, so a retried run replays the identical
// hardware fault schedule once it gets past the abort.
//
// The package sits low in the import graph (config and trace only) so
// the simulator, the governor, and the runner can all consume it.
package faults

import (
	"errors"
	"fmt"
	"math"
	"time"

	"memscale/internal/config"
	"memscale/internal/trace"
)

// Sentinel errors, matched with errors.Is.
var (
	// ErrTransient marks a run abort injected by the fault plane. It
	// is the one retryable failure class: the runner re-attempts the
	// job, and the retry draws its abort decision independently.
	ErrTransient = errors.New("injected transient fault")

	// ErrInvalidConfig reports a fault configuration with out-of-range
	// rates or an off-ladder thermal ceiling.
	ErrInvalidConfig = errors.New("invalid fault configuration")
)

// InjectedPanic is the value an injected panic carries, so the
// runner's recovery layer (and tests) can tell a deliberate
// fault-plane panic from a genuine bug.
type InjectedPanic struct {
	Epoch int
}

// String renders the panic value.
func (p InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic at epoch %d", p.Epoch)
}

// Kind is a bitmask of fault classes. A degraded epoch carries the
// union of the classes that disturbed it.
type Kind uint8

// Fault classes.
const (
	// KindRefreshStorm: a retention emergency forced extra all-bank
	// refresh rounds during the epoch.
	KindRefreshStorm Kind = 1 << iota

	// KindRelock: a bus-frequency relock needed retries; when every
	// bounded retry failed the switch was abandoned for the epoch.
	KindRelock

	// KindCounterCorruption: the profiling window's MC counters were
	// perturbed or dropped and could not be trusted.
	KindCounterCorruption

	// KindThermal: a thermal-emergency window capped the candidate
	// frequency ceiling.
	KindThermal

	// KindTransient: the run aborted with ErrTransient.
	KindTransient

	// KindPanic: the run was killed by an injected panic.
	KindPanic
)

var kindNames = []struct {
	k    Kind
	name string
}{
	{KindRefreshStorm, "refresh_storm"},
	{KindRelock, "relock_failure"},
	{KindCounterCorruption, "counter_corruption"},
	{KindThermal, "thermal_emergency"},
	{KindTransient, "transient_abort"},
	{KindPanic, "injected_panic"},
}

// String renders the mask as a "+"-joined list of class names.
func (k Kind) String() string {
	if k == 0 {
		return "none"
	}
	out := ""
	for _, kn := range kindNames {
		if k&kn.k != 0 {
			if out != "" {
				out += "+"
			}
			out += kn.name
		}
	}
	return out
}

// Counts tallies the faults a run actually applied, per class, plus
// the epochs marked degraded because of them. It travels on the
// simulation result so callers can reconcile it against the telemetry
// event stream.
type Counts struct {
	RefreshStorms      uint64 `json:"refresh_storms,omitempty"`
	RelockFaults       uint64 `json:"relock_faults,omitempty"`
	RelockAbandoned    uint64 `json:"relock_abandoned,omitempty"`
	CounterCorruptions uint64 `json:"counter_corruptions,omitempty"`
	ThermalEpochs      uint64 `json:"thermal_epochs,omitempty"`
	TransientAborts    uint64 `json:"transient_aborts,omitempty"`
	InjectedPanics     uint64 `json:"injected_panics,omitempty"`
	DegradedEpochs     uint64 `json:"degraded_epochs,omitempty"`
}

// Total returns the number of injected fault instances. Each instance
// corresponds to exactly one telemetry fault event: a refresh storm, a
// disturbed relock (however many retries it took), a corrupted
// profile, one thermal epoch, one transient abort, or one panic.
// RelockAbandoned is a subset of RelockFaults and DegradedEpochs is a
// consequence, so neither contributes separately.
func (c Counts) Total() uint64 {
	return c.RefreshStorms + c.RelockFaults + c.CounterCorruptions +
		c.ThermalEpochs + c.TransientAborts + c.InjectedPanics
}

// Add accumulates o into c.
func (c *Counts) Add(o Counts) {
	c.RefreshStorms += o.RefreshStorms
	c.RelockFaults += o.RelockFaults
	c.RelockAbandoned += o.RelockAbandoned
	c.CounterCorruptions += o.CounterCorruptions
	c.ThermalEpochs += o.ThermalEpochs
	c.TransientAborts += o.TransientAborts
	c.InjectedPanics += o.InjectedPanics
	c.DegradedEpochs += o.DegradedEpochs
}

// Map returns the non-zero counts keyed by stable wire names, or nil
// when nothing was injected.
func (c Counts) Map() map[string]uint64 {
	out := map[string]uint64{}
	put := func(name string, n uint64) {
		if n > 0 {
			out[name] = n
		}
	}
	put("refresh_storm", c.RefreshStorms)
	put("relock_failure", c.RelockFaults)
	put("relock_abandoned", c.RelockAbandoned)
	put("counter_corruption", c.CounterCorruptions)
	put("thermal_emergency", c.ThermalEpochs)
	put("transient_abort", c.TransientAborts)
	put("injected_panic", c.InjectedPanics)
	put("degraded_epochs", c.DegradedEpochs)
	if len(out) == 0 {
		return nil
	}
	return out
}

// Config describes the disturbance schedule of one run. Rates are
// per-epoch (or per-attempt for TransientAbortRate) probabilities in
// [0, 1]; zero disables the class. The zero Config injects nothing.
type Config struct {
	// Seed selects the deterministic schedule. Two runs with equal
	// Config produce identical fault sequences.
	Seed uint64

	// RefreshStormRate is the per-epoch probability of a retention
	// emergency; RefreshStormBursts extra all-bank refresh rounds are
	// issued back to back when one fires (default 2).
	RefreshStormRate   float64
	RefreshStormBursts int

	// RelockFailRate is the probability each PLL/DLL relock attempt
	// fails. Failed attempts are retried with exponential backoff up
	// to RelockMaxRetries (default 3) extra attempts; if every attempt
	// fails the switch is abandoned for the epoch and the bus stays at
	// its old frequency. RelockBackoff is the base backoff inserted
	// between attempts (default 100 ns), doubling per retry.
	RelockFailRate   float64
	RelockMaxRetries int
	RelockBackoff    config.Time

	// CounterCorruptRate is the per-epoch probability the profiling
	// window's MC counters are corrupted. The governor re-profiles; if
	// the re-profile draw is corrupted too, it falls back to the
	// maximum allowed frequency for the epoch.
	CounterCorruptRate float64

	// ThermalRate is the per-epoch probability a thermal-emergency
	// window opens; while one is active (ThermalWindowEpochs epochs,
	// default 2) the candidate frequency ceiling is capped at
	// ThermalCeiling (default 400 MHz, must be on the ladder).
	ThermalRate         float64
	ThermalCeiling      config.FreqMHz
	ThermalWindowEpochs int

	// TransientAbortRate is the per-attempt probability the run aborts
	// with ErrTransient at its first epoch boundary. Aborted attempts
	// are retried up to MaxRunRetries times (default 2).
	TransientAbortRate float64
	MaxRunRetries      int

	// PanicEpoch, when PanicEnabled, panics the run deliberately at
	// that epoch index — the hook pipeline-hardening tests use to
	// prove one job's death cannot take down a sweep.
	PanicEnabled bool
	PanicEpoch   int

	// Fleet-scope classes (see fleet.go). These disturb node execution
	// inside a fleet rather than the simulated hardware, and are only
	// consumed through FleetInjector — the per-run Injector ignores
	// them.

	// NodeCrashRate is the per-(epoch, attempt) probability a node
	// crashes mid-epoch and must be restarted from its last checkpoint.
	NodeCrashRate float64

	// StragglerRate is the per-(epoch, attempt) probability a node
	// stalls in host time by StragglerDelay (default 20 ms); simulated
	// results are unaffected, but a tight watchdog will fire.
	StragglerRate  float64
	StragglerDelay time.Duration

	// CheckpointCorruptRate is the per-(epoch, attempt) probability a
	// periodic recovery checkpoint is corrupted as it is written.
	CheckpointCorruptRate float64

	// NodeLossRate is the per-epoch probability a coordinator-visible
	// loss window opens; while one is active (NodeLossEpochs epochs,
	// default 3) the coordinator treats the node as gone and
	// re-water-fills its budget share, even though the node itself
	// keeps running.
	NodeLossRate   float64
	NodeLossEpochs int
}

// Default fallbacks for zero Config fields.
const (
	DefaultRefreshStormBursts  = 2
	DefaultRelockMaxRetries    = 3
	DefaultRelockBackoff       = 100 * config.Nanosecond
	DefaultThermalCeiling      = config.Freq400
	DefaultThermalWindowEpochs = 2
	DefaultMaxRunRetries       = 2
)

// WithDefaults fills the documented defaults into zero fields.
func (c Config) WithDefaults() Config {
	if c.RefreshStormBursts == 0 {
		c.RefreshStormBursts = DefaultRefreshStormBursts
	}
	if c.RelockMaxRetries == 0 {
		c.RelockMaxRetries = DefaultRelockMaxRetries
	}
	if c.RelockBackoff == 0 {
		c.RelockBackoff = DefaultRelockBackoff
	}
	if c.ThermalCeiling == 0 {
		c.ThermalCeiling = DefaultThermalCeiling
	}
	if c.ThermalWindowEpochs == 0 {
		c.ThermalWindowEpochs = DefaultThermalWindowEpochs
	}
	if c.MaxRunRetries == 0 {
		c.MaxRunRetries = DefaultMaxRunRetries
	}
	if c.StragglerDelay == 0 {
		c.StragglerDelay = DefaultStragglerDelay
	}
	if c.NodeLossEpochs == 0 {
		c.NodeLossEpochs = DefaultNodeLossEpochs
	}
	return c
}

// rate validates one probability field.
func rate(name string, v float64) error {
	if math.IsNaN(v) || v < 0 || v > 1 {
		return fmt.Errorf("%w: %s must be in [0, 1], got %g", ErrInvalidConfig, name, v)
	}
	return nil
}

// Validate rejects degenerate fault configurations. Zero values are
// allowed everywhere (they select defaults or disable a class).
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"RefreshStormRate", c.RefreshStormRate},
		{"RelockFailRate", c.RelockFailRate},
		{"CounterCorruptRate", c.CounterCorruptRate},
		{"ThermalRate", c.ThermalRate},
		{"TransientAbortRate", c.TransientAbortRate},
		{"NodeCrashRate", c.NodeCrashRate},
		{"StragglerRate", c.StragglerRate},
		{"CheckpointCorruptRate", c.CheckpointCorruptRate},
		{"NodeLossRate", c.NodeLossRate},
	} {
		if err := rate(r.name, r.v); err != nil {
			return err
		}
	}
	switch {
	case c.RefreshStormBursts < 0:
		return fmt.Errorf("%w: RefreshStormBursts must be >= 0, got %d", ErrInvalidConfig, c.RefreshStormBursts)
	case c.RelockMaxRetries < 0:
		return fmt.Errorf("%w: RelockMaxRetries must be >= 0, got %d", ErrInvalidConfig, c.RelockMaxRetries)
	case c.RelockBackoff < 0:
		return fmt.Errorf("%w: RelockBackoff must be >= 0, got %v", ErrInvalidConfig, c.RelockBackoff)
	case c.ThermalCeiling != 0 && !config.ValidBusFrequency(c.ThermalCeiling):
		return fmt.Errorf("%w: ThermalCeiling %v is not on the frequency ladder", ErrInvalidConfig, c.ThermalCeiling)
	case c.ThermalWindowEpochs < 0:
		return fmt.Errorf("%w: ThermalWindowEpochs must be >= 0, got %d", ErrInvalidConfig, c.ThermalWindowEpochs)
	case c.MaxRunRetries < 0:
		return fmt.Errorf("%w: MaxRunRetries must be >= 0, got %d", ErrInvalidConfig, c.MaxRunRetries)
	case c.PanicEnabled && c.PanicEpoch < 0:
		return fmt.Errorf("%w: PanicEpoch must be >= 0, got %d", ErrInvalidConfig, c.PanicEpoch)
	case c.StragglerDelay < 0:
		return fmt.Errorf("%w: StragglerDelay must be >= 0, got %v", ErrInvalidConfig, c.StragglerDelay)
	case c.NodeLossEpochs < 0:
		return fmt.Errorf("%w: NodeLossEpochs must be >= 0, got %d", ErrInvalidConfig, c.NodeLossEpochs)
	}
	return nil
}

// Enabled reports whether any fault class can fire.
func (c Config) Enabled() bool {
	return c.RefreshStormRate > 0 || c.RelockFailRate > 0 ||
		c.CounterCorruptRate > 0 || c.ThermalRate > 0 ||
		c.TransientAbortRate > 0 || c.PanicEnabled
}

// Plan is the disturbance schedule of one epoch, fully determined by
// (seed, epoch) — querying it twice, in any order, yields identical
// plans. Fields describe what the fault plane wants to inject; the
// simulator applies (and counts) only the ones that are meaningful for
// the run, e.g. relock failures only disturb epochs where the governor
// actually changes frequency.
type Plan struct {
	// Storm: issue StormBursts extra all-bank refresh rounds.
	Storm       bool
	StormBursts int

	// CorruptProfile: the profiling window's counters are untrusted;
	// CorruptReprofile: the re-profile is corrupted too, so no trusted
	// profile exists this epoch.
	CorruptProfile   bool
	CorruptReprofile bool

	// RelockFailures is how many relock attempts fail before one
	// succeeds this epoch (0 = clean relock); RelockAbandoned means
	// every bounded retry failed and the switch must be abandoned.
	RelockFailures  int
	RelockAbandoned bool

	// ThermalCeiling caps the candidate frequency ladder when a
	// thermal window covers this epoch; zero means no cap.
	ThermalCeiling config.FreqMHz

	// Panic: die deliberately at this epoch's start.
	Panic bool

	// Abort: fail the attempt with ErrTransient at this epoch's start.
	Abort bool
}

// Injector produces deterministic fault plans for one run attempt.
// A nil *Injector is the disabled state: EpochPlan returns the zero
// Plan. The injector is stateless beyond its configuration, so it is
// safe to share across goroutines (the simulator nevertheless owns one
// per run).
type Injector struct {
	cfg     Config
	attempt int
}

// Draw salts, one per independent decision stream.
const (
	saltStorm uint64 = iota + 1
	saltCorrupt
	saltReprofile
	saltRelock // + attempt index
	saltThermal
	saltTransient
)

// New builds an injector for one run attempt. The attempt index feeds
// only the transient-abort draw: hardware fault schedules are
// attempt-independent, so a retried run replays the same disturbances.
func New(c Config, attempt int) (*Injector, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if attempt < 0 {
		attempt = 0
	}
	return &Injector{cfg: c.WithDefaults(), attempt: attempt}, nil
}

// Config returns the injector's defaulted configuration. Safe on nil
// (returns the zero Config).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// draw returns a uniform [0,1) value for (seed, salt, index),
// independent of call order.
func (in *Injector) draw(salt, index uint64) float64 {
	const mix1 = 0x9e3779b97f4a7c15
	const mix2 = 0xd1b54a32d192ed03
	state := in.cfg.Seed ^ (salt+1)*mix1 ^ (index+1)*mix2
	return trace.NewRNG(state).Float64()
}

// EpochPlan returns the disturbance schedule of one epoch. Safe on
// nil (returns the zero Plan).
func (in *Injector) EpochPlan(epoch int) Plan {
	if in == nil || epoch < 0 {
		return Plan{}
	}
	c := in.cfg
	e := uint64(epoch)
	var p Plan

	if c.PanicEnabled && epoch == c.PanicEpoch {
		p.Panic = true
	}
	if c.TransientAbortRate > 0 && epoch == 0 &&
		in.draw(saltTransient, uint64(in.attempt)) < c.TransientAbortRate {
		p.Abort = true
	}
	if c.RefreshStormRate > 0 && in.draw(saltStorm, e) < c.RefreshStormRate {
		p.Storm = true
		p.StormBursts = c.RefreshStormBursts
	}
	if c.CounterCorruptRate > 0 && in.draw(saltCorrupt, e) < c.CounterCorruptRate {
		p.CorruptProfile = true
		p.CorruptReprofile = in.draw(saltReprofile, e) < c.CounterCorruptRate
	}
	if c.RelockFailRate > 0 {
		// Attempt 0 plus up to RelockMaxRetries retries; each attempt
		// draws independently so the failure streak length is
		// geometric, bounded by abandonment.
		attempts := 1 + c.RelockMaxRetries
		for a := 0; a < attempts; a++ {
			if in.draw(saltRelock+uint64(a)*7, e) >= c.RelockFailRate {
				break
			}
			p.RelockFailures++
		}
		p.RelockAbandoned = p.RelockFailures == attempts
	}
	if c.ThermalRate > 0 {
		// A window opened at epoch w covers [w, w+ThermalWindowEpochs).
		// Checking the last ThermalWindowEpochs draws keeps the plan a
		// pure function of (seed, epoch) with no mutable window state.
		for w := epoch; w > epoch-c.ThermalWindowEpochs && w >= 0; w-- {
			if in.draw(saltThermal, uint64(w)) < c.ThermalRate {
				p.ThermalCeiling = c.ThermalCeiling
				break
			}
		}
	}
	return p
}

// RelockStall converts one epoch's relock failure count into the
// total halt the channels absorb: each failed attempt costs the full
// relock penalty plus an exponentially growing backoff, and a
// successful final attempt costs one more penalty. An abandoned relock
// stalls for the failed attempts only — the old frequency stays.
func (in *Injector) RelockStall(penalty config.Time, failures int, abandoned bool) config.Time {
	if in == nil || failures <= 0 {
		if abandoned {
			return 0
		}
		return penalty
	}
	stall := config.Time(0)
	backoff := in.cfg.RelockBackoff
	for i := 0; i < failures; i++ {
		stall += penalty + backoff
		backoff *= 2
	}
	if !abandoned {
		stall += penalty
	}
	return stall
}
