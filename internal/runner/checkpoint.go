package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"memscale/internal/checkpoint"
	"memscale/internal/config"
	"memscale/internal/faults"
	"memscale/internal/invariant"
	"memscale/internal/policies"
	"memscale/internal/sim"
	"memscale/internal/telemetry"
	"memscale/internal/workload"
)

// This file is the engine's checkpoint plane: warm-start forking for
// sweeps that share a simulation prefix, and checkpoint/resume for
// long-horizon runs that must survive interruption.

// ErrInterrupted reports a checkpoint-driven run stopped early through
// Job.Interrupt after capturing its state at the epoch boundary it
// halted on. Matched with errors.Is (it wraps the checkpoint plane's
// shared checkpoint.ErrInterrupted sentinel).
var ErrInterrupted = fmt.Errorf("runner: %w", checkpoint.ErrInterrupted)

// jobConfig derives the two configurations a job runs under: base is
// the configuration the unmanaged baseline pairs against (machine
// shape, gamma, and Mutate applied), cfg adds the policy's Configure
// hook on top. Keeping both matters for checkpointing — a resume must
// calibrate its baseline from base, not cfg, to reproduce the cold
// run's pairing exactly.
func jobConfig(job Job) (cfg, base config.Config) {
	cfg = config.Default()
	if job.Gamma > 0 {
		cfg.Policy.Gamma = job.Gamma
	}
	if job.Cores > 0 {
		cfg.Cores = job.Cores
	}
	if job.Channels > 0 {
		cfg.Channels = job.Channels
	}
	if job.Mutate != nil {
		job.Mutate(&cfg)
	}
	base = cfg
	if job.Spec.Configure != nil {
		job.Spec.Configure(&cfg)
	}
	return cfg, base
}

// WarmPrefix simulates prefixEpochs of an unmanaged (governor-free,
// fault-free, uninstrumented) run of mix under cfg and returns the
// snapshot at the epoch boundary. The snapshot may be forked into any
// number of variant runs: sim.Restore copies every slice and map, so
// parallel forks from one shared snapshot never race.
//
// shards requests the sharded event engine for the prefix simulation;
// the snapshot is the canonical serial image regardless of the count,
// so forks taken from a sharded prefix are bit-identical to forks
// taken from a serial one.
func (e *Engine) WarmPrefix(ctx context.Context, cfg config.Config, mix workload.Mix, prefixEpochs, shards int) (st *sim.SystemState, err error) {
	defer func() {
		if r := recover(); r != nil {
			st, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()

	if prefixEpochs <= 0 {
		return nil, fmt.Errorf("runner: warm-start prefix epochs must be positive, got %d", prefixEpochs)
	}
	streams, err := mix.Streams(&cfg)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(cfg, streams, sim.Options{Shards: shards})
	if err != nil {
		return nil, err
	}
	for i := 0; i < prefixEpochs; i++ {
		if _, err := s.StepEpoch(ctx); err != nil {
			return nil, err
		}
	}
	return s.Save()
}

// warmKey groups jobs that can legitimately share one warm-up prefix:
// same mix, same prefix length, same post-Configure configuration with
// gamma zeroed out (gamma steers only the governor, which the
// unmanaged prefix does not run, so gamma-only variants share a
// prefix — the common sweep shape).
func warmKey(job Job, prefixEpochs int) string {
	cfg, _ := jobConfig(job)
	cfg.Policy.Gamma = 0
	return fmt.Sprintf("%s|%d|%+v", job.Mix.Name, prefixEpochs, cfg)
}

// RunEachWarm is RunEach with warm-start forking: jobs sharing a warm
// key simulate their first prefixEpochs once, then every job forks
// from the shared snapshot and runs its remaining epochs under its own
// governor. Results are indexed like jobs, exactly as RunEach.
//
// Warm-started outcomes are an approximation in the gem5
// fast-forwarding tradition: the managed run's governor only steers
// the post-prefix epochs, so the result is not bit-identical to a cold
// managed run of the same job (use RunWithCheckpoint/Resume when exact
// equivalence is required). The baseline pairing is unaffected — it is
// still the memoized cold unmanaged run of the full length.
func (e *Engine) RunEachWarm(ctx context.Context, jobs []Job, prefixEpochs int) ([]Outcome, []error) {
	if prefixEpochs <= 0 {
		return e.RunEach(ctx, jobs)
	}

	// Group jobs by warm key, keeping the first-seen order deterministic.
	type group struct {
		job  Job // representative: supplies cfg and mix for the prefix
		jobs []int
	}
	groups := map[string]*group{}
	var order []string
	preErr := make([]error, len(jobs))
	for i, job := range jobs {
		if job.Epochs <= prefixEpochs {
			preErr[i] = fmt.Errorf("runner: job epochs (%d) must exceed warm-start prefix epochs (%d)", job.Epochs, prefixEpochs)
			continue
		}
		if job.Warm != nil {
			preErr[i] = errors.New("runner: warm-start job already carries a snapshot")
			continue
		}
		key := warmKey(job, prefixEpochs)
		g := groups[key]
		if g == nil {
			g = &group{job: job}
			groups[key] = g
			order = append(order, key)
		}
		g.jobs = append(g.jobs, i)
	}

	// Phase 1: one unmanaged prefix per group, in parallel.
	snaps := make([]*sim.SystemState, len(order))
	snapErrs := ForEach(ctx, e.workers, len(order), func(ctx context.Context, gi int) error {
		g := groups[order[gi]]
		cfg, _ := jobConfig(g.job)
		snap, err := e.WarmPrefix(ctx, cfg, g.job.Mix, prefixEpochs, g.job.Shards)
		snaps[gi] = snap
		return err
	}, nil)

	warmed := make([]Job, len(jobs))
	copy(warmed, jobs)
	for gi, key := range order {
		g := groups[key]
		for _, i := range g.jobs {
			if snapErrs[gi] != nil {
				preErr[i] = fmt.Errorf("runner: warm-start prefix: %w", snapErrs[gi])
				continue
			}
			warmed[i].Warm = snaps[gi]
		}
	}

	// Phase 2: every job forks from its snapshot (or reports its
	// validation/prefix error) on the same worker pool.
	outs := make([]Outcome, len(jobs))
	var onDone func(done, i int, err error)
	if e.onResult != nil {
		onDone = func(done, i int, err error) {
			e.onResult(Progress{
				Done: done, Total: len(jobs), Index: i,
				Job: jobs[i], Outcome: outs[i], Err: err,
			})
		}
	}
	errs := ForEach(ctx, e.workers, len(jobs), func(ctx context.Context, i int) error {
		if preErr[i] != nil {
			return preErr[i]
		}
		var err error
		outs[i], err = e.Run(ctx, warmed[i])
		return err
	}, onDone)
	return outs, errs
}

// RunWithCheckpoint is Run with a mid-flight snapshot: the managed run
// executes epoch by epoch, captures its full state after ckEpoch
// epochs, and continues to job.Epochs. The returned checkpoint carries
// everything Resume needs — meta identifying the run, both
// configurations, and the state image — and the outcome is
// bit-identical to a plain Run of the same job (StepEpoch-driven runs
// reproduce RunFor's event sequence exactly).
func (e *Engine) RunWithCheckpoint(ctx context.Context, job Job, ckEpoch int) (out Outcome, ck *checkpoint.Checkpoint, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, ck, err = Outcome{}, nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()

	if err := ctx.Err(); err != nil {
		return Outcome{}, nil, err
	}
	if job.Epochs <= 0 {
		return Outcome{}, nil, fmt.Errorf("runner: job epochs must be positive, got %d", job.Epochs)
	}
	if ckEpoch <= 0 || ckEpoch > job.Epochs {
		return Outcome{}, nil, fmt.Errorf("runner: checkpoint epoch %d outside run length [1,%d]", ckEpoch, job.Epochs)
	}
	if job.Warm != nil {
		return Outcome{}, nil, errors.New("runner: checkpointing a warm-started job is not supported")
	}
	retries := 0
	if job.Faults != nil {
		if err := job.Faults.Validate(); err != nil {
			return Outcome{}, nil, fmt.Errorf("runner: %w", err)
		}
		retries = job.Faults.WithDefaults().MaxRunRetries
	}

	cfg, baseCfg := jobConfig(job)
	base, nonMem, err := e.cache.Baseline(ctx, baseCfg, job.Mix, job.Epochs, job.Shards)
	if err != nil {
		return Outcome{}, nil, err
	}

	var aborts uint64
	for attempt := 0; ; attempt++ {
		out, snap, snapEpochs, err := e.runCheckpointAttempt(ctx, job, cfg, nonMem, attempt, ckEpoch)
		if err == nil || errors.Is(err, ErrInterrupted) {
			ck := &checkpoint.Checkpoint{
				Meta: checkpoint.Meta{
					Mix:     job.Mix.Name,
					Policy:  job.Spec.Name,
					Gamma:   cfg.Policy.Gamma,
					NonMem:  nonMem,
					Epochs:  snapEpochs,
					Faults:  job.Faults,
					Attempt: attempt,
				},
				Config: cfg,
				Base:   baseCfg,
				State:  snap,
			}
			if err != nil {
				// Interrupted: the checkpoint carries the boundary the
				// run stopped on; there is no finished outcome to pair.
				return Outcome{}, ck, err
			}
			out.Mix, out.Policy = job.Mix, job.Spec.Name
			out.NonMem, out.Base = nonMem, base
			out.Attempts = attempt + 1
			out.Res.Faults.TransientAborts += aborts
			return out, ck, nil
		}
		if !errors.Is(err, faults.ErrTransient) || attempt >= retries || ctx.Err() != nil {
			return Outcome{}, nil, err
		}
		aborts++
	}
}

// runCheckpointAttempt is runAttempt driven through StepEpoch so the
// state can be captured at the ckEpoch boundary mid-run (or, when
// Job.Interrupt fires, at whatever epoch boundary the run stopped on —
// reported through the returned completed-epoch count alongside
// ErrInterrupted).
func (e *Engine) runCheckpointAttempt(ctx context.Context, job Job, cfg config.Config, nonMem float64, attempt, ckEpoch int) (Outcome, *sim.SystemState, int, error) {
	timeout := job.Timeout
	if timeout <= 0 {
		timeout = e.jobTimeout
	}
	parent := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	var inj *faults.Injector
	if job.Faults != nil {
		var err error
		if inj, err = faults.New(*job.Faults, attempt); err != nil {
			return Outcome{}, nil, 0, fmt.Errorf("runner: %w", err)
		}
	}
	streams, err := job.Mix.Streams(&cfg)
	if err != nil {
		return Outcome{}, nil, 0, err
	}
	var gov sim.Governor
	if job.Spec.Governor != nil {
		gov = job.Spec.Governor(&cfg, nonMem)
	}
	var rec *telemetry.Recorder
	if job.Telemetry != nil {
		rec = telemetry.NewRecorder(*job.Telemetry)
		rec.NonMemPowerW.Set(nonMem)
		rec.GammaBound.Set(cfg.Policy.Gamma)
	}
	s, err := sim.New(cfg, streams, sim.Options{
		Governor:         gov,
		NonMemPower:      nonMem,
		KeepTimeline:     job.Timeline,
		Telemetry:        rec,
		Faults:           inj,
		Shards:           job.Shards,
		ShardGranularity: job.ShardGranularity,
	})
	if err != nil {
		return Outcome{}, nil, 0, err
	}

	target := config.Time(job.Epochs) * cfg.Policy.EpochLength
	// Mirror the sim's MaxDuration safety net (Options.MaxDuration
	// defaults to 2 s in sim.New) so the epoch loop stops exactly where
	// RunForContext would.
	maxDur := 2 * config.Second
	var snap *sim.SystemState
	for {
		rec, err := s.StepEpoch(ctx)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil {
				return Outcome{}, nil, 0, fmt.Errorf("runner: job exceeded %v watchdog: %w", timeout, ErrJobTimeout)
			}
			return Outcome{}, nil, 0, err
		}
		if rec.Index+1 == ckEpoch {
			if snap, err = s.Save(); err != nil {
				return Outcome{}, nil, 0, fmt.Errorf("runner: checkpoint save: %w", err)
			}
		}
		if rec.End >= target || rec.End >= maxDur {
			break
		}
		// Soft stop: finish the epoch just stepped, capture the state at
		// this boundary, and hand it back as the final checkpoint.
		select {
		case <-job.Interrupt:
			snap, err = s.Save()
			if err != nil {
				return Outcome{}, nil, 0, fmt.Errorf("runner: interrupt checkpoint save: %w", err)
			}
			return Outcome{}, snap, rec.Index + 1, ErrInterrupted
		default:
		}
	}
	res := s.Finalize()
	if snap == nil {
		return Outcome{}, nil, 0, fmt.Errorf("runner: run ended before checkpoint epoch %d", ckEpoch)
	}

	out := Outcome{Res: res, Shards: s.ParallelShards()}
	if rec != nil {
		apps := make([]string, cfg.Cores)
		for i := range apps {
			apps[i] = job.Mix.Assignment(i)
		}
		freqSeconds := make(map[int]float64, len(res.FreqTime))
		for f, t := range res.FreqTime {
			freqSeconds[int(f)] = t.Seconds()
		}
		out.Telemetry = rec.Export(telemetry.RunMeta{
			Mix:          job.Mix.Name,
			Policy:       job.Spec.Name,
			Gamma:        cfg.Policy.Gamma,
			Cores:        cfg.Cores,
			Channels:     cfg.Channels,
			CoreApps:     apps,
			NonMemPowerW: nonMem,
		}, freqSeconds)
		if err := rec.SinkErr(); err != nil {
			return Outcome{}, nil, 0, fmt.Errorf("runner: telemetry sink: %w", err)
		}
	}
	return out, snap, ckEpoch, nil
}

// ResumeJob describes how to continue a checkpointed run.
type ResumeJob struct {
	// Checkpoint is the decoded container to resume from.
	Checkpoint *checkpoint.Checkpoint

	// Epochs is the total run length in OS quanta (including the
	// epochs already completed at the snapshot); it must exceed the
	// checkpoint's completed epoch count.
	Epochs int

	// Timeline, Telemetry, and Timeout mirror the Job fields: they
	// instrument the resumed portion and bound its host wall-clock
	// time.
	Timeline  bool
	Telemetry *telemetry.Options
	Timeout   time.Duration

	// Shards mirrors Job.Shards for the resumed portion. A checkpoint
	// written under any shard count restores under any other: the saved
	// event state is the canonical serial image either way.
	Shards int
}

// Resume continues a checkpointed run to rj.Epochs total epochs and
// pairs it against the cold unmanaged baseline of the full length,
// exactly as the original run would have been. A resumed run's result
// is bit-identical to the uninterrupted run of the same job (same
// governor, same configuration, same fault schedule) — the crash
// recovery counterpart to the fault plane's panic isolation.
//
// One caveat mirrors cold-run retry semantics: a transient fault
// aborting the resumed portion retries from the checkpoint (not from
// epoch zero) under the next attempt's schedule, so a resume that
// aborts is not bit-identical to a cold run that aborts.
func (e *Engine) Resume(ctx context.Context, rj ResumeJob) (out Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = Outcome{}, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()

	if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}
	ck := rj.Checkpoint
	if ck == nil || ck.State == nil {
		return Outcome{}, errors.New("runner: resume requires a checkpoint with state")
	}
	if rj.Epochs <= ck.Meta.Epochs {
		return Outcome{}, fmt.Errorf("runner: resume epochs (%d) must exceed the checkpoint's completed %d", rj.Epochs, ck.Meta.Epochs)
	}
	// Invariant: the container's meta and state image must agree on how
	// many epochs the snapshot covers — a mismatch means a hand-edited
	// or miswritten container, and resuming it would silently shift the
	// schedule.
	if err := invariant.Check("resume_epoch", ck.State.EpochIdx == ck.Meta.Epochs,
		"checkpoint meta records %d completed epochs but the state image is at epoch %d",
		ck.Meta.Epochs, ck.State.EpochIdx); err != nil {
		return Outcome{}, fmt.Errorf("runner: %w", err)
	}
	mix, err := workload.ByName(ck.Meta.Mix)
	if err != nil {
		return Outcome{}, fmt.Errorf("runner: resume: %w", err)
	}
	var spec policies.Spec
	if ck.Meta.Policy != "" {
		if spec, err = policies.ByName(ck.Meta.Policy); err != nil {
			return Outcome{}, fmt.Errorf("runner: resume: %w", err)
		}
	}
	retries := 0
	if ck.Meta.Faults != nil {
		if err := ck.Meta.Faults.Validate(); err != nil {
			return Outcome{}, fmt.Errorf("runner: %w", err)
		}
		retries = ck.Meta.Faults.WithDefaults().MaxRunRetries
	}

	base, nonMem, err := e.cache.Baseline(ctx, ck.Base, mix, rj.Epochs, rj.Shards)
	if err != nil {
		return Outcome{}, err
	}

	var aborts uint64
	first := ck.Meta.Attempt
	for attempt := first; ; attempt++ {
		out, err := e.resumeAttempt(ctx, rj, spec, mix, attempt)
		if err == nil {
			out.Mix, out.Policy = mix, ck.Meta.Policy
			out.NonMem, out.Base = nonMem, base
			out.Attempts = attempt - first + 1
			out.Res.Faults.TransientAborts += aborts
			return out, nil
		}
		if !errors.Is(err, faults.ErrTransient) || attempt-first >= retries || ctx.Err() != nil {
			return Outcome{}, err
		}
		aborts++
	}
}

// resumeAttempt restores one attempt from the checkpoint and runs it
// to rj.Epochs total. The governor is rebuilt through the spec's
// constructor with the checkpoint's calibrated non-memory power —
// matching how the original run built it — and then loaded with the
// saved governor state by sim.Restore.
func (e *Engine) resumeAttempt(ctx context.Context, rj ResumeJob, spec policies.Spec, mix workload.Mix, attempt int) (Outcome, error) {
	ck := rj.Checkpoint
	timeout := rj.Timeout
	if timeout <= 0 {
		timeout = e.jobTimeout
	}
	parent := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	var inj *faults.Injector
	if ck.Meta.Faults != nil {
		var err error
		if inj, err = faults.New(*ck.Meta.Faults, attempt); err != nil {
			return Outcome{}, fmt.Errorf("runner: %w", err)
		}
	}
	// ck.Config is already post-Configure; the spec's Configure hook
	// must not run again.
	cfg := ck.Config
	streams, err := mix.Streams(&cfg)
	if err != nil {
		return Outcome{}, err
	}
	var gov sim.Governor
	if spec.Governor != nil {
		gov = spec.Governor(&cfg, ck.Meta.NonMem)
	}
	var rec *telemetry.Recorder
	if rj.Telemetry != nil {
		rec = telemetry.NewRecorder(*rj.Telemetry)
		rec.NonMemPowerW.Set(ck.Meta.NonMem)
		rec.GammaBound.Set(cfg.Policy.Gamma)
	}
	s, err := sim.Restore(cfg, streams, sim.Options{
		Governor:     gov,
		NonMemPower:  ck.Meta.NonMem,
		KeepTimeline: rj.Timeline,
		Telemetry:    rec,
		Faults:       inj,
		Shards:       rj.Shards,
	}, ck.State)
	if err != nil {
		return Outcome{}, err
	}
	res, err := s.RunForContext(ctx, config.Time(rj.Epochs)*cfg.Policy.EpochLength)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil {
			return Outcome{}, fmt.Errorf("runner: job exceeded %v watchdog: %w", timeout, ErrJobTimeout)
		}
		return Outcome{}, err
	}
	out := Outcome{Res: res, Shards: s.ParallelShards()}
	if rec != nil {
		apps := make([]string, cfg.Cores)
		for i := range apps {
			apps[i] = mix.Assignment(i)
		}
		freqSeconds := make(map[int]float64, len(res.FreqTime))
		for f, t := range res.FreqTime {
			freqSeconds[int(f)] = t.Seconds()
		}
		out.Telemetry = rec.Export(telemetry.RunMeta{
			Mix:          mix.Name,
			Policy:       ck.Meta.Policy,
			Gamma:        cfg.Policy.Gamma,
			Cores:        cfg.Cores,
			Channels:     cfg.Channels,
			CoreApps:     apps,
			NonMemPowerW: ck.Meta.NonMem,
		}, freqSeconds)
		if err := rec.SinkErr(); err != nil {
			return Outcome{}, fmt.Errorf("runner: telemetry sink: %w", err)
		}
	}
	return out, nil
}

// WarmGroups reports how many distinct warm-up prefixes a job set
// would simulate under RunEachWarm — the sweep-planning counterpart to
// BaselineCache.Stats.
func WarmGroups(jobs []Job, prefixEpochs int) int {
	keys := map[string]struct{}{}
	for _, job := range jobs {
		if job.Epochs > prefixEpochs {
			keys[warmKey(job, prefixEpochs)] = struct{}{}
		}
	}
	return len(keys)
}
