// Command memscale-trace inspects the synthetic workload generators:
// it expands a mix (or a single application) into its access stream
// and reports the realized RPKI/WPKI, row locality, and bank/channel
// spread — or dumps raw accesses for external tools.
//
// Usage:
//
//	memscale-trace -mix MEM1 [-instructions 10000000]
//	memscale-trace -app swim -dump 20
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"memscale/internal/config"
	"memscale/internal/trace"
	"memscale/internal/workload"
)

func main() {
	mixName := flag.String("mix", "", "mix to expand (all 16 cores)")
	appName := flag.String("app", "", "single application to expand instead of a mix")
	instructions := flag.Uint64("instructions", 10_000_000, "instructions per core to generate")
	dump := flag.Int("dump", 0, "print the first N accesses instead of statistics")
	seed := flag.Uint64("seed", 1, "stream seed (single-app mode)")
	flag.Parse()

	cfg := config.Default()
	mapper := config.NewAddressMapper(&cfg)

	switch {
	case *appName != "":
		p, err := workload.App(*appName)
		if err != nil {
			fail(err)
		}
		s, err := trace.NewStream(p, mapper, *seed)
		if err != nil {
			fail(err)
		}
		if *dump > 0 {
			dumpAccesses(s, mapper, *dump)
			return
		}
		describe(*appName, []*trace.Stream{s}, *instructions, mapper)
	case *mixName != "":
		mix, err := workload.ByName(*mixName)
		if err != nil {
			fail(err)
		}
		streams, err := mix.Streams(&cfg)
		if err != nil {
			fail(err)
		}
		if *dump > 0 {
			dumpAccesses(streams[0], mapper, *dump)
			return
		}
		describe(mix.Name, streams, *instructions, mapper)
		fmt.Printf("paper reference: RPKI %.2f, WPKI %.2f\n", mix.PaperRPKI, mix.PaperWPKI)
	default:
		fmt.Fprintln(os.Stderr, "memscale-trace: pass -mix or -app (see -help)")
		os.Exit(2)
	}
}

func dumpAccesses(s *trace.Stream, mapper *config.AddressMapper, n int) {
	fmt.Println("gap_instr  line            ch rank bank row    col  writeback")
	for i := 0; i < n; i++ {
		a := s.Next()
		loc := mapper.Map(a.Line)
		wb := ""
		if a.Writeback {
			wb = fmt.Sprintf("-> wb line %d", a.WBLine)
		}
		fmt.Printf("%9d  %-14d  %2d %4d %4d %6d %4d  %s\n",
			a.Gap, a.Line, loc.Channel, loc.Rank, loc.Bank, loc.Row, loc.Col, wb)
	}
}

func describe(name string, streams []*trace.Stream, target uint64, mapper *config.AddressMapper) {
	var instr, reads, wbs, sameRow uint64
	channels := map[int]uint64{}
	var prev config.Location
	havePrev := false
	for _, s := range streams {
		for {
			a := s.Next()
			loc := mapper.Map(a.Line)
			channels[loc.Channel]++
			if havePrev && loc.Channel == prev.Channel && loc.Rank == prev.Rank &&
				loc.Bank == prev.Bank && loc.Row == prev.Row {
				sameRow++
			}
			prev, havePrev = loc, true
			if in, _, _ := s.Stats(); in >= target {
				break
			}
		}
		in, rd, wb := s.Stats()
		instr += in
		reads += rd
		wbs += wb
	}
	fmt.Printf("%s: %d cores, %d instructions, %d reads, %d writebacks\n",
		name, len(streams), instr, reads, wbs)
	fmt.Printf("RPKI %.3f, WPKI %.3f, consecutive same-row %.1f%%\n",
		float64(reads)/float64(instr)*1000,
		float64(wbs)/float64(instr)*1000,
		float64(sameRow)/float64(reads)*100)
	fmt.Print("channel spread:")
	for ch := 0; ch < len(channels); ch++ {
		fmt.Printf(" ch%d %.1f%%", ch, float64(channels[ch])/float64(reads)*100)
	}
	fmt.Println()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "memscale-trace:", err)
	// Unknown-name lookups carry typed sentinels; list the valid
	// names so the user doesn't have to guess.
	switch {
	case errors.Is(err, workload.ErrUnknownApp):
		fmt.Fprintln(os.Stderr, "known applications:", strings.Join(workload.AppNames(), " "))
	case errors.Is(err, workload.ErrUnknownMix):
		fmt.Fprintln(os.Stderr, "known mixes:", strings.Join(workload.Names(), " "))
	}
	os.Exit(1)
}
