package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"memscale/internal/config"
	"memscale/internal/dram"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.SetEpoch(3)
	r.FreqTransition(0, 0, 800, 400, 100)
	r.PowerdownEnter(0, 0, 0, true)
	r.PowerdownExit(0, 0, 0)
	r.Refresh(0, 0, 0, 10)
	r.Slack(0, 0, 0.1, 0.2)
	r.Decision(0, 800, 400, 1.2, 1.3)
	r.ObserveReadLatency(100)
	r.ObserveQueueDepth(4)
	r.ObserveEpochHost(1000)
	r.PowerInterval(5, dram.Account{}, Energy{})
	r.AddEpoch(EpochSnapshot{})
	if r.EventsEnabled() {
		t.Error("nil recorder reports events enabled")
	}
	if r.Epochs() != nil || r.SinkErr() != nil {
		t.Error("nil recorder getters must return zero values")
	}
	if r.Export(RunMeta{}, nil) != nil {
		t.Error("nil recorder Export must return nil")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram("h", "ns", []float64{10, 20, 40})
	if len(h.Counts) != 4 {
		t.Fatalf("counts = %d, want bounds+1 = 4", len(h.Counts))
	}
	for _, v := range []float64{5, 10, 15, 35, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 1, 1, 1} // <=10: {5,10}, <=20: {15}, <=40: {35}, overflow: {100}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Count != 5 || h.Min != 5 || h.Max != 100 {
		t.Errorf("count/min/max = %d/%g/%g", h.Count, h.Min, h.Max)
	}
	if got := h.Mean(); got != 33 {
		t.Errorf("mean = %g, want 33", got)
	}
	if q := h.Quantile(0.5); q != 20 {
		t.Errorf("p50 = %g, want 20", q)
	}
	if q := h.Quantile(1.0); q != 100 {
		t.Errorf("p100 = %g, want observed max 100", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram("h", "ns", []float64{10, 20})
	b := NewHistogram("h", "ns", []float64{10, 20})
	a.Observe(5)
	b.Observe(15)
	b.Observe(100)
	if !a.Merge(b) {
		t.Fatal("matching layouts must merge")
	}
	if a.Count != 3 || a.Min != 5 || a.Max != 100 || a.Sum != 120 {
		t.Errorf("merged count/min/max/sum = %d/%g/%g/%g", a.Count, a.Min, a.Max, a.Sum)
	}
	c := NewHistogram("h", "ns", []float64{10})
	if a.Merge(c) {
		t.Error("mismatched layouts must refuse to merge")
	}
}

func TestEventRingDropOldest(t *testing.T) {
	r := NewRecorder(Options{Events: true, RingSize: 3})
	for i := 0; i < 5; i++ {
		r.Refresh(config.Time(i), 0, i, 1)
	}
	out := r.Export(RunMeta{}, nil)
	if len(out.Events) != 3 {
		t.Fatalf("retained %d events, want 3", len(out.Events))
	}
	if out.DroppedEvents != 2 {
		t.Errorf("dropped = %d, want 2", out.DroppedEvents)
	}
	// Newest three survive, in arrival order.
	for i, ev := range out.Events {
		if ev.Rank != i+2 {
			t.Errorf("event %d has rank %d, want %d", i, ev.Rank, i+2)
		}
	}
}

func TestSinkReceivesEveryEvent(t *testing.T) {
	sink := &MemorySink{}
	r := NewRecorder(Options{Events: true, RingSize: 2, Sink: sink})
	for i := 0; i < 5; i++ {
		r.Refresh(config.Time(i), 0, i, 1)
	}
	out := r.Export(RunMeta{}, nil)
	if len(sink.Events) != 5 {
		t.Fatalf("sink saw %d events, want all 5", len(sink.Events))
	}
	for i, ev := range sink.Events {
		if ev.Rank != i {
			t.Errorf("sink event %d has rank %d: order not preserved", i, ev.Rank)
		}
	}
	if len(out.Events) != 0 || out.DroppedEvents != 0 {
		t.Error("with a sink the export must not duplicate or drop events")
	}
}

func TestCSVSinkFormat(t *testing.T) {
	var buf bytes.Buffer
	sink := &CSVSink{W: &buf}
	r := NewRecorder(Options{Events: true, Sink: sink})
	r.SetEpoch(7)
	r.FreqTransition(1000, 1, 800, 400, 42)
	r.Export(RunMeta{}, nil)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || lines[0] != EventCSVHeader {
		t.Fatalf("csv = %q", buf.String())
	}
	if want := "freq_transition,1000,7,1,-1,-1,800,400,42,0,0"; lines[1] != want {
		t.Errorf("row = %q, want %q", lines[1], want)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := NewRecorder(Options{Events: true})
	r.SetEpoch(0)
	r.ObserveReadLatency(60 * config.Nanosecond)
	r.ObserveQueueDepth(3)
	r.Decision(100, 800, 400, 1.5, 1.6)
	r.PowerInterval(5*config.Millisecond,
		dram.Account{PrechargeStandby: 5 * config.Millisecond},
		Energy{Background: 0.25, MC: 0.5})
	r.AddEpoch(EpochSnapshot{
		Index: 0, End: 5 * config.Millisecond, Freq: 400,
		CoreCPI: []float64{1.5, 1.7}, ChannelUtil: []float64{0.25},
		Energy: Energy{Background: 0.25, MC: 0.5},
		Reads:  12,
	})
	exp := r.Export(RunMeta{Mix: "MID1", Policy: "MemScale", Gamma: 0.1}, map[int]float64{400: 0.005})

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, exp); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("read %d runs, want 1", len(back))
	}
	got := back[0]
	if got.Meta.Mix != "MID1" || got.Meta.Policy != "MemScale" || got.Meta.Gamma != 0.1 {
		t.Errorf("meta = %+v, want %+v", got.Meta, exp.Meta)
	}
	if got.Energy != exp.Energy || got.Residency != exp.Residency {
		t.Error("energy/residency totals did not survive the round trip")
	}
	if len(got.Epochs) != 1 || got.Epochs[0].Reads != 12 || got.Epochs[0].Freq != 400 {
		t.Errorf("epochs = %+v", got.Epochs)
	}
	if len(got.Events) != 1 || got.Events[0].Kind != EvDecision {
		t.Errorf("events = %+v", got.Events)
	}
	if h := got.Histogram("read_latency"); h == nil || h.Count != 1 {
		t.Error("read_latency histogram missing after round trip")
	}
	if got.FreqSeconds[400] != 0.005 {
		t.Errorf("freq seconds = %v", got.FreqSeconds)
	}
}

func TestReadJSONLRejectsOrphans(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"type":"epoch","epoch":{"index":0}}`)); err == nil {
		t.Error("epoch before any run must error")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"type":"nope"}`)); err == nil {
		t.Error("unknown record type must error")
	}
}

func TestRollupMerges(t *testing.T) {
	mk := func(mix string, reads float64) *RunExport {
		r := NewRecorder(Options{})
		r.ObserveReadLatency(config.Time(reads))
		r.FreqTransitions.Add(2)
		r.PowerInterval(5*config.Millisecond,
			dram.Account{ActiveStandby: 2 * config.Millisecond},
			Energy{MC: 1})
		r.AddEpoch(EpochSnapshot{})
		return r.Export(RunMeta{Mix: mix}, map[int]float64{800: 0.005})
	}
	ro := NewRollup()
	ro.Add(mk("MID1", 60000))
	ro.Add(mk("MEM2", 80000))
	ro.Add(nil) // runs without telemetry are skipped

	if ro.Runs != 2 || ro.Epochs != 2 {
		t.Errorf("runs/epochs = %d/%d", ro.Runs, ro.Epochs)
	}
	if ro.Energy.MC != 2 {
		t.Errorf("energy.MC = %g, want 2", ro.Energy.MC)
	}
	if ro.Residency.ActiveStandby != 4*config.Millisecond {
		t.Errorf("residency = %v", ro.Residency)
	}
	if ro.Counters["freq_transitions"] != 4 {
		t.Errorf("counters = %v", ro.Counters)
	}
	if ro.FreqSeconds[800] != 0.01 {
		t.Errorf("freq seconds = %v", ro.FreqSeconds)
	}
	if h := ro.Histograms["read_latency"]; h == nil || h.Count != 2 {
		t.Error("histograms did not merge")
	}
}

func TestResidencyFractionsAndColumns(t *testing.T) {
	s := EpochSnapshot{Residency: dram.Account{
		ActiveStandby:    1 * config.Millisecond,
		PrechargeStandby: 2 * config.Millisecond,
		PrechargePDSlow:  1 * config.Millisecond,
	}}
	fr := s.ResidencyFractions()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if sum != 1 {
		t.Errorf("fractions sum to %g, want 1", sum)
	}
	if fr[0] != 0.25 || fr[1] != 0.5 || fr[4] != 0.25 {
		t.Errorf("fractions = %v", fr)
	}
	if ResidencyColumns[4] != "precharge_pd_slow" {
		t.Errorf("column order changed: %v", ResidencyColumns)
	}
}

func TestReportViews(t *testing.T) {
	r := NewRecorder(Options{Events: true})
	r.SetEpoch(0)
	r.Decision(300*config.Microsecond, 800, 400, 1.5, 1.6)
	r.AddEpoch(EpochSnapshot{
		Index: 0, End: 5 * config.Millisecond, Freq: 400,
		CoreCPI: []float64{1.6}, ChannelUtil: []float64{0.2},
		Residency: dram.Account{PrechargeStandby: 5 * config.Millisecond},
	})
	r.ObserveReadLatency(60 * config.Nanosecond)
	exp := r.Export(RunMeta{Mix: "MID3", Policy: "MemScale"}, map[int]float64{400: 0.005})
	exp.DurationSeconds = 0.005
	exports := []*RunExport{exp}

	var res, lat, dec, freq, sum bytes.Buffer
	if err := WriteResidencyCSV(&res, exports); err != nil {
		t.Fatal(err)
	}
	if err := WriteLatencyCSV(&lat, exports); err != nil {
		t.Fatal(err)
	}
	if err := WriteDecisionsCSV(&dec, exports); err != nil {
		t.Fatal(err)
	}
	if err := WriteFreqCSV(&freq, exports); err != nil {
		t.Fatal(err)
	}
	if err := WriteSummary(&sum, exports); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "MID3,MemScale,0,5.000,400") {
		t.Errorf("residency csv:\n%s", res.String())
	}
	if !strings.Contains(dec.String(), "800,400,1.5000,1.6000") {
		t.Errorf("decisions csv:\n%s", dec.String())
	}
	if !strings.Contains(freq.String(), "400,0.005000,1.0000") {
		t.Errorf("freq csv:\n%s", freq.String())
	}
	if !strings.Contains(lat.String(), "MID3,MemScale,75,1") {
		t.Errorf("latency csv:\n%s", lat.String())
	}
	if !strings.Contains(sum.String(), "MID3/MemScale") {
		t.Errorf("summary:\n%s", sum.String())
	}
}
