package memscale

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"memscale/internal/exp"
	"memscale/internal/workload"
)

// ExperimentParams scale the paper-reproduction experiments.
type ExperimentParams struct {
	// Epochs per run (default 10 -> 50 ms simulated per run).
	Epochs int

	// TimelineEpochs for the Figure 7/8 timelines (default 20 ->
	// 100 ms, the span the paper plots).
	TimelineEpochs int

	// Gamma is the allowed performance degradation (default 0.10).
	Gamma float64

	// Workers bounds the number of concurrently simulated runs per
	// experiment grid (default GOMAXPROCS). Results are independent
	// of the worker count.
	Workers int

	// Shards, when > 1, runs every simulation of the grids (managed
	// runs and baselines) on the sharded event engine, exactly like
	// RunConfig.Shards. Results are bit-identical at any count.
	Shards int

	// Progress receives per-run progress lines when non-nil.
	Progress io.Writer
}

func (p ExperimentParams) params(ctx context.Context) exp.Params {
	q := exp.DefaultParams()
	if p.Epochs > 0 {
		q.Epochs = p.Epochs
	}
	if p.TimelineEpochs > 0 {
		q.TimelineEpochs = p.TimelineEpochs
	}
	if p.Gamma > 0 {
		q.Gamma = p.Gamma
	}
	q.Workers = p.Workers
	q.Shards = p.Shards
	q.Progress = p.Progress
	q.Ctx = ctx
	return q
}

// ExperimentReport is one rendered table/figure reproduction.
type ExperimentReport struct {
	ID    string // e.g. "figure5"
	Title string
	Text  string // aligned ASCII table
	CSV   string // the same data as CSV
}

func render(r exp.Report) ExperimentReport {
	var text, csv strings.Builder
	r.Render(&text)
	r.Table.CSV(&csv)
	return ExperimentReport{ID: r.ID, Title: r.Title, Text: text.String(), CSV: csv.String()}
}

// experimentRunners maps experiment IDs to their drivers. Drivers that
// share simulation grids (figure5/figure6, figure9-11) are exposed as
// one ID producing several reports.
func experimentRunners(p exp.Params) map[string]func() ([]exp.Report, error) {
	one := func(f func() (exp.Report, error)) func() ([]exp.Report, error) {
		return func() ([]exp.Report, error) {
			r, err := f()
			if err != nil {
				return nil, err
			}
			return []exp.Report{r}, nil
		}
	}
	return map[string]func() ([]exp.Report, error){
		"table1":  one(p.Table1),
		"table2":  func() ([]exp.Report, error) { return []exp.Report{p.Table2()}, nil },
		"figure2": one(p.Figure2),
		"figure5+6": func() ([]exp.Report, error) {
			return p.Figures5And6()
		},
		"figure7": one(p.Figure7),
		"figure8": one(p.Figure8),
		"figure9-11": func() ([]exp.Report, error) {
			return p.Figures9To11()
		},
		"figure12":          one(p.Figure12),
		"figure13":          one(p.Figure13),
		"figure14":          one(p.Figure14),
		"figure15":          one(p.Figure15),
		"sensitivity-extra": one(p.SensitivityExtra),
		"ablations":         one(p.Ablations),
		"futurework":        one(p.FutureWork),
		"class-summaries": func() ([]exp.Report, error) {
			var out []exp.Report
			for _, c := range []workload.Class{workload.ClassILP, workload.ClassMID, workload.ClassMEM} {
				r, err := p.ByClassSummary(c)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
			return out, nil
		},
	}
}

// experimentOrder is the presentation order of experiment IDs.
var experimentOrder = []string{
	"table1", "table2", "figure2", "figure5+6", "figure7", "figure8",
	"figure9-11", "figure12", "figure13", "figure14", "figure15",
	"sensitivity-extra", "ablations", "futurework", "class-summaries",
}

// Experiments lists the available experiment IDs in presentation
// order.
func Experiments() []string {
	return append([]string(nil), experimentOrder...)
}

// RunExperiment executes one experiment by ID ("all" runs everything)
// and returns its rendered reports.
func RunExperiment(id string, params ExperimentParams) ([]ExperimentReport, error) {
	return RunExperimentContext(context.Background(), id, params)
}

// RunExperimentContext is RunExperiment with cancellation: the
// experiment grids run on the parallel sweep engine under ctx, and an
// in-flight simulation stops promptly when ctx fires.
func RunExperimentContext(ctx context.Context, id string, params ExperimentParams) ([]ExperimentReport, error) {
	p := params.params(ctx)
	runners := experimentRunners(p)
	ids := []string{id}
	if id == "all" {
		ids = Experiments()
	} else if _, ok := runners[id]; !ok {
		known := Experiments()
		sort.Strings(known)
		return nil, fmt.Errorf("memscale: unknown experiment %q (known: %s, all)",
			id, strings.Join(known, ", "))
	}
	var out []ExperimentReport
	for _, one := range ids {
		reports, err := runners[one]()
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", one, err)
		}
		for _, r := range reports {
			out = append(out, render(r))
		}
	}
	return out, nil
}
