package telemetry

import (
	"bytes"
	"testing"
)

// FuzzReadJSONL feeds arbitrary bytes to the interchange parser. The
// contract: ReadJSONL never panics — it returns an error or a list of
// runs — and whatever it accepts survives a write/read round trip.
func FuzzReadJSONL(f *testing.F) {
	var valid bytes.Buffer
	ex := &RunExport{
		Meta:     RunMeta{Mix: "MID1", Policy: "MemScale"},
		Counters: map[string]uint64{"faults_injected": 3},
		Epochs:   []EpochSnapshot{{Index: 0, FaultMask: 1}},
		Events:   []Event{{Kind: EvFault, A: 1}},
	}
	if err := WriteJSONL(&valid, ex); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("{}\n"))
	f.Add([]byte(`{"type":"run"}` + "\n"))
	f.Add([]byte(`{"type":"epoch","epoch":{}}` + "\n"))
	f.Add([]byte(`{"type":"event","event":{"kind":"fault"}}` + "\n"))
	f.Add([]byte(`{"type":"run","run":{"mix":"x"}}` + "\n" + `{"type":"unknown"}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		runs, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, runs...); err != nil {
			t.Fatalf("accepted stream failed to re-encode: %v", err)
		}
		again, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("re-encoded stream rejected: %v", err)
		}
		if len(again) != len(runs) {
			t.Fatalf("round trip changed run count: %d != %d", len(again), len(runs))
		}
	})
}
