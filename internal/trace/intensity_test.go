package trace

import (
	"math"
	"testing"
)

// TestIntensityOneIsBitIdentical: setting intensity to exactly 1 must
// not perturb the generated sequence at all (the fleet layer's no-op
// multiplier guarantee).
func TestIntensityOneIsBitIdentical(t *testing.T) {
	m := testMapper()
	p := Profile{Name: "id", Phases: []Phase{{BaseCPI: 1, MPKI: 8, WPKI: 3, RowLocality: 0.4}}}
	a := mustStream(t, p, m, 11)
	b := mustStream(t, p, m, 11)
	if err := b.SetIntensity(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("access %d diverged: %+v vs %+v", i, x, y)
		}
	}
}

// TestIntensityScalesMissRate: doubling intensity roughly doubles the
// miss rate (halves the mean gap) without changing the writeback
// ratio.
func TestIntensityScalesMissRate(t *testing.T) {
	m := testMapper()
	p := Profile{Name: "load", Phases: []Phase{{BaseCPI: 1, MPKI: 5, WPKI: 2, RowLocality: 0.3}}}

	rate := func(mult float64) (mpki, wbRatio float64) {
		s := mustStream(t, p, m, 21)
		if err := s.SetIntensity(mult); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40000; i++ {
			s.Next()
		}
		instr, reads, wbs := s.Stats()
		return 1000 * float64(reads) / float64(instr), float64(wbs) / float64(reads)
	}

	base, baseWB := rate(1)
	double, doubleWB := rate(2)
	if ratio := double / base; ratio < 1.8 || ratio > 2.2 {
		t.Errorf("intensity 2 scaled MPKI by %.2f (%.2f -> %.2f), want ~2", ratio, base, double)
	}
	// The writeback-to-read ratio is the profile's own (WPKI/MPKI =
	// 0.4) at every intensity.
	for _, wb := range []float64{baseWB, doubleWB} {
		if wb < 0.35 || wb > 0.45 {
			t.Errorf("writeback ratio %.3f drifted from profile's 0.4", wb)
		}
	}
}

// TestIntensityValidation rejects non-positive and non-finite
// multipliers.
func TestIntensityValidation(t *testing.T) {
	m := testMapper()
	p := Profile{Name: "v", Phases: []Phase{{BaseCPI: 1, MPKI: 5, RowLocality: 0}}}
	s := mustStream(t, p, m, 3)
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if err := s.SetIntensity(bad); err == nil {
			t.Errorf("intensity %g accepted", bad)
		}
	}
	if s.Intensity() != 1 {
		t.Errorf("default intensity = %g, want 1", s.Intensity())
	}
	if err := s.SetIntensity(2.5); err != nil {
		t.Fatal(err)
	}
	if s.Intensity() != 2.5 {
		t.Errorf("intensity = %g, want 2.5", s.Intensity())
	}
}
