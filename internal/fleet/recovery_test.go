package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"memscale/internal/faults"
	"memscale/internal/policies"
	"memscale/internal/telemetry"
	"memscale/internal/workload"
)

// chaosConfig is testConfig armed with the self-healing plane: every
// node draws fleet-scope disturbances from fc and recovers under rec.
func chaosConfig(t *testing.T, workers int, fc faults.Config, rec *RecoverySpec) Config {
	t.Helper()
	c := testConfig(t, workers)
	for gi := range c.Groups {
		f := fc
		c.Groups[gi].Faults = &f
	}
	c.Recovery = rec
	return c
}

// sameSurvivorMetrics asserts every simulated metric of the chaos
// run's summary is Float64bits-identical to the undisturbed reference:
// the acceptance contract for transparent recovery. Bookkeeping that
// legitimately differs (restart counts, replayed events, re-run
// invariant checks) is excluded.
func sameSurvivorMetrics(t *testing.T, ref, got Summary) {
	t.Helper()
	bits := func(name string, a, b float64) {
		t.Helper()
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Errorf("%s differs: %v vs %v", name, a, b)
		}
	}
	bits("SER", ref.SER, got.SER)
	bits("AvgCPIIncrease", ref.AvgCPIIncrease, got.AvgCPIIncrease)
	bits("P99CPIIncrease", ref.P99CPIIncrease, got.P99CPIIncrease)
	bits("MemoryEnergyJ", ref.MemoryEnergyJ, got.MemoryEnergyJ)
	bits("SystemEnergyJ", ref.SystemEnergyJ, got.SystemEnergyJ)
	bits("BaselineSysJ", ref.BaselineSysJ, got.BaselineSysJ)
	bits("MemAvgPowerW", ref.MemAvgPowerW, got.MemAvgPowerW)
	bits("ConstrainedFrac", ref.ConstrainedFrac, got.ConstrainedFrac)
	if len(ref.PerNode) != len(got.PerNode) {
		t.Fatalf("node count differs: %d vs %d", len(ref.PerNode), len(got.PerNode))
	}
	for i := range ref.PerNode {
		r, g := ref.PerNode[i], got.PerNode[i]
		if g.Dead {
			t.Errorf("node %d died under chaos: %s", g.Node, g.Err)
			continue
		}
		bits("node MemoryEnergyJ", r.MemoryEnergyJ, g.MemoryEnergyJ)
		bits("node SystemEnergyJ", r.SystemEnergyJ, g.SystemEnergyJ)
		bits("node SER", r.SER, g.SER)
		bits("node CPIIncrease", r.CPIIncrease, g.CPIIncrease)
		if r.CappedEpochs != g.CappedEpochs || r.FinalCapMHz != g.FinalCapMHz {
			t.Errorf("node %d cap outcome differs: (%d, %d) vs (%d, %d)",
				g.Node, r.CappedEpochs, r.FinalCapMHz, g.CappedEpochs, g.FinalCapMHz)
		}
	}
	ja, _ := json.Marshal(ref.CapTrace)
	jb, _ := json.Marshal(got.CapTrace)
	if string(ja) != string(jb) {
		t.Errorf("cap traces differ:\n%s\nvs\n%s", ja, jb)
	}
}

// TestChaosRecoveryTransparent is the acceptance golden: a fleet with
// injected node crashes (and checkpoint recovery) produces
// Float64bits-identical survivor metrics to the same-seed run with no
// crashes, because every crash is restored and replayed to the window
// boundary before the coordinator looks.
func TestChaosRecoveryTransparent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet run")
	}
	ref, err := Run(context.Background(), chaosConfig(t, 0, faults.Config{Seed: 11}, nil))
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	got, err := Run(context.Background(), chaosConfig(t, 0,
		faults.Config{Seed: 11, NodeCrashRate: 0.35},
		&RecoverySpec{MaxRetries: 12, CheckpointEvery: 2, Backoff: time.Microsecond}))
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if got.Recoveries == 0 {
		t.Fatal("chaos run performed no recoveries; the test exercised nothing")
	}
	if got.DeadNodes != 0 {
		t.Fatalf("chaos run lost %d nodes with a generous retry budget", got.DeadNodes)
	}
	if len(got.DegradedNodes) == 0 {
		t.Error("no degraded nodes reported despite recoveries")
	}
	if got.InvariantChecks == 0 || ref.InvariantChecks == 0 {
		t.Error("invariant plane recorded no checks")
	}
	sameSurvivorMetrics(t, ref, got)
}

// shardedChaosConfig is a channel-partitioned fleet eligible for the
// 4-shard parallel event engine: one group of MEM1/part nodes with one
// application per memory channel.
func shardedChaosConfig(t *testing.T, shards int, fc faults.Config, rec *RecoverySpec) Config {
	t.Helper()
	mem, err := workload.ByName("MEM1" + workload.PartitionedSuffix)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := policies.ByName("MemScale")
	if err != nil {
		t.Fatal(err)
	}
	f := fc
	return Config{
		Groups: []GroupSpec{
			{Name: "mem", Nodes: 3, Mix: mem, Spec: spec, Cores: 4, Channels: 4,
				Shards:  shards,
				Arrival: ArrivalSpec{Kind: ArrivalPoisson, UsersPerNode: 200, RequestsPerUserHz: 10},
				Faults:  &f},
		},
		Epochs:   4,
		BudgetW:  40,
		Seed:     7,
		Recovery: rec,
	}
}

// TestChaosShardedRecovery runs the recovery plane on top of the
// 4-shard parallel event engine: nodes crash mid-window, restore from
// checkpoints written by the sharded engine, and replay on it — and the
// survivor metrics must still be Float64bits-identical to the serial
// undisturbed same-seed run. This composes the two transparency
// contracts (shard identity and recovery identity) in one pass.
func TestChaosShardedRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet run")
	}
	ref, err := Run(context.Background(), shardedChaosConfig(t, 0, faults.Config{Seed: 11}, nil))
	if err != nil {
		t.Fatalf("serial reference run: %v", err)
	}
	got, err := Run(context.Background(), shardedChaosConfig(t, 4,
		faults.Config{Seed: 11, NodeCrashRate: 0.35},
		&RecoverySpec{MaxRetries: 12, CheckpointEvery: 2, Backoff: time.Microsecond}))
	if err != nil {
		t.Fatalf("sharded chaos run: %v", err)
	}
	if got.Recoveries == 0 {
		t.Fatal("sharded chaos run performed no recoveries; the test exercised nothing")
	}
	if got.DeadNodes != 0 {
		t.Fatalf("sharded chaos run lost %d nodes with a generous retry budget", got.DeadNodes)
	}
	sameSurvivorMetrics(t, ref, got)
}

// TestChaosCorruptCheckpointFallback: when every periodic snapshot is
// corrupted at write time, restarts fall back to a from-scratch
// replay — slower, but still bit-transparent.
func TestChaosCorruptCheckpointFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet run")
	}
	ref, err := Run(context.Background(), chaosConfig(t, 0, faults.Config{Seed: 3}, nil))
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	// Every snapshot is corrupted, so each restart replays from scratch
	// and re-rolls the crash schedule over the whole replayed prefix;
	// keep the crash rate low and the retry budget wide so nodes
	// deterministically make it through.
	got, err := Run(context.Background(), chaosConfig(t, 0,
		faults.Config{Seed: 3, NodeCrashRate: 0.15, CheckpointCorruptRate: 1.0},
		&RecoverySpec{MaxRetries: 40, CheckpointEvery: 1, Backoff: time.Microsecond}))
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	var corrupt, replayed int
	for _, ns := range got.PerNode {
		corrupt += ns.CorruptCheckpoints
		replayed += ns.RecoveryEpochs
	}
	if got.Recoveries == 0 || corrupt == 0 {
		t.Fatalf("expected corrupted-snapshot recoveries, got %d recoveries / %d corrupt", got.Recoveries, corrupt)
	}
	if replayed == 0 {
		t.Error("recoveries replayed no epochs")
	}
	sameSurvivorMetrics(t, ref, got)
}

// TestChaosDeterministicAcrossWorkers: the full chaos summary —
// restart counts, recovery stats, telemetry-visible loss windows, and
// every metric — is bit-identical on any worker count.
func TestChaosDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet run")
	}
	fc := faults.Config{Seed: 5, NodeCrashRate: 0.3, CheckpointCorruptRate: 0.5, NodeLossRate: 0.2}
	rec := &RecoverySpec{MaxRetries: 12, CheckpointEvery: 2, Backoff: time.Microsecond}
	a, errA := Run(context.Background(), chaosConfig(t, 1, fc, rec))
	b, errB := Run(context.Background(), chaosConfig(t, 4, fc, rec))
	if (errA == nil) != (errB == nil) {
		t.Fatalf("errs differ: %v / %v", errA, errB)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("chaos summaries differ across worker counts:\n%s\nvs\n%s", ja, jb)
	}
}

// TestNodeLostAfterRetryExhaustion: a node that crashes on every
// attempt exhausts its per-window restart budget and is given up with
// ErrNodeLost; the fleet keeps running and reports it in the lost set.
func TestNodeLostAfterRetryExhaustion(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet run")
	}
	c := chaosConfig(t, 0, faults.Config{Seed: 1, NodeCrashRate: 1.0},
		&RecoverySpec{MaxRetries: 2, CheckpointEvery: 1, Backoff: time.Microsecond})
	sum, err := Run(context.Background(), c)
	if !errors.Is(err, ErrNodeLost) {
		t.Fatalf("want ErrNodeLost, got %v", err)
	}
	if sum.DeadNodes != sum.Nodes {
		t.Fatalf("crash rate 1.0 should lose every node: %d/%d dead", sum.DeadNodes, sum.Nodes)
	}
	if len(sum.LostNodes) != sum.Nodes {
		t.Fatalf("lost set has %d of %d nodes", len(sum.LostNodes), sum.Nodes)
	}
	for _, ns := range sum.PerNode {
		if !ns.Dead || !ns.Lost {
			t.Errorf("node %d: dead=%v lost=%v, want both", ns.Node, ns.Dead, ns.Lost)
		}
		// MaxRetries restarts plus the first try, every one crashing.
		if ns.Attempts != 2 || ns.Crashes != 3 {
			t.Errorf("node %d: attempts=%d crashes=%d, want 2/3", ns.Node, ns.Attempts, ns.Crashes)
		}
		if !strings.Contains(ns.Err, "node lost") {
			t.Errorf("node %d error %q does not name the loss", ns.Node, ns.Err)
		}
	}
}

// TestCrashWithoutRecoveryLosesNode: with no RecoverySpec armed, an
// injected crash is immediately fatal for the node.
func TestCrashWithoutRecoveryLosesNode(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet run")
	}
	sum, err := Run(context.Background(), chaosConfig(t, 0, faults.Config{Seed: 1, NodeCrashRate: 1.0}, nil))
	if !errors.Is(err, ErrNodeLost) {
		t.Fatalf("want ErrNodeLost, got %v", err)
	}
	if sum.DeadNodes != sum.Nodes {
		t.Fatalf("every node should be lost: %d/%d dead", sum.DeadNodes, sum.Nodes)
	}
	if sum.Recoveries != 0 {
		t.Fatalf("no recovery plane armed, yet %d restarts recorded", sum.Recoveries)
	}
}

// TestLossWindowsRejoin: coordinator-visible loss windows open and
// close without killing the node — the coordinator freezes its cap,
// re-water-fills the freed budget, and re-admits it on rejoin — and
// the fleet telemetry stream records both transitions.
func TestLossWindowsRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet run")
	}
	rec := telemetry.NewRecorder(telemetry.Options{Events: true})
	c := chaosConfig(t, 0, faults.Config{Seed: 9, NodeLossRate: 0.3, NodeLossEpochs: 2}, nil)
	c.Epochs = 12
	c.Telemetry = rec
	sum, err := Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if sum.DeadNodes != 0 {
		t.Fatalf("loss windows must not kill nodes: %d dead", sum.DeadNodes)
	}
	var windows int
	for _, ns := range sum.PerNode {
		windows += ns.LossWindows
	}
	if windows == 0 {
		t.Fatal("no loss windows opened; the test exercised nothing")
	}
	if rec.NodesLost.N == 0 {
		t.Error("telemetry recorded no node_lost events")
	}
	if rec.NodesRecovered.N == 0 {
		t.Error("telemetry recorded no rejoin events")
	}
	ex := rec.Export(telemetry.RunMeta{}, nil)
	var lost, rejoined int
	for _, ev := range ex.Events {
		switch ev.Kind {
		case telemetry.EvNodeLost:
			lost++
			if ev.A != 1 {
				t.Errorf("loss-window event should carry A=1, got %d", ev.A)
			}
		case telemetry.EvRecovered:
			rejoined++
		}
	}
	if lost == 0 || rejoined == 0 {
		t.Errorf("event stream has %d losses / %d rejoins, want both > 0", lost, rejoined)
	}
}

// TestWatchdogRecoversStraggler: a straggler sleeping past the
// per-window watchdog is treated as a timed-out node — recovered from
// its snapshot like a crash — and the simulated metrics stay
// bit-transparent (the stall exists only in host time).
func TestWatchdogRecoversStraggler(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet run (host-time watchdog)")
	}
	base := testConfig(t, 0)
	base.Groups = base.Groups[:1]
	base.Groups[0].Nodes = 2
	ref, err := Run(context.Background(), base)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	c := testConfig(t, 0)
	c.Groups = c.Groups[:1]
	c.Groups[0].Nodes = 2
	fc := faults.Config{Seed: 4, StragglerRate: 0.3, StragglerDelay: 2 * time.Second}
	for gi := range c.Groups {
		f := fc
		c.Groups[gi].Faults = &f
	}
	c.Recovery = &RecoverySpec{MaxRetries: 20, CheckpointEvery: 1,
		StepTimeout: 250 * time.Millisecond, Backoff: time.Microsecond}
	got, err := Run(context.Background(), c)
	if err != nil {
		t.Fatalf("straggler run: %v", err)
	}
	var crashes int
	for _, ns := range got.PerNode {
		crashes += ns.Crashes
	}
	if crashes == 0 {
		t.Fatal("watchdog caught no stragglers; the test exercised nothing")
	}
	sameSurvivorMetrics(t, ref, got)
}

// TestInterruptWritesBundle: firing Config.Interrupt stops the fleet
// at a window boundary with ErrInterrupted and a checkpoint bundle
// carrying every live node, which round-trips through its codec.
func TestInterruptWritesBundle(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet run")
	}
	stop := make(chan struct{})
	close(stop)
	c := testConfig(t, 0)
	c.Interrupt = stop
	sum, bundle, err := RunWithCheckpoint(context.Background(), c)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if !sum.Interrupted {
		t.Error("summary not marked interrupted")
	}
	if bundle == nil {
		t.Fatal("no checkpoint bundle returned")
	}
	if len(bundle.Nodes) != sum.Nodes {
		t.Fatalf("bundle has %d of %d nodes", len(bundle.Nodes), sum.Nodes)
	}
	for _, nc := range bundle.Nodes {
		if nc.Checkpoint == nil || nc.Checkpoint.State == nil {
			t.Fatalf("node %d bundle entry has no state", nc.Node)
		}
	}

	var buf bytes.Buffer
	if err := WriteBundle(&buf, bundle); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != len(bundle.Nodes) || back.EpochsCompleted != bundle.EpochsCompleted {
		t.Fatalf("bundle round-trip mismatch: %d nodes @%d vs %d @%d",
			len(back.Nodes), back.EpochsCompleted, len(bundle.Nodes), bundle.EpochsCompleted)
	}
	if _, err := ReadBundle(strings.NewReader(`{"magic":"nope"}`)); err == nil {
		t.Fatal("foreign file accepted as a bundle")
	}
}

// TestRecoverySpecValidate: the supervisor spec rejects negatives and
// fills defaults.
func TestRecoverySpecValidate(t *testing.T) {
	for _, bad := range []RecoverySpec{
		{MaxRetries: -1},
		{CheckpointEvery: -2},
		{StepTimeout: -time.Second},
		{Backoff: -time.Millisecond},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("spec %+v validated", bad)
		}
	}
	d := RecoverySpec{}.withDefaults()
	if d.MaxRetries != DefaultMaxRetries || d.CheckpointEvery != DefaultCheckpointEvery || d.Backoff != DefaultBackoff {
		t.Errorf("defaults not applied: %+v", d)
	}
}
