// Command memscale-benchguard turns `go test -bench` output into a
// machine-readable benchmark report and enforces allocation budgets,
// so a hot-path regression fails CI instead of landing silently.
//
// Usage:
//
//	go test -run=NONE -bench='BenchmarkSingleRun$|BenchmarkSweep$' \
//	    -benchmem -benchtime=1x . | memscale-benchguard -out BENCH_4.json
//
// It parses every benchmark result line on stdin, writes a JSON report
// (ns/op, allocs/op, B/op, and any custom metrics such as events/op)
// alongside the recorded pre-optimization baseline, and exits non-zero
// when a benchmark with a budget exceeds its allocs/op ceiling.
//
// Budgets default to the table below (set from the post-rewrite
// steady state with generous slack); override per benchmark with
// -max-allocs 'BenchmarkSingleRun=10000,BenchmarkSweep=200000'.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// preRewriteBaseline records BenchmarkSingleRun on the pre-PR tree
// (container/heap event queue, per-call closures, delete-by-copy
// controller queues), measured with -benchtime=3x. It is the fixed
// reference the report's improvement ratios are computed against.
var preRewriteBaseline = map[string]result{
	"BenchmarkSingleRun": {NsPerOp: 4475591713, AllocsPerOp: 41896877, BytesPerOp: 1966664770},
}

// defaultBudgets are allocs/op ceilings: ~8x the observed post-rewrite
// cost, and still >4000x below the pre-rewrite cost — loose enough for
// noise and moderate feature growth, tight enough that reintroducing
// per-event allocations trips the guard immediately.
var defaultBudgets = map[string]int64{
	"BenchmarkSingleRun": 10_000,
}

type result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Benchmarks map[string]result  `json:"benchmarks"`
	Baseline   map[string]result  `json:"baseline"`
	Budgets    map[string]int64   `json:"budgets_allocs_per_op"`
	Improve    map[string]float64 `json:"speedup_vs_baseline,omitempty"`
	Violations []string           `json:"violations"`
}

// parseLine decodes one `go test -bench` result line, e.g.
//
//	BenchmarkSingleRun-8   3   202072 ns/op   7537 events/op   12 B/op   3 allocs/op
//
// returning the benchmark name (GOMAXPROCS suffix stripped) and the
// parsed result; ok is false for non-benchmark lines.
func parseLine(line string) (name string, r result, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	name = fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r.Metrics = map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = val
		case "allocs/op":
			r.AllocsPerOp = int64(val)
		case "B/op":
			r.BytesPerOp = int64(val)
		default:
			r.Metrics[fields[i+1]] = val
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return name, r, r.NsPerOp > 0
}

func parseBudgets(spec string, into map[string]int64) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, val, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found {
			return fmt.Errorf("budget %q is not name=allocs", part)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("budget %q: %v", part, err)
		}
		into[name] = n
	}
	return nil
}

func main() {
	out := flag.String("out", "BENCH_4.json", "write the JSON benchmark report to this file")
	budgetSpec := flag.String("max-allocs", "",
		"extra allocs/op budgets as 'Name=N,Name=N' (override or extend the defaults)")
	flag.Parse()

	budgets := make(map[string]int64, len(defaultBudgets))
	for k, v := range defaultBudgets {
		budgets[k] = v
	}
	if err := parseBudgets(*budgetSpec, budgets); err != nil {
		fmt.Fprintln(os.Stderr, "memscale-benchguard:", err)
		os.Exit(2)
	}

	rep := report{
		Benchmarks: map[string]result{},
		Baseline:   preRewriteBaseline,
		Budgets:    budgets,
		Improve:    map[string]float64{},
		Violations: []string{},
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		fmt.Println(sc.Text()) // pass the raw output through
		name, r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		rep.Benchmarks[name] = r
		if base, have := preRewriteBaseline[name]; have && r.NsPerOp > 0 {
			rep.Improve[name] = base.NsPerOp / r.NsPerOp
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "memscale-benchguard: read:", err)
		os.Exit(2)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "memscale-benchguard: no benchmark results on stdin")
		os.Exit(2)
	}

	for name, budget := range budgets {
		r, ran := rep.Benchmarks[name]
		if !ran {
			continue // guard only what this invocation ran
		}
		if r.AllocsPerOp > budget {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"%s allocated %d allocs/op, budget %d", name, r.AllocsPerOp, budget))
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "memscale-benchguard:", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "memscale-benchguard:", err)
		os.Exit(2)
	}
	fmt.Printf("memscale-benchguard: report written to %s\n", *out)

	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "memscale-benchguard: ALLOCATION REGRESSION:", v)
		}
		os.Exit(1)
	}
}
