// Package stats provides the small statistics and table-rendering
// helpers the experiment harness uses to print paper-style tables and
// figure data (ASCII for the terminal, CSV for plotting).
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series accumulates scalar observations.
type Series struct {
	vals []float64
}

// Add appends an observation.
func (s *Series) Add(v float64) { s.vals = append(s.vals, v) }

// N returns the observation count.
func (s *Series) N() int { return len(s.vals) }

// Sum returns the total.
func (s *Series) Sum() float64 {
	var t float64
	for _, v := range s.vals {
		t += v
	}
	return t
}

// Mean returns the average (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.vals))
}

// Min returns the smallest observation (+Inf for empty).
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, v := range s.vals {
		m = math.Min(m, v)
	}
	return m
}

// Max returns the largest observation (-Inf for empty).
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.vals {
		m = math.Max(m, v)
	}
	return m
}

// Values returns a copy of the observations.
func (s *Series) Values() []float64 { return append([]float64(nil), s.vals...) }

// Table is a titled grid with optional notes, renderable as aligned
// ASCII or CSV.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; cells beyond the column count are dropped,
// missing cells become empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV(w io.Writer) {
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// Pct formats a ratio as a signed percentage with one decimal.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

// F2 formats a float with two decimals.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }

// F3 formats a float with three decimals.
func F3(x float64) string { return fmt.Sprintf("%.3f", x) }
