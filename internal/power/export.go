package power

import "memscale/internal/telemetry"

// Export converts the breakdown to the telemetry layer's mirror type.
// Telemetry sits below power in the import graph, so the conversion
// lives here rather than there.
func (b Breakdown) Export() telemetry.Energy {
	return telemetry.Energy{
		Background:  b.Background,
		ActPre:      b.ActPre,
		ReadWrite:   b.ReadWrite,
		Termination: b.Termination,
		Refresh:     b.Refresh,
		PLLReg:      b.PLLReg,
		MC:          b.MC,
	}
}
