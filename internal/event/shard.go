package event

import (
	"fmt"
	"sort"
	"sync"

	"memscale/internal/config"
)

// ShardSet is a conservatively synchronized set of event queues that
// together behave like one serial Queue over a partitioned simulation.
// Each shard owns a disjoint subset of the simulated components (the
// memory channels and the cores bound to them) and advances its own
// queue; shards only run concurrently inside a time window whose edge
// the caller guarantees free of cross-shard interaction, so no locks
// guard the queues themselves.
//
// Sequence numbers are allocated from disjoint residue classes of one
// notional global counter (shard j issues j+n, j+2n, ... of an n-shard
// set), which keeps the merged (time, seq) order of all shards both
// total and consistent with each shard's local order. Events of
// different shards never interact inside a window, and all same-instant
// ordering decisions in the simulator compare only seqs of the same
// shard, so the residue-class renumbering is unobservable — the
// parallel run is bit-identical to the serial one.
//
// Cross-shard events (the refresh storms a fault plan injects at an
// epoch edge) are exchanged only at window edges via reserved per-shard
// tickets: RunCross drains every shard exactly to its ticket's position
// and then executes the callback serially, which is precisely where the
// serial engine would have fired the single cross event.
type ShardSet struct {
	qs []*Queue

	// crossFired counts cross-shard callbacks executed by RunCross;
	// Fired adds it to the per-shard totals so the merged count matches
	// the serial engine's, where each cross event fires exactly once.
	crossFired uint64
}

// NewShardSet builds n empty shards with residue-class sequence
// numbering. n must be at least 1.
func NewShardSet(n int) *ShardSet {
	if n < 1 {
		panic(fmt.Sprintf("event: NewShardSet(%d)", n))
	}
	s := &ShardSet{qs: make([]*Queue, n)}
	for j := range s.qs {
		s.qs[j] = &Queue{seq: uint64(j), stride: uint64(n)}
	}
	return s
}

// Shards returns the number of member queues.
func (s *ShardSet) Shards() int { return len(s.qs) }

// Shard returns the j-th member queue.
func (s *ShardSet) Shard(j int) *Queue { return s.qs[j] }

// Now returns the common clock of the set. Outside RunUntil/RunCross
// every shard sits at the same instant (the last window edge).
func (s *ShardSet) Now() config.Time { return s.qs[0].now }

// Len returns the total number of pending events across all shards.
func (s *ShardSet) Len() int {
	n := 0
	for _, q := range s.qs {
		n += q.Len()
	}
	return n
}

// Fired returns the total number of events executed, counting each
// cross-shard callback once (as the serial engine would).
func (s *ShardSet) Fired() uint64 {
	n := s.crossFired
	for _, q := range s.qs {
		n += q.fired
	}
	return n
}

// ScheduledTotal returns the total number of events ever scheduled.
func (s *ShardSet) ScheduledTotal() uint64 {
	var n uint64
	for _, q := range s.qs {
		n += q.scheduled
	}
	return n
}

// Coalesced returns the total number of trampoline events elided
// through the deferred-schedule plane across all shards.
func (s *ShardSet) Coalesced() uint64 {
	var n uint64
	for _, q := range s.qs {
		n += q.coalesced
	}
	return n
}

// NextAt returns the earliest pending fire time across all shards.
func (s *ShardSet) NextAt() (config.Time, bool) {
	var at config.Time
	ok := false
	for _, q := range s.qs {
		if t, qok := q.NextAt(); qok && (!ok || t < at) {
			at, ok = t, true
		}
	}
	return at, ok
}

// RunUntil advances every shard to the deadline, concurrently when the
// set has more than one shard. The caller guarantees the window
// (Now, deadline] is free of cross-shard interaction.
func (s *ShardSet) RunUntil(deadline config.Time) {
	if len(s.qs) == 1 {
		s.qs[0].RunUntil(deadline)
		return
	}
	var wg sync.WaitGroup
	for _, q := range s.qs[1:] {
		wg.Add(1)
		go func(q *Queue) {
			defer wg.Done()
			q.RunUntil(deadline)
		}(q)
	}
	s.qs[0].RunUntil(deadline)
	wg.Wait()
}

// ReserveTickets reserves one ordering ticket on every shard, in shard
// order, and returns them. A cross-shard event scheduled at a window
// edge takes a ticket per shard so that each shard can later be drained
// exactly to the event's position; the serial engine's single ticket
// and the per-shard tickets occupy the same relative position in every
// shard's local order, which is all the simulator ever observes.
func (s *ShardSet) ReserveTickets() []Seq {
	ts := make([]Seq, len(s.qs))
	for j, q := range s.qs {
		ts[j] = q.ReserveSeq()
	}
	return ts
}

// RunCross advances every shard exactly to the position (at, ticket)
// of a cross-shard event — concurrently, since the segment up to the
// position is still inside the conservative window — then executes fn
// serially with every shard's clock at the event's instant and its
// firing cursor at the ticket, so same-instant ordering checks inside
// fn resolve exactly as they would around the serial engine's single
// event.
func (s *ShardSet) RunCross(at config.Time, tickets []Seq, fn func(now config.Time)) {
	if len(tickets) != len(s.qs) {
		panic(fmt.Sprintf("event: RunCross with %d tickets for %d shards", len(tickets), len(s.qs)))
	}
	if len(s.qs) > 1 {
		var wg sync.WaitGroup
		for j, q := range s.qs[1:] {
			wg.Add(1)
			go func(q *Queue, t Seq) {
				defer wg.Done()
				q.RunUntilExclusive(at, t)
			}(q, tickets[j+1])
		}
		s.qs[0].RunUntilExclusive(at, tickets[0])
		wg.Wait()
	} else {
		s.qs[0].RunUntilExclusive(at, tickets[0])
	}
	for j, q := range s.qs {
		q.firing = uint64(tickets[j])
	}
	// Account the cross event exactly as the serial engine's single
	// scheduled-and-fired event would have been.
	s.qs[0].scheduled++
	s.crossFired++
	fn(at)
}

// Save captures the whole set as a single canonical Queue state: the
// image of the serial queue that holds every pending event of every
// shard. Entries are merged in (time, seq) order — a sorted array is a
// valid 4-ary min-heap — over a dense node arena with an empty free
// list, so loading the state into one serial queue (or re-partitioning
// it across any shard count) reproduces the same future behaviour.
func (s *ShardSet) Save(codec Codec) (*State, error) {
	st := &State{Now: s.Now()}
	for _, q := range s.qs {
		if q.seq > st.Seq {
			st.Seq = q.seq
		}
		if q.firing > st.Firing {
			st.Firing = q.firing
		}
		st.Fired += q.fired
		st.Scheduled += q.scheduled
		st.Coalesced += q.coalesced
	}
	st.Fired += s.crossFired
	for _, q := range s.qs {
		for _, e := range q.heap {
			n := &q.nodes[e.idx]
			kind, owner, err := codec.Encode(n.fn, n.bfn, n.env)
			if err != nil {
				return nil, fmt.Errorf("event: save shard entry: %w", err)
			}
			st.Heap = append(st.Heap, EntryState{At: e.at, Seq: e.seq})
			st.Nodes = append(st.Nodes, NodeState{
				Gen: 1, Pos: 0, Kind: kind, Owner: owner, A: n.a, B: n.b,
			})
		}
		for i := range q.defers {
			d := &q.defers[i]
			kind, owner, err := codec.Encode(nil, d.bfn, d.env)
			if err != nil {
				return nil, fmt.Errorf("event: save shard deferred: %w", err)
			}
			st.Defers = append(st.Defers, DeferredState{
				ActivateAt: d.activateAt, Seq: d.seq, FireAt: d.fireAt,
				Kind: kind, Owner: owner, A: d.a, B: d.b,
			})
		}
	}
	// Nodes were appended in step with their heap entries; sort the
	// entries into canonical (time, seq) order and renumber the node
	// references to match.
	order := make([]int, len(st.Heap))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := st.Heap[order[a]], st.Heap[order[b]]
		if ea.At != eb.At {
			return ea.At < eb.At
		}
		return ea.Seq < eb.Seq
	})
	heap := make([]EntryState, len(order))
	nodes := make([]NodeState, len(order))
	for i, o := range order {
		heap[i] = st.Heap[o]
		heap[i].Idx = int32(i)
		nodes[i] = st.Nodes[o]
	}
	st.Heap, st.Nodes = heap, nodes
	sort.Slice(st.Defers, func(a, b int) bool {
		if st.Defers[a].ActivateAt != st.Defers[b].ActivateAt {
			return st.Defers[a].ActivateAt < st.Defers[b].ActivateAt
		}
		return st.Defers[a].Seq < st.Defers[b].Seq
	})
	return st, nil
}

// ShardOf assigns a saved pending event to a shard. It receives the
// encoded payload of the event; an error rejects the whole load (the
// state contains an event the partition cannot place).
type ShardOf func(kind string, owner, a, b int32) (int, error)

// Load partitions a canonical serial queue state across the set's
// shards: every pending event and deferred schedule goes to the shard
// shardOf names, keeping its (time, seq) key, so the merged order — and
// therefore future behaviour — is exactly the saved one. Totals are
// carried on shard 0; sequence counters restart above the saved
// counter in each shard's residue class.
func (s *ShardSet) Load(st *State, codec Codec, shardOf ShardOf) error {
	n := len(s.qs)
	parts := make([]*State, n)
	for j := range parts {
		parts[j] = &State{Now: st.Now, Firing: st.Firing}
	}
	parts[0].Fired = st.Fired
	parts[0].Scheduled = st.Scheduled
	parts[0].Coalesced = st.Coalesced
	for _, e := range st.Heap {
		if e.Idx < 0 || int(e.Idx) >= len(st.Nodes) {
			return fmt.Errorf("event: shard load: heap idx %d out of range", e.Idx)
		}
		ns := st.Nodes[e.Idx]
		if ns.Pos < 0 {
			return fmt.Errorf("event: shard load: heap references free node %d", e.Idx)
		}
		j, err := shardOf(ns.Kind, ns.Owner, ns.A, ns.B)
		if err != nil {
			return fmt.Errorf("event: shard load: %w", err)
		}
		if j < 0 || j >= n {
			return fmt.Errorf("event: shard load: kind %q assigned to shard %d of %d", ns.Kind, j, n)
		}
		p := parts[j]
		p.Heap = append(p.Heap, EntryState{At: e.At, Seq: e.Seq, Idx: int32(len(p.Nodes))})
		p.Nodes = append(p.Nodes, NodeState{Gen: 1, Pos: 0, Kind: ns.Kind, Owner: ns.Owner, A: ns.A, B: ns.B})
	}
	for _, d := range st.Defers {
		j, err := shardOf(d.Kind, d.Owner, d.A, d.B)
		if err != nil {
			return fmt.Errorf("event: shard load deferred: %w", err)
		}
		if j < 0 || j >= n {
			return fmt.Errorf("event: shard load: deferred kind %q assigned to shard %d of %d", d.Kind, j, n)
		}
		parts[j].Defers = append(parts[j].Defers, d)
	}
	for j, p := range parts {
		// Per-shard entries in (time, seq) order: the subsequence of the
		// canonical order owned by this shard, again a valid heap.
		sort.Slice(p.Heap, func(a, b int) bool {
			if p.Heap[a].At != p.Heap[b].At {
				return p.Heap[a].At < p.Heap[b].At
			}
			return p.Heap[a].Seq < p.Heap[b].Seq
		})
		nodes := make([]NodeState, len(p.Heap))
		for i := range p.Heap {
			nodes[i] = p.Nodes[p.Heap[i].Idx]
			p.Heap[i].Idx = int32(i)
		}
		p.Nodes = nodes
		sort.Slice(p.Defers, func(a, b int) bool {
			if p.Defers[a].ActivateAt != p.Defers[b].ActivateAt {
				return p.Defers[a].ActivateAt < p.Defers[b].ActivateAt
			}
			return p.Defers[a].Seq < p.Defers[b].Seq
		})
		if err := s.qs[j].Load(p, codec); err != nil {
			return fmt.Errorf("event: shard %d load: %w", j, err)
		}
		// Resume allocation above the saved counter, in this shard's
		// residue class of the set's stride.
		s.qs[j].seq = st.Seq + uint64(j)
		s.qs[j].stride = uint64(n)
	}
	s.crossFired = 0
	return nil
}
