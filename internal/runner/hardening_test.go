package runner

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"memscale/internal/config"
	"memscale/internal/faults"
	"memscale/internal/policies"
)

func TestRunRecoversMutatePanic(t *testing.T) {
	job := smallJob(t, "ILP2", policies.FastPD)
	job.Mutate = func(*config.Config) { panic("poisoned config hook") }
	eng := New(Options{Workers: 1})
	_, err := eng.Run(context.Background(), job)
	if !errors.Is(err, ErrRunPanicked) {
		t.Fatalf("err = %v, want ErrRunPanicked", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T does not unwrap to *PanicError", err)
	}
	if pe.Value != "poisoned config hook" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !bytes.Contains(pe.Stack, []byte("goroutine")) {
		t.Errorf("panic stack missing: %q", pe.Stack)
	}
}

func TestInjectedPanicIsolatedFromBatch(t *testing.T) {
	jobs := []Job{
		smallJob(t, "ILP2", policies.MemScale),
		smallJob(t, "MID1", policies.MemScale),
		smallJob(t, "ILP3", policies.MemScale),
	}
	jobs[1].Faults = &faults.Config{Seed: 1, PanicEnabled: true, PanicEpoch: 0}
	eng := New(Options{Workers: 3})
	outs, errs := eng.RunEach(context.Background(), jobs)
	if !errors.Is(errs[1], ErrRunPanicked) {
		t.Fatalf("panicked job err = %v, want ErrRunPanicked", errs[1])
	}
	var pe *PanicError
	if !errors.As(errs[1], &pe) {
		t.Fatalf("err %T is not a *PanicError", errs[1])
	}
	if ip, ok := pe.Value.(faults.InjectedPanic); !ok || ip.Epoch != 0 {
		t.Errorf("panic value = %#v, want faults.InjectedPanic{Epoch: 0}", pe.Value)
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Errorf("job %d err = %v, want nil", i, errs[i])
		}
		if outs[i].Res.Duration <= 0 {
			t.Errorf("job %d has no result despite nil error", i)
		}
	}
}

func TestJobWatchdogTimeout(t *testing.T) {
	job := smallJob(t, "ILP2", policies.FastPD)
	job.Timeout = time.Nanosecond
	eng := New(Options{Workers: 1})
	_, err := eng.Run(context.Background(), job)
	if !errors.Is(err, ErrJobTimeout) {
		t.Fatalf("err = %v, want ErrJobTimeout", err)
	}

	// The engine-level default applies when the job sets none.
	eng = New(Options{Workers: 1, JobTimeout: time.Nanosecond})
	_, err = eng.Run(context.Background(), smallJob(t, "ILP2", policies.FastPD))
	if !errors.Is(err, ErrJobTimeout) {
		t.Fatalf("engine default watchdog: err = %v, want ErrJobTimeout", err)
	}
}

func TestParentCancellationIsNotATimeout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job := smallJob(t, "ILP2", policies.FastPD)
	job.Timeout = time.Minute
	_, err := New(Options{Workers: 1}).Run(ctx, job)
	if !errors.Is(err, context.Canceled) || errors.Is(err, ErrJobTimeout) {
		t.Fatalf("err = %v, want context.Canceled and not ErrJobTimeout", err)
	}
}

// abortingSeed finds a seed whose transient-abort draw fires on
// attempt 0 but not on attempt wantClear.
func abortingSeed(t *testing.T, rate float64, wantClear int) uint64 {
	t.Helper()
	for seed := uint64(0); seed < 4096; seed++ {
		cfg := faults.Config{Seed: seed, TransientAbortRate: rate}
		first, err := faults.New(cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		clear, err := faults.New(cfg, wantClear)
		if err != nil {
			t.Fatal(err)
		}
		if first.EpochPlan(0).Abort && !clear.EpochPlan(0).Abort {
			return seed
		}
	}
	t.Fatal("no seed aborts attempt 0 and clears the retry")
	return 0
}

func TestTransientFaultRetries(t *testing.T) {
	job := smallJob(t, "ILP2", policies.MemScale)
	job.Faults = &faults.Config{
		Seed:               abortingSeed(t, 0.5, 1),
		TransientAbortRate: 0.5,
	}
	out, err := New(Options{Workers: 1}).Run(context.Background(), job)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", out.Attempts)
	}
	if out.Res.Faults.TransientAborts != 1 {
		t.Errorf("TransientAborts = %d, want 1", out.Res.Faults.TransientAborts)
	}
}

func TestTransientFaultExhaustsRetries(t *testing.T) {
	job := smallJob(t, "ILP2", policies.MemScale)
	job.Faults = &faults.Config{Seed: 3, TransientAbortRate: 1, MaxRunRetries: 2}
	_, err := New(Options{Workers: 1}).Run(context.Background(), job)
	if !errors.Is(err, faults.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient after exhausted retries", err)
	}
}

func TestInvalidFaultConfigRejected(t *testing.T) {
	job := smallJob(t, "ILP2", policies.MemScale)
	job.Faults = &faults.Config{Seed: 1, RefreshStormRate: 2}
	_, err := New(Options{Workers: 1}).Run(context.Background(), job)
	if !errors.Is(err, faults.ErrInvalidConfig) {
		t.Fatalf("err = %v, want ErrInvalidConfig", err)
	}
}

func TestRetriedRunMatchesUnabortedSchedule(t *testing.T) {
	// The epoch fault plans are attempt-independent, so a retried run
	// must land on the same result as the same schedule without the
	// abort draw (rate zeroed, same seed).
	seed := abortingSeed(t, 0.5, 1)
	withAbort := smallJob(t, "ILP2", policies.MemScale)
	withAbort.Faults = &faults.Config{
		Seed:               seed,
		RefreshStormRate:   0.4,
		RelockFailRate:     0.4,
		CounterCorruptRate: 0.3,
		ThermalRate:        0.3,
		TransientAbortRate: 0.5,
	}
	clean := withAbort
	fc := *withAbort.Faults
	fc.TransientAbortRate = 0
	clean.Faults = &fc

	eng := New(Options{Workers: 1})
	got, err := eng.Run(context.Background(), withAbort)
	if err != nil {
		t.Fatalf("retried run: %v", err)
	}
	want, err := eng.Run(context.Background(), clean)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if got.Attempts != 2 || want.Attempts != 1 {
		t.Fatalf("attempts = %d/%d, want 2/1", got.Attempts, want.Attempts)
	}
	gf, wf := got.Res.Faults, want.Res.Faults
	gf.TransientAborts = 0
	if gf != wf {
		t.Errorf("fault counts diverge: retried %+v vs clean %+v", gf, wf)
	}
	if got.Res.Memory != want.Res.Memory {
		t.Errorf("memory energy diverges: %+v vs %+v", got.Res.Memory, want.Res.Memory)
	}
	if got.Res.Duration != want.Res.Duration {
		t.Errorf("duration diverges: %v vs %v", got.Res.Duration, want.Res.Duration)
	}
}
