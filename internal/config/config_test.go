package config

import (
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Fatalf("Nanosecond = %d ps", int64(Nanosecond))
	}
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond {
		t.Fatal("time unit ladder broken")
	}
	if got := (5 * Millisecond).Seconds(); got != 0.005 {
		t.Errorf("5ms.Seconds() = %g", got)
	}
	if got := FromNanoseconds(15); got != 15*Nanosecond {
		t.Errorf("FromNanoseconds(15) = %d", int64(got))
	}
	if got := FromNanoseconds(1.2345); got != 1234*Picosecond+Picosecond {
		t.Errorf("FromNanoseconds(1.2345) = %d, want 1235", int64(got))
	}
	if got := FromSeconds(0.001); got != Millisecond {
		t.Errorf("FromSeconds(0.001) = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1250 * Picosecond, "1.25ns"},
		{300 * Microsecond, "300.00us"},
		{5 * Millisecond, "5.000ms"},
		{2 * Second, "2.0000s"},
		{-5 * Millisecond, "-5.000ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestMinMaxTime(t *testing.T) {
	if MinTime(1, 2) != 1 || MinTime(2, 1) != 1 {
		t.Error("MinTime wrong")
	}
	if MaxTime(1, 2) != 2 || MaxTime(2, 1) != 2 {
		t.Error("MaxTime wrong")
	}
}

func TestFrequencyPeriods(t *testing.T) {
	cases := []struct {
		f    FreqMHz
		want Time
	}{
		{Freq800, 1250 * Picosecond},
		{Freq400, 2500 * Picosecond},
		{Freq200, 5000 * Picosecond},
		{Freq533, 1876 * Picosecond}, // 1876.17 rounds to 1876
	}
	for _, c := range cases {
		if got := c.f.Period(); got != c.want {
			t.Errorf("%v.Period() = %d ps, want %d", c.f, int64(got), int64(c.want))
		}
	}
}

func TestPeriodRoundTripError(t *testing.T) {
	// Rounded integer periods must stay within 0.1% of the exact period.
	for _, f := range BusFrequencies {
		exact := 1e6 / float64(f) // ps
		got := float64(f.Period())
		if rel := (got - exact) / exact; rel > 0.001 || rel < -0.001 {
			t.Errorf("%v period error %.4f%%", f, rel*100)
		}
	}
}

func TestCyclesCeil(t *testing.T) {
	// 15 ns at 800 MHz (1.25 ns period) is exactly 12 cycles.
	if got := Freq800.CyclesCeil(15 * Nanosecond); got != 12 {
		t.Errorf("CyclesCeil(15ns @ 800MHz) = %d, want 12", got)
	}
	// One picosecond more must round up.
	if got := Freq800.CyclesCeil(15*Nanosecond + Picosecond); got != 13 {
		t.Errorf("CyclesCeil(15ns+1ps @ 800MHz) = %d, want 13", got)
	}
	if got := Freq800.QuantizeCeil(15*Nanosecond + Picosecond); got != Freq800.Cycles(13) {
		t.Errorf("QuantizeCeil = %v", got)
	}
	if got := Freq800.CyclesCeil(0); got != 0 {
		t.Errorf("CyclesCeil(0) = %d", got)
	}
}

func TestFrequencyLadder(t *testing.T) {
	if len(BusFrequencies) != 10 {
		t.Fatalf("ladder has %d entries, want 10", len(BusFrequencies))
	}
	if BusFrequencies[0] != MaxBusFreq {
		t.Error("first ladder entry must be the nominal frequency")
	}
	for i := 1; i < len(BusFrequencies); i++ {
		if BusFrequencies[i] >= BusFrequencies[i-1] {
			t.Error("ladder must be strictly decreasing")
		}
	}
	for _, f := range BusFrequencies {
		if !ValidBusFrequency(f) {
			t.Errorf("%v not recognized as valid", f)
		}
	}
	if ValidBusFrequency(501) {
		t.Error("501 MHz should be invalid")
	}
}

func TestNearestBusFrequency(t *testing.T) {
	cases := []struct {
		in, want FreqMHz
	}{
		{800, 800}, {790, 800}, {760, 733}, {100, 200}, {9999, 800},
		{434, 467}, // |434-467| = 33 beats |434-400| = 34
		{500, 533}, // exact tie breaks toward the higher frequency
		{567, 600}, // |567-600| = 33 beats |567-533| = 34
	}
	for _, c := range cases {
		got := NearestBusFrequency(c.in)
		if !ValidBusFrequency(got) {
			t.Errorf("NearestBusFrequency(%v) = %v is off-ladder", c.in, got)
		}
		if got != c.want {
			t.Errorf("NearestBusFrequency(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMCFreq(t *testing.T) {
	if MCFreq(Freq800) != 1600 {
		t.Errorf("MCFreq(800) = %v", MCFreq(Freq800))
	}
	if MCFreq(Freq200) != 400 {
		t.Errorf("MCFreq(200) = %v", MCFreq(Freq200))
	}
}

func TestDDR3TimingDefaults(t *testing.T) {
	tm := DefaultDDR3Timing()
	if tm.TRCD != 15*Nanosecond || tm.TRP != 15*Nanosecond || tm.TCL != 15*Nanosecond {
		t.Error("tRCD/tRP/tCL must be 15 ns")
	}
	if tm.TRAS != 35*Nanosecond {
		t.Errorf("tRAS = %v, want 35 ns (28 cycles @ 800 MHz)", tm.TRAS)
	}
	if tm.TFAW != 25*Nanosecond {
		t.Errorf("tFAW = %v, want 25 ns (20 cycles @ 800 MHz)", tm.TFAW)
	}
	if tm.RefreshInterval() != 7812500*Picosecond {
		t.Errorf("tREFI = %v, want 7.8125 us", tm.RefreshInterval())
	}
	if got := tm.BurstTime(Freq800); got != 5*Nanosecond {
		t.Errorf("burst @ 800 MHz = %v, want 5 ns", got)
	}
	if got := tm.BurstTime(Freq200); got != 20*Nanosecond {
		t.Errorf("burst @ 200 MHz = %v, want 20 ns", got)
	}
	if got := tm.MCTime(Freq800); got != 3125*Picosecond {
		t.Errorf("MC time @ 800 MHz = %v, want 3.125 ns", got)
	}
	// MC latency must grow as the bus slows.
	if tm.MCTime(Freq200) <= tm.MCTime(Freq800) {
		t.Error("MC latency must increase at lower frequency")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.TotalRanks() != 16 {
		t.Errorf("TotalRanks = %d, want 16", c.TotalRanks())
	}
	if c.TotalDIMMs() != 8 {
		t.Errorf("TotalDIMMs = %d, want 8", c.TotalDIMMs())
	}
	if c.TotalBanks() != 128 {
		t.Errorf("TotalBanks = %d, want 128", c.TotalBanks())
	}
	if c.LinesPerRow() != 128 {
		t.Errorf("LinesPerRow = %d, want 128", c.LinesPerRow())
	}
}

func TestConfigValidateRejections(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.CPUFreqMHz = 0 },
		func(c *Config) { c.Channels = -1 },
		func(c *Config) { c.DIMMsPerChannel = 0 },
		func(c *Config) { c.BanksPerRank = 0 },
		func(c *Config) { c.RowBytes = 32 },
		func(c *Config) { c.RowsPerBank = 0 },
		func(c *Config) { c.MemPowerFraction = 0 },
		func(c *Config) { c.MemPowerFraction = 1 },
		func(c *Config) { c.Policy.EpochLength = 0 },
		func(c *Config) { c.Policy.ProfilingLength = 10 * Millisecond },
		func(c *Config) { c.WritebackQueueCap = 0 },
		func(c *Config) { c.DecoupledDevFreq = 123 },
	}
	for i, mutate := range mutations {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestCPUCycleConversion(t *testing.T) {
	c := Default()
	// 4 GHz -> 0.25 ns per cycle.
	if got := c.CPUCyclesToTime(4); got != Nanosecond {
		t.Errorf("4 CPU cycles = %v, want 1 ns", got)
	}
	if got := c.TimeToCPUCycles(Nanosecond); got != 4 {
		t.Errorf("1 ns = %g CPU cycles, want 4", got)
	}
}

func TestAddressMapperRoundTrip(t *testing.T) {
	c := Default()
	m := NewAddressMapper(&c)
	f := func(line uint64) bool {
		line %= m.Lines()
		loc := m.Map(line)
		if loc.Channel < 0 || loc.Channel >= c.Channels ||
			loc.Rank < 0 || loc.Rank >= c.RanksPerChannel() ||
			loc.Bank < 0 || loc.Bank >= c.BanksPerRank ||
			loc.Row < 0 || loc.Row >= c.RowsPerBank ||
			loc.Col < 0 || loc.Col >= c.LinesPerRow() {
			return false
		}
		return m.Unmap(loc) == line
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAddressMapperInterleaving(t *testing.T) {
	c := Default()
	m := NewAddressMapper(&c)
	// Consecutive lines must interleave channels.
	for i := 0; i < 8; i++ {
		if got := m.Map(uint64(i)).Channel; got != i%c.Channels {
			t.Errorf("line %d on channel %d, want %d", i, got, i%c.Channels)
		}
	}
	// Lines with stride = Channels stay in one channel and one row
	// until the row is exhausted.
	first := m.Map(0)
	for i := 1; i < c.LinesPerRow(); i++ {
		loc := m.Map(uint64(i * c.Channels))
		if loc.Channel != first.Channel || loc.Row != first.Row ||
			loc.Bank != first.Bank || loc.Rank != first.Rank {
			t.Fatalf("line %d left the row: %+v vs %+v", i*c.Channels, loc, first)
		}
		if loc.Col != i {
			t.Fatalf("line %d has col %d, want %d", i*c.Channels, loc.Col, i)
		}
	}
	// The next line after the row moves to the next bank.
	next := m.Map(uint64(c.LinesPerRow() * c.Channels))
	if next.Bank == first.Bank && next.Rank == first.Rank && next.Row == first.Row {
		t.Error("row boundary did not advance bank")
	}
}

func TestLineForRow(t *testing.T) {
	c := Default()
	m := NewAddressMapper(&c)
	line := m.LineForRow(2, 1, 5, 1000, 17)
	loc := m.Map(line)
	want := Location{Channel: 2, Rank: 1, Bank: 5, Row: 1000, Col: 17}
	if loc != want {
		t.Errorf("LineForRow round trip: got %+v, want %+v", loc, want)
	}
}

func TestPowerdownModeString(t *testing.T) {
	if PowerdownNone.String() != "none" || PowerdownFast.String() != "fast-pd" ||
		PowerdownSlow.String() != "slow-pd" {
		t.Error("powerdown mode names wrong")
	}
	if PowerdownMode(42).String() == "" {
		t.Error("unknown mode must still render")
	}
}
