package memscale

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"regexp"
	"strings"
	"testing"
)

// goldenConfigs are the five pinned determinism cases from
// TestGoldenDeterminism — including the fault-injected one, which
// exercises relock stalls, refresh storms, thermal caps, and degraded
// bookkeeping across the checkpoint boundary.
func goldenConfigs() []RunConfig {
	return []RunConfig{
		{Mix: "MEM1", Policy: "MemScale", Epochs: 2},
		{Mix: "ILP1", Policy: "Static", Epochs: 2},
		{Mix: "MID2", Policy: "MemScale + Fast-PD", Epochs: 2},
		{Mix: "MID3", Policy: "Slow-PD", Epochs: 2},
		{Mix: "MID1", Policy: "MemScale", Epochs: 4, Faults: &FaultConfig{
			Seed:               42,
			RefreshStormRate:   0.5,
			RelockFailRate:     0.5,
			CounterCorruptRate: 0.3,
			ThermalRate:        0.3,
		}},
	}
}

// sameBits asserts two summaries are Float64bits-identical in every
// numeric field a paired run reports.
func sameBits(t *testing.T, label string, cold, got RunSummary) {
	t.Helper()
	check := func(name string, a, b float64) {
		t.Helper()
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Errorf("%s: %s = %v (%#x), cold run had %v (%#x)",
				label, name, b, math.Float64bits(b), a, math.Float64bits(a))
		}
	}
	check("DurationSeconds", cold.DurationSeconds, got.DurationSeconds)
	check("MemoryEnergyJ", cold.MemoryEnergyJ, got.MemoryEnergyJ)
	check("SystemEnergyJ", cold.SystemEnergyJ, got.SystemEnergyJ)
	check("MemorySavings", cold.MemorySavings, got.MemorySavings)
	check("SystemSavings", cold.SystemSavings, got.SystemSavings)
	check("AvgCPIIncrease", cold.AvgCPIIncrease, got.AvgCPIIncrease)
	check("WorstCPIIncrease", cold.WorstCPIIncrease, got.WorstCPIIncrease)
	if len(got.FreqSeconds) != len(cold.FreqSeconds) {
		t.Errorf("%s: FreqSeconds has %d entries, cold run had %d",
			label, len(got.FreqSeconds), len(cold.FreqSeconds))
	}
	for f, v := range cold.FreqSeconds {
		check(fmt.Sprintf("FreqSeconds[%d]", f), v, got.FreqSeconds[f])
	}
	if len(got.FaultCounts) != len(cold.FaultCounts) {
		t.Errorf("%s: FaultCounts = %v, cold run had %v", label, got.FaultCounts, cold.FaultCounts)
	}
	for k, v := range cold.FaultCounts {
		if got.FaultCounts[k] != v {
			t.Errorf("%s: FaultCounts[%s] = %d, cold run had %d", label, k, got.FaultCounts[k], v)
		}
	}
	if got.DegradedEpochs != cold.DegradedEpochs {
		t.Errorf("%s: DegradedEpochs = %d, cold run had %d", label, got.DegradedEpochs, cold.DegradedEpochs)
	}
	if got.Attempts != cold.Attempts {
		t.Errorf("%s: Attempts = %d, cold run had %d", label, got.Attempts, cold.Attempts)
	}
	if got.Events != cold.Events {
		t.Errorf("%s: Events = %d, cold run had %d", label, got.Events, cold.Events)
	}
}

// TestForkEquivalence is the checkpoint subsystem's core property: for
// every golden config, snapshotting mid-run and resuming through the
// serialized container reproduces the cold run bit for bit — energies,
// CPI increases, residencies, fault counts, and the fired-event total.
func TestForkEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, rc := range goldenConfigs() {
		rc := rc
		t.Run(rc.Mix+"/"+rc.Policy, func(t *testing.T) {
			t.Parallel()
			cold, err := RunContext(ctx, rc)
			if err != nil {
				t.Fatal(err)
			}

			// Snapshot at the midpoint; the checkpointed run itself must
			// already match the cold run (StepEpoch driving and the Save
			// call must not perturb the event sequence).
			at := rc.Epochs / 2
			var buf bytes.Buffer
			ckSum, err := CheckpointRun(ctx, rc, at, &buf)
			if err != nil {
				t.Fatal(err)
			}
			sameBits(t, "checkpointed run", cold, ckSum)

			// Resume from the serialized container to the full length.
			resumed, err := ResumeRun(ctx, bytes.NewReader(buf.Bytes()), rc.Epochs)
			if err != nil {
				t.Fatal(err)
			}
			sameBits(t, "resumed run", cold, resumed)
		})
	}
}

// TestCheckpointRoundTrip covers the container format edges: final-
// epoch checkpoints resume with more epochs, and the typed failure
// modes surface as documented.
func TestCheckpointRoundTrip(t *testing.T) {
	ctx := context.Background()
	rc := RunConfig{Mix: "MID1", Policy: "MemScale", Epochs: 2, Cores: 4, Channels: 2}

	var buf bytes.Buffer
	if _, err := CheckpointRun(ctx, rc, 0, &buf); err != nil {
		t.Fatal(err)
	}

	// Extending the run from its final epoch must match the cold run of
	// the longer horizon bit for bit.
	long := rc
	long.Epochs = 4
	cold, err := RunContext(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeRun(ctx, bytes.NewReader(buf.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "extended run", cold, resumed)

	t.Run("cross-shard restore", func(t *testing.T) {
		// The shard count is an execution strategy, not checkpointed
		// state: a container written under the 4-shard engine restores
		// serially (and vice versa) bit-identically to the cold serial
		// run, because Save merges the shard queues into the canonical
		// serial order and Load re-partitions it.
		prc := RunConfig{Mix: "MEM1", Policy: "MemScale", Epochs: 2, Cores: 4, Partitioned: true}
		long := prc
		long.Epochs = 4
		cold, err := RunContext(ctx, long)
		if err != nil {
			t.Fatal(err)
		}

		sharded := prc
		sharded.Shards = 4
		var b4 bytes.Buffer
		if _, err := CheckpointRun(ctx, sharded, 0, &b4); err != nil {
			t.Fatal(err)
		}
		res, err := ResumeRun(ctx, bytes.NewReader(b4.Bytes()), 4)
		if err != nil {
			t.Fatal(err)
		}
		sameBits(t, "shards=4 container restored serially", cold, res)

		var b0 bytes.Buffer
		if _, err := CheckpointRun(ctx, prc, 0, &b0); err != nil {
			t.Fatal(err)
		}
		res4, err := ResumeRunShards(ctx, bytes.NewReader(b0.Bytes()), 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		sameBits(t, "serial container restored at 4 shards", cold, res4)
	})
	t.Run("epochs not beyond snapshot", func(t *testing.T) {
		_, err := ResumeRun(ctx, bytes.NewReader(buf.Bytes()), 2)
		if !errors.Is(err, ErrInvalidConfig) || !strings.Contains(err.Error(), "resume.epochs") {
			t.Fatalf("err = %v, want ErrInvalidConfig naming resume.epochs", err)
		}
	})
	t.Run("at_epoch out of range", func(t *testing.T) {
		var sink bytes.Buffer
		_, err := CheckpointRun(ctx, rc, 99, &sink)
		if !errors.Is(err, ErrInvalidConfig) || !strings.Contains(err.Error(), "checkpoint.at_epoch") {
			t.Fatalf("err = %v, want ErrInvalidConfig naming checkpoint.at_epoch", err)
		}
	})
	t.Run("corrupt container", func(t *testing.T) {
		_, err := ResumeRun(ctx, strings.NewReader("not a checkpoint\n"), 4)
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
		}
	})
	t.Run("mismatched state", func(t *testing.T) {
		// Hand-edit the container's geometry: the state no longer fits
		// the configuration it claims to pair with. The payload CRC is
		// recomputed so the edit reaches state validation rather than
		// tripping the integrity check.
		tampered := bytes.Replace(buf.Bytes(), []byte(`"Cores":4`), []byte(`"Cores":8`), 1)
		if bytes.Equal(tampered, buf.Bytes()) {
			t.Fatal("tamper target not found in container")
		}
		nl := bytes.IndexByte(tampered, '\n')
		if nl < 0 {
			t.Fatal("container has no header line")
		}
		sum := crc32.ChecksumIEEE(bytes.TrimSpace(tampered[nl+1:]))
		re := regexp.MustCompile(`"payload_crc32":\d+`)
		header := re.ReplaceAll(tampered[:nl], []byte(fmt.Sprintf(`"payload_crc32":%d`, sum)))
		if bytes.Equal(header, tampered[:nl]) {
			t.Fatal("payload_crc32 field not found in header")
		}
		tampered = append(append(header, '\n'), tampered[nl+1:]...)
		_, err := ResumeRun(ctx, bytes.NewReader(tampered), 4)
		if !errors.Is(err, ErrInvalidConfig) {
			t.Fatalf("err = %v, want ErrInvalidConfig for mismatched state", err)
		}
	})
}

// TestWarmStartSweep exercises the forked warm-start path end to end:
// a gamma sweep over one mix forks every variant from one shared
// unmanaged prefix, produces valid summaries, and is itself
// deterministic (two warm sweeps agree bit for bit).
func TestWarmStartSweep(t *testing.T) {
	ctx := context.Background()
	runs := []RunConfig{
		{Mix: "MID1", Policy: "MemScale", Epochs: 2, Gamma: 0.05, Cores: 4, Channels: 2},
		{Mix: "MID1", Policy: "MemScale", Epochs: 2, Gamma: 0.10, Cores: 4, Channels: 2},
		{Mix: "MID1", Policy: "Static", Epochs: 2, Cores: 4, Channels: 2},
	}
	sc := SweepConfig{Runs: runs, WarmStart: &WarmStartConfig{PrefixEpochs: 1}}
	sums, err := Sweep(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sums {
		if s.DurationSeconds <= 0 || s.Events == 0 {
			t.Errorf("run %d: degenerate warm-started summary %+v", i, s)
		}
	}
	again, err := Sweep(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sums {
		sameBits(t, fmt.Sprintf("warm sweep run %d re-run", i), sums[i], again[i])
	}

	t.Run("prefix must fit", func(t *testing.T) {
		_, err := Sweep(ctx, SweepConfig{Runs: runs, WarmStart: &WarmStartConfig{PrefixEpochs: 2}})
		if !errors.Is(err, ErrInvalidConfig) || !strings.Contains(err.Error(), "warm_start.prefix_epochs") {
			t.Fatalf("err = %v, want ErrInvalidConfig naming warm_start.prefix_epochs", err)
		}
	})
	t.Run("prefix must be positive", func(t *testing.T) {
		_, err := Sweep(ctx, SweepConfig{Runs: runs, WarmStart: &WarmStartConfig{}})
		if !errors.Is(err, ErrInvalidConfig) || !strings.Contains(err.Error(), "warm_start.prefix_epochs") {
			t.Fatalf("err = %v, want ErrInvalidConfig naming warm_start.prefix_epochs", err)
		}
	})
	t.Run("empty mix is a zero group key", func(t *testing.T) {
		bad := []RunConfig{{Policy: "MemScale", Epochs: 2}}
		_, err := Sweep(ctx, SweepConfig{Runs: bad, WarmStart: &WarmStartConfig{PrefixEpochs: 1}})
		if !errors.Is(err, ErrInvalidConfig) || !strings.Contains(err.Error(), "zero warm-up group key") {
			t.Fatalf("err = %v, want ErrInvalidConfig naming the zero group key", err)
		}
	})
}

// TestResumeRunCorruptReaders drives ResumeRun through every malformed
// container shape a crash can leave on disk — truncated mid-payload,
// header-only, bit-flipped payload bytes — asserting the typed failure
// contract: ErrCorruptCheckpoint or a *CheckpointSchemaVersionError,
// never a panic, never a silent success.
func TestResumeRunCorruptReaders(t *testing.T) {
	ctx := context.Background()
	rc := RunConfig{Mix: "MID1", Policy: "MemScale", Epochs: 2, Cores: 4, Channels: 2}
	var buf bytes.Buffer
	if _, err := CheckpointRun(ctx, rc, 0, &buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	headerEnd := bytes.IndexByte(data, '\n')
	if headerEnd < 0 {
		t.Fatal("container has no header line")
	}

	t.Run("truncated payload", func(t *testing.T) {
		for _, cut := range []int{headerEnd + 1, headerEnd + 10, len(data) / 2} {
			_, err := ResumeRun(ctx, bytes.NewReader(data[:cut]), 4)
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Errorf("cut at %d: err = %v, want ErrCorruptCheckpoint", cut, err)
			}
		}
	})
	t.Run("header only", func(t *testing.T) {
		_, err := ResumeRun(ctx, bytes.NewReader(data[:headerEnd]), 4)
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
		}
	})
	t.Run("bit flip in payload", func(t *testing.T) {
		// Flip one bit mid-payload: either the JSON still parses and the
		// CRC catches the flip, or the JSON breaks — both must surface
		// ErrCorruptCheckpoint.
		flipped := append([]byte(nil), data...)
		flipped[headerEnd+(len(data)-headerEnd)/2] ^= 0x01
		_, err := ResumeRun(ctx, bytes.NewReader(flipped), 4)
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
		}
	})
	t.Run("foreign major version", func(t *testing.T) {
		bumped := bytes.Replace(data, []byte(`"schema_version":"1.`), []byte(`"schema_version":"9.`), 1)
		if bytes.Equal(bumped, data) {
			t.Fatal("schema_version not found in header")
		}
		_, err := ResumeRun(ctx, bytes.NewReader(bumped), 4)
		var sv *CheckpointSchemaVersionError
		if !errors.As(err, &sv) {
			t.Fatalf("err = %v, want *CheckpointSchemaVersionError", err)
		}
	})
	t.Run("empty reader", func(t *testing.T) {
		_, err := ResumeRun(ctx, strings.NewReader(""), 4)
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
		}
	})
}

// TestCheckpointRunInterruptible: a pre-fired stop channel halts the
// run at its first epoch boundary with ErrInterrupted, the container
// written at the stop boundary resumes, and the resumed total is
// bit-identical to the cold uninterrupted run — the single-run face of
// the fleet's transparent-recovery contract.
func TestCheckpointRunInterruptible(t *testing.T) {
	ctx := context.Background()
	rc := RunConfig{Mix: "MID1", Policy: "MemScale", Epochs: 3, Cores: 4, Channels: 2}

	stop := make(chan struct{})
	close(stop)
	var buf bytes.Buffer
	_, err := CheckpointRunInterruptible(ctx, rc, 0, stop, &buf)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if buf.Len() == 0 {
		t.Fatal("no checkpoint written on interrupt")
	}

	cold, err := RunContext(ctx, rc)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeRun(ctx, bytes.NewReader(buf.Bytes()), rc.Epochs)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "interrupt-resumed run", cold, resumed)

	// A nil stop channel must behave exactly like CheckpointRun.
	var full bytes.Buffer
	sum, err := CheckpointRunInterruptible(ctx, rc, 0, nil, &full)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "uninterrupted run", cold, sum)
}
