package sim

import (
	"math"
	"reflect"
	"testing"

	"memscale/internal/config"
	"memscale/internal/faults"
	"memscale/internal/trace"
)

// FuzzCoalescedPathEquivalence interleaves fast-path (quiet, forced
// dispatch) and contended request patterns with refresh storms from
// the fault plane, and checks the coalescing contract on every input:
// the run must not panic, and the coalesced run must be equivalent to
// the pure event-driven run request for request — identical MC
// counters (every request saw the same bank state, queue depth, and
// row-buffer outcome), identical per-core CPI, energy, and residency.
//
// The fuzzed bytes steer the workload shape (miss rates, locality,
// phase lengths), the powerdown mode, and the storm schedule; the
// trace generator's own validation rejects out-of-range rates, so the
// clamps below only keep the inputs in interesting territory.
func FuzzCoalescedPathEquivalence(f *testing.F) {
	f.Add(uint64(1), 30.0, 0.2, 8.0, 0.7, uint8(0), uint8(1))
	f.Add(uint64(42), 55.0, 0.0, 20.0, 0.2, uint8(1), uint8(3))
	f.Add(uint64(7), 5.0, 4.9, 0.1, 0.95, uint8(2), uint8(0))

	f.Fuzz(func(t *testing.T, seed uint64, burstMPKI, idleMPKI, wbFrac, rowLoc float64,
		pdMode, storms uint8) {

		clamp := func(v, lo, hi float64) float64 {
			if math.IsNaN(v) || v < lo {
				return lo
			}
			if v > hi {
				return hi
			}
			return v
		}
		burstMPKI = clamp(burstMPKI, 1, 80)
		idleMPKI = clamp(idleMPKI, 0.01, 5)
		rowLoc = clamp(rowLoc, 0, 0.99) // RowLocality lives in [0,1)
		wbFrac = clamp(wbFrac, 0, 1)

		cfg := config.Default()
		cfg.Cores = 2
		cfg.Policy.EpochLength = 2 * config.Millisecond
		cfg.Powerdown = []config.PowerdownMode{
			config.PowerdownNone, config.PowerdownFast, config.PowerdownSlow,
		}[int(pdMode)%3]

		profile := trace.Profile{Name: "fuzz", Phases: []trace.Phase{
			{Instructions: 10_000 + seed%50_000, BaseCPI: 1, MPKI: burstMPKI,
				WPKI: burstMPKI * wbFrac, RowLocality: rowLoc},
			{Instructions: 40_000, BaseCPI: 0.7, MPKI: idleMPKI,
				WPKI: idleMPKI * wbFrac, RowLocality: rowLoc},
			{BaseCPI: 1, MPKI: burstMPKI / 2, WPKI: burstMPKI / 2 * wbFrac,
				RowLocality: 0.99 - rowLoc},
		}}
		profiles := make([]trace.Profile, cfg.Cores)
		for i := range profiles {
			profiles[i] = profile
		}

		// A storm schedule that actually fires inside two epochs: the
		// fuzzed byte picks burst depth, the rate is pinned high.
		fc := faults.Config{
			Seed:               seed,
			RefreshStormRate:   1,
			RefreshStormBursts: 1 + int(storms)%4,
		}

		run := func(disable bool) (Result, interface{}) {
			inj, err := faults.New(fc, 0)
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(cfg, buildStreams(t, &cfg, profiles, seed), Options{
				Governor:          &ladderGovernor{},
				Faults:            inj,
				DisableCoalescing: disable,
			})
			if err != nil {
				t.Fatal(err)
			}
			res := s.RunFor(2 * cfg.Policy.EpochLength)
			return res, s.MC.Counters()
		}

		coalesced, fastCtr := run(false)
		eventDriven, slowCtr := run(true)

		requireSameResult(t, coalesced, eventDriven)
		if !reflect.DeepEqual(fastCtr, slowCtr) {
			t.Errorf("MC counters diverged:\ncoalesced:    %+v\nevent-driven: %+v",
				fastCtr, slowCtr)
		}
		if coalesced.Faults != eventDriven.Faults {
			t.Errorf("fault counts diverged: %+v != %+v",
				coalesced.Faults, eventDriven.Faults)
		}
		if coalesced.Events > eventDriven.Events {
			t.Errorf("coalesced run fired %d events, more than event-driven %d",
				coalesced.Events, eventDriven.Events)
		}
	})
}
