// Package fleet scales the single-node MemScale simulation to a
// cluster: N nodes, each a full discrete-event run, driven by
// open-loop arrival processes and coordinated by a FastCap-style
// cluster power capper that redistributes a global memory-power
// budget every fleet epoch (DESIGN.md §4h).
package fleet

import (
	"fmt"
	"math"

	"memscale/internal/trace"
)

// ArrivalKind names an open-loop arrival process shape.
type ArrivalKind string

// The supported arrival processes. Every node derives its per-epoch
// request-rate profile from per-user rates: the nominal offered load
// is UsersPerNode x RequestsPerUserHz, and each epoch's realized load
// is expressed as an intensity multiplier relative to that nominal,
// which scales the node's effective memory pressure (trace
// SetIntensity).
const (
	// ArrivalSteady offers exactly the nominal load every epoch
	// (multiplier 1.0, bit-identical to an undriven node).
	ArrivalSteady ArrivalKind = "steady"

	// ArrivalPoisson draws each epoch's request count from a Poisson
	// process at the nominal rate; relative fluctuation shrinks as
	// UsersPerNode grows, exactly like real aggregated user traffic.
	ArrivalPoisson ArrivalKind = "poisson"

	// ArrivalBursty is a two-state Markov-modulated Poisson process:
	// nodes flip between the nominal rate and BurstFactor times it,
	// with geometric burst durations.
	ArrivalBursty ArrivalKind = "bursty"

	// ArrivalDiurnal modulates the Poisson rate by a sinusoid of
	// amplitude DiurnalAmplitude over DiurnalPeriodEpochs, with a
	// deterministic per-node phase offset (nodes in different
	// "timezones" peak at different epochs).
	ArrivalDiurnal ArrivalKind = "diurnal"
)

// ArrivalSpec configures one group's arrival process. The zero value
// selects a steady nominal load.
type ArrivalSpec struct {
	Kind ArrivalKind

	// UsersPerNode and RequestsPerUserHz set the nominal offered load
	// (defaults 1000 users x 20 req/s). They matter in ratio terms:
	// the product fixes the Poisson rate whose relative noise drives
	// the intensity multipliers.
	UsersPerNode      float64
	RequestsPerUserHz float64

	// BurstFactor is the bursty-state rate multiplier (default 4);
	// BurstProbability the per-epoch chance of entering a burst
	// (default 0.05); BurstMeanEpochs the mean burst length
	// (default 5).
	BurstFactor      float64
	BurstProbability float64
	BurstMeanEpochs  float64

	// DiurnalAmplitude is the sinusoid's relative amplitude in [0, 1)
	// (default 0.6); DiurnalPeriodEpochs its period (default: the
	// fleet horizon, one full "day" per run).
	DiurnalAmplitude    float64
	DiurnalPeriodEpochs int
}

func (a ArrivalSpec) withDefaults(horizon int) ArrivalSpec {
	if a.Kind == "" {
		a.Kind = ArrivalSteady
	}
	if a.UsersPerNode == 0 {
		a.UsersPerNode = 1000
	}
	if a.RequestsPerUserHz == 0 {
		a.RequestsPerUserHz = 20
	}
	if a.BurstFactor == 0 {
		a.BurstFactor = 4
	}
	if a.BurstProbability == 0 {
		a.BurstProbability = 0.05
	}
	if a.BurstMeanEpochs == 0 {
		a.BurstMeanEpochs = 5
	}
	if a.DiurnalAmplitude == 0 {
		a.DiurnalAmplitude = 0.6
	}
	if a.DiurnalPeriodEpochs == 0 {
		a.DiurnalPeriodEpochs = horizon
	}
	return a
}

// Validate rejects a degenerate arrival process. Failures name the
// offending field in snake_case (burst_probability, ...), matching the
// public API's field-path convention.
func (a ArrivalSpec) Validate() error {
	switch a.Kind {
	case "", ArrivalSteady, ArrivalPoisson, ArrivalBursty, ArrivalDiurnal:
	default:
		return fmt.Errorf("kind: unknown arrival kind %q", a.Kind)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"users_per_node", a.UsersPerNode},
		{"requests_per_user_hz", a.RequestsPerUserHz},
		{"burst_factor", a.BurstFactor},
		{"burst_probability", a.BurstProbability},
		{"burst_mean_epochs", a.BurstMeanEpochs},
		{"diurnal_amplitude", a.DiurnalAmplitude},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return fmt.Errorf("%s: must be finite and >= 0, got %g", f.name, f.v)
		}
	}
	if a.BurstProbability > 1 {
		return fmt.Errorf("burst_probability: must be in [0, 1], got %g", a.BurstProbability)
	}
	if a.DiurnalAmplitude >= 1 {
		return fmt.Errorf("diurnal_amplitude: must be in [0, 1), got %g", a.DiurnalAmplitude)
	}
	if a.DiurnalPeriodEpochs < 0 {
		return fmt.Errorf("diurnal_period_epochs: must be >= 0, got %d", a.DiurnalPeriodEpochs)
	}
	return nil
}

// Intensity multipliers are clamped to keep the scaled miss rate
// inside the trace generator's sane range: a zero-request epoch still
// simulates a trickle, and a pathological burst cannot drive the mean
// gap to zero.
const (
	minIntensity = 0.05
	maxIntensity = 20.0
)

// schedule precomputes the node's per-epoch intensity multipliers.
// The sequence is a pure function of (seed, node, epochs) — workers,
// wall clock, and sibling nodes never influence it — and the steady
// kind returns exact 1.0 entries so an undriven fleet is bit-identical
// to plain paired runs.
func (a ArrivalSpec) schedule(seed uint64, node, epochs int, epochSeconds float64) []float64 {
	out := make([]float64, epochs)
	if a.Kind == ArrivalSteady {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	rng := trace.NewRNG(trace.Seed("fleet-arrival", int(seed), node))
	lambda := a.UsersPerNode * a.RequestsPerUserHz * epochSeconds

	// Per-node diurnal phase: a fixed fraction of the period, so the
	// fleet's load peaks are staggered deterministically.
	phase := rng.Float64() * float64(a.DiurnalPeriodEpochs)

	bursting := false
	for i := range out {
		rate := 1.0
		switch a.Kind {
		case ArrivalBursty:
			if bursting {
				// Geometric burst duration with mean BurstMeanEpochs.
				if rng.Float64() < 1/a.BurstMeanEpochs {
					bursting = false
				}
			} else if rng.Float64() < a.BurstProbability {
				bursting = true
			}
			if bursting {
				rate = a.BurstFactor
			}
		case ArrivalDiurnal:
			rate = 1 + a.DiurnalAmplitude*
				math.Sin(2*math.Pi*(float64(i)+phase)/float64(a.DiurnalPeriodEpochs))
		}
		// Realized intensity = Poisson noise around the modulated rate,
		// expressed relative to the nominal rate.
		out[i] = clampIntensity(poissonIntensity(rng, lambda*rate) * rate)
	}
	return out
}

// poissonIntensity draws a Poisson count at the given rate and
// normalizes it back to a multiplier of the rate (mean 1, variance
// 1/rate). Degenerate rates yield exactly 1.
func poissonIntensity(rng *trace.RNG, lambda float64) float64 {
	if lambda <= 0 || math.IsInf(lambda, 0) {
		return 1
	}
	return poisson(rng, lambda) / lambda
}

// poisson samples a Poisson(lambda) count: Knuth's product method for
// small rates, a normal approximation (Box-Muller) beyond it. Both
// paths consume rng deterministically.
func poisson(rng *trace.RNG, lambda float64) float64 {
	if lambda < 64 {
		l := math.Exp(-lambda)
		k, p := 0, 1.0
		for p > l {
			k++
			p *= rng.Float64()
		}
		return float64(k - 1)
	}
	// Box-Muller normal approximation: N(lambda, lambda).
	u1 := rng.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := rng.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	n := math.Round(lambda + z*math.Sqrt(lambda))
	if n < 0 {
		n = 0
	}
	return n
}

func clampIntensity(m float64) float64 {
	switch {
	case math.IsNaN(m), m < minIntensity:
		return minIntensity
	case m > maxIntensity:
		return maxIntensity
	}
	return m
}
