package memscale

import (
	"fmt"
	"math"
	"testing"
)

// TestGoldenDeterminism pins bit-exact RunSummary values captured on
// the pre-rewrite event core (container/heap queue, closure handlers,
// slice-based controller queues). The pooled flat-heap core, the
// ring-buffer controller queues, and the pre-bound callbacks must
// reproduce every energy total, CPI ratio, frequency residency, and
// fault count to the last bit — the rewrite is a pure mechanical
// optimization with no behavioural freedom.
//
// The fault-injected case matters most: it exercises relock stalls,
// refresh storms, thermal ceilings, and degraded-epoch bookkeeping on
// top of the hot path.
func TestGoldenDeterminism(t *testing.T) {
	type golden struct {
		rc       RunConfig
		mem      uint64 // Float64bits of MemoryEnergyJ
		sys      uint64 // Float64bits of SystemEnergyJ
		avg      uint64 // Float64bits of AvgCPIIncrease
		worst    uint64 // Float64bits of WorstCPIIncrease
		dur      uint64 // Float64bits of DurationSeconds
		freqs    map[int]uint64
		faults   map[string]uint64
		degraded uint64
	}
	cases := []golden{
		{
			rc:  RunConfig{Mix: "MEM1", Policy: "MemScale", Epochs: 2},
			mem: 0x3fe2a56c39969cb4, sys: 0x3ff64100fc8c0392,
			avg: 0x3fadac19239699a0, worst: 0x3faf515354537280,
			dur: 0x3f847ae147ae147b,
			freqs: map[int]uint64{
				667: 0x3f747ae147ae147b,
				733: 0x3f73404ea4a8c155,
				800: 0x3f33a92a30553261,
			},
		},
		{
			rc:  RunConfig{Mix: "ILP1", Policy: "Static", Epochs: 2},
			mem: 0x3fc97dabc0462ab5, sys: 0x3fe29eae20c06da2,
			avg: 0x3f8eb9c1ef33df40, worst: 0x3f9b937cab60ee80,
			dur: 0x3f847ae147ae147b,
			freqs: map[int]uint64{
				467: 0x3f83dd97f62b6ae8,
				800: 0x3f33a92a30553261,
			},
		},
		{
			rc:  RunConfig{Mix: "MID2", Policy: "MemScale + Fast-PD", Epochs: 2},
			mem: 0x3fd36b4cbfdefaf5, sys: 0x3fea7f689761af20,
			avg: 0x3fbb5a283b7c7124, worst: 0x3fc1dee22f885048,
			dur: 0x3f847ae147ae147b,
			freqs: map[int]uint64{
				467: 0x3f83dd97f62b6ae8,
				800: 0x3f33a92a30553261,
			},
		},
		{
			rc:  RunConfig{Mix: "MID3", Policy: "Slow-PD", Epochs: 2},
			mem: 0x3fd68e65693298a3, sys: 0x3fea7ac6c33d3b5a,
			avg: 0x3fb75d475b99c25c, worst: 0x3fb97b1e317bee60,
			dur: 0x3f847ae147ae147b,
			freqs: map[int]uint64{
				800: 0x3f847ae147ae147b,
			},
		},
		{
			rc: RunConfig{Mix: "MID1", Policy: "MemScale", Epochs: 4, Faults: &FaultConfig{
				Seed:               42,
				RefreshStormRate:   0.5,
				RelockFailRate:     0.5,
				CounterCorruptRate: 0.3,
				ThermalRate:        0.3,
			}},
			mem: 0x3fe1bbd88c31fea6, sys: 0x3ff811fab435f0a0,
			avg: 0x3fa6ffe2fc200b48, worst: 0x3fade661d21bc720,
			dur: 0x3f947ae147ae147b,
			freqs: map[int]uint64{
				333: 0x3f83dd97f62b6ae8,
				400: 0x3f747ae147ae147b,
				800: 0x3f75b573eab367a1,
			},
			faults: map[string]uint64{
				"degraded_epochs":   3,
				"refresh_storm":     2,
				"relock_failure":    1,
				"thermal_emergency": 2,
			},
			degraded: 3,
		},
	}
	for _, g := range cases {
		g := g
		t.Run(g.rc.Mix+"/"+g.rc.Policy, func(t *testing.T) {
			t.Parallel()
			sum, err := Run(g.rc)
			if err != nil {
				t.Fatal(err)
			}
			check := func(name string, got float64, want uint64) {
				if math.Float64bits(got) != want {
					t.Errorf("%s = %v (%#x), want bits %#x", name, got, math.Float64bits(got), want)
				}
			}
			check("MemoryEnergyJ", sum.MemoryEnergyJ, g.mem)
			check("SystemEnergyJ", sum.SystemEnergyJ, g.sys)
			check("AvgCPIIncrease", sum.AvgCPIIncrease, g.avg)
			check("WorstCPIIncrease", sum.WorstCPIIncrease, g.worst)
			check("DurationSeconds", sum.DurationSeconds, g.dur)
			if len(sum.FreqSeconds) != len(g.freqs) {
				t.Errorf("FreqSeconds has %d entries, want %d: %v", len(sum.FreqSeconds), len(g.freqs), sum.FreqSeconds)
			}
			for f, want := range g.freqs {
				check(fmt.Sprintf("FreqSeconds[%d]", f), sum.FreqSeconds[f], want)
			}
			if g.faults != nil {
				for k, want := range g.faults {
					if sum.FaultCounts[k] != want {
						t.Errorf("FaultCounts[%s] = %d, want %d", k, sum.FaultCounts[k], want)
					}
				}
				if len(sum.FaultCounts) != len(g.faults) {
					t.Errorf("FaultCounts = %v, want exactly %v", sum.FaultCounts, g.faults)
				}
			}
			if sum.DegradedEpochs != g.degraded {
				t.Errorf("DegradedEpochs = %d, want %d", sum.DegradedEpochs, g.degraded)
			}
			if sum.Events == 0 {
				t.Error("Events = 0; the fired-event count must be exported")
			}
			if sum.InvariantChecks == 0 {
				t.Error("InvariantChecks = 0; the runtime invariant plane must be active on golden configs")
			}
		})
	}
}
