package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachIndexedResults(t *testing.T) {
	got := make([]int, 100)
	errs := ForEach(context.Background(), 8, len(got), func(_ context.Context, i int) error {
		got[i] = i * i
		if i%7 == 3 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	}, nil)
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
		if (i%7 == 3) != (errs[i] != nil) {
			t.Errorf("slot %d err = %v", i, errs[i])
		}
	}
}

func TestForEachPanicIsolation(t *testing.T) {
	errs := ForEach(context.Background(), 4, 10, func(_ context.Context, i int) error {
		if i == 5 {
			panic("poisoned item")
		}
		return nil
	}, nil)
	for i, err := range errs {
		if i == 5 {
			var pe *PanicError
			if !errors.As(err, &pe) || !errors.Is(err, ErrRunPanicked) {
				t.Fatalf("item 5 err = %v, want *PanicError", err)
			}
			continue
		}
		if err != nil {
			t.Errorf("item %d err = %v", i, err)
		}
	}
}

func TestForEachDrainsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	errs := ForEach(ctx, 1, 50, func(_ context.Context, i int) error {
		if ran.Add(1) == 3 {
			cancel()
		}
		return nil
	}, nil)
	if n := ran.Load(); n >= 50 {
		t.Fatalf("cancellation did not drain: %d ran", n)
	}
	var cancelled int
	for _, err := range errs {
		if errors.Is(err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no index recorded ctx.Err()")
	}
}

func TestForEachOnDoneSerializedAndCounted(t *testing.T) {
	var seen []int // appended under the pool's own serialization
	var lastDone int
	errs := ForEach(context.Background(), 6, 40, func(_ context.Context, i int) error {
		return nil
	}, func(done, index int, err error) {
		if done != lastDone+1 {
			t.Errorf("done jumped %d -> %d", lastDone, done)
		}
		lastDone = done
		seen = append(seen, index)
	})
	if len(seen) != 40 || lastDone != 40 {
		t.Fatalf("onDone fired %d times, done reached %d", len(seen), lastDone)
	}
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if errs := ForEach(context.Background(), 4, 0, func(_ context.Context, i int) error {
		t.Fatal("fn called for empty input")
		return nil
	}, nil); len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
}
