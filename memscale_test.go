package memscale

import (
	"strings"
	"testing"
)

func TestMixesAndPolicies(t *testing.T) {
	if len(Mixes()) != 12 {
		t.Errorf("Mixes() = %d entries, want 12", len(Mixes()))
	}
	if len(Policies()) != 8 {
		t.Errorf("Policies() = %d entries, want 8", len(Policies()))
	}
	found := false
	for _, p := range Policies() {
		if p == "MemScale" {
			found = true
		}
	}
	if !found {
		t.Error("Policies() missing MemScale")
	}
}

func TestRunDefaultsAndErrors(t *testing.T) {
	if _, err := Run(RunConfig{Mix: "NOPE"}); err == nil {
		t.Error("unknown mix must error")
	}
	if _, err := Run(RunConfig{Mix: "MID1", Policy: "NOPE"}); err == nil {
		t.Error("unknown policy must error")
	}
}

func TestRunQuickPair(t *testing.T) {
	sum, err := Run(RunConfig{Mix: "ILP2", Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Policy != "MemScale" || sum.Mix != "ILP2" {
		t.Errorf("labels: %s/%s", sum.Mix, sum.Policy)
	}
	if sum.DurationSeconds != 0.010 {
		t.Errorf("duration = %g s, want 0.010", sum.DurationSeconds)
	}
	if sum.MemorySavings < 0.3 {
		t.Errorf("ILP2 memory savings = %.1f%%, want substantial", sum.MemorySavings*100)
	}
	if sum.SystemSavings <= 0 || sum.SystemSavings >= sum.MemorySavings {
		t.Errorf("system savings %.3f should be positive and below memory savings %.3f",
			sum.SystemSavings, sum.MemorySavings)
	}
	if sum.WorstCPIIncrease > 0.12 {
		t.Errorf("worst CPI increase %.1f%% above bound", sum.WorstCPIIncrease*100)
	}
	var total float64
	for _, s := range sum.FreqSeconds {
		total += s
	}
	if total != sum.DurationSeconds {
		t.Errorf("frequency residency sums to %g, want %g", total, sum.DurationSeconds)
	}
	if !strings.Contains(sum.String(), "ILP2/MemScale") {
		t.Errorf("String() = %q", sum.String())
	}
}

func TestRunTimeline(t *testing.T) {
	sum, err := Run(RunConfig{Mix: "ILP2", Epochs: 2, Timeline: true, Cores: 8, Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Timeline) != 2 {
		t.Fatalf("timeline has %d epochs, want 2", len(sum.Timeline))
	}
	ep := sum.Timeline[0]
	if len(ep.CoreCPI) != 8 {
		t.Errorf("core CPI entries = %d, want 8", len(ep.CoreCPI))
	}
	if len(ep.ChannelUtil) != 2 {
		t.Errorf("channel entries = %d, want 2", len(ep.ChannelUtil))
	}
	if ep.EndMs() != 5 {
		t.Errorf("first epoch ends at %g ms", ep.EndMs())
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(RunConfig{Mix: "MID4", Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(RunConfig{Mix: "MID4", Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.SystemEnergyJ != b.SystemEnergyJ || a.AvgCPIIncrease != b.AvgCPIIncrease {
		t.Error("identical RunConfigs produced different results")
	}
}

func TestExperimentsRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) < 12 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	if _, err := RunExperiment("no-such-figure", ExperimentParams{}); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestRunExperimentTable2(t *testing.T) {
	reports, err := RunExperiment("table2", ExperimentParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].ID != "table2" {
		t.Fatalf("reports: %+v", reports)
	}
	if !strings.Contains(reports[0].Text, "tRCD") {
		t.Error("table2 text missing settings")
	}
	if !strings.Contains(reports[0].CSV, "Feature,Value") {
		t.Error("table2 CSV missing header")
	}
}

func TestRunExperimentFigure13Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	reports, err := RunExperiment("figure13", ExperimentParams{Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	text := reports[0].Text
	for _, want := range []string{"4 channels", "3 channels", "2 channels"} {
		if !strings.Contains(text, want) {
			t.Errorf("figure13 missing row %q:\n%s", want, text)
		}
	}
}
