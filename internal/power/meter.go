package power

import (
	"memscale/internal/config"
	"memscale/internal/dram"
	"memscale/internal/telemetry"
)

// Meter integrates interval energies over a run and exposes totals and
// averages. The simulator feeds it one Interval per stretch of
// constant frequency (and at epoch boundaries for reporting).
type Meter struct {
	model     *Model
	total     Breakdown
	duration  config.Time
	residency dram.Account

	intervals int

	tel *telemetry.Recorder
}

// NewMeter builds a meter over the given model.
func NewMeter(m *Model) *Meter { return &Meter{model: m} }

// SetTelemetry attaches a recorder; every subsequent Record mirrors
// its interval into the recorder's rollup, in the same order the meter
// accumulates, so telemetry totals reconcile exactly with Total().
func (mt *Meter) SetTelemetry(tel *telemetry.Recorder) { mt.tel = tel }

// Record integrates one interval and returns its energy breakdown.
func (mt *Meter) Record(iv Interval) Breakdown {
	b := mt.model.Energy(iv)
	mt.total.Add(b)
	mt.duration += iv.Duration
	res := iv.DRAMTotal()
	mt.residency.Add(res)
	mt.intervals++
	if mt.tel != nil {
		mt.tel.PowerInterval(iv.Duration, res, b.Export())
	}
	return b
}

// Total returns the accumulated energy breakdown.
func (mt *Meter) Total() Breakdown { return mt.total }

// Residency returns the accumulated DRAM state-residency account,
// summed over all ranks.
func (mt *Meter) Residency() dram.Account { return mt.residency }

// Duration returns the accumulated time.
func (mt *Meter) Duration() config.Time { return mt.duration }

// Intervals returns how many intervals have been recorded.
func (mt *Meter) Intervals() int { return mt.intervals }

// AveragePower returns the mean memory-subsystem power in watts.
func (mt *Meter) AveragePower() float64 {
	if mt.duration <= 0 {
		return 0
	}
	return mt.total.Memory() / mt.duration.Seconds()
}

// AverageDIMMPower returns the mean power of the DIMMs alone (DRAM
// devices plus register/PLL), the quantity the Section 4.1 "40% of
// system power" calibration refers to.
func (mt *Meter) AverageDIMMPower() float64 {
	if mt.duration <= 0 {
		return 0
	}
	return (mt.total.DRAM() + mt.total.PLLReg) / mt.duration.Seconds()
}
