package memscale

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// smallGrid is a reduced-scale mix x policy grid that keeps sweep
// tests fast (a 4-core/2-channel pair simulates in tens of
// milliseconds).
func smallGrid() []RunConfig {
	return Grid(
		RunConfig{Epochs: 1, Cores: 4, Channels: 2},
		[]string{"ILP2", "MID1", "MID4", "MEM2"},
		[]string{"Fast-PD", "MemScale"},
	)
}

func TestSweepDeterminismParallelVsSerial(t *testing.T) {
	grid := smallGrid()
	serial, err := Sweep(context.Background(), SweepConfig{Runs: grid, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(context.Background(), SweepConfig{Runs: grid, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("8-worker sweep differs from serial sweep")
	}
	// Byte-identical, not merely approximately equal: the formatted
	// values (Go prints maps in sorted key order) must match exactly.
	for i := range serial {
		s, p := fmt.Sprintf("%#v", serial[i]), fmt.Sprintf("%#v", parallel[i])
		if s != p {
			t.Fatalf("run %d not byte-identical:\nserial:   %s\nparallel: %s", i, s, p)
		}
	}
	// And both must match a bare RunContext of the same config.
	one, err := RunContext(context.Background(), grid[0])
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%#v", one) != fmt.Sprintf("%#v", serial[0]) {
		t.Fatal("Sweep result differs from RunContext of the same RunConfig")
	}
}

func TestRunContextCancellationMidSimulation(t *testing.T) {
	// 100 epochs of a memory-bound mix take several seconds serially;
	// a 30 ms deadline lands mid-simulation.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunContext(ctx, RunConfig{Mix: "MEM1", Epochs: 100, Cores: 4, Channels: 2})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// "Promptly": well under the multi-second full run. Generous slack
	// for race-detector and loaded-CI runs.
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sums, err := Sweep(ctx, SweepConfig{Runs: smallGrid(), Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(sums) != len(smallGrid()) {
		t.Errorf("summaries length %d, want %d", len(sums), len(smallGrid()))
	}
}

func TestSentinelErrors(t *testing.T) {
	cases := []struct {
		name string
		rc   RunConfig
		want error
	}{
		{"unknown mix", RunConfig{Mix: "NOPE"}, ErrUnknownMix},
		{"unknown policy", RunConfig{Mix: "MID1", Policy: "NOPE"}, ErrUnknownPolicy},
		{"negative epochs", RunConfig{Mix: "MID1", Epochs: -1}, ErrInvalidConfig},
		{"gamma out of range", RunConfig{Mix: "MID1", Gamma: 1.5}, ErrInvalidConfig},
		{"negative cores", RunConfig{Mix: "MID1", Cores: -4}, ErrInvalidConfig},
		{"negative channels", RunConfig{Mix: "MID1", Channels: -1}, ErrInvalidConfig},
	}
	for _, tc := range cases {
		_, err := RunContext(context.Background(), tc.rc)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want errors.Is(%v)", tc.name, err, tc.want)
		}
	}
}

func TestSweepPerJobErrorCollection(t *testing.T) {
	runs := []RunConfig{
		{Mix: "MID1", Policy: "Fast-PD", Epochs: 1, Cores: 4, Channels: 2},
		{Mix: "BOGUS", Policy: "Fast-PD", Epochs: 1},
		{Mix: "ILP2", Policy: "Fast-PD", Epochs: -3},
		{Mix: "ILP2", Policy: "Fast-PD", Epochs: 1, Cores: 4, Channels: 2},
	}
	sums, err := Sweep(context.Background(), SweepConfig{Runs: runs, Workers: 2})
	if err == nil {
		t.Fatal("sweep with bad jobs must return an error")
	}
	if !errors.Is(err, ErrUnknownMix) || !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("joined error %v must match both sentinels", err)
	}
	if sums[0].Mix != "MID1" || sums[3].Mix != "ILP2" {
		t.Errorf("valid jobs must still run: got %q, %q", sums[0].Mix, sums[3].Mix)
	}
	if sums[1].Mix != "" || sums[2].Mix != "" {
		t.Error("failed jobs must leave zero summaries")
	}
}

func TestSweepProgressCallback(t *testing.T) {
	runs := []RunConfig{
		{Mix: "BOGUS", Epochs: 1}, // invalid: reported without running
		{Mix: "ILP2", Policy: "Fast-PD", Epochs: 1, Cores: 4, Channels: 2},
		{Mix: "MID1", Policy: "Fast-PD", Epochs: 1, Cores: 4, Channels: 2},
	}
	var completed []int
	var errCount int
	_, err := Sweep(context.Background(), SweepConfig{
		Runs:    runs,
		Workers: 2,
		Progress: func(p SweepProgress) {
			completed = append(completed, p.Completed)
			if p.Total != len(runs) {
				t.Errorf("progress total = %d, want %d", p.Total, len(runs))
			}
			if p.Err != nil {
				errCount++
			} else if p.Summary.Mix != runs[p.Index].Mix {
				t.Errorf("progress index %d carries summary for %q", p.Index, p.Summary.Mix)
			}
		},
	})
	if err == nil {
		t.Fatal("expected joined error from the invalid job")
	}
	if want := []int{1, 2, 3}; !reflect.DeepEqual(completed, want) {
		t.Errorf("completed sequence = %v, want %v", completed, want)
	}
	if errCount != 1 {
		t.Errorf("%d error callbacks, want 1", errCount)
	}
}

func TestGridShape(t *testing.T) {
	base := RunConfig{Epochs: 3, Gamma: 0.05, Cores: 8}
	g := Grid(base, []string{"MID1", "MID2"}, []string{"MemScale", "Static"})
	if len(g) != 4 {
		t.Fatalf("grid has %d entries, want 4", len(g))
	}
	if g[0].Mix != "MID1" || g[0].Policy != "MemScale" || g[3].Mix != "MID2" || g[3].Policy != "Static" {
		t.Errorf("grid order wrong: %+v", g)
	}
	for _, rc := range g {
		if rc.Epochs != 3 || rc.Gamma != 0.05 || rc.Cores != 8 {
			t.Errorf("base fields not propagated: %+v", rc)
		}
	}
}

func TestRunIsRunContextWrapper(t *testing.T) {
	rc := RunConfig{Mix: "ILP2", Epochs: 1, Cores: 4, Channels: 2}
	a, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("Run and RunContext disagree on the same RunConfig")
	}
}

// TestSweepEmptyGridIsError: an empty grid (e.g. Grid over empty mix
// or policy lists) must surface ErrInvalidConfig, not succeed with
// zero jobs.
func TestSweepEmptyGridIsError(t *testing.T) {
	for name, runs := range map[string][]RunConfig{
		"nil runs":       nil,
		"empty runs":     {},
		"empty mixes":    Grid(RunConfig{}, nil, []string{"MemScale"}),
		"empty policies": Grid(RunConfig{}, []string{"MID1"}, nil),
	} {
		sums, err := Sweep(context.Background(), SweepConfig{Runs: runs})
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: Sweep = (%v, %v), want ErrInvalidConfig", name, sums, err)
		}
		if len(sums) != 0 {
			t.Errorf("%s: empty sweep returned %d summaries", name, len(sums))
		}
	}
}

// TestGridEdgeCases: degenerate inputs produce exactly the expected
// (possibly empty) job lists, and single-axis grids keep their order.
func TestGridEdgeCases(t *testing.T) {
	if g := Grid(RunConfig{}, nil, nil); len(g) != 0 {
		t.Errorf("Grid(nil, nil) has %d entries", len(g))
	}
	if g := Grid(RunConfig{}, []string{"MID1"}, nil); len(g) != 0 {
		t.Errorf("Grid with no policies has %d entries", len(g))
	}
	g := Grid(RunConfig{Epochs: 2}, []string{"MID1"}, []string{"MemScale", "Static", "Fast-PD"})
	if len(g) != 3 {
		t.Fatalf("single-mix grid has %d entries, want 3", len(g))
	}
	for i, want := range []string{"MemScale", "Static", "Fast-PD"} {
		if g[i].Policy != want || g[i].Mix != "MID1" || g[i].Epochs != 2 {
			t.Errorf("entry %d = %+v, want MID1/%s", i, g[i], want)
		}
	}
	// Duplicate axis values are preserved, not deduplicated: callers
	// own their grids.
	if g := Grid(RunConfig{}, []string{"MID1", "MID1"}, []string{"Static"}); len(g) != 2 {
		t.Errorf("duplicate mixes collapsed: %d entries, want 2", len(g))
	}
}

// TestSweepProgressOrderingParallel: under a parallel runner the
// Completed counter must still arrive strictly increasing 1..N with
// every index reported exactly once — the callback is serialized even
// though jobs finish out of order.
func TestSweepProgressOrderingParallel(t *testing.T) {
	runs := Grid(RunConfig{Epochs: 1, Cores: 2, Channels: 1},
		[]string{"ILP1", "MID1"}, []string{"Static", "Fast-PD", "MemScale"})
	seen := map[int]int{}
	var completed []int
	_, err := Sweep(context.Background(), SweepConfig{
		Runs:    runs,
		Workers: 4,
		Progress: func(p SweepProgress) {
			completed = append(completed, p.Completed)
			seen[p.Index]++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range completed {
		if c != i+1 {
			t.Fatalf("completed sequence %v is not strictly increasing 1..N", completed)
		}
	}
	if len(seen) != len(runs) {
		t.Fatalf("%d distinct indices reported, want %d", len(seen), len(runs))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("index %d reported %d times", idx, n)
		}
	}
}
