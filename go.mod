module memscale

go 1.22
