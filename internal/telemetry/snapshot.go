package telemetry

import (
	"memscale/internal/config"
	"memscale/internal/dram"
)

// Energy is a memory-subsystem energy breakdown in joules, split by
// the paper's Figure 2 / Figure 10 component categories. It mirrors
// the power package's Breakdown; telemetry keeps its own copy so the
// power layer can feed the recorder without an import cycle
// (power imports telemetry, never the reverse).
type Energy struct {
	Background  float64 `json:"background"`
	ActPre      float64 `json:"act_pre"`
	ReadWrite   float64 `json:"read_write"`
	Termination float64 `json:"termination"`
	Refresh     float64 `json:"refresh"`
	PLLReg      float64 `json:"pll_reg"`
	MC          float64 `json:"mc"`
}

// DRAM returns the energy consumed inside the DRAM chips.
func (e Energy) DRAM() float64 {
	return e.Background + e.ActPre + e.ReadWrite + e.Termination + e.Refresh
}

// Memory returns the total memory-subsystem energy.
func (e Energy) Memory() float64 { return e.DRAM() + e.PLLReg + e.MC }

// Add accumulates o into e.
func (e *Energy) Add(o Energy) {
	e.Background += o.Background
	e.ActPre += o.ActPre
	e.ReadWrite += o.ReadWrite
	e.Termination += o.Termination
	e.Refresh += o.Refresh
	e.PLLReg += o.PLLReg
	e.MC += o.MC
}

// EpochSnapshot is the per-epoch telemetry record: everything the
// simulator knows about one OS quantum, snapshotted at the epoch
// boundary. It is the single source for every per-epoch view — the
// public timeline sample, the Figure 7/8 drivers, and the JSONL
// export all alias or embed this type rather than copying fields.
type EpochSnapshot struct {
	Index int `json:"index"`

	// Start and End bound the epoch in simulated time.
	Start config.Time `json:"start_ps"`
	End   config.Time `json:"end_ps"`

	// Freq is the bus frequency chosen for the epoch body (the
	// fastest channel under per-channel scaling); ChannelFreq holds
	// the per-channel choices when a per-channel governor ran.
	Freq        config.FreqMHz   `json:"freq_mhz"`
	ChannelFreq []config.FreqMHz `json:"channel_freq_mhz,omitempty"`

	// WantFreq is the frequency the governor would have run absent any
	// external frequency cap (SetFrequencyCap): the pre-cap choice,
	// still clamped by thermal emergencies. WantFreq > Freq marks a
	// cap-constrained epoch — the signal cluster-level power capping
	// uses to find nodes that deserve a promotion. Equal to Freq when
	// uncapped.
	WantFreq config.FreqMHz `json:"want_freq_mhz,omitempty"`

	// CoreCPI is the epoch-local CPI per core; ChannelUtil the
	// epoch-local bus utilization per channel.
	CoreCPI     []float64 `json:"core_cpi"`
	ChannelUtil []float64 `json:"channel_util"`

	// Energy is the memory-subsystem energy consumed during the epoch
	// (profiling phase included).
	Energy Energy `json:"energy_j"`

	// Residency is the DRAM state-residency account of the epoch,
	// summed over all ranks: its Total() equals the epoch length
	// times the rank count when accounting is conservation-exact.
	Residency dram.Account `json:"residency_ps"`

	// Reads and Writebacks are the completed transfers of the epoch.
	Reads      uint64 `json:"reads"`
	Writebacks uint64 `json:"writebacks"`

	// HostNs is the host wall-clock nanoseconds the epoch took to
	// simulate (zero when telemetry is disabled; host time is the one
	// nondeterministic field and never feeds back into simulation).
	HostNs int64 `json:"host_ns,omitempty"`

	// FaultMask is the union of fault-class bits (faults.Kind) that
	// degraded this epoch; zero for a clean epoch. Held as a plain
	// uint8 so telemetry stays below faults in the import graph.
	FaultMask uint8 `json:"fault_mask,omitempty"`
}

// StartMs returns the epoch start in simulated milliseconds.
func (s EpochSnapshot) StartMs() float64 { return s.Start.Milliseconds() }

// EndMs returns the epoch end in simulated milliseconds.
func (s EpochSnapshot) EndMs() float64 { return s.End.Milliseconds() }

// BusFreqMHz returns the epoch's bus frequency as a plain int.
func (s EpochSnapshot) BusFreqMHz() int { return int(s.Freq) }

// MeanCPI returns the average per-core CPI of the epoch.
func (s EpochSnapshot) MeanCPI() float64 {
	if len(s.CoreCPI) == 0 {
		return 0
	}
	var sum float64
	for _, c := range s.CoreCPI {
		sum += c
	}
	return sum / float64(len(s.CoreCPI))
}

// MeanUtil returns the average channel bus utilization of the epoch.
func (s EpochSnapshot) MeanUtil() float64 {
	if len(s.ChannelUtil) == 0 {
		return 0
	}
	var sum float64
	for _, u := range s.ChannelUtil {
		sum += u
	}
	return sum / float64(len(s.ChannelUtil))
}

// PerAppCPI averages the snapshot's per-core CPIs by application,
// using assign to map a core index to its application name (workloads
// stripe replicated apps across cores). Shared by the Figure 7/8
// timeline drivers and memscale-report.
func (s EpochSnapshot) PerAppCPI(assign func(core int) string) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for core, cpi := range s.CoreCPI {
		app := assign(core)
		sums[app] += cpi
		counts[app]++
	}
	out := make(map[string]float64, len(sums))
	for app, sum := range sums {
		out[app] = sum / float64(counts[app])
	}
	return out
}

// ResidencyFractions returns the snapshot's state residencies as
// fractions of accounted rank-time, in the fixed CSV column order:
// active standby, precharge standby, active powerdown, precharge
// powerdown (fast), precharge powerdown (slow), refreshing.
func (s EpochSnapshot) ResidencyFractions() [6]float64 {
	return residencyFractions(s.Residency)
}

func residencyFractions(a dram.Account) [6]float64 {
	total := float64(a.Total())
	if total == 0 {
		return [6]float64{}
	}
	return [6]float64{
		float64(a.ActiveStandby) / total,
		float64(a.PrechargeStandby) / total,
		float64(a.ActivePD) / total,
		float64(a.PrechargePD) / total,
		float64(a.PrechargePDSlow) / total,
		float64(a.Refreshing) / total,
	}
}

// ResidencyColumns names the ResidencyFractions entries, in order.
var ResidencyColumns = [6]string{
	"active_standby", "precharge_standby", "active_pd",
	"precharge_pd", "precharge_pd_slow", "refreshing",
}
