// Package core implements the paper's primary contribution: the
// MemScale OS energy-management policy (Sections 3.2-3.3). Each epoch
// it reads the Section 3.1 hardware counters gathered during a short
// profiling phase, predicts every application's CPI at all ten memory
// frequencies with the counter-based queueing model (Equations 2-9),
// predicts full-system energy with the shared Micron-style power model
// (Equation 10), and selects the frequency that minimizes the system
// energy ratio subject to each application's slack-adjusted
// performance target (Equation 1).
package core

import (
	"memscale/internal/config"
	"memscale/internal/dram"
	"memscale/internal/memctrl"
	"memscale/internal/sim"
)

// PerfModel predicts per-core CPI as a function of memory frequency
// from one profiling window's counters (Equations 3-9).
type PerfModel struct {
	cfg     *config.Config
	timings map[config.FreqMHz]dram.Resolved

	// noQueue disables the xi_bank/xi_bus contention terms (the
	// AblateQueueModel variant): the model then assumes every access
	// pays bare service time.
	noQueue bool

	// Per-window derived quantities.
	XiBank  float64 // 1 + BTO/BTC: bank queue factor including self
	XiBus   float64 // 1 + CTO/CTC: bus queue factor including self
	TDevice config.Time
	FitFreq config.FreqMHz // frequency the window was profiled at

	// Per-core quantities.
	Alpha  []float64 // LLC misses per instruction
	TPICpu []float64 // seconds per instruction on the CPU (Equation 2)
	CPIObs []float64 // measured CPI during the window
}

// NewPerfModel precomputes the per-frequency timing tables.
func NewPerfModel(cfg *config.Config) *PerfModel {
	m := &PerfModel{
		cfg:     cfg,
		timings: make(map[config.FreqMHz]dram.Resolved, len(config.BusFrequencies)),
	}
	for _, f := range config.BusFrequencies {
		m.timings[f] = dram.Resolve(cfg.Timing, f, f)
	}
	return m
}

// deviceTime evaluates Equation 6: the average in-device access
// latency implied by the row-buffer counters.
func (m *PerfModel) deviceTime(c memctrl.Counters, at dram.Resolved) config.Time {
	n := c.AccessCount()
	if n == 0 {
		return at.TRCD + at.TCL // closed-page default when idle
	}
	hit := float64(at.TCL) * float64(c.RBHC)
	cb := float64(at.TRCD+at.TCL) * float64(c.CBMC)
	ob := float64(at.TRP+at.TRCD+at.TCL) * float64(c.OBMC)
	pd := float64(at.TXP) * float64(c.EPDC)
	return config.Time((hit + cb + ob + pd) / float64(n))
}

// Fit extracts the model inputs from a profiling window. The window's
// frequency anchors the decomposition of measured CPI into CPU and
// memory time.
func (m *PerfModel) Fit(p sim.Profile) {
	c := p.Counters
	if m.noQueue {
		m.XiBank, m.XiBus = 1, 1
	} else {
		m.XiBank = 1 + c.BankQueueDepth()
		m.XiBus = 1 + c.ChannelQueueDepth()
	}
	m.FitFreq = p.BusFreq
	at := m.timings[p.BusFreq]
	m.TDevice = m.deviceTime(c, at)

	n := len(p.Instr)
	m.Alpha = resize(m.Alpha, n)
	m.TPICpu = resize(m.TPICpu, n)
	m.CPIObs = resize(m.CPIObs, n)

	cycles := m.cfg.TimeToCPUCycles(p.Elapsed())
	tpiMemProf := m.TPIMem(p.BusFreq) // seconds
	for i := 0; i < n; i++ {
		instr := p.Instr[i]
		if instr <= 0 {
			m.Alpha[i] = 0
			m.TPICpu[i] = 0
			m.CPIObs[i] = 0
			continue
		}
		m.Alpha[i] = float64(c.TLM[i]) / instr
		m.CPIObs[i] = cycles / instr
		// Equation 2 inverted: time per instruction on the CPU is the
		// remainder after subtracting predicted memory time.
		tpi := p.Elapsed().Seconds() / instr
		cpuPart := tpi - m.Alpha[i]*tpiMemProf
		if cpuPart < 0 {
			cpuPart = 0
		}
		m.TPICpu[i] = cpuPart
	}
}

// TPIMem evaluates Equation 9 at frequency f: expected memory time per
// LLC-missing instruction, in seconds.
//
// The queueing factors were measured at the profiling frequency;
// queue depths grow with service time, so their excess over 1 is
// interpolated by the burst-time ratio — the "profiling at one more
// frequency and interpolating the queue size" modification Section
// 3.3 suggests for deep queues, which keeps the max-frequency estimate
// (and hence the slack target) honest for memory-bound workloads.
func (m *PerfModel) TPIMem(f config.FreqMHz) float64 {
	at := m.timings[f]
	ratio := 1.0
	if m.FitFreq != 0 && f != m.FitFreq {
		ratio = queueGrowth(float64(at.Burst) / float64(m.timings[m.FitFreq].Burst))
	}
	xiBank := 1 + (m.XiBank-1)*ratio
	xiBus := 1 + (m.XiBus-1)*ratio
	sBank := (at.MC + m.TDevice).Seconds()
	sBus := at.Burst.Seconds()
	return xiBank * (sBank + xiBus*sBus)
}

// queueGrowth maps a service-time ratio to a queue-depth scaling
// factor for the xi counters. The correction is deliberately
// asymmetric:
//
//   - Extrapolating downward (ratio > 1, slower candidate): keep the
//     measured depths (factor 1), as the paper does. Queue growth in
//     the closed 16-customer network is bounded by the population,
//     and the slack feedback absorbs the residual error.
//   - Extrapolating upward (ratio < 1, faster candidate — notably the
//     max-frequency estimate that anchors the slack target): shrink
//     the excess linearly. Queues measured at a low frequency are
//     deeper than they would be at nominal; without this shrink the
//     policy inflates T_MaxFreq and overshoots the CPI bound on
//     memory-bound mixes — exactly the queue-length misprediction
//     Section 4.2.3 reports and Section 3.3 suggests fixing by
//     interpolating queue sizes across frequencies.
func queueGrowth(serviceRatio float64) float64 {
	if serviceRatio >= 1 {
		return 1
	}
	return serviceRatio
}

// CPI predicts core i's CPI at frequency f (Equation 3).
func (m *PerfModel) CPI(i int, f config.FreqMHz) float64 {
	tpi := m.TPICpu[i] + m.Alpha[i]*m.TPIMem(f)
	return tpi * m.cfg.CPUFreqMHz.Hz()
}

// RelTime predicts the run-time of the profiled instruction mix at
// frequency f relative to frequency base (mean of per-core CPI
// ratios, model-to-model so profiling bias cancels).
func (m *PerfModel) RelTime(f, base config.FreqMHz) float64 {
	var sum float64
	n := 0
	for i := range m.Alpha {
		if m.CPIObs[i] <= 0 {
			continue
		}
		sum += m.CPI(i, f) / m.CPI(i, base)
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// Timing exposes the resolved timing table at f (for tests and the
// energy estimator).
func (m *PerfModel) Timing(f config.FreqMHz) dram.Resolved { return m.timings[f] }

func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
