package memctrl

// reqRing is a FIFO of requests backed by a power-of-two circular
// buffer: push/pop/peek are O(1) with no per-request garbage, replacing
// the delete-by-copy slices the controller's hot path used to shift on
// every dequeue. The zero value is an empty ring.
type reqRing struct {
	buf   []*Request
	head  int
	count int
}

// Len returns the number of queued requests.
func (r *reqRing) Len() int { return r.count }

// Push appends req at the tail, growing the buffer only when full.
func (r *reqRing) Push(req *Request) {
	if r.count == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.count)&(len(r.buf)-1)] = req
	r.count++
}

// Pop removes and returns the head request. The vacated slot is nilled
// so the ring never pins a recycled request.
func (r *reqRing) Pop() *Request {
	if r.count == 0 {
		panic("memctrl: Pop from empty ring")
	}
	req := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.count--
	return req
}

// At returns the i-th queued request in FIFO order without removing
// it (0 is the head).
func (r *reqRing) At(i int) *Request {
	if i < 0 || i >= r.count {
		panic("memctrl: ring index out of range")
	}
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// Peek returns the head request without removing it.
func (r *reqRing) Peek() *Request {
	if r.count == 0 {
		panic("memctrl: Peek at empty ring")
	}
	return r.buf[r.head]
}

func (r *reqRing) grow() {
	n := len(r.buf) * 2
	if n == 0 {
		n = 8
	}
	nb := make([]*Request, n)
	for i := 0; i < r.count; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}
