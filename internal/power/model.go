// Package power implements the memory-subsystem power and energy
// models of the paper: a Micron-style DDR3 device model driven by the
// rank state durations the DRAM layer accounts (background,
// activate/precharge, read/write, termination, refresh), the
// register/PLL devices on each DIMM, and the DVFS-scaled memory
// controller (Sections 2.1, 2.2 and 4.1).
//
// The same pure functions serve two masters: the simulator's energy
// integration (ground truth) and the OS policy's what-if estimates at
// candidate frequencies (Section 3.3). Sharing the model mirrors the
// paper, where the OS instantiates the very power model the evaluation
// uses, fed by hardware counters.
package power

import (
	"memscale/internal/config"
	"memscale/internal/dram"
)

// Breakdown is energy (joules) split by the Figure 2 / Figure 10
// component categories.
type Breakdown struct {
	Background  float64 // DRAM background (standby + powerdown states)
	ActPre      float64 // DRAM activate/precharge
	ReadWrite   float64 // DRAM column read/write bursts
	Termination float64 // DRAM on-die termination of other ranks' bursts
	Refresh     float64 // DRAM refresh
	PLLReg      float64 // DIMM register + PLL devices
	MC          float64 // memory controller
}

// DRAM returns the energy consumed inside the DRAM chips.
func (b Breakdown) DRAM() float64 {
	return b.Background + b.ActPre + b.ReadWrite + b.Termination + b.Refresh
}

// Memory returns the total memory-subsystem energy (DRAM + DIMM
// support devices + memory controller).
func (b Breakdown) Memory() float64 { return b.DRAM() + b.PLLReg + b.MC }

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Background += o.Background
	b.ActPre += o.ActPre
	b.ReadWrite += o.ReadWrite
	b.Termination += o.Termination
	b.Refresh += o.Refresh
	b.PLLReg += o.PLLReg
	b.MC += o.MC
}

// Scale returns b with every component multiplied by k.
func (b Breakdown) Scale(k float64) Breakdown {
	return Breakdown{
		Background:  b.Background * k,
		ActPre:      b.ActPre * k,
		ReadWrite:   b.ReadWrite * k,
		Termination: b.Termination * k,
		Refresh:     b.Refresh * k,
		PLLReg:      b.PLLReg * k,
		MC:          b.MC * k,
	}
}

// ChannelSlice is one channel's share of an accounting interval. Each
// channel carries its own operating point so that per-channel DFS (the
// paper's Section 6 future work) prices correctly; under uniform
// scaling every slice simply holds the same frequencies.
type ChannelSlice struct {
	BusFreq config.FreqMHz
	DevFreq config.FreqMHz // DIMM/DRAM clock; == BusFreq unless decoupled

	// DRAM is the sum of the channel's ranks' flushed accounts.
	DRAM dram.Account

	// Busy is the channel bus occupancy (burst time); it drives
	// register and MC utilization.
	Busy config.Time
}

// Interval is everything the model needs to convert one stretch of
// simulation at fixed operating points into energy.
type Interval struct {
	Duration config.Time

	// MCBusFreq is the bus frequency that sets the memory controller
	// clock (the fastest channel under per-channel scaling).
	MCBusFreq config.FreqMHz

	Channels []ChannelSlice
}

// Uniform builds an interval where every channel runs at the same
// operating point — the common case for the paper's base MemScale.
// DRAM pricing is frequency-linear per slice, so with equal
// frequencies the summed account can live on one slice without
// changing the result.
func Uniform(duration config.Time, bus, dev config.FreqMHz, dramSum dram.Account, busy []config.Time) Interval {
	iv := Interval{Duration: duration, MCBusFreq: bus, Channels: make([]ChannelSlice, len(busy))}
	for i := range iv.Channels {
		iv.Channels[i] = ChannelSlice{BusFreq: bus, DevFreq: dev, Busy: busy[i]}
	}
	if len(iv.Channels) > 0 {
		iv.Channels[0].DRAM = dramSum
	}
	return iv
}

// DRAMTotal returns the summed account across channels.
func (iv Interval) DRAMTotal() dram.Account {
	var total dram.Account
	for i := range iv.Channels {
		total.Add(iv.Channels[i].DRAM)
	}
	return total
}

// ChannelBusy returns the per-channel bus occupancies.
func (iv Interval) ChannelBusy() []config.Time {
	out := make([]config.Time, len(iv.Channels))
	for i := range iv.Channels {
		out[i] = iv.Channels[i].Busy
	}
	return out
}

// Model evaluates the power equations for one system configuration.
type Model struct {
	cfg *config.Config
}

// NewModel builds a power model for configuration c.
func NewModel(c *config.Config) *Model { return &Model{cfg: c} }

// chipWatts converts a per-chip current (mA) to per-rank watts.
func (m *Model) chipWatts(mA float64) float64 {
	return mA / 1000 * m.cfg.Currents.VDD * float64(m.cfg.ChipsPerRank)
}

// bgScale returns the background-power frequency scaling factor for a
// device clock f: the clocked fraction scales linearly with frequency
// (Section 2.2), the rest is frequency-independent.
func (m *Model) bgScale(f config.FreqMHz) float64 {
	lin := float64(f) / float64(config.MaxBusFreq)
	s := m.cfg.BackgroundFreqScaling
	return s*lin + (1 - s)
}

// Energy evaluates the full memory-subsystem energy of one interval,
// pricing each channel at its own operating point.
func (m *Model) Energy(iv Interval) Breakdown {
	cur := m.cfg.Currents
	p := m.cfg.Power
	dur := iv.Duration.Seconds()
	tRC := (m.cfg.Timing.TRAS + m.cfg.Timing.TRP).Seconds()

	var b Breakdown
	var utilSum float64
	for i := range iv.Channels {
		ch := &iv.Channels[i]
		a := &ch.DRAM
		scale := m.bgScale(ch.DevFreq)

		// Background: state durations times the per-rank background
		// power. Standby states are clocked, so they scale with the
		// device frequency; powerdown states have CKE low and do not.
		b.Background += a.ActiveStandby.Seconds()*m.chipWatts(cur.IDDActiveStandby)*scale +
			a.PrechargeStandby.Seconds()*m.chipWatts(cur.IDDPrechargeStandby)*scale +
			a.ActivePD.Seconds()*m.chipWatts(cur.IDDActivePowerdown) +
			a.PrechargePD.Seconds()*m.chipWatts(cur.IDDPrechargePD) +
			a.PrechargePDSlow.Seconds()*m.chipWatts(cur.IDDPrechargeSlowPD)

		// Activate/precharge: fixed energy per activation, spread over
		// the device-physics tRC window — frequency independent.
		b.ActPre += float64(a.Activations) * m.chipWatts(cur.IDDActPre) * tRC

		// Read/write: incremental current over active standby while
		// the rank drives the bus. Slower buses hold the current
		// longer, so the energy per access grows as frequency drops
		// (Section 2.2).
		rwWatts := m.chipWatts(cur.IDDReadWrite - cur.IDDActiveStandby)
		b.ReadWrite += (a.ReadBurst + a.WriteBurst).Seconds() * rwWatts

		// Termination on the other ranks of the channel.
		b.Termination += a.TermBurst.Seconds() * p.TerminationPerRankW

		// Refresh: full refresh current during tRFC windows.
		b.Refresh += a.Refreshing.Seconds() * m.chipWatts(cur.IDDRefresh)

		// Register + PLL per DIMM; both scale linearly with channel
		// frequency, the register additionally with utilization.
		fScale := float64(ch.BusFreq) / float64(config.MaxBusFreq)
		util := utilization(ch.Busy, iv.Duration)
		utilSum += util
		regW := (p.RegisterIdleW + (p.RegisterPeakW-p.RegisterIdleW)*util) * fScale
		pllW := p.PLLW * fScale
		b.PLLReg += float64(m.cfg.DIMMsPerChannel) * (regW + pllW) * dur
	}

	// Memory controller: utilization-linear between idle and peak,
	// scaled by V^2*f across the DVFS range. The MC clock follows the
	// fastest channel.
	meanUtil := 0.0
	if len(iv.Channels) > 0 {
		meanUtil = utilSum / float64(len(iv.Channels))
	}
	b.MC = m.MCPower(iv.MCBusFreq, meanUtil) * dur

	return b
}

// MCPower returns the memory-controller power at the given bus
// frequency and average channel utilization.
func (m *Model) MCPower(bus config.FreqMHz, util float64) float64 {
	p := m.cfg.Power
	base := p.MCIdleW + (p.MCPeakW-p.MCIdleW)*clamp01(util)
	return base * m.MCVFScale(bus)
}

// MCVFScale returns the V^2*f scaling factor of the MC at the given
// bus frequency, relative to the nominal operating point. The MC
// voltage tracks its frequency linearly across the configured range
// (Section 4.1: 0.65-1.2 V over the MC frequency span).
func (m *Model) MCVFScale(bus config.FreqMHz) float64 {
	v := m.MCVoltage(bus)
	vMax := m.cfg.Power.MCVMax
	f := float64(config.MCFreq(bus))
	fMax := float64(config.MCFreq(config.MaxBusFreq))
	return (v * v * f) / (vMax * vMax * fMax)
}

// MCVoltage returns the MC supply voltage at the given bus frequency.
func (m *Model) MCVoltage(bus config.FreqMHz) float64 {
	p := m.cfg.Power
	fMin := float64(config.MCFreq(config.MinBusFreq))
	fMax := float64(config.MCFreq(config.MaxBusFreq))
	f := float64(config.MCFreq(bus))
	frac := (f - fMin) / (fMax - fMin)
	return p.MCVMin + frac*(p.MCVMax-p.MCVMin)
}

// RestOfSystemPower derives the fixed non-memory power from the
// average baseline DIMM power, using the configured memory power
// fraction (Section 4.1: DIMMs are 40% of system power, so the rest
// of the system is 1.5x the DIMM average).
func (m *Model) RestOfSystemPower(dimmAvgWatts float64) float64 {
	frac := m.cfg.MemPowerFraction
	return dimmAvgWatts * (1 - frac) / frac
}

func utilization(busy, total config.Time) float64 {
	if total <= 0 {
		return 0
	}
	return clamp01(float64(busy) / float64(total))
}

func meanUtilization(busy []config.Time, total config.Time) float64 {
	if len(busy) == 0 {
		return 0
	}
	var sum float64
	for _, b := range busy {
		sum += utilization(b, total)
	}
	return sum / float64(len(busy))
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}
