package event

import (
	"testing"

	"memscale/internal/config"
)

// FuzzScheduleCancelStep drives the queue with an arbitrary interleaving
// of Schedule, ScheduleBound, Cancel, and Step operations decoded from
// the fuzz input, and asserts the core invariants: fire times are
// monotonically nondecreasing, cancelled events never fire, the heap
// length always matches live scheduling arithmetic, and every slot the
// pool ever allocated is either pending or on the free list when the
// queue drains.
func FuzzScheduleCancelStep(f *testing.F) {
	f.Add([]byte{0, 10, 1, 20, 2, 0, 3, 3})
	f.Add([]byte{0, 5, 0, 5, 0, 5, 2, 1, 3, 3, 3})
	f.Add([]byte{1, 0, 2, 0, 1, 1, 3, 0, 0, 7, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q Queue
		var handles []Handle
		cancelled := make(map[Handle]bool)
		lastFired := config.Time(-1)
		live := 0
		onFire := func(now config.Time) {
			if now < lastFired {
				t.Fatalf("fire times went backwards: %v after %v", now, lastFired)
			}
			lastFired = now
		}
		bound := Bound(func(now config.Time, _ any, _, _ int32) { onFire(now) })

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%4, config.Time(data[i+1])
			switch op {
			case 0:
				handles = append(handles, q.Schedule(q.Now()+arg, onFire))
				live++
			case 1:
				handles = append(handles, q.ScheduleBound(q.Now()+arg, bound, nil, int32(arg), 0))
				live++
			case 2:
				if len(handles) > 0 {
					h := handles[int(arg)%len(handles)]
					if q.Cancel(h) {
						cancelled[h] = true
						live--
					} else if q.Pending(h) {
						t.Fatal("Cancel returned false for a pending event")
					}
				}
			case 3:
				if q.Step() {
					live--
				} else if live != 0 {
					t.Fatalf("Step returned false with %d live events", live)
				}
			}
			if q.Len() != live {
				t.Fatalf("Len = %d, want %d live events", q.Len(), live)
			}
			for h := range cancelled {
				if q.Pending(h) {
					t.Fatal("cancelled handle reports pending")
				}
			}
		}
		q.Run(0)
		if q.Len() != 0 {
			t.Fatalf("drained queue has Len %d", q.Len())
		}
		if q.FreeNodes() != q.PoolSize() {
			t.Fatalf("pool leak: %d slots, %d free", q.PoolSize(), q.FreeNodes())
		}
		if q.Fired()+uint64(len(cancelled)) != q.ScheduledTotal() {
			t.Fatalf("accounting: fired %d + cancelled %d != scheduled %d",
				q.Fired(), len(cancelled), q.ScheduledTotal())
		}
	})
}
