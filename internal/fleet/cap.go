package fleet

import (
	"memscale/internal/config"
)

// nodeObs is what the coordinator observed about one node over the
// last fleet epoch: its measured memory-subsystem power, the frequency
// that power was measured at, the frequency-independent fraction of
// that power, and the frequency the node's governor wanted absent any
// cap.
type nodeObs struct {
	alive     bool
	measuredW float64        // average memory power over the window
	measFreq  config.FreqMHz // applied frequency during the window
	rho       float64        // frequency-independent power fraction
	want      config.FreqMHz // governor's uncapped desire (WantFreq)
}

// estPower extrapolates the node's memory power to frequency f using
// the FastCap linear model: the measured power splits into a
// frequency-independent part (rho: background + refresh) and a part
// proportional to frequency, so
//
//	P(f) = P_meas * (rho + (1-rho) * f/f_meas).
func (o nodeObs) estPower(f config.FreqMHz) float64 {
	if o.measFreq <= 0 || o.measuredW <= 0 {
		return o.measuredW
	}
	return o.measuredW * (o.rho + (1-o.rho)*float64(f)/float64(o.measFreq))
}

// effFreq is the frequency node o would actually run under cap: its
// own desire, ceiled.
func (o nodeObs) effFreq(cap config.FreqMHz) config.FreqMHz {
	if o.want < cap {
		return o.want
	}
	return cap
}

// CapStep is one coordinator decision: the per-epoch convergence
// trace exposed on the fleet summary.
type CapStep struct {
	// Epoch is the fleet epoch index the assignment takes effect at.
	Epoch int `json:"epoch"`

	// BudgetW is the global memory-power budget; MeasuredW the fleet's
	// measured memory power over the window that fed this decision;
	// EstimatedW the planner's estimate of fleet power under the new
	// caps. DeficitW is how far the estimate exceeds the budget when
	// even the lowest uniform level cannot fit (0 when the budget is
	// met).
	BudgetW    float64 `json:"budget_w"`
	MeasuredW  float64 `json:"measured_w"`
	EstimatedW float64 `json:"estimated_w"`
	DeficitW   float64 `json:"deficit_w,omitempty"`

	// UniformMHz is the water-filled uniform cap level; Promotions the
	// ladder steps handed out from the leftover budget; Constrained
	// the nodes whose desire exceeds their assigned cap; CapChanges
	// the nodes whose cap differs from the previous assignment (0 on a
	// converged epoch).
	UniformMHz  int `json:"uniform_mhz"`
	Promotions  int `json:"promotions"`
	Constrained int `json:"constrained"`
	CapChanges  int `json:"cap_changes"`
}

// planCaps assigns per-node frequency caps under the global budget,
// FastCap style (arXiv 1603.01313): find the highest uniform ladder
// level whose estimated fleet power fits the budget (water-filling —
// nodes wanting less than the level only count at their desire), then
// spend the leftover watts promoting constrained nodes one ladder step
// at a time, in deterministic node order, until no further promotion
// fits. Dead nodes draw no power and get no cap. prev is the previous
// assignment (nil on the first decision) used to count cap churn.
//
// The returned caps are one per node (0 never appears: every live
// node gets an explicit ceiling, MaxBusFreq meaning effectively
// uncapped).
func planCaps(epoch int, budget float64, obs []nodeObs, prev []config.FreqMHz) ([]config.FreqMHz, CapStep) {
	ladder := config.BusFrequencies // highest first
	caps := make([]config.FreqMHz, len(obs))

	step := CapStep{Epoch: epoch, BudgetW: budget}
	for _, o := range obs {
		if o.alive {
			step.MeasuredW += o.measuredW
		}
	}

	// fleetPower estimates total power with every live node capped at
	// level L (each node runs at min(L, want)).
	fleetPower := func(L config.FreqMHz) float64 {
		var sum float64
		for _, o := range obs {
			if o.alive {
				sum += o.estPower(o.effFreq(L))
			}
		}
		return sum
	}

	// Water-fill: highest uniform level that fits. Falls through to
	// the lowest level when nothing fits (budget deficit).
	uniform := ladder[len(ladder)-1]
	for _, L := range ladder {
		if fleetPower(L) <= budget {
			uniform = L
			break
		}
	}
	est := fleetPower(uniform)
	step.UniformMHz = int(uniform)
	if est > budget {
		step.DeficitW = est - budget
	}
	for i, o := range obs {
		if o.alive {
			caps[i] = uniform
		}
	}

	// Greedy promotions: hand out the leftover watts one ladder step
	// at a time, round-robin in node order so no node hogs the slack.
	// Each promotion's incremental cost is the power delta between the
	// node's effective frequency at its new vs old cap.
	leftover := budget - est
	if leftover > 0 {
		for promoted := true; promoted; {
			promoted = false
			for i, o := range obs {
				if !o.alive || o.want <= caps[i] {
					continue // unconstrained: a higher cap changes nothing
				}
				next, ok := ladderAbove(caps[i])
				if !ok {
					continue
				}
				delta := o.estPower(o.effFreq(next)) - o.estPower(o.effFreq(caps[i]))
				if delta > leftover {
					continue
				}
				caps[i] = next
				leftover -= delta
				step.Promotions++
				promoted = true
			}
		}
		est = budget - leftover
	}
	step.EstimatedW = est

	for i, o := range obs {
		if !o.alive {
			continue
		}
		if o.want > caps[i] {
			step.Constrained++
		}
		if prev == nil || prev[i] != caps[i] {
			step.CapChanges++
		}
	}
	return caps, step
}

// ladderAbove returns the next ladder level above f.
func ladderAbove(f config.FreqMHz) (config.FreqMHz, bool) {
	ladder := config.BusFrequencies
	for i := len(ladder) - 1; i > 0; i-- {
		if ladder[i] == f {
			return ladder[i-1], true
		}
	}
	return 0, false
}

// rhoOf derives the frequency-independent fraction of a node's
// measured memory power from its epoch energy breakdown: background
// and refresh energy do not scale with the bus clock, the rest does.
// Clamped away from the extremes so the estimator never degenerates.
func rhoOf(background, refresh, total float64) float64 {
	if total <= 0 {
		return 0.5
	}
	rho := (background + refresh) / total
	switch {
	case rho < 0.05:
		return 0.05
	case rho > 0.95:
		return 0.95
	}
	return rho
}
