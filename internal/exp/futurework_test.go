package exp

import (
	"testing"

	"memscale/internal/config"
	"memscale/internal/workload"
)

func TestVerifyPartitioning(t *testing.T) {
	cfg := config.Default()
	mix := futureMixes[0]
	spread, err := VerifyPartitioning(&cfg, mix, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(spread) != 4 {
		t.Fatalf("spread covers %d apps, want 4", len(spread))
	}
	// Each app must be confined to exactly one channel.
	used := map[int]string{}
	for app, channels := range spread {
		if len(channels) != 1 {
			t.Errorf("app %s touched %d channels, want 1 (%v)", app, len(channels), channels)
		}
		for ch := range channels {
			if prev, taken := used[ch]; taken {
				t.Errorf("channel %d shared by %s and %s", ch, prev, app)
			}
			used[ch] = app
		}
	}
}

func TestFutureMixesValid(t *testing.T) {
	for _, mix := range futureMixes {
		for _, app := range mix.Apps {
			if _, err := workload.App(app); err != nil {
				t.Errorf("mix %s references unknown app %q", mix.Name, app)
			}
		}
		// The pairings must be heterogeneous: at least one app over
		// 10 MPKI and one under 1 MPKI.
		var hi, lo bool
		for _, app := range mix.Apps {
			p, _ := workload.App(app)
			switch {
			case p.Phases[0].MPKI >= 10:
				hi = true
			case p.Phases[0].MPKI <= 1:
				lo = true
			}
		}
		if !hi || !lo {
			t.Errorf("mix %s is not heterogeneous enough (hi=%v lo=%v)", mix.Name, hi, lo)
		}
	}
}

func TestFutureWorkSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six full simulations")
	}
	p := quickParams()
	r, err := p.FutureWork()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != 4 { // 2 mixes x 2 policies
		t.Errorf("futurework has %d rows, want 4", len(r.Table.Rows))
	}
}
