package runner

import (
	"context"
	"fmt"
	"sync"

	"memscale/internal/config"
	"memscale/internal/power"
	"memscale/internal/sim"
	"memscale/internal/workload"
)

// BaselineCache memoizes unmanaged baseline simulations. Every figure
// pairs each managed run against the baseline of the same (mix,
// configuration, run length), and a policy sweep shares one baseline
// across all its schemes, so without memoization the harness simulates
// the identical run over and over. The cache is safe for concurrent
// use and guarantees each distinct baseline executes exactly once:
// concurrent requests for the same key block on the first requester
// instead of duplicating the simulation.
type BaselineCache struct {
	mu      sync.Mutex
	entries map[string]*baselineEntry

	hits, misses int
}

type baselineEntry struct {
	ready  chan struct{} // closed once res/nonMem/err are final
	res    sim.Result
	nonMem float64
	err    error
}

// NewBaselineCache returns an empty cache.
func NewBaselineCache() *BaselineCache {
	return &BaselineCache{entries: map[string]*baselineEntry{}}
}

// baselineKey canonicalizes the baseline identity. The baseline runs
// no governor, so gamma is irrelevant and is zeroed out of the key:
// sweeps over gamma all share one baseline.
func baselineKey(cfg config.Config, mixName string, epochs int) string {
	norm := cfg
	norm.Policy.Gamma = 0
	return fmt.Sprintf("%s|%d|%+v", mixName, epochs, norm)
}

// Baseline returns the unmanaged run of mix under cfg for the given
// epoch count, together with the rest-of-system power calibrated from
// its average DIMM power (Section 4.1), simulating it only on the
// first request. Errors are not cached: a failed or cancelled
// computation is discarded so a later caller can retry.
//
// shards requests the sharded event engine for the simulation. It is
// deliberately absent from the cache key: the sharded engine is
// bit-identical to the serial one at any shard count, so a baseline
// computed at one count is the baseline at every count.
func (c *BaselineCache) Baseline(ctx context.Context, cfg config.Config, mix workload.Mix, epochs, shards int) (sim.Result, float64, error) {
	key := baselineKey(cfg, mix.Name, epochs)

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		select {
		case <-e.ready:
			return e.res, e.nonMem, e.err
		case <-ctx.Done():
			return sim.Result{}, 0, ctx.Err()
		}
	}
	e := &baselineEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	e.res, e.nonMem, e.err = runBaseline(ctx, cfg, mix, epochs, shards)
	if e.err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.ready)
	return e.res, e.nonMem, e.err
}

// Stats reports the cache behaviour so far: hits is the number of
// lookups served from (or blocked on) an existing entry, misses the
// number of baseline simulations actually executed.
func (c *BaselineCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// runBaseline executes one unmanaged run and calibrates the
// rest-of-system power from it.
func runBaseline(ctx context.Context, cfg config.Config, mix workload.Mix, epochs, shards int) (sim.Result, float64, error) {
	streams, err := mix.Streams(&cfg)
	if err != nil {
		return sim.Result{}, 0, err
	}
	s, err := sim.New(cfg, streams, sim.Options{Shards: shards})
	if err != nil {
		return sim.Result{}, 0, err
	}
	res, err := s.RunForContext(ctx, config.Time(epochs)*cfg.Policy.EpochLength)
	if err != nil {
		return sim.Result{}, 0, err
	}
	nonMem := power.NewModel(&cfg).RestOfSystemPower(res.DIMMAvgWatts)
	return res, nonMem, nil
}
