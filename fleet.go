package memscale

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"memscale/internal/config"
	"memscale/internal/fleet"
	"memscale/internal/policies"
	"memscale/internal/workload"
)

// Fleet-scale simulation: N nodes, each a full paired MemScale run,
// driven by open-loop arrival processes and coordinated by a
// FastCap-style cluster power capper that redistributes a global
// memory-power budget every fleet epoch (DESIGN.md §4h).
//
//	sum, err := memscale.RunFleet(ctx, memscale.FleetConfig{
//		Groups: []memscale.NodeGroup{{
//			Name: "web", Nodes: 1000, Mix: "MID1",
//			Arrival: memscale.ArrivalConfig{Kind: memscale.ArrivalDiurnal},
//		}},
//		PowerBudgetW: 20_000,
//	})
//	fmt.Printf("fleet SER %.3f, p99 CPI +%.1f%%\n", sum.SER, sum.P99CPIIncrease*100)

// ArrivalKind names an open-loop arrival process shape; ArrivalConfig
// configures one node group's process. See the kind constants for the
// semantics of each shape.
type (
	ArrivalKind   = fleet.ArrivalKind
	ArrivalConfig = fleet.ArrivalSpec
)

// The supported arrival processes.
const (
	// ArrivalSteady offers exactly the nominal load every epoch
	// (intensity multiplier 1.0 — bit-identical to an undriven node).
	ArrivalSteady = fleet.ArrivalSteady

	// ArrivalPoisson draws each epoch's request count from a Poisson
	// process at UsersPerNode x RequestsPerUserHz.
	ArrivalPoisson = fleet.ArrivalPoisson

	// ArrivalBursty is a two-state Markov-modulated Poisson process:
	// nodes flip between the nominal rate and BurstFactor times it.
	ArrivalBursty = fleet.ArrivalBursty

	// ArrivalDiurnal modulates the Poisson rate by a sinusoid with a
	// deterministic per-node phase offset.
	ArrivalDiurnal = fleet.ArrivalDiurnal
)

// FleetSummary is the fleet-level outcome: cluster SER, tail CPI
// degradation across nodes, energy and power totals, the coordinator's
// per-epoch cap-convergence trace, per-group rollups, and per-node
// summaries. FleetCapStep, FleetGroupSummary, and FleetNodeSummary are
// its components.
type (
	FleetSummary      = fleet.Summary
	FleetCapStep      = fleet.CapStep
	FleetGroupSummary = fleet.GroupSummary
	FleetNodeSummary  = fleet.NodeSummary
)

// NodeGroup describes one homogeneous slice of the fleet: Nodes
// servers all running the same workload mix under the same policy and
// arrival process.
type NodeGroup struct {
	// Name labels the group in summaries and CSVs (defaults to the
	// group's index).
	Name string

	// Nodes is the group's server count (must be positive).
	Nodes int

	// Mix is a Table 1 workload name; Policy a scheme name as listed
	// by Policies() (default "MemScale"). Every node of the group runs
	// this pair, with per-node decorrelated traces.
	Mix    string
	Policy string

	// Gamma, Cores, Channels scale each node exactly like the
	// RunConfig fields of the same names (zero selects the defaults:
	// 0.10, 16, 4).
	Gamma    float64
	Cores    int
	Channels int

	// Shards selects the sharded parallel event engine for the group's
	// nodes — managed runs and paired baselines alike — exactly like
	// RunConfig.Shards (0 or 1 runs the serial engine; results are
	// bit-identical either way). Must not exceed the group's channel
	// count. The effective per-node count is bounded by the fleet's
	// core split (FleetConfig.CoreSplit).
	Shards int

	// Arrival is the group's open-loop arrival process. The zero value
	// offers a steady nominal load.
	Arrival ArrivalConfig

	// Faults, when non-nil, injects the disturbance plane into every
	// node of the group, with per-node decorrelated schedules. The
	// fleet-scope fields (NodeCrashRate, StragglerRate,
	// CheckpointCorruptRate, NodeLossRate) arm the chaos plane the
	// self-healing supervisor recovers from.
	Faults *FaultConfig

	// Recovery, when non-nil, overrides the fleet-level
	// FleetConfig.Recovery for this group's nodes.
	Recovery *FleetRecoveryConfig
}

// FleetRecoveryConfig arms the self-healing supervisor every node runs
// under: periodic state snapshots, bounded checkpoint restarts with
// exponential backoff, and an optional per-window watchdog. Recovery
// is transparent — a node that crashes and restarts inside a fleet
// window replays to the window boundary before the coordinator looks,
// so surviving-node metrics are bit-identical to an undisturbed run.
// Nil disables recovery: an injected crash loses the node immediately.
type FleetRecoveryConfig struct {
	// MaxRetries bounds restarts per fleet window; past it the node is
	// given up with ErrNodeLost (0 selects the default 3).
	MaxRetries int

	// CheckpointEvery is the snapshot cadence in epochs (0 selects the
	// default 1).
	CheckpointEvery int

	// StepTimeout is the per-attempt watchdog over one fleet window of
	// host wall-clock time; attempts exceeding it (stragglers, wedged
	// nodes) are recovered exactly like crashes. 0 disables it.
	StepTimeout time.Duration

	// Backoff is the base host-time restart delay, doubling per retry
	// (0 selects the default 1ms).
	Backoff time.Duration
}

// validate mirrors RecoverySpec.Validate with public field paths.
func (rc *FleetRecoveryConfig) validate(prefix string) error {
	if rc == nil {
		return nil
	}
	switch {
	case rc.MaxRetries < 0:
		return fmt.Errorf("%w: %s.max_retries: must be >= 0 (0 selects the default %d), got %d",
			ErrInvalidConfig, prefix, fleet.DefaultMaxRetries, rc.MaxRetries)
	case rc.CheckpointEvery < 0:
		return fmt.Errorf("%w: %s.checkpoint_every: must be >= 0 epochs (0 selects the default %d), got %d",
			ErrInvalidConfig, prefix, fleet.DefaultCheckpointEvery, rc.CheckpointEvery)
	case rc.StepTimeout < 0:
		return fmt.Errorf("%w: %s.step_timeout: must be >= 0 (0 disables the watchdog), got %v",
			ErrInvalidConfig, prefix, rc.StepTimeout)
	case rc.Backoff < 0:
		return fmt.Errorf("%w: %s.backoff: must be >= 0 (0 selects the default %v), got %v",
			ErrInvalidConfig, prefix, fleet.DefaultBackoff, rc.Backoff)
	}
	// Backstop: the engine's own validation guards any constraint added
	// there before this mirror learns its field path.
	if err := rc.internal().Validate(); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrInvalidConfig, prefix, err)
	}
	return nil
}

// internal maps the public recovery configuration onto the fleet
// engine's spec. Nil-safe: a nil receiver disables recovery.
func (rc *FleetRecoveryConfig) internal() *fleet.RecoverySpec {
	if rc == nil {
		return nil
	}
	return &fleet.RecoverySpec{
		MaxRetries:      rc.MaxRetries,
		CheckpointEvery: rc.CheckpointEvery,
		StepTimeout:     rc.StepTimeout,
		Backoff:         rc.Backoff,
	}
}

// FleetConfig drives one fleet run.
type FleetConfig struct {
	// Groups partitions the fleet. At least one group is required.
	Groups []NodeGroup

	// Epochs is the horizon in 5 ms OS epochs per node (default 10).
	Epochs int

	// PowerBudgetW is the global memory-power budget in watts shared
	// by the whole fleet. Each fleet epoch the coordinator
	// redistributes it across nodes as per-node frequency caps
	// (FastCap-style fair assignment); 0 disables cluster capping and
	// every node runs pure MemScale.
	PowerBudgetW float64

	// CapIntervalEpochs is the coordinator period in OS epochs
	// (default 1: caps are reassigned at every epoch boundary).
	CapIntervalEpochs int

	// Seed decorrelates traces, arrivals, and fault schedules across
	// nodes while keeping the whole fleet reproducible: the same
	// FleetConfig yields a bit-identical FleetSummary on any worker
	// count.
	Seed uint64

	// Workers bounds node-level parallelism (0 = GOMAXPROCS).
	Workers int

	// CoreSplit names the policy dividing the core pool between
	// node-level workers and per-node event-engine shards when groups
	// request Shards > 1: "" or "auto" (work-conserving: saturate
	// node-level parallelism first, leftover cores become shards),
	// "nodes" (all cores to node workers; nodes run serial), or
	// "shards" (honor shard requests first, workers from the
	// remainder). Results are bit-identical under every policy; only
	// wall-clock changes.
	CoreSplit string

	// Recovery arms the self-healing supervisor on every node (groups
	// may override it per group). Nil disables recovery.
	Recovery *FleetRecoveryConfig
}

// Validate rejects a degenerate fleet configuration up front. Like
// RunConfig.Validate, every failure wraps ErrInvalidConfig and names
// the offending field with a path (e.g. "groups[2].nodes",
// "groups[0].arrival.burst_probability"); unknown mix and policy names
// additionally match ErrUnknownMix / ErrUnknownPolicy.
func (fc FleetConfig) Validate() error {
	switch {
	case len(fc.Groups) == 0:
		return fmt.Errorf("%w: groups: at least one node group is required", ErrInvalidConfig)
	case fc.Epochs < 0:
		return fmt.Errorf("%w: epochs: must be >= 0 (0 selects the default 10), got %d",
			ErrInvalidConfig, fc.Epochs)
	case math.IsNaN(fc.PowerBudgetW) || math.IsInf(fc.PowerBudgetW, 0) || fc.PowerBudgetW < 0:
		return fmt.Errorf("%w: power_budget_w: must be finite and >= 0 (0 disables capping), got %g",
			ErrInvalidConfig, fc.PowerBudgetW)
	case fc.CapIntervalEpochs < 0:
		return fmt.Errorf("%w: cap_interval_epochs: must be >= 0 (0 selects the default 1), got %d",
			ErrInvalidConfig, fc.CapIntervalEpochs)
	}
	switch fc.CoreSplit {
	case "", "auto", "nodes", "shards":
	default:
		return fmt.Errorf("%w: core_split: must be \"\", %q, %q, or %q, got %q",
			ErrInvalidConfig, "auto", "nodes", "shards", fc.CoreSplit)
	}
	if err := fc.Recovery.validate("recovery"); err != nil {
		return err
	}
	for gi, g := range fc.Groups {
		if g.Nodes <= 0 {
			return fmt.Errorf("%w: groups[%d].nodes: must be positive, got %d",
				ErrInvalidConfig, gi, g.Nodes)
		}
		if _, err := workload.ByName(g.Mix); err != nil {
			return fmt.Errorf("%w: groups[%d].mix: %w", ErrInvalidConfig, gi, err)
		}
		policy := g.Policy
		if policy == "" {
			policy = "MemScale"
		}
		if _, err := policies.ByName(policy); err != nil {
			return fmt.Errorf("%w: groups[%d].policy: %w", ErrInvalidConfig, gi, err)
		}
		switch {
		case math.IsNaN(g.Gamma) || g.Gamma < 0 || g.Gamma >= 1:
			return fmt.Errorf("%w: groups[%d].gamma: must be in [0, 1), got %g",
				ErrInvalidConfig, gi, g.Gamma)
		case g.Cores < 0:
			return fmt.Errorf("%w: groups[%d].cores: must be >= 0, got %d",
				ErrInvalidConfig, gi, g.Cores)
		case g.Channels < 0:
			return fmt.Errorf("%w: groups[%d].channels: must be >= 0, got %d",
				ErrInvalidConfig, gi, g.Channels)
		case g.Shards < 0:
			return fmt.Errorf("%w: groups[%d].shards: must be >= 0 (0 selects the serial engine), got %d",
				ErrInvalidConfig, gi, g.Shards)
		}
		if ch := g.Channels; g.Shards > 1 {
			if ch == 0 {
				ch = config.Default().Channels
			}
			if g.Shards > ch {
				return fmt.Errorf("%w: groups[%d].shards: must not exceed the channel count %d, got %d",
					ErrInvalidConfig, gi, ch, g.Shards)
			}
		}
		if err := g.Arrival.Validate(); err != nil {
			return fmt.Errorf("%w: groups[%d].arrival: %v", ErrInvalidConfig, gi, err)
		}
		if err := g.Faults.validate(fmt.Sprintf("groups[%d].faults", gi)); err != nil {
			return err
		}
		if err := g.Recovery.validate(fmt.Sprintf("groups[%d].recovery", gi)); err != nil {
			return err
		}
	}
	return nil
}

// internal resolves the validated public configuration into the fleet
// engine's own config type.
func (fc FleetConfig) internal() (fleet.Config, error) {
	c := fleet.Config{
		Epochs:    fc.Epochs,
		BudgetW:   fc.PowerBudgetW,
		CapEvery:  fc.CapIntervalEpochs,
		Seed:      fc.Seed,
		Workers:   fc.Workers,
		CoreSplit: fc.CoreSplit,
		Recovery:  fc.Recovery.internal(),
	}
	for gi, g := range fc.Groups {
		mix, err := workload.ByName(g.Mix)
		if err != nil {
			return fleet.Config{}, fmt.Errorf("groups[%d].mix: %w", gi, err)
		}
		policy := g.Policy
		if policy == "" {
			policy = "MemScale"
		}
		spec, err := policies.ByName(policy)
		if err != nil {
			return fleet.Config{}, fmt.Errorf("groups[%d].policy: %w", gi, err)
		}
		name := g.Name
		if name == "" {
			name = fmt.Sprintf("group%d", gi)
		}
		c.Groups = append(c.Groups, fleet.GroupSpec{
			Name: name, Nodes: g.Nodes,
			Mix: mix, Spec: spec,
			Gamma: g.Gamma, Cores: g.Cores, Channels: g.Channels,
			Shards:   g.Shards,
			Arrival:  g.Arrival,
			Faults:   g.Faults.internal(),
			Recovery: g.Recovery.internal(),
		})
	}
	return c, nil
}

// RunFleet simulates the fleet under ctx: per-node paired baselines,
// then the managed runs stepped in lockstep fleet epochs with the
// cluster coordinator redistributing PowerBudgetW between steps.
//
// Deterministic: the same FleetConfig yields a bit-identical
// FleetSummary on any Workers count — parallelism is across nodes
// only, every reduction runs in node order, and the coordinator is
// serial. Node failures (injected panics, transient faults) kill only
// that node: survivors' statistics are still reported and the dead
// nodes' errors come back joined alongside the valid summary,
// mirroring Sweep's partial-failure contract.
func RunFleet(ctx context.Context, fc FleetConfig) (FleetSummary, error) {
	if err := fc.Validate(); err != nil {
		return FleetSummary{}, err
	}
	c, err := fc.internal()
	if err != nil {
		return FleetSummary{}, err
	}
	return fleet.Run(ctx, c)
}

// FleetCheckpointBundle is the state an interrupted fleet run writes:
// one full checkpoint per live node, captured at the window boundary
// the run stopped on. FleetNodeCheckpoint is one node's entry.
type (
	FleetCheckpointBundle = fleet.CheckpointBundle
	FleetNodeCheckpoint   = fleet.NodeCheckpoint
)

// RunFleetInterruptible is RunFleet with a soft-stop signal: when stop
// fires (a closed or signaled channel — wire it to SIGINT/SIGTERM in a
// CLI), the fleet finishes its current lockstep window, captures every
// live node into the returned bundle, and reports ErrInterrupted
// alongside the partial summary (Interrupted set, EpochsCompleted
// counting the finished window boundary). A run that completes without
// interruption returns a nil bundle and behaves exactly like RunFleet.
func RunFleetInterruptible(ctx context.Context, fc FleetConfig, stop <-chan struct{}) (FleetSummary, *FleetCheckpointBundle, error) {
	if err := fc.Validate(); err != nil {
		return FleetSummary{}, nil, err
	}
	c, err := fc.internal()
	if err != nil {
		return FleetSummary{}, nil, err
	}
	c.Interrupt = stop
	return fleet.RunWithCheckpoint(ctx, c)
}

// WriteFleetCheckpoint encodes an interrupt bundle as JSON with the
// format magic and schema version stamped on it.
func WriteFleetCheckpoint(w io.Writer, b *FleetCheckpointBundle) error {
	return fleet.WriteBundle(w, b)
}

// ReadFleetCheckpoint decodes a bundle written by WriteFleetCheckpoint,
// rejecting foreign files and incompatible schema majors (the latter
// with a *FleetSchemaVersionError).
func ReadFleetCheckpoint(r io.Reader) (*FleetCheckpointBundle, error) {
	return fleet.ReadBundle(r)
}

// FleetSchemaVersion is the fleet-summary interchange format version
// ("MAJOR.MINOR") WriteFleetSummary stamps on every summary. Minor
// bumps only add fields, which older readers ignore; a major bump
// means the summary shape changed incompatibly. ReadFleetSummary
// therefore accepts any summary whose major version matches its own
// (including unversioned pre-1.1 summaries, which read as "1.0") and
// rejects the rest with a *FleetSchemaVersionError.
const FleetSchemaVersion = fleet.SchemaVersion

// FleetSchemaVersionError is the typed error ReadFleetSummary returns
// for a summary written by an incompatible (different-major) schema
// version; match it with errors.As.
type FleetSchemaVersionError = fleet.SchemaVersionError

// WriteFleetSummary writes the summary as indented JSON — the
// interchange form cmd/memscale-report reads back with -fleet — with
// the current FleetSchemaVersion stamped on it.
func WriteFleetSummary(w io.Writer, sum FleetSummary) error {
	sum.SchemaVersion = FleetSchemaVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sum)
}

// ReadFleetSummary parses a JSON fleet summary written by
// WriteFleetSummary (or cmd/memscale-fleet's -json flag). Summaries
// from an incompatible schema major version fail with a
// *FleetSchemaVersionError (see FleetSchemaVersion).
func ReadFleetSummary(r io.Reader) (FleetSummary, error) {
	var sum FleetSummary
	dec := json.NewDecoder(r)
	if err := dec.Decode(&sum); err != nil {
		return FleetSummary{}, fmt.Errorf("fleet summary: %w", err)
	}
	if err := fleet.CheckSchemaVersion(sum.SchemaVersion); err != nil {
		return FleetSummary{}, fmt.Errorf("fleet summary: %w", err)
	}
	return sum, nil
}

// WriteFleetNodesCSV writes the per-node outcome table: one row per
// node with its group, paired energy/SER/CPI metrics, arrival
// intensity, and final frequency cap.
func WriteFleetNodesCSV(w io.Writer, sum FleetSummary) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"node", "group", "memory_energy_j", "system_energy_j",
		"baseline_system_energy_j", "ser", "cpi_increase",
		"mean_intensity", "capped_epochs", "final_cap_mhz", "dead",
		"restarts", "crashes", "recovery_epochs", "loss_windows", "lost",
	}); err != nil {
		return err
	}
	for _, n := range sum.PerNode {
		if err := cw.Write([]string{
			strconv.Itoa(n.Node), n.Group,
			ftoa(n.MemoryEnergyJ), ftoa(n.SystemEnergyJ), ftoa(n.BaselineSysJ),
			ftoa(n.SER), ftoa(n.CPIIncrease), ftoa(n.MeanIntensity),
			strconv.Itoa(n.CappedEpochs), strconv.Itoa(n.FinalCapMHz),
			strconv.FormatBool(n.Dead),
			strconv.Itoa(n.Attempts), strconv.Itoa(n.Crashes),
			strconv.Itoa(n.RecoveryEpochs), strconv.Itoa(n.LossWindows),
			strconv.FormatBool(n.Lost),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFleetCapsCSV writes the coordinator's cap-convergence trace:
// one row per fleet epoch with the budget, measured and estimated
// fleet power, the water-filled uniform level, and the churn counters
// the convergence criterion is defined over.
func WriteFleetCapsCSV(w io.Writer, sum FleetSummary) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"epoch", "budget_w", "measured_w", "estimated_w", "deficit_w",
		"uniform_mhz", "promotions", "constrained", "cap_changes",
	}); err != nil {
		return err
	}
	for _, s := range sum.CapTrace {
		if err := cw.Write([]string{
			strconv.Itoa(s.Epoch),
			ftoa(s.BudgetW), ftoa(s.MeasuredW), ftoa(s.EstimatedW), ftoa(s.DeficitW),
			strconv.Itoa(s.UniformMHz), strconv.Itoa(s.Promotions),
			strconv.Itoa(s.Constrained), strconv.Itoa(s.CapChanges),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
