// Package sim wires the full evaluation platform together — cores,
// memory controller, DRAM ranks, and power metering — and drives the
// paper's epoch loop: profile for 300 us at each OS quantum boundary,
// let the governor pick a memory frequency, run the quantum, account
// slack (Section 3.2).
package sim

import (
	"context"
	"fmt"
	"time"

	"memscale/internal/config"
	"memscale/internal/cpu"
	"memscale/internal/dram"
	"memscale/internal/event"
	"memscale/internal/faults"
	"memscale/internal/invariant"
	"memscale/internal/memctrl"
	"memscale/internal/power"
	"memscale/internal/telemetry"
	"memscale/internal/trace"
)

// Profile is the information the OS collects from the performance
// counters over one window (a profiling phase or a whole epoch).
type Profile struct {
	Start, End config.Time
	BusFreq    config.FreqMHz // frequency in force during the window

	// Counters are the deltas of the Section 3.1 counter set.
	Counters memctrl.Counters

	// Instr is the per-core instructions retired in the window (the
	// TIC counter deltas).
	Instr []float64

	// Interval is the power-accounting flush covering the window; it
	// carries the PTC/PTCKEL/ATCKEL/POCC-equivalent state fractions
	// the power model needs.
	Interval power.Interval

	// Energy is the metered energy of the window, as integrated by the
	// power meter from Interval.
	Energy power.Breakdown
}

// Elapsed returns the window length.
func (p Profile) Elapsed() config.Time { return p.End - p.Start }

// Governor is an OS energy-management policy: it observes profiles and
// chooses the memory bus frequency.
type Governor interface {
	Name() string

	// ProfileComplete is invoked after each epoch's profiling phase;
	// the returned frequency is applied for the rest of the epoch.
	ProfileComplete(p Profile) config.FreqMHz

	// EpochEnd is invoked with the whole epoch's profile, after the
	// epoch ran at the chosen frequency; governors update their slack
	// accounting here.
	EpochEnd(p Profile)
}

// DegradableGovernor is the graceful-degradation extension. When the
// fault plane disturbs an epoch, a governor implementing it receives
// EpochDegraded (with the whole-epoch profile and the fault-class
// mask) in place of EpochEnd; it must reset its slack accounting
// rather than trust measurements taken under the disturbance.
// Governors without the hook simply have the degraded epoch withheld
// from EpochEnd.
type DegradableGovernor interface {
	Governor

	// EpochDegraded is invoked instead of EpochEnd for an epoch the
	// fault plane marked degraded.
	EpochDegraded(p Profile, mask faults.Kind)
}

// PerChannelGovernor is the Section 6 future-work extension: a
// governor that picks an independent frequency for every memory
// channel. When a governor implements it, the system applies the
// per-channel choices instead of the uniform one.
type PerChannelGovernor interface {
	Governor

	// ProfileCompletePerChannel returns one bus frequency per channel
	// for the rest of the epoch.
	ProfileCompletePerChannel(p Profile) []config.FreqMHz
}

// EpochRecord captures one epoch for timeline figures. It is the
// telemetry layer's epoch snapshot — one type serves the internal
// timeline, the public API sample, and the JSONL export.
type EpochRecord = telemetry.EpochSnapshot

// Result summarizes a run.
type Result struct {
	Duration config.Time

	// Per-core totals over the full run.
	Instructions []float64
	CPI          []float64

	// Energy.
	Memory       power.Breakdown // memory-subsystem energy (joules)
	NonMemEnergy float64         // rest-of-system energy (joules)
	NonMemPower  float64         // the fixed power it was computed from
	DIMMAvgWatts float64         // average DIMM (DRAM+PLL/Reg) power
	MemAvgWatts  float64         // average memory-subsystem power

	// FreqTime is the time spent at each bus frequency.
	FreqTime map[config.FreqMHz]config.Time

	// Residency is the run's DRAM state-residency account summed over
	// ranks; its Total() equals Duration times the rank count.
	Residency dram.Account

	// Epochs is the per-epoch timeline (only when KeepTimeline).
	Epochs []EpochRecord

	// Faults tallies the disturbances the fault plane actually applied
	// to this run (zero when no injector was attached).
	Faults faults.Counts

	// Events is the number of simulation events fired over the run —
	// the denominator that normalizes host-time throughput (events/op)
	// across workload changes.
	Events uint64

	// InvariantChecks is the number of runtime invariant checks that
	// passed over the run (energy conservation, residency summation,
	// slack ledger). A violated check aborts the run with a typed
	// *invariant.Violation instead of counting.
	InvariantChecks uint64
}

// SystemEnergy returns total server energy for the run.
func (r Result) SystemEnergy() float64 { return r.Memory.Memory() + r.NonMemEnergy }

// MeanCPI returns the average per-core CPI.
func (r Result) MeanCPI() float64 {
	if len(r.CPI) == 0 {
		return 0
	}
	var s float64
	for _, c := range r.CPI {
		s += c
	}
	return s / float64(len(r.CPI))
}

// Options configure a run.
type Options struct {
	// Governor picks frequencies; nil runs the baseline (nominal
	// frequency, no scaling), still with epoch-granularity metering.
	Governor Governor

	// NonMemPower is the fixed rest-of-system power (watts). Use the
	// calibration helper in the experiment layer to derive it; zero is
	// allowed (memory-only energy accounting).
	NonMemPower float64

	// KeepTimeline retains per-epoch records in the Result.
	KeepTimeline bool

	// MaxDuration caps the run length as a safety net (default 2 s).
	MaxDuration config.Time

	// Telemetry, when non-nil, receives samples, events, and epoch
	// snapshots from every layer of the system. Purely observational:
	// the simulated event sequence is identical with or without it.
	Telemetry *telemetry.Recorder

	// Faults, when non-nil, injects the deterministic disturbance
	// schedule into the run. A nil injector is the pristine system:
	// the simulated event sequence is bit-identical to a build without
	// the fault plane.
	Faults *faults.Injector

	// DisableCoalescing forces every completion, refresh, and powerdown
	// transition onto the fully event-driven slow path, firing one event
	// per micro-step as the original formulation did. The coalesced fast
	// paths are constructed to be bit-identical to this mode (the
	// conservation property tests check exactly that), so the switch
	// exists for differential testing and debugging, not correctness.
	DisableCoalescing bool

	// Shards requests the sharded parallel event engine (DESIGN.md
	// §4k/§4l): the memory channels — and the cores bound to them —
	// split across up to Shards event queues that advance concurrently
	// inside each conservative window. 0 or 1 runs the serial engine.
	// Sharding engages only when it is provably bit-identical to the
	// serial engine: the streams' channel-affinity sets must split into
	// at least two confinement groups (connected components), and the
	// governor must be uniform (not per-channel); otherwise the run
	// silently falls back to serial. Telemetry is fully supported: the
	// recorder's per-channel cells record lock-free inside windows and
	// merge deterministically at window edges, so instrumented sharded
	// runs export byte-identical streams to instrumented serial runs.
	// The effective shard count is capped at the confinement-group
	// count.
	Shards int

	// ShardGranularity selects the confinement analysis the engine
	// uses to partition channels into shards. "" (auto) and
	// ShardByBank run the confinement-group analysis: streams'
	// channel-affinity sets union into connected components — the
	// finest sound partition, since banks of one channel share its bus
	// and can never split (DESIGN.md §4l). ShardByChannel restricts to
	// PR 9's strict per-channel sharding: every stream must be
	// confined to a single channel, or the run falls back to serial.
	ShardGranularity string

	// DisableParallel forces the serial engine regardless of Shards —
	// the differential switch mirroring DisableCoalescing.
	DisableParallel bool
}

// ShardGranularity values for Options.ShardGranularity and the public
// RunConfig knob.
const (
	// ShardByChannel requires every stream channel-confined (a
	// partitioned mix) and shards channel-by-channel, exactly as PR 9.
	ShardByChannel = "channel"

	// ShardByBank is the finest sound granularity: confinement groups
	// of channels (banks within a channel share the bus and collapse
	// into its group). Interleaved placements that stripe applications
	// across channel groups shard at group boundaries.
	ShardByBank = "bank"
)

// planShards resolves the run's shard plan: the effective shard count
// plus the channel→shard and core→shard bindings, or (1, nil, nil)
// for the serial engine. The plan's proof obligations are DESIGN.md
// §4k extended by §4l's confinement-group analysis: streams'
// channel-affinity sets union into connected components, every
// component's channels and cores bind to one shard (so every event is
// shard-local), and a uniform governor keeps the MC clock replicas
// coherent. Telemetry no longer blocks eligibility — the recorder's
// per-channel cells are shard-local and merge at window edges. Under
// ShardByChannel the analysis restricts to PR 9's strict rule: every
// stream must be confined to a single channel. A fully interleaved
// placement (one component) falls back to serial: with zero lookahead
// and global same-instant tie-breaks there is no sound split.
func planShards(cfg *config.Config, streams []*trace.Stream, opts Options) (int, []int, []int) {
	if opts.Shards <= 1 || opts.DisableParallel {
		return 1, nil, nil
	}
	if _, perChannel := opts.Governor.(PerChannelGovernor); perChannel {
		return 1, nil, nil
	}
	if opts.ShardGranularity == ShardByChannel {
		for _, st := range streams {
			if _, ok := st.HomeChannel(); !ok {
				return 1, nil, nil
			}
		}
	}
	// Union-find over channels: two channels shared by one stream's
	// affinity set must land in the same shard. A stream with no
	// affinity set roams every channel, collapsing all into one
	// component.
	parent := make([]int, cfg.Channels)
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, st := range streams {
		chs := st.Channels()
		if len(chs) == 0 {
			return 1, nil, nil
		}
		for _, ch := range chs[1:] {
			ra, rb := find(chs[0]), find(ch)
			if ra != rb {
				if rb < ra {
					ra, rb = rb, ra
				}
				parent[rb] = ra
			}
		}
	}
	// Number components by their smallest channel (ascending scan), so
	// the all-singleton case reduces exactly to PR 9's ch % n map.
	comp := make([]int, cfg.Channels)
	ncomp := 0
	for ch := 0; ch < cfg.Channels; ch++ {
		if find(ch) == ch {
			comp[ch] = ncomp
			ncomp++
		}
	}
	if ncomp < 2 {
		return 1, nil, nil
	}
	n := opts.Shards
	if n > ncomp {
		n = ncomp
	}
	chShard := make([]int, cfg.Channels)
	for ch := range chShard {
		chShard[ch] = comp[find(ch)] % n
	}
	coreShard := make([]int, len(streams))
	for i, st := range streams {
		coreShard[i] = chShard[st.Channels()[0]]
	}
	return n, chShard, coreShard
}

// System is one fully wired simulated server.
type System struct {
	Cfg    config.Config
	Q      *event.Queue
	MC     *memctrl.Controller
	Cores  []*cpu.Core
	Model  *power.Model
	Meter  *power.Meter
	opts   Options
	result Result

	lastCounters memctrl.Counters
	lastInstr    []float64
	started      bool

	// capFreq is the external frequency ceiling (0 = uncapped); see
	// SetFrequencyCap.
	capFreq config.FreqMHz

	// step carries the epoch loop's cross-epoch state so the loop can
	// run either to completion (run) or one epoch at a time (StepEpoch).
	step stepState

	// onForceRefresh is the pre-bound refresh-storm callback, so storm
	// bursts schedule without capturing a closure and a checkpoint can
	// name the pending bursts.
	onForceRefresh event.Bound

	// shards is the sharded parallel event engine (nil when the serial
	// engine is in force); chShard maps each memory channel to its
	// owning shard and coreShard each core to the shard of its
	// confinement group. Under the sharded engine s.Q aliases shard 0,
	// whose clock equals every other shard's at window edges.
	shards    *event.ShardSet
	chShard   []int
	coreShard []int

	// pendingStorms holds refresh-storm bursts registered at an epoch
	// edge but not yet fired. Under the sharded engine a burst touches
	// every channel, so it lives outside any one shard's queue: its
	// per-shard ordering tickets are reserved at registration and the
	// burst fires at a cross-shard exchange point in stepShards.
	pendingStorms []pendingStorm

	// invEnergyJ is the invariant plane's energy witness: the running
	// sum of per-epoch memory energy, accumulated with a different
	// float association than the meter's per-interval total so the two
	// cross-check each other.
	invEnergyJ float64
}

// stepState is the loop-carried state of the epoch loop, hoisted out of
// run() so StepEpoch can execute one iteration at a time with identical
// behaviour.
type stepState struct {
	predictor interface {
		PredictedMeanCPI(config.FreqMHz) float64
	}
	slacker  interface{ Slack() []config.Time }
	minSlack interface{ MinSlack() config.Time }
	degrader DegradableGovernor

	perChannel    bool
	controlFaults bool

	prevSlack []config.Time
	idx       int
}

// pendingStorm is one registered-but-unfired refresh-storm burst under
// the sharded engine: its fire time and the per-shard ordering tickets
// reserved when it was registered.
type pendingStorm struct {
	at      config.Time
	tickets []event.Seq
}

// New builds a system running the given per-core streams under cfg.
func New(cfg config.Config, streams []*trace.Stream, opts Options) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(streams) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d streams for %d cores", len(streams), cfg.Cores)
	}
	s := &System{Cfg: cfg, opts: opts}
	if n, chShard, coreShard := planShards(&s.Cfg, streams, opts); n > 1 {
		s.shards = event.NewShardSet(n)
		s.chShard = chShard
		s.coreShard = coreShard
		s.Q = s.shards.Shard(0)
	} else {
		s.Q = &event.Queue{}
	}
	s.onForceRefresh = s.forceRefreshEvent
	s.MC = memctrl.New(&s.Cfg, s.Q)
	if s.shards != nil {
		qs := make([]*event.Queue, s.Cfg.Channels)
		for ch := range qs {
			qs[ch] = s.shards.Shard(s.chShard[ch])
		}
		s.MC.SetShardQueues(qs)
	}
	s.Model = power.NewModel(&s.Cfg)
	s.Meter = power.NewMeter(s.Model)
	if opts.Telemetry != nil {
		s.MC.SetTelemetry(opts.Telemetry)
		s.Meter.SetTelemetry(opts.Telemetry)
	}
	for i, st := range streams {
		q := s.Q
		if s.shards != nil {
			// The plan proved the stream confined to one confinement
			// group; the core schedules on — and its data returns arrive
			// via — that group's shard.
			q = s.shards.Shard(s.coreShard[i])
		}
		s.Cores = append(s.Cores, cpu.New(i, &s.Cfg, q, s.MC, st))
	}
	s.result.FreqTime = map[config.FreqMHz]config.Time{}
	if s.opts.MaxDuration <= 0 {
		s.opts.MaxDuration = 2 * config.Second
	}
	return s, nil
}

func (s *System) start() {
	if s.started {
		panic("sim: system started twice")
	}
	s.started = true
	s.MC.Start()
	for _, c := range s.Cores {
		c.Start(s.Q.Now())
	}
	s.lastCounters = s.MC.Counters()
	s.lastInstr = make([]float64, len(s.Cores))
	s.bindGovernor()

	if s.opts.Telemetry != nil && s.step.slacker != nil {
		s.step.prevSlack = s.step.slacker.Slack()
	}
}

// bindGovernor derives the epoch loop's governor hooks. Split out of
// start so a checkpoint restore can bind the hooks without re-running
// the boot sequence.
func (s *System) bindGovernor() {
	// Optional governor hooks the telemetry decision and slack traces
	// probe for; governors that lack them simply produce sparser traces.
	s.step.predictor, _ = s.opts.Governor.(interface {
		PredictedMeanCPI(config.FreqMHz) float64
	})
	s.step.slacker, _ = s.opts.Governor.(interface{ Slack() []config.Time })
	s.step.minSlack, _ = s.opts.Governor.(interface{ MinSlack() config.Time })
	s.step.degrader, _ = s.opts.Governor.(DegradableGovernor)
	_, s.step.perChannel = s.opts.Governor.(PerChannelGovernor)
	// Fault classes that disturb the control path only make sense
	// under a uniform governor: the baseline never consults counters
	// or relocks, and the per-channel extension is outside the fault
	// model. Refresh storms hit the DRAM regardless of who governs.
	s.step.controlFaults = s.opts.Governor != nil && !s.step.perChannel
}

// SetFrequencyCap sets the external bus-frequency ceiling applied to
// the governor's choice from the next epoch on; 0 clears the cap. The
// cap composes with thermal-emergency ceilings (the lower wins) and
// never marks an epoch degraded: it is an operating constraint, not a
// fault. This is the hook cluster-level power capping feeds
// (internal/fleet). f must be 0 or on the bus-frequency ladder.
func (s *System) SetFrequencyCap(f config.FreqMHz) error {
	if f != 0 && !config.ValidBusFrequency(f) {
		return fmt.Errorf("sim: frequency cap %v is not on the bus-frequency ladder", f)
	}
	s.capFreq = f
	return nil
}

// FrequencyCap returns the ceiling set by SetFrequencyCap (0 when
// uncapped).
func (s *System) FrequencyCap() config.FreqMHz { return s.capFreq }

// ParallelShards reports how many shards the event engine actually
// runs: the resolved count under the sharded engine, 1 when the serial
// engine is in force — whether by request (Shards <= 1,
// DisableParallel) or by eligibility fallback.
func (s *System) ParallelShards() int {
	if s.shards == nil {
		return 1
	}
	return s.shards.Shards()
}

// flush closes the power interval at now, meters it, and returns it
// alongside its energy breakdown.
func (s *System) flush(now config.Time) (power.Interval, power.Breakdown) {
	iv := s.MC.FlushInterval(now)
	b := s.Meter.Record(iv)
	s.result.FreqTime[iv.Channels[0].BusFreq] += iv.Duration
	return iv, b
}

// window snapshots counter/instruction deltas since the last call and
// pairs them with the flushed power interval.
func (s *System) window(start, now config.Time, freq config.FreqMHz) Profile {
	// Every window call sits at a window edge — the shards (or the
	// serial queue) are quiescent — so fold the per-channel telemetry
	// cells into the run-wide collectors before anything else pushes.
	s.opts.Telemetry.MergeChannels()
	cur := s.MC.Counters()
	instr := make([]float64, len(s.Cores))
	for i, c := range s.Cores {
		total := c.Instructions(now)
		instr[i] = total - s.lastInstr[i]
		s.lastInstr[i] = total
	}
	iv, b := s.flush(now)
	p := Profile{
		Start:    start,
		End:      now,
		BusFreq:  freq,
		Counters: cur.Sub(s.lastCounters),
		Instr:    instr,
		Interval: iv,
		Energy:   b,
	}
	s.lastCounters = cur
	return p
}

// RunForInstructions runs whole epochs until every core has retired at
// least target instructions (the paper's "slowest application reaches
// 100M" criterion), or MaxDuration elapses.
func (s *System) RunForInstructions(target float64) Result {
	r, _ := s.run(context.Background(), func(now config.Time) bool {
		for _, c := range s.Cores {
			if c.Instructions(now) < target {
				return false
			}
		}
		return true
	})
	return r
}

// RunFor runs whole epochs until at least d has elapsed.
func (s *System) RunFor(d config.Time) Result {
	r, _ := s.RunForContext(context.Background(), d)
	return r
}

// RunForContext is RunFor with cancellation: it runs whole epochs
// until at least d has elapsed, polling ctx at a sub-epoch granularity
// so a cancelled run returns promptly with ctx.Err(). A run is only
// meaningful when the error is nil; cancellation discards the partial
// result. Cancellation never alters a completed run: the event
// sequence of an uncancelled simulation is bit-identical to RunFor.
func (s *System) RunForContext(ctx context.Context, d config.Time) (Result, error) {
	return s.run(ctx, func(now config.Time) bool { return now >= d })
}

// cancelCheckStep is the simulated-time granularity at which the epoch
// loop polls the context: 100 us gives ~50 checks per 5 ms OS quantum,
// keeping cancellation latency a small fraction of an epoch's host
// time while adding negligible overhead.
const cancelCheckStep = 100 * config.Microsecond

// stepUntil drains the event queue up to deadline, polling ctx every
// cancelCheckStep of simulated time. Splitting RunUntil into chunks is
// behavior-identical: events still fire in timestamp order, and the
// clock lands exactly on deadline.
func (s *System) stepUntil(ctx context.Context, deadline config.Time) error {
	if !s.opts.DisableCoalescing {
		// Between here and the deadline nothing samples counters, power,
		// or instruction state, so the controller may collapse
		// completions into closed-form inline updates (DESIGN.md §4g).
		// Cancellation is safe: an aborted run discards its partial
		// result, so mid-chunk state is never observed either.
		s.MC.SetQuiesceHorizon(deadline)
	}
	if s.shards != nil {
		return s.stepShards(ctx, deadline)
	}
	if ctx.Done() == nil {
		// No cancellation possible (context.Background()): skip the
		// chunking entirely.
		s.Q.RunUntil(deadline)
		return nil
	}
	for {
		next := s.Q.Now() + cancelCheckStep
		if next > deadline {
			next = deadline
		}
		s.Q.RunUntil(next)
		if err := ctx.Err(); err != nil {
			return err
		}
		if next >= deadline {
			return nil
		}
	}
}

// stepShards is the sharded engine's window loop. Each pending storm
// burst splits the drain at a cross-shard exchange point; the
// stretches between are conservative windows the shards advance
// concurrently. The quiesce horizon stepUntil just declared — nothing
// samples counters, power, or instruction state strictly before the
// deadline — is exactly the no-cross-shard-interaction guarantee the
// windows need, since every event inside a window is per-channel by
// construction.
func (s *System) stepShards(ctx context.Context, deadline config.Time) error {
	for len(s.pendingStorms) > 0 && s.pendingStorms[0].at <= deadline {
		ps := s.pendingStorms[0]
		s.pendingStorms = s.pendingStorms[1:]
		s.shards.RunCross(ps.at, ps.tickets, func(now config.Time) { s.MC.ForceRefresh(now) })
		if ctx.Done() != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	if ctx.Done() == nil {
		s.shards.RunUntil(deadline)
		return nil
	}
	for {
		next := s.shards.Now() + cancelCheckStep
		if next > deadline {
			next = deadline
		}
		s.shards.RunUntil(next)
		if err := ctx.Err(); err != nil {
			return err
		}
		if next >= deadline {
			return nil
		}
	}
}

func (s *System) run(ctx context.Context, done func(config.Time) bool) (Result, error) {
	if !s.started {
		s.start()
	}
	for {
		rec, err := s.stepEpoch(ctx, false)
		if err != nil {
			return Result{}, err
		}
		if done(rec.End) || rec.End >= s.opts.MaxDuration {
			break
		}
	}
	return s.finalize(), nil
}

// StepEpoch advances the simulation by exactly one OS epoch and returns
// its fully assembled record, starting the system on the first call.
// Interleaving StepEpoch with configuration hooks (SetFrequencyCap,
// per-stream intensity changes) is the substrate for closed-loop
// drivers such as the fleet coordinator; a run stepped to the same
// horizon with unchanged hooks is bit-identical to RunFor. Call
// Finalize when done stepping.
func (s *System) StepEpoch(ctx context.Context) (EpochRecord, error) {
	if !s.started {
		s.start()
	}
	return s.stepEpoch(ctx, true)
}

// Finalize closes the run after manual StepEpoch driving and returns
// the accumulated Result (the same totals run-to-completion callers
// get).
func (s *System) Finalize() Result {
	if !s.started {
		panic("sim: Finalize before any epoch ran")
	}
	return s.finalize()
}

// stepEpoch executes one epoch of the loop: profile, decide, run the
// quantum, account. The returned record always carries Index, Start,
// End, Freq, and WantFreq; the full snapshot (CPI, energy, residency)
// is assembled when the caller wants it or telemetry/timeline needs it
// anyway.
func (s *System) stepEpoch(ctx context.Context, wantRec bool) (EpochRecord, error) {
	epoch := s.Cfg.Policy.EpochLength
	profLen := s.Cfg.Policy.ProfilingLength
	tel := s.opts.Telemetry
	inj := s.opts.Faults
	predictor := s.step.predictor
	slacker := s.step.slacker
	degrader := s.step.degrader
	controlFaults := s.step.controlFaults

	{
		idx := s.step.idx
		s.step.idx++
		start := s.Q.Now()
		freq := s.MC.BusFreq()
		tel.SetEpoch(idx)
		var hostStart time.Time
		if tel != nil {
			// Host wall clock is observed only under telemetry and never
			// feeds back into simulated time.
			hostStart = time.Now()
		}

		plan := inj.EpochPlan(idx)
		if plan.Panic {
			panic(faults.InjectedPanic{Epoch: idx})
		}
		if plan.Abort {
			return EpochRecord{}, fmt.Errorf("sim: injected abort at epoch %d: %w", idx, faults.ErrTransient)
		}
		var mask faults.Kind

		// Profiling phase.
		profEnd := start + profLen
		if err := s.stepUntil(ctx, profEnd); err != nil {
			return EpochRecord{}, err
		}
		p := s.window(start, profEnd, freq)

		// Counter corruption: the profiled window cannot be trusted.
		// Degrade gracefully by spending a second profiling window and
		// deciding from that; when the re-profile is corrupted too, the
		// epoch has no usable profile at all.
		decisionAt := profEnd
		decisionProf := p
		trusted := true
		if controlFaults && plan.CorruptProfile {
			s.result.Faults.CounterCorruptions++
			mask |= faults.KindCounterCorruption
			var detail int64
			if plan.CorruptReprofile {
				detail = 1
				trusted = false
			}
			tel.Fault(profEnd, uint8(faults.KindCounterCorruption), detail, 0)
			if !plan.CorruptReprofile {
				reprofEnd := profEnd + profLen
				if end := start + epoch; reprofEnd > end {
					reprofEnd = end
				}
				if err := s.stepUntil(ctx, reprofEnd); err != nil {
					return EpochRecord{}, err
				}
				p2 := s.window(profEnd, reprofEnd, freq)
				decisionProf = p2
				p = mergeProfiles(p, p2)
				decisionAt = reprofEnd
			}
		}

		// Candidate frequency ceiling: the external cap (cluster power
		// capping) and a thermal emergency both lower it; the lower
		// wins. maxWant tracks the ceiling absent the external cap so
		// WantFreq can report what the node would run uncapped.
		maxWant := config.MaxBusFreq
		maxAllowed := maxWant
		if s.capFreq != 0 && s.capFreq < maxAllowed {
			maxAllowed = s.capFreq
		}
		if controlFaults && plan.ThermalCeiling != 0 {
			if plan.ThermalCeiling < maxWant {
				maxWant = plan.ThermalCeiling
			}
			if plan.ThermalCeiling < maxAllowed {
				maxAllowed = plan.ThermalCeiling
			}
			s.result.Faults.ThermalEpochs++
			mask |= faults.KindThermal
			tel.Fault(decisionAt, uint8(faults.KindThermal), int64(plan.ThermalCeiling), 0)
		}

		// Refresh storm: a retention emergency owes the DRAM extra
		// all-bank refresh rounds, spaced so each round can complete
		// before the next lands.
		if plan.Storm {
			s.result.Faults.RefreshStorms++
			mask |= faults.KindRefreshStorm
			tel.Fault(decisionAt, uint8(faults.KindRefreshStorm), int64(plan.StormBursts), 0)
			spacing := 2 * s.MC.Timing().TRFC
			for b := 0; b < plan.StormBursts; b++ {
				at := decisionAt + config.Time(b)*spacing
				if s.shards != nil {
					// A burst refreshes every channel, so it is a
					// cross-shard event: reserve its per-shard ordering
					// tickets now, while the queues sit quiescent at the
					// edge, and fire it at the exchange point in
					// stepShards.
					s.pendingStorms = append(s.pendingStorms,
						pendingStorm{at: at, tickets: s.shards.ReserveTickets()})
				} else {
					s.Q.ScheduleBound(at, s.onForceRefresh, nil, 0, 0)
				}
			}
		}

		// Control algorithm invocation + bus frequency re-locking.
		chosen := freq
		want := freq
		var chosenPer []config.FreqMHz
		if pcg, ok := s.opts.Governor.(PerChannelGovernor); ok {
			chosenPer = pcg.ProfileCompletePerChannel(p)
			chosen = config.MinBusFreq
			for ch, f := range chosenPer {
				s.MC.SetChannelFrequency(profEnd, ch, f)
				if f > chosen {
					chosen = f
				}
			}
			want = chosen
		} else if s.opts.Governor != nil {
			if trusted && !plan.Storm {
				chosen = s.opts.Governor.ProfileComplete(decisionProf)
				want = chosen
			} else {
				// Graceful degradation: with no trustworthy profile, or
				// a retention emergency stealing bandwidth, fall back to
				// the maximum allowed frequency instead of guessing.
				chosen = maxAllowed
				want = maxWant
			}
			if want > maxWant {
				want = maxWant
			}
			if chosen > maxAllowed {
				chosen = maxAllowed
			}
			if chosen != freq {
				penalty := s.MC.RelockPenalty(chosen)
				if plan.RelockFailures > 0 {
					// Transient PLL/DLL relock failures: each failed
					// attempt halts the channels for the full penalty
					// plus exponential backoff before the retry.
					s.result.Faults.RelockFaults++
					mask |= faults.KindRelock
					stall := inj.RelockStall(penalty, plan.RelockFailures, plan.RelockAbandoned)
					detail := int64(plan.RelockFailures)
					if plan.RelockAbandoned {
						// Every bounded retry failed: give up, stay at
						// the old frequency, eat the stall.
						detail = -detail
						s.result.Faults.RelockAbandoned++
						s.MC.StallChannels(decisionAt, stall)
						chosen = freq
					} else {
						s.MC.SetBusFrequencyStalled(decisionAt, chosen, stall-penalty)
					}
					tel.Fault(decisionAt, uint8(faults.KindRelock), detail, stall)
				} else {
					s.MC.SetBusFrequency(decisionAt, chosen)
				}
			}
		}
		var predicted float64
		if tel != nil && predictor != nil {
			predicted = predictor.PredictedMeanCPI(chosen)
		}

		// Run out the epoch at the chosen frequency.
		epochEnd := start + epoch
		if err := s.stepUntil(ctx, epochEnd); err != nil {
			return EpochRecord{}, err
		}
		ep := s.window(decisionAt, epochEnd, chosen)
		if s.opts.Governor != nil {
			// The governor accounts slack over the whole epoch.
			whole := ep
			whole.Start = start
			whole.Counters = p.Counters.Add(ep.Counters)
			whole.Instr = make([]float64, len(p.Instr))
			for i := range whole.Instr {
				whole.Instr[i] = p.Instr[i] + ep.Instr[i]
			}
			if mask != 0 {
				// Degraded epoch: its measurements must not feed the
				// model. Governors with the hook reset their slack
				// accounting; the rest just skip the update.
				if degrader != nil {
					degrader.EpochDegraded(whole, mask)
				}
			} else {
				s.opts.Governor.EpochEnd(whole)
			}
		}
		if mask != 0 {
			s.result.Faults.DegradedEpochs++
			tel.DegradedEpoch(epochEnd, uint8(mask), chosen)
		}
		if tel != nil && slacker != nil {
			cur := slacker.Slack()
			for i := range cur {
				var prev config.Time
				if i < len(s.step.prevSlack) {
					prev = s.step.prevSlack[i]
				}
				tel.Slack(epochEnd, i, (cur[i] - prev).Seconds(), cur[i].Seconds())
			}
			s.step.prevSlack = cur
		}

		if err := s.checkInvariants(start, epochEnd, p, ep); err != nil {
			return EpochRecord{}, err
		}

		var rec EpochRecord
		if wantRec || s.opts.KeepTimeline || tel != nil {
			rec = s.snapshotEpoch(idx, start, decisionAt, epochEnd, chosen, want, chosenPer, p, ep)
			rec.FaultMask = uint8(mask)
			if tel != nil {
				rec.HostNs = time.Since(hostStart).Nanoseconds()
				tel.ObserveEpochHost(rec.HostNs)
				if s.opts.Governor != nil {
					tel.Decision(decisionAt, freq, chosen, predicted, rec.MeanCPI())
				}
				tel.AddEpoch(rec)
			}
			if s.opts.KeepTimeline {
				s.result.Epochs = append(s.result.Epochs, rec)
			}
		} else {
			// Run-to-completion callers only consult the epoch bounds;
			// skip the full snapshot assembly.
			rec.Index = idx
			rec.Start = start
			rec.End = epochEnd
			rec.Freq = chosen
			rec.WantFreq = want
		}
		return rec, nil
	}
}

// energyWitnessRelTol bounds the drift between the invariant plane's
// per-epoch energy witness and the meter's per-interval total. The two
// sum the same values under different float associations, so they
// agree to a few ulps per epoch; 1e-9 relative leaves ~7 orders of
// magnitude of headroom over that while catching any real divergence
// (a dropped interval, a double count, a NaN).
const energyWitnessRelTol = 1e-9

// checkInvariants is the runtime invariant plane's per-epoch pass
// (DESIGN.md §4j). Every check is allocation-free and runs on every
// epoch of every run; a failure aborts the epoch with a typed
// *invariant.Violation wrapping invariant.ErrInvariant.
func (s *System) checkInvariants(start, epochEnd config.Time, p, ep Profile) error {
	// Residency conservation: the DRAM background-state account over
	// the epoch's two windows must sum to exactly epoch-length x ranks
	// — integer nanosecond bookkeeping, so equality is exact.
	wantRes := (epochEnd - start) * config.Time(s.Cfg.TotalRanks())
	gotRes := p.Interval.DRAMTotal().Total() + ep.Interval.DRAMTotal().Total()
	if gotRes != wantRes {
		return invariant.Violated("residency_epoch_sum",
			"epoch [%v, %v): residency sums to %v, want %v (%d ranks)",
			start, epochEnd, gotRes, wantRes, s.Cfg.TotalRanks())
	}
	s.result.InvariantChecks++

	// Energy conservation: the per-epoch witness must track the meter.
	s.invEnergyJ += p.Energy.Memory() + ep.Energy.Memory()
	if metered := s.Meter.Total().Memory(); !invariant.CloseRel(s.invEnergyJ, metered, energyWitnessRelTol) {
		return invariant.Violated("energy_conservation",
			"epoch ending %v: witness %.12g J vs metered %.12g J beyond %g relative",
			epochEnd, s.invEnergyJ, metered, energyWitnessRelTol)
	}
	s.result.InvariantChecks++

	// Slack ledger: Equation 1's account may dip below zero only by
	// the model's one-epoch misprediction (EpochEnd refits before
	// updating, so the realized target can undershoot the projected
	// one); anything past a full epoch of debt is corruption, not
	// misprediction.
	if s.step.minSlack != nil {
		epoch := s.Cfg.Policy.EpochLength
		if lo := s.step.minSlack.MinSlack(); lo < -epoch {
			return invariant.Violated("slack_ledger",
				"epoch ending %v: min per-core slack %v below one-epoch bound -%v",
				epochEnd, lo, epoch)
		}
		s.result.InvariantChecks++
	}
	return nil
}

// forceRefreshEvent is the bound form of one refresh-storm burst.
func (s *System) forceRefreshEvent(now config.Time, _ any, _, _ int32) {
	s.MC.ForceRefresh(now)
}

// mergeProfiles concatenates two adjacent windows into one: counter
// and instruction deltas add, power intervals and metered energy
// accumulate, and the span covers both.
func mergeProfiles(a, b Profile) Profile {
	out := a
	out.End = b.End
	out.Counters = a.Counters.Add(b.Counters)
	out.Instr = make([]float64, len(a.Instr))
	for i := range out.Instr {
		out.Instr[i] = a.Instr[i] + b.Instr[i]
	}
	out.Interval = mergeIntervals(a.Interval, b.Interval)
	out.Energy = a.Energy
	out.Energy.Add(b.Energy)
	return out
}

// mergeIntervals adds two adjacent power intervals; the later
// interval's operating points win (they are what the epoch continues
// under).
func mergeIntervals(a, b power.Interval) power.Interval {
	out := power.Interval{
		Duration:  a.Duration + b.Duration,
		MCBusFreq: b.MCBusFreq,
		Channels:  make([]power.ChannelSlice, len(a.Channels)),
	}
	for i := range a.Channels {
		c := b.Channels[i]
		c.Busy += a.Channels[i].Busy
		c.DRAM.Add(a.Channels[i].DRAM)
		out.Channels[i] = c
	}
	return out
}

// snapshotEpoch assembles the per-epoch telemetry record from the two
// windows of one epoch (profiling phase + epoch body).
func (s *System) snapshotEpoch(idx int, start, profEnd, epochEnd config.Time,
	chosen, want config.FreqMHz, chosenPer []config.FreqMHz, p, ep Profile) EpochRecord {
	energy := p.Energy
	energy.Add(ep.Energy)
	residency := p.Interval.DRAMTotal()
	residency.Add(ep.Interval.DRAMTotal())

	coreCPI := make([]float64, len(s.Cores))
	cycles := s.Cfg.TimeToCPUCycles(epochEnd - start)
	for i := range s.Cores {
		if n := p.Instr[i] + ep.Instr[i]; n > 0 {
			coreCPI[i] = cycles / n
		}
	}
	util := make([]float64, len(ep.Interval.Channels))
	for i := range ep.Interval.Channels {
		util[i] = float64(ep.Interval.Channels[i].Busy) / float64(ep.Interval.Duration)
	}
	return EpochRecord{
		Index:       idx,
		Start:       start,
		End:         epochEnd,
		Freq:        chosen,
		WantFreq:    want,
		ChannelFreq: chosenPer,
		CoreCPI:     coreCPI,
		ChannelUtil: util,
		Energy:      energy.Export(),
		Residency:   residency,
		Reads:       p.Counters.Reads + ep.Counters.Reads,
		Writebacks:  p.Counters.Writebacks + ep.Counters.Writebacks,
	}
}

func (s *System) finalize() Result {
	// Safety merge: the last epoch's window calls drained the cells
	// already, but a run abandoned mid-epoch may hold staged samples.
	s.opts.Telemetry.MergeChannels()
	now := s.Q.Now()
	r := &s.result
	r.Duration = now
	r.Instructions = make([]float64, len(s.Cores))
	r.CPI = make([]float64, len(s.Cores))
	for i, c := range s.Cores {
		r.Instructions[i] = c.Instructions(now)
		r.CPI[i] = c.CPI(now)
	}
	r.Memory = s.Meter.Total()
	r.Residency = s.Meter.Residency()
	r.NonMemPower = s.opts.NonMemPower
	r.NonMemEnergy = s.opts.NonMemPower * now.Seconds()
	r.DIMMAvgWatts = s.Meter.AverageDIMMPower()
	r.MemAvgWatts = s.Meter.AveragePower()
	r.Events = s.Q.Fired()
	if s.shards != nil {
		r.Events = s.shards.Fired()
	}
	return *r
}
