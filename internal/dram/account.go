package dram

import "memscale/internal/config"

// Account accumulates the state durations and event counts of one rank
// between flushes. It is exactly the information the Micron DDR3 power
// model needs (background state fractions, activation and refresh
// counts, burst occupancy) plus the paper's PTC/PTCKEL/ATCKEL counter
// inputs.
type Account struct {
	// Background state durations.
	ActiveStandby    config.Time // >= 1 bank open, CKE high
	PrechargeStandby config.Time // all banks closed, CKE high
	ActivePD         config.Time // >= 1 bank open, CKE low
	PrechargePD      config.Time // all banks closed, CKE low, DLL on (fast exit)
	PrechargePDSlow  config.Time // all banks closed, CKE low, DLL off (slow exit)
	Refreshing       config.Time // rank executing a refresh (tRFC windows)

	// Event counts and occupancies.
	Activations uint64      // row activate(+precharge) pairs
	Refreshes   uint64      // refresh commands executed
	PDExits     uint64      // powerdown exits (EPDC)
	ReadBurst   config.Time // time this rank drove the bus for reads
	WriteBurst  config.Time // time this rank drove the bus for writes
	TermBurst   config.Time // time other ranks on the channel drove the bus
}

// Total returns the accounted wall-clock duration.
func (a Account) Total() config.Time {
	return a.ActiveStandby + a.PrechargeStandby + a.ActivePD +
		a.PrechargePD + a.PrechargePDSlow + a.Refreshing
}

// Add accumulates b into a.
func (a *Account) Add(b Account) {
	a.ActiveStandby += b.ActiveStandby
	a.PrechargeStandby += b.PrechargeStandby
	a.ActivePD += b.ActivePD
	a.PrechargePD += b.PrechargePD
	a.PrechargePDSlow += b.PrechargePDSlow
	a.Refreshing += b.Refreshing
	a.Activations += b.Activations
	a.Refreshes += b.Refreshes
	a.PDExits += b.PDExits
	a.ReadBurst += b.ReadBurst
	a.WriteBurst += b.WriteBurst
	a.TermBurst += b.TermBurst
}

// PrechargedFraction returns the fraction of accounted time with all
// banks precharged (the PTC counter), CKE high or low.
func (a Account) PrechargedFraction() float64 {
	total := a.Total()
	if total == 0 {
		return 1
	}
	return float64(a.PrechargeStandby+a.PrechargePD+a.PrechargePDSlow) / float64(total)
}

// PrechargePDFraction returns the fraction of time precharged with CKE
// low (the PTCKEL counter).
func (a Account) PrechargePDFraction() float64 {
	total := a.Total()
	if total == 0 {
		return 0
	}
	return float64(a.PrechargePD+a.PrechargePDSlow) / float64(total)
}

// ActivePDFraction returns the fraction of time active with CKE low
// (the ATCKEL counter).
func (a Account) ActivePDFraction() float64 {
	total := a.Total()
	if total == 0 {
		return 0
	}
	return float64(a.ActivePD) / float64(total)
}
