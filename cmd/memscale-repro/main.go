// Command memscale-repro regenerates the paper's evaluation: every
// table and figure (Table 1-2, Figures 2, 5-15, and the Section 4.2.4
// sensitivity extras), printed as ASCII tables and optionally written
// as CSV files for plotting.
//
// Usage:
//
//	memscale-repro [-experiment all|table1|figure5+6|...] [-epochs N]
//	               [-gamma 0.10] [-workers N] [-shards N] [-csv DIR]
//	               [-quiet]
//
// The default scale (10 quanta = 50 ms simulated per run) reproduces
// the paper's trends in roughly half an hour of host time on one core;
// the experiment grids are embarrassingly parallel, so on a multicore
// host the sweep engine divides that by the worker count (default
// GOMAXPROCS). Raise -epochs for tighter numbers. Ctrl-C cancels the
// in-flight simulations promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"memscale"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id to run ("+strings.Join(memscale.Experiments(), ", ")+", or all)")
	epochs := flag.Int("epochs", 10, "OS quanta (5 ms each) per run")
	timelineEpochs := flag.Int("timeline-epochs", 20, "OS quanta for the figure 7/8 timelines")
	gamma := flag.Float64("gamma", 0.10, "maximum allowed performance degradation")
	workers := flag.Int("workers", 0, "concurrent simulations per experiment grid (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 1, "event-engine shards per simulation (1 = serial; >1 engages the parallel engine on partitioned or interleaved workloads)")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV files (optional)")
	quiet := flag.Bool("quiet", false, "suppress per-run progress lines")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range memscale.Experiments() {
			fmt.Println(id)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	params := memscale.ExperimentParams{
		Epochs:         *epochs,
		TimelineEpochs: *timelineEpochs,
		Gamma:          *gamma,
		Workers:        *workers,
		Shards:         *shards,
	}
	if !*quiet {
		params.Progress = os.Stderr
	}

	start := time.Now()
	reports, err := memscale.RunExperimentContext(ctx, *experiment, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memscale-repro:", err)
		os.Exit(1)
	}

	for _, r := range reports {
		fmt.Print(r.Text)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "memscale-repro:", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, r.ID+".csv")
			if err := os.WriteFile(path, []byte(r.CSV), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "memscale-repro:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	// The same engine digest memscale-sim prints; per-run eligibility
	// still decides, so a shard request is a ceiling across the grids.
	engine := "serial"
	if *shards > 1 {
		engine = fmt.Sprintf("up to %d shards", *shards)
	}
	fmt.Fprintf(os.Stderr, "event engine: %s\n", engine)
	fmt.Fprintf(os.Stderr, "completed %d report(s) in %s\n", len(reports), time.Since(start).Round(time.Second))
}
