// Package trace synthesizes deterministic LLC-miss streams.
//
// The paper drives its memory simulator with M5-generated traces of
// SPEC 2000/2006 workloads. Those traces are unavailable, so this
// package substitutes statistically equivalent synthetic streams: each
// application is described by a Profile (phases of base CPI, miss and
// writeback rates, row locality, and footprint), and a Stream expands
// a profile into the exact sequence the core model replays. Streams
// are pure functions of (profile, seed): the same stream is replayed
// no matter which policy or frequency the system runs at, which makes
// cross-policy comparisons paired.
package trace

import (
	"hash/fnv"
	"math"
)

// RNG is a splitmix64 pseudo-random generator: tiny, fast, and fully
// deterministic across platforms (unlike math/rand's global state).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Seed derives a stable 64-bit seed from a set of name strings and
// integer tags, so that (workload, app, core) tuples get reproducible,
// decorrelated streams.
func Seed(parts ...any) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		switch v := p.(type) {
		case string:
			h.Write([]byte(v))
			h.Write([]byte{0})
		case int:
			var buf [8]byte
			u := uint64(v)
			for i := range buf {
				buf[i] = byte(u >> (8 * i))
			}
			h.Write(buf[:])
		default:
			panic("trace: Seed accepts strings and ints only")
		}
	}
	// Run the hash through one splitmix round to spread low-entropy
	// inputs across the whole state space.
	return NewRNG(h.Sum64()).Uint64()
}
