package checkpoint

import (
	"bytes"
	"errors"
	"testing"

	"memscale/internal/event"
	"memscale/internal/memctrl"
	"memscale/internal/sim"
)

// FuzzCheckpointDecode feeds arbitrary bytes to the container parser.
// The contract: Decode never panics, and every rejection is typed —
// either it wraps ErrCorruptCheckpoint (truncation, bad magic,
// malformed JSON) or it is a *SchemaVersionError (incompatible major
// version). Whatever Decode accepts survives an encode/decode round
// trip.
func FuzzCheckpointDecode(f *testing.F) {
	var valid bytes.Buffer
	ck := &Checkpoint{
		Meta:  Meta{Mix: "MID1", Policy: "MemScale", Epochs: 2, NonMem: 18.5},
		State: &sim.SystemState{Events: &event.State{}, MC: &memctrl.ControllerState{}},
	}
	if err := Encode(&valid, ck); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("\n"))
	f.Add([]byte(`{"magic":"memscale-checkpoint","schema_version":"1.0"}` + "\n"))
	f.Add([]byte(`{"magic":"wrong","schema_version":"1.0"}` + "\n" + `{"state":{}}` + "\n"))
	f.Add([]byte(`{"magic":"memscale-checkpoint","schema_version":"2.0"}` + "\n" + `{"state":{}}` + "\n"))
	f.Add([]byte(`{"magic":"memscale-checkpoint","schema_version":"1.0"}` + "\n" + `{not json`))
	f.Add([]byte(`{"magic":"memscale-checkpoint","schema_version":"1.0"}` + "\n" + `{"meta":{}}` + "\n"))
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add(valid.Bytes()[:len(valid.Bytes())-3])
	// CRC plane: legacy 1.0 header without a CRC must still be
	// accepted; a header with a wrong CRC must be rejected typed; a
	// payload bit flip under a valid header must be caught.
	f.Add([]byte(`{"magic":"memscale-checkpoint","schema_version":"1.0"}` + "\n" +
		`{"state":{"events":{},"mc":{}}}` + "\n"))
	f.Add([]byte(`{"magic":"memscale-checkpoint","schema_version":"1.1","payload_crc32":12345}` + "\n" +
		`{"state":{"events":{},"mc":{}}}` + "\n"))
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[len(flipped)-5] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := Decode(bytes.NewReader(data))
		if err != nil {
			var sve *SchemaVersionError
			if !errors.Is(err, ErrCorruptCheckpoint) && !errors.As(err, &sve) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if ck == nil || ck.State == nil {
			t.Fatal("accepted container without state")
		}
		var buf bytes.Buffer
		if err := Encode(&buf, ck); err != nil {
			t.Fatalf("accepted container failed to re-encode: %v", err)
		}
		if _, err := Decode(&buf); err != nil {
			t.Fatalf("re-encoded container rejected: %v", err)
		}
	})
}
