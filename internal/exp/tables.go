package exp

import (
	"fmt"

	"memscale/internal/config"
	"memscale/internal/stats"
	"memscale/internal/workload"
)

// Table1 regenerates the workload table: it drives every mix's
// synthetic trace generators through the paper's per-core instruction
// budget and reports the aggregate RPKI/WPKI next to the paper's
// values (paper Table 1).
func (p Params) Table1() (Report, error) {
	t := stats.Table{
		Title:   "Table 1: workload descriptions (generated vs paper)",
		Columns: []string{"Name", "RPKI", "paper", "WPKI", "paper", "Applications (x4 each)"},
		Notes: []string{
			"generated over 100M instructions per core, as the paper's traces were",
		},
	}
	cfg := config.Default()
	const target = float64(workload.Table1Instructions)
	for _, mix := range workload.Mixes {
		streams, err := mix.Streams(&cfg)
		if err != nil {
			return Report{}, err
		}
		var instr, reads, wbs uint64
		for _, s := range streams {
			for {
				s.Next()
				if in, _, _ := s.Stats(); float64(in) >= target {
					break
				}
			}
			in, rd, wb := s.Stats()
			instr += in
			reads += rd
			wbs += wb
		}
		rpki := float64(reads) / float64(instr) * 1000
		wpki := float64(wbs) / float64(instr) * 1000
		apps := ""
		for i, a := range mix.Apps {
			if i > 0 {
				apps += " "
			}
			apps += a
		}
		t.AddRow(mix.Name, stats.F2(rpki), stats.F2(mix.PaperRPKI),
			stats.F2(wpki), stats.F2(mix.PaperWPKI), apps)
		p.logf("  table1 %s: RPKI %.2f (paper %.2f)", mix.Name, rpki, mix.PaperRPKI)
	}
	return Report{ID: "table1", Title: "Workload descriptions", Table: t}, nil
}

// Table2 prints the simulated system settings (paper Table 2).
func (p Params) Table2() Report {
	cfg := config.Default()
	t := stats.Table{
		Title:   "Table 2: main system settings",
		Columns: []string{"Feature", "Value"},
	}
	add := func(k, v string) { t.AddRow(k, v) }
	add("CPU cores", fmt.Sprintf("%d in-order, single thread, %d GHz", cfg.Cores, int(cfg.CPUFreqMHz)/1000))
	add("Cache block size", fmt.Sprintf("%d bytes", cfg.LineBytes))
	add("Memory configuration", fmt.Sprintf("%d DDR3 channels, %d DIMMs (%d ranks x %d banks) with ECC",
		cfg.Channels, cfg.TotalDIMMs(), cfg.TotalRanks(), cfg.BanksPerRank))
	tm := cfg.Timing
	add("tRCD, tRP, tCL", fmt.Sprintf("%v, %v, %v", tm.TRCD, tm.TRP, tm.TCL))
	add("tFAW", tm.TFAW.String())
	add("tRTP", tm.TRTP.String())
	add("tRAS", tm.TRAS.String())
	add("tRRD", tm.TRRD.String())
	add("Exit fast pd (tXP)", tm.TXP.String())
	add("Exit slow pd (tXPDLL)", tm.TXPDLL.String())
	add("Refresh period", tm.RefreshPeriod.String())
	cur := cfg.Currents
	add("Row buffer read, write", fmt.Sprintf("%.0f mA, %.0f mA", cur.IDDReadWrite, cur.IDDReadWrite))
	add("Activation-precharge", fmt.Sprintf("%.0f mA", cur.IDDActPre))
	add("Active standby", fmt.Sprintf("%.0f mA", cur.IDDActiveStandby))
	add("Active powerdown", fmt.Sprintf("%.0f mA", cur.IDDActivePowerdown))
	add("Precharge standby", fmt.Sprintf("%.0f mA", cur.IDDPrechargeStandby))
	add("Precharge powerdown", fmt.Sprintf("%.0f mA", cur.IDDPrechargePD))
	add("Refresh", fmt.Sprintf("%.0f mA", cur.IDDRefresh))
	add("VDD", fmt.Sprintf("%.3f V", cur.VDD))
	add("Bus frequencies (MHz)", "800 733 667 600 533 467 400 333 267 200")
	add("Register power", fmt.Sprintf("%.2f-%.2f W per DIMM", cfg.Power.RegisterIdleW, cfg.Power.RegisterPeakW))
	add("MC power", fmt.Sprintf("%.1f-%.1f W", cfg.Power.MCIdleW, cfg.Power.MCPeakW))
	add("MC voltage range", fmt.Sprintf("%.2f-%.2f V", cfg.Power.MCVMin, cfg.Power.MCVMax))
	add("Epoch / profiling", fmt.Sprintf("%v / %v", cfg.Policy.EpochLength, cfg.Policy.ProfilingLength))
	return Report{ID: "table2", Title: "Main system settings", Table: t}
}
