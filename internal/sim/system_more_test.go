package sim

import (
	"math"
	"testing"

	"memscale/internal/config"
)

// oscillatingGov alternates between two adjacent frequencies — the
// "virtual frequency" behaviour of Figure 8.
type oscillatingGov struct {
	freqs [2]config.FreqMHz
	calls int
}

func (g *oscillatingGov) Name() string { return "oscillate" }
func (g *oscillatingGov) ProfileComplete(Profile) config.FreqMHz {
	g.calls++
	return g.freqs[g.calls%2]
}
func (g *oscillatingGov) EpochEnd(Profile) {}

func TestVirtualFrequencyOscillation(t *testing.T) {
	gov := &oscillatingGov{freqs: [2]config.FreqMHz{config.Freq533, config.Freq600}}
	s := newSystem(t, "MID2", Options{Governor: gov, KeepTimeline: true}, nil)
	res := s.RunFor(30 * config.Millisecond)
	if len(res.Epochs) != 6 {
		t.Fatalf("epochs = %d", len(res.Epochs))
	}
	seen := map[config.FreqMHz]bool{}
	for _, ep := range res.Epochs {
		seen[ep.Freq] = true
	}
	if !seen[config.Freq533] || !seen[config.Freq600] {
		t.Errorf("oscillation lost: %v", seen)
	}
	// Time must be split between the two plus the initial nominal
	// stretch.
	both := res.FreqTime[config.Freq533] + res.FreqTime[config.Freq600]
	if float64(both) < 0.9*float64(res.Duration) {
		t.Errorf("only %v of %v at the oscillation pair", both, res.Duration)
	}
}

func TestFreqTimeSumsToDuration(t *testing.T) {
	gov := &oscillatingGov{freqs: [2]config.FreqMHz{config.Freq200, config.Freq800}}
	s := newSystem(t, "ILP2", Options{Governor: gov}, nil)
	res := s.RunFor(20 * config.Millisecond)
	var total config.Time
	for _, d := range res.FreqTime {
		total += d
	}
	if total != res.Duration {
		t.Errorf("FreqTime sums to %v, duration %v", total, res.Duration)
	}
}

func TestEnergyBreakdownComponentsPositive(t *testing.T) {
	s := newSystem(t, "MEM2", Options{}, nil)
	res := s.RunFor(5 * config.Millisecond)
	b := res.Memory
	for name, v := range map[string]float64{
		"Background": b.Background, "ActPre": b.ActPre, "ReadWrite": b.ReadWrite,
		"Termination": b.Termination, "Refresh": b.Refresh, "PLLReg": b.PLLReg, "MC": b.MC,
	} {
		if v <= 0 {
			t.Errorf("component %s = %g, want positive on a MEM mix", name, v)
		}
	}
	// Sanity: average memory power must be tens of watts for this
	// configuration (8 DIMMs + MC).
	if res.MemAvgWatts < 20 || res.MemAvgWatts > 120 {
		t.Errorf("memory power = %.1f W, outside plausible range", res.MemAvgWatts)
	}
	if res.DIMMAvgWatts >= res.MemAvgWatts {
		t.Error("DIMM power must exclude the MC")
	}
}

func TestEpochCPIConsistentWithTotals(t *testing.T) {
	s := newSystem(t, "MID1", Options{KeepTimeline: true}, nil)
	res := s.RunFor(20 * config.Millisecond)
	// Instruction-weighted epoch CPIs must reproduce the total CPI.
	for core := 0; core < s.Cfg.Cores; core++ {
		var cycles, instr float64
		for _, ep := range res.Epochs {
			// CPI = cycles/instr per epoch; epoch cycles are fixed.
			epochCycles := s.Cfg.TimeToCPUCycles(ep.End - ep.Start)
			cycles += epochCycles
			instr += epochCycles / ep.CoreCPI[core]
		}
		total := cycles / instr
		if math.Abs(total-res.CPI[core])/res.CPI[core] > 0.01 {
			t.Errorf("core %d: recomposed CPI %.3f vs reported %.3f", core, total, res.CPI[core])
		}
	}
}

func TestGovernorSeesMonotoneTime(t *testing.T) {
	var last config.Time = -1
	gov := &checkGov{t: t, last: &last}
	s := newSystem(t, "ILP2", Options{Governor: gov}, nil)
	s.RunFor(15 * config.Millisecond)
	if gov.profiles == 0 {
		t.Fatal("governor never called")
	}
}

type checkGov struct {
	t        *testing.T
	last     *config.Time
	profiles int
}

func (g *checkGov) Name() string { return "check" }
func (g *checkGov) ProfileComplete(p Profile) config.FreqMHz {
	g.profiles++
	if p.Start <= *g.last {
		g.t.Errorf("profile windows out of order: %v after %v", p.Start, *g.last)
	}
	*g.last = p.Start
	if p.End-p.Start <= 0 {
		g.t.Error("empty profile window")
	}
	return config.MaxBusFreq
}
func (g *checkGov) EpochEnd(p Profile) {
	if p.End-p.Start <= 0 {
		g.t.Error("empty epoch window")
	}
}
