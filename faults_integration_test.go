package memscale

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"memscale/internal/faults"
	"memscale/internal/runner"
	"memscale/internal/telemetry"
)

// faultedConfig is a small, fast run with telemetry events retained in
// full, so the reconciliation checks can count every injected fault.
func faultedConfig(fc *FaultConfig) RunConfig {
	return RunConfig{
		Mix: "MID1", Policy: "MemScale",
		Epochs: 4, Cores: 8, Channels: 2,
		Telemetry: &TelemetryConfig{Events: true, EventRingSize: 1 << 16},
		Faults:    fc,
	}
}

// TestFaultClassesDegradeGracefully drives each fault class at rate
// 1.0 — every epoch disturbed — and checks the degradation contract:
// the run still completes, the accumulated CPI slack never goes
// negative, and the telemetry counters reconcile exactly with the
// event stream and the per-run fault counts.
func TestFaultClassesDegradeGracefully(t *testing.T) {
	cases := []struct {
		name  string
		fc    FaultConfig
		class string // FaultCounts key the class must populate
	}{
		{"refresh-storm", FaultConfig{Seed: 5, RefreshStormRate: 1}, "refresh_storm"},
		{"relock-failure", FaultConfig{Seed: 5, RelockFailRate: 1}, "relock_failure"},
		{"counter-corruption", FaultConfig{Seed: 5, CounterCorruptRate: 1}, "counter_corruption"},
		{"thermal-emergency", FaultConfig{Seed: 5, ThermalRate: 1}, "thermal_emergency"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sum, err := Run(faultedConfig(&tc.fc))
			if err != nil {
				t.Fatalf("faulted run failed: %v", err)
			}
			if sum.DurationSeconds <= 0 || sum.MemoryEnergyJ <= 0 {
				t.Fatalf("degenerate summary: %+v", sum)
			}
			if sum.FaultCounts[tc.class] == 0 {
				t.Fatalf("FaultCounts[%q] = 0, want > 0 (counts: %v)", tc.class, sum.FaultCounts)
			}
			if sum.DegradedEpochs == 0 {
				t.Error("no epochs marked degraded at rate 1.0")
			}
			ex := sum.Telemetry
			if ex == nil {
				t.Fatal("telemetry export missing")
			}
			if ex.DroppedEvents != 0 {
				t.Fatalf("%d events dropped; reconciliation needs the full stream", ex.DroppedEvents)
			}

			// Count the fault plane's footprint in the event stream.
			perClass := map[string]uint64{}
			var faultEvents, degradedEvents, abandoned uint64
			for _, ev := range ex.Events {
				switch ev.Kind {
				case telemetry.EvFault:
					faultEvents++
					perClass[faults.Kind(ev.A).String()]++
					if faults.Kind(ev.A) == faults.KindRelock && ev.B < 0 {
						abandoned++
					}
				case telemetry.EvDegraded:
					degradedEvents++
				case telemetry.EvSlack:
					if ev.F2 < 0 {
						t.Errorf("epoch %d core %d: accumulated slack %g s < 0",
							ev.Epoch, ev.Core, ev.F2)
					}
				}
			}

			// Every applied in-run fault records exactly one event, one
			// counter increment, and one FaultCounts unit.
			if got := ex.Counters["faults_injected"]; got != faultEvents {
				t.Errorf("faults_injected counter = %d, event stream has %d", got, faultEvents)
			}
			if got := ex.Counters["degraded_epochs"]; got != sum.DegradedEpochs {
				t.Errorf("degraded_epochs counter = %d, summary says %d", got, sum.DegradedEpochs)
			}
			if degradedEvents != sum.DegradedEpochs {
				t.Errorf("%d degraded events, summary says %d", degradedEvents, sum.DegradedEpochs)
			}
			for _, class := range []string{"refresh_storm", "relock_failure",
				"counter_corruption", "thermal_emergency"} {
				if perClass[class] != sum.FaultCounts[class] {
					t.Errorf("%s: %d events vs %d counted",
						class, perClass[class], sum.FaultCounts[class])
				}
			}
			if abandoned != sum.FaultCounts["relock_abandoned"] {
				t.Errorf("abandoned relocks: %d events vs %d counted",
					abandoned, sum.FaultCounts["relock_abandoned"])
			}
			if sum.DegradedEpochs != sum.FaultCounts["degraded_epochs"] {
				t.Errorf("DegradedEpochs %d != FaultCounts[degraded_epochs] %d",
					sum.DegradedEpochs, sum.FaultCounts["degraded_epochs"])
			}
		})
	}
}

// TestFaultDeterminism: the same seed must reproduce the same fault
// schedule bit for bit — identical counts and identical energy.
func TestFaultDeterminism(t *testing.T) {
	fc := FaultConfig{
		Seed:               11,
		RefreshStormRate:   0.5,
		RelockFailRate:     0.5,
		CounterCorruptRate: 0.4,
		ThermalRate:        0.4,
	}
	rc := faultedConfig(&fc)
	rc.Telemetry = nil // host-clock observations are not deterministic

	a, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.FaultCounts, b.FaultCounts) {
		t.Errorf("fault counts diverge: %v vs %v", a.FaultCounts, b.FaultCounts)
	}
	if a.DegradedEpochs != b.DegradedEpochs || a.Attempts != b.Attempts {
		t.Errorf("degraded/attempts diverge: %d/%d vs %d/%d",
			a.DegradedEpochs, a.Attempts, b.DegradedEpochs, b.Attempts)
	}
	if a.MemoryEnergyJ != b.MemoryEnergyJ || a.SystemEnergyJ != b.SystemEnergyJ {
		t.Errorf("energy diverges: %g/%g vs %g/%g J",
			a.MemoryEnergyJ, a.SystemEnergyJ, b.MemoryEnergyJ, b.SystemEnergyJ)
	}
	if a.DurationSeconds != b.DurationSeconds {
		t.Errorf("duration diverges: %g vs %g s", a.DurationSeconds, b.DurationSeconds)
	}
	if !reflect.DeepEqual(a.FreqSeconds, b.FreqSeconds) {
		t.Errorf("residency diverges: %v vs %v", a.FreqSeconds, b.FreqSeconds)
	}

	// A different seed must be allowed to disturb differently: at these
	// rates the schedules are overwhelmingly unlikely to coincide.
	fc2 := fc
	fc2.Seed = 12
	rc2 := rc
	rc2.Faults = &fc2
	c, err := Run(rc2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.FaultCounts, c.FaultCounts) && a.MemoryEnergyJ == c.MemoryEnergyJ {
		t.Error("different fault seeds produced identical runs")
	}
}

// TestSweepSurvivesFaultsAndPanic is the acceptance scenario: a sweep
// of 8 fault-injected jobs plus one job rigged to panic mid-run. The
// panicked job must report ErrRunPanicked; every other job must return
// a valid summary; and rerunning the grid with the same seeds must
// reproduce the fault counts and energies exactly.
func TestSweepSurvivesFaultsAndPanic(t *testing.T) {
	base := RunConfig{Epochs: 3, Cores: 4, Channels: 2}
	runs := Grid(base, []string{"ILP2", "MID1", "MEM2", "MID3"}, []string{"MemScale", "Fast-PD"})
	for i := range runs {
		runs[i].Faults = &FaultConfig{
			Seed:               uint64(100 + i),
			RefreshStormRate:   0.5,
			RelockFailRate:     0.5,
			CounterCorruptRate: 0.4,
			ThermalRate:        0.4,
		}
	}
	poisoned := base
	poisoned.Mix, poisoned.Policy = "ILP3", "MemScale"
	poisoned.Faults = &FaultConfig{Seed: 9, InjectPanic: true, PanicEpoch: 1}
	runs = append(runs, poisoned)
	panicIdx := len(runs) - 1

	do := func() ([]RunSummary, error) {
		return Sweep(context.Background(), SweepConfig{Runs: runs, Workers: 4})
	}
	sums, err := do()
	if !errors.Is(err, ErrRunPanicked) {
		t.Fatalf("sweep error %v does not report the panicked job", err)
	}
	var pe *runner.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error chain carries no *runner.PanicError: %v", err)
	}
	if ip, ok := pe.Value.(faults.InjectedPanic); !ok || ip.Epoch != 1 {
		t.Errorf("panic value = %#v, want faults.InjectedPanic{Epoch: 1}", pe.Value)
	}
	if sums[panicIdx].DurationSeconds != 0 {
		t.Errorf("panicked job left a non-zero summary: %+v", sums[panicIdx])
	}
	for i := 0; i < panicIdx; i++ {
		if sums[i].DurationSeconds <= 0 || sums[i].MemoryEnergyJ <= 0 {
			t.Errorf("job %d (%s/%s) summary degenerate: %+v",
				i, runs[i].Mix, runs[i].Policy, sums[i])
		}
		if sums[i].Attempts < 1 {
			t.Errorf("job %d reports %d attempts", i, sums[i].Attempts)
		}
	}

	again, err := do()
	if !errors.Is(err, ErrRunPanicked) {
		t.Fatalf("rerun error = %v", err)
	}
	for i := 0; i < panicIdx; i++ {
		if !reflect.DeepEqual(sums[i].FaultCounts, again[i].FaultCounts) {
			t.Errorf("job %d fault counts not reproduced: %v vs %v",
				i, sums[i].FaultCounts, again[i].FaultCounts)
		}
		if sums[i].MemoryEnergyJ != again[i].MemoryEnergyJ ||
			sums[i].SystemEnergyJ != again[i].SystemEnergyJ {
			t.Errorf("job %d energy not reproduced: %g/%g vs %g/%g J", i,
				sums[i].MemoryEnergyJ, sums[i].SystemEnergyJ,
				again[i].MemoryEnergyJ, again[i].SystemEnergyJ)
		}
	}
}
