package trace

import (
	"fmt"
	"math"

	"memscale/internal/config"
)

// Phase describes one execution phase of an application.
type Phase struct {
	// Instructions is the phase length; the final phase of a profile
	// runs forever regardless of this value.
	Instructions uint64

	// BaseCPI is the cycles-per-instruction of the core when no LLC
	// miss is outstanding (compute-only CPI).
	BaseCPI float64

	// MPKI is the LLC read-miss rate per kilo-instruction; WPKI the
	// LLC writeback rate. WPKI must not exceed MPKI (each writeback
	// is modelled as riding along with a miss, as evictions do).
	MPKI float64
	WPKI float64

	// RowLocality is the probability that a miss continues in the
	// current row region (next line at channel stride) instead of
	// jumping to a random location.
	RowLocality float64

	// HotRows bounds the per-bank row footprint the phase touches;
	// zero means the whole bank.
	HotRows int
}

// Profile is a synthetic stand-in for one SPEC application.
type Profile struct {
	Name   string
	Phases []Phase
}

// Validate checks that the profile is well formed.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("trace: profile with empty name")
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("trace: profile %q has no phases", p.Name)
	}
	for i, ph := range p.Phases {
		// NaN compares false against everything, so the range checks
		// below would wave it through; Inf rates degenerate the gap
		// arithmetic. Reject both up front.
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"BaseCPI", ph.BaseCPI}, {"MPKI", ph.MPKI},
			{"WPKI", ph.WPKI}, {"RowLocality", ph.RowLocality},
		} {
			if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
				return fmt.Errorf("trace: %q phase %d: %s must be finite, got %g",
					p.Name, i, f.name, f.v)
			}
		}
		switch {
		case ph.BaseCPI <= 0:
			return fmt.Errorf("trace: %q phase %d: BaseCPI must be positive", p.Name, i)
		case ph.MPKI <= 0:
			return fmt.Errorf("trace: %q phase %d: MPKI must be positive", p.Name, i)
		case ph.WPKI < 0 || ph.WPKI > ph.MPKI:
			return fmt.Errorf("trace: %q phase %d: WPKI must be in [0, MPKI]", p.Name, i)
		case ph.RowLocality < 0 || ph.RowLocality >= 1:
			return fmt.Errorf("trace: %q phase %d: RowLocality must be in [0,1)", p.Name, i)
		case ph.HotRows < 0:
			return fmt.Errorf("trace: %q phase %d: HotRows must be >= 0", p.Name, i)
		case i < len(p.Phases)-1 && ph.Instructions == 0:
			return fmt.Errorf("trace: %q phase %d: non-final phase needs a length", p.Name, i)
		}
	}
	return nil
}

// Access is one LLC read miss, optionally accompanied by a writeback
// (the eviction of the line the read replaces).
type Access struct {
	// Gap is the number of instructions the core retires between the
	// previous access and this one (at BaseCPI, with no memory stall).
	Gap uint64

	// BaseCPI is the compute CPI in force during the gap.
	BaseCPI float64

	// Line is the cache-line address read from memory.
	Line uint64

	// Writeback, when true, means WBLine is written back to memory
	// concurrently with the read.
	Writeback bool
	WBLine    uint64
}

// Stream generates the access sequence of one core running one
// application profile. It is deterministic in (profile, seed) and
// independent of simulated timing.
type Stream struct {
	profile Profile
	rng     *RNG
	mapper  *config.AddressMapper

	phaseIdx   int
	phaseInstr uint64 // instructions retired inside the current phase

	cur      config.Location // current streaming position
	rows     int             // usable rows per bank for the current phase
	channels []int           // allowed channels (nil = all), for page partitioning
	totalIn  uint64          // total instructions generated

	// intensity scales the effective miss rate (see SetIntensity);
	// zero means the default 1.0.
	intensity float64

	reads, writebacks uint64
}

// NewStream builds a stream for the given profile and seed. The mapper
// defines the physical address space accesses are drawn from.
func NewStream(p Profile, mapper *config.AddressMapper, seed uint64) (*Stream, error) {
	return NewStreamOnChannels(p, mapper, seed, nil)
}

// NewStreamOnChannels builds a stream whose accesses are confined to
// the given memory channels, modelling OS page placement that
// partitions applications across channels — the substrate for the
// paper's Section 6 future work (per-channel frequencies and OS-level
// scheduling). A nil or empty channel list means all channels.
func NewStreamOnChannels(p Profile, mapper *config.AddressMapper, seed uint64, channels []int) (*Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Stream{
		profile:  p,
		rng:      NewRNG(seed),
		mapper:   mapper,
		channels: append([]int(nil), channels...),
	}
	s.enterPhase(0)
	return s, nil
}

// Name returns the profile name.
func (s *Stream) Name() string { return s.profile.Name }

// HomeChannel reports whether every access of the stream — reads and
// writeback victims alike — is confined to a single memory channel,
// and which one. randomLoc folds all locations into the channel
// affinity set, and advance preserves the channel, so a one-channel
// affinity confines the stream completely; the sharded event engine
// relies on this to bind a core to its channel's shard.
func (s *Stream) HomeChannel() (int, bool) {
	if len(s.channels) != 1 {
		return 0, false
	}
	return s.channels[0], true
}

// Channels returns the stream's channel-affinity set in ascending
// placement order, or nil when the stream roams all channels. The
// sharded engine's confinement-group analysis (DESIGN.md §4l) unions
// these sets into connected components to find the finest sound shard
// partition for interleaved placements.
func (s *Stream) Channels() []int {
	return append([]int(nil), s.channels...)
}

// SetIntensity scales the stream's effective memory pressure: the
// active phase's MPKI is multiplied by m from the next access on, so
// m > 1 packs misses closer together (heavier offered load) and m < 1
// spreads them out, while the writeback-to-read ratio stays the
// profile's own. This is the open-loop arrival coupling the fleet
// layer drives — per-epoch request-rate multipliers land here.
// m must be positive and finite; m == 1 is bit-identical to an
// untouched stream.
func (s *Stream) SetIntensity(m float64) error {
	if math.IsNaN(m) || math.IsInf(m, 0) || m <= 0 {
		return fmt.Errorf("trace: intensity must be positive and finite, got %g", m)
	}
	s.intensity = m
	return nil
}

// Intensity returns the multiplier set by SetIntensity (1 by default).
func (s *Stream) Intensity() float64 {
	if s.intensity == 0 {
		return 1
	}
	return s.intensity
}

func (s *Stream) enterPhase(i int) {
	s.phaseIdx = i
	s.phaseInstr = 0
	ph := &s.profile.Phases[i]
	s.rows = ph.HotRows
	if s.rows <= 0 {
		// Whole bank: recover row count from the mapper by probing.
		s.rows = s.mapper.Map(s.mapper.Lines()-1).Row + 1
	}
	s.jump()
}

// jump moves the streaming position to a random location in the
// phase footprint.
func (s *Stream) jump() {
	s.cur = s.randomLoc()
}

// randomLoc draws a uniform location within the footprint and channel
// affinity.
func (s *Stream) randomLoc() config.Location {
	loc := s.mapper.Map(uint64(s.rng.Uint64()) % s.mapper.Lines())
	loc.Row %= s.rows
	if len(s.channels) > 0 {
		loc.Channel = s.channels[loc.Channel%len(s.channels)]
	}
	return loc
}

// advance moves one line forward in the streaming direction: the next
// column of the same row region (physically the next line at channel
// stride), wrapping into the next row of the same bank.
func (s *Stream) advance() {
	s.cur.Col++
	if s.cur.Col >= s.linesPerRow() {
		s.cur.Col = 0
		s.cur.Row = (s.cur.Row + 1) % s.rows
	}
}

func (s *Stream) linesPerRow() int {
	// Probe once per call; cheap (a handful of integer ops).
	return s.mapper.Map(s.mapper.Lines()-1).Col + 1
}

// phase returns the active phase, advancing past any phase boundaries
// crossed by the instructions retired so far.
func (s *Stream) phase() *Phase {
	for s.phaseIdx < len(s.profile.Phases)-1 &&
		s.phaseInstr >= s.profile.Phases[s.phaseIdx].Instructions {
		s.enterPhase(s.phaseIdx + 1)
	}
	return &s.profile.Phases[s.phaseIdx]
}

// Next produces the next access of the stream.
func (s *Stream) Next() Access {
	ph := s.phase()

	mpki := ph.MPKI
	if s.intensity != 0 && s.intensity != 1 {
		mpki *= s.intensity
	}
	meanGap := 1000.0 / mpki
	gap := uint64(s.rng.Exp(meanGap) + 0.5)
	if gap == 0 {
		gap = 1
	}
	// Clamp the gap to the phase boundary so rate changes land where
	// the profile says they do.
	if s.phaseIdx < len(s.profile.Phases)-1 {
		if remain := ph.Instructions - s.phaseInstr; gap > remain && remain > 0 {
			gap = remain
		}
	}
	s.phaseInstr += gap
	s.totalIn += gap

	if s.rng.Float64() < ph.RowLocality {
		s.advance()
	} else {
		s.jump()
	}
	acc := Access{
		Gap:     gap,
		BaseCPI: ph.BaseCPI,
		Line:    s.mapper.Unmap(s.cur),
	}
	s.reads++

	if ph.WPKI > 0 && s.rng.Float64() < ph.WPKI/ph.MPKI {
		// The victim line: a random location in the same footprint.
		victim := s.randomLoc()
		acc.Writeback = true
		acc.WBLine = s.mapper.Unmap(victim)
		s.writebacks++
	}
	return acc
}

// Stats reports the totals generated so far.
func (s *Stream) Stats() (instructions, reads, writebacks uint64) {
	return s.totalIn, s.reads, s.writebacks
}

// PhaseIndex returns the index of the phase the stream is currently in.
func (s *Stream) PhaseIndex() int { return s.phaseIdx }
