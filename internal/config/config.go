package config

import "fmt"

// PowerdownMode selects the idle-rank powerdown policy the memory
// controller applies when all banks of a rank are closed.
type PowerdownMode int

// Powerdown modes evaluated in Section 4.2.3.
const (
	PowerdownNone PowerdownMode = iota // never power down (baseline)
	PowerdownFast                      // fast-exit precharge powerdown (tXP)
	PowerdownSlow                      // slow-exit precharge powerdown (tXPDLL)
)

// String names the powerdown mode.
func (m PowerdownMode) String() string {
	switch m {
	case PowerdownNone:
		return "none"
	case PowerdownFast:
		return "fast-pd"
	case PowerdownSlow:
		return "slow-pd"
	default:
		return fmt.Sprintf("PowerdownMode(%d)", int(m))
	}
}

// MemPowerParams holds the non-DRAM memory-subsystem power parameters
// (Section 4.1): the register and PLL devices on each DIMM and the
// integrated memory controller.
type MemPowerParams struct {
	// Register device per DIMM, at nominal frequency: power scales
	// linearly with utilization between idle and peak, and linearly
	// with channel frequency.
	RegisterIdleW float64
	RegisterPeakW float64

	// PLL device per DIMM at nominal frequency: does not scale with
	// utilization, scales linearly with channel frequency.
	PLLW float64

	// Memory controller at nominal frequency and voltage: scales
	// linearly with utilization between idle and peak, and with
	// V^2 * f as the MC is voltage/frequency scaled.
	MCIdleW float64
	MCPeakW float64

	// MC voltage range across the MC frequency range (Section 4.1):
	// voltage scales linearly with MC frequency from VMin at the
	// lowest MC frequency to VMax at the highest.
	MCVMin float64
	MCVMax float64

	// Termination power drawn by the other ranks on a channel while a
	// burst is in flight, per rank (watts at any frequency; power is
	// frequency-independent but slower bursts last longer, so
	// termination energy grows as frequency drops — Section 2.2).
	TerminationPerRankW float64
}

// DefaultMemPowerParams returns the Section 4.1 power parameters:
// registers 0.25–0.5 W, MC 7.5–15 W, MC voltage 0.65–1.2 V.
func DefaultMemPowerParams() MemPowerParams {
	return MemPowerParams{
		RegisterIdleW:       0.25,
		RegisterPeakW:       0.50,
		PLLW:                0.50,
		MCIdleW:             7.5,
		MCPeakW:             15.0,
		MCVMin:              0.65,
		MCVMax:              1.20,
		TerminationPerRankW: 0.65,
	}
}

// PolicyParams holds the OS energy-management policy settings
// (Sections 3.2 and 4.1).
type PolicyParams struct {
	EpochLength     Time    // OS quantum; default 5 ms
	ProfilingLength Time    // profiling window at epoch start; default 300 us
	Gamma           float64 // maximum allowed performance degradation (0.10)

	// Frequency-transition penalty: memory is halted for
	// RelockCycles bus cycles (at the *new* frequency) plus
	// RelockExtra (Section 4.1: 512 cycles + 28 ns).
	RelockCycles int
	RelockExtra  Time
}

// DefaultPolicyParams returns the paper's default policy settings.
func DefaultPolicyParams() PolicyParams {
	return PolicyParams{
		EpochLength:     5 * Millisecond,
		ProfilingLength: 300 * Microsecond,
		Gamma:           0.10,
		RelockCycles:    512,
		RelockExtra:     28 * Nanosecond,
	}
}

// Config is the complete system configuration (Table 2 plus the
// Section 4.1 assumptions). The zero value is not usable; start from
// Default and adjust.
type Config struct {
	// CPU.
	Cores      int     // 16 in-order cores
	CPUFreqMHz FreqMHz // 4 GHz
	LineBytes  int     // cache line size (64 B)

	// Memory geometry.
	Channels        int // independent memory channels (4)
	DIMMsPerChannel int // 2
	RanksPerDIMM    int // 2
	ChipsPerRank    int // 9 for x8 with ECC
	BanksPerRank    int // 8
	RowBytes        int // row (page) size per rank, in bytes
	RowsPerBank     int // derived capacity knob

	Timing   DDR3Timing
	Currents DDR3Currents
	Power    MemPowerParams
	Policy   PolicyParams

	// BackgroundFreqScaling: fraction of DRAM background power that
	// scales linearly with DIMM frequency (the clocked interface
	// portion); the remainder is frequency-independent leakage and
	// refresh-adjacent circuitry. Section 2.2 models background power
	// as scaling linearly, so the default is 1.0.
	BackgroundFreqScaling float64

	// MemPowerFraction is the assumed contribution of the DIMMs to
	// total server power at the baseline (Section 4.1: 40%). It is
	// used to derive the fixed rest-of-system power.
	MemPowerFraction float64

	// Powerdown selects the rank idle-powerdown behaviour.
	Powerdown PowerdownMode

	// DecoupledDevFreq, when non-zero, models Decoupled DIMMs
	// (Zheng et al., ISCA'09): DRAM devices run at this fixed
	// frequency while the channel runs at the configured bus
	// frequency. Used by the Decoupled baseline only.
	DecoupledDevFreq FreqMHz

	// WritebackQueueCap is the per-channel writeback queue capacity;
	// reads yield to writes once the queue is half full (Section 4.1).
	WritebackQueueCap int
}

// Default returns the Table 2 configuration: a 16-core 4 GHz server
// with 4 DDR3-1600 channels, two dual-rank ECC DIMMs per channel.
func Default() Config {
	return Config{
		Cores:      16,
		CPUFreqMHz: 4000,
		LineBytes:  64,

		Channels:        4,
		DIMMsPerChannel: 2,
		RanksPerDIMM:    2,
		ChipsPerRank:    9,
		BanksPerRank:    8,
		RowBytes:        8192,
		RowsPerBank:     32768,

		Timing:   DefaultDDR3Timing(),
		Currents: DefaultDDR3Currents(),
		Power:    DefaultMemPowerParams(),
		Policy:   DefaultPolicyParams(),

		BackgroundFreqScaling: 1.0,
		MemPowerFraction:      0.40,
		Powerdown:             PowerdownNone,
		WritebackQueueCap:     32,
	}
}

// Validate checks the configuration for internal consistency.
func (c *Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("config: Cores must be positive, got %d", c.Cores)
	case c.CPUFreqMHz <= 0:
		return fmt.Errorf("config: CPUFreqMHz must be positive, got %d", c.CPUFreqMHz)
	case c.Channels <= 0:
		return fmt.Errorf("config: Channels must be positive, got %d", c.Channels)
	case c.DIMMsPerChannel <= 0 || c.RanksPerDIMM <= 0:
		return fmt.Errorf("config: DIMMs/ranks per channel must be positive")
	case c.BanksPerRank <= 0 || c.ChipsPerRank <= 0:
		return fmt.Errorf("config: banks/chips per rank must be positive")
	case c.LineBytes <= 0 || c.RowBytes < c.LineBytes:
		return fmt.Errorf("config: RowBytes (%d) must be >= LineBytes (%d) > 0", c.RowBytes, c.LineBytes)
	case c.RowsPerBank <= 0:
		return fmt.Errorf("config: RowsPerBank must be positive")
	case c.MemPowerFraction <= 0 || c.MemPowerFraction >= 1:
		return fmt.Errorf("config: MemPowerFraction must be in (0,1), got %g", c.MemPowerFraction)
	case c.Policy.EpochLength <= 0 || c.Policy.ProfilingLength <= 0:
		return fmt.Errorf("config: epoch and profiling lengths must be positive")
	case c.Policy.ProfilingLength >= c.Policy.EpochLength:
		return fmt.Errorf("config: profiling window (%v) must be shorter than the epoch (%v)",
			c.Policy.ProfilingLength, c.Policy.EpochLength)
	case c.WritebackQueueCap <= 0:
		return fmt.Errorf("config: WritebackQueueCap must be positive")
	case c.DecoupledDevFreq != 0 && !ValidBusFrequency(c.DecoupledDevFreq):
		return fmt.Errorf("config: DecoupledDevFreq %v is not on the frequency ladder", c.DecoupledDevFreq)
	}
	return nil
}

// RanksPerChannel returns the number of ranks sharing one channel.
func (c *Config) RanksPerChannel() int { return c.DIMMsPerChannel * c.RanksPerDIMM }

// TotalRanks returns the number of ranks in the system.
func (c *Config) TotalRanks() int { return c.Channels * c.RanksPerChannel() }

// TotalDIMMs returns the number of DIMMs in the system.
func (c *Config) TotalDIMMs() int { return c.Channels * c.DIMMsPerChannel }

// TotalBanks returns the number of independently schedulable banks.
func (c *Config) TotalBanks() int { return c.TotalRanks() * c.BanksPerRank }

// LinesPerRow returns the cache lines held by one open row.
func (c *Config) LinesPerRow() int { return c.RowBytes / c.LineBytes }

// CPUCyclesToTime converts CPU cycles to wall-clock time.
func (c *Config) CPUCyclesToTime(cycles float64) Time {
	return Time(cycles * float64(c.CPUFreqMHz.Period()))
}

// TimeToCPUCycles converts wall-clock time to CPU cycles.
func (c *Config) TimeToCPUCycles(t Time) float64 {
	return float64(t) / float64(c.CPUFreqMHz.Period())
}
