package core

import (
	"math"
	"testing"

	"memscale/internal/config"
	"memscale/internal/power"
	"memscale/internal/sim"
	"memscale/internal/workload"
)

// runMix runs a mix under the given governor for d and returns the
// result.
func runMix(t *testing.T, mixName string, gov sim.Governor, d config.Time, nonMem float64) sim.Result {
	t.Helper()
	cfg := config.Default()
	mix, err := workload.ByName(mixName)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := mix.Streams(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfg, streams, sim.Options{Governor: gov, NonMemPower: nonMem})
	if err != nil {
		t.Fatal(err)
	}
	return s.RunFor(d)
}

// calibrate returns the rest-of-system power for a mix from a short
// baseline run (Section 4.1's 40% DIMM share).
func calibrate(t *testing.T, mixName string) float64 {
	t.Helper()
	res := runMix(t, mixName, nil, 10*config.Millisecond, 0)
	cfg := config.Default()
	return power.NewModel(&cfg).RestOfSystemPower(res.DIMMAvgWatts)
}

func newPolicy(nonMem float64) *Policy {
	cfg := config.Default()
	return NewPolicy(&cfg, Options{NonMemPower: nonMem})
}

func TestPolicyPicksLowFrequencyForILP(t *testing.T) {
	nonMem := calibrate(t, "ILP2")
	pol := newPolicy(nonMem)
	res := runMix(t, "ILP2", pol, 30*config.Millisecond, nonMem)
	// After the first epoch the ILP mix should sit at or near the
	// bottom of the ladder.
	low := res.FreqTime[config.Freq200] + res.FreqTime[config.Freq267] + res.FreqTime[config.Freq333]
	if frac := float64(low) / float64(res.Duration); frac < 0.7 {
		t.Errorf("ILP2 spent only %.0f%% at the three lowest frequencies", frac*100)
	}
	if pol.Decisions() == 0 {
		t.Fatal("policy made no decisions")
	}
}

func TestPolicyKeepsMEMFast(t *testing.T) {
	nonMem := calibrate(t, "MEM1")
	pol := newPolicy(nonMem)
	res := runMix(t, "MEM1", pol, 30*config.Millisecond, nonMem)
	// A memory-bound mix cannot afford the bottom frequencies.
	verLow := res.FreqTime[config.Freq200] + res.FreqTime[config.Freq267]
	if frac := float64(verLow) / float64(res.Duration); frac > 0.2 {
		t.Errorf("MEM1 spent %.0f%% at 200-267 MHz; the bound should prevent that", frac*100)
	}
}

func TestCPIBoundRespected(t *testing.T) {
	for _, mixName := range []string{"ILP2", "MID1", "MEM2"} {
		nonMem := calibrate(t, mixName)
		base := runMix(t, mixName, nil, 30*config.Millisecond, nonMem)
		pol := newPolicy(nonMem)
		got := runMix(t, mixName, pol, 30*config.Millisecond, nonMem)
		for i := range got.CPI {
			inc := got.CPI[i]/base.CPI[i] - 1
			// Allow a small epsilon beyond gamma for measurement noise
			// at run edges.
			if inc > pol.Gamma()+0.02 {
				t.Errorf("%s core %d: CPI increase %.1f%% exceeds bound %.0f%%",
					mixName, i, inc*100, pol.Gamma()*100)
			}
		}
	}
}

func TestPolicySavesSystemEnergy(t *testing.T) {
	type row struct {
		mix     string
		minSave float64
	}
	rows := []row{
		{"ILP2", 0.15},
		{"MID1", 0.05},
	}
	for _, r := range rows {
		nonMem := calibrate(t, r.mix)
		base := runMix(t, r.mix, nil, 30*config.Millisecond, nonMem)
		pol := newPolicy(nonMem)
		got := runMix(t, r.mix, pol, 30*config.Millisecond, nonMem)
		save := 1 - got.SystemEnergy()/base.SystemEnergy()
		if save < r.minSave {
			t.Errorf("%s system energy savings = %.1f%%, want >= %.0f%%",
				r.mix, save*100, r.minSave*100)
		}
	}
}

func TestMemEnergyObjectiveScalesDeeper(t *testing.T) {
	nonMem := calibrate(t, "MID1")
	cfg := config.Default()
	sys := NewPolicy(&cfg, Options{NonMemPower: nonMem})
	cfg2 := config.Default()
	memOnly := NewPolicy(&cfg2, Options{NonMemPower: nonMem, Objective: MinimizeMemoryEnergy})

	rSys := runMix(t, "MID1", sys, 30*config.Millisecond, nonMem)
	rMem := runMix(t, "MID1", memOnly, 30*config.Millisecond, nonMem)

	if rMem.Memory.Memory() > rSys.Memory.Memory()*1.001 {
		t.Errorf("memory-energy objective used MORE memory energy: %.3f vs %.3f J",
			rMem.Memory.Memory(), rSys.Memory.Memory())
	}
	if memOnly.Name() == sys.Name() {
		t.Error("objectives must have distinct names")
	}
}

func TestPerfModelPredictsMeasuredCPI(t *testing.T) {
	// Run one epoch at nominal, then compare the model's CPI at the
	// profiling frequency against the measured CPI.
	cfg := config.Default()
	var captured sim.Profile
	gov := &captureGov{onProfile: func(p sim.Profile) { captured = p }}
	mix, _ := workload.ByName("MID2")
	streams, _ := mix.Streams(&cfg)
	s, _ := sim.New(cfg, streams, sim.Options{Governor: gov})
	s.RunFor(5 * config.Millisecond)

	m := NewPerfModel(&cfg)
	m.Fit(captured)
	for i := 0; i < cfg.Cores; i++ {
		pred := m.CPI(i, captured.BusFreq)
		meas := m.CPIObs[i]
		if meas <= 0 {
			continue
		}
		if rel := math.Abs(pred-meas) / meas; rel > 0.15 {
			t.Errorf("core %d: model CPI %.3f vs measured %.3f (%.0f%% off)",
				i, pred, meas, rel*100)
		}
	}
	// CPI must be monotone non-increasing in frequency.
	for i := 0; i < cfg.Cores; i++ {
		prev := 0.0
		for _, f := range config.BusFrequencies { // descending
			cpi := m.CPI(i, f)
			if cpi < prev-1e-12 {
				t.Errorf("core %d: CPI fell from %.4f to %.4f as frequency dropped", i, prev, cpi)
			}
			prev = cpi
		}
	}
}

type captureGov struct {
	onProfile func(sim.Profile)
}

func (g *captureGov) Name() string { return "capture" }
func (g *captureGov) ProfileComplete(p sim.Profile) config.FreqMHz {
	if g.onProfile != nil {
		g.onProfile(p)
	}
	return config.MaxBusFreq
}
func (g *captureGov) EpochEnd(sim.Profile) {}

func TestSlackAccumulatesWhenFast(t *testing.T) {
	nonMem := calibrate(t, "ILP2")
	pol := newPolicy(nonMem)
	runMix(t, "ILP2", pol, 25*config.Millisecond, nonMem)
	// Running an ILP mix keeps everyone ahead of target: slack grows.
	for i, s := range pol.Slack() {
		if s <= 0 {
			t.Errorf("core %d slack = %v, want positive", i, s)
		}
	}
}

func TestGammaSensitivity(t *testing.T) {
	// A tighter bound must not save more energy than a looser one.
	nonMem := calibrate(t, "MID1")
	cfg1 := config.Default()
	tight := NewPolicy(&cfg1, Options{NonMemPower: nonMem, Gamma: 0.01})
	cfg5 := config.Default()
	loose := NewPolicy(&cfg5, Options{NonMemPower: nonMem, Gamma: 0.10})

	rTight := runMix(t, "MID1", tight, 30*config.Millisecond, nonMem)
	rLoose := runMix(t, "MID1", loose, 30*config.Millisecond, nonMem)
	if rTight.SystemEnergy() < rLoose.SystemEnergy()*0.999 {
		t.Errorf("1%% bound used less energy (%.3f J) than 10%% bound (%.3f J)",
			rTight.SystemEnergy(), rLoose.SystemEnergy())
	}
	if tight.Gamma() != 0.01 || loose.Gamma() != 0.10 {
		t.Error("gamma plumbing broken")
	}
}

func TestFreqChoicesTracked(t *testing.T) {
	nonMem := calibrate(t, "ILP2")
	pol := newPolicy(nonMem)
	runMix(t, "ILP2", pol, 15*config.Millisecond, nonMem)
	total := 0
	for _, n := range pol.FreqChoices() {
		total += n
	}
	if total != pol.Decisions() {
		t.Errorf("choice histogram sums to %d, decisions %d", total, pol.Decisions())
	}
}
