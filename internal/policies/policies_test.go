package policies

import (
	"testing"

	"memscale/internal/config"
	"memscale/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("registry has %d schemes, want 8", len(all))
	}
	wantOrder := []string{
		"Baseline", "Fast-PD", "Slow-PD", "Decoupled", "Static",
		"MemScale", "MemScale (MemEnergy)", "MemScale + Fast-PD",
	}
	for i, name := range Names() {
		if name != wantOrder[i] {
			t.Errorf("scheme %d = %q, want %q", i, name, wantOrder[i])
		}
	}
	if len(Alternatives()) != 7 {
		t.Errorf("Alternatives() = %d schemes, want 7 (no baseline)", len(Alternatives()))
	}
	for _, s := range all {
		if s.Description == "" {
			t.Errorf("scheme %s lacks a description", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("Decoupled")
	if err != nil {
		t.Fatal(err)
	}
	if s.Configure == nil {
		t.Error("Decoupled must configure the device frequency")
	}
	cfg := config.Default()
	s.Configure(&cfg)
	if cfg.DecoupledDevFreq != DecoupledDevFreq {
		t.Errorf("DecoupledDevFreq = %v", cfg.DecoupledDevFreq)
	}
	if _, err := ByName("Turbo"); err == nil {
		t.Error("unknown scheme must error")
	}
}

func TestConfigureEffects(t *testing.T) {
	cases := map[string]func(config.Config) bool{
		"Fast-PD": func(c config.Config) bool { return c.Powerdown == config.PowerdownFast },
		"Slow-PD": func(c config.Config) bool { return c.Powerdown == config.PowerdownSlow },
	}
	for name, check := range cases {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := config.Default()
		s.Configure(&cfg)
		if !check(cfg) {
			t.Errorf("%s configuration not applied", name)
		}
	}
	base, _ := ByName("Baseline")
	if base.Configure != nil || base.Governor != nil {
		t.Error("baseline must be a pure no-op scheme")
	}
}

func TestStaticGovernor(t *testing.T) {
	g := Static{Freq: config.Freq467}
	if g.Name() != "static-467" {
		t.Errorf("Name() = %q", g.Name())
	}
	for i := 0; i < 3; i++ {
		if got := g.ProfileComplete(sim.Profile{}); got != config.Freq467 {
			t.Errorf("ProfileComplete = %v", got)
		}
	}
	g.EpochEnd(sim.Profile{}) // must not panic
}

func TestGovernorFactories(t *testing.T) {
	cfg := config.Default()
	for _, s := range All() {
		if s.Governor == nil {
			continue
		}
		gov := s.Governor(&cfg, 40.0)
		if gov == nil {
			t.Errorf("%s governor factory returned nil", s.Name)
			continue
		}
		if gov.Name() == "" {
			t.Errorf("%s governor has empty name", s.Name)
		}
	}
	// Static picks the paper's best static frequency.
	st, _ := ByName("Static")
	gov := st.Governor(&cfg, 40.0)
	if got := gov.ProfileComplete(sim.Profile{}); got != StaticFreq {
		t.Errorf("Static governor chose %v, want %v", got, StaticFreq)
	}
}
