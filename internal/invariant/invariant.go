// Package invariant is the simulator's runtime invariant plane: cheap,
// always-on conservation checks that every hot path re-verifies as it
// runs. Where the test suite proves properties for the configurations
// it happens to cover, the invariant plane proves them for the run in
// front of the user — energy totals reconcile with the per-epoch
// witness, slack ledgers never go negative, DRAM state residency sums
// to exactly the accounted wall-clock, cluster cap assignments respect
// the budget, and a restored-then-recovered node resumes at precisely
// the epoch its checkpoint recorded.
//
// A failed check fires a typed *Violation wrapping ErrInvariant, so
// callers classify with errors.Is(err, ErrInvariant) and read the
// offending check's stable name from the violation. The package is
// dependency-free (std only) so every layer — sim, fleet, runner — can
// consume it without import cycles.
package invariant

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvariant is the sentinel every violation wraps; match it with
// errors.Is.
var ErrInvariant = errors.New("invariant violation")

// Violation reports one failed runtime check. Name is the check's
// stable identifier (snake_case, e.g. "residency_epoch_sum"); Detail
// the human-readable evidence.
type Violation struct {
	Name   string
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("invariant %s violated: %s", v.Name, v.Detail)
}

// Unwrap makes errors.Is(v, ErrInvariant) true.
func (v *Violation) Unwrap() error { return ErrInvariant }

// Violated builds a typed violation for the named check.
func Violated(name, format string, args ...any) error {
	return &Violation{Name: name, Detail: fmt.Sprintf(format, args...)}
}

// Check returns nil when ok, otherwise a typed violation.
func Check(name string, ok bool, format string, args ...any) error {
	if ok {
		return nil
	}
	return Violated(name, format, args...)
}

// CloseRel reports whether a and b agree within relative tolerance
// relTol (anchored at the larger magnitude; exact equality always
// passes, including both zero). NaN never agrees with anything —
// a NaN accumulator is precisely the corruption the plane exists to
// catch.
func CloseRel(a, b, relTol float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= relTol*scale
}

// CheckCloseRel is Check over CloseRel with a standard detail message.
func CheckCloseRel(name string, a, b, relTol float64) error {
	if CloseRel(a, b, relTol) {
		return nil
	}
	return Violated(name, "%g vs %g differ beyond relative tolerance %g (delta %g)",
		a, b, relTol, math.Abs(a-b))
}
