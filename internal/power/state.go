package power

import (
	"memscale/internal/config"
	"memscale/internal/dram"
)

// MeterState is the pure-data checkpoint image of a Meter: the energy
// and residency accumulators. The model and telemetry attachment are
// construction parameters.
type MeterState struct {
	Total     Breakdown    `json:"total"`
	Duration  config.Time  `json:"duration"`
	Residency dram.Account `json:"residency"`
	Intervals int          `json:"intervals"`
}

// Save captures the meter's accumulators.
func (mt *Meter) Save() MeterState {
	return MeterState{
		Total:     mt.total,
		Duration:  mt.duration,
		Residency: mt.residency,
		Intervals: mt.intervals,
	}
}

// Load replaces the meter's accumulators with st.
func (mt *Meter) Load(st MeterState) {
	mt.total = st.Total
	mt.duration = st.Duration
	mt.residency = st.Residency
	mt.intervals = st.Intervals
}
