package memscale

import (
	"bytes"
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
)

// telemetryRC is the small machine shape the telemetry tests run on.
func telemetryRC(tc *TelemetryConfig) RunConfig {
	return RunConfig{
		Mix: "MID1", Policy: "MemScale",
		Epochs: 2, Cores: 4, Channels: 2,
		Telemetry: tc,
	}
}

// TestTelemetryReconciliation is the acceptance check: the exported
// telemetry's energy and residency totals must reconcile with the
// RunSummary the same run reports, and the per-epoch snapshots must
// partition those totals.
func TestTelemetryReconciliation(t *testing.T) {
	sum, err := Run(telemetryRC(&TelemetryConfig{Events: true}))
	if err != nil {
		t.Fatal(err)
	}
	exp := sum.Telemetry
	if exp == nil {
		t.Fatal("run requested telemetry but summary carries none")
	}

	// Totals: the recorder accumulates the very intervals the power
	// meter integrates, in the same order, so equality is exact.
	if got := exp.Energy.Memory(); got != sum.MemoryEnergyJ {
		t.Errorf("telemetry memory energy = %g J, summary = %g J", got, sum.MemoryEnergyJ)
	}
	if exp.DurationSeconds != sum.DurationSeconds {
		t.Errorf("telemetry duration = %g s, summary = %g s", exp.DurationSeconds, sum.DurationSeconds)
	}
	for f, s := range sum.FreqSeconds {
		if exp.FreqSeconds[f] != s {
			t.Errorf("freq %d MHz: telemetry %g s, summary %g s", f, exp.FreqSeconds[f], s)
		}
	}

	// Per-epoch energies partition the run total (float sums regrouped
	// per epoch: equal to within rounding).
	if len(exp.Epochs) != 2 {
		t.Fatalf("exported %d epochs, want 2", len(exp.Epochs))
	}
	var epochEnergy float64
	var epochResidency int64
	for _, ep := range exp.Epochs {
		epochEnergy += ep.Energy.Memory()
		epochResidency += int64(ep.Residency.Total())
	}
	if diff := math.Abs(epochEnergy - sum.MemoryEnergyJ); diff > 1e-12*math.Abs(sum.MemoryEnergyJ) {
		t.Errorf("per-epoch energy sums to %g J, run total %g J", epochEnergy, sum.MemoryEnergyJ)
	}
	// Residency is integer picoseconds: the partition is exact, and the
	// total conserves rank-time (duration x ranks), relocks included.
	if got := int64(exp.Residency.Total()); epochResidency != got {
		t.Errorf("per-epoch residency sums to %d ps, run total %d ps", epochResidency, got)
	}

	// The export round-trips through the JSONL interchange format
	// losslessly.
	var buf bytes.Buffer
	if err := WriteTelemetry(&buf, sum); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTelemetry(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("round trip returned %d runs, want 1", len(back))
	}
	if back[0].Energy != exp.Energy || back[0].Residency != exp.Residency {
		t.Error("energy/residency totals changed across the JSONL round trip")
	}
	if len(back[0].Epochs) != len(exp.Epochs) || len(back[0].Events) != len(exp.Events) {
		t.Errorf("round trip kept %d epochs/%d events, want %d/%d",
			len(back[0].Epochs), len(back[0].Events), len(exp.Epochs), len(exp.Events))
	}
}

// TestTelemetryZeroInterference asserts that instrumenting a run does
// not perturb it: the simulated outcome is bit-identical with
// telemetry on and off.
func TestTelemetryZeroInterference(t *testing.T) {
	plain, err := Run(telemetryRC(nil))
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := Run(telemetryRC(&TelemetryConfig{Events: true}))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Telemetry != nil {
		t.Error("telemetry exported without being requested")
	}
	if plain.MemoryEnergyJ != instrumented.MemoryEnergyJ ||
		plain.SystemEnergyJ != instrumented.SystemEnergyJ ||
		plain.AvgCPIIncrease != instrumented.AvgCPIIncrease ||
		plain.DurationSeconds != instrumented.DurationSeconds {
		t.Errorf("telemetry perturbed the simulation: %+v vs %+v", plain, instrumented)
	}
}

// TestTelemetrySweepAggregation runs a telemetry-enabled grid on a
// full worker pool (the -race CI job turns this into the data-race
// smoke test) and checks the race-free cross-run rollup.
func TestTelemetrySweepAggregation(t *testing.T) {
	tc := &TelemetryConfig{Events: true}
	grid := Grid(
		RunConfig{Epochs: 1, Cores: 4, Channels: 2, Telemetry: tc},
		[]string{"MID1", "MEM1"},
		[]string{"MemScale", "Static"},
	)
	sums, err := Sweep(context.Background(), SweepConfig{
		Runs:    grid,
		Workers: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		t.Fatal(err)
	}

	ro := AggregateTelemetry(sums...)
	if ro.Runs != len(grid) {
		t.Fatalf("rollup has %d runs, want %d", ro.Runs, len(grid))
	}
	var duration, energy float64
	for _, s := range sums {
		if s.Telemetry == nil {
			t.Fatalf("%s/%s: no telemetry export", s.Mix, s.Policy)
		}
		if s.Telemetry.Meta.Mix != s.Mix || s.Telemetry.Meta.Policy != s.Policy {
			t.Errorf("export meta %s/%s under summary %s/%s",
				s.Telemetry.Meta.Mix, s.Telemetry.Meta.Policy, s.Mix, s.Policy)
		}
		duration += s.DurationSeconds
		energy += s.MemoryEnergyJ
	}
	if ro.DurationSeconds != duration {
		t.Errorf("rollup duration = %g s, want %g s", ro.DurationSeconds, duration)
	}
	if diff := math.Abs(ro.Energy.Memory() - energy); diff > 1e-12*energy {
		t.Errorf("rollup energy = %g J, want %g J", ro.Energy.Memory(), energy)
	}
	if h := ro.Histograms["read_latency"]; h == nil || h.Count == 0 {
		t.Error("rollup lost the merged read-latency histogram")
	}
}

// TestTelemetrySchemaVersion: WriteTelemetry stamps the interchange
// version on every run record; ReadTelemetry accepts matching-major
// streams (including unversioned pre-1.1 ones) and rejects foreign
// majors with the typed error.
func TestTelemetrySchemaVersion(t *testing.T) {
	sum, err := Run(telemetryRC(&TelemetryConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTelemetry(&buf, sum); err != nil {
		t.Fatal(err)
	}
	wire := buf.String()
	if !strings.Contains(wire, `"schema_version":"`+TelemetrySchemaVersion+`"`) {
		t.Fatalf("stream is not stamped with schema version %s:\n%.200s",
			TelemetrySchemaVersion, wire)
	}
	if sum.Telemetry.SchemaVersion != "" {
		t.Error("WriteTelemetry mutated the caller's export")
	}

	runs, err := ReadTelemetry(strings.NewReader(wire))
	if err != nil || len(runs) != 1 {
		t.Fatalf("ReadTelemetry = (%d runs, %v)", len(runs), err)
	}
	if runs[0].SchemaVersion != TelemetrySchemaVersion {
		t.Errorf("read back version %q", runs[0].SchemaVersion)
	}

	// Unversioned streams predate the stamp and read as 1.0 — same
	// major, accepted.
	legacy := strings.Replace(wire, `"schema_version":"`+TelemetrySchemaVersion+`",`, "", 1)
	if _, err := ReadTelemetry(strings.NewReader(legacy)); err != nil {
		t.Errorf("unversioned stream rejected: %v", err)
	}

	// A future major is incompatible by definition.
	future := strings.Replace(wire, `"schema_version":"`+TelemetrySchemaVersion+`"`,
		`"schema_version":"2.0"`, 1)
	_, err = ReadTelemetry(strings.NewReader(future))
	var sv *SchemaVersionError
	if !errors.As(err, &sv) {
		t.Fatalf("major-2 stream: err = %v, want *SchemaVersionError", err)
	}
	if sv.Version != "2.0" || sv.Line != 1 {
		t.Errorf("error detail = %+v", sv)
	}

	// Minor skew within the major stays readable.
	minor := strings.Replace(wire, `"schema_version":"`+TelemetrySchemaVersion+`"`,
		`"schema_version":"1.999"`, 1)
	if _, err := ReadTelemetry(strings.NewReader(minor)); err != nil {
		t.Errorf("minor-skewed stream rejected: %v", err)
	}
}
