package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// Report rendering: the figure-ready CSV views and the human summary
// memscale-report prints. All views are derived purely from run
// exports, so any tool that loads the JSONL interchange format can
// reproduce them.

// WriteResidencyCSV renders the figure7-style per-epoch timeline: for
// every epoch of every run, the chosen frequency, mean CPI, mean
// channel utilization, and the DRAM state-residency fractions.
func WriteResidencyCSV(w io.Writer, exports []*RunExport) error {
	if _, err := fmt.Fprint(w, "mix,policy,epoch,end_ms,freq_mhz,mean_cpi,mean_util"); err != nil {
		return err
	}
	for _, c := range ResidencyColumns {
		if _, err := fmt.Fprintf(w, ",%s", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, e := range exports {
		if e == nil {
			continue
		}
		for _, ep := range e.Epochs {
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%.3f,%d,%.4f,%.4f",
				e.Meta.Mix, e.Meta.Policy, ep.Index, ep.EndMs(), ep.BusFreqMHz(),
				ep.MeanCPI(), ep.MeanUtil()); err != nil {
				return err
			}
			for _, f := range ep.ResidencyFractions() {
				if _, err := fmt.Fprintf(w, ",%.6f", f); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteLatencyCSV renders the merged read-latency histogram buckets.
func WriteLatencyCSV(w io.Writer, exports []*RunExport) error {
	if _, err := fmt.Fprintln(w, "mix,policy,bucket_le_ns,count"); err != nil {
		return err
	}
	for _, e := range exports {
		if e == nil {
			continue
		}
		h := e.Histogram("read_latency")
		if h == nil {
			continue
		}
		for i, c := range h.Counts {
			label := "+inf"
			if i < len(h.Bounds) {
				label = fmt.Sprintf("%g", h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%d\n", e.Meta.Mix, e.Meta.Policy, label, c); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteDecisionsCSV renders the governor decision trace: chosen
// frequency and predicted-vs-actual CPI per epoch. Runs exported
// without the event stream contribute no rows.
func WriteDecisionsCSV(w io.Writer, exports []*RunExport) error {
	if _, err := fmt.Fprintln(w, "mix,policy,epoch,t_ms,from_mhz,chosen_mhz,predicted_cpi,actual_cpi"); err != nil {
		return err
	}
	for _, e := range exports {
		if e == nil {
			continue
		}
		for _, ev := range e.Events {
			if ev.Kind != EvDecision {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%.3f,%d,%d,%.4f,%.4f\n",
				e.Meta.Mix, e.Meta.Policy, ev.Epoch, ev.Time.Milliseconds(),
				ev.A, ev.B, ev.F1, ev.F2); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFreqCSV renders per-run frequency residency.
func WriteFreqCSV(w io.Writer, exports []*RunExport) error {
	if _, err := fmt.Fprintln(w, "mix,policy,freq_mhz,seconds,share"); err != nil {
		return err
	}
	for _, e := range exports {
		if e == nil {
			continue
		}
		for _, f := range sortedFreqs(e.FreqSeconds) {
			share := 0.0
			if e.DurationSeconds > 0 {
				share = e.FreqSeconds[f] / e.DurationSeconds
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%.6f,%.4f\n",
				e.Meta.Mix, e.Meta.Policy, f, e.FreqSeconds[f], share); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteEventsCSV renders every retained event of every run.
func WriteEventsCSV(w io.Writer, exports []*RunExport) error {
	sink := &CSVSink{W: w}
	if err := sink.Emit(nil); err != nil {
		return err
	}
	for _, e := range exports {
		if e == nil {
			continue
		}
		if err := sink.Emit(e.Events); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummary prints the human-readable digest: one block per run
// plus a cross-run aggregate when several runs are loaded.
func WriteSummary(w io.Writer, exports []*RunExport) error {
	ro := NewRollup()
	for _, e := range exports {
		if e == nil {
			continue
		}
		ro.Add(e)
		writeRunSummary(w, e)
	}
	if ro.Runs == 0 {
		_, err := fmt.Fprintln(w, "no telemetry runs loaded")
		return err
	}
	if ro.Runs > 1 {
		fmt.Fprintf(w, "aggregate over %d runs: %d epochs, %.3f s simulated, %.3f J memory energy\n",
			ro.Runs, ro.Epochs, ro.DurationSeconds, ro.Energy.Memory())
		writeResidencyLine(w, "  state residency", residencyFractions(ro.Residency))
		if h := ro.Histograms["read_latency"]; h != nil && h.Count > 0 {
			fmt.Fprintf(w, "  read latency: n=%d mean=%.0f ns p50<=%.0f p95<=%.0f max=%.0f\n",
				h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Max)
		}
	}
	return nil
}

func writeRunSummary(w io.Writer, e *RunExport) {
	fmt.Fprintf(w, "%s/%s: %.3f s simulated, %d epochs, memory %.3f J (DRAM %.3f, PLL/REG %.3f, MC %.3f)\n",
		e.Meta.Mix, e.Meta.Policy, e.DurationSeconds, len(e.Epochs),
		e.Energy.Memory(), e.Energy.DRAM(), e.Energy.PLLReg, e.Energy.MC)
	writeResidencyLine(w, "  state residency", residencyFractions(e.Residency))
	if len(e.FreqSeconds) > 0 {
		fmt.Fprint(w, "  frequency residency:")
		for _, f := range sortedFreqs(e.FreqSeconds) {
			share := 0.0
			if e.DurationSeconds > 0 {
				share = e.FreqSeconds[f] / e.DurationSeconds
			}
			fmt.Fprintf(w, " %d:%.0f%%", f, share*100)
		}
		fmt.Fprintln(w)
	}
	if h := e.Histogram("read_latency"); h != nil && h.Count > 0 {
		fmt.Fprintf(w, "  read latency: n=%d mean=%.0f ns p50<=%.0f p95<=%.0f max=%.0f\n",
			h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Max)
	}
	if h := e.Histogram("queue_depth"); h != nil && h.Count > 0 {
		fmt.Fprintf(w, "  queue depth at arrival: mean=%.2f p95<=%.0f max=%.0f\n",
			h.Mean(), h.Quantile(0.95), h.Max)
	}
	if n := e.Counters["decisions"]; n > 0 {
		fmt.Fprintf(w, "  governor: %d decisions, %d frequency transitions", n, e.Counters["freq_transitions"])
		if err := decisionAccuracy(e); err != "" {
			fmt.Fprintf(w, ", %s", err)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  powerdown: %d enters / %d exits; %d refreshes\n",
		e.Counters["powerdown_enters"], e.Counters["powerdown_exits"], e.Counters["refreshes"])
	if e.DroppedEvents > 0 {
		fmt.Fprintf(w, "  WARNING: %d events dropped (ring full, no sink)\n", e.DroppedEvents)
	}
}

// decisionAccuracy summarizes predicted-vs-actual CPI error over the
// run's decision events.
func decisionAccuracy(e *RunExport) string {
	var n int
	var sumErr float64
	for _, ev := range e.Events {
		if ev.Kind != EvDecision || ev.F1 <= 0 || ev.F2 <= 0 {
			continue
		}
		d := (ev.F1 - ev.F2) / ev.F2
		if d < 0 {
			d = -d
		}
		sumErr += d
		n++
	}
	if n == 0 {
		return ""
	}
	return fmt.Sprintf("mean |predicted-actual| CPI error %.1f%%", sumErr/float64(n)*100)
}

func writeResidencyLine(w io.Writer, label string, fr [6]float64) {
	fmt.Fprintf(w, "%s:", label)
	for i, c := range ResidencyColumns {
		fmt.Fprintf(w, " %s=%.1f%%", c, fr[i]*100)
	}
	fmt.Fprintln(w)
}

func sortedFreqs(m map[int]float64) []int {
	out := make([]int, 0, len(m))
	for f := range m {
		out = append(out, f)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
