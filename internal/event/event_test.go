package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"memscale/internal/config"
)

func TestFIFOAtSameInstant(t *testing.T) {
	var q Queue
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(100, func(config.Time) { order = append(order, i) })
	}
	q.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", order)
		}
	}
	if q.Now() != 100 {
		t.Errorf("clock = %v, want 100", q.Now())
	}
}

func TestFIFOAtSameInstantAfterRecycling(t *testing.T) {
	// Same-instant FIFO must survive node recycling: burn slots through
	// the pool first, then check ordering on reused slots.
	var q Queue
	for i := 0; i < 32; i++ {
		q.Schedule(config.Time(i), func(config.Time) {})
	}
	q.Run(0)
	if q.FreeNodes() == 0 {
		t.Fatal("pool should hold recycled slots")
	}
	var order []int
	for i := 0; i < 16; i++ {
		i := i
		q.Schedule(1000, func(config.Time) { order = append(order, i) })
	}
	q.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("recycled same-instant events out of order: %v", order)
		}
	}
}

func TestTimeOrdering(t *testing.T) {
	var q Queue
	times := []config.Time{50, 10, 30, 20, 40, 10, 50}
	var fired []config.Time
	for _, at := range times {
		q.Schedule(at, func(now config.Time) { fired = append(fired, now) })
	}
	q.Run(0)
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatalf("events fired out of time order: %v", fired)
	}
	if len(fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(fired), len(times))
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	ran := false
	h := q.Schedule(10, func(config.Time) { ran = true })
	if !q.Pending(h) {
		t.Error("event should report pending")
	}
	if at, ok := q.EventAt(h); !ok || at != 10 {
		t.Errorf("EventAt = %v, %v", at, ok)
	}
	if !q.Cancel(h) {
		t.Error("Cancel of a pending event must report true")
	}
	if q.Pending(h) {
		t.Error("cancelled event still reports pending")
	}
	q.Run(0)
	if ran {
		t.Error("cancelled event ran")
	}
	if q.Cancel(h) {
		t.Error("double cancel must report false")
	}
	if q.Cancel(Handle{}) {
		t.Error("zero handle cancel must report false")
	}
}

func TestCancelRemovesEagerly(t *testing.T) {
	// A cancelled event must leave the heap immediately, not linger
	// until its fire time (the old lazy-deletion leak).
	var q Queue
	handles := make([]Handle, 100)
	for i := range handles {
		handles[i] = q.Schedule(config.Time(1000+i), func(config.Time) {})
	}
	for _, h := range handles {
		q.Cancel(h)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after cancelling everything, want 0 (eager removal)", q.Len())
	}
	if q.FreeNodes() != 100 {
		t.Errorf("FreeNodes = %d, want 100 (cancelled nodes recycled)", q.FreeNodes())
	}
}

func TestCancelledHandleCannotHitRecycledSlot(t *testing.T) {
	// Generation safety: after a slot is recycled, a stale handle to
	// its previous occupant must be inert.
	var q Queue
	h1 := q.Schedule(10, func(config.Time) { t.Error("cancelled event fired") })
	q.Cancel(h1)

	ran := false
	h2 := q.Schedule(20, func(config.Time) { ran = true })
	if h2.idx != h1.idx {
		t.Fatalf("expected slot reuse: h1.idx=%d h2.idx=%d", h1.idx, h2.idx)
	}
	if q.Cancel(h1) {
		t.Error("stale handle cancelled the slot's new occupant")
	}
	q.Run(0)
	if !ran {
		t.Error("event killed by a stale handle to a recycled slot")
	}
}

func TestFiredHandleCannotHitRecycledSlot(t *testing.T) {
	// Same generation check for handles to already-fired events.
	var q Queue
	h1 := q.Schedule(10, func(config.Time) {})
	q.Run(0)
	ran := false
	h2 := q.Schedule(20, func(config.Time) { ran = true })
	if h2.idx != h1.idx {
		t.Fatalf("expected slot reuse: h1.idx=%d h2.idx=%d", h1.idx, h2.idx)
	}
	if q.Pending(h1) {
		t.Error("fired handle reports pending after slot reuse")
	}
	if q.Cancel(h1) {
		t.Error("fired handle cancelled the slot's new occupant")
	}
	q.Run(0)
	if !ran {
		t.Error("event killed by a stale fired handle")
	}
}

func TestPoolReuse(t *testing.T) {
	// A self-rescheduling chain must reach steady state with a pool no
	// larger than its concurrency (one pending event at a time).
	var q Queue
	n := 0
	var tick Handler
	tick = func(now config.Time) {
		n++
		if n < 10000 {
			q.Schedule(now+1, tick)
		}
	}
	q.Schedule(0, tick)
	q.Run(0)
	if n != 10000 {
		t.Fatalf("fired %d, want 10000", n)
	}
	// Step releases the node before invoking the handler, so the chain
	// needs exactly one slot.
	if q.PoolSize() != 1 {
		t.Errorf("PoolSize = %d for a 1-deep chain, want 1", q.PoolSize())
	}
}

func TestScheduleBound(t *testing.T) {
	var q Queue
	type env struct{ hits int }
	e := &env{}
	var got []int32
	fn := Bound(func(now config.Time, v any, a, b int32) {
		v.(*env).hits++
		got = append(got, a, b)
	})
	q.ScheduleBound(5, fn, e, 7, -3)
	q.AfterBound(10, fn, e, 1, 2)
	q.Run(0)
	if e.hits != 2 {
		t.Fatalf("bound handler hits = %d, want 2", e.hits)
	}
	if len(got) != 4 || got[0] != 7 || got[1] != -3 || got[2] != 1 || got[3] != 2 {
		t.Fatalf("bound args = %v", got)
	}
	if q.Now() != 10 {
		t.Errorf("clock = %v, want 10", q.Now())
	}
}

func TestBoundAndClosureInterleave(t *testing.T) {
	// Bound and closure events at the same instant keep schedule order.
	var q Queue
	var order []int
	q.Schedule(10, func(config.Time) { order = append(order, 0) })
	q.ScheduleBound(10, func(config.Time, any, int32, int32) { order = append(order, 1) }, nil, 0, 0)
	q.Schedule(10, func(config.Time) { order = append(order, 2) })
	q.Run(0)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("interleaved order = %v", order)
	}
}

func TestCancelFromHandler(t *testing.T) {
	var q Queue
	ran := false
	victim := q.Schedule(20, func(config.Time) { ran = true })
	q.Schedule(10, func(config.Time) { q.Cancel(victim) })
	q.Run(0)
	if ran {
		t.Error("event cancelled from an earlier handler still ran")
	}
}

func TestScheduleFromHandler(t *testing.T) {
	var q Queue
	var seen []config.Time
	q.Schedule(10, func(now config.Time) {
		seen = append(seen, now)
		q.After(5, func(now config.Time) { seen = append(seen, now) })
	})
	q.Run(0)
	if len(seen) != 2 || seen[0] != 10 || seen[1] != 15 {
		t.Fatalf("nested scheduling: %v", seen)
	}
}

func TestRunUntil(t *testing.T) {
	var q Queue
	var fired []config.Time
	for _, at := range []config.Time{5, 10, 15, 20} {
		q.Schedule(at, func(now config.Time) { fired = append(fired, now) })
	}
	q.RunUntil(10)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(10) fired %d events, want 2 (inclusive)", len(fired))
	}
	if q.Now() != 10 {
		t.Errorf("clock = %v after RunUntil(10)", q.Now())
	}
	q.RunUntil(100)
	if len(fired) != 4 {
		t.Errorf("fired %d total, want 4", len(fired))
	}
	if q.Now() != 100 {
		t.Errorf("clock must land on the deadline, got %v", q.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var q Queue
	q.Schedule(10, func(config.Time) {})
	q.Run(0)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past must panic")
		}
	}()
	q.Schedule(5, func(config.Time) {})
}

func TestNegativeAfterPanics(t *testing.T) {
	var q Queue
	defer func() {
		if recover() == nil {
			t.Error("negative After delay must panic")
		}
	}()
	q.After(-1, func(config.Time) {})
}

func TestNilHandlerPanics(t *testing.T) {
	var q Queue
	defer func() {
		if recover() == nil {
			t.Error("nil handler must panic")
		}
	}()
	q.Schedule(1, nil)
}

func TestNilBoundHandlerPanics(t *testing.T) {
	var q Queue
	defer func() {
		if recover() == nil {
			t.Error("nil bound handler must panic")
		}
	}()
	q.ScheduleBound(1, nil, nil, 0, 0)
}

func TestCounters(t *testing.T) {
	var q Queue
	for i := 0; i < 5; i++ {
		q.Schedule(config.Time(i), func(config.Time) {})
	}
	h := q.Schedule(99, func(config.Time) {})
	q.Cancel(h)
	q.Run(0)
	if q.ScheduledTotal() != 6 {
		t.Errorf("ScheduledTotal = %d, want 6", q.ScheduledTotal())
	}
	if q.Fired() != 5 {
		t.Errorf("Fired = %d, want 5", q.Fired())
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d, want 0", q.Len())
	}
}

func TestNextAt(t *testing.T) {
	var q Queue
	if _, ok := q.NextAt(); ok {
		t.Error("empty queue should have no next event")
	}
	q.Schedule(42, func(config.Time) {})
	if at, ok := q.NextAt(); !ok || at != 42 {
		t.Errorf("NextAt = %v, %v", at, ok)
	}
}

// TestRandomizedOrdering is a property test: for any batch of events
// with random times and random cancellations, the survivors fire in
// nondecreasing time order and cancelled events never fire.
func TestRandomizedOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		count := int(n%64) + 1
		type rec struct {
			h         Handle
			cancelled bool
		}
		recs := make([]*rec, count)
		firedAt := make([]config.Time, 0, count)
		for i := 0; i < count; i++ {
			r := &rec{}
			recs[i] = r
			at := config.Time(rng.Intn(1000))
			r.h = q.Schedule(at, func(now config.Time) {
				if r.cancelled {
					t.Errorf("cancelled event fired at %v", now)
				}
				firedAt = append(firedAt, now)
			})
		}
		survivors := count
		for _, r := range recs {
			if rng.Intn(3) == 0 {
				r.cancelled = true
				q.Cancel(r.h)
				survivors--
			}
		}
		if q.Len() != survivors {
			return false // eager removal must shrink the heap
		}
		q.Run(0)
		if len(firedAt) != survivors {
			return false
		}
		return sort.SliceIsSorted(firedAt, func(i, j int) bool { return firedAt[i] < firedAt[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	var q Queue
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Schedule(q.Now()+config.Time(i%128), func(config.Time) {})
		if q.Len() > 1024 {
			for q.Len() > 512 {
				q.Step()
			}
		}
	}
	q.Run(0)
}

// BenchmarkEventQueue is the zero-allocation reference: a warmed pool
// driven entirely through the bound form must schedule and fire with 0
// allocs/op.
func BenchmarkEventQueue(b *testing.B) {
	var q Queue
	fn := Bound(func(config.Time, any, int32, int32) {})
	// Warm the pool and the heap arena.
	for i := 0; i < 1024; i++ {
		q.ScheduleBound(q.Now()+config.Time(i%128), fn, nil, 0, 0)
	}
	for q.Len() > 512 {
		q.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.ScheduleBound(q.Now()+config.Time(i%128), fn, nil, int32(i), 0)
		if q.Len() > 1024 {
			for q.Len() > 512 {
				q.Step()
			}
		}
	}
	b.StopTimer()
	q.Run(0)
}

// BenchmarkEventQueueCancel measures the eager-removal path.
func BenchmarkEventQueueCancel(b *testing.B) {
	var q Queue
	fn := Bound(func(config.Time, any, int32, int32) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := q.ScheduleBound(q.Now()+config.Time(64+i%128), fn, nil, 0, 0)
		q.ScheduleBound(q.Now()+config.Time(i%64), fn, nil, 0, 0)
		q.Cancel(h)
		if q.Len() > 1024 {
			for q.Len() > 512 {
				q.Step()
			}
		}
	}
	b.StopTimer()
	q.Run(0)
}
