package core

import (
	"memscale/internal/config"
	"memscale/internal/faults"
	"memscale/internal/power"
	"memscale/internal/sim"
)

// Objective selects what the frequency search minimizes.
type Objective int

// Objectives (Section 4.2.3 compares both).
const (
	// MinimizeSystemEnergy is full MemScale: account for the energy
	// the rest of the server burns while memory runs slower.
	MinimizeSystemEnergy Objective = iota
	// MinimizeMemoryEnergy is the "MemScale (MemEnergy)" variant.
	MinimizeMemoryEnergy
)

// Options configure the policy.
type Options struct {
	// NonMemPower is the fixed rest-of-system power in watts used by
	// the system energy ratio (Equation 10).
	NonMemPower float64

	// Gamma overrides the maximum allowed performance degradation;
	// zero uses the configuration default.
	Gamma float64

	Objective Objective
}

// Policy is the MemScale governor.
type Policy struct {
	cfg   *config.Config
	model *PerfModel
	emod  *power.Model
	opts  Options
	gamma float64

	slack []config.Time // per-core accumulated slack (Equation 1)

	chosen config.FreqMHz // frequency selected for the current epoch

	// Diagnostics.
	decisions  int
	degraded   int
	timeAtFreq map[config.FreqMHz]int
}

// NewPolicy builds the governor for cfg.
func NewPolicy(cfg *config.Config, opts Options) *Policy {
	g := opts.Gamma
	if g == 0 {
		g = cfg.Policy.Gamma
	}
	return &Policy{
		cfg:        cfg,
		model:      NewPerfModel(cfg),
		emod:       power.NewModel(cfg),
		opts:       opts,
		gamma:      g,
		slack:      make([]config.Time, cfg.Cores),
		chosen:     config.MaxBusFreq,
		timeAtFreq: map[config.FreqMHz]int{},
	}
}

// Name implements sim.Governor.
func (p *Policy) Name() string {
	if p.opts.Objective == MinimizeMemoryEnergy {
		return "memscale-memenergy"
	}
	return "memscale"
}

// Gamma returns the policy's performance-degradation bound.
func (p *Policy) Gamma() float64 { return p.gamma }

// Slack returns the accumulated per-core slack.
func (p *Policy) Slack() []config.Time { return append([]config.Time(nil), p.slack...) }

// MinSlack returns the smallest per-core accumulated slack without
// allocating — the runtime invariant plane polls it every epoch, so it
// must stay off the heap.
func (p *Policy) MinSlack() config.Time {
	if len(p.slack) == 0 {
		return 0
	}
	min := p.slack[0]
	for _, s := range p.slack[1:] {
		if s < min {
			min = s
		}
	}
	return min
}

// ProfileComplete implements sim.Governor: fit the models to the
// profiling window and pick the epoch frequency.
func (p *Policy) ProfileComplete(prof sim.Profile) config.FreqMHz {
	p.model.Fit(prof)
	epoch := p.cfg.Policy.EpochLength

	best := config.MaxBusFreq
	bestScore := p.score(prof, config.MaxBusFreq)
	for _, f := range config.BusFrequencies[1:] {
		if !p.feasible(f, epoch) {
			continue
		}
		if s := p.score(prof, f); s < bestScore {
			best, bestScore = f, s
		}
	}
	p.chosen = best
	p.decisions++
	p.timeAtFreq[best]++
	return best
}

// feasible reports whether running the next epoch at f keeps every
// core's accumulated slack non-negative (Equation 1 projected one
// epoch forward).
func (p *Policy) feasible(f config.FreqMHz, epoch config.Time) bool {
	for i := range p.slack {
		if p.model.CPIObs[i] <= 0 {
			continue
		}
		cpiMax := p.model.CPI(i, config.MaxBusFreq)
		cpiF := p.model.CPI(i, f)
		if cpiF <= 0 {
			continue
		}
		// Work done in an epoch at f would have taken
		// epoch * cpiMax/cpiF at nominal frequency; the target grants
		// (1+gamma) of that.
		gain := config.Time(float64(epoch) * ((1 + p.gamma) * cpiMax / cpiF))
		if p.slack[i]+gain-epoch < 0 {
			return false
		}
	}
	return true
}

// score evaluates the Equation 10 numerator (predicted energy for the
// profiled work at f); SER's denominator is common to all candidates,
// so minimizing the numerator minimizes SER.
func (p *Policy) score(prof sim.Profile, f config.FreqMHz) float64 {
	relTime := p.model.RelTime(f, prof.BusFreq)
	mem := p.predictMemEnergy(prof, f, relTime)
	if p.opts.Objective == MinimizeMemoryEnergy {
		return mem
	}
	dur := float64(prof.Elapsed()) * relTime
	return mem + p.opts.NonMemPower*config.Time(dur).Seconds()
}

// predictMemEnergy builds the what-if power-model interval for
// frequency f from the profiled interval: background states stretch
// with run time, per-access energies keep their counts, burst
// occupancies rescale with the burst length ratio.
func (p *Policy) predictMemEnergy(prof sim.Profile, f config.FreqMHz, relTime float64) float64 {
	iv := prof.Interval
	burstRatio := float64(p.model.Timing(f).Burst) / float64(p.model.Timing(prof.BusFreq).Burst)

	pred := power.Interval{
		Duration:  scaleT(iv.Duration, relTime),
		MCBusFreq: f,
		Channels:  make([]power.ChannelSlice, len(iv.Channels)),
	}
	for i := range iv.Channels {
		pred.Channels[i] = predictChannelSlice(iv.Channels[i], f, relTime, burstRatio)
	}
	return p.emod.Energy(pred).Memory()
}

// predictChannelSlice rescales one channel's profiled account to a
// candidate frequency.
func predictChannelSlice(ch power.ChannelSlice, f config.FreqMHz, relTime, burstRatio float64) power.ChannelSlice {
	out := power.ChannelSlice{BusFreq: f, DevFreq: f, DRAM: ch.DRAM}
	out.DRAM.ActiveStandby = scaleT(ch.DRAM.ActiveStandby, relTime)
	out.DRAM.PrechargeStandby = scaleT(ch.DRAM.PrechargeStandby, relTime)
	out.DRAM.ActivePD = scaleT(ch.DRAM.ActivePD, relTime)
	out.DRAM.PrechargePD = scaleT(ch.DRAM.PrechargePD, relTime)
	out.DRAM.PrechargePDSlow = scaleT(ch.DRAM.PrechargePDSlow, relTime)
	out.DRAM.Refreshing = scaleT(ch.DRAM.Refreshing, relTime)
	out.DRAM.ReadBurst = scaleT(ch.DRAM.ReadBurst, burstRatio)
	out.DRAM.WriteBurst = scaleT(ch.DRAM.WriteBurst, burstRatio)
	out.DRAM.TermBurst = scaleT(ch.DRAM.TermBurst, burstRatio)
	out.Busy = scaleT(ch.Busy, burstRatio)
	return out
}

func scaleT(t config.Time, k float64) config.Time {
	return config.Time(float64(t)*k + 0.5)
}

// EpochEnd implements sim.Governor: update per-core slack with the
// epoch's actual outcome (stage 4 of Section 3.2).
func (p *Policy) EpochEnd(prof sim.Profile) {
	// Refit to the whole epoch so the "what would max frequency have
	// done" estimate reflects what actually ran.
	p.model.Fit(prof)
	elapsed := prof.Elapsed()
	for i := range p.slack {
		instr := prof.Instr[i]
		if instr <= 0 || p.model.CPIObs[i] <= 0 {
			continue
		}
		// Estimated time this epoch's work would have taken at max
		// frequency (Equation 1's T_MaxFreq), in seconds per the model.
		tpiMax := p.model.TPICpu[i] + p.model.Alpha[i]*p.model.TPIMem(config.MaxBusFreq)
		target := config.FromSeconds(instr * tpiMax * (1 + p.gamma))
		p.slack[i] += target - elapsed
	}
}

// EpochDegraded implements sim.DegradableGovernor. A fault plane
// disturbance invalidated the epoch: its counters must not refit the
// performance model, and the slack ledger — built from measurements
// that can no longer be trusted — restarts from zero. Resetting rather
// than carrying debt keeps the Equation 1 account non-negative at
// every degraded boundary, so the policy re-earns headroom before it
// dares slow memory down again.
func (p *Policy) EpochDegraded(prof sim.Profile, mask faults.Kind) {
	for i := range p.slack {
		p.slack[i] = 0
	}
	p.degraded++
}

// Degraded returns how many epochs were reported degraded.
func (p *Policy) Degraded() int { return p.degraded }

// PredictedMeanCPI returns the fitted model's mean CPI across active
// cores at bus frequency f — what the governor expected the epoch to
// cost when it chose f. Zero when no core has observations. The
// simulator probes this optional method to pair predictions with
// measured epoch CPIs in the telemetry decision trace.
func (p *Policy) PredictedMeanCPI(f config.FreqMHz) float64 {
	var sum float64
	var n int
	// Ranging over the model (not p.slack) keeps this safe when no
	// epoch has been fitted yet — degraded epochs skip the fit.
	for i := range p.model.CPIObs {
		if p.model.CPIObs[i] <= 0 {
			continue
		}
		sum += p.model.CPI(i, f)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Decisions returns how many frequency decisions the policy has made.
func (p *Policy) Decisions() int { return p.decisions }

// FreqChoices returns how often each frequency was chosen.
func (p *Policy) FreqChoices() map[config.FreqMHz]int {
	out := make(map[config.FreqMHz]int, len(p.timeAtFreq))
	for f, n := range p.timeAtFreq {
		out[f] = n
	}
	return out
}
