package memctrl

import (
	"testing"

	"memscale/internal/config"
	"memscale/internal/event"
)

// BenchmarkControllerEpoch drives a closed loop of four cores through
// one controller — each completed read immediately issues the next,
// walking rows to mix row hits and misses — for 100 us of simulated
// time per iteration. After the first iteration warms the event pool
// and request pool, the steady state must not allocate.
func BenchmarkControllerEpoch(b *testing.B) {
	cfg := config.Default()
	cfg.Cores = 4
	cfg.Channels = 1
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	q := &event.Queue{}
	c := New(&cfg, q)
	c.Start()
	mapper := config.NewAddressMapper(&cfg)

	lines := make([]uint64, cfg.Cores)
	var issue func(core int) event.Handler
	issue = func(core int) event.Handler {
		var h event.Handler
		h = func(now config.Time) {
			lines[core]++
			// Stride across banks and rows per core so the benchmark
			// exercises hits, misses, and bus contention.
			row := int(lines[core]/4) % 128
			bank := int(lines[core]) % cfg.BanksPerRank
			line := mapper.LineForRow(0, core%cfg.RanksPerChannel(), bank, row, 0)
			c.Enqueue(now, line, false, core, h)
		}
		return h
	}
	for core := 0; core < cfg.Cores; core++ {
		issue(core)(q.Now())
	}

	b.ReportAllocs()
	b.ResetTimer()
	var fired uint64
	for i := 0; i < b.N; i++ {
		start := q.Fired()
		q.RunUntil(q.Now() + 100*config.Microsecond)
		fired += q.Fired() - start
	}
	b.ReportMetric(float64(fired)/float64(b.N), "events/op")
}
