package sim

import (
	"math"
	"testing"

	"memscale/internal/config"
	"memscale/internal/trace"
	"memscale/internal/workload"
)

// fixedGov always requests one frequency.
type fixedGov struct {
	freq     config.FreqMHz
	profiles int
	epochs   int
	lastProf Profile
	lastEnd  Profile
}

func (g *fixedGov) Name() string { return "fixed" }
func (g *fixedGov) ProfileComplete(p Profile) config.FreqMHz {
	g.profiles++
	g.lastProf = p
	return g.freq
}
func (g *fixedGov) EpochEnd(p Profile) {
	g.epochs++
	g.lastEnd = p
}

func newSystem(t *testing.T, mixName string, opts Options, mutate func(*config.Config)) *System {
	t.Helper()
	cfg := config.Default()
	if mutate != nil {
		mutate(&cfg)
	}
	mix, err := workload.ByName(mixName)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := mix.Streams(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, streams, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBaselineRunCompletes(t *testing.T) {
	s := newSystem(t, "MID1", Options{}, nil)
	res := s.RunForInstructions(500_000)
	for i, n := range res.Instructions {
		if n < 500_000 {
			t.Errorf("core %d retired only %.0f instructions", i, n)
		}
	}
	if res.Duration <= 0 || res.Duration%s.Cfg.Policy.EpochLength != 0 {
		t.Errorf("duration %v is not a whole number of epochs", res.Duration)
	}
	if res.Memory.Memory() <= 0 {
		t.Error("no memory energy accounted")
	}
	if res.FreqTime[config.MaxBusFreq] != res.Duration {
		t.Errorf("baseline must spend the whole run at nominal frequency: %v of %v",
			res.FreqTime[config.MaxBusFreq], res.Duration)
	}
	if res.MeanCPI() <= 1.0 {
		t.Errorf("MID mean CPI = %.2f, expected > 1", res.MeanCPI())
	}
}

func TestGovernorDrivesFrequency(t *testing.T) {
	gov := &fixedGov{freq: config.Freq400}
	s := newSystem(t, "ILP2", Options{Governor: gov}, nil)
	res := s.RunFor(20 * config.Millisecond)
	if gov.profiles == 0 || gov.epochs == 0 {
		t.Fatal("governor never invoked")
	}
	if gov.profiles != gov.epochs {
		t.Errorf("profiles %d != epochs %d", gov.profiles, gov.epochs)
	}
	// All time after the first profiling window runs at 400 MHz.
	if res.FreqTime[config.Freq400] <= res.FreqTime[config.MaxBusFreq] {
		t.Errorf("expected mostly 400 MHz: %v vs %v at nominal",
			res.FreqTime[config.Freq400], res.FreqTime[config.MaxBusFreq])
	}
}

func TestProfileContents(t *testing.T) {
	gov := &fixedGov{freq: config.MaxBusFreq}
	s := newSystem(t, "MEM1", Options{Governor: gov}, nil)
	s.RunFor(5 * config.Millisecond)
	p := gov.lastProf
	if p.Elapsed() != s.Cfg.Policy.ProfilingLength {
		t.Errorf("profiling window = %v", p.Elapsed())
	}
	if p.Counters.Reads == 0 || p.Counters.BTC == 0 {
		t.Error("profiling window saw no traffic on a MEM mix")
	}
	if len(p.Instr) != s.Cfg.Cores {
		t.Fatalf("Instr has %d entries", len(p.Instr))
	}
	for i, n := range p.Instr {
		if n <= 0 {
			t.Errorf("core %d retired nothing in the window", i)
		}
	}
	if p.Interval.Duration != p.Elapsed() {
		t.Errorf("interval duration %v != window %v", p.Interval.Duration, p.Elapsed())
	}
	// Epoch-end profile covers the full epoch.
	if gov.lastEnd.Elapsed() != s.Cfg.Policy.EpochLength {
		t.Errorf("epoch window = %v", gov.lastEnd.Elapsed())
	}
	if gov.lastEnd.Counters.Reads < p.Counters.Reads {
		t.Error("epoch counters must include the profiling window")
	}
}

func TestLowFrequencySavesMemoryEnergyOnILP(t *testing.T) {
	// An ILP mix at 200 MHz must consume substantially less memory
	// energy than at 800 MHz, with little CPI change.
	base := newSystem(t, "ILP2", Options{}, nil)
	rBase := base.RunFor(20 * config.Millisecond)

	gov := &fixedGov{freq: config.Freq200}
	slow := newSystem(t, "ILP2", Options{Governor: gov}, nil)
	rSlow := slow.RunFor(20 * config.Millisecond)

	save := 1 - rSlow.Memory.Memory()/rBase.Memory.Memory()
	if save < 0.40 {
		t.Errorf("ILP memory energy savings at 200 MHz = %.1f%%, want > 40%%", save*100)
	}
	cpiInc := rSlow.MeanCPI()/rBase.MeanCPI() - 1
	if cpiInc > 0.02 {
		t.Errorf("ILP CPI increase at 200 MHz = %.2f%%, want < 2%%", cpiInc*100)
	}
}

func TestLowFrequencyHurtsMEM(t *testing.T) {
	base := newSystem(t, "MEM1", Options{}, nil)
	rBase := base.RunFor(10 * config.Millisecond)

	gov := &fixedGov{freq: config.Freq200}
	slow := newSystem(t, "MEM1", Options{Governor: gov}, nil)
	rSlow := slow.RunFor(10 * config.Millisecond)

	cpiInc := rSlow.MeanCPI()/rBase.MeanCPI() - 1
	if cpiInc < 0.15 {
		t.Errorf("MEM CPI increase at 200 MHz = %.1f%%, want > 15%%", cpiInc*100)
	}
}

func TestTimelineRecords(t *testing.T) {
	s := newSystem(t, "MID1", Options{KeepTimeline: true}, nil)
	res := s.RunFor(25 * config.Millisecond)
	if len(res.Epochs) != 5 {
		t.Fatalf("have %d epoch records, want 5", len(res.Epochs))
	}
	for i, ep := range res.Epochs {
		if ep.Index != i {
			t.Errorf("epoch %d has index %d", i, ep.Index)
		}
		if ep.Freq != config.MaxBusFreq {
			t.Errorf("baseline epoch %d at %v", i, ep.Freq)
		}
		if len(ep.CoreCPI) != s.Cfg.Cores || ep.CoreCPI[0] <= 0 {
			t.Errorf("epoch %d core CPI malformed", i)
		}
		for ch, u := range ep.ChannelUtil {
			if u < 0 || u > 1 {
				t.Errorf("epoch %d channel %d utilization %.3f out of range", i, ch, u)
			}
		}
	}
}

func TestNonMemEnergyAccounting(t *testing.T) {
	s := newSystem(t, "ILP2", Options{NonMemPower: 50}, nil)
	res := s.RunFor(5 * config.Millisecond)
	want := 50 * res.Duration.Seconds()
	if math.Abs(res.NonMemEnergy-want) > 1e-9 {
		t.Errorf("NonMemEnergy = %g, want %g", res.NonMemEnergy, want)
	}
	if res.SystemEnergy() <= res.Memory.Memory() {
		t.Error("system energy must include the rest of the system")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() Result {
		s := newSystem(t, "MID2", Options{}, nil)
		return s.RunFor(10 * config.Millisecond)
	}
	a, b := run(), run()
	if a.Duration != b.Duration {
		t.Fatal("durations differ")
	}
	for i := range a.Instructions {
		if a.Instructions[i] != b.Instructions[i] {
			t.Fatalf("core %d instructions differ: %f vs %f", i, a.Instructions[i], b.Instructions[i])
		}
	}
	if a.Memory != b.Memory {
		t.Error("energy breakdowns differ across identical runs")
	}
}

func TestMaxDurationCap(t *testing.T) {
	s := newSystem(t, "ILP2", Options{MaxDuration: 10 * config.Millisecond}, nil)
	res := s.RunForInstructions(1e15) // unreachable target
	if res.Duration > 10*config.Millisecond {
		t.Errorf("run exceeded MaxDuration: %v", res.Duration)
	}
}

func TestNewValidation(t *testing.T) {
	cfg := config.Default()
	if _, err := New(cfg, nil, Options{}); err == nil {
		t.Error("stream/core mismatch must error")
	}
	bad := cfg
	bad.Channels = 0
	mapper := config.NewAddressMapper(&cfg)
	streams := make([]*trace.Stream, cfg.Cores)
	p, _ := workload.App("gap")
	for i := range streams {
		s, err := trace.NewStream(p, mapper, uint64(i))
		if err != nil {
			t.Fatalf("NewStream: %v", err)
		}
		streams[i] = s
	}
	if _, err := New(bad, streams, Options{}); err == nil {
		t.Error("invalid config must error")
	}
}
