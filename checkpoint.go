package memscale

import (
	"context"
	"errors"
	"fmt"
	"io"

	"memscale/internal/checkpoint"
	"memscale/internal/runner"
	"memscale/internal/sim"
)

// Checkpoint/restore: capture a run's complete simulation state at an
// epoch boundary and continue it later — crash recovery for
// long-horizon runs (pairing with the fault plane's panic isolation),
// and the substrate warm-start sweeps fork from. A resumed run is
// bit-identical to the uninterrupted one: every energy accumulator,
// CPI ratio, frequency residency, and fault count restores to the
// exact bit pattern (see DESIGN.md §4i).

// CheckpointSchemaVersion is the checkpoint container format version
// ("MAJOR.MINOR") stamped on every container CheckpointRun writes.
// ResumeRun accepts any container whose major version matches and
// rejects the rest with a *CheckpointSchemaVersionError.
const CheckpointSchemaVersion = checkpoint.SchemaVersion

// ErrCorruptCheckpoint reports checkpoint bytes that do not parse as a
// container: truncation, wrong magic, malformed JSON. Matched with
// errors.Is.
var ErrCorruptCheckpoint = checkpoint.ErrCorruptCheckpoint

// CheckpointSchemaVersionError is the typed error ResumeRun returns
// for a container written by an incompatible (different-major) schema
// version; match it with errors.As.
type CheckpointSchemaVersionError = checkpoint.SchemaVersionError

// CheckpointRun executes rc exactly like RunContext and additionally
// writes a checkpoint container to w capturing the run's full state
// after atEpoch epochs (0 selects the final epoch, making the
// container a pure resume point for extending the run). The returned
// summary is bit-identical to RunContext with the same rc.
func CheckpointRun(ctx context.Context, rc RunConfig, atEpoch int, w io.Writer) (RunSummary, error) {
	if err := rc.Validate(); err != nil {
		return RunSummary{}, err
	}
	rc = rc.withDefaults()
	if atEpoch == 0 {
		atEpoch = rc.Epochs
	}
	if atEpoch < 0 || atEpoch > rc.Epochs {
		return RunSummary{}, fmt.Errorf("%w: checkpoint.at_epoch: must be in [1, %d] (0 selects the final epoch), got %d",
			ErrInvalidConfig, rc.Epochs, atEpoch)
	}
	job, err := rc.job()
	if err != nil {
		return RunSummary{}, err
	}
	out, ck, err := runner.New(runner.Options{Workers: 1}).RunWithCheckpoint(ctx, job, atEpoch)
	if err != nil {
		return RunSummary{}, err
	}
	if err := checkpoint.Encode(w, ck); err != nil {
		return RunSummary{}, fmt.Errorf("write checkpoint: %w", err)
	}
	return summarize(out), nil
}

// CheckpointRunInterruptible is CheckpointRun with a soft-stop signal:
// when stop fires (a closed or signaled channel — wire it to
// SIGINT/SIGTERM in a CLI), the run finishes its current epoch, writes
// the state at that boundary to w as its final checkpoint, and returns
// ErrInterrupted; resume the container with ResumeRun to finish the
// run, bit-identical to the uninterrupted one. A run that completes
// without interruption behaves exactly like CheckpointRun.
func CheckpointRunInterruptible(ctx context.Context, rc RunConfig, atEpoch int, stop <-chan struct{}, w io.Writer) (RunSummary, error) {
	if err := rc.Validate(); err != nil {
		return RunSummary{}, err
	}
	rc = rc.withDefaults()
	if atEpoch == 0 {
		atEpoch = rc.Epochs
	}
	if atEpoch < 0 || atEpoch > rc.Epochs {
		return RunSummary{}, fmt.Errorf("%w: checkpoint.at_epoch: must be in [1, %d] (0 selects the final epoch), got %d",
			ErrInvalidConfig, rc.Epochs, atEpoch)
	}
	job, err := rc.job()
	if err != nil {
		return RunSummary{}, err
	}
	job.Interrupt = stop
	out, ck, err := runner.New(runner.Options{Workers: 1}).RunWithCheckpoint(ctx, job, atEpoch)
	if err != nil && !errors.Is(err, ErrInterrupted) {
		return RunSummary{}, err
	}
	// The checkpoint is written in both outcomes: at atEpoch when the
	// run completed, at the interrupt boundary when it stopped early.
	if werr := checkpoint.Encode(w, ck); werr != nil {
		return RunSummary{}, fmt.Errorf("write checkpoint: %w", werr)
	}
	if err != nil {
		return RunSummary{}, err
	}
	return summarize(out), nil
}

// ResumeRun reads a checkpoint container from r and continues the run
// to epochs total OS quanta (counting the epochs already completed at
// the snapshot), pairing it against the cold baseline of the full
// length. The summary is bit-identical to the uninterrupted run of the
// same configuration.
//
// Corrupted containers fail with ErrCorruptCheckpoint, incompatible
// schema versions with a *CheckpointSchemaVersionError, and a
// container whose state does not fit the run it describes (hand-edited
// geometry, mismatched governor) with ErrInvalidConfig.
func ResumeRun(ctx context.Context, r io.Reader, epochs int) (RunSummary, error) {
	return ResumeRunShards(ctx, r, epochs, 0)
}

// ResumeRunShards is ResumeRun continuing the run on the channel-sharded
// parallel event engine (see RunConfig.Shards; 0 or 1 selects the serial
// engine). The shard count is an execution strategy, not part of the
// checkpointed state: a container written under any shard count resumes
// under any other with a bit-identical summary.
func ResumeRunShards(ctx context.Context, r io.Reader, epochs, shards int) (RunSummary, error) {
	if shards < 0 {
		return RunSummary{}, fmt.Errorf("%w: resume.shards: must be >= 0 (0 selects the serial engine), got %d",
			ErrInvalidConfig, shards)
	}
	ck, err := checkpoint.Decode(r)
	if err != nil {
		return RunSummary{}, err
	}
	if epochs <= ck.Meta.Epochs {
		return RunSummary{}, fmt.Errorf("%w: resume.epochs: must exceed the checkpoint's completed %d, got %d",
			ErrInvalidConfig, ck.Meta.Epochs, epochs)
	}
	out, err := runner.New(runner.Options{Workers: 1}).Resume(ctx, runner.ResumeJob{
		Checkpoint: ck,
		Epochs:     epochs,
		Shards:     shards,
	})
	if err != nil {
		if errors.Is(err, sim.ErrStateMismatch) {
			return RunSummary{}, fmt.Errorf("%w: checkpoint: %v", ErrInvalidConfig, err)
		}
		return RunSummary{}, err
	}
	return summarize(out), nil
}
