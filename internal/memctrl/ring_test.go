package memctrl

import "testing"

func TestRingFIFO(t *testing.T) {
	var r reqRing
	reqs := make([]*Request, 20)
	for i := range reqs {
		reqs[i] = &Request{Core: i}
		r.Push(reqs[i])
	}
	if r.Len() != 20 {
		t.Fatalf("Len = %d, want 20", r.Len())
	}
	for i := range reqs {
		if got := r.Pop(); got != reqs[i] {
			t.Fatalf("Pop %d returned core %d", i, got.Core)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after draining", r.Len())
	}
}

func TestRingWrapAround(t *testing.T) {
	// Interleave pushes and pops so head walks around the buffer many
	// times without growing it.
	var r reqRing
	next := 0
	for i := 0; i < 1000; i++ {
		r.Push(&Request{Core: i})
		if i%3 != 0 {
			if got := r.Pop(); got.Core != next {
				t.Fatalf("Pop returned core %d, want %d", got.Core, next)
			}
			next++
		}
	}
	for r.Len() > 0 {
		if got := r.Pop(); got.Core != next {
			t.Fatalf("drain returned core %d, want %d", got.Core, next)
		}
		next++
	}
	if next != 1000 {
		t.Fatalf("drained %d requests, want 1000", next)
	}
}

func TestRingGrowPreservesOrder(t *testing.T) {
	var r reqRing
	// Offset head so growth has to unwrap a wrapped buffer.
	for i := 0; i < 5; i++ {
		r.Push(&Request{})
	}
	for i := 0; i < 5; i++ {
		r.Pop()
	}
	for i := 0; i < 100; i++ {
		r.Push(&Request{Core: i})
	}
	if got := r.Peek(); got.Core != 0 {
		t.Fatalf("Peek returned core %d, want 0", got.Core)
	}
	for i := 0; i < 100; i++ {
		if got := r.Pop(); got.Core != i {
			t.Fatalf("Pop returned core %d, want %d", got.Core, i)
		}
	}
}

func TestRingEmptyPanics(t *testing.T) {
	var r reqRing
	defer func() {
		if recover() == nil {
			t.Error("Pop from empty ring must panic")
		}
	}()
	r.Pop()
}
