package exp

import (
	"memscale/internal/config"
	"memscale/internal/core"
	"memscale/internal/policies"
	"memscale/internal/runner"
	"memscale/internal/sim"
	"memscale/internal/stats"
	"memscale/internal/workload"
)

// Ablations quantifies the design choices DESIGN.md calls out by
// disabling one policy ingredient at a time (profiling phase, queueing
// counters, slack carry-over) and rerunning a balanced and a
// memory-bound mix. The full policy should dominate: the no-queue
// variant loses contention awareness exactly where queues matter
// (MEM), and the no-profiling variant reacts one epoch late.
func (p Params) Ablations() (Report, error) {
	t := stats.Table{
		Title: "Ablation study: MemScale ingredients (MID2 + MEM1)",
		Columns: []string{"Variant", "System Energy Reduction",
			"Avg CPI Increase", "Worst CPI Increase"},
		Notes: []string{
			"no-profiling: decisions from the previous epoch's counters only",
			"no-queue-model: xi_bank = xi_bus = 1 (no contention term)",
			"no-slack-carryover: the bound must hold epoch-locally",
		},
	}
	variants := []core.Ablation{
		core.AblateNothing, core.AblateProfiling,
		core.AblateQueueModel, core.AblateSlack,
	}
	mixNames := []string{"MID2", "MEM1"}
	// The whole variant x mix grid runs concurrently; every variant
	// shares the two memoized baselines.
	var jobs []runner.Job
	var specNames []string
	for _, v := range variants {
		v := v
		spec := policies.Spec{
			Name: "MemScale/" + v.String(),
			Governor: func(cfg *config.Config, nonMem float64) sim.Governor {
				return core.NewAblatedPolicy(cfg, core.Options{NonMemPower: nonMem}, v)
			},
		}
		specNames = append(specNames, spec.Name)
		for _, name := range mixNames {
			mix, err := workload.ByName(name)
			if err != nil {
				return Report{}, err
			}
			jobs = append(jobs, p.job(nil, mix, spec))
		}
	}
	outs, err := p.runGrid(jobs)
	if err != nil {
		return Report{}, err
	}
	for i, name := range specNames {
		var sys, avg stats.Series
		worst := 0.0
		for _, out := range outs[i*len(mixNames) : (i+1)*len(mixNames)] {
			sys.Add(out.SystemSavings())
			a, w := out.CPIIncrease()
			avg.Add(a)
			if w > worst {
				worst = w
			}
		}
		t.AddRow(name, stats.Pct(sys.Mean()), stats.Pct(avg.Mean()), stats.Pct(worst))
	}
	return Report{ID: "ablations", Title: "Policy ablations", Table: t}, nil
}
