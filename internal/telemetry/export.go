package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"memscale/internal/dram"
)

// SchemaVersion is the JSONL interchange format version stamped on
// every run record WriteJSONL emits, as "MAJOR.MINOR".
//
// Compatibility rule: minor bumps only ever add fields, which older
// readers ignore, so a reader accepts any stream whose major version
// matches its own (and streams without a version, which predate the
// stamp and read as "1.0"). A different major version means the record
// shapes changed incompatibly and ReadJSONL rejects the stream with a
// *SchemaVersionError.
const SchemaVersion = "1.1"

// schemaMajor returns the MAJOR component of a version string; the
// empty version is the pre-stamp "1.0".
func schemaMajor(v string) string {
	if v == "" {
		return "1"
	}
	if i := strings.IndexByte(v, '.'); i >= 0 {
		return v[:i]
	}
	return v
}

// SchemaVersionError reports a telemetry stream written by an
// incompatible (different-major) schema version.
type SchemaVersionError struct {
	Version string // the stream's schema_version
	Line    int    // 1-based line of the offending run record
}

func (e *SchemaVersionError) Error() string {
	return fmt.Sprintf("telemetry: line %d: unsupported schema version %q (this reader speaks %s; only matching major versions are compatible)",
		e.Line, e.Version, SchemaVersion)
}

// RunMeta identifies one exported run.
type RunMeta struct {
	Mix    string  `json:"mix"`
	Policy string  `json:"policy"`
	Gamma  float64 `json:"gamma"`

	Cores    int `json:"cores"`
	Channels int `json:"channels"`

	// CoreApps maps core index to application name.
	CoreApps []string `json:"core_apps,omitempty"`

	// NonMemPowerW is the calibrated rest-of-system power used by the
	// run.
	NonMemPowerW float64 `json:"nonmem_power_w"`
}

// RunExport is one run's complete telemetry: identity, rollup totals,
// collector snapshots, per-epoch snapshots, and the retained event
// stream. It is the unit of the JSONL interchange format consumed by
// memscale-report.
type RunExport struct {
	// SchemaVersion records the interchange format version the export
	// was written with. WriteJSONL stamps it automatically; an empty
	// value reads as the pre-versioning "1.0".
	SchemaVersion string `json:"schema_version,omitempty"`

	Meta RunMeta `json:"meta"`

	// DurationSeconds is the simulated run length, as accumulated by
	// the power layer's interval metering.
	DurationSeconds float64 `json:"duration_s"`

	// Energy and Residency are run totals; each equals the sum of the
	// corresponding per-epoch snapshot fields.
	Energy    Energy       `json:"energy_j"`
	Residency dram.Account `json:"residency_ps"`

	// FreqSeconds is the time spent at each bus frequency (MHz).
	FreqSeconds map[int]float64 `json:"freq_seconds,omitempty"`

	Counters   map[string]uint64  `json:"counters,omitempty"`
	Gauges     map[string]float64 `json:"gauges,omitempty"`
	Histograms []*Histogram       `json:"histograms,omitempty"`

	Epochs []EpochSnapshot `json:"-"`
	Events []Event         `json:"-"`

	// DroppedEvents counts ring evictions (sink-less recorders only).
	DroppedEvents uint64 `json:"dropped_events,omitempty"`
}

// Histogram returns the export's histogram with the given name, or
// nil.
func (e *RunExport) Histogram(name string) *Histogram {
	for _, h := range e.Histograms {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// Export snapshots the recorder into a self-contained RunExport. If a
// sink is attached, buffered events are flushed to it and the export's
// Events field stays empty (the sink owns the stream); otherwise the
// export carries the ring's retained events. Safe on nil (returns
// nil).
func (r *Recorder) Export(meta RunMeta, freqSeconds map[int]float64) *RunExport {
	if r == nil {
		return nil
	}
	out := &RunExport{
		Meta:            meta,
		DurationSeconds: r.duration.Seconds(),
		Energy:          r.energy,
		Residency:       r.residency,
		FreqSeconds:     freqSeconds,
		Counters: map[string]uint64{
			r.FreqTransitions.Name: r.FreqTransitions.N,
			r.PowerdownEnters.Name: r.PowerdownEnters.N,
			r.PowerdownExits.Name:  r.PowerdownExits.N,
			r.Refreshes.Name:       r.Refreshes.N,
			r.Decisions.Name:       r.Decisions.N,
			r.SlackUpdates.Name:    r.SlackUpdates.N,
			r.PowerIntervals.Name:  r.PowerIntervals.N,
			r.FaultsInjected.Name:  r.FaultsInjected.N,
			r.DegradedEpochs.Name:  r.DegradedEpochs.N,
			r.NodesLost.Name:       r.NodesLost.N,
			r.NodesRecovered.Name:  r.NodesRecovered.N,
		},
		Gauges:     map[string]float64{},
		Histograms: []*Histogram{r.ReadLatencyNs.Clone(), r.QueueDepth.Clone(), r.EpochHostUs.Clone()},
		Epochs:     append([]EpochSnapshot(nil), r.epochs...),
	}
	for _, g := range []*Gauge{&r.NonMemPowerW, &r.GammaBound} {
		if g.Set_ {
			out.Gauges[g.Name] = g.V
		}
	}
	if r.ring != nil {
		if r.opts.Sink != nil {
			r.flushToSink()
		} else {
			out.Events = r.ring.drain()
			out.DroppedEvents = r.ring.dropped
		}
	}
	return out
}

// jsonlRecord is one line of the interchange format. A "run" line
// opens a new run; subsequent "epoch" and "event" lines attach to it.
type jsonlRecord struct {
	Type  string         `json:"type"`
	Run   *RunExport     `json:"run,omitempty"`
	Epoch *EpochSnapshot `json:"epoch,omitempty"`
	Event *Event         `json:"event,omitempty"`
}

// WriteJSONL streams the exports to w in the line-oriented interchange
// format: one "run" header line per export (identity, totals,
// collectors), followed by one "epoch" line per snapshot and one
// "event" line per retained event.
func WriteJSONL(w io.Writer, exports ...*RunExport) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range exports {
		if e == nil {
			continue
		}
		// Stamp the schema version on the wire without mutating the
		// caller's export (shallow copy: the encoder only reads).
		if e.SchemaVersion == "" {
			stamped := *e
			stamped.SchemaVersion = SchemaVersion
			e = &stamped
		}
		if err := enc.Encode(jsonlRecord{Type: "run", Run: e}); err != nil {
			return err
		}
		for i := range e.Epochs {
			if err := enc.Encode(jsonlRecord{Type: "epoch", Epoch: &e.Epochs[i]}); err != nil {
				return err
			}
		}
		for i := range e.Events {
			if err := enc.Encode(jsonlRecord{Type: "event", Event: &e.Events[i]}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL parses an interchange stream back into run exports. Run
// records carrying an incompatible (different-major) schema_version
// abort the parse with a *SchemaVersionError; see SchemaVersion for
// the compatibility rule.
func ReadJSONL(r io.Reader) ([]*RunExport, error) {
	var out []*RunExport
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec jsonlRecord
		if err := json.Unmarshal(text, &rec); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		switch rec.Type {
		case "run":
			if rec.Run == nil {
				return nil, fmt.Errorf("telemetry: line %d: run record without payload", line)
			}
			if schemaMajor(rec.Run.SchemaVersion) != schemaMajor(SchemaVersion) {
				return nil, &SchemaVersionError{Version: rec.Run.SchemaVersion, Line: line}
			}
			out = append(out, rec.Run)
		case "epoch":
			if len(out) == 0 || rec.Epoch == nil {
				return nil, fmt.Errorf("telemetry: line %d: epoch record outside a run", line)
			}
			cur := out[len(out)-1]
			cur.Epochs = append(cur.Epochs, *rec.Epoch)
		case "event":
			if len(out) == 0 || rec.Event == nil {
				return nil, fmt.Errorf("telemetry: line %d: event record outside a run", line)
			}
			cur := out[len(out)-1]
			cur.Events = append(cur.Events, *rec.Event)
		default:
			return nil, fmt.Errorf("telemetry: line %d: unknown record type %q", line, rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Rollup aggregates telemetry across runs: totals, merged counters,
// and merged histograms. Aggregation is race-free by construction —
// every run owns a private recorder, and rollups are built from the
// finished exports on the caller's goroutine.
type Rollup struct {
	Runs            int
	Epochs          int
	Events          int
	DurationSeconds float64
	Energy          Energy
	Residency       dram.Account
	FreqSeconds     map[int]float64
	Counters        map[string]uint64
	Histograms      map[string]*Histogram
}

// NewRollup returns an empty rollup.
func NewRollup() *Rollup {
	return &Rollup{
		FreqSeconds: map[int]float64{},
		Counters:    map[string]uint64{},
		Histograms:  map[string]*Histogram{},
	}
}

// Add merges one run export into the rollup. Nil exports (runs without
// telemetry) are skipped.
func (ro *Rollup) Add(e *RunExport) {
	if e == nil {
		return
	}
	ro.Runs++
	ro.Epochs += len(e.Epochs)
	ro.Events += len(e.Events)
	ro.DurationSeconds += e.DurationSeconds
	ro.Energy.Add(e.Energy)
	ro.Residency.Add(e.Residency)
	for f, s := range e.FreqSeconds {
		ro.FreqSeconds[f] += s
	}
	for name, n := range e.Counters {
		ro.Counters[name] += n
	}
	for _, h := range e.Histograms {
		if have := ro.Histograms[h.Name]; have == nil {
			ro.Histograms[h.Name] = h.Clone()
		} else {
			have.Merge(h)
		}
	}
}
