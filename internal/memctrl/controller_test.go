package memctrl

import (
	"testing"

	"memscale/internal/config"
	"memscale/internal/event"
)

// rig bundles a controller with its event queue and address mapper.
type rig struct {
	cfg    config.Config
	q      *event.Queue
	c      *Controller
	mapper *config.AddressMapper
}

func newRig(mutate func(*config.Config)) *rig {
	cfg := config.Default()
	if mutate != nil {
		mutate(&cfg)
	}
	q := &event.Queue{}
	c := New(&cfg, q)
	c.Start()
	return &rig{cfg: cfg, q: q, c: c, mapper: config.NewAddressMapper(&cfg)}
}

// drain runs the queue for a bounded simulated horizon. The refresh
// timers re-arm forever, so an unbounded Run would never return.
func (r *rig) drain() { r.q.RunUntil(r.q.Now() + 10*config.Millisecond) }

// line returns the address of (channel, rank, bank, row, col).
func (r *rig) line(ch, rank, bank, row, col int) uint64 {
	return r.mapper.LineForRow(ch, rank, bank, row, col)
}

// read enqueues a read and returns a pointer to its completion time
// (zero until completed).
func (r *rig) read(now config.Time, line uint64, core int) *config.Time {
	var done config.Time
	r.c.Enqueue(now, line, false, core, func(at config.Time) { done = at })
	return &done
}

func TestSingleReadLatency(t *testing.T) {
	r := newRig(nil)
	done := r.read(0, r.line(0, 0, 0, 10, 0), 0)
	r.drain()
	tm := r.c.Timing()
	// MC pipeline + closed-bank activate + CAS + burst.
	want := tm.MC + tm.TRCD + tm.TCL + tm.Burst
	if *done != want {
		t.Errorf("read completed at %v, want %v", *done, want)
	}
	ctr := r.c.Counters()
	if ctr.Reads != 1 || ctr.CBMC != 1 || ctr.RBHC != 0 || ctr.OBMC != 0 {
		t.Errorf("counters: %+v", ctr)
	}
	if ctr.TLM[0] != 1 {
		t.Errorf("TLM[0] = %d", ctr.TLM[0])
	}
}

func TestRowHitWhenQueued(t *testing.T) {
	r := newRig(nil)
	// Two reads to the same row, back to back: the second must be
	// detected as a row hit (closed-page keeps the row open only when
	// a same-row request is already queued).
	a := r.read(0, r.line(0, 0, 0, 10, 0), 0)
	b := r.read(0, r.line(0, 0, 0, 10, 1), 1)
	r.drain()
	ctr := r.c.Counters()
	if ctr.RBHC != 1 || ctr.CBMC != 1 {
		t.Fatalf("want 1 hit + 1 closed miss, got RBHC=%d CBMC=%d OBMC=%d",
			ctr.RBHC, ctr.CBMC, ctr.OBMC)
	}
	if !(*b > *a) {
		t.Errorf("completions out of order: %v, %v", *a, *b)
	}
	tm := r.c.Timing()
	// The hit re-traverses the MC pipeline but needs only tCL at the
	// device.
	if want := *a + tm.MC + tm.TCL + tm.Burst; *b != want {
		t.Errorf("hit completed at %v, want %v", *b, want)
	}
}

func TestDifferentRowsSameBankSerialize(t *testing.T) {
	r := newRig(nil)
	a := r.read(0, r.line(0, 0, 0, 10, 0), 0)
	b := r.read(0, r.line(0, 0, 0, 11, 0), 1)
	r.drain()
	ctr := r.c.Counters()
	if ctr.CBMC != 2 {
		t.Errorf("want 2 closed misses (auto-precharge between), got %+v", ctr)
	}
	tm := r.c.Timing()
	// Second access waits for the first's precharge: its completion is
	// at least first + tRP + tRCD + tCL + burst.
	if min := *a + tm.TRP + tm.TRCD + tm.TCL + tm.Burst; *b < min {
		t.Errorf("second access at %v, want >= %v", *b, min)
	}
}

func TestParallelBanksOverlap(t *testing.T) {
	r := newRig(nil)
	a := r.read(0, r.line(0, 0, 0, 10, 0), 0)
	b := r.read(0, r.line(0, 0, 1, 10, 0), 1)
	r.drain()
	tm := r.c.Timing()
	// Bank-parallel accesses: the second completes one burst (plus
	// tRRD skew) after the first, far sooner than serialized.
	if *b >= *a+tm.TRCD {
		t.Errorf("bank parallelism missing: a=%v b=%v", *a, *b)
	}
}

func TestChannelsIndependent(t *testing.T) {
	r := newRig(nil)
	a := r.read(0, r.line(0, 0, 0, 10, 0), 0)
	b := r.read(0, r.line(1, 0, 0, 10, 0), 1)
	r.drain()
	if *a != *b {
		t.Errorf("identical accesses on different channels must complete together: %v vs %v", *a, *b)
	}
}

func TestBusSerializesReadyRequests(t *testing.T) {
	r := newRig(nil)
	// Many banks ready around the same time: bursts serialize on the
	// channel bus.
	n := 8
	dones := make([]*config.Time, n)
	for i := 0; i < n; i++ {
		dones[i] = r.read(0, r.line(0, i%4/2, i%8, 10, 0), i)
	}
	r.drain()
	seen := map[config.Time]bool{}
	for i, d := range dones {
		if *d == 0 {
			t.Fatalf("request %d never completed", i)
		}
		if seen[*d] {
			t.Errorf("two bursts completed at the same instant %v on one channel", *d)
		}
		seen[*d] = true
	}
	ctr := r.c.Counters()
	if ctr.Reads != uint64(n) {
		t.Errorf("Reads = %d, want %d", ctr.Reads, n)
	}
}

func TestWritebackCompletes(t *testing.T) {
	r := newRig(nil)
	r.c.Enqueue(0, r.line(0, 0, 0, 5, 0), true, 0, nil)
	r.drain()
	ctr := r.c.Counters()
	if ctr.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", ctr.Writebacks)
	}
	if ctr.TLM[0] != 0 {
		t.Error("writebacks must not count as LLC misses")
	}
}

func TestReadPriorityOverWriteback(t *testing.T) {
	r := newRig(nil)
	// A writeback and a read race for the same bank; with an empty
	// writeback queue the read goes first.
	r.c.Enqueue(0, r.line(0, 0, 0, 5, 0), true, 0, nil)
	done := r.read(0, r.line(0, 0, 0, 9, 0), 0)
	// Dispatch happens on enqueue; the writeback arrived first and
	// grabbed the idle bank, so instead race them from a busy bank.
	r.drain()
	if *done == 0 {
		t.Fatal("read never completed")
	}

	// Now a clean rig: make the bank busy, then enqueue WB + read.
	r2 := newRig(nil)
	first := r2.read(0, r2.line(0, 0, 0, 1, 0), 0)
	r2.c.Enqueue(0, r2.line(0, 0, 0, 5, 0), true, 0, nil)
	read := r2.read(0, r2.line(0, 0, 0, 9, 0), 0)
	r2.drain()
	wbCtr := r2.c.Counters()
	if wbCtr.Reads != 2 || wbCtr.Writebacks != 1 {
		t.Fatalf("counters: %+v", wbCtr)
	}
	_ = first
	// The read must finish before... we can't observe WB completion
	// time directly; instead check the read wasn't delayed by the WB:
	// read is the 2nd access of the bank, so it completes ~2 service
	// times in; if the WB had priority it would be ~3.
	tm := r2.c.Timing()
	serial := tm.TRP + tm.TRCD + tm.TCL + tm.Burst
	if *read > *first+2*serial {
		t.Errorf("read delayed behind writeback: first=%v read=%v", *first, *read)
	}
}

func TestWritebackPressureFlipsPriority(t *testing.T) {
	r := newRig(func(c *config.Config) { c.WritebackQueueCap = 4 })
	// Saturate the writeback queue for one bank while a stream of
	// reads arrives; with >= cap/2 pending writebacks, writes drain
	// first.
	for i := 0; i < 4; i++ {
		r.c.Enqueue(0, r.line(0, 0, 0, 20+i, 0), true, 0, nil)
	}
	done := r.read(0, r.line(0, 0, 0, 9, 0), 0)
	r.drain()
	ctr := r.c.Counters()
	if ctr.Writebacks != 4 || ctr.Reads != 1 {
		t.Fatalf("counters: %+v", ctr)
	}
	tm := r.c.Timing()
	serial := tm.TRP + tm.TRCD + tm.TCL + tm.Burst
	// The read must have waited behind at least the first two
	// writebacks (priority flipped), so it completes later than two
	// full services.
	if *done < 2*serial {
		t.Errorf("read at %v finished before the writeback drain", *done)
	}
}

func TestBTOAccumulation(t *testing.T) {
	r := newRig(nil)
	line := r.line(0, 0, 0, 10, 0)
	// Three requests to one bank at t=0: arrivals see 0, 1, 2
	// outstanding -> BTO = 3, BTC = 3.
	for i := 0; i < 3; i++ {
		r.read(0, line, i)
	}
	ctr := r.c.Counters()
	if ctr.BTC != 3 || ctr.BTO != 3 {
		t.Errorf("BTO/BTC = %d/%d, want 3/3", ctr.BTO, ctr.BTC)
	}
	if got := ctr.BankQueueDepth(); got != 1.0 {
		t.Errorf("BankQueueDepth = %g, want 1", got)
	}
	r.drain()
}

func TestCountersSubAndClone(t *testing.T) {
	r := newRig(nil)
	before := r.c.Counters()
	r.read(0, r.line(0, 0, 0, 10, 0), 3)
	r.drain()
	after := r.c.Counters()
	d := after.Sub(before)
	if d.Reads != 1 || d.TLM[3] != 1 || d.BTC != 1 {
		t.Errorf("delta: %+v", d)
	}
	// Clone isolation.
	snap := r.c.Counters()
	snap.TLM[3] = 999
	if r.c.Counters().TLM[3] == 999 {
		t.Error("Clone must copy the TLM slice")
	}
}

func TestRefreshHappens(t *testing.T) {
	r := newRig(nil)
	// Run for 100 us with no traffic: each of the 16 ranks refreshes
	// every 7.8125 us -> ~12 refreshes per rank.
	r.q.RunUntil(100 * config.Microsecond)
	iv := r.c.FlushInterval(100 * config.Microsecond)
	perRank := float64(iv.DRAMTotal().Refreshes) / float64(r.cfg.TotalRanks())
	if perRank < 11 || perRank > 14 {
		t.Errorf("refreshes per rank in 100us = %.1f, want ~12", perRank)
	}
	if iv.DRAMTotal().Refreshing <= 0 {
		t.Error("no refresh time accounted")
	}
}

func TestRefreshDefersUnderConflict(t *testing.T) {
	r := newRig(nil)
	// Issue a read just before the rank's first refresh deadline and
	// confirm both complete.
	first := r.c.Timing().RefreshInterval / config.Time(r.cfg.TotalRanks())
	done := r.read(0, r.line(0, 0, 0, 10, 0), 0)
	r.q.RunUntil(first + 10*config.Microsecond)
	if *done == 0 {
		t.Fatal("read starved by refresh")
	}
	iv := r.c.FlushInterval(r.q.Now())
	if iv.DRAMTotal().Refreshes == 0 {
		t.Error("refresh never issued")
	}
}

func TestPowerdownEntersAndExits(t *testing.T) {
	r := newRig(func(c *config.Config) { c.Powerdown = config.PowerdownFast })
	// Idle from the start: ranks drop into PD immediately.
	r.q.RunUntil(50 * config.Microsecond)
	// A read wakes channel 0 rank 0.
	done := r.read(r.q.Now(), r.line(0, 0, 0, 10, 0), 0)
	r.q.RunUntil(60 * config.Microsecond)
	if *done == 0 {
		t.Fatal("read out of powerdown never completed")
	}
	ctr := r.c.Counters()
	if ctr.EPDC == 0 {
		t.Error("EPDC = 0, want powerdown exits (refreshes + the read)")
	}
	iv := r.c.FlushInterval(r.q.Now())
	if iv.DRAMTotal().PrechargePD == 0 {
		t.Error("no precharge-PD time accounted")
	}
	// PD should dominate the idle period.
	if frac := iv.DRAMTotal().PrechargePDFraction(); frac < 0.8 {
		t.Errorf("PD fraction = %.2f, want > 0.8 on an idle system", frac)
	}
}

func TestSlowPowerdownUsesSlowState(t *testing.T) {
	r := newRig(func(c *config.Config) { c.Powerdown = config.PowerdownSlow })
	r.q.RunUntil(50 * config.Microsecond)
	iv := r.c.FlushInterval(r.q.Now())
	if iv.DRAMTotal().PrechargePDSlow == 0 {
		t.Error("slow-PD policy accounted no slow-PD time")
	}
	if iv.DRAMTotal().PrechargePD > iv.DRAMTotal().PrechargePDSlow {
		t.Error("slow-PD policy spent more time in fast PD than slow PD")
	}
}

func TestFrequencyChangeHaltsAndResumes(t *testing.T) {
	r := newRig(nil)
	r.c.FlushInterval(0)
	applied := r.c.SetBusFrequency(0, config.Freq400)
	want := config.Freq400.Cycles(512) + 28*config.Nanosecond
	if applied != want {
		t.Errorf("relock completes at %v, want %v", applied, want)
	}
	if !r.c.Relocking() {
		t.Error("controller must report relocking")
	}
	// A read issued during the relock waits for it.
	done := r.read(0, r.line(0, 0, 0, 10, 0), 0)
	r.drain()
	if r.c.BusFreq() != config.Freq400 {
		t.Errorf("bus frequency = %v", r.c.BusFreq())
	}
	tm := r.c.Timing()
	min := applied + tm.MC + tm.TRCD + tm.TCL + tm.Burst
	if *done < min {
		t.Errorf("read at %v completed before relock + service (%v)", *done, min)
	}
}

func TestFrequencyChangeNoOp(t *testing.T) {
	r := newRig(nil)
	if got := r.c.SetBusFrequency(0, config.MaxBusFreq); got != 0 {
		t.Errorf("same-frequency switch must be free, got %v", got)
	}
}

func TestSetBusFrequencyRequiresFlush(t *testing.T) {
	r := newRig(nil)
	r.q.RunUntil(config.Microsecond)
	defer func() {
		if recover() == nil {
			t.Error("SetBusFrequency without flush must panic")
		}
	}()
	r.c.SetBusFrequency(r.q.Now(), config.Freq400)
}

func TestLatencyGrowsAtLowerFrequency(t *testing.T) {
	lat := func(f config.FreqMHz) config.Time {
		r := newRig(nil)
		if f != config.MaxBusFreq {
			r.c.FlushInterval(0)
			r.c.SetBusFrequency(0, f)
			r.drain()
		}
		start := r.q.Now()
		done := r.read(start, r.line(0, 0, 0, 10, 0), 0)
		r.drain()
		return *done - start
	}
	l800, l200 := lat(config.Freq800), lat(config.Freq200)
	if l200 <= l800 {
		t.Errorf("latency at 200 MHz (%v) not above 800 MHz (%v)", l200, l800)
	}
	// But far from linear in frequency: the device core is unscaled
	// (Section 2.2). 4x slower clock must cost well under 2x latency.
	if l200 >= 2*l800 {
		t.Errorf("latency grew too much: %v -> %v", l800, l200)
	}
}

func TestDecoupledDevFreqLatency(t *testing.T) {
	norm := newRig(nil)
	dec := newRig(func(c *config.Config) { c.DecoupledDevFreq = config.Freq400 })
	d1 := norm.read(0, norm.line(0, 0, 0, 10, 0), 0)
	d2 := dec.read(0, dec.line(0, 0, 0, 10, 0), 0)
	norm.drain()
	dec.drain()
	if dec.c.DevFreq() != config.Freq400 || dec.c.BusFreq() != config.Freq800 {
		t.Fatalf("decoupled rig freqs: bus %v dev %v", dec.c.BusFreq(), dec.c.DevFreq())
	}
	if *d2 <= *d1 {
		t.Errorf("decoupled access (%v) must be slower than lock-step (%v)", *d2, *d1)
	}
}

func TestFlushIntervalAccountsConserve(t *testing.T) {
	r := newRig(nil)
	for i := 0; i < 20; i++ {
		r.read(config.Time(i)*config.Microsecond, r.line(i%4, i%2, i%8, 10+i, 0), i%16)
	}
	r.q.RunUntil(200 * config.Microsecond)
	iv := r.c.FlushInterval(200 * config.Microsecond)
	wantTotal := config.Time(r.cfg.TotalRanks()) * 200 * config.Microsecond
	if got := iv.DRAMTotal().Total(); got != wantTotal {
		t.Errorf("accounted rank-time = %v, want %v", got, wantTotal)
	}
	if iv.Duration != 200*config.Microsecond {
		t.Errorf("interval duration = %v", iv.Duration)
	}
	if iv.Channels[0].Busy == 0 {
		t.Error("channel 0 never busy despite traffic")
	}
	// Second flush starts clean.
	r.q.RunUntil(300 * config.Microsecond)
	iv2 := r.c.FlushInterval(300 * config.Microsecond)
	if iv2.Duration != 100*config.Microsecond {
		t.Errorf("second interval duration = %v", iv2.Duration)
	}
}

func TestQueuedRequests(t *testing.T) {
	r := newRig(nil)
	line := r.line(0, 0, 0, 10, 0)
	for i := 0; i < 5; i++ {
		r.read(0, line, 0)
	}
	if got := r.c.QueuedRequests(); got != 5 {
		t.Errorf("QueuedRequests = %d, want 5", got)
	}
	r.drain()
	if got := r.c.QueuedRequests(); got != 0 {
		t.Errorf("QueuedRequests after drain = %d, want 0", got)
	}
}

func TestManyRandomRequestsDrain(t *testing.T) {
	r := newRig(func(c *config.Config) { c.Powerdown = config.PowerdownFast })
	var completed int
	const n = 3000
	seed := uint64(12345)
	for i := 0; i < n; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		line := seed % r.mapper.Lines()
		at := config.Time(i) * 20 * config.Nanosecond
		if seed%5 == 0 {
			r.c.Enqueue(at, line, true, int(seed%16), nil)
			completed++ // writebacks complete silently
		} else {
			r.c.Enqueue(at, line, false, int(seed%16), func(config.Time) { completed++ })
		}
	}
	r.drain()
	ctr := r.c.Counters()
	if ctr.Reads+ctr.Writebacks != n {
		t.Fatalf("served %d of %d requests", ctr.Reads+ctr.Writebacks, n)
	}
	if r.c.QueuedRequests() != 0 {
		t.Error("requests still queued after drain")
	}
	iv := r.c.FlushInterval(r.q.Now())
	if iv.DRAMTotal().Total() != config.Time(r.cfg.TotalRanks())*r.q.Now() {
		t.Error("rank accounting does not conserve time under load")
	}
}
