// Command memscale-report summarizes exported run telemetry. It loads
// one or more JSONL telemetry files (written by memscale-sim
// -telemetry-out or the library's WriteTelemetry) and prints per-run
// and aggregate digests: state and frequency residency, read-latency
// and queue-depth distributions, and governor decision quality. The
// CSV flags emit figure-ready views instead of (or alongside) the
// digest.
//
// Usage:
//
//	memscale-report run.jsonl [more.jsonl ...]
//	memscale-report -residency fig7.csv -decisions dec.csv run.jsonl
//	memscale-sim -mix MID3 -telemetry-out - | memscale-report -
//
// With -fleet the input is instead a fleet summary JSON (written by
// memscale-fleet -json or WriteFleetSummary), and the fleet CSV flags
// emit its per-node and cap-convergence tables:
//
//	memscale-report -fleet -fleet-nodes nodes.csv -fleet-caps caps.csv fleet.json
//
// A path of "-" reads stdin (input) or writes stdout (CSV flags).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"memscale"
)

func main() {
	residency := flag.String("residency", "", "write the figure7-style per-epoch residency CSV to this path")
	latency := flag.String("latency", "", "write the read-latency histogram CSV to this path")
	decisions := flag.String("decisions", "", "write the governor decision trace CSV to this path")
	freq := flag.String("freq", "", "write the per-run frequency residency CSV to this path")
	events := flag.String("events", "", "write the raw event trace CSV to this path")
	fleetIn := flag.Bool("fleet", false, "treat inputs as fleet summary JSON (from memscale-fleet -json) instead of telemetry JSONL")
	fleetNodes := flag.String("fleet-nodes", "", "write the fleet per-node outcome CSV to this path (requires -fleet)")
	fleetCaps := flag.String("fleet-caps", "", "write the fleet cap-convergence trace CSV to this path (requires -fleet)")
	quiet := flag.Bool("q", false, "suppress the human-readable summary")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "memscale-report: no input files (use - for stdin)")
		flag.Usage()
		os.Exit(2)
	}

	if *fleetIn {
		reportFleet(flag.Args(), *fleetNodes, *fleetCaps, *quiet)
		return
	}
	if *fleetNodes != "" || *fleetCaps != "" {
		fatal(fmt.Errorf("-fleet-nodes/-fleet-caps require -fleet"))
	}

	var exports []*memscale.TelemetryExport
	for _, path := range flag.Args() {
		runs, err := load(path)
		if err != nil {
			fatal(err)
		}
		exports = append(exports, runs...)
	}

	type view struct {
		path  string
		write func(io.Writer, []*memscale.TelemetryExport) error
	}
	for _, v := range []view{
		{*residency, memscale.WriteResidencyCSV},
		{*latency, memscale.WriteLatencyCSV},
		{*decisions, memscale.WriteDecisionsCSV},
		{*freq, memscale.WriteFreqCSV},
		{*events, memscale.WriteEventsCSV},
	} {
		if v.path == "" {
			continue
		}
		if err := emit(v.path, exports, v.write); err != nil {
			fatal(err)
		}
	}

	if !*quiet {
		if err := memscale.WriteTelemetrySummary(os.Stdout, exports); err != nil {
			fatal(err)
		}
	}
}

// reportFleet handles -fleet mode: each input is one fleet summary
// JSON; the CSV flags emit the first summary's tables and the digest
// prints every loaded summary.
func reportFleet(paths []string, nodesCSV, capsCSV string, quiet bool) {
	var sums []memscale.FleetSummary
	for _, path := range paths {
		sum, err := loadFleet(path)
		if err != nil {
			fatal(err)
		}
		sums = append(sums, sum)
	}

	type view struct {
		path  string
		write func(io.Writer, memscale.FleetSummary) error
	}
	for _, v := range []view{
		{nodesCSV, memscale.WriteFleetNodesCSV},
		{capsCSV, memscale.WriteFleetCapsCSV},
	} {
		if v.path == "" {
			continue
		}
		if err := emitFleet(v.path, sums[0], v.write); err != nil {
			fatal(err)
		}
	}

	if quiet {
		return
	}
	for _, sum := range sums {
		fmt.Printf("fleet: %d nodes, %d epochs, SER %.4f, CPI avg %+.2f%% p99 %+.2f%% p999 %+.2f%%\n",
			sum.Nodes, sum.Epochs, sum.SER,
			sum.AvgCPIIncrease*100, sum.P99CPIIncrease*100, sum.P999CPIIncrease*100)
		if sum.BudgetW > 0 {
			fmt.Printf("  budget %.1f W, drew %.1f W, %.1f%% of node-epochs constrained, %d cap decisions",
				sum.BudgetW, sum.MemAvgPowerW, sum.ConstrainedFrac*100, len(sum.CapTrace))
			if sum.Converged {
				fmt.Printf(", converged at epoch %d", sum.ConvergedAtEpoch)
			}
			fmt.Println()
		}
		for _, g := range sum.Groups {
			fmt.Printf("  group %-12s %4d nodes  SER %.4f  CPI avg %+.2f%% p99 %+.2f%%\n",
				g.Name, g.Nodes, g.SER, g.AvgCPIIncrease*100, g.P99CPIIncrease*100)
		}
		if sum.DeadNodes > 0 {
			fmt.Printf("  dead nodes: %d\n", sum.DeadNodes)
		}
	}
}

func loadFleet(path string) (memscale.FleetSummary, error) {
	if path == "-" {
		return memscale.ReadFleetSummary(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return memscale.FleetSummary{}, err
	}
	defer f.Close()
	sum, err := memscale.ReadFleetSummary(f)
	if err != nil {
		return memscale.FleetSummary{}, fmt.Errorf("%s: %w", path, err)
	}
	return sum, nil
}

func emitFleet(path string, sum memscale.FleetSummary,
	write func(io.Writer, memscale.FleetSummary) error) error {
	if path == "-" {
		return write(os.Stdout, sum)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, sum); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func load(path string) ([]*memscale.TelemetryExport, error) {
	if path == "-" {
		return memscale.ReadTelemetry(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	runs, err := memscale.ReadTelemetry(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return runs, nil
}

func emit(path string, exports []*memscale.TelemetryExport,
	write func(io.Writer, []*memscale.TelemetryExport) error) error {
	if path == "-" {
		return write(os.Stdout, exports)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, exports); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memscale-report:", err)
	os.Exit(1)
}
