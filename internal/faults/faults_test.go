package faults

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"memscale/internal/config"
)

func mustNew(t *testing.T, c Config, attempt int) *Injector {
	t.Helper()
	in, err := New(c, attempt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return in
}

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if got := in.EpochPlan(5); got != (Plan{}) {
		t.Fatalf("nil injector plan = %+v, want zero", got)
	}
	if got := in.Config(); got != (Config{}) {
		t.Fatalf("nil injector config = %+v, want zero", got)
	}
	if got := in.RelockStall(100, 0, false); got != 100 {
		t.Fatalf("nil RelockStall clean = %v, want penalty", got)
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := mustNew(t, Config{Seed: 7}, 0)
	for e := 0; e < 200; e++ {
		if got := in.EpochPlan(e); got != (Plan{}) {
			t.Fatalf("epoch %d: plan = %+v, want zero", e, got)
		}
	}
}

func TestDeterminismAndOrderIndependence(t *testing.T) {
	cfg := Config{
		Seed:               42,
		RefreshStormRate:   0.3,
		RelockFailRate:     0.4,
		CounterCorruptRate: 0.3,
		ThermalRate:        0.2,
		TransientAbortRate: 0.5,
	}
	a := mustNew(t, cfg, 0)
	b := mustNew(t, cfg, 0)

	const epochs = 128
	forward := make([]Plan, epochs)
	for e := 0; e < epochs; e++ {
		forward[e] = a.EpochPlan(e)
	}
	// Query b backwards, twice over, and interleaved: every answer
	// must match the forward pass exactly.
	for pass := 0; pass < 2; pass++ {
		for e := epochs - 1; e >= 0; e-- {
			if got := b.EpochPlan(e); got != forward[e] {
				t.Fatalf("pass %d epoch %d: plan %+v != forward %+v", pass, e, got, forward[e])
			}
		}
	}

	// A different seed must produce a different schedule somewhere.
	c := mustNew(t, Config{Seed: 43, RefreshStormRate: 0.3, RelockFailRate: 0.4,
		CounterCorruptRate: 0.3, ThermalRate: 0.2, TransientAbortRate: 0.5}, 0)
	same := true
	for e := 0; e < epochs; e++ {
		if c.EpochPlan(e) != forward[e] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 43 reproduced seed 42's schedule")
	}
}

func TestAttemptOnlyAffectsAbortDraw(t *testing.T) {
	cfg := Config{
		Seed:               9,
		RefreshStormRate:   0.5,
		RelockFailRate:     0.5,
		CounterCorruptRate: 0.5,
		ThermalRate:        0.5,
		TransientAbortRate: 0.5,
	}
	a0 := mustNew(t, cfg, 0)
	a1 := mustNew(t, cfg, 1)
	for e := 0; e < 64; e++ {
		p0, p1 := a0.EpochPlan(e), a1.EpochPlan(e)
		p0.Abort, p1.Abort = false, false
		if p0 != p1 {
			t.Fatalf("epoch %d: hardware schedule differs across attempts: %+v vs %+v", e, p0, p1)
		}
	}
	// With rate 0.5 the abort draw should differ across attempts for
	// some seed; scan a few to avoid flaking on one unlucky seed.
	varies := false
	for seed := uint64(0); seed < 32 && !varies; seed++ {
		c := cfg
		c.Seed = seed
		x := mustNew(t, c, 0).EpochPlan(0).Abort
		y := mustNew(t, c, 1).EpochPlan(0).Abort
		varies = x != y
	}
	if !varies {
		t.Fatal("abort draw never varied with attempt across 32 seeds")
	}
}

func TestAbortOnlyAtEpochZero(t *testing.T) {
	cfg := Config{Seed: 1, TransientAbortRate: 1}
	in := mustNew(t, cfg, 0)
	if !in.EpochPlan(0).Abort {
		t.Fatal("rate-1 abort did not fire at epoch 0")
	}
	for e := 1; e < 16; e++ {
		if in.EpochPlan(e).Abort {
			t.Fatalf("abort fired at epoch %d", e)
		}
	}
}

func TestPanicPlan(t *testing.T) {
	in := mustNew(t, Config{Seed: 1, PanicEnabled: true, PanicEpoch: 3}, 0)
	for e := 0; e < 8; e++ {
		if got := in.EpochPlan(e).Panic; got != (e == 3) {
			t.Fatalf("epoch %d: Panic = %v", e, got)
		}
	}
}

func TestThermalWindowSpansEpochs(t *testing.T) {
	cfg := Config{Seed: 5, ThermalRate: 0.15, ThermalWindowEpochs: 3}
	in := mustNew(t, cfg, 0)
	// Recompute windows from the raw trigger draws and compare
	// against the plan's ceiling to validate the lookback.
	const epochs = 256
	trigger := make([]bool, epochs)
	for e := 0; e < epochs; e++ {
		trigger[e] = in.draw(saltThermal, uint64(e)) < cfg.ThermalRate
	}
	anyCovered := false
	for e := 0; e < epochs; e++ {
		want := false
		for w := e; w > e-3 && w >= 0; w-- {
			if trigger[w] {
				want = true
			}
		}
		got := in.EpochPlan(e).ThermalCeiling != 0
		if got != want {
			t.Fatalf("epoch %d: thermal covered = %v, want %v", e, got, want)
		}
		if got {
			anyCovered = true
			if ceil := in.EpochPlan(e).ThermalCeiling; ceil != DefaultThermalCeiling {
				t.Fatalf("epoch %d: ceiling = %v, want default %v", e, ceil, DefaultThermalCeiling)
			}
		}
	}
	if !anyCovered {
		t.Fatal("no thermal window ever opened at rate 0.15 over 256 epochs")
	}
}

func TestRelockFailuresBoundedAndAbandoned(t *testing.T) {
	cfg := Config{Seed: 11, RelockFailRate: 1, RelockMaxRetries: 2}
	in := mustNew(t, cfg, 0)
	p := in.EpochPlan(0)
	if p.RelockFailures != 3 || !p.RelockAbandoned {
		t.Fatalf("rate-1 relock: failures=%d abandoned=%v, want 3/true", p.RelockFailures, p.RelockAbandoned)
	}

	cfg.RelockFailRate = 0.5
	in = mustNew(t, cfg, 0)
	seenClean, seenFail := false, false
	for e := 0; e < 128; e++ {
		p := in.EpochPlan(e)
		if p.RelockFailures < 0 || p.RelockFailures > 3 {
			t.Fatalf("epoch %d: failures = %d out of bounds", e, p.RelockFailures)
		}
		if p.RelockAbandoned != (p.RelockFailures == 3) {
			t.Fatalf("epoch %d: abandoned=%v inconsistent with failures=%d", e, p.RelockAbandoned, p.RelockFailures)
		}
		seenClean = seenClean || p.RelockFailures == 0
		seenFail = seenFail || p.RelockFailures > 0
	}
	if !seenClean || !seenFail {
		t.Fatalf("rate-0.5 relock draw degenerate: clean=%v fail=%v", seenClean, seenFail)
	}
}

func TestRelockStallSchedule(t *testing.T) {
	in := mustNew(t, Config{Seed: 1, RelockFailRate: 0.5, RelockBackoff: 100 * config.Nanosecond}, 0)
	penalty := config.Time(1000 * config.Nanosecond)

	if got := in.RelockStall(penalty, 0, false); got != penalty {
		t.Fatalf("clean relock stall = %v, want %v", got, penalty)
	}
	// 2 failures then success: (p+100ns) + (p+200ns) + p.
	want := 3*penalty + 300*config.Nanosecond
	if got := in.RelockStall(penalty, 2, false); got != want {
		t.Fatalf("2-failure stall = %v, want %v", got, want)
	}
	// 2 failures abandoned: no final success penalty.
	want = 2*penalty + 300*config.Nanosecond
	if got := in.RelockStall(penalty, 2, true); got != want {
		t.Fatalf("abandoned stall = %v, want %v", got, want)
	}
	if got := in.RelockStall(penalty, 0, true); got != 0 {
		t.Fatalf("0-failure abandoned stall = %v, want 0", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{RefreshStormRate: -0.1},
		{RefreshStormRate: 1.1},
		{RelockFailRate: math.NaN()},
		{CounterCorruptRate: math.Inf(1)},
		{ThermalRate: 2},
		{TransientAbortRate: -1},
		{RefreshStormBursts: -1},
		{RelockMaxRetries: -1},
		{RelockBackoff: -1},
		{ThermalCeiling: 123},
		{ThermalWindowEpochs: -1},
		{MaxRunRetries: -1},
		{PanicEnabled: true, PanicEpoch: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("bad[%d] %+v: err = %v, want ErrInvalidConfig", i, c, err)
		}
		if _, err := New(c, 0); err == nil {
			t.Errorf("bad[%d]: New accepted invalid config", i)
		}
	}
	good := []Config{
		{},
		{Seed: 1, RefreshStormRate: 1, RelockFailRate: 1, CounterCorruptRate: 1, ThermalRate: 1, TransientAbortRate: 1},
		{ThermalCeiling: config.Freq400},
		{PanicEnabled: true, PanicEpoch: 0},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good[%d] %+v: unexpected err %v", i, c, err)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	got := Config{}.WithDefaults()
	want := Config{
		RefreshStormBursts:  DefaultRefreshStormBursts,
		RelockMaxRetries:    DefaultRelockMaxRetries,
		RelockBackoff:       DefaultRelockBackoff,
		ThermalCeiling:      DefaultThermalCeiling,
		ThermalWindowEpochs: DefaultThermalWindowEpochs,
		MaxRunRetries:       DefaultMaxRunRetries,
		StragglerDelay:      DefaultStragglerDelay,
		NodeLossEpochs:      DefaultNodeLossEpochs,
	}
	if got != want {
		t.Fatalf("WithDefaults = %+v, want %+v", got, want)
	}
	// Explicit values survive.
	c := Config{RefreshStormBursts: 5, RelockMaxRetries: 1, ThermalCeiling: config.Freq200}
	d := c.WithDefaults()
	if d.RefreshStormBursts != 5 || d.RelockMaxRetries != 1 || d.ThermalCeiling != config.Freq200 {
		t.Fatalf("WithDefaults clobbered explicit values: %+v", d)
	}
}

func TestCounts(t *testing.T) {
	c := Counts{
		RefreshStorms:      2,
		RelockFaults:       3,
		RelockAbandoned:    1,
		CounterCorruptions: 4,
		ThermalEpochs:      5,
		TransientAborts:    1,
		InjectedPanics:     1,
		DegradedEpochs:     9,
	}
	if got := c.Total(); got != 16 {
		t.Fatalf("Total = %d, want 16", got)
	}
	var sum Counts
	sum.Add(c)
	sum.Add(c)
	if sum.RelockFaults != 6 || sum.DegradedEpochs != 18 {
		t.Fatalf("Add: %+v", sum)
	}
	m := c.Map()
	want := map[string]uint64{
		"refresh_storm": 2, "relock_failure": 3, "relock_abandoned": 1,
		"counter_corruption": 4, "thermal_emergency": 5,
		"transient_abort": 1, "injected_panic": 1, "degraded_epochs": 9,
	}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("Map = %v, want %v", m, want)
	}
	if got := (Counts{}).Map(); got != nil {
		t.Fatalf("zero Counts Map = %v, want nil", got)
	}
}

func TestKindString(t *testing.T) {
	if got := Kind(0).String(); got != "none" {
		t.Fatalf("Kind(0) = %q", got)
	}
	if got := (KindRefreshStorm | KindThermal).String(); got != "refresh_storm+thermal_emergency" {
		t.Fatalf("mask string = %q", got)
	}
}

func TestInjectedPanicString(t *testing.T) {
	if got := (InjectedPanic{Epoch: 4}).String(); got != "faults: injected panic at epoch 4" {
		t.Fatalf("String = %q", got)
	}
}

func TestRatesActuallyFire(t *testing.T) {
	// Sanity: at rate 0.5 over 256 epochs every class fires and also
	// skips at least once (catches a broken draw that is constant).
	cfg := Config{Seed: 77, RefreshStormRate: 0.5, CounterCorruptRate: 0.5, ThermalRate: 0.5, ThermalWindowEpochs: 1}
	in := mustNew(t, cfg, 0)
	var storms, corrupt, thermal int
	for e := 0; e < 256; e++ {
		p := in.EpochPlan(e)
		if p.Storm {
			storms++
			if p.StormBursts != DefaultRefreshStormBursts {
				t.Fatalf("epoch %d: bursts = %d", e, p.StormBursts)
			}
		}
		if p.CorruptProfile {
			corrupt++
		}
		if p.ThermalCeiling != 0 {
			thermal++
		}
	}
	for name, n := range map[string]int{"storms": storms, "corrupt": corrupt, "thermal": thermal} {
		if n == 0 || n == 256 {
			t.Fatalf("%s fired %d/256 times — draw looks degenerate", name, n)
		}
	}
}
