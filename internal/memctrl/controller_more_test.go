package memctrl

import (
	"testing"

	"memscale/internal/config"
	"memscale/internal/dram"
	"memscale/internal/trace"
)

// TestFrequencyChangeUnderTraffic drives random traffic across a
// frequency switch and checks nothing is lost or double-counted.
func TestFrequencyChangeUnderTraffic(t *testing.T) {
	r := newRig(nil)
	rng := trace.NewRNG(7)
	const n = 600
	completed := 0
	for i := 0; i < n; i++ {
		at := config.Time(i) * 30 * config.Nanosecond
		line := rng.Uint64() % r.mapper.Lines()
		r.c.Enqueue(at, line, rng.Intn(6) == 0, rng.Intn(16), func(config.Time) { completed++ })
	}
	// Let traffic start, then switch mid-stream.
	r.q.RunUntil(5 * config.Microsecond)
	r.c.FlushInterval(r.q.Now())
	r.c.SetBusFrequency(r.q.Now(), config.Freq333)
	r.drain()
	ctr := r.c.Counters()
	if got := ctr.Reads + ctr.Writebacks; got != n {
		t.Fatalf("served %d of %d requests across the relock", got, n)
	}
	if r.c.BusFreq() != config.Freq333 {
		t.Errorf("bus frequency = %v", r.c.BusFreq())
	}
	iv := r.c.FlushInterval(r.q.Now())
	elapsed := r.q.Now() - 5*config.Microsecond
	if iv.DRAMTotal().Total() != config.Time(r.cfg.TotalRanks())*elapsed {
		t.Errorf("rank accounting lost time across relock: %v vs %v",
			iv.DRAMTotal().Total(), config.Time(r.cfg.TotalRanks())*elapsed)
	}
}

// TestRepeatedFrequencyChanges walks the whole ladder under light
// traffic.
func TestRepeatedFrequencyChanges(t *testing.T) {
	r := newRig(nil)
	rng := trace.NewRNG(11)
	served := 0
	for _, f := range config.BusFrequencies[1:] {
		now := r.q.Now()
		for i := 0; i < 20; i++ {
			r.c.Enqueue(now, rng.Uint64()%r.mapper.Lines(), false, 0, func(config.Time) { served++ })
		}
		r.q.RunUntil(now + 100*config.Microsecond)
		r.c.FlushInterval(r.q.Now())
		r.c.SetBusFrequency(r.q.Now(), f)
		r.q.RunUntil(r.q.Now() + 10*config.Microsecond)
	}
	r.drain()
	if served != 20*len(config.BusFrequencies[1:]) {
		t.Errorf("served %d requests", served)
	}
	if r.c.BusFreq() != config.Freq200 {
		t.Errorf("final frequency %v, want 200 MHz", r.c.BusFreq())
	}
}

// TestChannelOutstandingCounter checks CTO semantics: arrivals to a
// saturated channel see the bus queue.
func TestChannelOutstandingCounter(t *testing.T) {
	r := newRig(nil)
	// 8 simultaneous requests to 8 banks of channel 0: their bursts
	// serialize, so late bus arrivals queue.
	for b := 0; b < 8; b++ {
		r.read(0, r.line(0, 0, b, 5, 0), b)
	}
	r.drain()
	ctr := r.c.Counters()
	// All arrived at t=0 before anything was on the bus queue, so CTO
	// counts 0 — the queueing shows up for later arrivals.
	if ctr.CTO != 0 {
		t.Errorf("CTO = %d for simultaneous arrivals", ctr.CTO)
	}
	// A request arriving while bursts drain must see channel work.
	tm := r.c.Timing()
	r.read(tm.MC+tm.TRCD+tm.TCL+2*tm.Burst/2, r.line(0, 1, 0, 5, 0), 0)
	ctr2 := r.c.Counters()
	if ctr2.CTO == 0 {
		t.Error("late arrival saw an empty channel despite queued bursts")
	}
	r.drain()
}

func TestRowHitFractionCounter(t *testing.T) {
	r := newRig(nil)
	line0 := r.line(0, 0, 0, 10, 0)
	line1 := r.line(0, 0, 0, 10, 1)
	r.read(0, line0, 0)
	r.read(0, line1, 0)
	r.drain()
	ctr := r.c.Counters()
	if got := ctr.RowHitFraction(); got != 0.5 {
		t.Errorf("RowHitFraction = %g, want 0.5", got)
	}
	var empty Counters
	if empty.RowHitFraction() != 0 || empty.BankQueueDepth() != 0 || empty.ChannelQueueDepth() != 0 {
		t.Error("empty counters must yield zero ratios")
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{TLM: []uint64{1, 2}, BTO: 3, BTC: 4, RBHC: 5, Reads: 6}
	b := Counters{TLM: []uint64{10, 20}, BTO: 30, BTC: 40, RBHC: 50, Reads: 60}
	c := a.Add(b)
	if c.TLM[0] != 11 || c.TLM[1] != 22 || c.BTO != 33 || c.BTC != 44 || c.RBHC != 55 || c.Reads != 66 {
		t.Errorf("Add result: %+v", c)
	}
	// Receiver unchanged.
	if a.BTO != 3 || a.TLM[0] != 1 {
		t.Error("Add mutated its receiver")
	}
}

// TestDecoupledBackgroundPower: with Decoupled DIMMs the device clock
// is low, so the rank background energy must match the device
// frequency, not the channel's.
func TestDecoupledDevFreqInInterval(t *testing.T) {
	r := newRig(func(c *config.Config) { c.DecoupledDevFreq = config.Freq400 })
	r.q.RunUntil(50 * config.Microsecond)
	iv := r.c.FlushInterval(r.q.Now())
	if iv.Channels[0].DevFreq != config.Freq400 || iv.Channels[0].BusFreq != config.Freq800 {
		t.Errorf("interval freqs: bus %v dev %v", iv.Channels[0].BusFreq, iv.Channels[0].DevFreq)
	}
}

// TestPowerdownAndRefreshInterleave stresses PD entry around refresh
// windows for a long idle stretch.
func TestPowerdownAndRefreshInterleave(t *testing.T) {
	r := newRig(func(c *config.Config) { c.Powerdown = config.PowerdownFast })
	r.q.RunUntil(config.Millisecond)
	iv := r.c.FlushInterval(r.q.Now())
	// Each rank refreshes ~128 times per ms.
	perRank := float64(iv.DRAMTotal().Refreshes) / float64(r.cfg.TotalRanks())
	if perRank < 120 || perRank > 136 {
		t.Errorf("refreshes per rank per ms = %.0f, want ~128", perRank)
	}
	// Between refreshes the rank returns to powerdown.
	if frac := iv.DRAMTotal().PrechargePDFraction(); frac < 0.9 {
		t.Errorf("idle PD fraction = %.2f, want > 0.9", frac)
	}
	if iv.DRAMTotal().PDExits == 0 {
		t.Error("refreshes out of PD must count exits")
	}
}

// TestTimingSwapPropagatesToRanks verifies the shared-timing pointer
// mechanism: after a relock, rank service uses the new periods.
func TestTimingSwapPropagatesToRanks(t *testing.T) {
	r := newRig(nil)
	r.c.FlushInterval(0)
	r.c.SetBusFrequency(0, config.Freq200)
	r.q.RunUntil(10 * config.Microsecond)
	start := r.q.Now()
	done := r.read(start, r.line(0, 0, 0, 3, 0), 0)
	r.drain()
	tm := dram.Resolve(r.cfg.Timing, config.Freq200, config.Freq200)
	want := start + tm.MC + tm.TRCD + tm.TCL + tm.Burst
	if *done != want {
		t.Errorf("post-relock read at %v, want %v", *done, want)
	}
}

// TestWritebackOnlySaturation: a writeback storm alone must drain and
// account bursts as writes.
func TestWritebackOnlySaturation(t *testing.T) {
	r := newRig(nil)
	rng := trace.NewRNG(3)
	const n = 500
	for i := 0; i < n; i++ {
		r.c.Enqueue(config.Time(i)*10*config.Nanosecond, rng.Uint64()%r.mapper.Lines(), true, 0, nil)
	}
	r.drain()
	ctr := r.c.Counters()
	if ctr.Writebacks != n {
		t.Fatalf("drained %d of %d writebacks", ctr.Writebacks, n)
	}
	iv := r.c.FlushInterval(r.q.Now())
	if iv.DRAMTotal().WriteBurst == 0 || iv.DRAMTotal().ReadBurst != 0 {
		t.Errorf("burst accounting: read %v write %v", iv.DRAMTotal().ReadBurst, iv.DRAMTotal().WriteBurst)
	}
}

// TestRelockPenaltyValue checks the Section 4.1 constant: 512 cycles
// plus 28 ns at the new frequency.
func TestRelockPenaltyValue(t *testing.T) {
	r := newRig(nil)
	cases := map[config.FreqMHz]config.Time{
		config.Freq800: config.Freq800.Cycles(512) + 28*config.Nanosecond,
		config.Freq200: config.Freq200.Cycles(512) + 28*config.Nanosecond,
	}
	for f, want := range cases {
		if got := r.c.RelockPenalty(f); got != want {
			t.Errorf("RelockPenalty(%v) = %v, want %v", f, got, want)
		}
	}
	// At 200 MHz: 512 * 5 ns + 28 ns = 2.588 us — microseconds, as the
	// paper says ("< 1 us" at high frequency, negligible vs 5 ms).
	if p := r.c.RelockPenalty(config.Freq800); p > 1*config.Microsecond {
		t.Errorf("relock at nominal = %v, want < 1 us", p)
	}
}

func TestInvalidFrequencyPanics(t *testing.T) {
	r := newRig(nil)
	r.c.FlushInterval(0)
	defer func() {
		if recover() == nil {
			t.Error("off-ladder frequency must panic")
		}
	}()
	r.c.SetBusFrequency(0, 512)
}

func BenchmarkControllerThroughput(b *testing.B) {
	cfg := config.Default()
	rig := newRig(nil)
	_ = cfg
	rng := trace.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	completed := 0
	for i := 0; i < b.N; i++ {
		at := rig.q.Now()
		rig.c.Enqueue(at, rng.Uint64()%rig.mapper.Lines(), false, i%16, func(config.Time) { completed++ })
		if rig.c.QueuedRequests() > 64 {
			next, _ := rig.q.NextAt()
			rig.q.RunUntil(next + config.Microsecond)
		}
	}
	rig.drain()
}
