package config

// Location identifies the physical placement of one cache line in the
// memory system.
type Location struct {
	Channel int
	Rank    int // rank index within the channel
	Bank    int // bank index within the rank
	Row     int // row index within the bank
	Col     int // line index within the row
}

// AddressMapper translates cache-line addresses to physical locations.
//
// The layout follows the paper's controller (Section 4.1): cache lines
// interleave across channels for bandwidth, consecutive lines within a
// channel fill a row (so streaming accesses enjoy row locality), and
// successive rows interleave across banks and then ranks, which is the
// bank-interleaving the controller exploits.
type AddressMapper struct {
	channels    int
	linesPerRow int
	banks       int
	ranks       int
	rows        int

	// Shift/mask fast path, used when every dimension is a power of two
	// (every stock configuration): Map then costs five mask-and-shift
	// pairs instead of nine hardware divisions, which matters because it
	// sits on the per-request hot path.
	pow2                                bool
	chSh, colSh, bankSh, rankSh         uint
	chMask, colMask, bankMask, rankMask uint64
	rowMask                             uint64
}

// NewAddressMapper builds a mapper for configuration c.
func NewAddressMapper(c *Config) *AddressMapper {
	m := &AddressMapper{
		channels:    c.Channels,
		linesPerRow: c.LinesPerRow(),
		banks:       c.BanksPerRank,
		ranks:       c.RanksPerChannel(),
		rows:        c.RowsPerBank,
	}
	chSh, ok1 := log2(m.channels)
	colSh, ok2 := log2(m.linesPerRow)
	bankSh, ok3 := log2(m.banks)
	rankSh, ok4 := log2(m.ranks)
	rowSh, ok5 := log2(m.rows)
	if ok1 && ok2 && ok3 && ok4 && ok5 {
		m.pow2 = true
		m.chSh, m.colSh, m.bankSh, m.rankSh = chSh, colSh, bankSh, rankSh
		m.chMask = 1<<chSh - 1
		m.colMask = 1<<colSh - 1
		m.bankMask = 1<<bankSh - 1
		m.rankMask = 1<<rankSh - 1
		m.rowMask = 1<<rowSh - 1
	}
	return m
}

// log2 returns the exponent when n is a positive power of two.
func log2(n int) (uint, bool) {
	if n <= 0 || n&(n-1) != 0 {
		return 0, false
	}
	var s uint
	for 1<<s < n {
		s++
	}
	return s, true
}

// Lines returns the total number of distinct cache-line addresses the
// mapper covers before wrapping.
func (m *AddressMapper) Lines() uint64 {
	return uint64(m.channels) * uint64(m.linesPerRow) *
		uint64(m.banks) * uint64(m.ranks) * uint64(m.rows)
}

// Map translates a cache-line address to its location. Addresses beyond
// the configured capacity wrap around.
func (m *AddressMapper) Map(line uint64) Location {
	var loc Location
	if m.pow2 {
		loc.Channel = int(line & m.chMask)
		line >>= m.chSh
		loc.Col = int(line & m.colMask)
		line >>= m.colSh
		loc.Bank = int(line & m.bankMask)
		line >>= m.bankSh
		loc.Rank = int(line & m.rankMask)
		line >>= m.rankSh
		loc.Row = int(line & m.rowMask)
		return loc
	}
	loc.Channel = int(line % uint64(m.channels))
	line /= uint64(m.channels)
	loc.Col = int(line % uint64(m.linesPerRow))
	line /= uint64(m.linesPerRow)
	loc.Bank = int(line % uint64(m.banks))
	line /= uint64(m.banks)
	loc.Rank = int(line % uint64(m.ranks))
	line /= uint64(m.ranks)
	loc.Row = int(line % uint64(m.rows))
	return loc
}

// Unmap is the inverse of Map for in-range locations; it reconstructs
// the canonical line address of a location.
func (m *AddressMapper) Unmap(loc Location) uint64 {
	line := uint64(loc.Row)
	line = line*uint64(m.ranks) + uint64(loc.Rank)
	line = line*uint64(m.banks) + uint64(loc.Bank)
	line = line*uint64(m.linesPerRow) + uint64(loc.Col)
	line = line*uint64(m.channels) + uint64(loc.Channel)
	return line
}

// LineForRow returns the address of the col'th line of the given
// (channel, rank, bank, row) tuple; workload generators use it to
// synthesize streams with controlled row locality.
func (m *AddressMapper) LineForRow(channel, rank, bank, row, col int) uint64 {
	return m.Unmap(Location{Channel: channel, Rank: rank, Bank: bank, Row: row, Col: col})
}
