package core

import (
	"memscale/internal/config"
	"memscale/internal/sim"
)

// Ablation switches off one ingredient of the MemScale policy, to
// quantify how much that ingredient matters. Each corresponds to a
// design choice the paper argues for:
//
//   - AblateProfiling: Section 3.2 profiles 300 us at each epoch start
//     because "a short profiling phase often provides a more current
//     picture"; this variant relies solely on end-of-epoch accounting,
//     steering each epoch with the previous epoch's counters.
//   - AblateQueueModel: Section 3.3 builds the BTO/CTO counters because
//     classic queueing analysis of the transfer-blocking network is
//     infeasible; this variant predicts CPI with service times only
//     (xi_bank = xi_bus = 1), i.e. no contention awareness.
//   - AblateSlack: Equation 1 carries slack across epochs so transient
//     mispredictions are paid back; this variant resets slack every
//     epoch and must satisfy the bound epoch-locally.
type Ablation int

// Ablation variants.
const (
	AblateNothing Ablation = iota
	AblateProfiling
	AblateQueueModel
	AblateSlack
)

// String names the ablation.
func (a Ablation) String() string {
	switch a {
	case AblateNothing:
		return "full"
	case AblateProfiling:
		return "no-profiling"
	case AblateQueueModel:
		return "no-queue-model"
	case AblateSlack:
		return "no-slack-carryover"
	default:
		return "unknown"
	}
}

// AblatedPolicy wraps Policy with one ingredient disabled.
type AblatedPolicy struct {
	*Policy
	ablation Ablation

	// For AblateProfiling: the counters of the previous epoch stand in
	// for the profiling window.
	lastEpoch *sim.Profile
}

// NewAblatedPolicy builds a MemScale policy with the given ablation.
func NewAblatedPolicy(cfg *config.Config, opts Options, a Ablation) *AblatedPolicy {
	p := NewPolicy(cfg, opts)
	if a == AblateQueueModel {
		p.model.noQueue = true
	}
	return &AblatedPolicy{Policy: p, ablation: a}
}

// Name implements sim.Governor.
func (a *AblatedPolicy) Name() string {
	return a.Policy.Name() + "/" + a.ablation.String()
}

// ProfileComplete implements sim.Governor.
func (a *AblatedPolicy) ProfileComplete(prof sim.Profile) config.FreqMHz {
	if a.ablation == AblateProfiling {
		// Ignore the fresh profiling window; decide from the previous
		// epoch's end-of-epoch accounting (or keep nominal before the
		// first epoch completes).
		if a.lastEpoch == nil {
			return config.MaxBusFreq
		}
		return a.Policy.ProfileComplete(*a.lastEpoch)
	}
	return a.Policy.ProfileComplete(prof)
}

// EpochEnd implements sim.Governor.
func (a *AblatedPolicy) EpochEnd(prof sim.Profile) {
	a.Policy.EpochEnd(prof)
	if a.ablation == AblateProfiling {
		cp := prof
		cp.Counters = prof.Counters.Clone()
		cp.Instr = append([]float64(nil), prof.Instr...)
		a.lastEpoch = &cp
	}
	if a.ablation == AblateSlack {
		for i := range a.slack {
			a.slack[i] = 0
		}
	}
}
