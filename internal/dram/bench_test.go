package dram

import (
	"testing"

	"memscale/internal/config"
)

// BenchmarkRankAccess pins the rank state machine's cost per access:
// StartAccess/FinishAccess/PrechargeDone across alternating rows. The
// rank is pure state arithmetic and must never allocate — the event
// core's zero-allocation steady state depends on it.
func BenchmarkRankAccess(b *testing.B) {
	timing := Resolve(config.Default().Timing, config.MaxBusFreq, config.MaxBusFreq)
	r := NewRank(8, &timing)
	now := config.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank := i % 8
		ready, _, _ := r.StartAccess(now, bank, i%2)
		busEnd := ready + timing.Burst
		pre := r.FinishAccess(bank, ready, busEnd, false, false)
		r.PrechargeDone(pre, bank)
		now = pre
	}
}

// BenchmarkRankRefresh measures the refresh round-trip.
func BenchmarkRankRefresh(b *testing.B) {
	timing := Resolve(config.Default().Timing, config.MaxBusFreq, config.MaxBusFreq)
	r := NewRank(8, &timing)
	now := config.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.SetRefreshPending()
		until, ok := r.TryStartRefresh(now)
		if !ok {
			b.Fatal("refresh must start on an idle rank")
		}
		r.RefreshDone(until)
		now = until
	}
}
