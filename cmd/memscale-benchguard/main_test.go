package main

import "testing"

func TestParseLine(t *testing.T) {
	name, r, ok := parseLine(
		"BenchmarkSingleRun-8   3   202072 ns/op   7537 events/op   12 B/op   3 allocs/op")
	if !ok {
		t.Fatal("expected a benchmark line to parse")
	}
	if name != "BenchmarkSingleRun" {
		t.Errorf("name = %q, want GOMAXPROCS suffix stripped", name)
	}
	if r.NsPerOp != 202072 || r.AllocsPerOp != 3 || r.BytesPerOp != 12 {
		t.Errorf("parsed %+v", r)
	}
	if got := r.Metrics["events/op"]; got != 7537 {
		t.Errorf("events/op = %v, want 7537", got)
	}
}

func TestParseLineNoSuffix(t *testing.T) {
	name, r, ok := parseLine("BenchmarkEventQueue \t 8537520\t       135.1 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok || name != "BenchmarkEventQueue" {
		t.Fatalf("ok=%v name=%q", ok, name)
	}
	if r.NsPerOp != 135.1 || r.AllocsPerOp != 0 || r.Metrics != nil {
		t.Errorf("parsed %+v", r)
	}
}

func TestParseLineRejectsNonBenchmarks(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: memscale",
		"PASS",
		"ok  \tmemscale\t9.656s",
		"BenchmarkBroken-8", // no measurements
		"",
	} {
		if name, _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted as %q", line, name)
		}
	}
}

func TestParseEventBudgets(t *testing.T) {
	into := map[string]float64{"BenchmarkSingleRun": 4_500_000}
	if err := parseEventBudgets("BenchmarkSingleRun=4000000, BenchmarkSweep=9e6", into); err != nil {
		t.Fatal(err)
	}
	if into["BenchmarkSingleRun"] != 4_000_000 || into["BenchmarkSweep"] != 9e6 {
		t.Errorf("event budgets = %v", into)
	}
	if err := parseEventBudgets("nonsense", into); err == nil {
		t.Error("malformed spec must error")
	}
	if err := parseEventBudgets("Bench=abc", into); err == nil {
		t.Error("non-numeric budget must error")
	}
}

func TestParseBudgets(t *testing.T) {
	into := map[string]int64{"BenchmarkSingleRun": 10_000}
	if err := parseBudgets("BenchmarkSingleRun=500, BenchmarkSweep=2000", into); err != nil {
		t.Fatal(err)
	}
	if into["BenchmarkSingleRun"] != 500 || into["BenchmarkSweep"] != 2000 {
		t.Errorf("budgets = %v", into)
	}
	if err := parseBudgets("nonsense", into); err == nil {
		t.Error("malformed spec must error")
	}
	if err := parseBudgets("Bench=abc", into); err == nil {
		t.Error("non-numeric budget must error")
	}
}
