// Package checkpoint serializes full simulation state to a versioned
// container, in the spirit of gem5's checkpoint-based fast-forwarding:
// capture every stateful layer at an epoch boundary, restore it
// bit-identically, and fork variant runs from a shared warm-up prefix
// instead of re-simulating it.
//
// The container is two JSON lines: a header naming the format and its
// schema version, then the payload. JSON keeps the format inspectable
// and diffable; Go's float64 encoding is shortest-round-trip, so every
// accumulator restores to the exact bit pattern it was saved with.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strings"

	"memscale/internal/config"
	"memscale/internal/faults"
	"memscale/internal/sim"
)

// Magic identifies the container format on the header line.
const Magic = "memscale-checkpoint"

// SchemaVersion is the container format version ("MAJOR.MINOR"). Minor
// bumps only add fields, which older readers ignore; a major bump
// means the payload shapes changed incompatibly. Decode accepts any
// container whose major version matches and rejects the rest with a
// *SchemaVersionError.
//
// 1.1 added the header's payload_crc32 integrity field; 1.0 containers
// (no CRC) remain readable.
const SchemaVersion = "1.1"

// ErrCorruptCheckpoint reports container bytes that do not parse as a
// checkpoint: truncation, wrong magic, malformed JSON. Matched with
// errors.Is.
var ErrCorruptCheckpoint = errors.New("corrupt checkpoint")

// ErrInterrupted reports a run stopped early by a soft-stop signal
// (SIGINT/SIGTERM, an Interrupt channel) after capturing its state at
// the epoch boundary it halted on. The shared sentinel under the
// runner's and fleet's own interrupted errors; matched with errors.Is.
var ErrInterrupted = errors.New("run interrupted")

// SchemaVersionError reports a checkpoint written by an incompatible
// (different-major) schema version; match it with errors.As.
type SchemaVersionError struct {
	Version string // the container's schema_version
}

// Error implements error.
func (e *SchemaVersionError) Error() string {
	return fmt.Sprintf("checkpoint schema version %q is incompatible with reader version %q",
		e.Version, SchemaVersion)
}

// schemaMajor returns the MAJOR component of a version string; the
// whole string when there is no dot.
func schemaMajor(v string) string {
	if i := strings.IndexByte(v, '.'); i >= 0 {
		return v[:i]
	}
	return v
}

// header is the container's first line. PayloadCRC32 is the IEEE
// CRC-32 of the whitespace-trimmed payload line; it is omitted when
// zero (and by 1.0 writers), and Decode only verifies it when present,
// so legacy containers stay readable while any bit flip in the payload
// of a current container is caught before the JSON layer can
// misinterpret it.
type header struct {
	Magic         string `json:"magic"`
	SchemaVersion string `json:"schema_version"`
	PayloadCRC32  uint32 `json:"payload_crc32,omitempty"`
}

// payloadCRC is the integrity sum over the payload line, computed on
// the whitespace-trimmed bytes so a trailing-newline difference between
// write and read paths cannot fail verification.
func payloadCRC(body []byte) uint32 {
	return crc32.ChecksumIEEE(bytes.TrimSpace(body))
}

// Meta identifies the run a checkpoint was taken from: enough to
// rebuild the trace streams, governor, and fault schedule around the
// restored state without re-deriving them from flags.
type Meta struct {
	// Mix is the workload mix name the streams were built from.
	Mix string `json:"mix"`

	// Policy names the governing scheme (empty for an unmanaged run —
	// a baseline or a warm-start prefix).
	Policy string `json:"policy,omitempty"`

	// Gamma is the allowed performance degradation the run used.
	Gamma float64 `json:"gamma,omitempty"`

	// NonMem is the calibrated rest-of-system power (watts).
	NonMem float64 `json:"non_mem_w"`

	// Epochs is the number of OS epochs completed at the snapshot.
	Epochs int `json:"epochs"`

	// Faults is the fault plane's configuration when the run injected
	// disturbances, and Attempt the retry ordinal the surviving attempt
	// ran under; together they let a resume rebuild the identical
	// disturbance schedule.
	Faults  *faults.Config `json:"faults,omitempty"`
	Attempt int            `json:"attempt,omitempty"`
}

// Checkpoint is one captured simulation: identity, the exact
// configuration it ran under, and the full state image.
type Checkpoint struct {
	Meta   Meta          `json:"meta"`
	Config config.Config `json:"config"`

	// Base is the configuration before the policy's Configure hook ran
	// — the one the unmanaged baseline pairs against. A resume must
	// calibrate its baseline from Base, not Config, to reproduce the
	// cold run's pairing exactly.
	Base config.Config `json:"base_config"`

	State *sim.SystemState `json:"state"`
}

// Encode writes ck to w in the versioned two-line container format,
// stamping the payload's CRC-32 into the header.
func Encode(w io.Writer, ck *Checkpoint) error {
	body, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	hdr, err := json.Marshal(header{
		Magic:         Magic,
		SchemaVersion: SchemaVersion,
		PayloadCRC32:  payloadCRC(body),
	})
	if err != nil {
		return err
	}
	if _, err := w.Write(append(hdr, '\n')); err != nil {
		return err
	}
	_, err = w.Write(append(body, '\n'))
	return err
}

// Decode parses a container written by Encode. Corrupted or truncated
// bytes yield an error wrapping ErrCorruptCheckpoint; a container from
// an incompatible schema major version yields a *SchemaVersionError.
// Decode never panics, whatever the input.
func Decode(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	hdrLine, err := br.ReadBytes('\n')
	if err != nil && (err != io.EOF || len(hdrLine) == 0) {
		return nil, fmt.Errorf("%w: missing header: %v", ErrCorruptCheckpoint, err)
	}
	var hdr header
	if err := json.Unmarshal(hdrLine, &hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorruptCheckpoint, err)
	}
	if hdr.Magic != Magic {
		return nil, fmt.Errorf("%w: magic %q, want %q", ErrCorruptCheckpoint, hdr.Magic, Magic)
	}
	if schemaMajor(hdr.SchemaVersion) != schemaMajor(SchemaVersion) {
		return nil, &SchemaVersionError{Version: hdr.SchemaVersion}
	}
	body, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrCorruptCheckpoint, err)
	}
	if len(bytes.TrimSpace(body)) == 0 {
		return nil, fmt.Errorf("%w: container has no payload", ErrCorruptCheckpoint)
	}
	if hdr.PayloadCRC32 != 0 {
		if got := payloadCRC(body); got != hdr.PayloadCRC32 {
			return nil, fmt.Errorf("%w: payload CRC32 %08x, header says %08x",
				ErrCorruptCheckpoint, got, hdr.PayloadCRC32)
		}
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(body, ck); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrCorruptCheckpoint, err)
	}
	if ck.State == nil {
		return nil, fmt.Errorf("%w: payload carries no state", ErrCorruptCheckpoint)
	}
	return ck, nil
}

// WriteFile atomically-ish writes the checkpoint to path (temp file in
// the same directory, then rename), so a crash mid-write never leaves
// a truncated container where a resumable one was expected.
func WriteFile(path string, ck *Checkpoint) error {
	tmp, err := os.CreateTemp(dirOf(path), ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := Encode(tmp, ck); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile parses the checkpoint container at path.
func ReadFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

func dirOf(path string) string {
	if i := strings.LastIndexByte(path, '/'); i > 0 {
		return path[:i]
	}
	return "."
}
