// Package memscale is a library-scale reproduction of "MemScale:
// Active Low-Power Modes for Main Memory" (Deng, Meisner, Ramos,
// Wenisch, Bianchini — ASPLOS 2011).
//
// It bundles a discrete-event DDR3 memory-system simulator (devices,
// controller, counters, power), an in-order multicore front end fed by
// synthetic SPEC-like traces, the MemScale OS energy-management policy
// with its counter-driven performance and energy models, and the
// baseline schemes the paper compares against (Fast-PD, Slow-PD,
// Decoupled DIMMs, Static frequency).
//
// The top-level API runs (workload, policy) pairs against the
// unmanaged baseline and reports paired energy/performance outcomes:
//
//	sum, err := memscale.RunContext(ctx, memscale.RunConfig{Mix: "MID1", Policy: "MemScale"})
//	fmt.Printf("system energy savings: %.1f%%\n", sum.SystemSavings*100)
//
// Grids of runs go through Sweep, which executes jobs concurrently on
// a worker pool and simulates each distinct baseline exactly once:
//
//	sums, err := memscale.Sweep(ctx, memscale.SweepConfig{
//		Runs: memscale.Grid(memscale.RunConfig{}, memscale.Mixes(), memscale.Policies()),
//	})
//
// For the full evaluation (every table and figure of the paper), see
// the Experiments API and cmd/memscale-repro.
package memscale

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"memscale/internal/checkpoint"
	"memscale/internal/config"
	"memscale/internal/faults"
	"memscale/internal/fleet"
	"memscale/internal/invariant"
	"memscale/internal/policies"
	"memscale/internal/runner"
	"memscale/internal/telemetry"
	"memscale/internal/workload"
)

// Version of the library.
const Version = "1.3.0"

// Typed sentinel errors. Failures wrap these with %w, so callers can
// classify them with errors.Is regardless of message detail:
//
//	if errors.Is(err, memscale.ErrUnknownMix) { ... }
var (
	// ErrUnknownMix reports a RunConfig.Mix outside the Table 1 names.
	ErrUnknownMix = workload.ErrUnknownMix

	// ErrUnknownPolicy reports a RunConfig.Policy outside Policies().
	ErrUnknownPolicy = policies.ErrUnknownPolicy

	// ErrInvalidConfig reports a RunConfig whose scaling fields are
	// degenerate (negative epoch/core/channel counts, out-of-range
	// gamma, an invalid fault configuration, or a machine shape the
	// simulator rejects).
	ErrInvalidConfig = errors.New("invalid run configuration")

	// ErrRunPanicked reports a run whose simulation panicked. The
	// worker recovered: in a Sweep the other jobs are unaffected, and
	// the error chain carries the panic value and stack
	// (*runner.PanicError).
	ErrRunPanicked = runner.ErrRunPanicked

	// ErrJobTimeout reports a run that exceeded its watchdog deadline
	// (SweepConfig.JobTimeout).
	ErrJobTimeout = runner.ErrJobTimeout

	// ErrTransientFault reports a run killed by an injected transient
	// fault after its automatic retries were exhausted.
	ErrTransientFault = faults.ErrTransient

	// ErrInvariant reports a runtime invariant violation: one of the
	// always-on self-checks (energy conservation, residency accounting,
	// slack ledger bounds, cap-within-budget) found simulator state
	// that should be impossible. The chain carries an
	// *InvariantViolation naming the check.
	ErrInvariant = invariant.ErrInvariant

	// ErrNodeLost reports a fleet node whose self-healing restart
	// budget ran out; the fleet keeps running and the summary lists the
	// node in LostNodes (see RunFleet's partial-failure contract).
	ErrNodeLost = fleet.ErrNodeLost

	// ErrInterrupted reports a run or fleet stopped early by a
	// soft-stop signal (SIGINT/SIGTERM in the CLIs) after writing its
	// final checkpoint.
	ErrInterrupted = checkpoint.ErrInterrupted
)

// InvariantViolation is the typed error carried by every ErrInvariant
// failure: Name identifies the check ("energy_conservation",
// "residency_epoch_sum", "slack_ledger", "cap_within_budget",
// "resume_epoch"), Detail the observed state. Match with errors.As.
type InvariantViolation = invariant.Violation

// RunConfig selects and scales one simulation.
type RunConfig struct {
	// Mix is a Table 1 workload name: ILP1-4, MID1-4, MEM1-4.
	Mix string

	// Policy is a scheme name as listed by Policies(): "Baseline",
	// "Fast-PD", "Slow-PD", "Decoupled", "Static", "MemScale",
	// "MemScale (MemEnergy)", "MemScale + Fast-PD".
	Policy string

	// Epochs is the run length in 5 ms OS quanta (default 10).
	Epochs int

	// Gamma is the maximum allowed performance degradation
	// (default 0.10).
	Gamma float64

	// Cores overrides the core count (default 16); Channels overrides
	// the channel count (default 4).
	Cores    int
	Channels int

	// Partitioned confines each application of the mix to its own
	// memory channel (OS page placement; application i maps to channel
	// i mod Channels). Partitioned runs draw the same per-core traces
	// as the unpartitioned mix — placement, not content, differs — and
	// give the sharded parallel engine its finest partition (one shard
	// per channel). Sharding no longer requires it: any workload whose
	// channel-affinity sets split into more than one confinement group
	// parallelizes (see Shards).
	Partitioned bool

	// Shards, when > 1, runs the simulation (managed run and baseline
	// alike) on the sharded parallel event engine: up to Shards event
	// queues advance concurrently inside conservative time windows,
	// producing results — telemetry included — bit-identical to the
	// serial engine. The engine partitions channels into confinement
	// groups from the mix's placement (per-channel for partitioned
	// mixes, per channel group for interleaved "<mix>/ilvK" variants)
	// and falls back to serial when fewer than two groups exist or the
	// governor is per-channel. 0 or 1 selects the serial engine. Must
	// not exceed the channel count.
	Shards int

	// ShardGranularity selects how the engine partitions the workload
	// when Shards > 1: "" and "bank" run the confinement-group analysis
	// (the finest sound granularity — banks of one channel share the
	// bus, so a channel is never split), "channel" restricts sharding
	// to fully channel-confined workloads (every stream pinned to one
	// channel), the pre-1.3 rule.
	ShardGranularity string

	// Timeline retains per-epoch frequency/CPI records.
	Timeline bool

	// Telemetry, when non-nil, instruments the managed run with the
	// telemetry subsystem and attaches the export to the summary.
	Telemetry *TelemetryConfig

	// Faults, when non-nil, injects the deterministic fault plane into
	// the managed run: refresh storms, relock failures, counter
	// corruption, thermal-emergency frequency caps, transient aborts,
	// and (for pipeline tests) a forced panic. The baseline run is
	// never faulted. The same FaultConfig always reproduces the same
	// disturbance schedule, fault counts, and energy totals.
	Faults *FaultConfig
}

// FaultConfig configures the fault-injection plane of one run. Rates
// are per-epoch probabilities in [0, 1]; zero disables a class. The
// zero value injects nothing. See internal/faults for the semantics
// of each class and its defaults.
type FaultConfig struct {
	// Seed selects the deterministic disturbance schedule.
	Seed uint64

	// RefreshStormRate triggers retention emergencies that force
	// RefreshStormBursts extra all-bank refresh rounds (default 2).
	RefreshStormRate   float64
	RefreshStormBursts int

	// RelockFailRate makes PLL/DLL relock attempts fail; failures
	// retry with exponential backoff (base RelockBackoff, default
	// 100ns) up to RelockMaxRetries extra attempts (default 3) before
	// the frequency switch is abandoned for the epoch.
	RelockFailRate   float64
	RelockMaxRetries int
	RelockBackoff    time.Duration

	// CounterCorruptRate perturbs a profiled epoch's MC counters; the
	// governor re-profiles instead of trusting them, and falls back to
	// the maximum allowed frequency when the re-profile is corrupted
	// too.
	CounterCorruptRate float64

	// ThermalRate opens thermal-emergency windows spanning
	// ThermalWindowEpochs epochs (default 2) during which the
	// candidate frequency ceiling is capped at ThermalCeilingMHz
	// (default 400; must be on the DDR3 ladder).
	ThermalRate         float64
	ThermalCeilingMHz   int
	ThermalWindowEpochs int

	// TransientAbortRate aborts run attempts with ErrTransientFault;
	// aborted attempts are retried automatically up to MaxRunRetries
	// times (default 2) with the identical hardware fault schedule.
	TransientAbortRate float64
	MaxRunRetries      int

	// InjectPanic forces a deliberate panic at epoch PanicEpoch — the
	// hook for proving that one job's death cannot take down a sweep.
	InjectPanic bool
	PanicEpoch  int

	// The fields below are fleet-scope faults: they only fire on nodes
	// of a fleet run (RunFleet), where the self-healing supervisor can
	// recover them, and are ignored by single runs.

	// NodeCrashRate is the per-epoch probability a node crashes
	// mid-window. With a FleetRecoveryConfig armed the node restarts
	// from its last periodic snapshot and replays; without one the
	// crash loses the node.
	NodeCrashRate float64

	// StragglerRate stalls a node in host wall-clock time by
	// StragglerDelay (default 20ms) — simulated state is untouched.
	// With a recovery StepTimeoutMS armed, a stalled attempt is caught
	// by the watchdog and recovered exactly like a crash.
	StragglerRate  float64
	StragglerDelay time.Duration

	// CheckpointCorruptRate flips a bit in a periodic snapshot as it is
	// written; the corruption is caught by the container CRC at restore
	// time and the restart falls back to a from-scratch replay.
	CheckpointCorruptRate float64

	// NodeLossRate opens coordinator-visible loss windows spanning
	// NodeLossEpochs epochs (default 3): the node keeps simulating but
	// the coordinator sees it as lost, freezes its cap, re-water-fills
	// the freed budget across survivors, and re-admits it on rejoin.
	NodeLossRate   float64
	NodeLossEpochs int
}

// internal maps the public fault configuration onto the fault plane's
// own config type. Nil-safe: a nil receiver disables injection.
func (fc *FaultConfig) internal() *faults.Config {
	if fc == nil {
		return nil
	}
	return &faults.Config{
		Seed:                fc.Seed,
		RefreshStormRate:    fc.RefreshStormRate,
		RefreshStormBursts:  fc.RefreshStormBursts,
		RelockFailRate:      fc.RelockFailRate,
		RelockMaxRetries:    fc.RelockMaxRetries,
		RelockBackoff:       config.FromNanoseconds(float64(fc.RelockBackoff.Nanoseconds())),
		CounterCorruptRate:  fc.CounterCorruptRate,
		ThermalRate:         fc.ThermalRate,
		ThermalCeiling:      config.FreqMHz(fc.ThermalCeilingMHz),
		ThermalWindowEpochs: fc.ThermalWindowEpochs,
		TransientAbortRate:  fc.TransientAbortRate,
		MaxRunRetries:       fc.MaxRunRetries,
		PanicEnabled:        fc.InjectPanic,
		PanicEpoch:          fc.PanicEpoch,

		NodeCrashRate:         fc.NodeCrashRate,
		StragglerRate:         fc.StragglerRate,
		StragglerDelay:        fc.StragglerDelay,
		CheckpointCorruptRate: fc.CheckpointCorruptRate,
		NodeLossRate:          fc.NodeLossRate,
		NodeLossEpochs:        fc.NodeLossEpochs,
	}
}

// TelemetryConfig opts a run into telemetry collection. The zero value
// enables collectors and per-epoch snapshots only; Events additionally
// captures the structured event stream.
type TelemetryConfig struct {
	// Events enables the event stream (frequency transitions, powerdown
	// entry/exit, refreshes, slack updates, governor decisions).
	Events bool

	// EventRingSize bounds the retained event buffer (default 4096;
	// oldest events are dropped beyond it, with the drop count
	// reported on the export).
	EventRingSize int
}

func (tc *TelemetryConfig) options() *telemetry.Options {
	if tc == nil {
		return nil
	}
	return &telemetry.Options{Events: tc.Events, RingSize: tc.EventRingSize}
}

// Validate rejects degenerate scaling values up front, before any
// simulation runs. Every failure wraps ErrInvalidConfig and names the
// offending field with a snake_case path (e.g. "gamma",
// "faults.storm_rate"), so callers can both classify with errors.Is
// and surface the exact field to users. Zero values are allowed: they
// select the documented defaults. Run, RunContext, and Sweep all call
// Validate internally; calling it directly is only needed to check a
// configuration without running it.
func (rc RunConfig) Validate() error {
	switch {
	case rc.Epochs < 0:
		return fmt.Errorf("%w: epochs: must be >= 0 (0 selects the default 10), got %d",
			ErrInvalidConfig, rc.Epochs)
	case math.IsNaN(rc.Gamma) || rc.Gamma < 0 || rc.Gamma >= 1:
		return fmt.Errorf("%w: gamma: must be in [0, 1) (0 selects the default 0.10), got %g",
			ErrInvalidConfig, rc.Gamma)
	case rc.Cores < 0:
		return fmt.Errorf("%w: cores: must be >= 0 (0 selects the default), got %d",
			ErrInvalidConfig, rc.Cores)
	case rc.Channels < 0:
		return fmt.Errorf("%w: channels: must be >= 0 (0 selects the default), got %d",
			ErrInvalidConfig, rc.Channels)
	case rc.Shards < 0:
		return fmt.Errorf("%w: shards: must be >= 0 (0 selects the serial engine), got %d",
			ErrInvalidConfig, rc.Shards)
	}
	if ch := rc.Channels; rc.Shards > 1 {
		if ch == 0 {
			ch = config.Default().Channels
		}
		if rc.Shards > ch {
			return fmt.Errorf("%w: shards: must not exceed the channel count %d, got %d",
				ErrInvalidConfig, ch, rc.Shards)
		}
	}
	switch rc.ShardGranularity {
	case "", "channel", "bank":
	default:
		return fmt.Errorf("%w: shard_granularity: must be \"\", %q, or %q, got %q",
			ErrInvalidConfig, "channel", "bank", rc.ShardGranularity)
	}
	if err := rc.Faults.validate("faults"); err != nil {
		return err
	}
	// Positive but unusable machine shapes are caught by the simulator
	// configuration's own validation; surface them under the same
	// typed error instead of a NaN-filled summary later.
	cfg := config.Default()
	if rc.Cores > 0 {
		cfg.Cores = rc.Cores
	}
	if rc.Channels > 0 {
		cfg.Channels = rc.Channels
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	return nil
}

// validate checks the fault plane's parameters with field paths rooted
// at prefix ("faults" for a single run, "groups[i].faults" in a
// fleet). Nil-safe: a nil config injects nothing and is always valid.
func (fc *FaultConfig) validate(prefix string) error {
	if fc == nil {
		return nil
	}
	for _, f := range []struct {
		field string
		v     float64
	}{
		{"storm_rate", fc.RefreshStormRate},
		{"relock_rate", fc.RelockFailRate},
		{"corrupt_rate", fc.CounterCorruptRate},
		{"thermal_rate", fc.ThermalRate},
		{"abort_rate", fc.TransientAbortRate},
		{"node_crash_rate", fc.NodeCrashRate},
		{"straggler_rate", fc.StragglerRate},
		{"checkpoint_corrupt_rate", fc.CheckpointCorruptRate},
		{"node_loss_rate", fc.NodeLossRate},
	} {
		if math.IsNaN(f.v) || f.v < 0 || f.v > 1 {
			return fmt.Errorf("%w: %s.%s: rate must be in [0, 1], got %g",
				ErrInvalidConfig, prefix, f.field, f.v)
		}
	}
	for _, f := range []struct {
		field string
		v     int
	}{
		{"storm_bursts", fc.RefreshStormBursts},
		{"relock_max_retries", fc.RelockMaxRetries},
		{"thermal_window_epochs", fc.ThermalWindowEpochs},
		{"max_run_retries", fc.MaxRunRetries},
		{"node_loss_epochs", fc.NodeLossEpochs},
	} {
		if f.v < 0 {
			return fmt.Errorf("%w: %s.%s: must be >= 0 (0 selects the default), got %d",
				ErrInvalidConfig, prefix, f.field, f.v)
		}
	}
	if fc.RelockBackoff < 0 {
		return fmt.Errorf("%w: %s.relock_backoff: must be >= 0, got %v",
			ErrInvalidConfig, prefix, fc.RelockBackoff)
	}
	if fc.StragglerDelay < 0 {
		return fmt.Errorf("%w: %s.straggler_delay: must be >= 0 (0 selects the default 20ms), got %v",
			ErrInvalidConfig, prefix, fc.StragglerDelay)
	}
	if c := fc.ThermalCeilingMHz; c != 0 && !config.ValidBusFrequency(config.FreqMHz(c)) {
		return fmt.Errorf("%w: %s.thermal_ceiling_mhz: %d MHz is not on the DDR3 ladder %v",
			ErrInvalidConfig, prefix, c, config.BusFrequencies)
	}
	if fc.InjectPanic && fc.PanicEpoch < 0 {
		return fmt.Errorf("%w: %s.panic_epoch: must be >= 0 when inject_panic is set, got %d",
			ErrInvalidConfig, prefix, fc.PanicEpoch)
	}
	// Backstop: the fault plane's own validation guards any constraint
	// added there before this mirror learns its field path.
	if err := fc.internal().Validate(); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrInvalidConfig, prefix, err)
	}
	return nil
}

// withDefaults fills the documented defaults into zero fields.
func (rc RunConfig) withDefaults() RunConfig {
	if rc.Epochs == 0 {
		rc.Epochs = 10
	}
	if rc.Gamma == 0 {
		rc.Gamma = 0.10
	}
	if rc.Policy == "" {
		rc.Policy = "MemScale"
	}
	return rc
}

// job resolves a validated, defaulted RunConfig into an engine job.
func (rc RunConfig) job() (runner.Job, error) {
	mix, err := workload.ByName(rc.Mix)
	if err != nil {
		return runner.Job{}, err
	}
	if rc.Partitioned {
		mix = mix.Partition()
	}
	spec, err := policies.ByName(rc.Policy)
	if err != nil {
		return runner.Job{}, err
	}
	return runner.Job{
		Mix:              mix,
		Spec:             spec,
		Epochs:           rc.Epochs,
		Gamma:            rc.Gamma,
		Cores:            rc.Cores,
		Channels:         rc.Channels,
		Shards:           rc.Shards,
		ShardGranularity: rc.ShardGranularity,
		Timeline:         rc.Timeline,
		Telemetry:        rc.Telemetry.options(),
		Faults:           rc.Faults.internal(),
	}, nil
}

// EpochSample is one OS quantum of a timeline run: the telemetry
// layer's per-epoch snapshot, exposed directly so the timeline, the
// telemetry export, and memscale-report all read the same record. Use
// the StartMs/EndMs/BusFreqMHz methods for the derived views the old
// fields of the same names provided.
type EpochSample = telemetry.EpochSnapshot

// TelemetryExport is one run's full telemetry: totals, collector
// snapshots, per-epoch samples, and retained events.
type TelemetryExport = telemetry.RunExport

// TelemetryRollup aggregates exports across runs.
type TelemetryRollup = telemetry.Rollup

// RunSummary reports one run paired against its baseline.
type RunSummary struct {
	Mix    string
	Policy string

	DurationSeconds float64

	// Energy (joules) of the managed run.
	MemoryEnergyJ float64
	SystemEnergyJ float64

	// Savings relative to the unmanaged baseline.
	MemorySavings float64
	SystemSavings float64

	// CPI degradation relative to the baseline: multiprogram average
	// and worst application (the Figure 6 metrics).
	AvgCPIIncrease   float64
	WorstCPIIncrease float64

	// FreqSeconds is the time spent at each bus frequency (MHz).
	FreqSeconds map[int]float64

	// Timeline, when requested, holds the per-epoch records.
	Timeline []EpochSample

	// Telemetry, when the run requested it, holds the full export.
	Telemetry *TelemetryExport

	// FaultCounts tallies the injected faults actually applied to the
	// managed run, keyed by stable class names ("refresh_storm",
	// "relock_failure", "relock_abandoned", "counter_corruption",
	// "thermal_emergency", "transient_abort", "degraded_epochs"); nil
	// when nothing was injected. DegradedEpochs is the number of
	// epochs the governor ran in degraded mode. Both are reproduced
	// exactly by the same FaultConfig.
	FaultCounts    map[string]uint64
	DegradedEpochs uint64

	// Attempts is how many times the managed run executed: 1 plus the
	// automatic retries consumed by injected transient faults.
	Attempts int

	// Events is the number of simulation events the managed run fired —
	// the unit benchmarks normalize throughput against (events/op).
	Events uint64

	// InvariantChecks counts the runtime invariant plane's always-on
	// assertions the managed run passed (energy conservation, residency
	// accounting, slack ledger bounds); a violated invariant fails the
	// run with an error matching ErrInvariant instead.
	InvariantChecks uint64

	// EngineShards is the shard count the managed run's event engine
	// actually used: 1 for the serial engine (requested or fallen back
	// to), the resolved confinement-group count under the sharded
	// engine. Always 1 when RunConfig.Shards <= 1.
	EngineShards int
}

// Mixes returns the Table 1 workload names.
func Mixes() []string { return workload.Names() }

// PartitionedSuffix appended to a mix name ("MEM1" + PartitionedSuffix
// = "MEM1/part") selects the channel-partitioned variant of the mix —
// equivalent to setting RunConfig.Partitioned on the base mix. This is
// how fleet node groups request partitioned workloads (NodeGroup.Mix).
const PartitionedSuffix = workload.PartitionedSuffix

// InterleavePrefix introduces a mix's interleaved placement variant:
// "MEM1" + InterleavePrefix + "2" = "MEM1/ilv2" spreads each
// application across a private group of 2 channels (K must divide the
// channel count). Interleaved mixes are genuinely unpartitioned — each
// stream roams its whole group — yet still parallelize on the sharded
// engine, one shard per channel group.
const InterleavePrefix = workload.InterleavePrefix

// Policies returns the scheme names accepted by RunConfig.Policy.
func Policies() []string { return policies.Names() }

// Run executes one (mix, policy) pair and its baseline, returning the
// paired summary. Runs are deterministic: the same RunConfig always
// produces identical results.
//
// Deprecated: Run is a thin wrapper over RunContext with
// context.Background(), kept so existing callers compile unchanged.
// New code should use RunContext (cancellable single runs) or Sweep
// (parallel grids with baseline sharing).
func Run(rc RunConfig) (RunSummary, error) {
	return RunContext(context.Background(), rc)
}

// RunContext executes one (mix, policy) pair and its baseline under
// ctx, returning the paired summary. Cancellation is honoured
// mid-simulation: the run returns promptly with ctx.Err(). An
// uncancelled run is deterministic and bit-identical to the same
// RunConfig executed anywhere else — inside a Sweep, on any worker
// count, or via the deprecated Run.
func RunContext(ctx context.Context, rc RunConfig) (RunSummary, error) {
	if err := rc.Validate(); err != nil {
		return RunSummary{}, err
	}
	job, err := rc.withDefaults().job()
	if err != nil {
		return RunSummary{}, err
	}
	out, err := runner.New(runner.Options{Workers: 1}).Run(ctx, job)
	if err != nil {
		return RunSummary{}, err
	}
	return summarize(out), nil
}

// summarize folds a paired outcome into the public summary. The
// savings/CPI metrics guard degenerate zero-energy and zero-CPI
// baselines (see runner.Outcome), so a RunSummary never carries
// NaN/Inf.
func summarize(out runner.Outcome) RunSummary {
	res := out.Res
	sum := RunSummary{
		Mix:             out.Mix.Name,
		Policy:          out.Policy,
		DurationSeconds: res.Duration.Seconds(),
		MemoryEnergyJ:   res.Memory.Memory(),
		SystemEnergyJ:   out.SystemEnergy(res),
		MemorySavings:   out.MemorySavings(),
		SystemSavings:   out.SystemSavings(),
		FreqSeconds:     map[int]float64{},
	}
	sum.AvgCPIIncrease, sum.WorstCPIIncrease = out.CPIIncrease()

	for f, t := range res.FreqTime {
		sum.FreqSeconds[int(f)] = t.Seconds()
	}
	// The simulator's epoch records are telemetry snapshots already;
	// expose them as-is.
	sum.Timeline = append(sum.Timeline, res.Epochs...)
	sum.Telemetry = out.Telemetry
	sum.FaultCounts = res.Faults.Map()
	sum.DegradedEpochs = res.Faults.DegradedEpochs
	sum.Attempts = out.Attempts
	sum.Events = res.Events
	sum.InvariantChecks = res.InvariantChecks
	sum.EngineShards = out.Shards
	return sum
}

// WriteTelemetry streams the summaries' telemetry exports to w in the
// JSONL interchange format memscale-report reads. Summaries without
// telemetry are skipped.
func WriteTelemetry(w io.Writer, sums ...RunSummary) error {
	exports := make([]*TelemetryExport, 0, len(sums))
	for _, s := range sums {
		if s.Telemetry != nil {
			exports = append(exports, s.Telemetry)
		}
	}
	return telemetry.WriteJSONL(w, exports...)
}

// TelemetrySchemaVersion is the JSONL interchange format version
// ("MAJOR.MINOR") that WriteTelemetry stamps on every run record.
// Minor bumps only add fields, which older readers ignore; a major
// bump means the record shapes changed incompatibly. ReadTelemetry
// therefore accepts any stream whose major version matches its own
// (including unversioned pre-1.1 streams, which read as "1.0") and
// rejects the rest with a *SchemaVersionError.
const TelemetrySchemaVersion = telemetry.SchemaVersion

// SchemaVersionError is the typed error ReadTelemetry returns for a
// stream written by an incompatible (different-major) schema version;
// match it with errors.As.
type SchemaVersionError = telemetry.SchemaVersionError

// ReadTelemetry parses a JSONL telemetry stream written by
// WriteTelemetry (or by cmd/memscale-sim's -telemetry-out flag).
// Streams from an incompatible schema major version fail with a
// *SchemaVersionError (see TelemetrySchemaVersion).
func ReadTelemetry(r io.Reader) ([]*TelemetryExport, error) {
	return telemetry.ReadJSONL(r)
}

// AggregateTelemetry merges the summaries' telemetry exports into one
// rollup: summed totals and counters, merged histograms. Aggregation
// is race-free regardless of how the runs executed: every run owns a
// private recorder, and the rollup is built here, after completion.
func AggregateTelemetry(sums ...RunSummary) *TelemetryRollup {
	ro := telemetry.NewRollup()
	for _, s := range sums {
		ro.Add(s.Telemetry)
	}
	return ro
}

// String renders a one-line summary.
func (s RunSummary) String() string {
	return fmt.Sprintf("%s/%s: system %+.1f%%, memory %+.1f%%, CPI +%.1f%% (worst +%.1f%%)",
		s.Mix, s.Policy, s.SystemSavings*100, s.MemorySavings*100,
		s.AvgCPIIncrease*100, s.WorstCPIIncrease*100)
}
