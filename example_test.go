package memscale_test

import (
	"context"
	"fmt"

	"memscale"
)

// Example runs a compute-bound mix under MemScale and checks the
// headline effects: deep memory-energy savings at negligible
// performance cost, with most time spent at the bottom of the
// frequency ladder.
func Example() {
	sum, err := memscale.Run(memscale.RunConfig{
		Mix:    "ILP2",
		Policy: "MemScale",
		Epochs: 2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("memory savings over 50%:", sum.MemorySavings > 0.50)
	fmt.Println("system savings over 20%:", sum.SystemSavings > 0.20)
	fmt.Println("within the 10% CPI bound:", sum.WorstCPIIncrease < 0.10)
	fmt.Println("reached the lowest frequency:", sum.FreqSeconds[200] > 0)
	// Output:
	// memory savings over 50%: true
	// system savings over 20%: true
	// within the 10% CPI bound: true
	// reached the lowest frequency: true
}

// ExampleRun_policies compares two schemes on the same deterministic
// workload.
func ExampleRun_policies() {
	savings := map[string]float64{}
	for _, policy := range []string{"Fast-PD", "MemScale"} {
		sum, err := memscale.Run(memscale.RunConfig{
			Mix:    "ILP2",
			Policy: policy,
			Epochs: 2,
		})
		if err != nil {
			panic(err)
		}
		savings[policy] = sum.SystemSavings
	}
	fmt.Println("both schemes save energy:", savings["Fast-PD"] > 0 && savings["MemScale"] > 0)
	fmt.Println("MemScale beats Fast-PD:", savings["MemScale"] > savings["Fast-PD"])
	// Output:
	// both schemes save energy: true
	// MemScale beats Fast-PD: true
}

// ExampleMixes lists the Table 1 workloads.
func ExampleMixes() {
	fmt.Println(memscale.Mixes())
	// Output:
	// [ILP1 ILP2 ILP3 ILP4 MID1 MID2 MID3 MID4 MEM1 MEM2 MEM3 MEM4]
}

// ExamplePolicies lists the energy-management schemes.
func ExamplePolicies() {
	fmt.Println(memscale.Policies())
	// Output:
	// [Baseline Fast-PD Slow-PD Decoupled Static MemScale MemScale (MemEnergy) MemScale + Fast-PD]
}

// ExampleRunFleet simulates a small cluster under a global
// memory-power budget: every node is a full paired MemScale run driven
// by a Poisson arrival process, and a FastCap-style coordinator
// redistributes the budget across nodes each epoch.
func ExampleRunFleet() {
	sum, err := memscale.RunFleet(context.Background(), memscale.FleetConfig{
		Groups: []memscale.NodeGroup{{
			Name:     "web",
			Nodes:    4,
			Mix:      "MID2",
			Cores:    2,
			Channels: 1,
			Arrival:  memscale.ArrivalConfig{Kind: memscale.ArrivalPoisson},
		}},
		Epochs:       4,
		PowerBudgetW: 110, // tight enough that the coordinator must cap
		Seed:         1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("nodes simulated:", sum.Nodes)
	fmt.Println("fleet saves energy:", sum.SER < 1)
	fmt.Println("budget respected:", !sum.BudgetExceeded)
	fmt.Println("coordinator decided:", len(sum.CapTrace) > 0)
	// Output:
	// nodes simulated: 4
	// fleet saves energy: true
	// budget respected: true
	// coordinator decided: true
}
