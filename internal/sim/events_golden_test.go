package sim

import (
	"testing"

	"memscale/internal/config"
	"memscale/internal/workload"
)

// TestGoldenEventCounts pins the exact number of events fired and
// scheduled over two baseline epochs, captured on the pre-rewrite
// container/heap event core. The pooled flat-heap queue must schedule
// and fire the identical event population — any drift means the
// rewrite changed the simulated event sequence, not just its cost.
func TestGoldenEventCounts(t *testing.T) {
	golden := []struct {
		mix              string
		fired, scheduled uint64
	}{
		{"MEM1", 16540049, 16540085},
		{"ILP1", 1556545, 1556578},
		{"MID2", 6748782, 6748815},
	}
	for _, g := range golden {
		g := g
		t.Run(g.mix, func(t *testing.T) {
			t.Parallel()
			cfg := config.Default()
			mix, err := workload.ByName(g.mix)
			if err != nil {
				t.Fatal(err)
			}
			streams, err := mix.Streams(&cfg)
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(cfg, streams, Options{})
			if err != nil {
				t.Fatal(err)
			}
			res := s.RunFor(2 * cfg.Policy.EpochLength)
			if s.Q.Fired() != g.fired {
				t.Errorf("fired %d events, want %d", s.Q.Fired(), g.fired)
			}
			if s.Q.ScheduledTotal() != g.scheduled {
				t.Errorf("scheduled %d events, want %d", s.Q.ScheduledTotal(), g.scheduled)
			}
			if res.Events != g.fired {
				t.Errorf("Result.Events = %d, want Fired() = %d", res.Events, g.fired)
			}
		})
	}
}
