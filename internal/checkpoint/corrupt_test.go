package checkpoint

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"memscale/internal/event"
	"memscale/internal/memctrl"
	"memscale/internal/sim"
)

func validContainer(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	ck := &Checkpoint{
		Meta:  Meta{Mix: "MID1", Policy: "MemScale", Epochs: 4, NonMem: 18.5},
		State: &sim.SystemState{Events: &event.State{}, MC: &memctrl.ControllerState{}},
	}
	if err := Encode(&buf, ck); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// payloadStart returns the offset of the payload line.
func payloadStart(t *testing.T, data []byte) int {
	t.Helper()
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		t.Fatal("container has no header newline")
	}
	return i + 1
}

func TestDecodeRejectsTruncated(t *testing.T) {
	data := validContainer(t)
	// Every truncation point inside the payload must yield a typed
	// corruption error — JSON truncation, CRC mismatch, or missing
	// payload — never a panic or silent acceptance.
	// (Cutting only the trailing newline is not corruption — the CRC is
	// computed over trimmed bytes — so the deepest cut removes content.)
	for _, cut := range []int{payloadStart(t, data), payloadStart(t, data) + 1,
		len(data) / 2, len(data) - 2} {
		_, err := Decode(bytes.NewReader(data[:cut]))
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("truncated at %d/%d: want ErrCorruptCheckpoint, got %v", cut, len(data), err)
		}
	}
}

func TestDecodeRejectsHeaderOnly(t *testing.T) {
	data := validContainer(t)
	hdr := data[:payloadStart(t, data)]
	for _, in := range [][]byte{hdr, []byte(strings.TrimRight(string(hdr), "\n"))} {
		_, err := Decode(bytes.NewReader(in))
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("header-only container: want ErrCorruptCheckpoint, got %v", err)
		}
	}
}

func TestDecodeRejectsBitFlips(t *testing.T) {
	data := validContainer(t)
	start := payloadStart(t, data)
	// Flip one bit at every byte of the payload. With the CRC stamped
	// in the header, every flip must be rejected typed — including the
	// flips that would still be syntactically valid JSON.
	for i := start; i < len(data); i++ {
		if data[i] == '\n' {
			continue
		}
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x04
		if _, err := Decode(bytes.NewReader(mut)); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("bit flip at byte %d survived decode: err=%v", i, err)
		}
	}
}

func TestDecodeAcceptsLegacyNoCRC(t *testing.T) {
	data := validContainer(t)
	body := data[payloadStart(t, data):]
	legacy := []byte(`{"magic":"memscale-checkpoint","schema_version":"1.0"}` + "\n")
	legacy = append(legacy, body...)
	ck, err := Decode(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("1.0 container without CRC rejected: %v", err)
	}
	if ck.Meta.Mix != "MID1" {
		t.Fatalf("legacy decode lost meta: %+v", ck.Meta)
	}
}

func TestDecodeRejectsWrongCRC(t *testing.T) {
	data := validContainer(t)
	body := data[payloadStart(t, data):]
	bad := []byte(`{"magic":"memscale-checkpoint","schema_version":"1.1","payload_crc32":1}` + "\n")
	bad = append(bad, body...)
	if _, err := Decode(bytes.NewReader(bad)); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("wrong header CRC accepted: err=%v", err)
	}
}

func TestEncodeDecodeRoundTripWithCRC(t *testing.T) {
	data := validContainer(t)
	ck, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	var again bytes.Buffer
	if err := Encode(&again, ck); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again.Bytes()) {
		t.Fatal("re-encoded container differs from original")
	}
	if !bytes.Contains(data[:payloadStart(t, data)], []byte("payload_crc32")) {
		t.Fatal("header carries no payload_crc32")
	}
}
